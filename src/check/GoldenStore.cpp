//===- GoldenStore.cpp - darm-claims-v1 golden metrics store ------------------===//
//
// The JSON dialect here is deliberately tiny: toJson emits objects,
// arrays, strings, unsigned integers and bools only, and the reader
// accepts exactly that subset (no floats, no escapes beyond \" and \\,
// no unicode). Goldens are machine-written and diffed as text in review,
// so a strict round-trip beats a general-purpose parser dependency.
//
//===----------------------------------------------------------------------===//

#include "darm/check/GoldenStore.h"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

using namespace darm;
using namespace darm::check;

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

std::string darm::check::toJson(const GoldenFile &G) {
  std::ostringstream OS;
  OS << "{\n  \"schema\": \"" << kClaimsSchema << "\",\n  \"kernels\": [";
  for (size_t KI = 0; KI < G.Kernels.size(); ++KI) {
    const KernelClaims &K = G.Kernels[KI];
    OS << (KI ? ",\n" : "\n");
    OS << "    {\n      \"kernel\": \"" << K.Kernel << "\",\n"
       << "      \"block_size\": " << K.BlockSize << ",\n"
       << "      \"configs\": [";
    for (size_t CI = 0; CI < K.Configs.size(); ++CI) {
      const ConfigMetrics &C = K.Configs[CI];
      OS << (CI ? ",\n" : "\n");
      char Hash[32];
      std::snprintf(Hash, sizeof(Hash), "%016" PRIx64, C.MemHash);
      OS << "        {\"config\": \"" << C.Config << "\", \"valid\": "
         << (C.Valid ? "true" : "false") << ", \"mem_hash\": \"" << Hash
         << "\",\n         \"stats\": {";
      for (unsigned I = 0; I < SimStats::NumCounters; ++I)
        OS << (I ? ", " : "") << "\"" << SimStats::counterName(I)
           << "\": " << C.Stats.counter(I);
      OS << "}}";
    }
    OS << "\n      ]\n    }";
  }
  OS << "\n  ]\n}\n";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Reader — recursive descent over the subset toJson emits.
//===----------------------------------------------------------------------===//

namespace {

struct JValue {
  enum Kind { Object, Array, String, UInt, Bool } K = Object;
  // Field order preserved; duplicate keys are rejected by the parser.
  std::vector<std::pair<std::string, JValue>> Fields; // Object
  std::vector<JValue> Items;                          // Array
  std::string Str;                                    // String
  uint64_t U = 0;                                     // UInt
  bool B = false;                                     // Bool

  const JValue *field(const std::string &Name) const {
    for (const auto &F : Fields)
      if (F.first == Name)
        return &F.second;
    return nullptr;
  }
};

class JParser {
public:
  JParser(const std::string &Text) : S(Text) {}

  bool parse(JValue &Out, std::string *Err) {
    bool OK = value(Out);
    skipWS();
    if (OK && Pos != S.size())
      OK = fail("trailing characters after document");
    if (!OK && Err)
      *Err = ErrMsg;
    return OK;
  }

private:
  bool fail(const std::string &Msg) {
    if (ErrMsg.empty()) {
      ErrMsg = "offset " + std::to_string(Pos) + ": " + Msg;
    }
    return false;
  }

  void skipWS() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWS();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return fail(std::string("expected '") + C + "'");
  }

  bool string(std::string &Out) {
    skipWS();
    if (Pos >= S.size() || S[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < S.size() && S[Pos] != '"') {
      char C = S[Pos++];
      if (C == '\\') {
        if (Pos >= S.size() || (S[Pos] != '"' && S[Pos] != '\\'))
          return fail("unsupported escape in string");
        C = S[Pos++];
      }
      Out.push_back(C);
    }
    if (Pos >= S.size())
      return fail("unterminated string");
    ++Pos; // closing quote
    return true;
  }

  bool value(JValue &Out) {
    skipWS();
    if (Pos >= S.size())
      return fail("unexpected end of input");
    const char C = S[Pos];
    if (C == '{')
      return object(Out);
    if (C == '[')
      return array(Out);
    if (C == '"') {
      Out.K = JValue::String;
      return string(Out.Str);
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      Out.K = JValue::UInt;
      size_t Start = Pos;
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
      // Out-of-range values must be diagnostics, not ULLONG_MAX — the
      // same silent-saturation class the IR lexer rejects.
      errno = 0;
      Out.U = std::strtoull(S.substr(Start, Pos - Start).c_str(), nullptr, 10);
      if (errno == ERANGE)
        return fail("integer out of range");
      return true;
    }
    if (S.compare(Pos, 4, "true") == 0) {
      Out.K = JValue::Bool;
      Out.B = true;
      Pos += 4;
      return true;
    }
    if (S.compare(Pos, 5, "false") == 0) {
      Out.K = JValue::Bool;
      Out.B = false;
      Pos += 5;
      return true;
    }
    return fail("unexpected token");
  }

  bool object(JValue &Out) {
    Out.K = JValue::Object;
    if (!consume('{'))
      return false;
    skipWS();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      std::string Key;
      if (!string(Key) || !consume(':'))
        return false;
      // Duplicate keys would make one value win silently; a strict
      // reader of machine-written goldens has no reason to allow that.
      if (Out.field(Key))
        return fail("duplicate key '" + Key + "'");
      JValue V;
      if (!value(V))
        return false;
      Out.Fields.emplace_back(std::move(Key), std::move(V));
      skipWS();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume('}');
    }
  }

  bool array(JValue &Out) {
    Out.K = JValue::Array;
    if (!consume('['))
      return false;
    skipWS();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      JValue V;
      if (!value(V))
        return false;
      Out.Items.push_back(std::move(V));
      skipWS();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume(']');
    }
  }

  const std::string &S;
  size_t Pos = 0;
  std::string ErrMsg;
};

bool mapConfig(const JValue &JC, ConfigMetrics &C, std::string &Err) {
  const JValue *Name = JC.field("config");
  const JValue *Valid = JC.field("valid");
  const JValue *Hash = JC.field("mem_hash");
  const JValue *Stats = JC.field("stats");
  if (!Name || Name->K != JValue::String || !Valid ||
      Valid->K != JValue::Bool || !Hash || Hash->K != JValue::String ||
      !Stats || Stats->K != JValue::Object) {
    Err = "config entry missing config/valid/mem_hash/stats";
    return false;
  }
  C.Config = Name->Str;
  C.Valid = Valid->B;
  // toJson writes exactly 16 hex digits; anything else is corruption.
  char *HashEnd = nullptr;
  errno = 0;
  C.MemHash = std::strtoull(Hash->Str.c_str(), &HashEnd, 16);
  if (Hash->Str.size() != 16 || *HashEnd != '\0' || errno == ERANGE) {
    Err = "malformed mem_hash '" + Hash->Str + "' in config '" + C.Config + "'";
    return false;
  }
  for (unsigned I = 0; I < SimStats::NumCounters; ++I) {
    const JValue *V = Stats->field(SimStats::counterName(I));
    if (!V || V->K != JValue::UInt) {
      Err = std::string("stats missing counter '") + SimStats::counterName(I) +
            "' in config '" + C.Config + "'";
      return false;
    }
    C.Stats.counter(I) = V->U;
  }
  return true;
}

} // namespace

bool darm::check::fromJson(const std::string &Text, GoldenFile &Out,
                           std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  JValue Root;
  std::string PErr;
  if (!JParser(Text).parse(Root, &PErr))
    return Fail("JSON parse error: " + PErr);
  if (Root.K != JValue::Object)
    return Fail("top level is not an object");
  const JValue *Schema = Root.field("schema");
  if (!Schema || Schema->K != JValue::String || Schema->Str != kClaimsSchema)
    return Fail(std::string("schema is not '") + kClaimsSchema + "'");
  const JValue *Kernels = Root.field("kernels");
  if (!Kernels || Kernels->K != JValue::Array)
    return Fail("'kernels' array missing");

  Out.Kernels.clear();
  for (const JValue &JK : Kernels->Items) {
    const JValue *Name = JK.field("kernel");
    const JValue *BS = JK.field("block_size");
    const JValue *Configs = JK.field("configs");
    if (JK.K != JValue::Object || !Name || Name->K != JValue::String || !BS ||
        BS->K != JValue::UInt || !Configs || Configs->K != JValue::Array)
      return Fail("kernel entry missing kernel/block_size/configs");
    KernelClaims K;
    K.Kernel = Name->Str;
    K.BlockSize = static_cast<unsigned>(BS->U);
    for (const JValue &JC : Configs->Items) {
      ConfigMetrics C;
      std::string MErr;
      if (JC.K != JValue::Object || !mapConfig(JC, C, MErr))
        return Fail(MErr.empty() ? "malformed config entry" : MErr);
      K.Configs.push_back(std::move(C));
    }
    Out.Kernels.push_back(std::move(K));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Diff
//===----------------------------------------------------------------------===//

std::vector<std::string>
darm::check::diffClaims(const GoldenFile &Golden,
                        const std::vector<KernelClaims> &Measured) {
  std::vector<std::string> Out;

  std::map<std::string, const KernelClaims *> Want;
  for (const KernelClaims &K : Golden.Kernels)
    Want[K.cellName()] = &K;

  std::map<std::string, const KernelClaims *> Got;
  for (const KernelClaims &K : Measured)
    Got[K.cellName()] = &K;

  for (const auto &[Cell, GoldK] : Want) {
    auto It = Got.find(Cell);
    if (It == Got.end()) {
      Out.push_back(Cell + ": recorded in golden but not measured");
      continue;
    }
    const KernelClaims &MeasK = *It->second;
    for (const ConfigMetrics &GC : GoldK->Configs) {
      const ConfigMetrics *MC = nullptr;
      for (const ConfigMetrics &C : MeasK.Configs)
        if (C.Config == GC.Config)
          MC = &C;
      if (!MC) {
        Out.push_back(Cell + " " + GC.Config + ": config not measured");
        continue;
      }
      for (unsigned I = 0; I < SimStats::NumCounters; ++I) {
        const uint64_t W = GC.Stats.counter(I), M = MC->Stats.counter(I);
        if (W == M)
          continue;
        char Buf[128];
        std::snprintf(Buf, sizeof(Buf), "%s %s: %s golden=%llu got=%llu (%+lld)",
                      Cell.c_str(), GC.Config.c_str(), SimStats::counterName(I),
                      static_cast<unsigned long long>(W),
                      static_cast<unsigned long long>(M),
                      static_cast<long long>(M - W));
        Out.push_back(Buf);
      }
      if (GC.MemHash != MC->MemHash) {
        char Buf[128];
        std::snprintf(Buf, sizeof(Buf),
                      "%s %s: mem_hash golden=%016llx got=%016llx",
                      Cell.c_str(), GC.Config.c_str(),
                      static_cast<unsigned long long>(GC.MemHash),
                      static_cast<unsigned long long>(MC->MemHash));
        Out.push_back(Buf);
      }
      if (GC.Valid != MC->Valid)
        Out.push_back(Cell + " " + GC.Config + ": valid golden=" +
                      (GC.Valid ? "true" : "false") + " got=" +
                      (MC->Valid ? "true" : "false"));
    }
    // Configs measured but never recorded would otherwise pass ungated
    // (e.g. a config added to claimConfigs() without regenerating).
    for (const ConfigMetrics &MC : MeasK.Configs) {
      bool Known = false;
      for (const ConfigMetrics &GC : GoldK->Configs)
        Known = Known || GC.Config == MC.Config;
      if (!Known)
        Out.push_back(Cell + " " + MC.Config +
                      ": measured but not recorded in golden");
    }
  }
  for (const auto &[Cell, MeasK] : Got) {
    (void)MeasK;
    if (!Want.count(Cell))
      Out.push_back(Cell + ": measured but not recorded in golden");
  }
  return Out;
}

bool darm::check::loadGoldenFile(const std::string &Path, GoldenFile &Out,
                                 std::string *Err) {
  std::ifstream In(Path);
  if (!In) {
    if (Err)
      *Err = "cannot open '" + Path + "'";
    return false;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  return fromJson(Buf.str(), Out, Err);
}

bool darm::check::saveGoldenFile(const std::string &Path, const GoldenFile &G,
                                 std::string *Err) {
  std::ofstream OutS(Path);
  if (!OutS) {
    if (Err)
      *Err = "cannot write '" + Path + "'";
    return false;
  }
  OutS << toJson(G);
  OutS.close();
  if (!OutS) {
    if (Err)
      *Err = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}
