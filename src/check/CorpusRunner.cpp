//===- CorpusRunner.cpp - Claims measurement over the kernel corpus -----------===//

#include "darm/check/CorpusRunner.h"

#include "darm/fuzz/DiffOracle.h"
#include "darm/fuzz/KernelGenerator.h"
#include "darm/ir/Context.h"
#include "darm/ir/Module.h"
#include "darm/kernels/Benchmark.h"
#include "darm/transform/DCE.h"
#include "darm/transform/SimplifyCFG.h"

#include <algorithm>

using namespace darm;
using namespace darm::check;

std::vector<BenchCell> darm::check::benchmarkCorpus() {
  std::vector<BenchCell> Cells;
  auto Add = [&](const std::vector<std::string> &Names) {
    for (const std::string &N : Names) {
      std::vector<unsigned> Sizes = paperBlockSizes(N);
      Cells.push_back({N, Sizes.front()});
      if (Sizes.back() != Sizes.front())
        Cells.push_back({N, Sizes.back()});
    }
  };
  Add(realBenchmarkNames());
  Add(syntheticBenchmarkNames());
  return Cells;
}

std::vector<ClaimConfig> darm::check::claimConfigs() {
  // One source of truth for transform tuning: the fuzz oracle's config
  // table. Goldens and the name-keyed tolerance policy only describe a
  // configuration faithfully if both subsystems run the same transform
  // under the same name. darm-nounpred stays fuzz-only (docs/claims.md).
  std::vector<ClaimConfig> Cfgs;
  for (fuzz::OracleConfig &Cfg : fuzz::defaultConfigs())
    if (Cfg.Name != "darm-nounpred")
      Cfgs.push_back({std::move(Cfg.Name), std::move(Cfg.Transform)});
  return Cfgs;
}

KernelClaims darm::check::measureBenchmark(const BenchCell &Cell) {
  return measureBenchmark(Cell, claimConfigs());
}

KernelClaims darm::check::measureBenchmark(
    const BenchCell &Cell, const std::vector<ClaimConfig> &Configs) {
  KernelClaims K;
  K.Kernel = Cell.Name;
  K.BlockSize = Cell.BlockSize;

  auto Measure = [&](const std::string &CfgName,
                     const std::function<void(Function &)> &Transform) {
    auto B = createBenchmark(Cell.Name, Cell.BlockSize);
    if (!B) {
      K.Configs.push_back({CfgName, SimStats(), 0, false});
      return;
    }
    Context Ctx;
    Module M(Ctx, Cell.Name);
    Function *F = B->build(M);
    if (Transform)
      Transform(*F);
    // Same cleanup pipeline as the sim goldens, so the unmelded reference
    // here matches the recorded baseline rows exactly.
    simplifyCFG(*F);
    eliminateDeadCode(*F);
    BenchRun R = runBenchmark(*B, *F);
    K.Configs.push_back({CfgName, R.Total, R.MemHash, R.Valid});
  };

  Measure("unmelded", nullptr);
  for (const ClaimConfig &Cfg : Configs)
    Measure(Cfg.Name, Cfg.Transform);
  return K;
}

KernelClaims darm::check::measureFuzz(const fuzz::FuzzCase &C) {
  KernelClaims K;
  K.Kernel = C.name();
  K.BlockSize = 0;

  auto Measure = [&](const std::string &CfgName,
                     const std::function<void(Function &)> &Transform) {
    Context Ctx;
    Module M(Ctx, CfgName);
    Function *F = fuzz::buildFuzzKernel(M, C);
    if (Transform)
      Transform(*F);
    else {
      // The cleaned-baseline policy (docs/claims.md): the melding
      // configs run simplifycfg+dce internally, so the reference must
      // too — comparing against the raw generated kernel would credit
      // plain DCE to melding.
      simplifyCFG(*F);
      eliminateDeadCode(*F);
    }
    GlobalMemory Mem;
    std::vector<uint64_t> Args = fuzz::setupFuzzMemory(C, Mem);
    std::string Fatal;
    SimStats S = fuzz::simulateFuzzCase(*F, C, Args, Mem, &Fatal);
    ConfigMetrics CM{CfgName, S, 0, Fatal.empty()};
    if (Fatal.empty())
      CM.MemHash = hashMemoryImage(Mem);
    K.Configs.push_back(std::move(CM));
  };

  Measure("unmelded", nullptr);
  for (const ClaimConfig &Cfg : claimConfigs())
    Measure(Cfg.Name, Cfg.Transform);
  return K;
}

KernelClaims darm::check::aggregateClaims(const std::vector<KernelClaims> &Ks,
                                          const std::string &Name) {
  KernelClaims Agg;
  Agg.Kernel = Name;
  Agg.BlockSize = 0;
  for (const KernelClaims &K : Ks) {
    for (const ConfigMetrics &C : K.Configs) {
      ConfigMetrics *Slot = nullptr;
      for (ConfigMetrics &A : Agg.Configs)
        if (A.Config == C.Config)
          Slot = &A;
      if (!Slot) {
        Agg.Configs.push_back({C.Config, SimStats(), 0, true});
        Slot = &Agg.Configs.back();
      }
      Slot->Stats += C.Stats;
      Slot->Valid = Slot->Valid && C.Valid;
    }
  }
  return Agg;
}

