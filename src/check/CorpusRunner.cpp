//===- CorpusRunner.cpp - Claims measurement over the kernel corpus -----------===//

#include "darm/check/CorpusRunner.h"

#include "darm/core/CompileService.h"
#include "darm/fuzz/DiffOracle.h"
#include "darm/fuzz/KernelGenerator.h"
#include "darm/ir/Context.h"
#include "darm/ir/Module.h"
#include "darm/kernels/Benchmark.h"
#include "darm/sim/DecodedProgram.h"
#include "darm/sim/Simulator.h"
#include "darm/transform/DCE.h"
#include "darm/transform/SimplifyCFG.h"

#include <algorithm>

using namespace darm;
using namespace darm::check;

std::vector<BenchCell> darm::check::benchmarkCorpus() {
  std::vector<BenchCell> Cells;
  auto Add = [&](const std::vector<std::string> &Names) {
    for (const std::string &N : Names) {
      std::vector<unsigned> Sizes = paperBlockSizes(N);
      Cells.push_back({N, Sizes.front()});
      if (Sizes.back() != Sizes.front())
        Cells.push_back({N, Sizes.back()});
    }
  };
  Add(realBenchmarkNames());
  Add(syntheticBenchmarkNames());
  return Cells;
}

namespace {

/// Pulls the named subset of the fuzz oracle's config table, in the order
/// given. One source of truth for transform tuning: goldens and the
/// name-keyed tolerance policy only describe a configuration faithfully
/// if both subsystems run the same transform under the same name.
std::vector<ClaimConfig>
configsNamed(std::initializer_list<const char *> Names) {
  std::vector<fuzz::OracleConfig> All = fuzz::defaultConfigs();
  std::vector<ClaimConfig> Cfgs;
  for (const char *Name : Names)
    for (fuzz::OracleConfig &Cfg : All)
      if (Cfg.Name == Name)
        Cfgs.push_back({std::move(Cfg.Name), std::move(Cfg.Transform)});
  return Cfgs;
}

} // namespace

std::vector<ClaimConfig> darm::check::claimConfigs() {
  // The golden-bearing corpus configs. An allowlist, not "everything the
  // fuzzer runs": the oracle's table also carries fuzz-only coverage axes
  // (darm-nounpred, the lone canonicalization passes) and the attribution
  // configs below, none of which belong in every golden file.
  return configsNamed({"darm", "darm-aggressive", "branch-fusion"});
}

std::vector<ClaimConfig> darm::check::attributionConfigs() {
  // Per-pass melding-efficacy attribution (docs/passes.md): plain darm
  // next to darm with exactly one canonicalization pass enabled, plus all
  // five. darm_check --compare prints these side by side.
  return configsNamed({"darm", "darm-constprop", "darm-algebraic",
                       "darm-gvn", "darm-licm", "darm-unroll", "darm-canon"});
}

namespace {

/// Artifact fingerprint for a claims config. The config name uniquely
/// identifies the transform *and* the corpus pipeline around it
/// (simplify-cfg + DCE), so it is the whole fingerprint; the version
/// tag invalidates every claims artifact if the pipeline itself changes.
std::string claimsFingerprint(const std::string &CfgName) {
  return "darm-claims-v1;" + CfgName;
}

/// One (benchmark, config) measurement. \p B is shared read-only across
/// a cell's config jobs — the kernel is built fresh (transforms mutate
/// in place, so every config needs its own build), but the benchmark
/// descriptor and its host-input recipe are constructed once per cell,
/// not once per config (decode/build reuse, docs/performance.md).
///
/// With \p Cache the compiled pipeline goes through the get-or-compile
/// cache, and the run consumes the artifact's DecodedProgram image —
/// identical on hit and miss, so cold, warm and uncached measurements
/// all agree byte for byte (docs/caching.md).
ConfigMetrics measureBenchmarkConfig(
    const Benchmark &B, const std::string &CfgName,
    const std::function<void(Function &)> &Transform,
    CompileService *Cache) {
  Context Ctx;
  Module M(Ctx, B.name());
  Function *F = B.build(M);
  if (Cache) {
    CompileService::Artifact Art = Cache->getOrCompile(
        *F, claimsFingerprint(CfgName),
        [&Transform](Function &K, DARMStats &) {
          if (Transform)
            Transform(K);
          simplifyCFG(K);
          eliminateDeadCode(K);
        });
    DecodedProgram P;
    if (Art->failed() || !decodeFromArtifact(*Art, P))
      return {CfgName, SimStats(), 0, false};
    SimEngine Engine(std::move(P));
    BenchRun R = runBenchmark(B, Engine);
    return {CfgName, R.Total, R.MemHash, R.Valid};
  }
  if (Transform)
    Transform(*F);
  // Same cleanup pipeline as the sim goldens, so the unmelded reference
  // here matches the recorded baseline rows exactly.
  simplifyCFG(*F);
  eliminateDeadCode(*F);
  BenchRun R = runBenchmark(B, *F);
  return {CfgName, R.Total, R.MemHash, R.Valid};
}

/// One (fuzz seed, config) measurement; self-contained per job. The
/// cached path runs the artifact's DecodedProgram image through the
/// program overload of simulateFuzzCase — decode is static and safe at
/// compile time; only the run itself needs the fatal-abort guard.
ConfigMetrics measureFuzzConfig(
    const fuzz::FuzzCase &C, const std::string &CfgName,
    const std::function<void(Function &)> &Transform,
    CompileService *Cache) {
  Context Ctx;
  Module M(Ctx, CfgName);
  Function *F = fuzz::buildFuzzKernel(M, C);
  if (Cache) {
    CompileService::Artifact Art = Cache->getOrCompile(
        *F, claimsFingerprint(CfgName),
        [&Transform](Function &K, DARMStats &) {
          if (Transform)
            Transform(K);
          else {
            // Cleaned-baseline policy, mirrored below.
            simplifyCFG(K);
            eliminateDeadCode(K);
          }
        });
    DecodedProgram P;
    if (Art->failed() || !decodeFromArtifact(*Art, P))
      return {CfgName, SimStats(), 0, false};
    GlobalMemory Mem;
    std::vector<uint64_t> Args = fuzz::setupFuzzMemory(C, Mem);
    std::string Fatal;
    SimStats S = fuzz::simulateFuzzCase(std::move(P), C, Args, Mem, &Fatal);
    ConfigMetrics CM{CfgName, S, 0, Fatal.empty()};
    if (Fatal.empty())
      CM.MemHash = hashMemoryImage(Mem);
    return CM;
  }
  if (Transform)
    Transform(*F);
  else {
    // The cleaned-baseline policy (docs/claims.md): the melding
    // configs run simplifycfg+dce internally, so the reference must
    // too — comparing against the raw generated kernel would credit
    // plain DCE to melding.
    simplifyCFG(*F);
    eliminateDeadCode(*F);
  }
  GlobalMemory Mem;
  std::vector<uint64_t> Args = fuzz::setupFuzzMemory(C, Mem);
  std::string Fatal;
  SimStats S = fuzz::simulateFuzzCase(*F, C, Args, Mem, &Fatal);
  ConfigMetrics CM{CfgName, S, 0, Fatal.empty()};
  if (Fatal.empty())
    CM.MemHash = hashMemoryImage(Mem);
  return CM;
}

} // namespace

KernelClaims darm::check::measureBenchmark(const BenchCell &Cell) {
  return measureBenchmark(Cell, claimConfigs());
}

KernelClaims darm::check::measureBenchmark(
    const BenchCell &Cell, const std::vector<ClaimConfig> &Configs) {
  KernelClaims K;
  K.Kernel = Cell.Name;
  K.BlockSize = Cell.BlockSize;

  // The benchmark object (and with it the workload recipe) is built once
  // per cell and reused across the whole config loop.
  auto B = createBenchmark(Cell.Name, Cell.BlockSize);
  if (!B) {
    K.Configs.push_back({"unmelded", SimStats(), 0, false});
    for (const ClaimConfig &Cfg : Configs)
      K.Configs.push_back({Cfg.Name, SimStats(), 0, false});
    return K;
  }
  K.Configs.push_back(measureBenchmarkConfig(*B, "unmelded", nullptr, nullptr));
  for (const ClaimConfig &Cfg : Configs)
    K.Configs.push_back(
        measureBenchmarkConfig(*B, Cfg.Name, Cfg.Transform, nullptr));
  return K;
}

KernelClaims darm::check::measureFuzz(const fuzz::FuzzCase &C) {
  return measureFuzz(C, claimConfigs());
}

KernelClaims darm::check::measureFuzz(const fuzz::FuzzCase &C,
                                      const std::vector<ClaimConfig> &Configs) {
  KernelClaims K;
  K.Kernel = C.name();
  K.BlockSize = 0;
  K.Configs.push_back(measureFuzzConfig(C, "unmelded", nullptr, nullptr));
  for (const ClaimConfig &Cfg : Configs)
    K.Configs.push_back(measureFuzzConfig(C, Cfg.Name, Cfg.Transform, nullptr));
  return K;
}

std::vector<KernelClaims> darm::check::measureCorpus(
    ThreadPool &Pool, const std::vector<BenchCell> &Cells,
    const std::vector<uint64_t> &Seeds,
    const std::function<void(const KernelClaims &)> &OnKernel,
    CompileService *Cache) {
  return measureCorpus(Pool, Cells, Seeds, claimConfigs(), OnKernel, Cache);
}

std::vector<KernelClaims> darm::check::measureCorpus(
    ThreadPool &Pool, const std::vector<BenchCell> &Cells,
    const std::vector<uint64_t> &Seeds, const std::vector<ClaimConfig> &Cfgs,
    const std::function<void(const KernelClaims &)> &OnKernel,
    CompileService *Cache) {
  const size_t CfgsPerKernel = 1 + Cfgs.size(); // unmelded first
  const size_t NumKernels = Cells.size() + Seeds.size();

  // Work unit = one (kernel, config slot) measurement; a chunk of whole
  // kernels fans out at a time so progress reports stay timely and held
  // results stay bounded on very large seed sweeps.
  const size_t KernelChunk =
      std::max<size_t>(size_t{8}, size_t{2} * Pool.jobs());

  std::vector<KernelClaims> Out;
  Out.reserve(NumKernels);
  for (size_t ChunkBegin = 0; ChunkBegin < NumKernels;
       ChunkBegin += KernelChunk) {
    const size_t ChunkN = std::min(KernelChunk, NumKernels - ChunkBegin);

    // Benchmark descriptors are created once per cell, on this thread,
    // and shared read-only by the cell's config jobs.
    std::vector<std::unique_ptr<Benchmark>> Benchs(ChunkN);
    for (size_t K = 0; K < ChunkN; ++K) {
      const size_t Kernel = ChunkBegin + K;
      if (Kernel < Cells.size())
        Benchs[K] =
            createBenchmark(Cells[Kernel].Name, Cells[Kernel].BlockSize);
    }

    std::vector<ConfigMetrics> Metrics = parallelMap<ConfigMetrics>(
        Pool, ChunkN * CfgsPerKernel, [&](size_t I) -> ConfigMetrics {
          const size_t K = I / CfgsPerKernel;
          const size_t Slot = I % CfgsPerKernel;
          const size_t Kernel = ChunkBegin + K;
          const std::string &CfgName =
              Slot == 0 ? std::string("unmelded") : Cfgs[Slot - 1].Name;
          const std::function<void(Function &)> NoTransform;
          const auto &Transform =
              Slot == 0 ? NoTransform : Cfgs[Slot - 1].Transform;
          if (Kernel < Cells.size()) {
            if (!Benchs[K])
              return {CfgName, SimStats(), 0, false};
            return measureBenchmarkConfig(*Benchs[K], CfgName, Transform,
                                          Cache);
          }
          return measureFuzzConfig(
              fuzz::FuzzCase(Seeds[Kernel - Cells.size()]), CfgName,
              Transform, Cache);
        });

    for (size_t K = 0; K < ChunkN; ++K) {
      const size_t Kernel = ChunkBegin + K;
      KernelClaims KC;
      if (Kernel < Cells.size()) {
        KC.Kernel = Cells[Kernel].Name;
        KC.BlockSize = Cells[Kernel].BlockSize;
      } else {
        KC.Kernel = fuzz::FuzzCase(Seeds[Kernel - Cells.size()]).name();
        KC.BlockSize = 0;
      }
      for (size_t Slot = 0; Slot < CfgsPerKernel; ++Slot)
        KC.Configs.push_back(std::move(Metrics[K * CfgsPerKernel + Slot]));
      Out.push_back(std::move(KC));
      if (OnKernel)
        OnKernel(Out.back());
    }
  }
  return Out;
}

KernelClaims darm::check::aggregateClaims(const std::vector<KernelClaims> &Ks,
                                          const std::string &Name) {
  KernelClaims Agg;
  Agg.Kernel = Name;
  Agg.BlockSize = 0;
  for (const KernelClaims &K : Ks) {
    for (const ConfigMetrics &C : K.Configs) {
      ConfigMetrics *Slot = nullptr;
      for (ConfigMetrics &A : Agg.Configs)
        if (A.Config == C.Config)
          Slot = &A;
      if (!Slot) {
        Agg.Configs.push_back({C.Config, SimStats(), 0, true});
        Slot = &Agg.Configs.back();
      }
      Slot->Stats += C.Stats;
      Slot->Valid = Slot->Valid && C.Valid;
    }
  }
  return Agg;
}

