//===- Claims.cpp - SimStats plausibility invariants --------------------------===//

#include "darm/check/Claims.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace darm;
using namespace darm::check;

std::string KernelClaims::cellName() const {
  if (BlockSize == 0)
    return Kernel;
  return Kernel + "/bs" + std::to_string(BlockSize);
}

std::string Violation::str() const {
  return Kernel + " " + Config + ": " + Counter + " " + Detail;
}

namespace {

std::string deltaDetail(uint64_t Ref, uint64_t Got) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "ref=%llu got=%llu (%+lld)",
                static_cast<unsigned long long>(Ref),
                static_cast<unsigned long long>(Got),
                static_cast<long long>(Got - Ref));
  return Buf;
}

} // namespace

bool darm::check::statsPlausible(const SimStats &Ref, const SimStats &Got,
                                 const ClaimsOptions &O, std::string *Counter,
                                 std::string *Detail) {
  auto Fail = [&](const char *C, const std::string &D) {
    if (Counter)
      *Counter = C;
    if (Detail)
      *Detail = D;
    return false;
  };
  if (O.Skip)
    return true;

  // Paper §VI-D / Fig. 11: melding removes divergent branches; a
  // transform that adds dynamic mask splits is regressing the claim.
  const uint64_t DBCap =
      Ref.DivergentBranches + O.DivergentBranchSlack +
      static_cast<uint64_t>(std::ceil(
          static_cast<double>(Ref.DivergentBranches) * O.DivergentBranchRelTol));
  if (Got.DivergentBranches > DBCap)
    return Fail("divergent_branches",
                deltaDetail(Ref.DivergentBranches, Got.DivergentBranches));

  // Paper §VI-C / Fig. 10: melding raises VALU lane utilization. Allow a
  // small absolute dip for instruction-mix shifts. Only meaningful when
  // both sides issued VALU work: a kernel whose VALU work vanished
  // entirely (everything dead after melding + DCE) does strictly less
  // work, and 0/0 utilization is undefined, not a regression.
  const double RefUtil = Ref.aluUtilization();
  const double GotUtil = Got.aluUtilization();
  if (Ref.AluLanesTotal != 0 && Got.AluLanesTotal != 0 &&
      GotUtil + O.AluUtilDropTol < RefUtil) {
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "ref=%.4f got=%.4f (tol %.4f)", RefUtil,
                  GotUtil, O.AluUtilDropTol);
    return Fail("alu_util", Buf);
  }

  // Paper §VI-D / Fig. 11: melding merges aligned memory operations, so
  // the dynamic memory-instruction count must not grow.
  const uint64_t RefMem = Ref.VectorMemInsts + Ref.SharedMemInsts;
  const uint64_t GotMem = Got.VectorMemInsts + Got.SharedMemInsts;
  const uint64_t MemCap =
      RefMem + O.MemInstSlack +
      static_cast<uint64_t>(
          std::ceil(static_cast<double>(RefMem) * O.MemInstIncreaseTol));
  if (GotMem > MemCap)
    return Fail("mem_insts", deltaDetail(RefMem, GotMem));

  return true;
}

ClaimsOptions darm::check::optionsForConfig(const std::string &Config,
                                            const ClaimsOptions &Base) {
  ClaimsOptions O = Base;
  static const char *const Exempt[] = {
      // Coverage configs; see ClaimsOptions::Skip.
      "darm-aggressive", "darm-nounpred",
      // Lone canonicalization passes (docs/passes.md): behavior-preserving
      // but direction-free — constprop alone can legitimately raise or
      // lower any counter, so the paper-direction invariants don't apply.
      "constprop", "algebraic", "gvn", "licm", "loop-unroll",
      // Attribution configs: per-seed, an enabled pass may trade one
      // counter against another (the unroller adds dynamic branches it
      // later melds away). Their paper-direction claim is gated at
      // population scale in claims_test instead.
      "darm-constprop", "darm-algebraic", "darm-gvn", "darm-licm",
      "darm-unroll", "darm-canon"};
  for (const char *E : Exempt)
    if (Config == E) {
      O.Skip = true;
      break;
    }
  return O;
}

std::vector<Violation> darm::check::checkClaims(const KernelClaims &K,
                                                const ClaimsOptions &O) {
  std::vector<Violation> Out;
  if (K.Configs.empty())
    return Out;
  const ConfigMetrics &Ref = K.Configs.front();
  auto Add = [&](const std::string &Cfg, const char *Counter,
                 const std::string &Detail) {
    Out.push_back({K.cellName(), Cfg, Counter, Detail});
  };
  if (!Ref.Valid)
    Add(Ref.Config, "validation", "reference failed host validation");

  for (size_t I = 1; I < K.Configs.size(); ++I) {
    const ConfigMetrics &C = K.Configs[I];
    if (!C.Valid)
      Add(C.Config, "validation", "failed host validation");
    if (O.RequireMemoryIdentity && C.MemHash != Ref.MemHash) {
      char Buf[80];
      std::snprintf(Buf, sizeof(Buf), "ref=%016llx got=%016llx",
                    static_cast<unsigned long long>(Ref.MemHash),
                    static_cast<unsigned long long>(C.MemHash));
      Add(C.Config, "memory_image", Buf);
    }
    std::string Counter, Detail;
    if (!statsPlausible(Ref.Stats, C.Stats, optionsForConfig(C.Config, O),
                        &Counter, &Detail))
      Add(C.Config, Counter.c_str(), Detail);
  }
  return Out;
}
