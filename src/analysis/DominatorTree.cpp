//===- DominatorTree.cpp - (Post)dominator trees -----------------------------===//

#include "darm/analysis/DominatorTree.h"

#include "darm/ir/BasicBlock.h"
#include "darm/ir/Function.h"
#include "darm/support/ErrorHandling.h"

#include <algorithm>

using namespace darm;

namespace {

/// Neighbors in the traversal direction: successors for forward dominance,
/// predecessors for post-dominance.
std::vector<BasicBlock *> outEdges(BasicBlock *BB, bool IsPostDom) {
  if (!IsPostDom)
    return BB->successors();
  return BB->predecessors();
}

/// Neighbors in the reverse direction (used by the CHK update step).
std::vector<BasicBlock *> inEdges(BasicBlock *BB, bool IsPostDom) {
  if (!IsPostDom)
    return BB->predecessors();
  return BB->successors();
}

} // namespace

DominatorTreeBase::DominatorTreeBase(Function &F, bool IsPostDom)
    : IsPostDom(IsPostDom) {
  // Roots: the entry block, or every exit (no-successor) block.
  std::vector<BasicBlock *> Roots;
  if (!IsPostDom) {
    Roots.push_back(&F.getEntryBlock());
  } else {
    for (BasicBlock *BB : F)
      if (BB->getNumSuccessors() == 0)
        Roots.push_back(BB);
  }

  // Post-order DFS from the roots along the traversal direction.
  std::vector<BasicBlock *> PostOrder;
  std::unordered_map<BasicBlock *, bool> Visited;
  for (BasicBlock *Root : Roots) {
    if (Visited.count(Root))
      continue;
    // Iterative DFS with explicit stack of (block, next-child-index).
    std::vector<std::pair<BasicBlock *, unsigned>> Stack;
    Visited[Root] = true;
    Stack.push_back({Root, 0});
    while (!Stack.empty()) {
      auto &[BB, ChildIdx] = Stack.back();
      std::vector<BasicBlock *> Out = outEdges(BB, IsPostDom);
      if (ChildIdx < Out.size()) {
        BasicBlock *Next = Out[ChildIdx++];
        if (!Visited.count(Next)) {
          Visited[Next] = true;
          Stack.push_back({Next, 0});
        }
      } else {
        PostOrder.push_back(BB);
        Stack.pop_back();
      }
    }
  }

  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (unsigned I = 0, E = static_cast<unsigned>(RPO.size()); I != E; ++I)
    Index[RPO[I]] = I;

  // kUnset marks nodes whose idom has not been assigned yet; once assigned
  // it is either a block index or kVirtualRoot.
  constexpr unsigned kUnset = kVirtualRoot - 1;
  IDoms.assign(RPO.size(), kUnset);
  Levels.assign(RPO.size(), 0);

  std::vector<bool> IsRoot(RPO.size(), false);
  for (BasicBlock *Root : Roots) {
    unsigned R = Index[Root];
    IsRoot[R] = true;
    IDoms[R] = kVirtualRoot;
  }

  // Iterate to a fixed point (CHK).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 0, E = static_cast<unsigned>(RPO.size()); I != E; ++I) {
      if (IsRoot[I])
        continue;
      unsigned NewIDom = kUnset;
      for (BasicBlock *Pred : inEdges(RPO[I], IsPostDom)) {
        auto It = Index.find(Pred);
        if (It == Index.end())
          continue; // unreachable in this direction
        unsigned P = It->second;
        if (IDoms[P] == kUnset)
          continue; // not yet processed
        NewIDom = (NewIDom == kUnset) ? P : intersect(NewIDom, P);
      }
      if (NewIDom != kUnset && IDoms[I] != NewIDom) {
        IDoms[I] = NewIDom;
        Changed = true;
      }
    }
  }

  // Compute levels (roots are level 1; the virtual root is level 0). RPO
  // guarantees an idom's level is computed before its children's.
  for (unsigned I = 0, E = static_cast<unsigned>(RPO.size()); I != E; ++I) {
    assert(IDoms[I] != kUnset && "reachable block missing an idom");
    if (IDoms[I] == kVirtualRoot)
      Levels[I] = 1;
    else
      Levels[I] = Levels[IDoms[I]] + 1;
  }
}

unsigned DominatorTreeBase::indexOf(const BasicBlock *BB) const {
  auto It = Index.find(const_cast<BasicBlock *>(BB));
  assert(It != Index.end() && "block not reachable in this tree");
  return It->second;
}

unsigned DominatorTreeBase::intersect(unsigned A, unsigned B) const {
  while (A != B) {
    if (A == kVirtualRoot || B == kVirtualRoot)
      return kVirtualRoot;
    while (A > B) {
      A = IDoms[A];
      if (A == kVirtualRoot)
        return kVirtualRoot;
    }
    while (B > A) {
      B = IDoms[B];
      if (B == kVirtualRoot)
        return kVirtualRoot;
    }
  }
  return A;
}

BasicBlock *DominatorTreeBase::getIDom(const BasicBlock *BB) const {
  unsigned I = indexOf(BB);
  unsigned D = IDoms[I];
  return D == kVirtualRoot ? nullptr : RPO[D];
}

bool DominatorTreeBase::dominates(const BasicBlock *A,
                                  const BasicBlock *B) const {
  if (A == B)
    return true;
  if (!isReachable(A) || !isReachable(B))
    return false;
  unsigned IA = indexOf(A);
  unsigned IB = indexOf(B);
  // Walk B up the tree; dominators always have smaller RPO indices.
  while (IB != kVirtualRoot && IB > IA)
    IB = IDoms[IB];
  return IB == IA;
}

bool DominatorTreeBase::dominates(const Instruction *Def,
                                  const Instruction *User) const {
  assert(!IsPostDom && "instruction dominance is a forward-tree query");
  const BasicBlock *DefBB = Def->getParent();
  const BasicBlock *UserBB = User->getParent();
  assert(DefBB && UserBB && "instructions must be in blocks");
  if (DefBB != UserBB)
    return properlyDominates(DefBB, UserBB);
  // Same block: Def must come first. Phis conceptually execute in parallel
  // at the block head; a phi never dominates another phi in the same block
  // (the verifier forbids such uses).
  if (User->isPhi())
    return false;
  for (const Instruction *I : *DefBB) {
    if (I == Def)
      return true;
    if (I == User)
      return false;
  }
  darm_unreachable("instructions not found in their parent block");
}

BasicBlock *
DominatorTreeBase::findNearestCommonDominator(BasicBlock *A,
                                              BasicBlock *B) const {
  unsigned IA = indexOf(A);
  unsigned IB = indexOf(B);
  while (IA != IB) {
    if (IA == kVirtualRoot || IB == kVirtualRoot)
      return nullptr;
    if (IA > IB)
      IA = IDoms[IA];
    else
      IB = IDoms[IB];
  }
  return RPO[IA];
}

unsigned DominatorTreeBase::getLevel(const BasicBlock *BB) const {
  return Levels[indexOf(BB)];
}

std::vector<BasicBlock *>
DominatorTreeBase::getChildren(const BasicBlock *BB) const {
  std::vector<BasicBlock *> Result;
  unsigned I = indexOf(BB);
  for (unsigned J = 0, E = static_cast<unsigned>(RPO.size()); J != E; ++J)
    if (IDoms[J] == I)
      Result.push_back(RPO[J]);
  return Result;
}
