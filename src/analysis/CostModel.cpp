//===- CostModel.cpp - Instruction latency model --------------------------------===//

#include "darm/analysis/CostModel.h"

#include "darm/ir/BasicBlock.h"
#include "darm/support/ErrorHandling.h"

using namespace darm;

unsigned CostModel::getLatency(Opcode Op, AddressSpace AS) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
  case Opcode::ICmp:
  case Opcode::Select:
  case Opcode::Gep:
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::Trunc:
  case Opcode::SIToFP:
  case Opcode::FPToSI:
    return 1;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FCmp:
    return 2;
  case Opcode::Mul:
    return 4;
  case Opcode::FDiv:
    return 8;
  case Opcode::SDiv:
  case Opcode::SRem:
  case Opcode::UDiv:
  case Opcode::URem:
    return 16;
  case Opcode::Load:
  case Opcode::Store:
    return AS == AddressSpace::Shared ? SharedMemLatency : GlobalMemLatency;
  case Opcode::Phi:
    return 0; // resolved by register assignment, free at runtime
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
    return 1;
  case Opcode::Call:
    return 1; // thread-index queries; barrier cost handled below
  case Opcode::NumOpcodes:
    break;
  }
  darm_unreachable("unknown opcode");
}

unsigned CostModel::getLatency(const Instruction *I) {
  switch (I->getOpcode()) {
  case Opcode::Load:
    return getLatency(Opcode::Load, cast<LoadInst>(I)->getAddressSpace());
  case Opcode::Store:
    return getLatency(Opcode::Store, cast<StoreInst>(I)->getAddressSpace());
  case Opcode::Call:
    switch (cast<CallInst>(I)->getIntrinsic()) {
    case Intrinsic::Barrier:
      return 4;
    case Intrinsic::ShflSync:
      return 2;
    default:
      return 1;
    }
  default:
    return getLatency(I->getOpcode());
  }
}

unsigned CostModel::getBlockLatency(const BasicBlock &BB) {
  unsigned Total = 0;
  for (const Instruction *I : BB)
    Total += getLatency(I);
  return Total;
}
