//===- RegionQuery.cpp - SESE region queries -----------------------------------===//

#include "darm/analysis/RegionQuery.h"

#include "darm/analysis/DominatorTree.h"
#include "darm/ir/BasicBlock.h"
#include "darm/ir/Function.h"

using namespace darm;

std::set<BasicBlock *> RegionQuery::collectBlocks(BasicBlock *Entry,
                                                  BasicBlock *Exit) const {
  std::set<BasicBlock *> Body;
  std::vector<BasicBlock *> Worklist{Entry};
  Body.insert(Entry);
  while (!Worklist.empty()) {
    BasicBlock *BB = Worklist.back();
    Worklist.pop_back();
    for (BasicBlock *Succ : BB->successors())
      if (Succ != Exit && Body.insert(Succ).second)
        Worklist.push_back(Succ);
  }
  return Body;
}

bool RegionQuery::isRegion(BasicBlock *Entry, BasicBlock *Exit) const {
  if (Entry == Exit)
    return false;
  if (!DT.isReachable(Entry) || !DT.isReachable(Exit))
    return false;
  std::set<BasicBlock *> Body = collectBlocks(Entry, Exit);
  if (Body.count(Exit))
    return false; // exit reachable only *around* itself: not a region
  for (BasicBlock *BB : Body) {
    // Only Entry may receive edges from outside the body.
    if (BB != Entry) {
      for (BasicBlock *Pred : BB->predecessors())
        if (!Body.count(Pred))
          return false;
    }
    // Edges leaving the body must target Exit (collectBlocks guarantees
    // successors are in Body or equal to Exit, so nothing to re-check).
  }
  // Entry must not have body-internal back edges from outside... it may
  // have them from inside (loops). Outside preds are the entry edges.
  return true;
}

bool RegionQuery::isSimpleRegion(BasicBlock *Entry, BasicBlock *Exit) const {
  if (!isRegion(Entry, Exit))
    return false;
  return countEntryEdges(Entry, Exit) == 1 && countExitEdges(Entry, Exit) == 1;
}

unsigned RegionQuery::countEntryEdges(BasicBlock *Entry,
                                      BasicBlock *Exit) const {
  std::set<BasicBlock *> Body = collectBlocks(Entry, Exit);
  unsigned Count = 0;
  for (BasicBlock *Pred : Entry->predecessors())
    if (!Body.count(Pred))
      ++Count;
  return Count;
}

unsigned RegionQuery::countExitEdges(BasicBlock *Entry,
                                     BasicBlock *Exit) const {
  std::set<BasicBlock *> Body = collectBlocks(Entry, Exit);
  unsigned Count = 0;
  for (BasicBlock *Pred : Exit->predecessors())
    if (Body.count(Pred))
      ++Count;
  return Count;
}

RegionDesc RegionQuery::getSmallestRegion(BasicBlock *Entry) const {
  // Candidate exits are Entry's proper post-dominators, nearest first.
  if (!PDT.isReachable(Entry))
    return {};
  for (BasicBlock *X = PDT.getIDom(Entry); X; X = PDT.getIDom(X))
    if (isRegion(Entry, X))
      return {Entry, X};
  return {};
}

RegionDesc RegionQuery::getLargestRegionWithin(
    BasicBlock *Entry, const std::set<BasicBlock *> &Within,
    BasicBlock *Barrier) const {
  if (!PDT.isReachable(Entry))
    return {};
  RegionDesc Best;
  for (BasicBlock *X = PDT.getIDom(Entry); X && X != Barrier;
       X = PDT.getIDom(X)) {
    if (!isRegion(Entry, X))
      continue;
    // The body must stay inside the enclosing set.
    bool Inside = true;
    for (BasicBlock *BB : collectBlocks(Entry, X))
      if (!Within.count(BB)) {
        Inside = false;
        break;
      }
    if (Inside)
      Best = {Entry, X}; // keep scanning: farther exits are larger regions
  }
  return Best;
}
