//===- Verifier.cpp - IR well-formedness checks ---------------------------------===//

#include "darm/analysis/Verifier.h"

#include "darm/analysis/DominatorTree.h"
#include "darm/ir/Function.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

using namespace darm;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(Function &F) : F(F) {}

  bool run(std::string *Error) {
    checkStructure();
    if (Failed)
      return report(Error);
    checkPredSuccConsistency();
    checkPhis();
    checkTypes();
    if (Failed)
      return report(Error);
    checkSSADominance();
    return report(Error);
  }

private:
  bool report(std::string *Error) {
    if (Failed && Error)
      *Error = Message;
    return !Failed;
  }

  void fail(const std::string &Msg) {
    if (!Failed) {
      Failed = true;
      Message = "in function '" + F.getName() + "': " + Msg;
    }
  }

  void failAt(const Instruction *I, const std::string &Msg) {
    fail(Msg + " [" + printInstruction(*I) + "]");
  }

  void checkStructure() {
    if (F.empty()) {
      fail("function has no blocks");
      return;
    }
    if (F.getEntryBlock().getNumPredecessors() != 0)
      fail("entry block must not have predecessors");
    for (BasicBlock *BB : F) {
      if (BB->empty()) {
        fail("block '" + BB->getName() + "' is empty");
        continue;
      }
      if (!BB->getTerminator()) {
        fail("block '" + BB->getName() + "' lacks a terminator");
        continue;
      }
      bool SeenNonPhi = false;
      for (Instruction *I : *BB) {
        if (I->isTerminator() && I != BB->back()) {
          failAt(I, "terminator in the middle of block '" + BB->getName() +
                        "'");
          return;
        }
        if (I->isPhi() && SeenNonPhi) {
          failAt(I, "phi after non-phi in block '" + BB->getName() + "'");
          return;
        }
        if (!I->isPhi())
          SeenNonPhi = true;
        if (I->getParent() != BB) {
          failAt(I, "instruction parent pointer is wrong");
          return;
        }
      }
      for (BasicBlock *Succ : BB->successors())
        if (Succ->getParent() != &F) {
          fail("successor of '" + BB->getName() +
               "' belongs to another function");
          return;
        }
    }
  }

  void checkPredSuccConsistency() {
    // Recompute predecessor multisets from terminators and compare.
    std::map<BasicBlock *, std::multiset<BasicBlock *>> Expected;
    for (BasicBlock *BB : F)
      for (BasicBlock *Succ : BB->successors())
        Expected[Succ].insert(BB);
    for (BasicBlock *BB : F) {
      std::multiset<BasicBlock *> Actual(BB->predecessors().begin(),
                                         BB->predecessors().end());
      if (Actual != Expected[BB]) {
        fail("predecessor list of '" + BB->getName() +
             "' is out of sync with terminators");
        return;
      }
    }
  }

  void checkPhis() {
    for (BasicBlock *BB : F) {
      // Distinct predecessor blocks (duplicate edges collapse to one phi
      // entry, as in LLVM).
      std::set<BasicBlock *> PredSet(BB->predecessors().begin(),
                                     BB->predecessors().end());
      for (PhiInst *P : BB->phis()) {
        std::set<BasicBlock *> Seen;
        for (unsigned I = 0, E = P->getNumIncoming(); I != E; ++I) {
          BasicBlock *In = P->getIncomingBlock(I);
          if (!Seen.insert(In).second) {
            failAt(P, "duplicate phi entry for block '" + In->getName() +
                          "'");
            return;
          }
          if (!PredSet.count(In)) {
            failAt(P, "phi entry for non-predecessor '" + In->getName() +
                          "'");
            return;
          }
        }
        if (Seen.size() != PredSet.size()) {
          failAt(P, "phi does not cover all predecessors of '" +
                        BB->getName() + "'");
          return;
        }
      }
    }
  }

  void checkTypes() {
    for (BasicBlock *BB : F)
      for (Instruction *I : *BB) {
        if (I->isBinaryOp()) {
          if (I->getOperand(0)->getType() != I->getOperand(1)->getType() ||
              I->getOperand(0)->getType() != I->getType())
            failAt(I, "binary operand/result type mismatch");
        } else if (auto *S = dyn_cast<StoreInst>(I)) {
          if (!S->getPointer()->getType()->isPointer() ||
              S->getPointer()->getType()->getPointee() !=
                  S->getValueOperand()->getType())
            failAt(I, "store value/pointer type mismatch");
        } else if (auto *B = dyn_cast<CondBrInst>(I)) {
          if (!B->getCondition()->getType()->isInt1())
            failAt(I, "branch condition must be i1");
        } else if (auto *P = dyn_cast<PhiInst>(I)) {
          for (unsigned K = 0, E = P->getNumIncoming(); K != E; ++K)
            if (P->getIncomingValue(K)->getType() != P->getType())
              failAt(I, "phi incoming type mismatch");
        }
        // Operand use-list back references.
        for (unsigned K = 0, E = I->getNumOperands(); K != E; ++K) {
          const auto &Uses = I->getOperand(K)->uses();
          if (std::find(Uses.begin(), Uses.end(),
                        Use{I, K}) == Uses.end()) {
            failAt(I, "operand use-list missing back reference");
            return;
          }
        }
      }
  }

  void checkSSADominance() {
    DominatorTree DT(F);
    for (BasicBlock *BB : F) {
      if (!DT.isReachable(BB))
        continue; // values in unreachable code are unconstrained
      for (Instruction *I : *BB) {
        for (unsigned K = 0, E = I->getNumOperands(); K != E; ++K) {
          auto *Def = dyn_cast<Instruction>(I->getOperand(K));
          if (!Def)
            continue;
          if (!Def->getParent()) {
            failAt(I, "operand instruction is not in any block");
            return;
          }
          if (auto *P = dyn_cast<PhiInst>(I)) {
            BasicBlock *In = P->getIncomingBlock(K);
            if (!DT.isReachable(In))
              continue;
            // The def must dominate the end of the incoming block.
            if (!DT.dominates(Def->getParent(), In)) {
              failAt(I, "phi incoming value does not dominate its edge");
              return;
            }
            continue;
          }
          if (!DT.dominates(Def, I)) {
            failAt(I, "definition does not dominate use");
            return;
          }
        }
      }
    }
  }

  Function &F;
  bool Failed = false;
  std::string Message;
};

} // namespace

bool darm::verifyFunction(Function &F, std::string *Error) {
  return VerifierImpl(F).run(Error);
}

bool darm::verifyModule(Module &M, std::string *Error) {
  for (const auto &F : M.functions())
    if (!verifyFunction(*F, Error))
      return false;
  return true;
}
