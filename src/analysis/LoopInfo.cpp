//===- LoopInfo.cpp - Natural loop detection ------------------------------------===//

#include "darm/analysis/LoopInfo.h"

#include "darm/analysis/DominatorTree.h"
#include "darm/ir/BasicBlock.h"
#include "darm/ir/Function.h"

#include <algorithm>

using namespace darm;

std::vector<BasicBlock *> Loop::getLatches() const {
  std::vector<BasicBlock *> Latches;
  for (BasicBlock *Pred : Header->predecessors())
    if (contains(Pred))
      Latches.push_back(Pred);
  return Latches;
}

BasicBlock *Loop::getPreheader() const {
  BasicBlock *Pre = nullptr;
  for (BasicBlock *Pred : Header->predecessors()) {
    if (contains(Pred))
      continue;
    if (Pre && Pre != Pred)
      return nullptr; // several entry predecessors
    Pre = Pred;
  }
  if (!Pre || Pre->getSingleSuccessor() != Header)
    return nullptr; // entry edge is critical
  return Pre;
}

LoopInfo::LoopInfo(Function &F, const DominatorTree &DT) {
  // Collect the body of each natural loop: for a back edge Latch->Header,
  // the body is Header plus everything that reaches Latch without passing
  // Header (walked on the reverse CFG).
  std::unordered_map<BasicBlock *, Loop *> HeaderMap;
  for (BasicBlock *BB : F) {
    if (!DT.isReachable(BB))
      continue;
    for (BasicBlock *Succ : BB->successors()) {
      if (!DT.dominates(Succ, BB))
        continue; // not a back edge
      Loop *&L = HeaderMap[Succ];
      if (!L) {
        Loops.push_back(std::make_unique<Loop>());
        L = Loops.back().get();
        L->Header = Succ;
        L->Blocks.insert(Succ);
      }
      // Reverse flood fill from the latch.
      std::vector<BasicBlock *> Worklist;
      if (L->Blocks.insert(BB).second)
        Worklist.push_back(BB);
      while (!Worklist.empty()) {
        BasicBlock *Cur = Worklist.back();
        Worklist.pop_back();
        for (BasicBlock *Pred : Cur->predecessors())
          if (DT.isReachable(Pred) && L->Blocks.insert(Pred).second)
            Worklist.push_back(Pred);
      }
    }
  }

  // Nesting: sort loops by size ascending; the innermost loop for a block
  // is the smallest loop containing it. A loop's parent is the smallest
  // strictly larger loop containing its header.
  std::vector<Loop *> BySize;
  for (const auto &L : Loops)
    BySize.push_back(L.get());
  std::sort(BySize.begin(), BySize.end(), [](Loop *A, Loop *B) {
    return A->Blocks.size() < B->Blocks.size();
  });
  for (Loop *L : BySize)
    for (BasicBlock *BB : L->Blocks)
      if (!BlockMap.count(BB))
        BlockMap[BB] = L;
  for (Loop *L : BySize) {
    for (Loop *Candidate : BySize) {
      if (Candidate == L || Candidate->Blocks.size() <= L->Blocks.size())
        continue;
      if (Candidate->contains(L->Header)) {
        L->Parent = Candidate;
        Candidate->SubLoops.push_back(L);
        break;
      }
    }
  }
}

Loop *LoopInfo::getLoopFor(const BasicBlock *BB) const {
  auto It = BlockMap.find(BB);
  return It == BlockMap.end() ? nullptr : It->second;
}

std::vector<Loop *> LoopInfo::topLevelLoops() const {
  std::vector<Loop *> Result;
  for (const auto &L : Loops)
    if (!L->getParent())
      Result.push_back(L.get());
  return Result;
}
