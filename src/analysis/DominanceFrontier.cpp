//===- DominanceFrontier.cpp - DF and iterated DF ------------------------------===//

#include "darm/analysis/DominanceFrontier.h"

#include "darm/analysis/DominatorTree.h"
#include "darm/ir/BasicBlock.h"
#include "darm/ir/Function.h"

#include <algorithm>

using namespace darm;

DominanceFrontier::DominanceFrontier(Function &F, const DominatorTree &DT) {
  unsigned Pos = 0;
  for (BasicBlock *BB : F)
    Order[BB] = Pos++;
  // Cytron et al.: a join block J is in DF(R) for every R on the idom chain
  // from each predecessor of J up to (but excluding) idom(J).
  for (BasicBlock *BB : F) {
    if (!DT.isReachable(BB) || BB->getNumPredecessors() < 2)
      continue;
    BasicBlock *IDom = DT.getIDom(BB);
    for (BasicBlock *Pred : BB->predecessors()) {
      if (!DT.isReachable(Pred))
        continue;
      BasicBlock *Runner = Pred;
      while (Runner && Runner != IDom) {
        Frontiers[Runner].insert(BB);
        Runner = DT.getIDom(Runner);
      }
    }
  }
}

const std::set<BasicBlock *> &
DominanceFrontier::getFrontier(BasicBlock *BB) const {
  auto It = Frontiers.find(BB);
  return It == Frontiers.end() ? Empty : It->second;
}

std::vector<BasicBlock *> DominanceFrontier::computeIDF(
    const std::vector<BasicBlock *> &DefBlocks) const {
  std::set<BasicBlock *> Seen;
  std::vector<BasicBlock *> Worklist(DefBlocks.begin(), DefBlocks.end());
  std::vector<BasicBlock *> Result;
  while (!Worklist.empty()) {
    BasicBlock *BB = Worklist.back();
    Worklist.pop_back();
    for (BasicBlock *J : getFrontier(BB))
      if (Seen.insert(J).second) {
        Result.push_back(J);
        Worklist.push_back(J);
      }
  }
  // Function block order, not discovery (= pointer-set) order: phi
  // placement iterates this, and fresh names must come out the same no
  // matter where the heap put the blocks.
  std::sort(Result.begin(), Result.end(), [this](BasicBlock *A, BasicBlock *B) {
    return Order.at(A) < Order.at(B);
  });
  return Result;
}
