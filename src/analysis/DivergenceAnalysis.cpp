//===- DivergenceAnalysis.cpp - SIMT divergence analysis -------------------------===//

#include "darm/analysis/DivergenceAnalysis.h"

#include "darm/analysis/DominanceFrontier.h"
#include "darm/analysis/DominatorTree.h"
#include "darm/ir/BasicBlock.h"
#include "darm/ir/Function.h"
#include "darm/ir/Instruction.h"

using namespace darm;

DivergenceAnalysis::DivergenceAnalysis(Function &F, const DominatorTree &DT,
                                       const DominanceFrontier &DF,
                                       DivergenceSeeds Seeds)
    : F(F), DT(DT), DF(DF) {
  std::set<Value *> Worklist;

  // Seeds: per-lane identity queries, plus — under the ExecutionTime
  // policy (see DivergenceAnalysis.h) — every value that can change with
  // when a lane executes it rather than which lane it is.
  const bool TimeVarying = Seeds == DivergenceSeeds::ExecutionTime;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB) {
      if (TimeVarying && I->getOpcode() == Opcode::Load) {
        markDivergent(I, Worklist);
        continue;
      }
      if (auto *C = dyn_cast<CallInst>(I)) {
        Intrinsic IID = C->getIntrinsic();
        if (IID == Intrinsic::TidX || IID == Intrinsic::LaneId ||
            (TimeVarying && IID == Intrinsic::ShflSync))
          markDivergent(I, Worklist);
      }
    }

  while (!Worklist.empty()) {
    Value *V = *Worklist.begin();
    Worklist.erase(Worklist.begin());

    // Data dependence: users of a divergent value become divergent.
    for (const Use &U : V->uses()) {
      auto *I = dyn_cast<Instruction>(static_cast<Value *>(U.TheUser));
      if (!I || !I->getParent())
        continue;
      if (I->getType()->isVoid()) {
        // Branches are handled via sync dependence below; stores produce
        // no value.
        continue;
      }
      markDivergent(I, Worklist);
    }

    // Sync dependence: a branch on a divergent condition taints the phis
    // at the join points of its disjoint paths — the iterated dominance
    // frontier of its successor set.
    for (const Use &U : V->uses()) {
      auto *Br = dyn_cast<CondBrInst>(static_cast<Value *>(U.TheUser));
      if (!Br || U.OpIdx != 0 || !Br->getParent())
        continue;
      std::vector<BasicBlock *> Succs = {Br->getTrueSuccessor(),
                                         Br->getFalseSuccessor()};
      for (BasicBlock *J : DF.computeIDF(Succs))
        for (PhiInst *P : J->phis())
          markDivergent(P, Worklist);
    }
  }
}

void DivergenceAnalysis::markDivergent(Value *V, std::set<Value *> &Worklist) {
  if (Divergent.insert(V).second)
    Worklist.insert(V);
}

bool DivergenceAnalysis::hasDivergentBranch(const BasicBlock *BB) const {
  const Instruction *T = BB->getTerminator();
  if (!T)
    return false;
  const auto *Br = dyn_cast<CondBrInst>(T);
  return Br && isDivergent(Br->getCondition());
}

unsigned DivergenceAnalysis::countDivergentBranches() const {
  unsigned Count = 0;
  for (const BasicBlock *BB : F)
    if (hasDivergentBranch(BB))
      ++Count;
  return Count;
}
