//===- DiffOracle.cpp - Multi-config differential oracle ----------------------===//

#include "darm/fuzz/DiffOracle.h"

#include "darm/analysis/Verifier.h"
#include "darm/core/CompileService.h"
#include "darm/core/DARMPass.h"
#include "darm/fuzz/Minimizer.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/ir/Serialize.h"
#include "darm/transform/DCE.h"
#include "darm/transform/Passes.h"
#include "darm/transform/SimplifyCFG.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace darm;
using namespace darm::fuzz;

namespace {

/// Final device-memory image of one simulated case (all launches),
/// captured bitwise (floats as their 32-bit patterns, so NaN compares
/// like any value), plus the aggregated counters for the claims axis.
struct MemImage {
  std::vector<uint32_t> IntBits, FloatBits;
  /// Counters over all launches; compared for identity on the round-trip
  /// axis and for plausibility (docs/claims.md) on transform axes. Not
  /// part of operator== — image identity and counter checks report
  /// distinct diagnostics.
  SimStats Stats;
  /// Set when the simulator aborted (OOB store, runaway loop) — a
  /// first-class finding: the reference never aborts, so a transformed
  /// kernel that does was miscompiled.
  std::string Fatal;

  bool operator==(const MemImage &O) const {
    return Fatal == O.Fatal && IntBits == O.IntBits &&
           FloatBits == O.FloatBits;
  }
};

MemImage runCase(Function &F, const FuzzCase &C) {
  GlobalMemory Mem;
  std::vector<uint64_t> Args = setupFuzzMemory(C, Mem);
  MemImage Img;
  Img.Stats = simulateFuzzCase(F, C, Args, Mem, &Img.Fatal);
  if (!Img.Fatal.empty())
    return Img;
  Img.IntBits.reserve(C.IntElems);
  for (unsigned I = 0; I < C.IntElems; ++I)
    Img.IntBits.push_back(
        static_cast<uint32_t>(Mem.load(Args[0] + uint64_t{I} * 4, 4)));
  Img.FloatBits.reserve(C.FloatElems);
  for (unsigned I = 0; I < C.FloatElems; ++I)
    Img.FloatBits.push_back(
        static_cast<uint32_t>(Mem.load(Args[1] + uint64_t{I} * 4, 4)));
  return Img;
}

/// "<buf>[i]: ref=0x... got=0x..." for the first differing element.
std::string diffDetail(const MemImage &Ref, const MemImage &Got) {
  char Buf[96];
  if (Got.Fatal != Ref.Fatal)
    return "simulator abort: " +
           (Got.Fatal.empty() ? "(reference aborted: " + Ref.Fatal + ")"
                              : Got.Fatal);
  for (size_t I = 0; I < Ref.IntBits.size(); ++I)
    if (Ref.IntBits[I] != Got.IntBits[I]) {
      std::snprintf(Buf, sizeof(Buf), "i32[%zu]: ref=0x%08x got=0x%08x", I,
                    Ref.IntBits[I], Got.IntBits[I]);
      return Buf;
    }
  for (size_t I = 0; I < Ref.FloatBits.size(); ++I)
    if (Ref.FloatBits[I] != Got.FloatBits[I]) {
      std::snprintf(Buf, sizeof(Buf), "f32[%zu]: ref=0x%08x got=0x%08x", I,
                    Ref.FloatBits[I], Got.FloatBits[I]);
      return Buf;
    }
  return "images equal";
}

/// Evaluates the round-trip axis from \p Text, the reference kernel's
/// printed form (captured before any pass touches it, so the sweep can
/// reuse the built reference for the cleanup baseline afterwards).
/// Returns true + fills Detail if the axis mismatches. Printing must not
/// change execution at all, so the round-trip axis requires every
/// counter to be *identical*, not merely plausible.
bool roundTripFails(const std::string &Text, const FuzzCase &C,
                    const MemImage &Ref, std::string &Detail) {
  Context PCtx;
  std::string Err;
  auto PM = parseModule(PCtx, Text, &Err);
  if (!PM) {
    Detail = "parse error: " + Err;
    return true;
  }
  Function *PF = PM->functions().front().get();
  if (!verifyFunction(*PF, &Err)) {
    Detail = "parsed kernel fails verifier: " + Err;
    return true;
  }
  if (printFunction(*PF) != Text) {
    Detail = "print->parse->print not stable";
    return true;
  }
  MemImage Img = runCase(*PF, C);
  if (!(Img == Ref)) {
    Detail = "parsed kernel diverges: " + diffDetail(Ref, Img);
    return true;
  }
  for (unsigned I = 0; I < SimStats::NumCounters; ++I)
    if (Img.Stats.counter(I) != Ref.Stats.counter(I)) {
      char Buf[96];
      std::snprintf(Buf, sizeof(Buf), "ref=%llu got=%llu",
                    static_cast<unsigned long long>(Ref.Stats.counter(I)),
                    static_cast<unsigned long long>(Img.Stats.counter(I)));
      Detail = std::string("parsed kernel changes counters: ") +
               SimStats::counterName(I) + " " + Buf;
      return true;
    }
  return false;
}

/// Evaluates the binary-serialization axis from \p Bytes, the reference
/// module's serialized form (captured before any pass touches it, like
/// the round-trip axis text). The deserialized kernel must verify,
/// re-serialize to the identical bytes, and re-simulate to the identical
/// image and counters — snapshots feed the compile cache
/// (docs/caching.md), where "close" is a miscompile.
bool serializeFails(const std::vector<uint8_t> &Bytes, const FuzzCase &C,
                    const MemImage &Ref, std::string &Detail) {
  if (Bytes.empty()) {
    Detail = "reference kernel is not serializable";
    return true;
  }
  Context SCtx;
  std::string Err;
  auto SM = deserializeModule(SCtx, Bytes, &Err);
  if (!SM || SM->functions().empty()) {
    Detail = "deserialize error: " + Err;
    return true;
  }
  Function *SF = SM->functions().front().get();
  if (!verifyFunction(*SF, &Err)) {
    Detail = "deserialized kernel fails verifier: " + Err;
    return true;
  }
  if (serializeModule(*SM) != Bytes) {
    Detail = "serialize->deserialize->serialize not stable";
    return true;
  }
  MemImage Img = runCase(*SF, C);
  if (!(Img == Ref)) {
    Detail = "deserialized kernel diverges: " + diffDetail(Ref, Img);
    return true;
  }
  for (unsigned I = 0; I < SimStats::NumCounters; ++I)
    if (Img.Stats.counter(I) != Ref.Stats.counter(I)) {
      char Buf[96];
      std::snprintf(Buf, sizeof(Buf), "ref=%llu got=%llu",
                    static_cast<unsigned long long>(Ref.Stats.counter(I)),
                    static_cast<unsigned long long>(Img.Stats.counter(I)));
      Detail = std::string("deserialized kernel changes counters: ") +
               SimStats::counterName(I) + " " + Buf;
      return true;
    }
  return false;
}

/// Shared tail of the cleaned-baseline check: runs the *non-melding*
/// half of the DARM pipeline (simplifycfg + DCE) on a throwaway copy
/// \p F, verifies, re-simulates, and compares against the reference
/// image. Used by both the sweep (rebuild-from-edits copy) and the
/// repro re-check (print->parse copy) so the two can never drift.
bool cleanAndCompare(Function &F, const FuzzCase &C, const MemImage &Ref,
                     SimStats &Baseline, std::string &Detail) {
  simplifyCFG(F);
  eliminateDeadCode(F);
  std::string Err;
  if (!verifyFunction(F, &Err)) {
    Detail = "verifier after simplifycfg+dce: " + Err;
    return false;
  }
  MemImage Img = runCase(F, C);
  if (!(Img == Ref)) {
    Detail = "simplifycfg+dce changed behaviour: " + diffDetail(Ref, Img);
    return false;
  }
  Baseline = Img.Stats;
  return true;
}

/// The claims baseline for \p C (+ edits): the same kernel through
/// simplifycfg + DCE. The raw generated kernel is full of dead code
/// that the melding configs' own DCE stage removes, so comparing their
/// counters against the raw reference would be apples-to-oranges —
/// utilization shifts from deleting dead full-mask code would read as
/// claim regressions. The cleaned counterpart must still produce the
/// reference memory image; a difference is a first-class finding
/// against the cleanup passes (config "cleanup"). Returns false +
/// fills Detail on such a finding.
bool claimsBaseline(const FuzzCase &C, const std::vector<Edit> &Edits,
                    const MemImage &Ref, SimStats &Baseline,
                    std::string &Detail) {
  Context Ctx;
  Module M(Ctx, "cleanup");
  Function *F = buildEdited(M, C, Edits);
  if (!F) {
    Detail = "edit script failed to replay";
    return false;
  }
  return cleanAndCompare(*F, C, Ref, Baseline, Detail);
}

/// \p ClaimsRef is the cleaned-baseline stats when the caller already
/// computed them (the sweep amortizes one baseline over all axes); null
/// lets this function compute the baseline lazily — and only once the
/// memory images match, so minimizer probes that fail on the image diff
/// never pay for a baseline simulation.
bool transformFails(const OracleConfig &Cfg, const FuzzCase &C,
                    const std::vector<Edit> &Edits, const MemImage &Ref,
                    const SimStats *ClaimsRef, const OracleOptions &O,
                    std::string &Detail) {
  Context Ctx;
  Module M(Ctx, "axis");
  Function *F = buildEdited(M, C, Edits);
  if (!F) {
    Detail = "edit script failed to replay";
    return false; // can't evaluate; treat as not-failing
  }
  Context ArtCtx; // owns the deserialized artifact module when cached
  std::unique_ptr<Module> ArtM;
  if (O.Cache && Edits.empty()) {
    // Cached axis: compile through the service and evaluate the
    // deserialized artifact — the exact bytes a warm hit would serve,
    // so verdicts cannot depend on cache state. The fingerprint is
    // fuzz-specific: the claims corpus wraps the same transforms in
    // simplifycfg+dce, this axis does not.
    CompileService::Artifact Art = O.Cache->getOrCompile(
        *F, "darm-fuzz-v1;" + Cfg.Name,
        [&Cfg](Function &K, DARMStats &) { Cfg.Transform(K); },
        /*IncludeProgram=*/false);
    if (Art->failed()) {
      // A verifier failure is cached as a negative artifact carrying the
      // same message the direct path would report.
      Detail = "verifier: " + Art->CompileError;
      return true;
    }
    ArtM = moduleFromArtifact(*Art, ArtCtx);
    if (!ArtM || ArtM->functions().empty()) {
      Detail = "artifact module does not deserialize";
      return true;
    }
    F = ArtM->functions().front().get();
  } else {
    Cfg.Transform(*F);
    std::string Err;
    if (!verifyFunction(*F, &Err)) {
      Detail = "verifier: " + Err;
      return true;
    }
  }
  MemImage Img = runCase(*F, C);
  if (!(Img == Ref)) {
    Detail = diffDetail(Ref, Img);
    return true;
  }
  // Image-identical: the kernel computes the right answers. The claims
  // axis now checks it also moved the counters in the claimed direction,
  // against the cleaned (simplifycfg+dce) baseline.
  if (O.Claims) {
    SimStats Baseline;
    if (!ClaimsRef) {
      std::string BDetail;
      if (!claimsBaseline(C, Edits, Ref, Baseline, BDetail))
        return false; // baseline broken under this edit; not this axis
      ClaimsRef = &Baseline;
    }
    std::string Counter, CDetail;
    if (!check::statsPlausible(*ClaimsRef, Img.Stats,
                               check::optionsForConfig(Cfg.Name, O.ClaimsOpts),
                               &Counter, &CDetail)) {
      Detail = "claims: " + Counter + " " + CDetail;
      return true;
    }
  }
  return false;
}

/// Which kind of axis a failure belongs to, for minimization replay.
enum class AxisKind { Transform, RoundTrip, Serialize, Cleanup };

/// Full axis evaluation used by both the oracle sweep and the minimizer
/// predicate: rebuild (with edits), re-run reference, test the axis.
bool axisFailsOnEdits(const OracleConfig *Cfg, AxisKind Kind,
                      const FuzzCase &C, const std::vector<Edit> &Edits,
                      const OracleOptions &O, std::string &Detail) {
  Context RCtx;
  Module RM(RCtx, "ref");
  Function *RF = buildEdited(RM, C, Edits);
  if (!RF)
    return false;
  std::string Err;
  if (!verifyFunction(*RF, &Err))
    return false; // edited reference must stay valid
  MemImage Ref = runCase(*RF, C);
  if (!Ref.Fatal.empty())
    return false; // an edit that aborts the reference is not a reduction
  if (Kind == AxisKind::RoundTrip)
    return roundTripFails(printFunction(*RF), C, Ref, Detail);
  if (Kind == AxisKind::Serialize)
    return serializeFails(serializeModule(RM), C, Ref, Detail);
  if (Kind == AxisKind::Cleanup) {
    SimStats Baseline;
    std::string BDetail;
    const bool BaselineOK = claimsBaseline(C, Edits, Ref, Baseline, BDetail);
    Detail = BDetail;
    return !BaselineOK;
  }
  // Transform axis: the claims baseline (when needed at all) is computed
  // lazily inside transformFails, after the image-identity check.
  return transformFails(*Cfg, C, Edits, Ref, /*ClaimsRef=*/nullptr, O, Detail);
}

} // namespace

std::vector<OracleConfig> darm::fuzz::defaultConfigs() {
  std::vector<OracleConfig> Cfgs;
  Cfgs.push_back({"darm", [](Function &F) { runDARM(F); }});
  Cfgs.push_back({"darm-aggressive", [](Function &F) {
                    DARMConfig Cfg;
                    Cfg.ProfitThreshold = 0.05;
                    Cfg.MinAbsoluteSaving = 0.0;
                    runDARM(F, Cfg);
                  }});
  Cfgs.push_back({"darm-nounpred", [](Function &F) {
                    DARMConfig Cfg;
                    Cfg.EnableUnpredication = false;
                    runDARM(F, Cfg);
                  }});
  Cfgs.push_back(
      {"branch-fusion", [](Function &F) { runBranchFusion(F); }});
  // Per-pass axes (docs/passes.md): each canonicalization pass runs ALONE,
  // so a miscompile is attributed to one pass, not the pipeline.
  for (const PassInfo &P :
       {*findTransformPass("constprop"), *findTransformPass("algebraic"),
        *findTransformPass("gvn"), *findTransformPass("licm"),
        *findTransformPass("loop-unroll")})
    Cfgs.push_back({P.Name, [Run = P.Run](Function &F) { Run(F); }});
  // Attribution axes: the full pipeline with exactly one canonicalization
  // pass enabled, and with all five ("darm-canon"). darm_check --compare
  // reads these side by side against plain "darm" to show which pass buys
  // which share of the melding win.
  auto WithToggle = [](void (*Set)(DARMConfig &)) {
    return [Set](Function &F) {
      DARMConfig Cfg;
      Set(Cfg);
      runDARM(F, Cfg);
    };
  };
  Cfgs.push_back({"darm-constprop", WithToggle([](DARMConfig &C) {
                    C.EnableConstProp = true;
                  })});
  Cfgs.push_back({"darm-algebraic", WithToggle([](DARMConfig &C) {
                    C.EnableAlgebraic = true;
                  })});
  Cfgs.push_back(
      {"darm-gvn", WithToggle([](DARMConfig &C) { C.EnableGVN = true; })});
  Cfgs.push_back(
      {"darm-licm", WithToggle([](DARMConfig &C) { C.EnableLICM = true; })});
  Cfgs.push_back({"darm-unroll", WithToggle([](DARMConfig &C) {
                    C.EnableLoopUnroll = true;
                  })});
  Cfgs.push_back({"darm-canon", [](Function &F) {
                    runDARM(F, DARMConfig::withCanonicalization());
                  }});
  return Cfgs;
}

OracleResult darm::fuzz::runOracle(const FuzzCase &C,
                                   const OracleOptions &O) {
  OracleResult R;
  const std::vector<OracleConfig> Cfgs =
      O.Configs.empty() ? defaultConfigs() : O.Configs;

  // Reference build. A generator that emits invalid IR is itself a bug.
  Context RCtx;
  Module RM(RCtx, "ref");
  Function *RF = buildFuzzKernel(RM, C);
  std::string Err;
  if (!verifyFunction(*RF, &Err)) {
    R.Mismatch = true;
    R.Config = "generator";
    R.Detail = "generated kernel fails verifier: " + Err;
    R.ReproIR = printFunction(*RF);
    return R;
  }
  MemImage Ref = runCase(*RF, C);
  if (!Ref.Fatal.empty()) {
    R.Mismatch = true;
    R.Config = "generator";
    R.Detail = "reference kernel aborted the simulator: " + Ref.Fatal;
    R.ReproIR = printFunction(*RF);
    return R;
  }

  // The round-trip and serialization axes only need the reference's
  // printed/serialized form; capture both now so the built reference
  // kernel itself can be reused (mutated) for the cleanup baseline below
  // instead of rebuilding from the seed.
  std::string RefText;
  if (O.RoundTrip)
    RefText = printFunction(*RF);
  std::vector<uint8_t> RefBytes;
  if (O.Serialize)
    RefBytes = serializeModule(RM);

  // Claims baseline: the kernel through simplifycfg+dce (the non-melding
  // half of the pipeline). Must preserve behaviour; a change is its own
  // finding against the cleanup passes. Cleaning RF in place is safe —
  // no later axis reads the built reference (decode/build reuse,
  // docs/performance.md) — and identical to cleaning a fresh rebuild,
  // since the generator is a pure function of the seed.
  SimStats ClaimsRef = Ref.Stats;
  const OracleConfig *FailCfg = nullptr;
  AxisKind FailKind = AxisKind::Transform;
  if (O.Claims) {
    std::string Detail;
    if (!cleanAndCompare(*RF, C, Ref, ClaimsRef, Detail)) {
      FailKind = AxisKind::Cleanup;
      R.Config = "cleanup";
      R.Detail = Detail;
    }
  }
  if (R.Config.empty()) {
    for (const OracleConfig &Cfg : Cfgs) {
      std::string Detail;
      if (transformFails(Cfg, C, {}, Ref, O.Claims ? &ClaimsRef : nullptr, O,
                         Detail)) {
        FailCfg = &Cfg;
        FailKind = AxisKind::Transform;
        R.Config = Cfg.Name;
        R.Detail = Detail;
        break;
      }
    }
  }
  if (R.Config.empty() && O.RoundTrip) {
    std::string Detail;
    if (roundTripFails(RefText, C, Ref, Detail)) {
      FailKind = AxisKind::RoundTrip;
      R.Config = "roundtrip";
      R.Detail = Detail;
    }
  }
  if (R.Config.empty() && O.Serialize) {
    std::string Detail;
    if (serializeFails(RefBytes, C, Ref, Detail)) {
      FailKind = AxisKind::Serialize;
      R.Config = "serialize";
      R.Detail = Detail;
    }
  }
  if (R.Config.empty())
    return R;

  R.Mismatch = true;
  std::vector<Edit> Edits;
  if (O.Minimize) {
    std::string ProbeDetail;
    Edits = minimizeCase(C, [&](const std::vector<Edit> &Trial) {
      return axisFailsOnEdits(FailCfg, FailKind, C, Trial, O, ProbeDetail);
    });
    // Refresh the diagnostic against the minimized kernel.
    std::string MinDetail;
    if (axisFailsOnEdits(FailCfg, FailKind, C, Edits, O, MinDetail))
      R.Detail = MinDetail;
  }
  Context MCtx;
  Module MM(MCtx, "repro");
  if (Function *MF = buildEdited(MM, C, Edits))
    R.ReproIR = printFunction(*MF);
  return R;
}

void darm::fuzz::sweepSeeds(
    ThreadPool &Pool, const std::vector<uint64_t> &Seeds,
    const OracleOptions &O,
    const std::function<bool(uint64_t, const OracleResult &)> &OnResult) {
  // Chunked pipeline: a chunk of seeds fans out over the pool, then the
  // chunk's results replay in seed order on this thread. Chunking bounds
  // held results while keeping every worker busy; since each seed's
  // verdict is an independent, deterministic function of the seed, the
  // reported stream is identical to a sequential sweep at any chunk or
  // pool size. An early stop may waste the tail of the current chunk —
  // computed but unreported — never report anything different. At one
  // job there is nothing to keep busy, so stream seed-by-seed and pay
  // exactly what the sequential sweep paid (an early stop then wastes
  // nothing, minimization included).
  const size_t Chunk =
      Pool.jobs() == 1 ? size_t{1}
                       : std::max<size_t>(size_t{32}, size_t{8} * Pool.jobs());
  for (size_t Begin = 0; Begin < Seeds.size(); Begin += Chunk) {
    const size_t N = std::min(Chunk, Seeds.size() - Begin);
    std::vector<OracleResult> Results = parallelMap<OracleResult>(
        Pool, N,
        [&](size_t I) { return runOracle(FuzzCase(Seeds[Begin + I]), O); });
    for (size_t I = 0; I < N; ++I)
      if (!OnResult(Seeds[Begin + I], Results[I]))
        return;
  }
}

std::string darm::fuzz::formatRepro(const FuzzCase &C,
                                    const OracleResult &R) {
  std::ostringstream OS;
  OS << "; darm-fuzz repro\n";
  OS << "; seed: " << C.Seed << "\n";
  OS << "; config: " << R.Config << "\n";
  OS << "; detail: " << R.Detail << "\n";
  OS << "; grid: " << C.Launch.GridDimX << "\n";
  OS << "; block: " << C.Launch.BlockDimX << "\n";
  OS << "; launches: " << C.NumLaunches << "\n";
  OS << "; ibuf: " << C.IntElems << "\n";
  OS << "; ibuf-input: " << C.IntInputElems << "\n";
  OS << "; fbuf: " << C.FloatElems << "\n";
  OS << "; fbuf-input: " << C.FloatInputElems << "\n";
  OS << "; shared: " << C.SharedElems << "\n";
  OS << "; run: darm_fuzz --repro <this-file>\n";
  OS << R.ReproIR;
  return OS.str();
}

bool darm::fuzz::parseReproHeader(const std::string &Text, FuzzCase &C,
                                  std::string &Config) {
  std::istringstream In(Text);
  std::string Line;
  bool SawSeed = false;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] != ';')
      break;
    auto Field = [&](const char *Key) -> const char * {
      std::string Prefix = std::string("; ") + Key + ": ";
      if (Line.rfind(Prefix, 0) == 0)
        return Line.c_str() + Prefix.size();
      return nullptr;
    };
    if (const char *V = Field("seed")) {
      C.Seed = std::strtoull(V, nullptr, 10);
      SawSeed = true;
    } else if (const char *V2 = Field("config")) {
      Config = V2;
    } else if (const char *V3 = Field("grid")) {
      C.Launch.GridDimX = static_cast<unsigned>(std::strtoul(V3, nullptr, 10));
    } else if (const char *V4 = Field("block")) {
      C.Launch.BlockDimX =
          static_cast<unsigned>(std::strtoul(V4, nullptr, 10));
    } else if (const char *VL = Field("launches")) {
      // Absent in pre-multi-launch repros; FuzzCase defaults to 1.
      C.NumLaunches = static_cast<unsigned>(std::strtoul(VL, nullptr, 10));
    } else if (const char *V5 = Field("ibuf")) {
      C.IntElems = static_cast<unsigned>(std::strtoul(V5, nullptr, 10));
    } else if (const char *V6 = Field("ibuf-input")) {
      C.IntInputElems = static_cast<unsigned>(std::strtoul(V6, nullptr, 10));
    } else if (const char *V7 = Field("fbuf")) {
      C.FloatElems = static_cast<unsigned>(std::strtoul(V7, nullptr, 10));
    } else if (const char *V8 = Field("fbuf-input")) {
      C.FloatInputElems = static_cast<unsigned>(std::strtoul(V8, nullptr, 10));
    } else if (const char *V9 = Field("shared")) {
      C.SharedElems = static_cast<unsigned>(std::strtoul(V9, nullptr, 10));
    }
  }
  return SawSeed && !Config.empty();
}

OracleResult darm::fuzz::checkRepro(Function &Kernel, const FuzzCase &C,
                                    const std::string &Config,
                                    const OracleOptions &O) {
  OracleResult R;
  std::string Err;
  if (!verifyFunction(Kernel, &Err)) {
    R.Mismatch = true;
    R.Config = Config;
    R.Detail = "repro kernel fails verifier: " + Err;
    return R;
  }
  MemImage Ref = runCase(Kernel, C);
  if (!Ref.Fatal.empty()) {
    R.Mismatch = true;
    R.Config = Config;
    R.Detail = "repro reference aborted the simulator: " + Ref.Fatal;
    return R;
  }
  // A "generator" repro recorded a kernel that was itself invalid or
  // aborted the reference run; the verify + reference run above IS the
  // re-check, so reaching here means it no longer fails.
  if (Config == "generator")
    return R;

  std::string Detail;
  if (Config == "roundtrip") {
    if (roundTripFails(printFunction(Kernel), C, Ref, Detail)) {
      R.Mismatch = true;
      R.Config = Config;
      R.Detail = Detail;
    }
    return R;
  }
  if (Config == "serialize") {
    // Clone via print->parse (the repro flow only reaches here once the
    // text round-trips) so serialization sees a module holding exactly
    // the repro kernel, without touching the caller's copy.
    Context SCtx;
    auto SM = parseModule(SCtx, printFunction(Kernel), &Err);
    if (!SM) {
      R.Mismatch = true;
      R.Config = Config;
      R.Detail = "repro kernel does not re-parse: " + Err;
      return R;
    }
    if (serializeFails(serializeModule(*SM), C, Ref, Detail)) {
      R.Mismatch = true;
      R.Config = Config;
      R.Detail = Detail;
    }
    return R;
  }

  // Clone the repro kernel through simplifycfg+dce: the re-check of a
  // "cleanup" repro, and the claims baseline for transform configs. The
  // clone goes by print->parse — the repro flow only reaches here once
  // the text round-trips, and no pass may mutate the caller's copy.
  auto CloneAndClean = [&](SimStats &Out, std::string &CErr) -> bool {
    std::string Text = printFunction(Kernel);
    Context CCtx;
    auto CM = parseModule(CCtx, Text, &CErr);
    if (!CM) {
      CErr = "repro kernel does not re-parse: " + CErr;
      return false;
    }
    return cleanAndCompare(*CM->functions().front(), C, Ref, Out, CErr);
  };

  SimStats ClaimsRef = Ref.Stats;
  if (Config == "cleanup" || O.Claims) {
    std::string CleanErr;
    const bool CleanOK = CloneAndClean(ClaimsRef, CleanErr);
    if (Config == "cleanup") {
      if (!CleanOK) {
        R.Mismatch = true;
        R.Config = Config;
        R.Detail = CleanErr;
      }
      return R;
    }
    if (!CleanOK) {
      R.Mismatch = true;
      R.Config = "cleanup";
      R.Detail = CleanErr;
      return R;
    }
  }

  for (const OracleConfig &Cfg : defaultConfigs()) {
    if (Cfg.Name != Config)
      continue;
    std::string Text = printFunction(Kernel);
    Context Ctx;
    auto M = parseModule(Ctx, Text, &Err);
    if (!M) {
      R.Mismatch = true;
      R.Config = Config;
      R.Detail = "repro kernel does not re-parse: " + Err;
      return R;
    }
    Function *F = M->functions().front().get();
    Cfg.Transform(*F);
    if (!verifyFunction(*F, &Err)) {
      R.Mismatch = true;
      R.Config = Config;
      R.Detail = "verifier: " + Err;
      return R;
    }
    MemImage Img = runCase(*F, C);
    if (!(Img == Ref)) {
      R.Mismatch = true;
      R.Config = Config;
      R.Detail = diffDetail(Ref, Img);
      return R;
    }
    // Mirror the sweep's claims axis so plausibility repros re-check
    // end-to-end too.
    if (O.Claims) {
      std::string Counter, CDetail;
      if (!check::statsPlausible(
              ClaimsRef, Img.Stats,
              check::optionsForConfig(Config, O.ClaimsOpts), &Counter,
              &CDetail)) {
        R.Mismatch = true;
        R.Config = Config;
        R.Detail = "claims: " + Counter + " " + CDetail;
      }
    }
    return R;
  }
  R.Mismatch = true;
  R.Config = Config;
  R.Detail = "unknown config in repro header";
  return R;
}
