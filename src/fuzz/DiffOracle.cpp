//===- DiffOracle.cpp - Multi-config differential oracle ----------------------===//

#include "darm/fuzz/DiffOracle.h"

#include "darm/analysis/Verifier.h"
#include "darm/core/DARMPass.h"
#include "darm/fuzz/Minimizer.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/sim/Simulator.h"
#include "darm/support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace darm;
using namespace darm::fuzz;

namespace {

/// Final device-memory image of one simulated launch, captured bitwise
/// (floats as their 32-bit patterns, so NaN compares like any value).
struct MemImage {
  std::vector<uint32_t> IntBits, FloatBits;
  /// Set when the simulator aborted (OOB store, runaway loop) — a
  /// first-class finding: the reference never aborts, so a transformed
  /// kernel that does was miscompiled.
  std::string Fatal;

  bool operator==(const MemImage &O) const {
    return Fatal == O.Fatal && IntBits == O.IntBits &&
           FloatBits == O.FloatBits;
  }
};

struct SimFatal {
  std::string Msg;
};

[[noreturn]] void throwFatal(const char *Msg) { throw SimFatal{Msg}; }

/// Installs throwFatal for the duration of one simulation so simulator
/// aborts unwind back to the oracle.
class ScopedFatalCatcher {
public:
  ScopedFatalCatcher() : Prev(setFatalErrorHandler(throwFatal)) {}
  ~ScopedFatalCatcher() { setFatalErrorHandler(Prev); }

private:
  FatalErrorHandler Prev;
};

MemImage runCase(Function &F, const FuzzCase &C) {
  GlobalMemory Mem;
  std::vector<uint64_t> Args = setupFuzzMemory(C, Mem);
  MemImage Img;
  {
    ScopedFatalCatcher Catcher;
    try {
      runKernel(F, C.Launch, Args, Mem);
    } catch (const SimFatal &E) {
      Img.Fatal = E.Msg;
      return Img;
    }
  }
  Img.IntBits.reserve(C.IntElems);
  for (unsigned I = 0; I < C.IntElems; ++I)
    Img.IntBits.push_back(
        static_cast<uint32_t>(Mem.load(Args[0] + uint64_t{I} * 4, 4)));
  Img.FloatBits.reserve(C.FloatElems);
  for (unsigned I = 0; I < C.FloatElems; ++I)
    Img.FloatBits.push_back(
        static_cast<uint32_t>(Mem.load(Args[1] + uint64_t{I} * 4, 4)));
  return Img;
}

/// "<buf>[i]: ref=0x... got=0x..." for the first differing element.
std::string diffDetail(const MemImage &Ref, const MemImage &Got) {
  char Buf[96];
  if (Got.Fatal != Ref.Fatal)
    return "simulator abort: " +
           (Got.Fatal.empty() ? "(reference aborted: " + Ref.Fatal + ")"
                              : Got.Fatal);
  for (size_t I = 0; I < Ref.IntBits.size(); ++I)
    if (Ref.IntBits[I] != Got.IntBits[I]) {
      std::snprintf(Buf, sizeof(Buf), "i32[%zu]: ref=0x%08x got=0x%08x", I,
                    Ref.IntBits[I], Got.IntBits[I]);
      return Buf;
    }
  for (size_t I = 0; I < Ref.FloatBits.size(); ++I)
    if (Ref.FloatBits[I] != Got.FloatBits[I]) {
      std::snprintf(Buf, sizeof(Buf), "f32[%zu]: ref=0x%08x got=0x%08x", I,
                    Ref.FloatBits[I], Got.FloatBits[I]);
      return Buf;
    }
  return "images equal";
}

/// Evaluates one axis on an already-built kernel \p F (left unmutated for
/// the round-trip axis; cloned-by-rebuild for transform axes by the
/// caller). Returns true + fills Detail if the axis mismatches.
bool roundTripFails(Function &F, const FuzzCase &C, const MemImage &Ref,
                    std::string &Detail) {
  std::string Text = printFunction(F);
  Context PCtx;
  std::string Err;
  auto PM = parseModule(PCtx, Text, &Err);
  if (!PM) {
    Detail = "parse error: " + Err;
    return true;
  }
  Function *PF = PM->functions().front().get();
  if (!verifyFunction(*PF, &Err)) {
    Detail = "parsed kernel fails verifier: " + Err;
    return true;
  }
  if (printFunction(*PF) != Text) {
    Detail = "print->parse->print not stable";
    return true;
  }
  MemImage Img = runCase(*PF, C);
  if (!(Img == Ref)) {
    Detail = "parsed kernel diverges: " + diffDetail(Ref, Img);
    return true;
  }
  return false;
}

bool transformFails(const OracleConfig &Cfg, const FuzzCase &C,
                    const std::vector<Edit> &Edits, const MemImage &Ref,
                    std::string &Detail) {
  Context Ctx;
  Module M(Ctx, "axis");
  Function *F = buildEdited(M, C, Edits);
  if (!F) {
    Detail = "edit script failed to replay";
    return false; // can't evaluate; treat as not-failing
  }
  Cfg.Transform(*F);
  std::string Err;
  if (!verifyFunction(*F, &Err)) {
    Detail = "verifier: " + Err;
    return true;
  }
  MemImage Img = runCase(*F, C);
  if (!(Img == Ref)) {
    Detail = diffDetail(Ref, Img);
    return true;
  }
  return false;
}

/// Full axis evaluation used by both the oracle sweep and the minimizer
/// predicate: rebuild (with edits), re-run reference, test the axis.
bool axisFailsOnEdits(const OracleConfig *Cfg, bool IsRoundTrip,
                      const FuzzCase &C, const std::vector<Edit> &Edits,
                      std::string &Detail) {
  Context RCtx;
  Module RM(RCtx, "ref");
  Function *RF = buildEdited(RM, C, Edits);
  if (!RF)
    return false;
  std::string Err;
  if (!verifyFunction(*RF, &Err))
    return false; // edited reference must stay valid
  MemImage Ref = runCase(*RF, C);
  if (!Ref.Fatal.empty())
    return false; // an edit that aborts the reference is not a reduction
  if (IsRoundTrip)
    return roundTripFails(*RF, C, Ref, Detail);
  return transformFails(*Cfg, C, Edits, Ref, Detail);
}

} // namespace

std::vector<OracleConfig> darm::fuzz::defaultConfigs() {
  std::vector<OracleConfig> Cfgs;
  Cfgs.push_back({"darm", [](Function &F) { runDARM(F); }});
  Cfgs.push_back({"darm-aggressive", [](Function &F) {
                    DARMConfig Cfg;
                    Cfg.ProfitThreshold = 0.05;
                    Cfg.MinAbsoluteSaving = 0.0;
                    runDARM(F, Cfg);
                  }});
  Cfgs.push_back({"darm-nounpred", [](Function &F) {
                    DARMConfig Cfg;
                    Cfg.EnableUnpredication = false;
                    runDARM(F, Cfg);
                  }});
  Cfgs.push_back(
      {"branch-fusion", [](Function &F) { runBranchFusion(F); }});
  return Cfgs;
}

OracleResult darm::fuzz::runOracle(const FuzzCase &C,
                                   const OracleOptions &O) {
  OracleResult R;
  const std::vector<OracleConfig> Cfgs =
      O.Configs.empty() ? defaultConfigs() : O.Configs;

  // Reference build. A generator that emits invalid IR is itself a bug.
  Context RCtx;
  Module RM(RCtx, "ref");
  Function *RF = buildFuzzKernel(RM, C);
  std::string Err;
  if (!verifyFunction(*RF, &Err)) {
    R.Mismatch = true;
    R.Config = "generator";
    R.Detail = "generated kernel fails verifier: " + Err;
    R.ReproIR = printFunction(*RF);
    return R;
  }
  MemImage Ref = runCase(*RF, C);
  if (!Ref.Fatal.empty()) {
    R.Mismatch = true;
    R.Config = "generator";
    R.Detail = "reference kernel aborted the simulator: " + Ref.Fatal;
    R.ReproIR = printFunction(*RF);
    return R;
  }

  const OracleConfig *FailCfg = nullptr;
  bool FailRoundTrip = false;
  for (const OracleConfig &Cfg : Cfgs) {
    std::string Detail;
    if (transformFails(Cfg, C, {}, Ref, Detail)) {
      FailCfg = &Cfg;
      R.Config = Cfg.Name;
      R.Detail = Detail;
      break;
    }
  }
  if (!FailCfg && O.RoundTrip) {
    std::string Detail;
    if (roundTripFails(*RF, C, Ref, Detail)) {
      FailRoundTrip = true;
      R.Config = "roundtrip";
      R.Detail = Detail;
    }
  }
  if (!FailCfg && !FailRoundTrip)
    return R;

  R.Mismatch = true;
  std::vector<Edit> Edits;
  if (O.Minimize) {
    std::string ProbeDetail;
    Edits = minimizeCase(C, [&](const std::vector<Edit> &Trial) {
      return axisFailsOnEdits(FailCfg, FailRoundTrip, C, Trial, ProbeDetail);
    });
    // Refresh the diagnostic against the minimized kernel.
    std::string MinDetail;
    if (axisFailsOnEdits(FailCfg, FailRoundTrip, C, Edits, MinDetail))
      R.Detail = MinDetail;
  }
  Context MCtx;
  Module MM(MCtx, "repro");
  if (Function *MF = buildEdited(MM, C, Edits))
    R.ReproIR = printFunction(*MF);
  return R;
}

std::string darm::fuzz::formatRepro(const FuzzCase &C,
                                    const OracleResult &R) {
  std::ostringstream OS;
  OS << "; darm-fuzz repro\n";
  OS << "; seed: " << C.Seed << "\n";
  OS << "; config: " << R.Config << "\n";
  OS << "; detail: " << R.Detail << "\n";
  OS << "; grid: " << C.Launch.GridDimX << "\n";
  OS << "; block: " << C.Launch.BlockDimX << "\n";
  OS << "; ibuf: " << C.IntElems << "\n";
  OS << "; ibuf-input: " << C.IntInputElems << "\n";
  OS << "; fbuf: " << C.FloatElems << "\n";
  OS << "; fbuf-input: " << C.FloatInputElems << "\n";
  OS << "; shared: " << C.SharedElems << "\n";
  OS << "; run: darm_fuzz --repro <this-file>\n";
  OS << R.ReproIR;
  return OS.str();
}

bool darm::fuzz::parseReproHeader(const std::string &Text, FuzzCase &C,
                                  std::string &Config) {
  std::istringstream In(Text);
  std::string Line;
  bool SawSeed = false;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] != ';')
      break;
    auto Field = [&](const char *Key) -> const char * {
      std::string Prefix = std::string("; ") + Key + ": ";
      if (Line.rfind(Prefix, 0) == 0)
        return Line.c_str() + Prefix.size();
      return nullptr;
    };
    if (const char *V = Field("seed")) {
      C.Seed = std::strtoull(V, nullptr, 10);
      SawSeed = true;
    } else if (const char *V2 = Field("config")) {
      Config = V2;
    } else if (const char *V3 = Field("grid")) {
      C.Launch.GridDimX = static_cast<unsigned>(std::strtoul(V3, nullptr, 10));
    } else if (const char *V4 = Field("block")) {
      C.Launch.BlockDimX =
          static_cast<unsigned>(std::strtoul(V4, nullptr, 10));
    } else if (const char *V5 = Field("ibuf")) {
      C.IntElems = static_cast<unsigned>(std::strtoul(V5, nullptr, 10));
    } else if (const char *V6 = Field("ibuf-input")) {
      C.IntInputElems = static_cast<unsigned>(std::strtoul(V6, nullptr, 10));
    } else if (const char *V7 = Field("fbuf")) {
      C.FloatElems = static_cast<unsigned>(std::strtoul(V7, nullptr, 10));
    } else if (const char *V8 = Field("fbuf-input")) {
      C.FloatInputElems = static_cast<unsigned>(std::strtoul(V8, nullptr, 10));
    } else if (const char *V9 = Field("shared")) {
      C.SharedElems = static_cast<unsigned>(std::strtoul(V9, nullptr, 10));
    }
  }
  return SawSeed && !Config.empty();
}

OracleResult darm::fuzz::checkRepro(Function &Kernel, const FuzzCase &C,
                                    const std::string &Config) {
  OracleResult R;
  std::string Err;
  if (!verifyFunction(Kernel, &Err)) {
    R.Mismatch = true;
    R.Config = Config;
    R.Detail = "repro kernel fails verifier: " + Err;
    return R;
  }
  MemImage Ref = runCase(Kernel, C);
  if (!Ref.Fatal.empty()) {
    R.Mismatch = true;
    R.Config = Config;
    R.Detail = "repro reference aborted the simulator: " + Ref.Fatal;
    return R;
  }
  // A "generator" repro recorded a kernel that was itself invalid or
  // aborted the reference run; the verify + reference run above IS the
  // re-check, so reaching here means it no longer fails.
  if (Config == "generator")
    return R;

  std::string Detail;
  if (Config == "roundtrip") {
    if (roundTripFails(Kernel, C, Ref, Detail)) {
      R.Mismatch = true;
      R.Config = Config;
      R.Detail = Detail;
    }
    return R;
  }
  for (const OracleConfig &Cfg : defaultConfigs()) {
    if (Cfg.Name != Config)
      continue;
    // Clone by re-parsing the printed kernel: the repro flow only reaches
    // here once the text round-trips, and the transform must not mutate
    // the caller's reference copy.
    std::string Text = printFunction(Kernel);
    Context Ctx;
    auto M = parseModule(Ctx, Text, &Err);
    if (!M) {
      R.Mismatch = true;
      R.Config = Config;
      R.Detail = "repro kernel does not re-parse: " + Err;
      return R;
    }
    Function *F = M->functions().front().get();
    Cfg.Transform(*F);
    if (!verifyFunction(*F, &Err)) {
      R.Mismatch = true;
      R.Config = Config;
      R.Detail = "verifier: " + Err;
      return R;
    }
    MemImage Img = runCase(*F, C);
    if (!(Img == Ref)) {
      R.Mismatch = true;
      R.Config = Config;
      R.Detail = diffDetail(Ref, Img);
    }
    return R;
  }
  R.Mismatch = true;
  R.Config = Config;
  R.Detail = "unknown config in repro header";
  return R;
}
