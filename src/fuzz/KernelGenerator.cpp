//===- KernelGenerator.cpp - Random divergent-kernel generator ---------------===//
//
// Deterministic, seeded construction of structured divergent kernels.
//
// Memory discipline (the part that makes differential comparison sound):
// SIMT semantics leave the relative order of *different lanes'* stores to
// the same address unspecified, and melding legitimately changes that
// interleaving. Every generated store therefore targets a lane-private
// slot (global: InInts + slot*TotalThreads + gid; shared:
// slot*BlockDim + tid). Cross-lane data flows only through (a) the
// read-only input region of the global buffers and (b) a top-level
// shared-memory exchange bracketed by barriers on both sides. Under that
// discipline, any memory-image difference between configurations is a
// genuine miscompile.
//
//===----------------------------------------------------------------------===//

#include "darm/fuzz/KernelGenerator.h"

#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/Module.h"
#include "darm/sim/Simulator.h"
#include "darm/support/ErrorHandling.h"
#include "darm/support/RNG.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>

using namespace darm;
using namespace darm::fuzz;

FuzzCase::FuzzCase(uint64_t S, const GenOptions &O) : Seed(S), Opts(O) {
  // Geometry is drawn from a stream decoupled from the body stream so
  // shape tweaks don't reshuffle every kernel.
  RNG R(S ^ 0x9e3779b97f4a7c15ULL);
  static const unsigned Blocks[] = {16, 32, 64};
  Launch.BlockDimX = Blocks[R.nextBelow(3)];
  Launch.GridDimX = 1 + static_cast<unsigned>(R.nextBelow(3));
  const unsigned Total = Launch.GridDimX * Launch.BlockDimX;
  IntInputElems = 32 + static_cast<unsigned>(R.nextBelow(3)) * 32;
  FloatInputElems = 32 + static_cast<unsigned>(R.nextBelow(3)) * 32;
  const unsigned IntSlots = 1 + static_cast<unsigned>(R.nextBelow(3));
  const unsigned FloatSlots = 1 + static_cast<unsigned>(R.nextBelow(2));
  const unsigned SharedSlots = 1 + static_cast<unsigned>(R.nextBelow(2));
  IntElems = IntInputElems + IntSlots * Total;
  FloatElems = FloatInputElems + FloatSlots * Total;
  SharedElems = SharedSlots * Launch.BlockDimX;
  // Occasional multi-launch cases (decode-once/run-many differential
  // coverage). Drawn last so the fields above keep their per-seed values
  // from before this knob existed.
  NumLaunches = R.chance(1, 4) ? 2 + static_cast<unsigned>(R.nextBelow(2)) : 1;
}

namespace {

/// Values in scope at the current insertion point, i.e. guaranteed to
/// dominate it. Copied at control-flow splits (a copy is a scope
/// snapshot); values defined inside an arm merge back only through join
/// phis.
struct Pools {
  std::vector<Value *> I32, F32, I1;
};

class Gen {
public:
  Gen(Module &M, const FuzzCase &C)
      : C(C), Rng(C.Seed),
        // The meldable-loop-pair shape draws from its own stream so that
        // adding it (or tuning it) leaves every non-firing seed's kernel
        // byte-identical — the pinned claims golden (seeds 0..7) and the
        // distilled regression seeds in fuzz_test must not reshuffle.
        ShapeRng(C.Seed * 0x9e3779b97f4a7c15ULL ^ 0xd1b54a32d192f703ULL),
        Ctx(M.getContext()), B(Ctx) {
    Total = C.Launch.GridDimX * C.Launch.BlockDimX;
    IntSlotBase = C.IntInputElems;
    FloatSlotBase = C.FloatInputElems;
    F = M.createFunction(
        C.name(), Ctx.getVoidTy(),
        {{Ctx.getPointerTy(Ctx.getInt32Ty(), AddressSpace::Global), "ibuf"},
         {Ctx.getPointerTy(Ctx.getFloatTy(), AddressSpace::Global), "fbuf"},
         {Ctx.getInt32Ty(), "n"}});
    Sh = F->createSharedArray(Ctx.getInt32Ty(), C.SharedElems, "sh");
  }

  Function *run();

private:
  unsigned intSlots() const { return (C.IntElems - C.IntInputElems) / Total; }
  unsigned floatSlots() const {
    return (C.FloatElems - C.FloatInputElems) / Total;
  }

  Value *pick(const std::vector<Value *> &P) {
    return P[Rng.nextBelow(P.size())];
  }

  /// pick() for the loop-pair shape: same pools, decoupled stream.
  Value *shapePick(const std::vector<Value *> &P) {
    return P[ShapeRng.nextBelow(P.size())];
  }

  Value *smallInt() {
    static const int32_t Consts[] = {0,  1,  2,   3,   -1,  5,
                                     7,  11, -13, 31,  64,  100};
    return B.getInt32(Consts[Rng.nextBelow(std::size(Consts))]);
  }

  Value *floatConst() {
    if (C.Opts.AllowNonFinite && Rng.chance(1, 8)) {
      switch (Rng.nextBelow(4)) {
      case 0:
        return B.getFloat(std::numeric_limits<float>::infinity());
      case 1:
        return B.getFloat(-std::numeric_limits<float>::infinity());
      case 2:
        return B.getFloat(std::bit_cast<float>(0x7fc00000u));
      default:
        return B.getFloat(-0.0f);
      }
    }
    static const float Consts[] = {0.0f, 1.0f,  0.5f,   -2.25f,
                                   3.0f, -7.5f, 0.125f, 1e6f};
    return B.getFloat(Consts[Rng.nextBelow(std::size(Consts))]);
  }

  /// In-bounds index into the read-only input region of a buffer:
  /// urem of an arbitrary i32 by the region size (urem is unsigned, so
  /// the result is always in [0, Region)).
  Value *clampedInputIndex(Pools &P, unsigned Region) {
    return B.createURem(pick(P.I32), B.getInt32(static_cast<int32_t>(Region)),
                        "cidx");
  }

  /// This thread's private cell for global slot \p Slot.
  Value *ownGlobalIndex(bool IsInt, unsigned Slot) {
    unsigned Base = (IsInt ? IntSlotBase : FloatSlotBase) + Slot * Total;
    return B.createAdd(Gid, B.getInt32(static_cast<int32_t>(Base)), "oidx");
  }

  /// This thread's private LDS cell for shared slot \p Slot.
  Value *ownSharedIndex(unsigned Slot) {
    return B.createAdd(
        Tid, B.getInt32(static_cast<int32_t>(Slot * C.Launch.BlockDimX)),
        "sidx");
  }

  Value *divergentCond(Pools &P);
  void emitStmt(Pools &P);
  void emitStmts(Pools &P, unsigned Lo, unsigned Hi);
  void emitBody(Pools &P, unsigned Depth);
  void emitDiamond(Pools &P, unsigned Depth);
  void emitTriangle(Pools &P, unsigned Depth);
  void emitLoop(Pools &P, unsigned Depth);
  void emitExchange(Pools &P);
  void emitShuffle(Pools &P);
  void emitLoopPairDiamond(Pools &P);

  const FuzzCase &C;
  RNG Rng;
  RNG ShapeRng; ///< drives only emitLoopPairDiamond (see ctor)
  Context &Ctx;
  IRBuilder B;
  Function *F = nullptr;
  SharedArray *Sh = nullptr;
  unsigned Total = 0;
  unsigned IntSlotBase = 0, FloatSlotBase = 0;
  Value *Tid = nullptr, *Lane = nullptr, *Gid = nullptr;
  Value *ShapeAcc = nullptr; ///< loop-pair join value, folded in epilogue
  unsigned BlockNo = 0; ///< fresh-name counter for CFG blocks
};

Value *Gen::divergentCond(Pools &P) {
  // Occasionally a uniform (block-derived) condition, to check melding
  // leaves non-divergent branches semantically intact too.
  if (Rng.chance(1, 8)) {
    Value *U = B.createAnd(B.createBlockIdX(), B.getInt32(1));
    return B.createICmp(ICmpPred::EQ, U, B.getInt32(0), "ucond");
  }
  switch (Rng.nextBelow(4)) {
  case 0: { // masked lane/tid compare — the classic divergence shape
    Value *Src = Rng.chance(1, 2) ? Lane : Tid;
    Value *Masked = B.createAnd(
        B.createXor(Src, smallInt()),
        B.getInt32(static_cast<int32_t>(1 + Rng.nextBelow(7))));
    return B.createICmp(static_cast<ICmpPred>(Rng.nextBelow(10)), Masked,
                        B.getInt32(static_cast<int32_t>(Rng.nextBelow(4))),
                        "dcond");
  }
  case 1: // data-dependent compare
    return B.createICmp(static_cast<ICmpPred>(Rng.nextBelow(10)), pick(P.I32),
                        smallInt(), "dcond");
  case 2: // float compare
    return B.createFCmp(static_cast<FCmpPred>(Rng.nextBelow(6)), pick(P.F32),
                        floatConst(), "fcond");
  default: // recombine existing predicates
    if (P.I1.size() >= 2)
      return B.createBinary(Rng.chance(1, 2) ? Opcode::And : Opcode::Xor,
                            pick(P.I1), pick(P.I1), "ccond");
    return B.createICmp(ICmpPred::SLT, B.createAnd(Lane, B.getInt32(5)),
                        B.getInt32(3), "dcond");
  }
}

void Gen::emitStmt(Pools &P) {
  switch (Rng.nextBelow(16)) {
  case 0:
  case 1:
  case 2: { // integer arithmetic/logic
    static const Opcode Ops[] = {Opcode::Add,  Opcode::Sub,  Opcode::Mul,
                                 Opcode::SDiv, Opcode::SRem, Opcode::UDiv,
                                 Opcode::URem, Opcode::And,  Opcode::Or,
                                 Opcode::Xor,  Opcode::Shl,  Opcode::LShr,
                                 Opcode::AShr};
    Value *L = pick(P.I32);
    Value *R = Rng.chance(1, 3) ? smallInt() : pick(P.I32);
    P.I32.push_back(B.createBinary(Ops[Rng.nextBelow(std::size(Ops))], L, R));
    break;
  }
  case 3:
  case 4: { // float arithmetic
    static const Opcode Ops[] = {Opcode::FAdd, Opcode::FSub, Opcode::FMul,
                                 Opcode::FDiv};
    Value *L = pick(P.F32);
    Value *R = Rng.chance(1, 3) ? floatConst() : pick(P.F32);
    P.F32.push_back(B.createBinary(Ops[Rng.nextBelow(std::size(Ops))], L, R));
    break;
  }
  case 5: // integer compare
    P.I1.push_back(B.createICmp(static_cast<ICmpPred>(Rng.nextBelow(10)),
                                pick(P.I32), pick(P.I32)));
    break;
  case 6: // float compare
    P.I1.push_back(B.createFCmp(static_cast<FCmpPred>(Rng.nextBelow(6)),
                                pick(P.F32), pick(P.F32)));
    break;
  case 7: // select
    if (Rng.chance(1, 2))
      P.I32.push_back(
          B.createSelect(pick(P.I1), pick(P.I32), pick(P.I32)));
    else
      P.F32.push_back(
          B.createSelect(pick(P.I1), pick(P.F32), pick(P.F32)));
    break;
  case 8: // casts (fptosi is total: NaN -> 0, out-of-range saturates)
    if (Rng.chance(1, 3))
      P.I32.push_back(B.createZExt(pick(P.I1), Ctx.getInt32Ty()));
    else if (Rng.chance(1, 2))
      P.F32.push_back(
          B.createCast(Opcode::SIToFP, pick(P.I32), Ctx.getFloatTy()));
    else
      P.I32.push_back(
          B.createCast(Opcode::FPToSI, pick(P.F32), Ctx.getInt32Ty()));
    break;
  case 9: // load from the read-only int input region
    P.I32.push_back(B.createLoadAt(
        F->getArg(0), clampedInputIndex(P, IntSlotBase), "gi"));
    break;
  case 10: // load from the read-only float input region
    P.F32.push_back(B.createLoadAt(
        F->getArg(1), clampedInputIndex(P, FloatSlotBase), "gf"));
    break;
  case 11: // read back this lane's own shared cell
    P.I32.push_back(B.createLoadAt(
        Sh, ownSharedIndex(Rng.nextBelow(C.SharedElems / C.Launch.BlockDimX)),
        "sl"));
    break;
  case 12: // store to this lane's own global int cell
    B.createStoreAt(pick(P.I32), F->getArg(0),
                    ownGlobalIndex(true, Rng.nextBelow(intSlots())));
    break;
  case 13: // store to this lane's own global float cell
    B.createStoreAt(pick(P.F32), F->getArg(1),
                    ownGlobalIndex(false, Rng.nextBelow(floatSlots())));
    break;
  case 14: // store to this lane's own shared cell
    B.createStoreAt(
        pick(P.I32), Sh,
        ownSharedIndex(Rng.nextBelow(C.SharedElems / C.Launch.BlockDimX)));
    break;
  default: // read back this lane's own global int cell
    P.I32.push_back(B.createLoadAt(
        F->getArg(0), ownGlobalIndex(true, Rng.nextBelow(intSlots())), "gr"));
    break;
  }
}

void Gen::emitStmts(Pools &P, unsigned Lo, unsigned Hi) {
  unsigned N = Lo + static_cast<unsigned>(Rng.nextBelow(Hi - Lo + 1));
  for (unsigned I = 0; I < N; ++I)
    emitStmt(P);
}

/// A region body: statements, optionally wrapping one nested construct.
void Gen::emitBody(Pools &P, unsigned Depth) {
  emitStmts(P, 1, 4);
  if (Depth > 0 && Rng.chance(1, 2)) {
    switch (Rng.nextBelow(3)) {
    case 0:
      emitDiamond(P, Depth - 1);
      break;
    case 1:
      emitTriangle(P, Depth - 1);
      break;
    default:
      emitLoop(P, Depth - 1);
      break;
    }
    emitStmts(P, 0, 2);
  }
}

void Gen::emitDiamond(Pools &P, unsigned Depth) {
  Value *Cond = divergentCond(P);
  std::string N = std::to_string(BlockNo++);
  BasicBlock *T = F->createBlock("d" + N + ".t");
  BasicBlock *E = F->createBlock("d" + N + ".e");
  BasicBlock *J = F->createBlock("d" + N + ".j");
  B.createCondBr(Cond, T, E);

  B.setInsertPoint(T);
  Pools PT = P;
  emitBody(PT, Depth);
  BasicBlock *TEnd = B.getInsertBlock();
  B.createBr(J);

  B.setInsertPoint(E);
  Pools PE = P;
  emitBody(PE, Depth);
  BasicBlock *EEnd = B.getInsertBlock();
  B.createBr(J);

  B.setInsertPoint(J);
  // Join phis merge arm-local values back into scope — this is what
  // exercises SSA repair and phi melding.
  if (Rng.chance(2, 3)) {
    PhiInst *Phi = B.createPhi(Ctx.getInt32Ty(), "jp");
    Phi->addIncoming(pick(PT.I32), TEnd);
    Phi->addIncoming(pick(PE.I32), EEnd);
    P.I32.push_back(Phi);
  }
  if (Rng.chance(1, 3)) {
    PhiInst *Phi = B.createPhi(Ctx.getFloatTy(), "jfp");
    Phi->addIncoming(pick(PT.F32), TEnd);
    Phi->addIncoming(pick(PE.F32), EEnd);
    P.F32.push_back(Phi);
  }
}

void Gen::emitTriangle(Pools &P, unsigned Depth) {
  Value *Cond = divergentCond(P);
  BasicBlock *From = B.getInsertBlock();
  std::string N = std::to_string(BlockNo++);
  BasicBlock *T = F->createBlock("t" + N + ".t");
  BasicBlock *J = F->createBlock("t" + N + ".j");
  B.createCondBr(Cond, T, J);

  B.setInsertPoint(T);
  Pools PT = P;
  emitBody(PT, Depth);
  BasicBlock *TEnd = B.getInsertBlock();
  B.createBr(J);

  B.setInsertPoint(J);
  if (Rng.chance(1, 2)) {
    PhiInst *Phi = B.createPhi(Ctx.getInt32Ty(), "tp");
    Phi->addIncoming(pick(PT.I32), TEnd);
    Phi->addIncoming(pick(P.I32), From);
    P.I32.push_back(Phi);
  }
}

void Gen::emitLoop(Pools &P, unsigned Depth) {
  BasicBlock *Pre = B.getInsertBlock();
  std::string N = std::to_string(BlockNo++);
  BasicBlock *Header = F->createBlock("l" + N + ".h");
  BasicBlock *Body = F->createBlock("l" + N + ".b");
  BasicBlock *Exit = F->createBlock("l" + N + ".x");

  // Trip count: a small constant, or lane-derived so lanes exit the loop
  // at different iterations (divergent loop exit).
  Value *Bound;
  if (Rng.chance(1, 2)) {
    Bound = B.getInt32(
        static_cast<int32_t>(1 + Rng.nextBelow(C.Opts.MaxLoopTrip)));
  } else {
    Bound = B.createAdd(
        B.createAnd(Rng.chance(1, 2) ? Lane : Tid,
                    B.getInt32(static_cast<int32_t>(C.Opts.MaxLoopTrip - 1))),
        B.getInt32(1), "trip");
  }
  Value *Acc0 = pick(P.I32);
  Value *FAcc0 = pick(P.F32);
  B.createBr(Header);

  B.setInsertPoint(Header);
  PhiInst *IV = B.createPhi(Ctx.getInt32Ty(), "iv");
  PhiInst *Acc = B.createPhi(Ctx.getInt32Ty(), "acc");
  PhiInst *FAcc = B.createPhi(Ctx.getFloatTy(), "facc");
  IV->addIncoming(B.getInt32(0), Pre);
  Acc->addIncoming(Acc0, Pre);
  FAcc->addIncoming(FAcc0, Pre);
  Value *Cond = B.createICmp(ICmpPred::SLT, IV, Bound, "lc");
  B.createCondBr(Cond, Body, Exit);

  B.setInsertPoint(Body);
  Pools PB = P;
  PB.I32.push_back(IV);
  PB.I32.push_back(Acc);
  PB.F32.push_back(FAcc);
  emitBody(PB, Depth);
  BasicBlock *Latch = B.getInsertBlock();
  IV->addIncoming(B.createAdd(IV, B.getInt32(1), "ivn"), Latch);
  Acc->addIncoming(pick(PB.I32), Latch);
  FAcc->addIncoming(pick(PB.F32), Latch);
  B.createBr(Header);

  B.setInsertPoint(Exit);
  // Header phis dominate the exit; they are the only values that escape.
  P.I32.push_back(IV);
  P.I32.push_back(Acc);
  P.F32.push_back(FAcc);
}

/// Cross-lane communication, made deterministic by bracketing barriers:
/// every lane publishes to its own LDS cell, the block synchronizes, every
/// lane reads a rotated neighbour's cell, and a closing barrier keeps
/// later (divergent) stores from racing with these reads.
void Gen::emitExchange(Pools &P) {
  unsigned Slot = static_cast<unsigned>(
      Rng.nextBelow(C.SharedElems / C.Launch.BlockDimX));
  B.createStoreAt(pick(P.I32), Sh, ownSharedIndex(Slot));
  B.createBarrier();
  Value *Delta = B.getInt32(static_cast<int32_t>(
      1 + Rng.nextBelow(C.Launch.BlockDimX - 1)));
  Value *Neighbor = B.createURem(
      B.createAdd(Tid, Delta),
      B.getInt32(static_cast<int32_t>(C.Launch.BlockDimX)), "nbr");
  Value *Idx = B.createAdd(
      Neighbor, B.getInt32(static_cast<int32_t>(Slot * C.Launch.BlockDimX)));
  P.I32.push_back(B.createLoadAt(Sh, Idx, "xch"));
  B.createBarrier();
}

/// Warp-level exchange through the convergent shfl.sync intrinsic: every
/// lane reads another lane's register. Like barriers, only emitted in
/// uniform control flow (top level): under a partial mask the inactive
/// source lanes' registers would be transform-dependent, which would
/// break the differential discipline. The melder never melds convergent
/// ops, so every config executes the shuffle identically. The source
/// lane is either a rotated neighbour or a uniform broadcast lane; the
/// simulator wraps it modulo the warp size.
void Gen::emitShuffle(Pools &P) {
  Value *V = pick(P.I32);
  Value *SrcLane;
  if (Rng.chance(1, 2))
    SrcLane = B.createAdd(
        Lane, B.getInt32(static_cast<int32_t>(1 + Rng.nextBelow(7))), "slane");
  else
    SrcLane = B.getInt32(static_cast<int32_t>(Rng.nextBelow(8)));
  P.I32.push_back(B.createCall(Intrinsic::ShflSync, {V, SrcLane}, "shfl"));
}

/// The shape the divergent-loop unroller exists for (docs/passes.md): a
/// divergent diamond whose arms each run a bounded loop with a per-lane
/// trip count of the exact `add (and lane|tid, MaxLoopTrip-1), 1` form
/// the unroller's static range analysis accepts. Without loop-unroll the
/// two loops are opaque to darm-meld; after unrolling both arms become
/// branch-divergent ladders the melder can fuse. Half the firing seeds
/// also nest a triangle inside each loop body (diamond -> loop ->
/// triangle), the deeper-region coverage ROADMAP asked for.
///
/// Everything here draws from ShapeRng, never Rng, and the join value is
/// kept out of the pools: firing seeds grow this suffix, but no existing
/// Rng draw shifts, so all other seeds stay byte-identical.
void Gen::emitLoopPairDiamond(Pools &P) {
  Value *Cond = B.createICmp(
      ICmpPred::SLT,
      B.createAnd(Lane,
                  B.getInt32(static_cast<int32_t>(1 + ShapeRng.nextBelow(7)))),
      B.getInt32(static_cast<int32_t>(1 + ShapeRng.nextBelow(4))), "mpc");
  std::string N = std::to_string(BlockNo++);
  BasicBlock *T = F->createBlock("mp" + N + ".t");
  BasicBlock *E = F->createBlock("mp" + N + ".e");
  BasicBlock *J = F->createBlock("mp" + N + ".j");
  B.createCondBr(Cond, T, E);

  // One nesting decision for both arms keeps them structurally similar
  // (that similarity is what makes the unrolled ladders meldable).
  const bool Nest = ShapeRng.chance(1, 2);

  auto EmitArm = [&](BasicBlock *Entry) -> std::pair<Value *, BasicBlock *> {
    B.setInsertPoint(Entry);
    std::string LN = std::to_string(BlockNo++);
    BasicBlock *H = F->createBlock("mp" + LN + ".h");
    BasicBlock *Body = F->createBlock("mp" + LN + ".b");
    BasicBlock *X = F->createBlock("mp" + LN + ".x");
    Value *Trip = B.createAdd(
        B.createAnd(ShapeRng.chance(1, 2) ? Lane : Tid,
                    B.getInt32(static_cast<int32_t>(C.Opts.MaxLoopTrip - 1))),
        B.getInt32(1), "mtrip");
    Value *Acc0 = shapePick(P.I32);
    B.createBr(H);

    B.setInsertPoint(H);
    PhiInst *IV = B.createPhi(Ctx.getInt32Ty(), "miv");
    PhiInst *Acc = B.createPhi(Ctx.getInt32Ty(), "macc");
    IV->addIncoming(B.getInt32(0), Entry);
    Acc->addIncoming(Acc0, Entry);
    Value *LC = B.createICmp(ICmpPred::SLT, IV, Trip, "mlc");
    B.createCondBr(LC, Body, X);

    B.setInsertPoint(Body);
    Value *Mixed = B.createAdd(
        B.createMul(Acc, B.getInt32(static_cast<int32_t>(
                             3 + ShapeRng.nextBelow(5)))),
        B.createXor(IV, shapePick(P.I32)), "mmix");
    if (Nest) {
      std::string TN = std::to_string(BlockNo++);
      BasicBlock *NT = F->createBlock("mp" + TN + ".nt");
      BasicBlock *NJ = F->createBlock("mp" + TN + ".nj");
      Value *NC = B.createICmp(ICmpPred::EQ, B.createAnd(IV, B.getInt32(1)),
                               B.getInt32(0), "mnc");
      BasicBlock *From = B.getInsertBlock();
      B.createCondBr(NC, NT, NJ);
      B.setInsertPoint(NT);
      Value *Alt = B.createAdd(Mixed, shapePick(P.I32), "malt");
      B.createBr(NJ);
      B.setInsertPoint(NJ);
      PhiInst *MP = B.createPhi(Ctx.getInt32Ty(), "mnp");
      MP->addIncoming(Alt, NT);
      MP->addIncoming(Mixed, From);
      Mixed = MP;
    }
    BasicBlock *Latch = B.getInsertBlock();
    IV->addIncoming(B.createAdd(IV, B.getInt32(1), "mivn"), Latch);
    Acc->addIncoming(Mixed, Latch);
    B.createBr(H);

    // Only the header phi escapes; it dominates the single-pred exit.
    B.setInsertPoint(X);
    B.createBr(J);
    return {Acc, X};
  };

  auto [TA, TX] = EmitArm(T);
  auto [EA, EX] = EmitArm(E);

  B.setInsertPoint(J);
  PhiInst *Phi = B.createPhi(Ctx.getInt32Ty(), "mpj");
  Phi->addIncoming(TA, TX);
  Phi->addIncoming(EA, EX);
  ShapeAcc = Phi;
}

Function *Gen::run() {
  BasicBlock *Entry = F->createBlock("entry");
  B.setInsertPoint(Entry);

  Tid = B.createThreadIdX();
  Lane = B.createCall(Intrinsic::LaneId, {}, "lane");
  Gid = B.createAdd(B.createMul(B.createBlockIdX(), B.createBlockDimX()), Tid,
                    "gid");

  Pools P;
  P.I32 = {Tid, Lane, Gid, F->getArg(2), B.getInt32(1), B.getInt32(-3),
           B.getInt32(17)};
  P.F32 = {B.getFloat(1.0f), B.getFloat(-0.5f)};

  // Seed the pools from the input buffers.
  P.I32.push_back(B.createLoadAt(
      F->getArg(0),
      B.createURem(Gid, B.getInt32(static_cast<int32_t>(IntSlotBase))),
      "in0"));
  P.I32.push_back(B.createLoadAt(
      F->getArg(0),
      B.createURem(B.createAdd(B.createMul(Gid, B.getInt32(7)),
                               B.getInt32(3)),
                   B.getInt32(static_cast<int32_t>(IntSlotBase))),
      "in1"));
  P.F32.push_back(B.createLoadAt(
      F->getArg(1),
      B.createURem(Gid, B.getInt32(static_cast<int32_t>(FloatSlotBase))),
      "fin0"));
  P.I1.push_back(B.createICmp(ICmpPred::SLT, Tid, B.getInt32(16)));

  // Publish something to LDS before the first region so shared read-backs
  // have defined content, then synchronize.
  B.createStoreAt(pick(P.I32), Sh, ownSharedIndex(0));
  B.createBarrier();

  unsigned Constructs =
      1 + static_cast<unsigned>(Rng.nextBelow(C.Opts.MaxTopConstructs));
  for (unsigned I = 0; I < Constructs; ++I) {
    switch (Rng.nextBelow(7)) {
    case 0:
      emitStmts(P, 2, 6);
      break;
    case 1:
    case 2:
      emitDiamond(P, C.Opts.MaxDepth);
      break;
    case 3:
      emitTriangle(P, C.Opts.MaxDepth);
      break;
    case 4:
      emitLoop(P, C.Opts.MaxDepth);
      break;
    case 5:
      emitShuffle(P);
      break;
    default:
      emitExchange(P);
      break;
    }
  }

  // Roughly a third of seeds append the meldable divergent-loop pair.
  // Gated (and built) off ShapeRng only: the draw sequence of every
  // construct above and of the epilogue below is unchanged either way.
  if (ShapeRng.chance(1, 3))
    emitLoopPairDiamond(P);

  // Epilogue: fold the live pools into the lane-private output cells so
  // every generated value can influence the final memory image.
  Value *CkI = pick(P.I32);
  for (unsigned I = 0; I < 3; ++I)
    CkI = B.createAdd(B.createMul(CkI, B.getInt32(31)), pick(P.I32), "ck");
  CkI = B.createAdd(CkI, B.createZExt(pick(P.I1), Ctx.getInt32Ty()), "ck");
  if (ShapeAcc)
    CkI = B.createAdd(B.createMul(CkI, B.getInt32(31)), ShapeAcc, "ck");
  B.createStoreAt(CkI, F->getArg(0), ownGlobalIndex(true, 0));

  Value *CkF = pick(P.F32);
  for (unsigned I = 0; I < 2; ++I)
    CkF = B.createFAdd(B.createFMul(CkF, B.getFloat(0.75f)), pick(P.F32),
                       "fck");
  B.createStoreAt(CkF, F->getArg(1), ownGlobalIndex(false, 0));

  // Drain this lane's shared cells into global memory so LDS state is
  // observable in the final image too.
  for (unsigned S = 0; S < C.SharedElems / C.Launch.BlockDimX &&
                       S + 1 < intSlots();
       ++S) {
    Value *V = B.createLoadAt(Sh, ownSharedIndex(S), "drain");
    B.createStoreAt(V, F->getArg(0), ownGlobalIndex(true, S + 1));
  }

  B.createRet();
  return F;
}

} // namespace

Function *darm::fuzz::buildFuzzKernel(Module &M, const FuzzCase &C) {
  return Gen(M, C).run();
}

std::vector<uint64_t> darm::fuzz::setupFuzzMemory(const FuzzCase &C,
                                                  GlobalMemory &Mem) {
  RNG R(C.Seed * 0x2545f4914f6cdd1dULL + 1);
  uint64_t IBuf = Mem.allocate(static_cast<uint64_t>(C.IntElems) * 4, "ibuf");
  uint64_t FBuf =
      Mem.allocate(static_cast<uint64_t>(C.FloatElems) * 4, "fbuf");

  std::vector<int32_t> Ints(C.IntElems);
  for (auto &V : Ints) {
    if (R.chance(1, 16))
      V = R.chance(1, 2) ? std::numeric_limits<int32_t>::max()
                         : std::numeric_limits<int32_t>::min();
    else
      V = static_cast<int32_t>(R.nextInRange(-1000, 1000));
  }
  Mem.fillI32(IBuf, Ints);

  for (unsigned I = 0; I < C.FloatElems; ++I) {
    float V;
    if (C.Opts.AllowNonFinite && R.chance(1, 16)) {
      switch (R.nextBelow(4)) {
      case 0:
        V = std::numeric_limits<float>::infinity();
        break;
      case 1:
        V = -std::numeric_limits<float>::infinity();
        break;
      case 2:
        V = std::bit_cast<float>(0x7fc00000u);
        break;
      default:
        V = -0.0f;
        break;
      }
    } else {
      V = (R.nextFloat() - 0.5f) * 64.0f;
    }
    Mem.writeF32(FBuf + uint64_t{I} * 4, V);
  }

  return {IBuf, FBuf, C.IntElems};
}

namespace {

/// Shared guarded-run core of both simulateFuzzCase overloads. \p Make
/// constructs the engine inside the guard (engine construction may
/// allocate or, for the function overload, decode).
template <typename MakeEngine>
SimStats runFuzzGuarded(MakeEngine Make, const FuzzCase &C,
                        const std::vector<uint64_t> &Args, GlobalMemory &Mem,
                        std::string *Fatal) {
  struct SimAbort {
    std::string Msg;
  };
  struct Catcher {
    [[noreturn]] static void raise(const char *Msg) { throw SimAbort{Msg}; }
  };
  if (Fatal)
    Fatal->clear();
  // Installed on this thread only (ErrorHandling.h): sweep workers each
  // trap their own simulation's aborts, restored even if something other
  // than SimAbort unwinds through here (e.g. bad_alloc in decode).
  ScopedFatalErrorHandler Guard(Catcher::raise);
  SimStats Total;
  try {
    // Build the engine once; replay NumLaunches launches over the
    // accumulating memory (the kernel reads back its own output cells,
    // so launches are genuinely stateful).
    SimEngine Engine = Make();
    for (unsigned L = 0, E = std::max(1u, C.NumLaunches); L != E; ++L)
      Total += Engine.run(C.Launch, Args, Mem);
  } catch (const SimAbort &E) {
    if (Fatal)
      *Fatal = E.Msg;
  }
  return Total;
}

} // namespace

SimStats darm::fuzz::simulateFuzzCase(Function &F, const FuzzCase &C,
                                      const std::vector<uint64_t> &Args,
                                      GlobalMemory &Mem, std::string *Fatal) {
  return runFuzzGuarded([&F] { return SimEngine(F); }, C, Args, Mem, Fatal);
}

SimStats darm::fuzz::simulateFuzzCase(DecodedProgram P, const FuzzCase &C,
                                      const std::vector<uint64_t> &Args,
                                      GlobalMemory &Mem, std::string *Fatal) {
  return runFuzzGuarded([&P] { return SimEngine(std::move(P)); }, C, Args, Mem,
                        Fatal);
}
