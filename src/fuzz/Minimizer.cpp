//===- Minimizer.cpp - Greedy repro minimization ------------------------------===//

#include "darm/fuzz/Minimizer.h"

#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/Instruction.h"
#include "darm/ir/Module.h"
#include "darm/transform/CFGUtils.h"

using namespace darm;
using namespace darm::fuzz;

namespace {

/// Barrier calls are sync points: deleting one can turn a well-ordered
/// cross-lane exchange into a genuine (specification-level) race, and the
/// minimizer would then converge on a repro whose failure is the race,
/// not the original miscompile. Leave them in place.
bool isBarrier(const Instruction *I) {
  const auto *CI = dyn_cast<CallInst>(I);
  return CI && CI->getIntrinsic() == Intrinsic::Barrier;
}

} // namespace

bool darm::fuzz::applyEdit(Function &F, const Edit &E) {
  BasicBlock *BB = F.getBlockByName(E.Block);
  if (!BB)
    return false;
  switch (E.K) {
  case Edit::DeleteInst: {
    unsigned Idx = 0;
    for (Instruction *I : *BB) {
      if (I->isTerminator())
        break;
      if (Idx++ != E.Ordinal)
        continue;
      if (isBarrier(I))
        return false;
      if (!I->getType()->isVoid() && I->hasUses())
        I->replaceAllUsesWith(F.getContext().getUndef(I->getType()));
      I->eraseFromParent();
      return true;
    }
    return false;
  }
  case Edit::CollapseBranch: {
    auto *Br = dyn_cast_or_null<CondBrInst>(BB->getTerminator());
    if (!Br || E.Arm > 1)
      return false;
    BasicBlock *Keep = E.Arm == 0 ? Br->getTrueSuccessor()
                                  : Br->getFalseSuccessor();
    BasicBlock *Drop = E.Arm == 0 ? Br->getFalseSuccessor()
                                  : Br->getTrueSuccessor();
    if (Drop != Keep)
      Drop->removePhiEntriesFor(BB);
    BB->erase(Br);
    BB->push_back(new BrInst(Keep, F.getContext().getVoidTy()));
    removeUnreachableBlocks(F);
    return true;
  }
  }
  return false;
}

Function *darm::fuzz::buildEdited(Module &M, const FuzzCase &C,
                                  const std::vector<Edit> &Edits) {
  Function *F = buildFuzzKernel(M, C);
  for (const Edit &E : Edits)
    if (!applyEdit(*F, E))
      return nullptr;
  return F;
}

std::vector<Edit> darm::fuzz::minimizeCase(
    const FuzzCase &C,
    const std::function<bool(const std::vector<Edit> &)> &StillFails,
    unsigned MaxProbes) {
  std::vector<Edit> Edits;
  unsigned Probes = 0;

  bool Progress = true;
  while (Progress && Probes < MaxProbes) {
    Progress = false;

    // Enumerate candidates against the current edited shape.
    Context Ctx;
    Module M(Ctx, "min");
    Function *F = buildEdited(M, C, Edits);
    if (!F)
      break; // should not happen: accepted edits always replay

    std::vector<Edit> Cands;
    // Branch collapses first: one edit can drop a whole subgraph.
    for (const BasicBlock *BB : *F)
      if (isa<CondBrInst>(BB->getTerminator()))
        for (unsigned Arm = 0; Arm < 2; ++Arm)
          Cands.push_back({Edit::CollapseBranch, BB->getName(), 0, Arm});
    // Then single instructions, last block first — late values (epilogue
    // checksums, drains) usually pin the most of the kernel alive.
    std::vector<const BasicBlock *> Blocks(F->begin(), F->end());
    for (auto It = Blocks.rbegin(); It != Blocks.rend(); ++It) {
      unsigned NumNonTerm = 0;
      for (const Instruction *I : **It)
        if (!I->isTerminator())
          ++NumNonTerm;
      for (unsigned Idx = NumNonTerm; Idx-- > 0;)
        Cands.push_back({Edit::DeleteInst, (*It)->getName(), Idx, 0});
    }

    for (const Edit &Cand : Cands) {
      if (++Probes >= MaxProbes)
        break;
      std::vector<Edit> Trial = Edits;
      Trial.push_back(Cand);
      // StillFails rebuilds with the trial script itself and returns
      // false for edits that no longer apply, so no pre-check is needed.
      if (StillFails(Trial)) {
        Edits = std::move(Trial);
        Progress = true;
        break; // shape changed; re-enumerate
      }
    }
  }
  return Edits;
}
