//===- Client.cpp - resilient darmd client ------------------------------------===//
//
// Connection management, the retry/backoff loop, and the verified
// local-compile fallback behind serve::Client (serve/Client.h,
// docs/serving.md). The transport pieces are all borrowed: connects go
// through connectEndpoint, round trips through roundTrip, and the
// fallback through the daemon's own serveRequest.
//
//===----------------------------------------------------------------------===//

#include "darm/serve/Client.h"

#include "darm/core/CompileService.h"
#include "darm/serve/Server.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include <unistd.h>

using namespace darm;
using namespace darm::serve;

Client::Client(ClientOptions Opts, CompileService *FallbackSvc)
    : Opts(std::move(Opts)), FallbackSvc(FallbackSvc),
      Jitter(this->Opts.BackoffSeed) {}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Client::ensureConnected(std::string *Err) {
  if (Fd >= 0)
    return true;
  Fd = connectEndpoint(Opts.Endpoint, Err, Opts.ConnectTimeoutMs);
  return Fd >= 0;
}

unsigned Client::nextBackoffMs(unsigned PrevMs) {
  // Decorrelated jitter: uniform in [base, 3*prev], capped. The wide
  // random window is the point — synchronized clients desynchronize
  // within a retry or two instead of hammering a recovering daemon in
  // lockstep.
  const uint64_t Lo = Opts.BackoffBaseMs;
  const uint64_t Hi = std::max<uint64_t>(Lo + 1, 3ull * PrevMs);
  const uint64_t Pick = Lo + Jitter.nextBelow(Hi - Lo + 1);
  return static_cast<unsigned>(
      std::min<uint64_t>(Pick, std::max<uint64_t>(1, Opts.BackoffCapMs)));
}

bool Client::fallbackLocally(const CompileRequest &Req, CompileResponse &Resp,
                             std::string *Err) {
  CompileService *Svc = FallbackSvc;
  if (!Svc) {
    if (!OwnedFallback)
      OwnedFallback = std::make_unique<CompileService>();
    Svc = OwnedFallback.get();
  }
  Counters.Fallbacks.fetch_add(1, std::memory_order_relaxed);
  Resp = serveRequest(Req, *Svc);
  if (!Resp.Ok && Err)
    *Err = "local fallback: " + Resp.Error;
  return true; // a definitive answer either way, same as the daemon's
}

bool Client::request(const CompileRequest &Req, CompileResponse &Resp,
                     std::string *Err) {
  std::string LastErr = "no attempts made";
  unsigned PrevSleepMs = Opts.BackoffBaseMs;
  const unsigned MaxAttempts = Opts.MaxRetries + 1;
  for (unsigned Attempt = 0; Attempt < MaxAttempts; ++Attempt) {
    if (Attempt > 0) {
      Counters.Retries.fetch_add(1, std::memory_order_relaxed);
      const unsigned SleepMs = nextBackoffMs(PrevSleepMs);
      PrevSleepMs = SleepMs;
      std::this_thread::sleep_for(std::chrono::milliseconds(SleepMs));
    }
    Counters.Attempts.fetch_add(1, std::memory_order_relaxed);
    const bool WasConnected = Fd >= 0;
    if (!ensureConnected(&LastErr))
      continue; // transient: daemon down or still restarting
    if (!WasConnected && Attempt > 0)
      Counters.Reconnects.fetch_add(1, std::memory_order_relaxed);
    bool TimedOut = false;
    CompileResponse Attempt_;
    if (!roundTrip(Fd, Req, Attempt_, &LastErr, Opts.RequestTimeoutMs,
                   &TimedOut)) {
      // Torn round trip: the connection's framing state is unknown, so
      // it cannot be reused — reconnect on the next attempt.
      if (TimedOut)
        Counters.DeadlineHits.fetch_add(1, std::memory_order_relaxed);
      disconnect();
      continue;
    }
    if (Attempt_.Busy) {
      // Load shed: the daemon is alive but full. The connection was
      // closed after the one Busy frame; back off and reconnect.
      Counters.BusyShed.fetch_add(1, std::memory_order_relaxed);
      LastErr = Attempt_.Error;
      disconnect();
      continue;
    }
    // Definitive: success, compile failure (Ok with failed artifact), or
    // a permanent request-level error. None are retryable.
    Resp = std::move(Attempt_);
    return true;
  }
  if (Opts.Fallback == FallbackMode::LocalCompile)
    return fallbackLocally(Req, Resp, Err);
  if (Err)
    *Err = LastErr;
  return false;
}
