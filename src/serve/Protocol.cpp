//===- Protocol.cpp - darmd wire protocol -------------------------------------===//
//
// Encoding/decoding of the darmd request/response payloads and the
// length-prefixed framing (serve/Protocol.h, docs/caching.md). Pure byte
// composition over support/BinaryStream.h — nothing here depends on host
// endianness or struct layout, so frames written by any build decode on
// any other.
//
//===----------------------------------------------------------------------===//

#include "darm/serve/Protocol.h"

#include "darm/serve/FaultInjection.h"
#include "darm/support/BinaryStream.h"

#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <unistd.h>

using namespace darm;
using namespace darm::serve;

namespace {

constexpr char kRequestMagic[4] = {'D', 'R', 'M', 'Q'};
constexpr char kResponseMagic[4] = {'D', 'R', 'M', 'R'};

void writeMagic(ByteWriter &W, const char (&Magic)[4]) {
  for (char C : Magic)
    W.writeU8(static_cast<uint8_t>(C));
}

bool readMagic(ByteReader &R, const char (&Magic)[4]) {
  for (char C : Magic)
    if (R.readU8() != static_cast<uint8_t>(C))
      return false;
  return !R.failed();
}

/// The DARMConfig codec: an explicit field count, then every field in
/// declaration order. The count is the same schema tripwire as
/// configFingerprint's — a request built against a grown DARMConfig is
/// rejected by an older decoder instead of misread.
void writeConfig(ByteWriter &W, const DARMConfig &Cfg) {
  W.writeVar(kDARMConfigFieldCount);
  W.writeU64(std::bit_cast<uint64_t>(Cfg.ProfitThreshold));
  W.writeU64(std::bit_cast<uint64_t>(Cfg.InstrGapPenalty));
  W.writeU64(std::bit_cast<uint64_t>(Cfg.SubgraphGapPenalty));
  W.writeU8(Cfg.EnableUnpredication);
  W.writeU8(Cfg.DiamondOnly);
  W.writeU8(Cfg.EnableRegionReplication);
  W.writeU64(std::bit_cast<uint64_t>(Cfg.MinAbsoluteSaving));
  W.writeVar(Cfg.MaxIterations);
  W.writeU8(Cfg.VerifyEachStep);
  W.writeU8(Cfg.EnableConstProp);
  W.writeU8(Cfg.EnableAlgebraic);
  W.writeU8(Cfg.EnableGVN);
  W.writeU8(Cfg.EnableLICM);
  W.writeU8(Cfg.EnableLoopUnroll);
}

bool readConfig(ByteReader &R, DARMConfig &Cfg) {
  if (R.readVar() != kDARMConfigFieldCount || R.failed())
    return false;
  Cfg.ProfitThreshold = std::bit_cast<double>(R.readU64());
  Cfg.InstrGapPenalty = std::bit_cast<double>(R.readU64());
  Cfg.SubgraphGapPenalty = std::bit_cast<double>(R.readU64());
  Cfg.EnableUnpredication = R.readU8() != 0;
  Cfg.DiamondOnly = R.readU8() != 0;
  Cfg.EnableRegionReplication = R.readU8() != 0;
  Cfg.MinAbsoluteSaving = std::bit_cast<double>(R.readU64());
  Cfg.MaxIterations = static_cast<unsigned>(R.readVar());
  Cfg.VerifyEachStep = R.readU8() != 0;
  Cfg.EnableConstProp = R.readU8() != 0;
  Cfg.EnableAlgebraic = R.readU8() != 0;
  Cfg.EnableGVN = R.readU8() != 0;
  Cfg.EnableLICM = R.readU8() != 0;
  Cfg.EnableLoopUnroll = R.readU8() != 0;
  return !R.failed();
}

bool reject(std::string *Err, const char *Why) {
  if (Err)
    *Err = Why;
  return false;
}

} // namespace

const char *darm::serve::originName(ServeOrigin O) {
  switch (O) {
  case ServeOrigin::Compiled:
    return "compiled";
  case ServeOrigin::MemoryHit:
    return "memory-hit";
  case ServeOrigin::DiskHit:
    return "disk-hit";
  case ServeOrigin::Upgraded:
    return "upgraded";
  }
  return "unknown";
}

std::vector<uint8_t> darm::serve::encodeRequest(const CompileRequest &Req) {
  ByteWriter W;
  writeMagic(W, kRequestMagic);
  W.writeU16(kServeProtocolVersion);
  W.writeU8(Req.IncludeProgram ? 1 : 0);
  writeConfig(W, Req.Cfg);
  W.writeStr(Req.IRText);
  return W.take();
}

bool darm::serve::decodeRequest(const uint8_t *Data, size_t Size,
                                CompileRequest &Req, std::string *Err) {
  ByteReader R(Data, Size);
  if (!readMagic(R, kRequestMagic))
    return reject(Err, "request: bad magic (not a DRMQ frame)");
  if (R.readU16() != kServeProtocolVersion || R.failed())
    return reject(Err, "request: unsupported protocol version");
  CompileRequest Q;
  const uint8_t Flags = R.readU8();
  if (Flags & ~1u)
    return reject(Err, "request: unknown flag bits");
  Q.IncludeProgram = (Flags & 1) != 0;
  if (!readConfig(R, Q.Cfg))
    return reject(Err, "request: config schema mismatch");
  Q.IRText = R.readStr();
  if (R.failed())
    return reject(Err, "request: truncated payload");
  if (!R.atEnd())
    return reject(Err, "request: trailing bytes");
  Req = std::move(Q);
  return true;
}

std::vector<uint8_t> darm::serve::encodeResponse(const CompileResponse &Resp) {
  ByteWriter W;
  writeMagic(W, kResponseMagic);
  W.writeU16(kServeProtocolVersion);
  if (!Resp.Ok && Resp.Busy) {
    // Load shedding: status alone, no message, no artifact — the
    // cheapest possible answer for a server already over capacity.
    W.writeU8(2);
    return W.take();
  }
  W.writeU8(Resp.Ok ? 0 : 1);
  if (!Resp.Ok) {
    W.writeStr(Resp.Error);
    return W.take();
  }
  W.writeU8(static_cast<uint8_t>(Resp.Origin));
  const std::vector<uint8_t> Art = serializeCompiledModule(Resp.Art);
  W.writeVar(Art.size());
  std::vector<uint8_t> Out = W.take();
  Out.insert(Out.end(), Art.begin(), Art.end());
  return Out;
}

bool darm::serve::decodeResponse(const uint8_t *Data, size_t Size,
                                 CompileResponse &Resp, std::string *Err) {
  ByteReader R(Data, Size);
  if (!readMagic(R, kResponseMagic))
    return reject(Err, "response: bad magic (not a DRMR frame)");
  if (R.readU16() != kServeProtocolVersion || R.failed())
    return reject(Err, "response: unsupported protocol version");
  CompileResponse Out;
  const uint8_t Status = R.readU8();
  if (R.failed() || Status > 2)
    return reject(Err, "response: bad status");
  if (Status == 2) {
    if (!R.atEnd())
      return reject(Err, "response: trailing bytes on busy status");
    Out.Ok = false;
    Out.Busy = true;
    Out.Error = "server busy (load shedding)";
    Resp = std::move(Out);
    return true;
  }
  if (Status == 1) {
    Out.Ok = false;
    Out.Error = R.readStr();
    if (R.failed() || !R.atEnd())
      return reject(Err, "response: truncated error payload");
    Resp = std::move(Out);
    return true;
  }
  Out.Ok = true;
  const uint8_t Origin = R.readU8();
  if (R.failed() || Origin > static_cast<uint8_t>(ServeOrigin::Upgraded))
    return reject(Err, "response: bad origin");
  Out.Origin = static_cast<ServeOrigin>(Origin);
  const uint64_t ArtSize = R.readVar();
  if (R.failed() || ArtSize != Size - R.position())
    return reject(Err, "response: artifact length mismatch");
  std::string ArtErr;
  if (!deserializeCompiledModule(Data + R.position(),
                                 static_cast<size_t>(ArtSize), Out.Art,
                                 &ArtErr))
    return reject(Err, ("response: " + ArtErr).c_str());
  Resp = std::move(Out);
  return true;
}

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds until \p Deadline, clamped at 0. -1 when unarmed.
int remainingMs(bool Armed, Clock::time_point Deadline) {
  if (!Armed)
    return -1;
  const auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        Deadline - Clock::now())
                        .count();
  return Left < 0 ? 0 : static_cast<int>(Left);
}

/// Reads exactly \p Len bytes through the fault-aware primitive, looping
/// on EINTR and short reads, bounded by \p Deadline when \p Armed. A
/// deadline wait happens BEFORE each read, so a peer that dribbles bytes
/// cannot extend its budget. Returns 1 done, 0 clean EOF before the
/// first byte of this span, -1 error/timeout.
int readFullDeadline(int Fd, uint8_t *P, size_t Len, bool Armed,
                     Clock::time_point Deadline, bool *TimedOut) {
  size_t Got = 0;
  while (Got < Len) {
    if (Armed) {
      const int Left = remainingMs(Armed, Deadline);
      const int W = fiPollWait(Fd, POLLIN, Left);
      if (W == 0) {
        if (TimedOut)
          *TimedOut = true;
        return -1;
      }
      if (W < 0)
        return -1;
    }
    const ssize_t R = fiRead(Fd, P + Got, Len - Got);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (R == 0)
      return Got == 0 ? 0 : -1;
    Got += static_cast<size_t>(R);
  }
  return 1;
}

} // namespace

bool darm::serve::writeFrame(int Fd, const std::vector<uint8_t> &Payload,
                             int TimeoutMs, bool *TimedOut) {
  if (TimedOut)
    *TimedOut = false;
  if (Payload.size() > kMaxFrameBytes)
    return false;
  const bool Armed = TimeoutMs >= 0;
  const Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(Armed ? TimeoutMs : 0);
  uint8_t Header[4];
  const uint32_t N = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I < 4; ++I)
    Header[I] = static_cast<uint8_t>(N >> (8 * I));
  auto WriteAll = [&](const uint8_t *P, size_t Len) {
    while (Len > 0) {
      if (Armed) {
        const int W = fiPollWait(Fd, POLLOUT, remainingMs(Armed, Deadline));
        if (W == 0) {
          if (TimedOut)
            *TimedOut = true;
          return false;
        }
        if (W < 0)
          return false;
      }
      const ssize_t W = fiWrite(Fd, P, Len);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      P += W;
      Len -= static_cast<size_t>(W);
    }
    return true;
  };
  return WriteAll(Header, 4) && WriteAll(Payload.data(), Payload.size());
}

bool darm::serve::readFrame(int Fd, std::vector<uint8_t> &Payload,
                            bool *CleanEof, int IdleTimeoutMs,
                            int FrameTimeoutMs, bool *TimedOut) {
  if (CleanEof)
    *CleanEof = false;
  if (TimedOut)
    *TimedOut = false;
  uint8_t Header[4];
  // First byte under the idle budget: a quiet connection between
  // requests is normal session state, bounded only if the caller says
  // so.
  {
    const bool Armed = IdleTimeoutMs >= 0;
    const int R = readFullDeadline(
        Fd, Header, 1, Armed,
        Clock::now() + std::chrono::milliseconds(Armed ? IdleTimeoutMs : 0),
        TimedOut);
    if (R == 0) {
      // EOF exactly on a frame boundary is how sessions end.
      if (CleanEof)
        *CleanEof = true;
      return false;
    }
    if (R < 0)
      return false;
  }
  // The frame has started: the rest must complete under the frame
  // budget, armed once — the slow-loris guard.
  const bool Armed = FrameTimeoutMs >= 0;
  const Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(Armed ? FrameTimeoutMs : 0);
  if (readFullDeadline(Fd, Header + 1, 3, Armed, Deadline, TimedOut) != 1)
    return false;
  uint32_t N = 0;
  for (int I = 0; I < 4; ++I)
    N |= static_cast<uint32_t>(Header[I]) << (8 * I);
  if (N > kMaxFrameBytes)
    return false;
  Payload.resize(N);
  if (N > 0 &&
      readFullDeadline(Fd, Payload.data(), N, Armed, Deadline, TimedOut) != 1)
    return false;
  return true;
}
