//===- FaultInjection.cpp - Seeded fault schedules for the serve stack --------===//
//
// The process-global fault plan and the fault-aware I/O primitives every
// serving-layer byte goes through (serve/FaultInjection.h,
// docs/serving.md). The injection point sits ABOVE the callers' EINTR /
// short-count retry loops, so injected transient faults exercise exactly
// the code that absorbs real ones.
//
//===----------------------------------------------------------------------===//

#include "darm/serve/FaultInjection.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <unordered_set>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace darm;
using namespace darm::serve;

namespace {

std::atomic<FaultPlan *> GlobalPlan{nullptr};

/// Fds a Disconnect decision has torn. Guarded by its own mutex; only
/// touched on the (rare) faulted path and in the fd-poison check, which
/// is only reached when a plan is installed.
std::mutex PoisonM;
std::unordered_set<int> PoisonedFds;

bool fdPoisoned(int Fd) {
  std::lock_guard<std::mutex> L(PoisonM);
  return PoisonedFds.count(Fd) != 0;
}

void poisonFd(int Fd) {
  std::lock_guard<std::mutex> L(PoisonM);
  PoisonedFds.insert(Fd);
}

/// The shared prologue of every fault-aware primitive: null-plan fast
/// path, poisoned-fd check, then the plan's decision. Returns true when
/// the caller should return \p Ret immediately (fault consumed the op).
/// Fd < 0 marks path-level ops (open/rename) with no fd to poison.
bool consultPlan(FaultOp Op, int Fd, size_t &N, ssize_t &Ret, bool Sock) {
  FaultPlan *P = GlobalPlan.load(std::memory_order_relaxed);
  if (__builtin_expect(P == nullptr, 1))
    return false;
  if (Fd >= 0 && fdPoisoned(Fd)) {
    errno = Sock ? ECONNRESET : EIO;
    Ret = -1;
    return true;
  }
  const FaultDecision D = P->decide(Op, N);
  switch (D.K) {
  case FaultDecision::Proceed:
    return false;
  case FaultDecision::Shorten:
    N = D.ShortenTo;
    return false;
  case FaultDecision::Delay:
    std::this_thread::sleep_for(std::chrono::milliseconds(D.DelayMs));
    return false;
  case FaultDecision::Fail:
    errno = D.Err;
    Ret = -1;
    return true;
  case FaultDecision::Disconnect:
    if (Fd >= 0)
      poisonFd(Fd);
    errno = D.Err;
    Ret = -1;
    return true;
  }
  return false;
}

} // namespace

void darm::serve::setFaultPlan(FaultPlan *P) {
  GlobalPlan.store(P, std::memory_order_relaxed);
  if (!P)
    clearPoisonedFds();
}

FaultPlan *darm::serve::faultPlan() {
  return GlobalPlan.load(std::memory_order_relaxed);
}

void darm::serve::clearPoisonedFds() {
  std::lock_guard<std::mutex> L(PoisonM);
  PoisonedFds.clear();
}

FaultDecision FaultPlan::decide(FaultOp Op, size_t Bytes) {
  Operations.fetch_add(1, std::memory_order_relaxed);
  FaultDecision D;
  const bool Sock = Op == FaultOp::SockRead || Op == FaultOp::SockWrite;
  if (Sock && !Opts.FaultSockets)
    return D;
  if (!Sock && !Opts.FaultStore)
    return D;

  uint64_t Draw, Kind, Extra;
  {
    std::lock_guard<std::mutex> L(M);
    Draw = Rng.next();
    Kind = Rng.next();
    Extra = Rng.next();
  }
  // Rate gate: top 53 bits as a uniform double in [0,1).
  const double U =
      static_cast<double>(Draw >> 11) / static_cast<double>(1ULL << 53);
  if (U >= Opts.Rate)
    return D;
  Faults.fetch_add(1, std::memory_order_relaxed);

  // Per-class fault distributions. Transient faults (EINTR, short
  // counts, delays) dominate so retry loops see heavy traffic; terminal
  // faults (resets, ENOSPC) stay frequent enough that every absorbing
  // layer fires across a 200-plan sweep.
  switch (Op) {
  case FaultOp::SockRead:
  case FaultOp::SockWrite:
    switch (Kind % 8) {
    case 0:
    case 1: // EINTR: the retry loop must spin, not fail
      D.K = FaultDecision::Fail;
      D.Err = EINTR;
      break;
    case 2:
    case 3: // short count: framing must reassemble
      if (Bytes > 1) {
        D.K = FaultDecision::Shorten;
        D.ShortenTo = 1 + static_cast<size_t>(Extra % (Bytes - 1));
      }
      break;
    case 4: // slow-loris: bounded stall mid-frame
      D.K = FaultDecision::Delay;
      D.DelayMs = Opts.MaxDelayMs ? 1 + static_cast<unsigned>(
                                            Extra % Opts.MaxDelayMs)
                                  : 0;
      break;
    case 5: // reset without poisoning: this op fails, fd survives
      D.K = FaultDecision::Fail;
      D.Err = ECONNRESET;
      break;
    default: // mid-frame disconnect: the fd is dead from here on
      D.K = FaultDecision::Disconnect;
      D.Err = Op == FaultOp::SockWrite ? EPIPE : ECONNRESET;
      break;
    }
    break;
  case FaultOp::FsOpen:
    D.K = FaultDecision::Fail;
    D.Err = Kind % 2 ? EMFILE : EACCES;
    break;
  case FaultOp::FsRead:
    if (Kind % 3 == 0) {
      D.K = FaultDecision::Fail;
      D.Err = EINTR;
    } else if (Kind % 3 == 1 && Bytes > 1) {
      D.K = FaultDecision::Shorten;
      D.ShortenTo = 1 + static_cast<size_t>(Extra % (Bytes - 1));
    } else {
      D.K = FaultDecision::Fail;
      D.Err = EIO;
    }
    break;
  case FaultOp::FsWrite:
    if (Kind % 4 == 0) {
      D.K = FaultDecision::Fail;
      D.Err = EINTR;
    } else if (Kind % 4 == 1 && Bytes > 1) {
      D.K = FaultDecision::Shorten;
      D.ShortenTo = 1 + static_cast<size_t>(Extra % (Bytes - 1));
    } else {
      // The headline store fault: disk full / dying mid-artifact.
      D.K = FaultDecision::Fail;
      D.Err = Kind % 4 == 2 ? ENOSPC : EIO;
    }
    break;
  case FaultOp::FsFsync:
    D.K = FaultDecision::Fail;
    D.Err = Kind % 2 ? EIO : ENOSPC;
    break;
  case FaultOp::FsRename:
    D.K = FaultDecision::Fail;
    D.Err = Kind % 2 ? EIO : ENOSPC;
    break;
  case FaultOp::NumOps:
    break;
  }
  if (D.K == FaultDecision::Proceed)
    Faults.fetch_sub(1, std::memory_order_relaxed);
  return D;
}

bool FaultPlan::parse(const std::string &Spec, Options &O, std::string *Err) {
  Options Out;
  bool SawSeed = false;
  size_t At = 0;
  auto Fail = [&](const std::string &Why) {
    if (Err)
      *Err = "fault-plan: " + Why;
    return false;
  };
  while (At < Spec.size()) {
    size_t End = Spec.find(',', At);
    if (End == std::string::npos)
      End = Spec.size();
    const std::string Field = Spec.substr(At, End - At);
    At = End + 1;
    const size_t Eq = Field.find('=');
    if (Eq == std::string::npos)
      return Fail("field '" + Field + "' is not key=value");
    const std::string Key = Field.substr(0, Eq);
    const std::string Val = Field.substr(Eq + 1);
    char *EndP = nullptr;
    if (Key == "seed") {
      Out.Seed = std::strtoull(Val.c_str(), &EndP, 0);
      SawSeed = true;
    } else if (Key == "rate") {
      Out.Rate = std::strtod(Val.c_str(), &EndP);
      if (Out.Rate < 0 || Out.Rate > 1)
        return Fail("rate must be in [0,1]");
    } else if (Key == "sock") {
      Out.FaultSockets = std::strtoul(Val.c_str(), &EndP, 10) != 0;
    } else if (Key == "store") {
      Out.FaultStore = std::strtoul(Val.c_str(), &EndP, 10) != 0;
    } else if (Key == "delay-ms") {
      Out.MaxDelayMs =
          static_cast<unsigned>(std::strtoul(Val.c_str(), &EndP, 10));
    } else {
      return Fail("unknown key '" + Key + "'");
    }
    if (!EndP || *EndP != '\0' || Val.empty())
      return Fail("bad value for '" + Key + "'");
  }
  if (!SawSeed)
    return Fail("missing required 'seed=N'");
  O = Out;
  return true;
}

ssize_t darm::serve::fiRead(int Fd, void *Buf, size_t N) {
  ssize_t Ret = 0;
  if (consultPlan(FaultOp::SockRead, Fd, N, Ret, /*Sock=*/true))
    return Ret;
  return ::read(Fd, Buf, N);
}

ssize_t darm::serve::fiWrite(int Fd, const void *Buf, size_t N) {
  ssize_t Ret = 0;
  if (consultPlan(FaultOp::SockWrite, Fd, N, Ret, /*Sock=*/true))
    return Ret;
  // MSG_NOSIGNAL: a peer that closed mid-session must surface as EPIPE,
  // never as a process-killing SIGPIPE. Pipes (--stdio mode) are not
  // sockets; send() fails ENOTSOCK there and write(2) takes over — the
  // daemon ignores SIGPIPE process-wide for that transport.
  const ssize_t W = ::send(Fd, Buf, N, MSG_NOSIGNAL);
  if (W < 0 && errno == ENOTSOCK)
    return ::write(Fd, Buf, N);
  return W;
}

int darm::serve::fiOpen(const char *Path, int Flags, unsigned Mode) {
  size_t N = 0;
  ssize_t Ret = 0;
  if (consultPlan(FaultOp::FsOpen, -1, N, Ret, /*Sock=*/false))
    return -1;
  return ::open(Path, Flags, static_cast<mode_t>(Mode));
}

ssize_t darm::serve::fiFsRead(int Fd, void *Buf, size_t N) {
  ssize_t Ret = 0;
  // Path-level poisoning is meaningless for store files; pass Fd=-1 so
  // only the decision applies.
  if (consultPlan(FaultOp::FsRead, -1, N, Ret, /*Sock=*/false))
    return Ret;
  return ::read(Fd, Buf, N);
}

ssize_t darm::serve::fiFsWrite(int Fd, const void *Buf, size_t N) {
  ssize_t Ret = 0;
  if (consultPlan(FaultOp::FsWrite, -1, N, Ret, /*Sock=*/false))
    return Ret;
  return ::write(Fd, Buf, N);
}

int darm::serve::fiFsync(int Fd) {
  size_t N = 0;
  ssize_t Ret = 0;
  if (consultPlan(FaultOp::FsFsync, -1, N, Ret, /*Sock=*/false))
    return -1;
  return ::fsync(Fd);
}

int darm::serve::fiRename(const char *From, const char *To) {
  size_t N = 0;
  ssize_t Ret = 0;
  if (consultPlan(FaultOp::FsRename, -1, N, Ret, /*Sock=*/false))
    return -1;
  return ::rename(From, To);
}

int darm::serve::fiPollWait(int Fd, short Events, int TimeoutMs) {
  const auto Start = std::chrono::steady_clock::now();
  for (;;) {
    pollfd P;
    P.fd = Fd;
    P.events = Events;
    P.revents = 0;
    int Remaining = TimeoutMs;
    if (TimeoutMs >= 0) {
      const auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                               std::chrono::steady_clock::now() - Start)
                               .count();
      Remaining = TimeoutMs - static_cast<int>(Elapsed);
      if (Remaining < 0)
        Remaining = 0;
    }
    const int R = ::poll(&P, 1, Remaining);
    if (R > 0)
      return 1; // readable/writable OR error/hup: let the I/O call see it
    if (R == 0)
      return 0;
    if (errno != EINTR)
      return -1;
  }
}
