//===- Server.cpp - darmd serving loop ----------------------------------------===//
//
// The per-connection request loop and Unix-socket plumbing behind darmd
// (serve/Server.h, docs/caching.md). Each request is parsed into a
// private Context, answered through the shared CompileService (so the
// response artifact is byte-identical to an in-process compileToArtifact
// call), and framed back with its cache origin.
//
//===----------------------------------------------------------------------===//

#include "darm/serve/Server.h"

#include "darm/core/CompileService.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/Module.h"

#include <cerrno>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace darm;
using namespace darm::serve;

namespace {

ServeOrigin toOrigin(CacheSource Src) {
  switch (Src) {
  case CacheSource::Compiled:
    return ServeOrigin::Compiled;
  case CacheSource::MemoryHit:
    return ServeOrigin::MemoryHit;
  case CacheSource::DiskHit:
    return ServeOrigin::DiskHit;
  case CacheSource::Upgraded:
    return ServeOrigin::Upgraded;
  }
  return ServeOrigin::Compiled;
}

/// Answers one well-formed request. Request-level failures (bad IR,
/// empty module) come back Ok=false; compile failures are Ok=true
/// artifacts with CompileError set, exactly like the in-process path.
CompileResponse answer(const CompileRequest &Req, CompileService &Svc) {
  CompileResponse Resp;
  Context Ctx;
  std::string Err;
  std::unique_ptr<Module> M = parseModule(Ctx, Req.IRText, &Err);
  if (!M) {
    Resp.Error = "parse error: " + Err;
    return Resp;
  }
  if (M->functions().empty()) {
    Resp.Error = "request module has no function";
    return Resp;
  }
  // One kernel per request: the artifact layer's unit is a single
  // function, so a multi-function module is ambiguous, not truncated.
  if (M->functions().size() > 1) {
    Resp.Error = "request module has more than one function";
    return Resp;
  }
  CacheSource Src = CacheSource::Compiled;
  CompileService::Artifact Art = Svc.getOrCompile(
      *M->functions().front(), Req.Cfg, Req.IncludeProgram, &Src);
  Resp.Ok = true;
  Resp.Origin = toOrigin(Src);
  Resp.Art = *Art;
  return Resp;
}

void countResponse(const CompileResponse &Resp, ServeCounters *C) {
  if (!C)
    return;
  if (!Resp.Ok) {
    C->Errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  switch (Resp.Origin) {
  case ServeOrigin::Compiled:
    C->Compiled.fetch_add(1, std::memory_order_relaxed);
    break;
  case ServeOrigin::MemoryHit:
    C->MemoryHits.fetch_add(1, std::memory_order_relaxed);
    break;
  case ServeOrigin::DiskHit:
    C->DiskHits.fetch_add(1, std::memory_order_relaxed);
    break;
  case ServeOrigin::Upgraded:
    C->Upgrades.fetch_add(1, std::memory_order_relaxed);
    break;
  }
}

} // namespace

uint64_t darm::serve::serveStream(int InFd, int OutFd, CompileService &Svc,
                                  ServeCounters *Counters) {
  uint64_t Served = 0;
  std::vector<uint8_t> Frame;
  for (;;) {
    bool CleanEof = false;
    if (!readFrame(InFd, Frame, &CleanEof))
      return Served; // session over (clean EOF) or transport gone
    if (Counters)
      Counters->Requests.fetch_add(1, std::memory_order_relaxed);
    CompileRequest Req;
    std::string Err;
    if (!decodeRequest(Frame.data(), Frame.size(), Req, &Err)) {
      // The stream is poisoned: framing after an undecodable request
      // cannot be trusted. One terminal error response, then hang up.
      CompileResponse Resp;
      Resp.Error = Err;
      countResponse(Resp, Counters);
      writeFrame(OutFd, encodeResponse(Resp));
      return Served;
    }
    const CompileResponse Resp = answer(Req, Svc);
    countResponse(Resp, Counters);
    if (!writeFrame(OutFd, encodeResponse(Resp)))
      return Served;
    ++Served;
  }
}

int darm::serve::listenUnixSocket(const std::string &Path, std::string *Err) {
  auto Fail = [&](const char *What) {
    if (Err)
      *Err = std::string(What) + ": " + std::strerror(errno);
    return -1;
  };
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + Path;
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  const int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Fail("socket");
  ::unlink(Path.c_str()); // a stale socket file blocks bind
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 64) != 0) {
    const int E = errno;
    ::close(Fd);
    errno = E;
    return Fail("bind/listen");
  }
  return Fd;
}

int darm::serve::connectUnixSocket(const std::string &Path, std::string *Err) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + Path;
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  const int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0 ||
      ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    if (Err)
      *Err = "connect " + Path + ": " + std::strerror(errno);
    if (Fd >= 0)
      ::close(Fd);
    return -1;
  }
  return Fd;
}

void darm::serve::acceptLoop(int ListenFd, CompileService &Svc,
                             ServeCounters *Counters,
                             std::atomic<bool> *Stop) {
  for (;;) {
    if (Stop && Stop->load(std::memory_order_relaxed))
      return;
    const int Conn = ::accept(ListenFd, nullptr, nullptr);
    if (Conn < 0) {
      if (errno == EINTR)
        continue;
      return; // listener closed: daemon shutting down
    }
    std::thread([Conn, &Svc, Counters] {
      serveStream(Conn, Conn, Svc, Counters);
      ::close(Conn);
    }).detach();
  }
}

bool darm::serve::roundTrip(int Fd, const CompileRequest &Req,
                            CompileResponse &Resp, std::string *Err) {
  if (!writeFrame(Fd, encodeRequest(Req))) {
    if (Err)
      *Err = "request write failed";
    return false;
  }
  std::vector<uint8_t> Frame;
  if (!readFrame(Fd, Frame)) {
    if (Err)
      *Err = "response read failed (daemon gone?)";
    return false;
  }
  return decodeResponse(Frame.data(), Frame.size(), Resp, Err);
}
