//===- Server.cpp - darmd serving loop ----------------------------------------===//
//
// The per-connection request loop, transport plumbing (Unix socket +
// TCP), and the SocketServer accept/drain machinery behind darmd
// (serve/Server.h, docs/serving.md). Each request is parsed into a
// private Context, answered through the shared CompileService (so the
// response artifact is byte-identical to an in-process compileToArtifact
// call), and framed back with its cache origin.
//
//===----------------------------------------------------------------------===//

#include "darm/serve/Server.h"

#include "darm/core/CompileService.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/Module.h"
#include "darm/serve/FaultInjection.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace darm;
using namespace darm::serve;

namespace {

ServeOrigin toOrigin(CacheSource Src) {
  switch (Src) {
  case CacheSource::Compiled:
    return ServeOrigin::Compiled;
  case CacheSource::MemoryHit:
    return ServeOrigin::MemoryHit;
  case CacheSource::DiskHit:
    return ServeOrigin::DiskHit;
  case CacheSource::Upgraded:
    return ServeOrigin::Upgraded;
  }
  return ServeOrigin::Compiled;
}

} // namespace

CompileResponse darm::serve::serveRequest(const CompileRequest &Req,
                                          CompileService &Svc) {
  CompileResponse Resp;
  Context Ctx;
  std::string Err;
  std::unique_ptr<Module> M = parseModule(Ctx, Req.IRText, &Err);
  if (!M) {
    Resp.Error = "parse error: " + Err;
    return Resp;
  }
  if (M->functions().empty()) {
    Resp.Error = "request module has no function";
    return Resp;
  }
  // One kernel per request: the artifact layer's unit is a single
  // function, so a multi-function module is ambiguous, not truncated.
  if (M->functions().size() > 1) {
    Resp.Error = "request module has more than one function";
    return Resp;
  }
  CacheSource Src = CacheSource::Compiled;
  CompileService::Artifact Art = Svc.getOrCompile(
      *M->functions().front(), Req.Cfg, Req.IncludeProgram, &Src);
  Resp.Ok = true;
  Resp.Origin = toOrigin(Src);
  Resp.Art = *Art;
  return Resp;
}

namespace {

void countResponse(const CompileResponse &Resp, ServeCounters *C) {
  if (!C)
    return;
  if (!Resp.Ok) {
    (Resp.Busy ? C->Busy : C->Errors).fetch_add(1, std::memory_order_relaxed);
    return;
  }
  switch (Resp.Origin) {
  case ServeOrigin::Compiled:
    C->Compiled.fetch_add(1, std::memory_order_relaxed);
    break;
  case ServeOrigin::MemoryHit:
    C->MemoryHits.fetch_add(1, std::memory_order_relaxed);
    break;
  case ServeOrigin::DiskHit:
    C->DiskHits.fetch_add(1, std::memory_order_relaxed);
    break;
  case ServeOrigin::Upgraded:
    C->Upgrades.fetch_add(1, std::memory_order_relaxed);
    break;
  }
}

/// RAII guard for the in-flight gauge a draining server waits on.
class InFlightGuard {
public:
  explicit InFlightGuard(ServeCounters *C) : C(C) {
    if (C)
      C->InFlight.fetch_add(1, std::memory_order_relaxed);
  }
  ~InFlightGuard() {
    if (C)
      C->InFlight.fetch_sub(1, std::memory_order_relaxed);
  }

private:
  ServeCounters *C;
};

bool parseHostPort(const std::string &HostPort, std::string &Host,
                   std::string &Port, std::string *Err) {
  const size_t Colon = HostPort.rfind(':');
  if (Colon == std::string::npos || Colon + 1 == HostPort.size()) {
    if (Err)
      *Err = "endpoint '" + HostPort + "' is not host:port";
    return false;
  }
  Host = HostPort.substr(0, Colon);
  Port = HostPort.substr(Colon + 1);
  if (Host.empty())
    Host = "127.0.0.1";
  return true;
}

void setNoDelay(int Fd) {
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

} // namespace

uint64_t darm::serve::serveStream(int InFd, int OutFd, CompileService &Svc,
                                  ServeCounters *Counters,
                                  const ServeOptions &Opts) {
  uint64_t Served = 0;
  std::vector<uint8_t> Frame;
  for (;;) {
    // Drain check sits between requests: once a frame has been read it
    // is always answered, but no new frame is awaited while draining.
    if (Opts.Drain && Opts.Drain->load(std::memory_order_acquire))
      return Served;
    bool CleanEof = false, TimedOut = false;
    if (!readFrame(InFd, Frame, &CleanEof, Opts.IdleTimeoutMs,
                   Opts.FrameTimeoutMs, &TimedOut)) {
      if (TimedOut && Counters)
        Counters->Timeouts.fetch_add(1, std::memory_order_relaxed);
      return Served; // session over (clean EOF), deadline cut, or gone
    }
    InFlightGuard InFlight(Counters);
    if (Counters)
      Counters->Requests.fetch_add(1, std::memory_order_relaxed);
    CompileRequest Req;
    std::string Err;
    if (!decodeRequest(Frame.data(), Frame.size(), Req, &Err)) {
      // The stream is poisoned: framing after an undecodable request
      // cannot be trusted. One terminal error response, then hang up.
      CompileResponse Resp;
      Resp.Error = Err;
      countResponse(Resp, Counters);
      writeFrame(OutFd, encodeResponse(Resp), Opts.FrameTimeoutMs);
      return Served;
    }
    const CompileResponse Resp = serveRequest(Req, Svc);
    countResponse(Resp, Counters);
    bool WriteTimedOut = false;
    if (!writeFrame(OutFd, encodeResponse(Resp), Opts.FrameTimeoutMs,
                    &WriteTimedOut)) {
      if (WriteTimedOut && Counters)
        Counters->Timeouts.fetch_add(1, std::memory_order_relaxed);
      return Served;
    }
    ++Served;
  }
}

//===----------------------------------------------------------------------===//
// Transports
//===----------------------------------------------------------------------===//

int darm::serve::listenUnixSocket(const std::string &Path, std::string *Err) {
  auto Fail = [&](const char *What) {
    if (Err)
      *Err = std::string(What) + ": " + std::strerror(errno);
    return -1;
  };
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + Path;
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  const int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Fail("socket");
  ::unlink(Path.c_str()); // a stale socket file blocks bind
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 64) != 0) {
    const int E = errno;
    ::close(Fd);
    errno = E;
    return Fail("bind/listen");
  }
  return Fd;
}

int darm::serve::connectUnixSocket(const std::string &Path, std::string *Err) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + Path;
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  const int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0 ||
      ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    if (Err)
      *Err = "connect " + Path + ": " + std::strerror(errno);
    if (Fd >= 0)
      ::close(Fd);
    return -1;
  }
  return Fd;
}

int darm::serve::listenTcp(const std::string &HostPort, std::string *Err,
                           uint16_t *BoundPort) {
  std::string Host, Port;
  if (!parseHostPort(HostPort, Host, Port, Err))
    return -1;
  addrinfo Hints;
  std::memset(&Hints, 0, sizeof(Hints));
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  Hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  addrinfo *Res = nullptr;
  const int G = ::getaddrinfo(Host.c_str(), Port.c_str(), &Hints, &Res);
  if (G != 0) {
    if (Err)
      *Err = "resolve " + HostPort + ": " + ::gai_strerror(G);
    return -1;
  }
  int Fd = -1;
  for (addrinfo *AI = Res; AI; AI = AI->ai_next) {
    Fd = ::socket(AI->ai_family, AI->ai_socktype, AI->ai_protocol);
    if (Fd < 0)
      continue;
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    if (::bind(Fd, AI->ai_addr, AI->ai_addrlen) == 0 &&
        ::listen(Fd, 64) == 0)
      break;
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Res);
  if (Fd < 0) {
    if (Err)
      *Err = "bind/listen " + HostPort + ": " + std::strerror(errno);
    return -1;
  }
  if (BoundPort) {
    sockaddr_storage SS;
    socklen_t Len = sizeof(SS);
    *BoundPort = 0;
    if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&SS), &Len) == 0) {
      if (SS.ss_family == AF_INET)
        *BoundPort =
            ntohs(reinterpret_cast<sockaddr_in *>(&SS)->sin_port);
      else if (SS.ss_family == AF_INET6)
        *BoundPort =
            ntohs(reinterpret_cast<sockaddr_in6 *>(&SS)->sin6_port);
    }
  }
  return Fd;
}

int darm::serve::connectTcp(const std::string &HostPort, std::string *Err,
                            int TimeoutMs) {
  std::string Host, Port;
  if (!parseHostPort(HostPort, Host, Port, Err))
    return -1;
  addrinfo Hints;
  std::memset(&Hints, 0, sizeof(Hints));
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  Hints.ai_flags = AI_NUMERICSERV;
  addrinfo *Res = nullptr;
  const int G = ::getaddrinfo(Host.c_str(), Port.c_str(), &Hints, &Res);
  if (G != 0) {
    if (Err)
      *Err = "resolve " + HostPort + ": " + ::gai_strerror(G);
    return -1;
  }
  int Fd = -1;
  std::string LastErr = "no addresses";
  for (addrinfo *AI = Res; AI; AI = AI->ai_next) {
    Fd = ::socket(AI->ai_family, AI->ai_socktype, AI->ai_protocol);
    if (Fd < 0)
      continue;
    // Deadline-bounded connect: non-blocking connect + poll, then back
    // to blocking mode for the framed session.
    const int Flags = ::fcntl(Fd, F_GETFL, 0);
    if (TimeoutMs >= 0)
      ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
    int C = ::connect(Fd, AI->ai_addr, AI->ai_addrlen);
    if (C != 0 && errno == EINPROGRESS && TimeoutMs >= 0) {
      if (fiPollWait(Fd, POLLOUT, TimeoutMs) == 1) {
        int SoErr = 0;
        socklen_t Len = sizeof(SoErr);
        if (::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoErr, &Len) == 0 &&
            SoErr == 0)
          C = 0;
        else
          errno = SoErr ? SoErr : ECONNREFUSED;
      } else {
        errno = ETIMEDOUT;
      }
    }
    if (C == 0) {
      if (TimeoutMs >= 0)
        ::fcntl(Fd, F_SETFL, Flags);
      setNoDelay(Fd);
      break;
    }
    LastErr = std::strerror(errno);
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Res);
  if (Fd < 0 && Err)
    *Err = "connect " + HostPort + ": " + LastErr;
  return Fd;
}

bool darm::serve::endpointIsTcp(const std::string &Endpoint) {
  return Endpoint.find(':') != std::string::npos;
}

int darm::serve::listenEndpoint(const std::string &Endpoint, std::string *Err,
                                uint16_t *BoundPort) {
  if (endpointIsTcp(Endpoint))
    return listenTcp(Endpoint, Err, BoundPort);
  if (BoundPort)
    *BoundPort = 0;
  return listenUnixSocket(Endpoint, Err);
}

int darm::serve::connectEndpoint(const std::string &Endpoint, std::string *Err,
                                 int TimeoutMs) {
  if (endpointIsTcp(Endpoint))
    return connectTcp(Endpoint, Err, TimeoutMs);
  return connectUnixSocket(Endpoint, Err);
}

//===----------------------------------------------------------------------===//
// SocketServer
//===----------------------------------------------------------------------===//

SocketServer::SocketServer(CompileService &Svc, ServeCounters *Counters)
    : SocketServer(Svc, Counters, Options()) {}

SocketServer::SocketServer(CompileService &Svc, ServeCounters *Counters,
                           Options Opts)
    : Svc(Svc), Counters(Counters), Opts(Opts) {}

SocketServer::~SocketServer() {
  if (Started && !Stopped)
    drain(0);
  if (StopRd >= 0)
    ::close(StopRd);
  if (StopWr >= 0)
    ::close(StopWr);
}

bool SocketServer::start(int Fd) {
  if (Started || Fd < 0)
    return false;
  int Pipe[2];
  if (::pipe(Pipe) != 0)
    return false;
  StopRd = Pipe[0];
  StopWr = Pipe[1];
  ListenFd = Fd;
  Started = true;
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void SocketServer::requestStop() {
  if (StopWr >= 0) {
    const char X = 'x';
    // Best-effort wake; a full pipe already has a pending wake in it.
    [[maybe_unused]] ssize_t W = ::write(StopWr, &X, 1);
  }
}

void SocketServer::acceptLoop() {
  for (;;) {
    pollfd P[2];
    P[0].fd = ListenFd;
    P[0].events = POLLIN;
    P[0].revents = 0;
    P[1].fd = StopRd;
    P[1].events = POLLIN;
    P[1].revents = 0;
    if (::poll(P, 2, -1) < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (P[1].revents)
      break; // stop requested
    if (!P[0].revents)
      continue;
    const int Conn = ::accept(ListenFd, nullptr, nullptr);
    if (Conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED)
        continue;
      break; // listener gone
    }
    setNoDelay(Conn); // no-op on non-TCP sockets
    if (Active.load(std::memory_order_relaxed) >= Opts.MaxConnections) {
      // Load shedding: one Busy frame, best-effort under a short write
      // deadline (a shed client that won't even read cannot pin the
      // acceptor), then hang up.
      CompileResponse Busy;
      Busy.Busy = true;
      countResponse(Busy, Counters);
      writeFrame(Conn, encodeResponse(Busy), /*TimeoutMs=*/100);
      ::close(Conn);
      continue;
    }
    Active.fetch_add(1, std::memory_order_relaxed);
    ServeOptions SO;
    SO.IdleTimeoutMs = Opts.IdleTimeoutMs;
    SO.FrameTimeoutMs = Opts.FrameTimeoutMs;
    SO.Drain = &Draining;
    std::lock_guard<std::mutex> L(ConnsM);
    reapFinishedLocked();
    Session S;
    S.Fd = Conn;
    S.Done = std::make_shared<std::atomic<bool>>(false);
    std::shared_ptr<std::atomic<bool>> Done = S.Done;
    S.T = std::thread([this, Conn, SO, Done] {
      serveStream(Conn, Conn, Svc, Counters, SO);
      ::shutdown(Conn, SHUT_RDWR);
      Active.fetch_sub(1, std::memory_order_relaxed);
      Done->store(true, std::memory_order_release);
    });
    Sessions.push_back(std::move(S));
  }
}

void SocketServer::reapFinishedLocked() {
  // Joining a Done session never blocks meaningfully: the flag is the
  // thread's final store. Closing the fd here (not in the session) keeps
  // it valid for the drain cut until the thread is provably gone.
  size_t Kept = 0;
  for (Session &S : Sessions) {
    if (S.Done->load(std::memory_order_acquire)) {
      S.T.join();
      ::close(S.Fd);
    } else {
      // Self-move-assignment of a joinable std::thread terminates the
      // process, so compact only when the slot actually moves.
      if (&Sessions[Kept] != &S)
        Sessions[Kept] = std::move(S);
      ++Kept;
    }
  }
  Sessions.resize(Kept);
}

bool SocketServer::drain(int DeadlineMs) {
  if (!Started || Stopped)
    return true;
  Stopped = true;
  // 1. Stop accepting: wake the acceptor, join it, close the listener —
  //    new connects are refused from here on.
  Draining.store(true, std::memory_order_release);
  requestStop();
  if (Acceptor.joinable())
    Acceptor.join();
  ::close(ListenFd);
  ListenFd = -1;
  // 2. Drain: wait for every request already read to be answered.
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(DeadlineMs);
  bool Drained = true;
  if (Counters) {
    while (Counters->InFlight.load(std::memory_order_relaxed) != 0) {
      if (std::chrono::steady_clock::now() >= Deadline) {
        Drained = false;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // 3. Cut the remaining connections (sessions idle-blocked waiting for
  //    a next frame, plus — past the deadline — any still serving) and
  //    join every session thread. shutdown() unblocks their reads;
  //    close() happens after the join so no fd is recycled under a
  //    session still using it.
  std::lock_guard<std::mutex> L(ConnsM);
  for (Session &S : Sessions)
    ::shutdown(S.Fd, SHUT_RDWR);
  for (Session &S : Sessions) {
    if (S.T.joinable())
      S.T.join();
    ::close(S.Fd);
  }
  Sessions.clear();
  return Drained;
}

bool darm::serve::roundTrip(int Fd, const CompileRequest &Req,
                            CompileResponse &Resp, std::string *Err,
                            int TimeoutMs, bool *TimedOut) {
  bool WTimedOut = false, RTimedOut = false;
  if (TimedOut)
    *TimedOut = false;
  if (!writeFrame(Fd, encodeRequest(Req), TimeoutMs, &WTimedOut)) {
    if (Err)
      *Err = WTimedOut ? "request write deadline" : "request write failed";
    if (TimedOut)
      *TimedOut = WTimedOut;
    return false;
  }
  std::vector<uint8_t> Frame;
  if (!readFrame(Fd, Frame, nullptr, TimeoutMs, TimeoutMs, &RTimedOut)) {
    if (Err)
      *Err = RTimedOut ? "response deadline" : "response read failed (daemon gone?)";
    if (TimedOut)
      *TimedOut = RTimedOut;
    return false;
  }
  return decodeResponse(Frame.data(), Frame.size(), Resp, Err);
}
