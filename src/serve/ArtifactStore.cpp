//===- ArtifactStore.cpp - On-disk artifact persistence -----------------------===//
//
// Write-once artifact files under an atomic temp-file + rename
// discipline, fully validated on load (serve/ArtifactStore.h,
// docs/caching.md). Every failure mode — absent, truncated, flipped,
// wrong magic/version, torn, mis-keyed — degrades to a cold miss.
//
//===----------------------------------------------------------------------===//

#include "darm/serve/ArtifactStore.h"

#include "darm/ir/Context.h"
#include "darm/ir/Module.h"
#include "darm/ir/Serialize.h"
#include "darm/sim/DecodedProgram.h"
#include "darm/support/Hashing.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace darm;
using namespace darm::serve;

namespace {

/// Reads a whole file; false when absent or unreadable.
bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Bytes) {
  const int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return false;
  Bytes.clear();
  uint8_t Buf[1 << 16];
  for (;;) {
    const ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      return false;
    }
    if (N == 0)
      break;
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  }
  ::close(Fd);
  return true;
}

/// Full validation gate (header contract): container decode, exact key
/// match, inner DRMB module decode, inner program decode. Anything short
/// of all four is a miss.
bool validateArtifact(const std::vector<uint8_t> &Bytes, uint64_t IRHash,
                      const std::string &Fingerprint, CompiledModule &Art) {
  if (!deserializeCompiledModule(Bytes, Art))
    return false;
  if (Art.IRHash != IRHash || Art.Fingerprint != Fingerprint)
    return false; // filename-hash collision or a renamed/copied file
  if (Art.failed())
    // Negative results persist too (docs/caching.md negative caching);
    // they carry no bytes to validate further.
    return Art.ModuleBytes.empty() && Art.ProgramBytes.empty();
  Context Scratch;
  std::string Err;
  if (!deserializeModule(Scratch, Art.ModuleBytes, &Err))
    return false;
  if (!Art.ProgramBytes.empty()) {
    DecodedProgram P;
    if (!deserializeDecodedProgram(Art.ProgramBytes.data(),
                                   Art.ProgramBytes.size(), P))
      return false;
  }
  return true;
}

char hexDigit(unsigned V) {
  return static_cast<char>(V < 10 ? '0' + V : 'a' + (V - 10));
}

void appendHex64(std::string &S, uint64_t V) {
  for (int Shift = 60; Shift >= 0; Shift -= 4)
    S.push_back(hexDigit(static_cast<unsigned>((V >> Shift) & 0xf)));
}

} // namespace

FileArtifactStore::FileArtifactStore(std::string Dir) : Root(std::move(Dir)) {
  if (::mkdir(Root.c_str(), 0777) != 0 && errno != EEXIST)
    return;
  struct stat St;
  if (::stat(Root.c_str(), &St) != 0 || !S_ISDIR(St.st_mode))
    return;
  Usable = true;
  // Sweep temp droppings from writers that died mid-store. Live writers
  // are safe: temp names embed pid + a per-store counter, and a writer
  // whose temp vanishes underneath it only loses its rename.
  if (DIR *D = ::opendir(Root.c_str())) {
    while (struct dirent *E = ::readdir(D)) {
      if (std::strncmp(E->d_name, ".tmp-", 5) == 0)
        ::unlink((Root + "/" + E->d_name).c_str());
    }
    ::closedir(D);
  }
}

std::string FileArtifactStore::pathFor(uint64_t IRHash,
                                       const std::string &Fingerprint) const {
  std::string Path = Root;
  Path += '/';
  appendHex64(Path, IRHash);
  Path += '-';
  appendHex64(Path, hashBytes(Fingerprint));
  Path += ".drma";
  return Path;
}

std::shared_ptr<const CompiledModule>
FileArtifactStore::load(uint64_t IRHash, const std::string &Fingerprint,
                        bool NeedProgram) {
  if (!Usable) {
    LoadMisses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  std::vector<uint8_t> Bytes;
  auto Art = std::make_shared<CompiledModule>();
  if (!readFileBytes(pathFor(IRHash, Fingerprint), Bytes) ||
      !validateArtifact(Bytes, IRHash, Fingerprint, *Art) ||
      (NeedProgram && !Art->failed() && Art->ProgramBytes.empty())) {
    LoadMisses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Loads.fetch_add(1, std::memory_order_relaxed);
  return Art;
}

void FileArtifactStore::store(const CompiledModule &Art) {
  if (!Usable)
    return;
  const std::string Final = pathFor(Art.IRHash, Art.Fingerprint);
  // Write-once: keep a valid incumbent unless ours upgrades it with a
  // program image. An unreadable/corrupt/stale incumbent is replaced —
  // that is how a torn file heals after the recompile.
  {
    std::vector<uint8_t> Existing;
    CompiledModule Incumbent;
    if (readFileBytes(Final, Existing) &&
        validateArtifact(Existing, Art.IRHash, Art.Fingerprint, Incumbent)) {
      const bool Upgrade = !Incumbent.failed() &&
                           Incumbent.ProgramBytes.empty() &&
                           !Art.ProgramBytes.empty();
      if (!Upgrade) {
        StoreSkips.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }
  std::string Temp = Root + "/.tmp-";
  appendHex64(Temp, static_cast<uint64_t>(::getpid()));
  Temp += '-';
  appendHex64(Temp, TempCounter.fetch_add(1, std::memory_order_relaxed));
  const std::vector<uint8_t> Bytes = serializeCompiledModule(Art);
  const int Fd = ::open(Temp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0666);
  if (Fd < 0)
    return;
  size_t Done = 0;
  bool WriteOk = true;
  while (Done < Bytes.size()) {
    const ssize_t N = ::write(Fd, Bytes.data() + Done, Bytes.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      WriteOk = false;
      break;
    }
    Done += static_cast<size_t>(N);
  }
  // Flush file contents before the rename publishes the name: a crash
  // after rename must not expose a name pointing at unwritten data.
  if (WriteOk && ::fsync(Fd) != 0)
    WriteOk = false;
  ::close(Fd);
  if (!WriteOk || ::rename(Temp.c_str(), Final.c_str()) != 0) {
    ::unlink(Temp.c_str());
    return;
  }
  Stores.fetch_add(1, std::memory_order_relaxed);
}

FileArtifactStore::Stats FileArtifactStore::stats() const {
  Stats S;
  S.Loads = Loads.load(std::memory_order_relaxed);
  S.LoadMisses = LoadMisses.load(std::memory_order_relaxed);
  S.Stores = Stores.load(std::memory_order_relaxed);
  S.StoreSkips = StoreSkips.load(std::memory_order_relaxed);
  return S;
}
