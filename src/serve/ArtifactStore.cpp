//===- ArtifactStore.cpp - On-disk artifact persistence -----------------------===//
//
// Write-once artifact files under an atomic temp-file + rename
// discipline, fully validated on load, LRU-evicted to a byte budget
// (serve/ArtifactStore.h, docs/caching.md, docs/serving.md). Every
// failure mode — absent, truncated, flipped, wrong magic/version, torn,
// mis-keyed, out-of-space — degrades to a cold miss or a dropped store.
// All filesystem I/O goes through the fi* primitives so the chaos
// battery (tests/chaos_test.cpp) can schedule ENOSPC/EIO/fsync faults
// against the real code paths.
//
//===----------------------------------------------------------------------===//

#include "darm/serve/ArtifactStore.h"

#include "darm/ir/Context.h"
#include "darm/ir/Module.h"
#include "darm/ir/Serialize.h"
#include "darm/serve/FaultInjection.h"
#include "darm/sim/DecodedProgram.h"
#include "darm/support/Hashing.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace darm;
using namespace darm::serve;

namespace {

/// Reads a whole file; false when absent or unreadable.
bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Bytes) {
  const int Fd = fiOpen(Path.c_str(), O_RDONLY, 0);
  if (Fd < 0)
    return false;
  Bytes.clear();
  uint8_t Buf[1 << 16];
  for (;;) {
    const ssize_t N = fiFsRead(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      return false;
    }
    if (N == 0)
      break;
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  }
  ::close(Fd);
  return true;
}

/// Full validation gate (header contract): container decode, exact key
/// match, inner DRMB module decode, inner program decode. Anything short
/// of all four is a miss.
bool validateArtifact(const std::vector<uint8_t> &Bytes, uint64_t IRHash,
                      const std::string &Fingerprint, CompiledModule &Art) {
  if (!deserializeCompiledModule(Bytes, Art))
    return false;
  if (Art.IRHash != IRHash || Art.Fingerprint != Fingerprint)
    return false; // filename-hash collision or a renamed/copied file
  if (Art.failed())
    // Negative results persist too (docs/caching.md negative caching);
    // they carry no bytes to validate further.
    return Art.ModuleBytes.empty() && Art.ProgramBytes.empty();
  Context Scratch;
  std::string Err;
  if (!deserializeModule(Scratch, Art.ModuleBytes, &Err))
    return false;
  if (!Art.ProgramBytes.empty()) {
    DecodedProgram P;
    if (!deserializeDecodedProgram(Art.ProgramBytes.data(),
                                   Art.ProgramBytes.size(), P))
      return false;
  }
  return true;
}

char hexDigit(unsigned V) {
  return static_cast<char>(V < 10 ? '0' + V : 'a' + (V - 10));
}

void appendHex64(std::string &S, uint64_t V) {
  for (int Shift = 60; Shift >= 0; Shift -= 4)
    S.push_back(hexDigit(static_cast<unsigned>((V >> Shift) & 0xf)));
}

/// Parses 16 lowercase-hex digits; false on anything else.
bool parseHex64(const char *S, uint64_t &V) {
  V = 0;
  for (int I = 0; I < 16; ++I) {
    const char C = S[I];
    unsigned D;
    if (C >= '0' && C <= '9')
      D = static_cast<unsigned>(C - '0');
    else if (C >= 'a' && C <= 'f')
      D = static_cast<unsigned>(C - 'a') + 10;
    else
      return false;
    V = (V << 4) | D;
  }
  return true;
}

bool endsWith(const char *Name, const char *Suffix) {
  const size_t N = std::strlen(Name), S = std::strlen(Suffix);
  return N >= S && std::strcmp(Name + (N - S), Suffix) == 0;
}

} // namespace

FileArtifactStore::FileArtifactStore(std::string Dir)
    : FileArtifactStore(std::move(Dir), Options()) {}

FileArtifactStore::FileArtifactStore(std::string Dir, Options Opts)
    : Root(std::move(Dir)), Opts(Opts) {
  if (::mkdir(Root.c_str(), 0777) != 0 && errno != EEXIST)
    return;
  struct stat St;
  if (::stat(Root.c_str(), &St) != 0 || !S_ISDIR(St.st_mode))
    return;
  Usable = true;
  sweepStaleTemps();
  collectGarbage();
}

void FileArtifactStore::sweepStaleTemps() {
  // Sweep temp droppings from writers that died mid-store — but ONLY
  // stale ones. Temp names embed the writer's pid
  // (`.tmp-<pid:016x>-<counter:016x>`): a temp whose pid is provably
  // dead (kill(0) => ESRCH) is garbage now; one whose pid is alive (or
  // unprobeable) is presumed a concurrent writer mid-store and left
  // alone until it ages past StaleTempAgeSecs. Unparseable `.tmp-*`
  // names were not written by this code and are swept unconditionally.
  DIR *D = ::opendir(Root.c_str());
  if (!D)
    return;
  const time_t Now = ::time(nullptr);
  while (struct dirent *E = ::readdir(D)) {
    if (std::strncmp(E->d_name, ".tmp-", 5) != 0)
      continue;
    const std::string Path = Root + "/" + E->d_name;
    uint64_t Pid = 0, Ctr = 0;
    const char *Tail = E->d_name + 5;
    const bool Parsed = std::strlen(Tail) == 33 && Tail[16] == '-' &&
                        parseHex64(Tail, Pid) && parseHex64(Tail + 17, Ctr);
    bool Stale = true;
    if (Parsed) {
      if (Pid == static_cast<uint64_t>(::getpid())) {
        Stale = false; // our own live writer, same process
      } else if (::kill(static_cast<pid_t>(Pid), 0) == 0 ||
                 errno != ESRCH) {
        // Writer alive (or unprobeable): stale only by age.
        struct stat TSt;
        Stale = ::stat(Path.c_str(), &TSt) == 0 &&
                Now - TSt.st_mtime > Opts.StaleTempAgeSecs;
      }
    }
    if (Stale)
      ::unlink(Path.c_str());
  }
  ::closedir(D);
}

size_t FileArtifactStore::collectGarbage() {
  if (!Usable)
    return 0;
  std::unique_lock<std::mutex> L(GcM, std::try_to_lock);
  if (!L.owns_lock())
    return 0; // another thread is collecting; it sees our files too
  struct Entry {
    std::string Name;
    time_t Mtime;
    size_t Bytes;
  };
  std::vector<Entry> Files;
  size_t Total = 0;
  DIR *D = ::opendir(Root.c_str());
  if (!D)
    return 0;
  while (struct dirent *E = ::readdir(D)) {
    if (!endsWith(E->d_name, ".drma"))
      continue;
    struct stat St;
    if (::stat((Root + "/" + E->d_name).c_str(), &St) != 0)
      continue; // raced with another collector's unlink
    Files.push_back({E->d_name, St.st_mtime, static_cast<size_t>(St.st_size)});
    Total += static_cast<size_t>(St.st_size);
  }
  ::closedir(D);
  if (Opts.MaxBytes == 0 || Total <= Opts.MaxBytes)
    return Total;
  // LRU by mtime (bumped on every successful load), oldest first.
  std::sort(Files.begin(), Files.end(), [](const Entry &A, const Entry &B) {
    return A.Mtime != B.Mtime ? A.Mtime < B.Mtime : A.Name < B.Name;
  });
  for (const Entry &F : Files) {
    if (Total <= Opts.MaxBytes)
      break;
    if (::unlink((Root + "/" + F.Name).c_str()) == 0) {
      Total -= std::min(Total, F.Bytes);
      Evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Total;
}

std::string FileArtifactStore::pathFor(uint64_t IRHash,
                                       const std::string &Fingerprint) const {
  std::string Path = Root;
  Path += '/';
  appendHex64(Path, IRHash);
  Path += '-';
  appendHex64(Path, hashBytes(Fingerprint));
  Path += ".drma";
  return Path;
}

std::shared_ptr<const CompiledModule>
FileArtifactStore::load(uint64_t IRHash, const std::string &Fingerprint,
                        bool NeedProgram) {
  if (!Usable) {
    LoadMisses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const std::string Path = pathFor(IRHash, Fingerprint);
  std::vector<uint8_t> Bytes;
  auto Art = std::make_shared<CompiledModule>();
  if (!readFileBytes(Path, Bytes) ||
      !validateArtifact(Bytes, IRHash, Fingerprint, *Art) ||
      (NeedProgram && !Art->failed() && Art->ProgramBytes.empty())) {
    LoadMisses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // LRU clock: mark the file recently used so GC evicts colder keys
  // first. mtime, not atime — relatime mounts make atime useless as a
  // recency signal. Best-effort; a failed bump only ages the entry.
  ::utimensat(AT_FDCWD, Path.c_str(), nullptr, 0);
  Loads.fetch_add(1, std::memory_order_relaxed);
  return Art;
}

void FileArtifactStore::store(const CompiledModule &Art) {
  if (!Usable)
    return;
  const std::string Final = pathFor(Art.IRHash, Art.Fingerprint);
  // Write-once: keep a valid incumbent unless ours upgrades it with a
  // program image. An unreadable/corrupt/stale incumbent is replaced —
  // that is how a torn file heals after the recompile.
  {
    std::vector<uint8_t> Existing;
    CompiledModule Incumbent;
    if (readFileBytes(Final, Existing) &&
        validateArtifact(Existing, Art.IRHash, Art.Fingerprint, Incumbent)) {
      const bool Upgrade = !Incumbent.failed() &&
                           Incumbent.ProgramBytes.empty() &&
                           !Art.ProgramBytes.empty();
      if (!Upgrade) {
        StoreSkips.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }
  std::string Temp = Root + "/.tmp-";
  appendHex64(Temp, static_cast<uint64_t>(::getpid()));
  Temp += '-';
  appendHex64(Temp, TempCounter.fetch_add(1, std::memory_order_relaxed));
  const std::vector<uint8_t> Bytes = serializeCompiledModule(Art);
  const int Fd = fiOpen(Temp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0666);
  if (Fd < 0)
    return;
  size_t Done = 0;
  bool WriteOk = true;
  while (Done < Bytes.size()) {
    const ssize_t N = fiFsWrite(Fd, Bytes.data() + Done, Bytes.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      WriteOk = false; // ENOSPC/EIO: drop the store, never publish
      break;
    }
    Done += static_cast<size_t>(N);
  }
  // Flush file contents before the rename publishes the name: a crash
  // after rename must not expose a name pointing at unwritten data.
  if (WriteOk && fiFsync(Fd) != 0)
    WriteOk = false;
  ::close(Fd);
  if (!WriteOk || fiRename(Temp.c_str(), Final.c_str()) != 0) {
    ::unlink(Temp.c_str());
    return;
  }
  Stores.fetch_add(1, std::memory_order_relaxed);
  if (Opts.MaxBytes != 0)
    collectGarbage();
}

FileArtifactStore::Stats FileArtifactStore::stats() const {
  Stats S;
  S.Loads = Loads.load(std::memory_order_relaxed);
  S.LoadMisses = LoadMisses.load(std::memory_order_relaxed);
  S.Stores = Stores.load(std::memory_order_relaxed);
  S.StoreSkips = StoreSkips.load(std::memory_order_relaxed);
  S.Evictions = Evictions.load(std::memory_order_relaxed);
  return S;
}
