//===- LoopUnroll.cpp - Divergent-loop unrolling --------------------------------===//

#include "darm/transform/LoopUnroll.h"

#include "darm/analysis/DivergenceAnalysis.h"
#include "darm/analysis/DominanceFrontier.h"
#include "darm/analysis/DominatorTree.h"
#include "darm/analysis/LoopInfo.h"
#include "darm/ir/BasicBlock.h"
#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/Instruction.h"
#include "darm/transform/CFGUtils.h"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

using namespace darm;

namespace {

/// Caps keeping the clone fan-out and the bound arithmetic tame.
constexpr uint64_t MaxTrips = 8;
constexpr uint64_t MaxClonedInsts = 256;
constexpr int64_t MaxBoundMagnitude = int64_t{1} << 20;

/// Static bounds [Min, Max] provable for \p V's value from its expression
/// alone. Conservative; nullopt when no bound is provable. Recognizes the
/// generator's per-lane trip shapes: `add (and lane, K), 1` and friends.
struct Range {
  int64_t Min, Max;
};

std::optional<Range> staticRange(Value *V, unsigned Depth) {
  if (auto *C = dyn_cast<ConstantInt>(V)) {
    if (C->getValue() < -MaxBoundMagnitude || C->getValue() > MaxBoundMagnitude)
      return std::nullopt;
    return Range{C->getValue(), C->getValue()};
  }
  if (Depth == 0)
    return std::nullopt;
  auto *I = dyn_cast<Instruction>(V);
  if (!I)
    return std::nullopt;
  switch (I->getOpcode()) {
  case Opcode::And: {
    // and(x, mask) with a non-negative constant mask lands in [0, mask]
    // for ANY x: the sign bit of the stored (sign-extended) mask is 0,
    // so the result's sign bit is 0 too.
    for (unsigned K = 0; K < 2; ++K)
      if (auto *C = dyn_cast<ConstantInt>(I->getOperand(K)))
        if (C->getValue() >= 0 && C->getValue() <= MaxBoundMagnitude)
          return Range{0, C->getValue()};
    return std::nullopt;
  }
  case Opcode::Add: {
    auto A = staticRange(I->getOperand(0), Depth - 1);
    auto B = staticRange(I->getOperand(1), Depth - 1);
    if (!A || !B)
      return std::nullopt;
    int64_t Lo = A->Min + B->Min, Hi = A->Max + B->Max;
    if (Lo < -MaxBoundMagnitude || Hi > MaxBoundMagnitude)
      return std::nullopt;
    // The add itself wraps at the type width; with |values| <= 2^21 on a
    // 32-bit (or wider) type, no wrap can occur, so the interval is exact.
    return Range{Lo, Hi};
  }
  case Opcode::URem: {
    if (auto *C = dyn_cast<ConstantInt>(I->getOperand(1)))
      if (C->getValue() > 0 && C->getValue() <= MaxBoundMagnitude)
        return Range{0, C->getValue() - 1}; // x urem 0 is 0 anyway
    return std::nullopt;
  }
  case Opcode::ZExt:
    if (cast<CastInst>(I)->getSource()->getType()->isInt1())
      return Range{0, 1};
    return std::nullopt;
  case Opcode::Select: {
    auto A = staticRange(I->getOperand(1), Depth - 1);
    auto B = staticRange(I->getOperand(2), Depth - 1);
    if (!A || !B)
      return std::nullopt;
    return Range{std::min(A->Min, B->Min), std::max(A->Max, B->Max)};
  }
  default:
    return std::nullopt;
  }
}

struct UnrollPlan {
  Loop *L = nullptr;
  BasicBlock *Preheader = nullptr;
  BasicBlock *Header = nullptr;
  BasicBlock *Latch = nullptr;
  BasicBlock *Exit = nullptr;
  BasicBlock *BodyEntry = nullptr;
  ICmpInst *Cmp = nullptr;
  uint64_t Trips = 0;
};

/// Checks the contract from LoopUnroll.h for \p L. Divergence is gated by
/// the caller (it owns the analysis).
std::optional<UnrollPlan> planLoop(Loop *L) {
  if (!L->subLoops().empty())
    return std::nullopt;
  UnrollPlan P;
  P.L = L;
  P.Header = L->getHeader();
  P.Preheader = L->getPreheader();
  if (!P.Preheader)
    return std::nullopt;
  std::vector<BasicBlock *> Latches = L->getLatches();
  if (Latches.size() != 1 || Latches[0] == P.Header)
    return std::nullopt;
  P.Latch = Latches[0];

  auto *CB = dyn_cast_or_null<CondBrInst>(P.Header->getTerminator());
  if (!CB)
    return std::nullopt;
  P.BodyEntry = CB->getTrueSuccessor();
  P.Exit = CB->getFalseSuccessor();
  if (!L->contains(P.BodyEntry) || P.BodyEntry == P.Header ||
      L->contains(P.Exit))
    return std::nullopt;
  if (P.Exit->getNumPredecessors() != 1)
    return std::nullopt;
  // The header's exit edge must be the loop's only way out.
  for (BasicBlock *BB : L->blocks())
    for (BasicBlock *Succ : BB->successors())
      if (!L->contains(Succ) && !(BB == P.Header && Succ == P.Exit))
        return std::nullopt;

  P.Cmp = dyn_cast<ICmpInst>(CB->getCondition());
  if (!P.Cmp || P.Cmp->getParent() != P.Header)
    return std::nullopt;
  ICmpPred Pred = P.Cmp->getPredicate();
  bool Inclusive;
  bool Unsigned;
  switch (Pred) {
  case ICmpPred::SLT:
    Inclusive = false;
    Unsigned = false;
    break;
  case ICmpPred::SLE:
    Inclusive = true;
    Unsigned = false;
    break;
  case ICmpPred::ULT:
    Inclusive = false;
    Unsigned = true;
    break;
  case ICmpPred::ULE:
    Inclusive = true;
    Unsigned = true;
    break;
  default:
    return std::nullopt;
  }
  auto *IV = dyn_cast<PhiInst>(P.Cmp->getLHS());
  if (!IV || IV->getParent() != P.Header || IV->getNumIncoming() != 2)
    return std::nullopt;
  Value *Bound = P.Cmp->getRHS();
  if (auto *BI = dyn_cast<Instruction>(Bound))
    if (L->contains(BI->getParent()))
      return std::nullopt; // bound must be loop-invariant

  int PhIdx = IV->getBlockIndex(P.Preheader);
  int LaIdx = IV->getBlockIndex(P.Latch);
  if (PhIdx < 0 || LaIdx < 0)
    return std::nullopt;
  auto *Init = dyn_cast<ConstantInt>(IV->getIncomingValue(PhIdx));
  if (!Init || Init->getValue() < 0 || Init->getValue() > MaxBoundMagnitude)
    return std::nullopt;
  auto *Next = dyn_cast<Instruction>(IV->getIncomingValue(LaIdx));
  if (!Next || Next->getOpcode() != Opcode::Add ||
      !P.L->contains(Next->getParent()))
    return std::nullopt;
  int64_t Step = 0;
  if (Next->getOperand(0) == IV) {
    if (auto *C = dyn_cast<ConstantInt>(Next->getOperand(1)))
      Step = C->getValue();
  } else if (Next->getOperand(1) == IV) {
    if (auto *C = dyn_cast<ConstantInt>(Next->getOperand(0)))
      Step = C->getValue();
  }
  if (Step <= 0 || Step > MaxBoundMagnitude)
    return std::nullopt;

  auto BR = staticRange(Bound, /*Depth=*/4);
  if (!BR)
    return std::nullopt;
  if (Unsigned && BR->Min < 0)
    return std::nullopt; // a negative bound is huge as unsigned
  int64_t Span = BR->Max - Init->getValue() + (Inclusive ? 1 : 0);
  uint64_t Trips = Span <= 0 ? 0 : (uint64_t(Span) + Step - 1) / Step;
  if (Trips > MaxTrips)
    return std::nullopt;
  uint64_t LoopInsts = 0;
  for (BasicBlock *BB : L->blocks())
    LoopInsts += BB->size();
  if ((Trips + 1) * LoopInsts > MaxClonedInsts)
    return std::nullopt;
  P.Trips = Trips;
  return P;
}

/// Performs the unroll described in LoopUnroll.h: N = Trips guarded body
/// copies chained by forward branches, a final unconditional exit, exit
/// phis re-pointed at every guard block, and the original loop deleted.
void unrollLoop(Function &F, const UnrollPlan &P) {
  Context &Ctx = F.getContext();
  const unsigned N = static_cast<unsigned>(P.Trips);
  BasicBlock *H = P.Header;
  BasicBlock *X = P.Exit;

  // Loop blocks in layout order, header first.
  std::vector<BasicBlock *> BodyBlocks;
  for (BasicBlock *BB : F)
    if (BB != H && P.L->contains(BB))
      BodyBlocks.push_back(BB);

  std::vector<PhiInst *> HPhis = H->phis();

  // All clone blocks up front, inserted before the exit so the printed
  // layout reads top-to-bottom: check 0, its body, check 1, ...
  std::vector<BasicBlock *> Checks(N + 1);
  std::vector<std::unordered_map<BasicBlock *, BasicBlock *>> BlockMap(N + 1);
  for (unsigned It = 0; It <= N; ++It) {
    Checks[It] =
        F.createBlock(H->getName() + ".u" + std::to_string(It), X);
    BlockMap[It][H] = Checks[It];
    if (It == N)
      break;
    for (BasicBlock *BB : BodyBlocks)
      BlockMap[It][BB] =
          F.createBlock(BB->getName() + ".u" + std::to_string(It), X);
  }

  // Per-iteration value substitution: original loop value -> this
  // iteration's value (header phis resolve to carried values, everything
  // else to its clone).
  std::vector<std::unordered_map<Value *, Value *>> Map(N + 1);
  auto Resolve = [&](unsigned It, Value *V) -> Value * {
    auto Found = Map[It].find(V);
    return Found != Map[It].end() ? Found->second : V;
  };

  for (unsigned It = 0; It <= N; ++It) {
    // Carried header-phi values for this iteration.
    for (PhiInst *Phi : HPhis)
      Map[It][Phi] =
          It == 0 ? Phi->getIncomingValueForBlock(P.Preheader)
                  : Resolve(It - 1, Phi->getIncomingValueForBlock(P.Latch));

    // Pass A: clone instructions with their original operands. The final
    // check block only needs the header's straight-line code (its values
    // may feed the exit); intermediate iterations clone the whole body.
    std::vector<BasicBlock *> Sources{H};
    if (It < N)
      Sources.insert(Sources.end(), BodyBlocks.begin(), BodyBlocks.end());
    std::vector<Instruction *> Clones;
    for (BasicBlock *BB : Sources) {
      BasicBlock *Dest = BlockMap[It][BB];
      for (Instruction *I : *BB) {
        if (BB == H && (I->isPhi() || I->isTerminator()))
          continue;
        Instruction *C = I->clone();
        Dest->push_back(C);
        if (!C->getType()->isVoid())
          C->setName(F.uniqueName((I->hasName() ? I->getName()
                                                : std::string("v")) +
                                  ".u" + std::to_string(It)));
        Map[It][I] = C;
        Clones.push_back(C);
      }
    }

    // Pass B: remap operands, phi incoming blocks, and branch targets
    // into this iteration (the backedge target becomes the next check).
    for (Instruction *C : Clones) {
      for (unsigned K = 0, E = C->getNumOperands(); K != E; ++K)
        C->setOperand(K, Resolve(It, C->getOperand(K)));
      if (auto *Phi = dyn_cast<PhiInst>(C)) {
        for (unsigned K = 0, E = Phi->getNumIncoming(); K != E; ++K) {
          auto Found = BlockMap[It].find(Phi->getIncomingBlock(K));
          if (Found != BlockMap[It].end())
            Phi->setIncomingBlock(K, Found->second);
        }
      }
      if (C->isTerminator()) {
        for (unsigned K = 0, E = C->getNumSuccessors(); K != E; ++K) {
          BasicBlock *Succ = C->getSuccessor(K);
          if (Succ == H)
            C->setSuccessor(K, Checks[It + 1]);
          else if (BlockMap[It].count(Succ))
            C->setSuccessor(K, BlockMap[It][Succ]);
        }
      }
    }

    // This iteration's guard. The final check is past the provable trip
    // bound, so its branch is unconditional.
    if (It == N) {
      Checks[It]->push_back(new BrInst(X, Ctx.getVoidTy()));
    } else {
      Checks[It]->push_back(new CondBrInst(Resolve(It, P.Cmp),
                                           BlockMap[It][P.BodyEntry], X,
                                           Ctx.getVoidTy()));
    }
  }

  // Exit phis: the single entry from the header becomes one entry per
  // check block, carrying that iteration's value.
  for (PhiInst *Phi : X->phis()) {
    int Idx = Phi->getBlockIndex(H);
    if (Idx < 0)
      continue;
    Value *V = Phi->getIncomingValue(Idx);
    Phi->removeIncoming(static_cast<unsigned>(Idx));
    for (unsigned It = 0; It <= N; ++It)
      Phi->addIncoming(Resolve(It, V), Checks[It]);
  }

  // Header-defined values used beyond the loop (only header definitions
  // can dominate code past the exit) get a merge phi in the exit block.
  std::vector<Instruction *> HeaderDefs;
  for (Instruction *I : *H)
    if (!I->isTerminator() && !I->getType()->isVoid())
      HeaderDefs.push_back(I);
  for (Instruction *D : HeaderDefs) {
    std::vector<Use> Outside;
    for (const Use &U : D->uses()) {
      auto *UI = dyn_cast<Instruction>(U.TheUser);
      if (UI && !P.L->contains(UI->getParent()))
        Outside.push_back(U);
    }
    if (Outside.empty())
      continue;
    auto *Merge = new PhiInst(D->getType());
    for (unsigned It = 0; It <= N; ++It)
      Merge->addIncoming(Resolve(It, D), Checks[It]);
    X->insert(X->begin(), Merge);
    Merge->setName(F.uniqueName(
        (D->hasName() ? D->getName() : std::string("v")) + ".lcssa"));
    for (const Use &U : Outside)
      U.TheUser->setOperand(U.OpIdx, Merge);
  }

  // Enter the ladder instead of the loop; the original loop body is now
  // unreachable and goes away (phi bookkeeping included).
  P.Preheader->getTerminator()->replaceSuccessor(H, Checks[0]);
  removeUnreachableBlocks(F);
}

/// One analyze-and-unroll round. Analyses are rebuilt from scratch, the
/// first (layout-order) qualifying divergent loop is unrolled.
bool unrollOnce(Function &F) {
  DominatorTree DT(F);
  DominanceFrontier DF(F, DT);
  DivergenceAnalysis DA(F, DT, DF);
  LoopInfo LI(F, DT);
  for (BasicBlock *BB : F) {
    Loop *L = LI.getLoopFor(BB);
    if (!L || L->getHeader() != BB)
      continue;
    if (!DA.hasDivergentBranch(BB))
      continue; // uniform trip count: the warp does not serialize
    if (auto P = planLoop(L)) {
      unrollLoop(F, *P);
      return true;
    }
  }
  return false;
}

} // namespace

bool darm::unrollDivergentLoops(Function &F) {
  bool Changed = false;
  // Innermost loops first (planLoop rejects loops with subloops); each
  // round may expose the next level. The bound is a safety net — the
  // instruction budget shrinks the candidate set every round.
  for (unsigned Round = 0; Round < 16; ++Round) {
    if (!unrollOnce(F))
      break;
    Changed = true;
  }
  return Changed;
}
