//===- SimplifyCFG.cpp - CFG cleanup pass ------------------------------------===//

#include "darm/transform/SimplifyCFG.h"

#include "darm/analysis/CostModel.h"
#include "darm/analysis/DominatorTree.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/Function.h"
#include "darm/ir/Module.h"
#include "darm/transform/CFGUtils.h"

#include <algorithm>

using namespace darm;

bool darm::foldConstantBranches(Function &F) {
  bool Changed = false;
  Context &Ctx = F.getContext();
  for (BasicBlock *BB : F) {
    auto *Br = dyn_cast_or_null<CondBrInst>(BB->getTerminator());
    if (!Br)
      continue;
    auto *C = dyn_cast<ConstantInt>(Br->getCondition());
    if (!C)
      continue;
    BasicBlock *Live = C->isZero() ? Br->getFalseSuccessor()
                                   : Br->getTrueSuccessor();
    BasicBlock *Dead = C->isZero() ? Br->getTrueSuccessor()
                                   : Br->getFalseSuccessor();
    if (Dead != Live)
      Dead->removePhiEntriesFor(BB);
    BB->erase(Br);
    BB->push_back(new BrInst(Live, Ctx.getVoidTy()));
    Changed = true;
  }
  return Changed;
}

bool darm::foldIdenticalSuccessorBranches(Function &F) {
  bool Changed = false;
  Context &Ctx = F.getContext();
  for (BasicBlock *BB : F) {
    auto *Br = dyn_cast_or_null<CondBrInst>(BB->getTerminator());
    if (!Br || Br->getTrueSuccessor() != Br->getFalseSuccessor())
      continue;
    BasicBlock *Succ = Br->getTrueSuccessor();
    BB->erase(Br);
    BB->push_back(new BrInst(Succ, Ctx.getVoidTy()));
    Changed = true;
  }
  return Changed;
}

bool darm::removeTrivialPhis(Function &F) {
  // Folding a phi never mutates the CFG, so one dominator tree serves the
  // whole fixed-point loop. It is needed to guard the undef-wildcard fold:
  // phi [undef, A], [V, B] may only fold to V when V dominates the phi
  // (same restriction as LLVM's InstSimplify).
  DominatorTree DT(F);
  bool Changed = true;
  bool Any = false;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F) {
      for (PhiInst *P : BB->phis()) {
        Value *V = P->getUniqueIncomingValue(/*IgnoreUndef=*/false);
        if (!V) {
          Value *W = P->getUniqueIncomingValue(/*IgnoreUndef=*/true);
          if (!W && P->getNumIncoming() != 0) {
            // All entries undef (or self): fold to undef.
            bool AllUndef = true;
            for (unsigned I = 0, E = P->getNumIncoming(); I != E; ++I)
              if (!isa<UndefValue>(P->getIncomingValue(I)) &&
                  P->getIncomingValue(I) != P)
                AllUndef = false;
            if (AllUndef)
              V = F.getContext().getUndef(P->getType());
          } else if (W) {
            const auto *WI = dyn_cast<Instruction>(W);
            bool Dominates =
                !WI || (WI->getParent() && DT.isReachable(WI->getParent()) &&
                        DT.isReachable(BB) &&
                        DT.properlyDominates(WI->getParent(), BB));
            if (Dominates)
              V = W;
          }
        }
        if (!V || V == P)
          continue;
        P->replaceAllUsesWith(V);
        P->eraseFromParent();
        Changed = true;
        Any = true;
        break; // phi list invalidated; rescan the block
      }
    }
  }
  return Any;
}

bool darm::mergeLinearBlocks(Function &F) {
  bool Changed = true;
  bool Any = false;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F) {
      BasicBlock *Succ = BB->getSingleSuccessor();
      if (!Succ || Succ == BB || Succ == &F.getEntryBlock())
        continue;
      if (Succ->getSinglePredecessor() != BB ||
          Succ->getNumPredecessors() != 1)
        continue;
      if (!isa<BrInst>(BB->getTerminator()))
        continue;
      // Resolve Succ's phis (single predecessor: each is trivial).
      for (PhiInst *P : Succ->phis()) {
        P->replaceAllUsesWith(P->getIncomingValue(0));
        P->eraseFromParent();
      }
      // Move all of Succ's instructions into BB, dropping BB's branch.
      BB->erase(BB->getTerminator());
      while (!Succ->empty()) {
        Instruction *I = Succ->front();
        Succ->remove(I);
        BB->push_back(I);
      }
      // Successor phis now receive from BB.
      for (BasicBlock *S : BB->successors())
        S->replacePhiIncomingBlock(Succ, BB);
      F.eraseBlock(Succ);
      Changed = true;
      Any = true;
      break; // block list invalidated; restart scan
    }
  }
  return Any;
}

bool darm::forwardEmptyBlocks(Function &F) {
  bool Changed = true;
  bool Any = false;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F) {
      if (BB == &F.getEntryBlock() || BB->size() != 1)
        continue;
      auto *Br = dyn_cast<BrInst>(BB->getTerminator());
      if (!Br)
        continue;
      BasicBlock *Succ = Br->getTarget();
      if (Succ == BB)
        continue;
      // Retargeting a pred P is unsafe if P already branches to Succ and
      // Succ has phis (two entries for one pred would be ambiguous).
      bool Safe = true;
      std::vector<PhiInst *> SuccPhis = Succ->phis();
      for (BasicBlock *P : BB->predecessors())
        if (!SuccPhis.empty() && P->isSuccessor(Succ)) {
          Safe = false;
          break;
        }
      if (!Safe || BB->getNumPredecessors() == 0)
        continue;

      // Snapshot preds: retargeting mutates the list.
      std::vector<BasicBlock *> Preds(BB->predecessors().begin(),
                                      BB->predecessors().end());
      for (PhiInst *P : SuccPhis) {
        Value *V = P->getIncomingValueForBlock(BB);
        for (BasicBlock *Pred : Preds) {
          if (P->getBlockIndex(Pred) < 0)
            P->addIncoming(V, Pred);
        }
      }
      for (BasicBlock *Pred : Preds)
        Pred->getTerminator()->replaceSuccessor(BB, Succ);
      Succ->removePhiEntriesFor(BB);
      BB->erase(Br);
      F.eraseBlock(BB);
      Changed = true;
      Any = true;
      break; // restart scan
    }
  }
  return Any;
}

bool darm::speculateTriangles(Function &F) {
  bool Any = false;
  bool Changed = true;
  // Hoisting more than this many latency units is not worth removing one
  // branch (mirrors LLVM's speculation cost threshold, scaled to our
  // latency table).
  constexpr unsigned CostLimit = 24;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F) {
      auto *Br = dyn_cast_or_null<CondBrInst>(BB->getTerminator());
      if (!Br)
        continue;
      bool Done = false;
      for (unsigned Arm = 0; Arm < 2 && !Done; ++Arm) {
        BasicBlock *S = Br->getSuccessor(Arm);
        BasicBlock *T = Br->getSuccessor(1 - Arm);
        if (S == T || S == BB || T == S)
          continue;
        if (S->getSinglePredecessor() != BB ||
            S->getNumPredecessors() != 1 || S->getSingleSuccessor() != T)
          continue;
        unsigned Cost = 0;
        bool Safe = true;
        for (Instruction *I : *S) {
          if (I->isTerminator())
            continue;
          if (I->isPhi() || !I->isSafeToSpeculate()) {
            Safe = false;
            break;
          }
          Cost += CostModel::getLatency(I);
        }
        if (!Safe || Cost > CostLimit)
          continue;

        // Hoist the side block's body into BB.
        Value *C = Br->getCondition();
        while (S->size() > 1) {
          Instruction *I = S->front();
          S->remove(I);
          BB->insert(Br->getIterator(), I);
        }
        // Join phis: the S and BB entries merge into one select.
        for (PhiInst *P : T->phis()) {
          int IS = P->getBlockIndex(S);
          int IB = P->getBlockIndex(BB);
          assert(IS >= 0 && IB >= 0 && "triangle phi missing an entry");
          Value *VS = P->getIncomingValue(static_cast<unsigned>(IS));
          Value *VB = P->getIncomingValue(static_cast<unsigned>(IB));
          Value *Merged;
          if (isa<UndefValue>(VB) || VS == VB) {
            Merged = VS;
          } else if (isa<UndefValue>(VS)) {
            Merged = VB;
          } else {
            auto *Sel = new SelectInst(C, Arm == 0 ? VS : VB,
                                       Arm == 0 ? VB : VS);
            BB->insert(Br->getIterator(), Sel);
            Merged = Sel;
          }
          P->removeIncoming(static_cast<unsigned>(IS));
          P->setIncomingValue(
              static_cast<unsigned>(P->getBlockIndex(BB)), Merged);
        }
        // Fold the branch and delete the (now empty) side block.
        BB->erase(Br);
        BB->push_back(new BrInst(T, F.getContext().getVoidTy()));
        S->erase(S->getTerminator());
        F.eraseBlock(S);
        Changed = true;
        Any = true;
        Done = true;
      }
      if (Done)
        break; // block list mutated; restart scan
    }
  }
  return Any;
}

namespace {

/// If \p V is xor(X, true), returns X ("not X"); otherwise null.
Value *matchNot(Value *V) {
  auto *X = dyn_cast<BinaryInst>(V);
  if (!X || X->getOpcode() != Opcode::Xor || !X->getType()->isInt1())
    return nullptr;
  if (auto *C = dyn_cast<ConstantInt>(X->getRHS()); C && C->isOne())
    return X->getLHS();
  if (auto *C = dyn_cast<ConstantInt>(X->getLHS()); C && C->isOne())
    return X->getRHS();
  return nullptr;
}

/// True if \p V is (or appears inside) an or-tree containing \p Target.
bool orTreeContains(Value *V, Value *Target, unsigned Depth = 0) {
  if (V == Target)
    return true;
  if (Depth > 8)
    return false;
  auto *O = dyn_cast<BinaryInst>(V);
  if (!O || O->getOpcode() != Opcode::Or)
    return false;
  return orTreeContains(O->getLHS(), Target, Depth + 1) ||
         orTreeContains(O->getRHS(), Target, Depth + 1);
}

/// Local folds for one instruction; returns the replacement or null.
/// Boolean selects are rewritten into and/or/xor so melding's
/// select-chains become foldable logic (LLVM's InstCombine equivalent).
Value *simplifyOne(Function &F, Instruction *I, bool &NeedNewInsts) {
  Context &Ctx = F.getContext();
  if (auto *Sel = dyn_cast<SelectInst>(I)) {
    Value *C = Sel->getCondition(), *T = Sel->getTrueValue(),
          *Fv = Sel->getFalseValue();
    if (T == Fv)
      return T;
    if (isa<UndefValue>(T))
      return Fv;
    if (isa<UndefValue>(Fv))
      return T;
    if (auto *CC = dyn_cast<ConstantInt>(C))
      return CC->isZero() ? Fv : T;
    if (Sel->getType()->isInt1()) {
      // Lower boolean selects to logic so the folds below can see through
      // melding's condition chains.
      IRBuilder B(Ctx);
      B.setInsertPoint(I);
      NeedNewInsts = true;
      auto *TC = dyn_cast<ConstantInt>(T);
      auto *FC = dyn_cast<ConstantInt>(Fv);
      if (TC && TC->isOne())
        return B.createOr(C, Fv);
      if (TC && TC->isZero())
        return B.createAnd(B.createXor(C, Ctx.getBool(true)), Fv);
      if (FC && FC->isZero())
        return B.createAnd(C, T);
      if (FC && FC->isOne())
        return B.createOr(B.createXor(C, Ctx.getBool(true)), T);
      NeedNewInsts = false;
    }
    return nullptr;
  }

  auto *Bin = dyn_cast<BinaryInst>(I);
  if (!Bin || !Bin->getType()->isInt1())
    return nullptr;
  Value *L = Bin->getLHS(), *R = Bin->getRHS();
  auto *LC = dyn_cast<ConstantInt>(L);
  auto *RC = dyn_cast<ConstantInt>(R);
  switch (Bin->getOpcode()) {
  case Opcode::And:
    if (L == R)
      return L;
    if ((LC && LC->isZero()) || (RC && RC->isZero()))
      return Ctx.getBool(false);
    if (LC && LC->isOne())
      return R;
    if (RC && RC->isOne())
      return L;
    // and(not(or-tree containing X), X) == false (De Morgan).
    if (Value *N = matchNot(L); N && orTreeContains(N, R))
      return Ctx.getBool(false);
    if (Value *N = matchNot(R); N && orTreeContains(N, L))
      return Ctx.getBool(false);
    break;
  case Opcode::Or:
    if (L == R)
      return L;
    if ((LC && LC->isOne()) || (RC && RC->isOne()))
      return Ctx.getBool(true);
    if (LC && LC->isZero())
      return R;
    if (RC && RC->isZero())
      return L;
    break;
  case Opcode::Xor:
    if (L == R)
      return Ctx.getBool(false);
    if (LC && LC->isZero())
      return R;
    if (RC && RC->isZero())
      return L;
    break;
  default:
    break;
  }
  // Double negation: not(not(x)) == x.
  if (Value *N = matchNot(I))
    if (Value *NN = matchNot(N))
      return NN;
  return nullptr;
}

} // namespace

bool darm::simplifyInstructions(Function &F) {
  bool Any = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F) {
      std::vector<Instruction *> Insts(BB->begin(), BB->end());
      for (Instruction *I : Insts) {
        if (I->isPhi() || I->isTerminator())
          continue;
        bool NeedNewInsts = false;
        Value *Folded = simplifyOne(F, I, NeedNewInsts);
        if (!Folded)
          continue;
        I->replaceAllUsesWith(Folded);
        I->eraseFromParent();
        Changed = true;
        Any = true;
      }
    }
  }
  return Any;
}

bool darm::removePhiOnlyForwarders(Function &F) {
  bool Any = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F) {
      if (BB == &F.getEntryBlock() || BB->getNumPredecessors() == 0)
        continue;
      auto *Br = dyn_cast_or_null<BrInst>(BB->getTerminator());
      if (!Br)
        continue;
      BasicBlock *Succ = Br->getTarget();
      if (Succ == BB)
        continue;
      // Body must be phis only.
      bool PhisOnly = true;
      for (Instruction *I : *BB)
        if (!I->isPhi() && !I->isTerminator())
          PhisOnly = false;
      if (!PhisOnly || BB->phis().empty())
        continue;
      // Predecessor sets must not overlap (phi entries would collide).
      bool Overlap = false;
      for (BasicBlock *P : BB->predecessors())
        if (P->isSuccessor(Succ))
          Overlap = true;
      if (Overlap)
        continue;
      // Each phi may only be consumed as Succ's incoming-from-BB values.
      bool UsesOk = true;
      for (PhiInst *P : BB->phis())
        for (const Use &U : P->uses()) {
          auto *Q = dyn_cast<PhiInst>(static_cast<Value *>(U.TheUser));
          if (!Q || Q->getParent() != Succ ||
              Q->getIncomingBlock(U.OpIdx) != BB) {
            UsesOk = false;
            break;
          }
        }
      if (!UsesOk)
        continue;

      // Snapshot distinct preds before retargeting.
      std::vector<BasicBlock *> Preds;
      for (BasicBlock *P : BB->predecessors())
        if (std::find(Preds.begin(), Preds.end(), P) == Preds.end())
          Preds.push_back(P);

      for (PhiInst *Q : Succ->phis()) {
        int Idx = Q->getBlockIndex(BB);
        if (Idx < 0)
          continue;
        Value *V = Q->getIncomingValue(static_cast<unsigned>(Idx));
        Q->removeIncoming(static_cast<unsigned>(Idx));
        auto *BP = dyn_cast<PhiInst>(V);
        bool Routed = BP && BP->getParent() == BB;
        for (BasicBlock *P : Preds)
          Q->addIncoming(Routed ? BP->getIncomingValueForBlock(P) : V, P);
      }
      for (BasicBlock *P : Preds)
        P->getTerminator()->replaceSuccessor(BB, Succ);
      for (PhiInst *P : BB->phis()) {
        assert(!P->hasUses() && "phi-only forwarder still used");
        P->eraseFromParent();
      }
      BB->erase(BB->getTerminator());
      F.eraseBlock(BB);
      Changed = true;
      Any = true;
      break; // block list mutated; restart scan
    }
  }
  return Any;
}

bool darm::simplifyCFG(Function &F) {
  bool Any = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    Changed |= removeUnreachableBlocks(F);
    Changed |= foldConstantBranches(F);
    Changed |= foldIdenticalSuccessorBranches(F);
    Changed |= removeTrivialPhis(F);
    Changed |= simplifyInstructions(F);
    Changed |= speculateTriangles(F);
    Changed |= forwardEmptyBlocks(F);
    Changed |= removePhiOnlyForwarders(F);
    Changed |= mergeLinearBlocks(F);
    Any |= Changed;
  }
  return Any;
}
