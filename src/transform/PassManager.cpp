//===- PassManager.cpp - Function pass pipeline --------------------------------===//

#include "darm/transform/PassManager.h"

#include "darm/analysis/Verifier.h"
#include "darm/ir/Function.h"
#include "darm/support/ErrorHandling.h"

#include <chrono>
#include <cstdio>

using namespace darm;

bool PassManager::run(Function &F) {
  Timings.clear();
  bool Changed = false;
  for (const auto &[Name, Pass] : Passes) {
    auto Start = std::chrono::steady_clock::now();
    Changed |= Pass(F);
    auto End = std::chrono::steady_clock::now();
    Timings.push_back(
        {Name, std::chrono::duration<double>(End - Start).count()});
    if (VerifyEach) {
      std::string Err;
      if (!verifyFunction(F, &Err)) {
        std::fprintf(stderr, "verification failed after pass '%s': %s\n",
                     Name.c_str(), Err.c_str());
        reportFatalError("broken IR produced by a pass");
      }
    }
  }
  return Changed;
}

double PassManager::totalSeconds() const {
  double Total = 0;
  for (const auto &[Name, Secs] : Timings)
    Total += Secs;
  return Total;
}
