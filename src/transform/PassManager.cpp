//===- PassManager.cpp - Function pass pipeline --------------------------------===//

#include "darm/transform/PassManager.h"

#include "darm/analysis/Verifier.h"
#include "darm/ir/Function.h"
#include "darm/support/ErrorHandling.h"

#include <chrono>
#include <cstdio>

using namespace darm;

bool PassManager::run(Function &F) {
  Timings.clear();
  // Passes are append-only, so entries missing from Cumulative (added
  // since the last run) are exactly the tail; extend with zeros to keep
  // earlier runs' totals.
  for (size_t I = Cumulative.size(); I < Passes.size(); ++I)
    Cumulative.push_back({Passes[I].first, 0.0});
  bool Changed = false;
  for (size_t I = 0; I < Passes.size(); ++I) {
    const auto &[Name, Pass] = Passes[I];
    auto Start = std::chrono::steady_clock::now();
    Changed |= Pass(F);
    auto End = std::chrono::steady_clock::now();
    double Secs = std::chrono::duration<double>(End - Start).count();
    Timings.push_back({Name, Secs});
    Cumulative[I].second += Secs;
    if (VerifyEach) {
      std::string Err;
      if (!verifyFunction(F, &Err)) {
        std::fprintf(stderr, "verification failed after pass '%s': %s\n",
                     Name.c_str(), Err.c_str());
        reportFatalError("broken IR produced by a pass");
      }
    }
  }
  return Changed;
}

double PassManager::totalSeconds() const {
  double Total = 0;
  for (const auto &[Name, Secs] : Timings)
    Total += Secs;
  return Total;
}
