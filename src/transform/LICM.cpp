//===- LICM.cpp - Loop-invariant code motion ------------------------------------===//

#include "darm/transform/LICM.h"

#include "darm/analysis/DominatorTree.h"
#include "darm/analysis/LoopInfo.h"
#include "darm/ir/BasicBlock.h"
#include "darm/ir/Function.h"
#include "darm/ir/Instruction.h"

#include <vector>

using namespace darm;

bool darm::hoistLoopInvariants(Function &F) {
  DominatorTree DT(F);
  LoopInfo LI(F, DT);
  bool Changed = false;
  bool Moved = true;
  // Rounds until quiescent: hoisting out of an inner loop lands in its
  // preheader, which may sit inside an outer loop — the next round lifts
  // the instruction one more level. Nothing here changes the CFG, so DT
  // and LI stay valid throughout.
  while (Moved) {
    Moved = false;
    for (const auto &LPtr : LI.loops()) {
      Loop *L = LPtr.get();
      BasicBlock *Ph = L->getPreheader();
      if (!Ph)
        continue;
      Instruction *InsertPt = Ph->getTerminator();
      // Walk the loop's blocks in function layout order (Loop::blocks()
      // is pointer-ordered, which would make the hoist order — and the
      // printed IR — nondeterministic).
      for (BasicBlock *BB : F) {
        if (!L->contains(BB))
          continue;
        std::vector<Instruction *> Insts(BB->begin(), BB->end());
        for (Instruction *I : Insts) {
          if (I->isPhi() || I->isTerminator() || I->getType()->isVoid())
            continue;
          if (!I->isSafeToSpeculate())
            continue;
          bool Invariant = true;
          for (Value *Op : I->operands()) {
            auto *OpI = dyn_cast<Instruction>(Op);
            if (!OpI)
              continue; // constants and arguments are invariant
            if (L->contains(OpI->getParent()) ||
                !DT.dominates(OpI, InsertPt)) {
              Invariant = false;
              break;
            }
          }
          if (!Invariant)
            continue;
          I->moveBefore(InsertPt);
          Moved = true;
          Changed = true;
        }
      }
    }
  }
  return Changed;
}
