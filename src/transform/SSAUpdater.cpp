//===- SSAUpdater.cpp - SSA repair after CFG restructuring --------------------===//

#include "darm/transform/SSAUpdater.h"

#include "darm/analysis/DominanceFrontier.h"
#include "darm/analysis/DominatorTree.h"
#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/Module.h"

#include <algorithm>
#include <map>

using namespace darm;

namespace {

/// Single-variable SSA reconstruction: the variable has one real
/// definition (Def) and an implicit `undef` definition at function entry.
class SingleDefRepair {
public:
  SingleDefRepair(Instruction *Def, const DominatorTree &DT,
                  const DominanceFrontier &DF)
      : Def(Def), DT(DT), DefBB(Def->getParent()),
        Ctx(DefBB->getParent()->getContext()) {
    for (BasicBlock *J : DF.computeIDF({DefBB})) {
      if (!DT.isReachable(J))
        continue;
      auto *P = new PhiInst(Def->getType());
      J->insert(J->begin(), P);
      PhiAt[J] = P;
    }
  }

  bool run() {
    // Collect un-dominated uses first; phi operand wiring creates new uses
    // of Def that are valid by construction.
    struct Fix {
      User *U;
      unsigned OpIdx;
      Value *Repl;
    };
    std::vector<Fix> Fixes;
    for (const Use &U : Def->uses()) {
      auto *UserInst = dyn_cast<Instruction>(static_cast<Value *>(U.TheUser));
      if (!UserInst || !UserInst->getParent())
        continue;
      if (auto *P = dyn_cast<PhiInst>(UserInst)) {
        if (PhiAt.count(P->getParent()) &&
            PhiAt[P->getParent()] == P)
          continue; // our own repair phi
        BasicBlock *In = P->getIncomingBlock(U.OpIdx);
        if (!DT.isReachable(In) || DT.dominates(DefBB, In))
          continue;
        Fixes.push_back({P, U.OpIdx, valueAtEndOf(In)});
        continue;
      }
      if (!DT.isReachable(UserInst->getParent()))
        continue;
      if (DT.dominates(Def, UserInst))
        continue;
      Fixes.push_back({UserInst, U.OpIdx, valueAtEntryOf(UserInst->getParent())});
    }

    // Wire the repair phis' operands.
    for (auto &[BB, P] : PhiAt) {
      for (BasicBlock *Pred : distinctPreds(BB))
        P->addIncoming(valueAtEndOf(Pred), Pred);
    }

    for (const Fix &Fx : Fixes)
      Fx.U->setOperand(Fx.OpIdx, Fx.Repl);

    // Drop repair phis that ended up unused (possible when all uses were
    // actually dominated).
    bool Changed = !Fixes.empty();
    for (auto &[BB, P] : PhiAt)
      if (!P->hasUses()) {
        P->eraseFromParent();
      } else {
        Changed = true;
      }
    return Changed;
  }

private:
  static std::vector<BasicBlock *> distinctPreds(BasicBlock *BB) {
    std::vector<BasicBlock *> Result;
    for (BasicBlock *P : BB->predecessors())
      if (std::find(Result.begin(), Result.end(), P) == Result.end())
        Result.push_back(P);
    return Result;
  }

  /// Value of the variable live out of \p BB.
  Value *valueAtEndOf(BasicBlock *BB) {
    if (BB == DefBB)
      return Def;
    return valueAtEntryOf(BB) /* no redefinition inside BB */;
  }

  /// Value of the variable live into \p BB.
  Value *valueAtEntryOf(BasicBlock *BB) {
    auto Memo = EntryVal.find(BB);
    if (Memo != EntryVal.end())
      return Memo->second;
    Value *V;
    auto It = PhiAt.find(BB);
    if (It != PhiAt.end()) {
      V = It->second;
    } else if (BasicBlock *IDom = DT.getIDom(BB)) {
      V = valueAtEndOf(IDom);
    } else {
      V = Ctx.getUndef(Def->getType()); // path never sees the definition
    }
    EntryVal[BB] = V;
    return V;
  }

  Instruction *Def;
  const DominatorTree &DT;
  BasicBlock *DefBB;
  Context &Ctx;
  std::map<BasicBlock *, PhiInst *> PhiAt;
  std::map<BasicBlock *, Value *> EntryVal;
};

} // namespace

bool darm::repairSSA(Instruction *Def, const DominatorTree &DT,
                     const DominanceFrontier &DF) {
  assert(Def->getParent() && "definition must be in a block");
  return SingleDefRepair(Def, DT, DF).run();
}

bool darm::repairFunctionSSA(Function &F) {
  DominatorTree DT(F);
  DominanceFrontier DF(F, DT);

  // Find offending defs under the *current* analyses; repair them all
  // (repairs only add phis at IDF(defblock), which cannot invalidate the
  // dominator tree or create new violations for other defs).
  std::vector<Instruction *> Broken;
  for (BasicBlock *BB : F) {
    if (!DT.isReachable(BB))
      continue;
    for (Instruction *I : *BB) {
      if (I->getType()->isVoid())
        continue;
      bool Violated = false;
      for (const Use &U : I->uses()) {
        auto *UserInst =
            dyn_cast<Instruction>(static_cast<Value *>(U.TheUser));
        if (!UserInst || !UserInst->getParent() ||
            !DT.isReachable(UserInst->getParent()))
          continue;
        if (auto *P = dyn_cast<PhiInst>(UserInst)) {
          BasicBlock *In = P->getIncomingBlock(U.OpIdx);
          if (DT.isReachable(In) && !DT.dominates(BB, In))
            Violated = true;
        } else if (!DT.dominates(I, UserInst)) {
          Violated = true;
        }
        if (Violated)
          break;
      }
      if (Violated)
        Broken.push_back(I);
    }
  }

  bool Changed = false;
  for (Instruction *Def : Broken)
    Changed |= repairSSA(Def, DT, DF);
  return Changed;
}
