//===- GVN.cpp - Dominator-scoped global value numbering -----------------------===//

#include "darm/transform/GVN.h"

#include "darm/analysis/DominatorTree.h"
#include "darm/ir/BasicBlock.h"
#include "darm/ir/Function.h"
#include "darm/ir/Instruction.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

using namespace darm;

namespace {

/// Structural identity key. Pointer ordering inside the commutative sort
/// is run-dependent but only decides whether two keys collide, and
/// commutative matching is symmetric — so the set of merges (and thus the
/// output IR) is deterministic.
struct ExprKey {
  uint8_t Op;
  uint32_t Sub; // icmp/fcmp predicate or call intrinsic, else 0
  Type *Ty;
  std::vector<Value *> Ops;

  bool operator<(const ExprKey &O) const {
    return std::tie(Op, Sub, Ty, Ops) < std::tie(O.Op, O.Sub, O.Ty, O.Ops);
  }
};

bool isCommutative(const Instruction &I) {
  switch (I.getOpcode()) {
  case Opcode::Add:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
    return true;
  case Opcode::ICmp: {
    ICmpPred P = cast<ICmpInst>(&I)->getPredicate();
    return P == ICmpPred::EQ || P == ICmpPred::NE;
  }
  default:
    // Float add/mul are NOT treated as commutative: when both operands
    // are NaN, IEEE hardware (and the host float ops the simulator uses)
    // propagates one operand's payload, so a+b and b+a can differ
    // bitwise — and the fuzz oracle diffs memory images bitwise.
    return false;
  }
}

ExprKey makeKey(Instruction &I) {
  ExprKey K;
  K.Op = static_cast<uint8_t>(I.getOpcode());
  K.Sub = 0;
  if (auto *C = dyn_cast<ICmpInst>(&I))
    K.Sub = 1 + static_cast<uint32_t>(C->getPredicate());
  else if (auto *C2 = dyn_cast<FCmpInst>(&I))
    K.Sub = 100 + static_cast<uint32_t>(C2->getPredicate());
  else if (auto *Call = dyn_cast<CallInst>(&I))
    K.Sub = 200 + static_cast<uint32_t>(Call->getIntrinsic());
  K.Ty = I.getType();
  K.Ops = I.operands();
  if (K.Ops.size() == 2 && isCommutative(I) && K.Ops[1] < K.Ops[0])
    std::swap(K.Ops[0], K.Ops[1]);
  return K;
}

bool eligible(const Instruction &I) {
  return I.isSafeToSpeculate() && !I.isPhi() && !I.isTerminator() &&
         !I.getType()->isVoid();
}

} // namespace

bool darm::runGVN(Function &F) {
  DominatorTree DT(F);
  std::map<ExprKey, std::vector<Instruction *>> Table;
  bool Changed = false;
  for (BasicBlock *BB : DT.getBlocksRPO()) {
    std::vector<Instruction *> Insts(BB->begin(), BB->end());
    for (Instruction *I : Insts) {
      if (!eligible(*I))
        continue;
      ExprKey Key = makeKey(*I);
      std::vector<Instruction *> &Defs = Table[Key];
      Instruction *Leader = nullptr;
      for (Instruction *Def : Defs)
        if (DT.dominates(Def, I)) {
          Leader = Def;
          break;
        }
      if (Leader) {
        I->replaceAllUsesWith(Leader);
        BB->erase(I);
        Changed = true;
      } else {
        Defs.push_back(I);
      }
    }
  }
  return Changed;
}
