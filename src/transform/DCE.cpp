//===- DCE.cpp - Dead code elimination ------------------------------------------===//

#include "darm/transform/DCE.h"

#include "darm/ir/Function.h"

#include <set>
#include <vector>

using namespace darm;

namespace {

/// Phis (and pure instructions) that only feed each other — dead cycles
/// threaded around loops — are invisible to use-count DCE. Seed liveness
/// from side-effecting/terminator instructions and sweep the rest.
bool removeDeadCycles(darm::Function &F) {
  using namespace darm;
  std::set<Instruction *> Live;
  std::vector<Instruction *> Worklist;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      if (I->hasSideEffects() || I->isTerminator()) {
        Live.insert(I);
        Worklist.push_back(I);
      }
  while (!Worklist.empty()) {
    Instruction *I = Worklist.back();
    Worklist.pop_back();
    for (Value *Op : I->operands())
      if (auto *D = dyn_cast<Instruction>(Op))
        if (Live.insert(D).second)
          Worklist.push_back(D);
  }
  std::vector<Instruction *> Dead;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      if (!Live.count(I))
        Dead.push_back(I);
  if (Dead.empty())
    return false;
  for (Instruction *I : Dead)
    I->dropAllReferences();
  for (Instruction *I : Dead) {
    // Remaining uses can only come from other dead instructions, whose
    // operands were just dropped.
    assert(!I->hasUses() && "dead instruction used by live code");
    I->eraseFromParent();
  }
  return true;
}

} // namespace

bool darm::eliminateDeadCode(Function &F) {
  bool Any = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F) {
      // Reverse order so chains die in one sweep.
      std::vector<Instruction *> Insts(BB->begin(), BB->end());
      for (auto It = Insts.rbegin(); It != Insts.rend(); ++It) {
        Instruction *I = *It;
        if (I->hasUses() || I->hasSideEffects() || I->isTerminator())
          continue;
        I->eraseFromParent();
        Changed = true;
        Any = true;
      }
    }
    Changed |= removeDeadCycles(F);
    Any |= Changed;
  }
  return Any;
}
