//===- ConstantFolding.cpp - Fold operations over constant operands ------------===//

#include "darm/transform/ConstantFolding.h"

#include "darm/ir/BasicBlock.h"
#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/Instruction.h"

#include <cmath>
#include <cstdint>
#include <limits>

using namespace darm;

namespace {

/// Canonical register form of a raw 64-bit result for \p Ty — exactly the
/// simulator's applyNorm: i1 keeps the low bit, i32 is stored
/// sign-extended, i64 is raw.
int64_t normInt(const Type *Ty, uint64_t Raw) {
  if (Ty->isInt1())
    return static_cast<int64_t>(Raw & 1);
  if (Ty->isInt32())
    return static_cast<int64_t>(static_cast<int32_t>(Raw));
  return static_cast<int64_t>(Raw);
}

Value *foldIntBinary(Context &Ctx, Opcode Op, Type *Ty, uint64_t RA,
                     uint64_t RB) {
  const bool Is32 = Ty->isInt32();
  const unsigned ShiftMask = Is32 ? 31 : 63;
  const int64_t SA = static_cast<int64_t>(RA);
  const int64_t SB = static_cast<int64_t>(RB);
  const uint64_t UA = Is32 ? static_cast<uint32_t>(RA) : RA;
  const uint64_t UB = Is32 ? static_cast<uint32_t>(RB) : RB;
  uint64_t R;
  switch (Op) {
  case Opcode::Add:
    R = RA + RB;
    break;
  case Opcode::Sub:
    R = RA - RB;
    break;
  case Opcode::Mul:
    R = RA * RB;
    break;
  case Opcode::SDiv:
    // Division by zero is defined to yield 0 in this IR (Instruction.h);
    // INT_MIN / -1 is defined as negation, as the simulator executes it.
    if (SB == 0)
      R = 0;
    else if (SB == -1)
      R = uint64_t{0} - RA;
    else
      R = static_cast<uint64_t>(SA / SB);
    break;
  case Opcode::SRem:
    R = (SB == 0 || SB == -1) ? 0 : static_cast<uint64_t>(SA % SB);
    break;
  case Opcode::UDiv:
    R = UB == 0 ? 0 : UA / UB;
    break;
  case Opcode::URem:
    R = UB == 0 ? 0 : UA % UB;
    break;
  case Opcode::And:
    R = RA & RB;
    break;
  case Opcode::Or:
    R = RA | RB;
    break;
  case Opcode::Xor:
    R = RA ^ RB;
    break;
  case Opcode::Shl:
    R = RA << (RB & ShiftMask);
    break;
  case Opcode::LShr:
    R = UA >> (RB & ShiftMask);
    break;
  case Opcode::AShr:
    R = static_cast<uint64_t>(
        (Is32 ? static_cast<int64_t>(static_cast<int32_t>(RA)) : SA) >>
        (RB & ShiftMask));
    break;
  default:
    return nullptr;
  }
  return Ctx.getConstantInt(Ty, normInt(Ty, R));
}

Value *foldFloatBinary(Context &Ctx, Opcode Op, float A, float B) {
  // The same C++ expression the simulator evaluates per lane; IEEE float
  // arithmetic on the build host, so the folded bits match execution.
  switch (Op) {
  case Opcode::FAdd:
    return Ctx.getConstantFloat(A + B);
  case Opcode::FSub:
    return Ctx.getConstantFloat(A - B);
  case Opcode::FMul:
    return Ctx.getConstantFloat(A * B);
  case Opcode::FDiv:
    return Ctx.getConstantFloat(A / B);
  default:
    return nullptr;
  }
}

Value *foldICmp(Context &Ctx, ICmpPred Pred, Type *OpTy, uint64_t RA,
                uint64_t RB) {
  const bool Is32 = OpTy->isInt32();
  const int64_t SA = static_cast<int64_t>(RA);
  const int64_t SB = static_cast<int64_t>(RB);
  const uint64_t UA = Is32 ? static_cast<uint32_t>(RA) : RA;
  const uint64_t UB = Is32 ? static_cast<uint32_t>(RB) : RB;
  bool R = false;
  switch (Pred) {
  case ICmpPred::EQ:
    R = RA == RB;
    break;
  case ICmpPred::NE:
    R = RA != RB;
    break;
  case ICmpPred::SLT:
    R = SA < SB;
    break;
  case ICmpPred::SLE:
    R = SA <= SB;
    break;
  case ICmpPred::SGT:
    R = SA > SB;
    break;
  case ICmpPred::SGE:
    R = SA >= SB;
    break;
  case ICmpPred::ULT:
    R = UA < UB;
    break;
  case ICmpPred::ULE:
    R = UA <= UB;
    break;
  case ICmpPred::UGT:
    R = UA > UB;
    break;
  case ICmpPred::UGE:
    R = UA >= UB;
    break;
  }
  return Ctx.getBool(R);
}

Value *foldFCmp(Context &Ctx, FCmpPred Pred, float A, float B) {
  bool R = false;
  switch (Pred) {
  case FCmpPred::OEQ:
    R = A == B;
    break;
  case FCmpPred::ONE:
    R = A != B;
    break;
  case FCmpPred::OLT:
    R = A < B;
    break;
  case FCmpPred::OLE:
    R = A <= B;
    break;
  case FCmpPred::OGT:
    R = A > B;
    break;
  case FCmpPred::OGE:
    R = A >= B;
    break;
  }
  return Ctx.getBool(R);
}

Value *foldCast(Context &Ctx, Opcode Op, Type *DestTy, Type *SrcTy,
                const Value *Src) {
  if (Op == Opcode::SIToFP) {
    const auto *CI = dyn_cast<ConstantInt>(Src);
    if (!CI)
      return nullptr;
    return Ctx.getConstantFloat(static_cast<float>(CI->getValue()));
  }
  if (Op == Opcode::FPToSI) {
    const auto *CF = dyn_cast<ConstantFloat>(Src);
    if (!CF)
      return nullptr;
    // fptosi is total (Instruction.h): NaN yields 0 and out-of-range
    // values saturate to the destination's limits — same bounds as the
    // simulator.
    const bool To32 = DestTy->isInt32();
    const float Lo = To32 ? -2147483648.0f : -9223372036854775808.0f;
    const float Hi = To32 ? 2147483648.0f : 9223372036854775808.0f;
    const int64_t Min = To32 ? std::numeric_limits<int32_t>::min()
                             : std::numeric_limits<int64_t>::min();
    const int64_t Max = To32 ? std::numeric_limits<int32_t>::max()
                             : std::numeric_limits<int64_t>::max();
    const float F = CF->getValue();
    int64_t R;
    if (std::isnan(F))
      R = 0;
    else if (F < Lo)
      R = Min;
    else if (F >= Hi)
      R = Max;
    else
      R = static_cast<int64_t>(F);
    return Ctx.getConstantInt(DestTy,
                              normInt(DestTy, static_cast<uint64_t>(R)));
  }

  const auto *CI = dyn_cast<ConstantInt>(Src);
  if (!CI)
    return nullptr;
  const uint64_t V = static_cast<uint64_t>(CI->getValue());
  uint64_t R;
  switch (Op) {
  case Opcode::ZExt:
    R = SrcTy->isInt1() ? (V & 1)
        : SrcTy->isInt32()
            ? static_cast<uint64_t>(static_cast<uint32_t>(V))
            : V;
    break;
  case Opcode::SExt:
    // Stored constants are already sign-extended; i1 extends its bit.
    R = SrcTy->isInt1() ? ((V & 1) ? ~uint64_t{0} : 0) : V;
    break;
  case Opcode::Trunc:
    R = V; // renormalization below truncates to the destination width
    break;
  default:
    return nullptr;
  }
  return Ctx.getConstantInt(DestTy, normInt(DestTy, R));
}

} // namespace

Value *darm::foldOperation(Context &Ctx, const Instruction &I,
                           const std::vector<Value *> &Ops) {
  if (I.isBinaryOp()) {
    if (Ops.size() != 2)
      return nullptr;
    Type *Ty = I.getType();
    if (Ty->isFloat()) {
      const auto *A = dyn_cast<ConstantFloat>(Ops[0]);
      const auto *B = dyn_cast<ConstantFloat>(Ops[1]);
      if (!A || !B)
        return nullptr;
      return foldFloatBinary(Ctx, I.getOpcode(), A->getValue(),
                             B->getValue());
    }
    const auto *A = dyn_cast<ConstantInt>(Ops[0]);
    const auto *B = dyn_cast<ConstantInt>(Ops[1]);
    if (!A || !B)
      return nullptr;
    return foldIntBinary(Ctx, I.getOpcode(), Ty,
                         static_cast<uint64_t>(A->getValue()),
                         static_cast<uint64_t>(B->getValue()));
  }

  switch (I.getOpcode()) {
  case Opcode::ICmp: {
    if (Ops.size() != 2)
      return nullptr;
    const auto *A = dyn_cast<ConstantInt>(Ops[0]);
    const auto *B = dyn_cast<ConstantInt>(Ops[1]);
    if (!A || !B)
      return nullptr;
    return foldICmp(Ctx, cast<ICmpInst>(&I)->getPredicate(),
                    Ops[0]->getType(), static_cast<uint64_t>(A->getValue()),
                    static_cast<uint64_t>(B->getValue()));
  }
  case Opcode::FCmp: {
    if (Ops.size() != 2)
      return nullptr;
    const auto *A = dyn_cast<ConstantFloat>(Ops[0]);
    const auto *B = dyn_cast<ConstantFloat>(Ops[1]);
    if (!A || !B)
      return nullptr;
    return foldFCmp(Ctx, cast<FCmpInst>(&I)->getPredicate(), A->getValue(),
                    B->getValue());
  }
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::Trunc:
  case Opcode::SIToFP:
  case Opcode::FPToSI:
    if (Ops.size() != 1)
      return nullptr;
    return foldCast(Ctx, I.getOpcode(), I.getType(), Ops[0]->getType(),
                    Ops[0]);
  case Opcode::Select: {
    if (Ops.size() != 3)
      return nullptr;
    const auto *C = dyn_cast<ConstantInt>(Ops[0]);
    if (!C)
      return nullptr;
    Value *Chosen = (C->getValue() & 1) ? Ops[1] : Ops[2];
    // Only a constant result counts as folded; a select on a constant
    // condition with non-constant arms is a simplification, handled by
    // the algebraic pass (and SCCP's lattice) instead.
    if (isa<ConstantInt>(Chosen) || isa<ConstantFloat>(Chosen))
      return Chosen;
    return nullptr;
  }
  default:
    return nullptr;
  }
}

Value *darm::foldInstruction(Instruction &I) {
  BasicBlock *BB = I.getParent();
  if (!BB)
    return nullptr;
  Function *F = BB->getParent();
  if (!F)
    return nullptr;
  std::vector<Value *> Ops;
  Ops.reserve(I.getNumOperands());
  for (unsigned Idx = 0; Idx < I.getNumOperands(); ++Idx)
    Ops.push_back(I.getOperand(Idx));
  return foldOperation(F->getContext(), I, Ops);
}
