//===- CFGUtils.cpp - CFG surgery helpers -----------------------------------===//

#include "darm/transform/CFGUtils.h"

#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/Module.h"

using namespace darm;

BasicBlock *darm::splitEdge(BasicBlock *From, BasicBlock *To,
                            unsigned SuccIdx) {
  Function *F = From->getParent();
  Context &Ctx = F->getContext();
  Instruction *T = From->getTerminator();
  assert(T && T->getSuccessor(SuccIdx) == To && "not an edge");

  BasicBlock *Mid = F->createBlock(From->getName() + ".split", To);
  T->setSuccessor(SuccIdx, Mid);
  Mid->push_back(new BrInst(To, Ctx.getVoidTy()));
  // If From still reaches To through another slot, the phi entries for
  // From must stay; otherwise they transfer to Mid.
  if (From->isSuccessor(To)) {
    // Duplicate edge remains: add fresh entries for Mid mirroring From's.
    for (PhiInst *P : To->phis()) {
      int Idx = P->getBlockIndex(From);
      assert(Idx >= 0 && "phi missing entry for predecessor");
      P->addIncoming(P->getIncomingValue(static_cast<unsigned>(Idx)), Mid);
    }
  } else {
    To->replacePhiIncomingBlock(From, Mid);
  }
  return Mid;
}

std::vector<BasicBlock *> darm::splitAllEdges(BasicBlock *From,
                                              BasicBlock *To) {
  std::vector<BasicBlock *> NewBlocks;
  Instruction *T = From->getTerminator();
  assert(T && "block is unterminated");
  for (unsigned I = 0, E = T->getNumSuccessors(); I != E; ++I)
    if (T->getSuccessor(I) == To)
      NewBlocks.push_back(splitEdge(From, To, I));
  return NewBlocks;
}

void darm::removeEdgePhis(BasicBlock *From, BasicBlock *To) {
  To->removePhiEntriesFor(From);
}

std::set<BasicBlock *> darm::computeReachable(Function &F) {
  std::set<BasicBlock *> Reachable;
  std::vector<BasicBlock *> Worklist{&F.getEntryBlock()};
  Reachable.insert(&F.getEntryBlock());
  while (!Worklist.empty()) {
    BasicBlock *BB = Worklist.back();
    Worklist.pop_back();
    for (BasicBlock *Succ : BB->successors())
      if (Reachable.insert(Succ).second)
        Worklist.push_back(Succ);
  }
  return Reachable;
}

bool darm::removeUnreachableBlocks(Function &F) {
  std::set<BasicBlock *> Reachable = computeReachable(F);
  std::vector<BasicBlock *> Dead;
  for (BasicBlock *BB : F)
    if (!Reachable.count(BB))
      Dead.push_back(BB);
  if (Dead.empty())
    return false;

  // First disconnect: drop terminators (removes pred entries and phi
  // entries in successors), so dead cycles become erasable.
  for (BasicBlock *BB : Dead) {
    if (Instruction *T = BB->getTerminator()) {
      for (BasicBlock *Succ : BB->successors())
        Succ->removePhiEntriesFor(BB);
      BB->erase(T);
    }
  }
  for (BasicBlock *BB : Dead)
    F.eraseBlock(BB);
  return true;
}
