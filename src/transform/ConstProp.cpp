//===- ConstProp.cpp - Sparse conditional constant propagation -----------------===//

#include "darm/transform/ConstProp.h"

#include "darm/ir/BasicBlock.h"
#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/Instruction.h"
#include "darm/transform/CFGUtils.h"
#include "darm/transform/ConstantFolding.h"

#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

using namespace darm;

namespace {

/// The SCCP lattice: optimistic Unknown at the top, a single constant in
/// the middle, Overdefined at the bottom.
struct LatticeVal {
  enum Level : uint8_t { Unknown, Const, Over } Lv = Unknown;
  Value *C = nullptr; // ConstantInt/ConstantFloat when Lv == Const

  bool isUnknown() const { return Lv == Unknown; }
  bool isConst() const { return Lv == Const; }
  bool isOver() const { return Lv == Over; }
};

class SCCPSolver {
public:
  explicit SCCPSolver(Function &F) : F(F), Ctx(F.getContext()) {}

  void solve() {
    markBlockExecutable(&F.getEntryBlock());
    while (!BlockWorklist.empty() || !InstWorklist.empty()) {
      while (!BlockWorklist.empty()) {
        BasicBlock *BB = BlockWorklist.back();
        BlockWorklist.pop_back();
        for (Instruction *I : *BB)
          visit(I);
      }
      while (!InstWorklist.empty()) {
        Instruction *I = InstWorklist.back();
        InstWorklist.pop_back();
        if (Executable.count(I->getParent()))
          visit(I);
      }
    }
  }

  bool rewrite() {
    bool Changed = false;
    for (BasicBlock *BB : F.getBlockVector()) {
      if (!Executable.count(BB))
        continue; // deleted below as unreachable
      std::vector<Instruction *> Insts(BB->begin(), BB->end());
      for (Instruction *I : Insts) {
        if (auto *CB = dyn_cast<CondBrInst>(I)) {
          LatticeVal CV = lattice(CB->getCondition());
          if (!CV.isConst())
            continue;
          BasicBlock *TrueBB = CB->getTrueSuccessor();
          BasicBlock *FalseBB = CB->getFalseSuccessor();
          bool Taken = cast<ConstantInt>(CV.C)->getValue() & 1;
          BasicBlock *Kept = Taken ? TrueBB : FalseBB;
          BasicBlock *Dead = Taken ? FalseBB : TrueBB;
          BB->erase(CB);
          if (Dead != Kept)
            Dead->removePhiEntriesFor(BB);
          BB->push_back(new BrInst(Kept, Ctx.getVoidTy()));
          Changed = true;
          continue;
        }
        if (I->isTerminator() || I->getType()->isVoid())
          continue;
        LatticeVal LV = lattice(I);
        if (!LV.isConst())
          continue;
        if (I->hasSideEffects() || I->isConvergent() || I->mayReadMemory())
          continue; // lattice never marks these Const; belt and braces
        I->replaceAllUsesWith(LV.C);
        BB->erase(I);
        Changed = true;
      }
    }
    Changed |= removeUnreachableBlocks(F);
    return Changed;
  }

private:
  LatticeVal lattice(Value *V) {
    if (isa<ConstantInt>(V) || isa<ConstantFloat>(V))
      return {LatticeVal::Const, V};
    if (auto *I = dyn_cast<Instruction>(V)) {
      auto It = Values.find(I);
      return It == Values.end() ? LatticeVal{} : It->second;
    }
    // Arguments, shared arrays, undef: runtime values (undef deliberately
    // pessimistic — see the header).
    return {LatticeVal::Over, nullptr};
  }

  void markOverdefined(Instruction *I) {
    LatticeVal &LV = Values[I];
    if (LV.isOver())
      return;
    LV = {LatticeVal::Over, nullptr};
    pushUsers(I);
  }

  void markConstant(Instruction *I, Value *C) {
    LatticeVal &LV = Values[I];
    if (LV.isOver() || (LV.isConst() && LV.C == C))
      return;
    if (LV.isConst() && LV.C != C) { // lowering past Const: go to Over
      LV = {LatticeVal::Over, nullptr};
    } else {
      LV = {LatticeVal::Const, C};
    }
    pushUsers(I);
  }

  void pushUsers(Instruction *I) {
    for (const Use &U : I->uses())
      if (auto *UI = dyn_cast<Instruction>(U.TheUser))
        InstWorklist.push_back(UI);
  }

  void markBlockExecutable(BasicBlock *BB) {
    if (Executable.insert(BB).second)
      BlockWorklist.push_back(BB);
  }

  void markEdgeFeasible(BasicBlock *From, BasicBlock *To) {
    if (!Feasible.insert({From, To}).second)
      return;
    if (Executable.count(To)) {
      // Block already processed; only its phis see new information.
      for (PhiInst *P : To->phis())
        InstWorklist.push_back(P);
    } else {
      markBlockExecutable(To);
    }
  }

  void visit(Instruction *I) {
    if (auto *P = dyn_cast<PhiInst>(I)) {
      visitPhi(P);
      return;
    }
    if (auto *CB = dyn_cast<CondBrInst>(I)) {
      LatticeVal CV = lattice(CB->getCondition());
      if (CV.isConst()) {
        bool Taken = cast<ConstantInt>(CV.C)->getValue() & 1;
        markEdgeFeasible(I->getParent(), Taken ? CB->getTrueSuccessor()
                                               : CB->getFalseSuccessor());
      } else if (CV.isOver()) {
        markEdgeFeasible(I->getParent(), CB->getTrueSuccessor());
        markEdgeFeasible(I->getParent(), CB->getFalseSuccessor());
      }
      return;
    }
    if (auto *Br = dyn_cast<BrInst>(I)) {
      markEdgeFeasible(I->getParent(), Br->getTarget());
      return;
    }
    if (I->isTerminator() || I->getType()->isVoid())
      return;
    if (auto *Sel = dyn_cast<SelectInst>(I)) {
      visitSelect(Sel);
      return;
    }
    if (!I->isBinaryOp() && !I->isCast() && I->getOpcode() != Opcode::ICmp &&
        I->getOpcode() != Opcode::FCmp) {
      // Loads, pure intrinsic calls, geps: runtime values.
      markOverdefined(I);
      return;
    }
    std::vector<Value *> Ops;
    Ops.reserve(I->getNumOperands());
    for (Value *Op : I->operands()) {
      LatticeVal LV = lattice(Op);
      if (LV.isUnknown())
        return; // optimistic: wait for the operand to resolve
      if (LV.isOver()) {
        markOverdefined(I);
        return;
      }
      Ops.push_back(LV.C);
    }
    if (Value *C = foldOperation(Ctx, *I, Ops))
      markConstant(I, C);
    else
      markOverdefined(I);
  }

  void visitPhi(PhiInst *P) {
    Value *Merged = nullptr;
    for (unsigned K = 0, E = P->getNumIncoming(); K != E; ++K) {
      if (!Feasible.count({P->getIncomingBlock(K), P->getParent()}))
        continue;
      LatticeVal LV = lattice(P->getIncomingValue(K));
      if (LV.isUnknown())
        continue;
      if (LV.isOver() || (Merged && Merged != LV.C)) {
        markOverdefined(P);
        return;
      }
      Merged = LV.C;
    }
    if (Merged)
      markConstant(P, Merged);
  }

  void visitSelect(SelectInst *Sel) {
    LatticeVal CV = lattice(Sel->getCondition());
    if (CV.isUnknown())
      return;
    if (CV.isConst()) {
      bool Taken = cast<ConstantInt>(CV.C)->getValue() & 1;
      LatticeVal Arm =
          lattice(Taken ? Sel->getTrueValue() : Sel->getFalseValue());
      if (Arm.isConst())
        markConstant(Sel, Arm.C);
      else if (Arm.isOver())
        markOverdefined(Sel);
      return;
    }
    // Overdefined condition: both arms must agree on one constant.
    LatticeVal T = lattice(Sel->getTrueValue());
    LatticeVal FV = lattice(Sel->getFalseValue());
    if (T.isUnknown() || FV.isUnknown())
      return;
    if (T.isConst() && FV.isConst() && T.C == FV.C)
      markConstant(Sel, T.C);
    else
      markOverdefined(Sel);
  }

  Function &F;
  Context &Ctx;
  std::unordered_map<Instruction *, LatticeVal> Values;
  std::set<BasicBlock *> Executable;
  std::set<std::pair<BasicBlock *, BasicBlock *>> Feasible;
  std::vector<BasicBlock *> BlockWorklist;
  std::vector<Instruction *> InstWorklist;
};

} // namespace

bool darm::propagateConstants(Function &F) {
  SCCPSolver Solver(F);
  Solver.solve();
  return Solver.rewrite();
}
