//===- AlgebraicSimplify.cpp - Algebraic identities and strength reduction -----===//

#include "darm/transform/AlgebraicSimplify.h"

#include "darm/ir/BasicBlock.h"
#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/Instruction.h"
#include "darm/transform/ConstantFolding.h"

#include <cstdint>
#include <string>
#include <vector>

using namespace darm;

namespace {

const ConstantInt *asConstInt(const Value *V) {
  return dyn_cast<ConstantInt>(V);
}

bool isZero(const Value *V) {
  const ConstantInt *C = asConstInt(V);
  return C && C->isZero();
}

bool isOne(const Value *V) {
  const ConstantInt *C = asConstInt(V);
  return C && C->isOne();
}

/// All-ones in the value's width: 1 for i1, -1 for i32/i64 (constants are
/// stored sign-extended).
bool isAllOnes(const Value *V) {
  const ConstantInt *C = asConstInt(V);
  if (!C)
    return false;
  return C->getValue() == (V->getType()->isInt1() ? 1 : -1);
}

/// Reflexive icmp verdict: x pred x for any integer x.
bool icmpOnEqual(ICmpPred P) {
  switch (P) {
  case ICmpPred::EQ:
  case ICmpPred::SLE:
  case ICmpPred::SGE:
  case ICmpPred::ULE:
  case ICmpPred::UGE:
    return true;
  default:
    return false;
  }
}

/// If \p V is a constant power of two that is positive *as stored* (which
/// excludes i32 0x80000000, stored negative), returns its log2; else -1.
int log2Const(const Value *V) {
  const ConstantInt *C = asConstInt(V);
  if (!C)
    return -1;
  int64_t X = C->getValue();
  if (X <= 0 || (X & (X - 1)) != 0)
    return -1;
  int K = 0;
  while ((int64_t{1} << K) != X)
    ++K;
  return K;
}

/// Identity simplifications that rewrite \p I to an existing value (an
/// operand or a constant). Returns null when none applies. Integer only;
/// see the header for why floats are left alone.
Value *simplifyToExisting(Context &Ctx, Instruction &I) {
  Type *Ty = I.getType();
  if (I.isBinaryOp()) {
    Value *X = I.getOperand(0), *Y = I.getOperand(1);
    if (Ty->isFloat())
      return nullptr;
    ConstantInt *Zero = Ctx.getConstantInt(Ty, 0);
    switch (I.getOpcode()) {
    case Opcode::Add:
      if (isZero(Y))
        return X;
      if (isZero(X))
        return Y;
      return nullptr;
    case Opcode::Sub:
      if (isZero(Y))
        return X;
      if (X == Y)
        return Zero;
      return nullptr;
    case Opcode::Mul:
      if (isZero(X) || isZero(Y))
        return Zero;
      if (isOne(Y))
        return X;
      if (isOne(X))
        return Y;
      return nullptr;
    case Opcode::SDiv:
    case Opcode::UDiv:
      // x/x is NOT 1 under total semantics (0/0 == 0 here), so only the
      // unit divisor folds.
      if (isOne(Y))
        return X;
      if (isZero(Y))
        return Zero; // division by zero is defined as 0
      return nullptr;
    case Opcode::SRem:
      // x % x == 0 for every x including 0 and -1 (both defined as 0).
      if (X == Y || isOne(Y) || isZero(Y) || isAllOnes(Y))
        return Zero;
      return nullptr;
    case Opcode::URem:
      if (X == Y || isOne(Y) || isZero(Y))
        return Zero;
      return nullptr;
    case Opcode::And:
      if (X == Y)
        return X;
      if (isZero(X) || isZero(Y))
        return Zero;
      if (isAllOnes(Y))
        return X;
      if (isAllOnes(X))
        return Y;
      return nullptr;
    case Opcode::Or:
      if (X == Y)
        return X;
      if (isZero(Y))
        return X;
      if (isZero(X))
        return Y;
      if (isAllOnes(X) || isAllOnes(Y))
        return Ctx.getConstantInt(Ty, Ty->isInt1() ? 1 : -1);
      return nullptr;
    case Opcode::Xor:
      if (X == Y)
        return Zero;
      if (isZero(Y))
        return X;
      if (isZero(X))
        return Y;
      return nullptr;
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr:
      if (isZero(Y))
        return X;
      if (isZero(X))
        return Zero;
      return nullptr;
    default:
      return nullptr;
    }
  }
  if (auto *Cmp = dyn_cast<ICmpInst>(&I)) {
    if (Cmp->getLHS() == Cmp->getRHS())
      return Ctx.getBool(icmpOnEqual(Cmp->getPredicate()));
    return nullptr;
  }
  if (auto *Sel = dyn_cast<SelectInst>(&I)) {
    if (Sel->getTrueValue() == Sel->getFalseValue())
      return Sel->getTrueValue();
    if (const ConstantInt *C = asConstInt(Sel->getCondition()))
      return C->isZero() ? Sel->getFalseValue() : Sel->getTrueValue();
    return nullptr;
  }
  return nullptr;
}

/// Strength reduction: builds a cheaper replacement instruction for \p I,
/// or returns null. The caller inserts it before \p I.
Instruction *strengthReduce(Context &Ctx, Instruction &I) {
  if (!I.isBinaryOp() || I.getType()->isFloat())
    return nullptr;
  Value *X = I.getOperand(0), *Y = I.getOperand(1);
  Type *Ty = I.getType();
  switch (I.getOpcode()) {
  case Opcode::Mul: {
    int K = log2Const(Y);
    Value *Other = X;
    if (K < 1) {
      K = log2Const(X);
      Other = Y;
    }
    if (K < 1)
      return nullptr;
    return new BinaryInst(Opcode::Shl, Other, Ctx.getConstantInt(Ty, K));
  }
  case Opcode::UDiv: {
    int K = log2Const(Y);
    if (K < 1)
      return nullptr;
    return new BinaryInst(Opcode::LShr, X, Ctx.getConstantInt(Ty, K));
  }
  case Opcode::URem: {
    int K = log2Const(Y);
    if (K < 1)
      return nullptr;
    return new BinaryInst(Opcode::And, X,
                          Ctx.getConstantInt(Ty, (int64_t{1} << K) - 1));
  }
  default:
    return nullptr;
  }
}

} // namespace

bool darm::simplifyAlgebraic(Function &F) {
  Context &Ctx = F.getContext();
  bool Changed = false;
  bool LocalChanged = true;
  while (LocalChanged) {
    LocalChanged = false;
    for (BasicBlock *BB : F) {
      std::vector<Instruction *> Insts(BB->begin(), BB->end());
      for (Instruction *I : Insts) {
        if (I->isTerminator() || I->isPhi() || I->getType()->isVoid())
          continue;
        if (!I->isSafeToSpeculate())
          continue;
        if (Value *C = foldInstruction(*I)) {
          I->replaceAllUsesWith(C);
          BB->erase(I);
          LocalChanged = true;
          continue;
        }
        if (Value *V = simplifyToExisting(Ctx, *I)) {
          I->replaceAllUsesWith(V);
          BB->erase(I);
          LocalChanged = true;
          continue;
        }
        if (Instruction *NewI = strengthReduce(Ctx, *I)) {
          BB->insert(I->getIterator(), NewI);
          NewI->setName(
              F.uniqueName(I->hasName() ? I->getName() : std::string("sr")));
          I->replaceAllUsesWith(NewI);
          BB->erase(I);
          LocalChanged = true;
        }
      }
    }
    Changed |= LocalChanged;
  }
  return Changed;
}
