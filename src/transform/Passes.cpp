//===- Passes.cpp - Named transform pass registry -------------------------------===//

#include "darm/transform/Passes.h"

#include "darm/transform/AlgebraicSimplify.h"
#include "darm/transform/ConstProp.h"
#include "darm/transform/DCE.h"
#include "darm/transform/GVN.h"
#include "darm/transform/LICM.h"
#include "darm/transform/LoopUnroll.h"
#include "darm/transform/SSAUpdater.h"
#include "darm/transform/SimplifyCFG.h"

using namespace darm;

const std::vector<PassInfo> &darm::transformPassRegistry() {
  static const std::vector<PassInfo> Registry = {
      {"constprop",
       "sparse conditional constant propagation (folds constants, prunes "
       "provably-dead branches)",
       propagateConstants},
      {"algebraic",
       "algebraic simplification: identities, strength reduction, local "
       "constant folding",
       simplifyAlgebraic},
      {"gvn",
       "dominator-scoped global value numbering / common subexpression "
       "elimination",
       runGVN},
      {"licm", "loop-invariant code motion into loop preheaders",
       hoistLoopInvariants},
      {"loop-unroll",
       "full unrolling of bounded divergent loops into meldable "
       "branch-divergent straight-line code",
       unrollDivergentLoops},
      {"simplifycfg",
       "CFG cleanup: constant branches, block merging, triangle speculation",
       simplifyCFG},
      {"dce", "dead code elimination", eliminateDeadCode},
      {"ssa-repair", "re-establish SSA dominance via repair phis",
       repairFunctionSSA},
  };
  return Registry;
}

const PassInfo *darm::findTransformPass(const std::string &Name) {
  for (const PassInfo &P : transformPassRegistry())
    if (P.Name == Name)
      return &P;
  return nullptr;
}
