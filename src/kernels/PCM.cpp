//===- PCM.cpp - PCM: partition and concurrent merge -------------------------------===//
//
// Batcher-style odd-even bucket merging (§VI-A) realized as a rank-based
// concurrent merge: every thread *partitions* by binary-searching its
// element's rank in the opposite bucket, then writes it directly to its
// merged position. Even lanes carry elements of bucket A (rank via
// lower-bound), odd lanes of bucket B (rank via upper-bound), so the
// role branch diverges inside every warp at every block size, and the two
// paths contain isomorphic *loops* with shared-memory loads — exactly the
// "complex control-flow" melding case (Table I) that neither tail merging
// nor branch fusion handles.
//
//===----------------------------------------------------------------------===//

#include "darm/kernels/Benchmark.h"

#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/Module.h"
#include "darm/support/RNG.h"

#include <algorithm>

using namespace darm;

namespace {

constexpr unsigned kGridDim = 4;

class PCMBenchmark : public Benchmark {
public:
  explicit PCMBenchmark(unsigned BlockSize) : BlockSize(BlockSize) {}

  std::string name() const override { return "PCM"; }
  LaunchParams launch() const override { return {kGridDim, BlockSize}; }

  Function *build(Module &M) const override {
    Context &Ctx = M.getContext();
    Type *I32 = Ctx.getInt32Ty();
    Type *GPtr = Ctx.getPointerTy(I32, AddressSpace::Global);
    Function *F = M.createFunction("pcm_merge", Ctx.getVoidTy(),
                                   {{GPtr, "in"}, {GPtr, "out"}});
    SharedArray *Sh = F->createSharedArray(I32, BlockSize, "sh");
    unsigned Half = BlockSize / 2;

    BasicBlock *Entry = F->createBlock("entry");
    IRBuilder B(Ctx, Entry);
    Value *Tid = B.createThreadIdX();
    Value *Ntid = B.createBlockDimX();
    Value *Gid = B.createAdd(B.createMul(B.createBlockIdX(), Ntid), Tid,
                             "gid");
    B.createStoreAt(B.createLoadAt(F->getArg(0), Gid, "staged"), Sh, Tid);
    B.createBarrier();

    Value *HalfV = B.getInt32(static_cast<int32_t>(Half));
    Value *Pos = B.createAShr(Tid, B.getInt32(1), "pos"); // index in bucket
    Value *Parity = B.createAnd(Tid, B.getInt32(1), "parity");
    Value *IsA = B.createICmp(ICmpPred::EQ, Parity, B.getInt32(0), "isA");

    BasicBlock *ASide = F->createBlock("aside");
    BasicBlock *BSide = F->createBlock("bside");
    BasicBlock *Join = F->createBlock("join");
    B.createCondBr(IsA, ASide, BSide);

    // Each side: element = bucket[pos]; rank = binary search in the other
    // bucket; out[pos + rank] = element. Lower-bound on the A side,
    // upper-bound on the B side (ties: A precedes B, like std::merge).
    struct SideResult {
      Value *OutIdx;
      Value *Elem;
      BasicBlock *EndBB;
    };
    auto EmitSide = [&](BasicBlock *Head, bool AIsSelf,
                        const std::string &Tag) -> SideResult {
      B.setInsertPoint(Head);
      Value *SelfBase = AIsSelf ? B.getInt32(0) : HalfV;
      Value *OtherBase = AIsSelf ? HalfV : B.getInt32(0);
      Value *Elem = B.createLoadAt(
          Sh, B.createAdd(SelfBase, Pos, Tag + ".selfidx"), Tag + ".elem");

      Function *Fn = Head->getParent();
      BasicBlock *Hdr = Fn->createBlock(Tag + ".bs.hdr");
      BasicBlock *Body = Fn->createBlock(Tag + ".bs.body");
      BasicBlock *End = Fn->createBlock(Tag + ".bs.end");
      B.createBr(Hdr);

      B.setInsertPoint(Hdr);
      PhiInst *Lo = B.createPhi(I32, Tag + ".lo");
      PhiInst *Hi = B.createPhi(I32, Tag + ".hi");
      Lo->addIncoming(B.getInt32(0), Head);
      Hi->addIncoming(HalfV, Head);
      Value *Cont = B.createICmp(ICmpPred::SLT, Lo, Hi, Tag + ".cont");
      B.createCondBr(Cont, Body, End);

      B.setInsertPoint(Body);
      Value *Mid = B.createAShr(B.createAdd(Lo, Hi), B.getInt32(1),
                                Tag + ".mid");
      Value *Probe = B.createLoadAt(
          Sh, B.createAdd(OtherBase, Mid, Tag + ".probeidx"), Tag + ".probe");
      // lower_bound: probe < elem; upper_bound: probe <= elem.
      Value *Goes = B.createICmp(AIsSelf ? ICmpPred::SLT : ICmpPred::SLE,
                                 Probe, Elem, Tag + ".goes");
      Value *MidP1 = B.createAdd(Mid, B.getInt32(1));
      Value *NewLo = B.createSelect(Goes, MidP1, Lo, Tag + ".newlo");
      Value *NewHi = B.createSelect(Goes, Hi, Mid, Tag + ".newhi");
      BasicBlock *BodyEnd = B.getInsertBlock();
      B.createBr(Hdr);
      Lo->addIncoming(NewLo, BodyEnd);
      Hi->addIncoming(NewHi, BodyEnd);

      B.setInsertPoint(End);
      Value *OutIdx = B.createAdd(Pos, Lo, Tag + ".outidx");
      B.createBr(Join);
      return {OutIdx, Elem, End};
    };
    SideResult RA = EmitSide(ASide, /*AIsSelf=*/true, "a");
    SideResult RB = EmitSide(BSide, /*AIsSelf=*/false, "b");

    B.setInsertPoint(Join);
    PhiInst *OutIdx = B.createPhi(I32, "outidx");
    OutIdx->addIncoming(RA.OutIdx, RA.EndBB);
    OutIdx->addIncoming(RB.OutIdx, RB.EndBB);
    PhiInst *Elem = B.createPhi(I32, "elem");
    Elem->addIncoming(RA.Elem, RA.EndBB);
    Elem->addIncoming(RB.Elem, RB.EndBB);
    Value *OutGid = B.createAdd(B.createMul(B.createBlockIdX(), Ntid), OutIdx,
                                "outgid");
    B.createStoreAt(Elem, F->getArg(1), OutGid);
    B.createRet();
    return F;
  }

  std::vector<uint64_t> setup(GlobalMemory &Mem) const override {
    unsigned N = kGridDim * BlockSize;
    uint64_t In = Mem.allocate(N * 4, "in");
    uint64_t Out = Mem.allocate(N * 4, "out");
    Mem.fillI32(In, makeInput());
    return {In, Out};
  }

  bool validate(const GlobalMemory &Mem, const std::vector<uint64_t> &Args,
                std::string *Why) const override {
    unsigned N = kGridDim * BlockSize;
    unsigned Half = BlockSize / 2;
    std::vector<int32_t> In = makeInput();
    std::vector<int32_t> Got = Mem.dumpI32(Args[1], N);
    for (unsigned Blk = 0; Blk < kGridDim; ++Blk) {
      std::vector<int32_t> Want(BlockSize);
      auto First = In.begin() + Blk * BlockSize;
      std::merge(First, First + Half, First + Half, First + BlockSize,
                 Want.begin());
      for (unsigned I = 0; I < BlockSize; ++I)
        if (Got[Blk * BlockSize + I] != Want[I]) {
          if (Why)
            *Why = "PCM: merged bucket differs from std::merge";
          return false;
        }
    }
    return true;
  }

private:
  std::vector<int32_t> makeInput() const {
    // Each bucket half is pre-sorted (PCM merges sorted buckets).
    unsigned N = kGridDim * BlockSize;
    unsigned Half = BlockSize / 2;
    std::vector<int32_t> In(N);
    RNG Rng(0x9c4 + BlockSize);
    for (unsigned I = 0; I < N; ++I)
      In[I] = static_cast<int32_t>(Rng.nextInRange(-5000, 5000));
    for (unsigned Blk = 0; Blk < kGridDim; ++Blk) {
      auto First = In.begin() + Blk * BlockSize;
      std::sort(First, First + Half);
      std::sort(First + Half, First + BlockSize);
    }
    return In;
  }

  unsigned BlockSize;
};

} // namespace

namespace darm {
namespace kernels_detail {
std::unique_ptr<Benchmark> createPCM(unsigned BlockSize) {
  return std::make_unique<PCMBenchmark>(BlockSize);
}
} // namespace kernels_detail
} // namespace darm
