//===- NQueens.cpp - NQU: n-queens backtracking solver -----------------------------===//
//
// The GPGPU-sim suite's n-queens kernel (§VI-A): each thread owns a
// two-row board prefix and counts completions with an iterative
// backtracking loop over a shared-memory stack. The loop body is a
// divergent if-then-elseif-then chain (backtrack / advance / place) —
// the paper's showcase for *region replication*, since the "advance" block
// can meld into the place/backtrack region.
//
// We use N = 8 (92 solutions) so every run cross-checks a well-known
// constant in addition to the per-thread host reference.
//
//===----------------------------------------------------------------------===//

#include "darm/kernels/Benchmark.h"

#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/Module.h"
#include "darm/kernels/LoopHelper.h"

using namespace darm;

namespace {

constexpr unsigned kGridDim = 2;
constexpr int kN = 8; // board size; 8x8 has 92 solutions

/// Host reference: count completions of the prefix (row0=C0, row1=C1)
/// with the same iterative algorithm the kernel runs.
int32_t hostSolve(int C0, int C1) {
  if (C0 == C1 || C0 == C1 + 1 || C0 == C1 - 1)
    return 0;
  int32_t Count = 0;
  int Stack[kN];
  uint32_t MC = (1u << C0) | (1u << C1);
  uint32_t MD1 = (1u << (0 + C0)) | (1u << (1 + C1));
  uint32_t MD2 = (1u << (0 - C0 + kN)) | (1u << (1 - C1 + kN));
  int Sp = 2, Col = 0;
  while (Sp >= 2) {
    if (Col >= kN) {
      --Sp;
      if (Sp < 2)
        break;
      int PC = Stack[Sp];
      MC ^= 1u << PC;
      MD1 ^= 1u << (Sp + PC);
      MD2 ^= 1u << (Sp - PC + kN);
      Col = PC + 1;
      continue;
    }
    bool Conflict = ((MC >> Col) & 1) || ((MD1 >> (Sp + Col)) & 1) ||
                    ((MD2 >> (Sp - Col + kN)) & 1);
    if (Conflict) {
      ++Col;
      continue;
    }
    if (Sp == kN - 1) {
      ++Count;
      ++Col;
      continue;
    }
    Stack[Sp] = Col;
    MC |= 1u << Col;
    MD1 |= 1u << (Sp + Col);
    MD2 |= 1u << (Sp - Col + kN);
    ++Sp;
    Col = 0;
  }
  return Count;
}

class NQueensBenchmark : public Benchmark {
public:
  explicit NQueensBenchmark(unsigned BlockSize) : BlockSize(BlockSize) {}

  std::string name() const override { return "NQU"; }
  LaunchParams launch() const override { return {kGridDim, BlockSize}; }

  Function *build(Module &M) const override {
    Context &Ctx = M.getContext();
    Type *I32 = Ctx.getInt32Ty();
    Type *GPtr = Ctx.getPointerTy(I32, AddressSpace::Global);
    Function *F =
        M.createFunction("nqueens", Ctx.getVoidTy(), {{GPtr, "counts"}});
    SharedArray *Stack = F->createSharedArray(I32, BlockSize * kN, "stack");

    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *Solve = F->createBlock("solve");
    BasicBlock *Out = F->createBlock("out");
    IRBuilder B(Ctx, Entry);
    Value *Tid = B.createThreadIdX();
    Value *Gid = B.createAdd(
        B.createMul(B.createBlockIdX(), B.createBlockDimX()), Tid, "gid");
    Value *NV = B.getInt32(kN);
    Value *One = B.getInt32(1);

    // Prefix from the thread id; threads >= N*N (and invalid prefixes)
    // contribute zero.
    Value *C0 = B.createSDiv(Tid, NV, "c0");
    Value *C1 = B.createSRem(Tid, NV, "c1");
    Value *InRange =
        B.createICmp(ICmpPred::SLT, Tid, B.getInt32(kN * kN), "inrange");
    Value *D = B.createSub(C0, C1, "d");
    Value *D2 = B.createMul(D, D, "d2");
    Value *NoClash = B.createAnd(
        B.createICmp(ICmpPred::NE, D2, B.getInt32(0)),
        B.createICmp(ICmpPred::NE, D2, B.getInt32(1)), "noclash");
    Value *Valid = B.createAnd(InRange, NoClash, "valid");
    B.createCondBr(Valid, Solve, Out);

    B.setInsertPoint(Solve);
    // Initial masks from the two prefix rows.
    Value *MC0 = B.createOr(B.createShl(One, C0), B.createShl(One, C1));
    Value *MD10 = B.createOr(B.createShl(One, C0),
                             B.createShl(One, B.createAdd(One, C1)));
    Value *MD20 = B.createOr(
        B.createShl(One, B.createAdd(B.createSub(B.getInt32(0), C0), NV)),
        B.createShl(One, B.createAdd(B.createSub(One, C1), NV)));
    Value *StackBase = B.createMul(Tid, NV, "stackbase");

    // while (sp >= 2) { backtrack | advance | place }
    BasicBlock *Hdr = F->createBlock("loop.hdr");
    BasicBlock *Body = F->createBlock("loop.body");
    BasicBlock *Done = F->createBlock("loop.done");
    B.createBr(Hdr);
    B.setInsertPoint(Hdr);
    PhiInst *Sp = B.createPhi(I32, "sp");
    PhiInst *Col = B.createPhi(I32, "col");
    PhiInst *Cnt = B.createPhi(I32, "cnt");
    PhiInst *MC = B.createPhi(I32, "mc");
    PhiInst *MD1 = B.createPhi(I32, "md1");
    PhiInst *MD2 = B.createPhi(I32, "md2");
    Sp->addIncoming(B.getInt32(2), Solve);
    Col->addIncoming(B.getInt32(0), Solve);
    Cnt->addIncoming(B.getInt32(0), Solve);
    MC->addIncoming(MC0, Solve);
    MD1->addIncoming(MD10, Solve);
    MD2->addIncoming(MD20, Solve);
    Value *Live = B.createICmp(ICmpPred::SGE, Sp, B.getInt32(2), "live");
    B.createCondBr(Live, Body, Done);

    B.setInsertPoint(Body);
    Value *RowFull = B.createICmp(ICmpPred::SGE, Col, NV, "rowfull");
    BasicBlock *Backtrack = F->createBlock("backtrack");
    BasicBlock *TryCol = F->createBlock("trycol");
    BasicBlock *Next = F->createBlock("next");
    B.createCondBr(RowFull, Backtrack, TryCol);

    // Backtrack: pop the stack and resume scanning after the popped col.
    B.setInsertPoint(Backtrack);
    Value *SpM1 = B.createSub(Sp, One, "spm1");
    Value *PC = B.createLoadAt(Stack, B.createAdd(StackBase, SpM1), "pc");
    Value *BMC = B.createXor(MC, B.createShl(One, PC));
    Value *BMD1 = B.createXor(MD1, B.createShl(One, B.createAdd(SpM1, PC)));
    Value *BMD2 = B.createXor(
        MD1 == nullptr ? MD2 : MD2,
        B.createShl(One, B.createAdd(B.createSub(SpM1, PC), NV)));
    Value *BCol = B.createAdd(PC, One, "bcol");
    B.createBr(Next);

    // Try the current column: advance on conflict, else place or count.
    B.setInsertPoint(TryCol);
    Value *Bit = B.createShl(One, Col, "bit");
    Value *H1 = B.createAnd(MC, Bit);
    Value *H2 = B.createAnd(MD1, B.createShl(One, B.createAdd(Sp, Col)));
    Value *H3 = B.createAnd(
        MD2, B.createShl(One, B.createAdd(B.createSub(Sp, Col), NV)));
    Value *Conflict = B.createICmp(
        ICmpPred::NE, B.createOr(B.createOr(H1, H2), H3), B.getInt32(0),
        "conflict");
    BasicBlock *Advance = F->createBlock("advance");
    BasicBlock *Place = F->createBlock("place");
    B.createCondBr(Conflict, Advance, Place);

    B.setInsertPoint(Advance);
    Value *ACol = B.createAdd(Col, One, "acol");
    B.createBr(Next);

    B.setInsertPoint(Place);
    Value *LastRow =
        B.createICmp(ICmpPred::EQ, Sp, B.getInt32(kN - 1), "lastrow");
    BasicBlock *Found = F->createBlock("found");
    BasicBlock *Push = F->createBlock("push");
    B.createCondBr(LastRow, Found, Push);

    B.setInsertPoint(Found);
    Value *FCnt = B.createAdd(Cnt, One, "fcnt");
    Value *FCol = B.createAdd(Col, One, "fcol");
    B.createBr(Next);

    B.setInsertPoint(Push);
    B.createStoreAt(Col, Stack, B.createAdd(StackBase, Sp));
    // Setting a known-clear bit with xor keeps push and backtrack
    // instruction-compatible (both toggle), as hand-written kernels do.
    Value *PMC = B.createXor(MC, Bit);
    Value *PMD1 = B.createXor(MD1, B.createShl(One, B.createAdd(Sp, Col)));
    Value *PMD2 = B.createXor(
        MD2, B.createShl(One, B.createAdd(B.createSub(Sp, Col), NV)));
    Value *PSp = B.createAdd(Sp, One, "psp");
    B.createBr(Next);

    // Merge the four paths and loop.
    B.setInsertPoint(Next);
    auto MakeMerge = [&](const std::string &Nm, Value *VB, Value *VA,
                         Value *VF, Value *VP, Value *Base) {
      PhiInst *P = B.createPhi(I32, Nm);
      P->addIncoming(VB ? VB : Base, Backtrack);
      P->addIncoming(VA ? VA : Base, Advance);
      P->addIncoming(VF ? VF : Base, Found);
      P->addIncoming(VP ? VP : Base, Push);
      return P;
    };
    Value *NSp = MakeMerge("nsp", SpM1, nullptr, nullptr, PSp, Sp);
    Value *NCol =
        MakeMerge("ncol", BCol, ACol, FCol, B.getInt32(0), Col);
    Value *NCnt = MakeMerge("ncnt", nullptr, nullptr, FCnt, nullptr, Cnt);
    Value *NMC = MakeMerge("nmc", BMC, nullptr, nullptr, PMC, MC);
    Value *NMD1 = MakeMerge("nmd1", BMD1, nullptr, nullptr, PMD1, MD1);
    Value *NMD2 = MakeMerge("nmd2", BMD2, nullptr, nullptr, PMD2, MD2);
    B.createBr(Hdr);
    Sp->addIncoming(NSp, Next);
    Col->addIncoming(NCol, Next);
    Cnt->addIncoming(NCnt, Next);
    MC->addIncoming(NMC, Next);
    MD1->addIncoming(NMD1, Next);
    MD2->addIncoming(NMD2, Next);

    B.setInsertPoint(Done);
    B.createBr(Out);
    B.setInsertPoint(Out);
    PhiInst *Result = B.createPhi(I32, "result");
    Result->addIncoming(Cnt, Done);
    Result->addIncoming(B.getInt32(0), Entry);
    B.createStoreAt(Result, F->getArg(0), Gid);
    B.createRet();
    return F;
  }

  std::vector<uint64_t> setup(GlobalMemory &Mem) const override {
    uint64_t Counts = Mem.allocate(kGridDim * BlockSize * 4, "counts");
    return {Counts};
  }

  bool validate(const GlobalMemory &Mem, const std::vector<uint64_t> &Args,
                std::string *Why) const override {
    std::vector<int32_t> Got =
        Mem.dumpI32(Args[0], kGridDim * BlockSize);
    int64_t Total = 0;
    for (unsigned Blk = 0; Blk < kGridDim; ++Blk)
      for (unsigned T = 0; T < BlockSize; ++T) {
        int32_t Want = (T < kN * kN)
                           ? hostSolve(static_cast<int>(T) / kN,
                                       static_cast<int>(T) % kN)
                           : 0;
        int32_t Have = Got[Blk * BlockSize + T];
        if (Have != Want) {
          if (Why)
            *Why = "NQU: per-prefix solution count differs";
          return false;
        }
        if (Blk == 0)
          Total += Have;
      }
    if (Total != 92) {
      if (Why)
        *Why = "NQU: total 8-queens solutions != 92";
      return false;
    }
    return true;
  }

private:
  unsigned BlockSize;
};

} // namespace

namespace darm {
namespace kernels_detail {
std::unique_ptr<Benchmark> createNQueens(unsigned BlockSize) {
  return std::make_unique<NQueensBenchmark>(BlockSize);
}
} // namespace kernels_detail
} // namespace darm
