//===- Benchmark.cpp - Workload registry ------------------------------------------===//

#include "darm/kernels/Benchmark.h"

#include "darm/ir/Function.h"
#include "darm/sim/Simulator.h"

using namespace darm;

namespace darm {
namespace kernels_detail {
// Per-file factories.
std::unique_ptr<Benchmark> createSynthetic(const std::string &, unsigned);
std::unique_ptr<Benchmark> createBitonic(unsigned BlockSize);
std::unique_ptr<Benchmark> createPCM(unsigned BlockSize);
std::unique_ptr<Benchmark> createMergeSort(unsigned BlockSize);
std::unique_ptr<Benchmark> createLUD(unsigned BlockSize);
std::unique_ptr<Benchmark> createNQueens(unsigned BlockSize);
std::unique_ptr<Benchmark> createSRAD(unsigned BlockSize);
std::unique_ptr<Benchmark> createDCT(unsigned BlockSize);
} // namespace kernels_detail
} // namespace darm

std::vector<std::string> darm::realBenchmarkNames() {
  return {"BIT", "PCM", "MS", "LUD", "NQU", "SRAD", "DCT"};
}

std::vector<std::string> darm::syntheticBenchmarkNames() {
  return {"SB1", "SB1R", "SB2", "SB2R", "SB3", "SB3R", "SB4", "SB4R"};
}

std::vector<unsigned> darm::paperBlockSizes(const std::string &Name) {
  if (Name == "LUD")
    return {16, 32, 64, 128};
  if (Name == "NQU")
    return {64, 96, 128, 256};
  if (Name == "SRAD")
    return {256, 1024}; // 16x16 and 32x32 thread blocks
  if (Name == "DCT")
    return {16, 64, 256}; // 4x4, 8x8, 16x16
  return {32, 64, 128, 256}; // BIT, PCM, MS and all synthetics
}

std::unique_ptr<Benchmark> darm::createBenchmark(const std::string &Name,
                                                 unsigned BlockSize) {
  using namespace kernels_detail;
  if (Name == "BIT")
    return createBitonic(BlockSize);
  if (Name == "PCM")
    return createPCM(BlockSize);
  if (Name == "MS")
    return createMergeSort(BlockSize);
  if (Name == "LUD")
    return createLUD(BlockSize);
  if (Name == "NQU")
    return createNQueens(BlockSize);
  if (Name == "SRAD")
    return createSRAD(BlockSize);
  if (Name == "DCT")
    return createDCT(BlockSize);
  return createSynthetic(Name, BlockSize);
}

BenchRun darm::runBenchmark(const Benchmark &B, Function &Kern) {
  // One decode serves every launch of a multi-launch benchmark.
  SimEngine Engine(Kern);
  return runBenchmark(B, Engine);
}

BenchRun darm::runBenchmark(const Benchmark &B, SimEngine &Engine) {
  BenchRun R;
  GlobalMemory Mem;
  std::vector<uint64_t> Base = B.setup(Mem);
  for (unsigned L = 0, E = B.numLaunches(); L != E; ++L) {
    std::vector<uint64_t> Args = B.argsForLaunch(L, Base);
    SimStats S = Engine.run(B.launch(), Args, Mem);
    R.PerLaunch.push_back(S);
    R.Total += S;
  }
  R.Valid = B.validate(Mem, Base, &R.Why);
  if (R.Valid)
    R.Why.clear();
  R.MemHash = hashMemoryImage(Mem);
  return R;
}

bool darm::runAndValidate(const Benchmark &B, Function &Kern, SimStats &Stats,
                          std::string *Why) {
  BenchRun R = runBenchmark(B, Kern);
  Stats += R.Total;
  if (Why)
    *Why = R.Why;
  return R.Valid;
}

uint64_t darm::hashMemoryImage(const GlobalMemory &Mem) {
  uint64_t H = 1469598103934665603ull; // FNV-1a 64
  for (uint64_t A = 0; A < Mem.size(); ++A) {
    H ^= Mem.load(A, 1);
    H *= 1099511628211ull;
  }
  return H;
}
