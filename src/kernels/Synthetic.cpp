//===- Synthetic.cpp - SB1..SB4 (+-R) synthetic benchmarks ----------------------===//
//
// The synthetic control-flow patterns of Fig. 7 (§VI-A): every kernel is
// two nested loops whose inner body contains a divergent region of the
// given shape, computing on shared memory. The plain variants use
// identical computations in the corresponding arms; the -R variants use
// distinct instruction sequences, which defeats tail merging and partially
// defeats alignment.
//
//   SB1  diamond              if c { W } else { W }
//   SB2  if-then per arm      if c { if p { W } } else { if q { W } }
//   SB3  two regions per arm  ... followed by a second if-then pair
//   SB4  3-way divergence     if c { W } else if d { W } else { W }
//
//===----------------------------------------------------------------------===//

#include "darm/kernels/Benchmark.h"

#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/Module.h"
#include "darm/kernels/LoopHelper.h"
#include "darm/support/RNG.h"

#include <functional>

using namespace darm;

namespace {

constexpr unsigned kOuterIters = 4;
constexpr unsigned kInnerIters = 2;
constexpr unsigned kGridDim = 2;

enum class Pattern { SB1, SB2, SB3, SB4 };

/// Whether thread \p T takes the true path at (it, j).
bool hostCond1(int T, int It, int J) { return (((T ^ (It + J)) & 1) == 0); }

/// One inner-iteration step of the host reference for each pattern.
/// \p X is s[t] on entry; returns the new s[t].
int32_t hostStep(Pattern P, bool Random, int T, int It, int J, int32_t X) {
  bool C1 = hostCond1(T, It, J);
  switch (P) {
  case Pattern::SB1:
    if (C1)
      return X * 3 + It;
    return Random ? (X * 5 - It) : (X * 3 + It);
  case Pattern::SB2:
    if (C1)
      return X > 0 ? X * 2 + 3 : X;
    if (X < 0)
      return Random ? ((X ^ 5) - 3) : (X * 2 + 3);
    return X;
  case Pattern::SB3: {
    int32_t S = X;
    if (C1) {
      if (S > 0)
        S = S * 2 + 1;
      if (S > 8)
        S = S * 3 + It;
    } else {
      if (S < 0)
        S = Random ? ((S ^ 9) + 2) : (S * 2 + 1);
      if (S < 8)
        S = Random ? ((S | 3) - It) : (S * 3 + It);
    }
    return S;
  }
  case Pattern::SB4: {
    int M = ((T + It + J) % 3 + 3) % 3;
    if (M == 0)
      return X * 4 + It;
    if (M == 1)
      return Random ? (X * 6 - It) : (X * 4 + It);
    return Random ? ((X ^ It) + 9) : (X * 4 + It);
  }
  }
  return X;
}

class SyntheticBenchmark : public Benchmark {
public:
  SyntheticBenchmark(Pattern P, bool Random, unsigned BlockSize)
      : P(P), Random(Random), BlockSize(BlockSize) {}

  std::string name() const override {
    static const char *Names[] = {"SB1", "SB2", "SB3", "SB4"};
    return std::string(Names[static_cast<int>(P)]) + (Random ? "R" : "");
  }

  LaunchParams launch() const override { return {kGridDim, BlockSize}; }

  Function *build(Module &M) const override;

  std::vector<uint64_t> setup(GlobalMemory &Mem) const override {
    unsigned N = kGridDim * BlockSize;
    uint64_t Data = Mem.allocate(N * 4, "data");
    Mem.fillI32(Data, makeInput());
    return {Data};
  }

  bool validate(const GlobalMemory &Mem, const std::vector<uint64_t> &Args,
                std::string *Why) const override {
    unsigned N = kGridDim * BlockSize;
    std::vector<int32_t> Got = Mem.dumpI32(Args[0], N);
    std::vector<int32_t> Want = makeInput();
    for (unsigned B = 0; B < kGridDim; ++B)
      for (unsigned T = 0; T < BlockSize; ++T) {
        int32_t &S = Want[B * BlockSize + T];
        for (unsigned It = 0; It < kOuterIters; ++It)
          for (unsigned J = 0; J < kInnerIters; ++J)
            S = hostStep(P, Random, static_cast<int>(T),
                         static_cast<int>(It), static_cast<int>(J), S);
      }
    if (Got != Want) {
      if (Why)
        *Why = name() + ": simulated output differs from host reference";
      return false;
    }
    return true;
  }

private:
  std::vector<int32_t> makeInput() const {
    unsigned N = kGridDim * BlockSize;
    std::vector<int32_t> In(N);
    RNG Rng(0x5b1d + static_cast<int>(P) * 31 + Random);
    for (unsigned I = 0; I < N; ++I)
      In[I] = static_cast<int32_t>(Rng.nextInRange(-50, 50));
    return In;
  }

  Pattern P;
  bool Random;
  unsigned BlockSize;
};

/// Emits `s[tid] = <expr>(x, it)` straight-line arm bodies. Which
/// computation depends on the pattern/arm/variant, mirroring hostStep.
struct ArmEmitter {
  IRBuilder &B;
  Value *ShPtrTid; // &sh[tid]
  Value *It;

  void store(Value *V) { B.createStore(V, ShPtrTid); }

  Value *mulAdd(Value *X, int32_t K, Value *Add) {
    return B.createAdd(B.createMul(X, B.getInt32(K)), Add);
  }
  Value *mulSub(Value *X, int32_t K, Value *Sub) {
    return B.createSub(B.createMul(X, B.getInt32(K)), Sub);
  }
};

Function *SyntheticBenchmark::build(Module &M) const {
  Context &Ctx = M.getContext();
  Type *I32 = Ctx.getInt32Ty();
  Type *GPtr = Ctx.getPointerTy(I32, AddressSpace::Global);
  Function *F =
      M.createFunction(name() + "_kernel", Ctx.getVoidTy(), {{GPtr, "data"}});
  SharedArray *Sh = F->createSharedArray(I32, BlockSize, "sh");

  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(Ctx, Entry);
  Value *Tid = B.createThreadIdX();
  Value *Ntid = B.createBlockDimX();
  Value *Cta = B.createBlockIdX();
  Value *Gid = B.createAdd(B.createMul(Cta, Ntid), Tid, "gid");

  // Stage into shared memory.
  Value *Init = B.createLoadAt(F->getArg(0), Gid, "init");
  Value *ShTid = B.createGep(Sh, Tid, "shtid");
  B.createStore(Init, ShTid);
  B.createBarrier();

  ForLoop Outer(B, B.getInt32(0), ICmpPred::SLT,
                B.getInt32(static_cast<int32_t>(kOuterIters)), "it");
  ForLoop Inner(B, B.getInt32(0), ICmpPred::SLT,
                B.getInt32(static_cast<int32_t>(kInnerIters)), "j");
  Value *It = Outer.iv();
  Value *J = Inner.iv();

  // c1 = ((tid ^ (it + j)) & 1) == 0  — divergent, alternating per lane.
  Value *Mix = B.createXor(Tid, B.createAdd(It, J), "mix");
  Value *C1 = B.createICmp(ICmpPred::EQ, B.createAnd(Mix, B.getInt32(1)),
                           B.getInt32(0), "c1");
  Value *X = B.createLoad(ShTid, "x");

  BasicBlock *Join = F->createBlock("join");
  ArmEmitter AE{B, ShTid, It};

  auto EmitSB12Arm = [&](bool TruePath) {
    // SB1: plain store arm. SB2: nested if-then around the store.
    if (P == Pattern::SB1) {
      if (TruePath || !Random)
        AE.store(AE.mulAdd(X, 3, It));
      else
        AE.store(AE.mulSub(X, 5, It));
      B.createBr(Join);
      return;
    }
    // SB2.
    BasicBlock *ThenBB = F->createBlock(TruePath ? "t.then" : "f.then");
    BasicBlock *ArmJoin = F->createBlock(TruePath ? "t.join" : "f.join");
    Value *P2 = B.createICmp(TruePath ? ICmpPred::SGT : ICmpPred::SLT, X,
                             B.getInt32(0));
    B.createCondBr(P2, ThenBB, ArmJoin);
    B.setInsertPoint(ThenBB);
    if (TruePath || !Random)
      AE.store(B.createAdd(B.createMul(X, B.getInt32(2)), B.getInt32(3)));
    else
      AE.store(B.createSub(B.createXor(X, B.getInt32(5)), B.getInt32(3)));
    B.createBr(ArmJoin);
    B.setInsertPoint(ArmJoin);
    B.createBr(Join);
  };

  auto EmitSB3Arm = [&](bool TruePath) {
    // First if-then region.
    BasicBlock *Then1 = F->createBlock(TruePath ? "t.then1" : "f.then1");
    BasicBlock *Mid = F->createBlock(TruePath ? "t.mid" : "f.mid");
    Value *P1 = B.createICmp(TruePath ? ICmpPred::SGT : ICmpPred::SLT, X,
                             B.getInt32(0));
    B.createCondBr(P1, Then1, Mid);
    B.setInsertPoint(Then1);
    if (TruePath || !Random)
      AE.store(B.createAdd(B.createMul(X, B.getInt32(2)), B.getInt32(1)));
    else
      AE.store(B.createAdd(B.createXor(X, B.getInt32(9)), B.getInt32(2)));
    B.createBr(Mid);

    // Single-block subgraph between the two regions: reload.
    B.setInsertPoint(Mid);
    Value *Y = B.createLoad(ShTid, TruePath ? "ty" : "fy");

    // Second if-then region.
    BasicBlock *Then2 = F->createBlock(TruePath ? "t.then2" : "f.then2");
    BasicBlock *ArmJoin = F->createBlock(TruePath ? "t.join" : "f.join");
    Value *P2 = B.createICmp(TruePath ? ICmpPred::SGT : ICmpPred::SLT, Y,
                             B.getInt32(8));
    B.createCondBr(P2, Then2, ArmJoin);
    B.setInsertPoint(Then2);
    if (TruePath || !Random)
      AE.store(B.createAdd(B.createMul(Y, B.getInt32(3)), It));
    else
      AE.store(B.createSub(B.createOr(Y, B.getInt32(3)), It));
    B.createBr(ArmJoin);
    B.setInsertPoint(ArmJoin);
    B.createBr(Join);
  };

  if (P == Pattern::SB4) {
    // m = (tid + it + j) % 3; 3-way: m==0 | m==1 | else.
    Value *Sum = B.createAdd(B.createAdd(Tid, It), J);
    Value *Mod = B.createSRem(Sum, B.getInt32(3), "m");
    Value *IsW1 = B.createICmp(ICmpPred::EQ, Mod, B.getInt32(0));
    BasicBlock *W1 = F->createBlock("w1");
    BasicBlock *ElseHead = F->createBlock("elsehead");
    B.createCondBr(IsW1, W1, ElseHead);

    B.setInsertPoint(W1);
    AE.store(AE.mulAdd(X, 4, It));
    B.createBr(Join);

    B.setInsertPoint(ElseHead);
    Value *IsW2 = B.createICmp(ICmpPred::EQ, Mod, B.getInt32(1));
    BasicBlock *W2 = F->createBlock("w2");
    BasicBlock *W3 = F->createBlock("w3");
    B.createCondBr(IsW2, W2, W3);
    B.setInsertPoint(W2);
    if (!Random)
      AE.store(AE.mulAdd(X, 4, It));
    else
      AE.store(AE.mulSub(X, 6, It));
    B.createBr(Join);
    B.setInsertPoint(W3);
    if (!Random)
      AE.store(AE.mulAdd(X, 4, It));
    else
      AE.store(B.createAdd(B.createXor(X, It), B.getInt32(9)));
    B.createBr(Join);
  } else {
    BasicBlock *TrueArm = F->createBlock("truearm");
    BasicBlock *FalseArm = F->createBlock("falsearm");
    B.createCondBr(C1, TrueArm, FalseArm);
    B.setInsertPoint(TrueArm);
    if (P == Pattern::SB3)
      EmitSB3Arm(true);
    else
      EmitSB12Arm(true);
    B.setInsertPoint(FalseArm);
    if (P == Pattern::SB3)
      EmitSB3Arm(false);
    else
      EmitSB12Arm(false);
  }

  B.setInsertPoint(Join);
  B.createBarrier();
  Inner.close(B.createAdd(J, B.getInt32(1)));
  Outer.close(B.createAdd(It, B.getInt32(1)));

  // Write back.
  Value *Fin = B.createLoad(ShTid, "fin");
  B.createStoreAt(Fin, F->getArg(0), Gid);
  B.createRet();
  return F;
}

} // namespace

// Registry glue lives in Benchmark.cpp; expose a factory hook.
namespace darm {
namespace kernels_detail {
std::unique_ptr<Benchmark> createSynthetic(const std::string &Name,
                                           unsigned BlockSize) {
  for (int PI = 0; PI < 4; ++PI)
    for (int R = 0; R < 2; ++R) {
      SyntheticBenchmark Probe(static_cast<Pattern>(PI), R != 0, BlockSize);
      if (Probe.name() == Name)
        return std::make_unique<SyntheticBenchmark>(static_cast<Pattern>(PI),
                                                    R != 0, BlockSize);
    }
  return nullptr;
}
} // namespace kernels_detail
} // namespace darm
