//===- Bitonic.cpp - BIT: bitonic sort (the paper's running example) -------------===//
//
// Fig. 1 of the paper: each thread block sorts one bucket in shared
// memory with a bitonic network. The (tid & k) == 0 branch is divergent at
// every block size, and its two arms are isomorphic if-then regions doing
// compare-and-swap on LDS — the flagship region-region meld.
//
// Paper input: 2^26 elements; here buckets are blockDim-sized and the
// bucket count is fixed, which preserves the divergence behaviour per
// block while keeping simulation time sane (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "darm/kernels/Benchmark.h"

#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/Module.h"
#include "darm/kernels/LoopHelper.h"
#include "darm/support/RNG.h"

#include <algorithm>

using namespace darm;

namespace {

constexpr unsigned kGridDim = 4;

class BitonicBenchmark : public Benchmark {
public:
  explicit BitonicBenchmark(unsigned BlockSize) : BlockSize(BlockSize) {}

  std::string name() const override { return "BIT"; }
  LaunchParams launch() const override { return {kGridDim, BlockSize}; }

  Function *build(Module &M) const override {
    Context &Ctx = M.getContext();
    Type *I32 = Ctx.getInt32Ty();
    Type *GPtr = Ctx.getPointerTy(I32, AddressSpace::Global);
    Function *F =
        M.createFunction("bitonic_sort", Ctx.getVoidTy(), {{GPtr, "values"}});
    SharedArray *Sh = F->createSharedArray(I32, BlockSize, "shared");

    BasicBlock *Entry = F->createBlock("entry");
    IRBuilder B(Ctx, Entry);
    Value *Tid = B.createThreadIdX();
    Value *Ntid = B.createBlockDimX();
    Value *Gid = B.createAdd(B.createMul(B.createBlockIdX(), Ntid), Tid,
                             "gid");
    B.createStoreAt(B.createLoadAt(F->getArg(0), Gid, "in"), Sh, Tid);
    B.createBarrier();

    // for (k = 2; k <= blockDim; k *= 2)
    ForLoop KLoop(B, B.getInt32(2), ICmpPred::SLE, Ntid, "k");
    Value *K = KLoop.iv();
    // for (j = k / 2; j > 0; j /= 2)
    ForLoop JLoop(B, B.createAShr(K, B.getInt32(1)), ICmpPred::SGT,
                  B.getInt32(0), "j");
    Value *J = JLoop.iv();

    Value *Ixj = B.createXor(Tid, J, "ixj");
    Value *Outer = B.createICmp(ICmpPred::SGT, Ixj, Tid, "outer");
    BasicBlock *Work = F->createBlock("work");
    BasicBlock *Sync = F->createBlock("sync");
    B.createCondBr(Outer, Work, Sync);

    B.setInsertPoint(Work);
    Value *Dir = B.createAnd(Tid, K, "dir");
    Value *Asc = B.createICmp(ICmpPred::EQ, Dir, B.getInt32(0), "asc");
    BasicBlock *AscBB = F->createBlock("asc.cmp");
    BasicBlock *DescBB = F->createBlock("desc.cmp");
    B.createCondBr(Asc, AscBB, DescBB);

    auto EmitCompareSwap = [&](BasicBlock *Head, ICmpPred Pred,
                               const std::string &Tag) {
      B.setInsertPoint(Head);
      Value *PIxj = B.createGep(Sh, Ixj);
      Value *PTid = B.createGep(Sh, Tid);
      Value *A = B.createLoad(PIxj, Tag + ".a");
      Value *C = B.createLoad(PTid, Tag + ".b");
      Value *Cmp = B.createICmp(Pred, A, C, Tag + ".cmp");
      BasicBlock *Swap = F->createBlock(Tag + ".swap");
      BasicBlock *End = F->createBlock(Tag + ".end");
      B.createCondBr(Cmp, Swap, End);
      B.setInsertPoint(Swap);
      B.createStore(A, PTid);
      B.createStore(C, PIxj);
      B.createBr(End);
      B.setInsertPoint(End);
      B.createBr(Sync);
    };
    // if (shared[ixj] < shared[tid]) swap  — ascending half
    EmitCompareSwap(AscBB, ICmpPred::SLT, "asc");
    // if (shared[ixj] > shared[tid]) swap  — descending half
    EmitCompareSwap(DescBB, ICmpPred::SGT, "desc");

    B.setInsertPoint(Sync);
    B.createBarrier();
    JLoop.close(B.createAShr(J, B.getInt32(1)));
    KLoop.close(B.createShl(K, B.getInt32(1)));

    B.createStoreAt(B.createLoadAt(Sh, Tid, "sorted"), F->getArg(0), Gid);
    B.createRet();
    return F;
  }

  std::vector<uint64_t> setup(GlobalMemory &Mem) const override {
    unsigned N = kGridDim * BlockSize;
    uint64_t Data = Mem.allocate(N * 4, "values");
    Mem.fillI32(Data, makeInput());
    return {Data};
  }

  bool validate(const GlobalMemory &Mem, const std::vector<uint64_t> &Args,
                std::string *Why) const override {
    unsigned N = kGridDim * BlockSize;
    std::vector<int32_t> Got = Mem.dumpI32(Args[0], N);
    std::vector<int32_t> Want = makeInput();
    // Each block sorts its bucket ascending.
    for (unsigned Blk = 0; Blk < kGridDim; ++Blk)
      std::sort(Want.begin() + Blk * BlockSize,
                Want.begin() + (Blk + 1) * BlockSize);
    if (Got != Want) {
      if (Why)
        *Why = "BIT: buckets are not sorted correctly";
      return false;
    }
    return true;
  }

private:
  std::vector<int32_t> makeInput() const {
    unsigned N = kGridDim * BlockSize;
    std::vector<int32_t> In(N);
    RNG Rng(0xb170 + BlockSize);
    for (unsigned I = 0; I < N; ++I)
      In[I] = static_cast<int32_t>(Rng.nextInRange(-10000, 10000));
    return In;
  }

  unsigned BlockSize;
};

} // namespace

namespace darm {
namespace kernels_detail {
std::unique_ptr<Benchmark> createBitonic(unsigned BlockSize) {
  return std::make_unique<BitonicBenchmark>(BlockSize);
}
} // namespace kernels_detail
} // namespace darm
