//===- MergeSort.cpp - MS: bottom-up parallel merge sort ---------------------------===//
//
// §VI-A: a bottom-up merge sort whose merge step has data-dependent
// control-flow divergence — each thread sequentially merges two adjacent
// sorted runs from `in` to `out`, and the take-left/take-right decision
// diverges per lane every iteration. The two arms are similar
// (load/store/increment), a classic branch-fusion diamond that DARM also
// handles. log2(N) ping-pong launches sort the whole array.
//
//===----------------------------------------------------------------------===//

#include "darm/kernels/Benchmark.h"

#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/Module.h"
#include "darm/kernels/LoopHelper.h"
#include "darm/support/RNG.h"

#include <algorithm>

using namespace darm;

namespace {

constexpr unsigned kTotalElems = 2048;

class MergeSortBenchmark : public Benchmark {
public:
  explicit MergeSortBenchmark(unsigned BlockSize) : BlockSize(BlockSize) {}

  std::string name() const override { return "MS"; }

  LaunchParams launch() const override {
    // One thread per run pair at the finest width; surplus threads are
    // masked out inside the kernel at coarser widths.
    unsigned Threads = kTotalElems / 2;
    return {(Threads + BlockSize - 1) / BlockSize, BlockSize};
  }

  unsigned numLaunches() const override {
    unsigned Passes = 0;
    for (unsigned W = 1; W < kTotalElems; W *= 2)
      ++Passes;
    return Passes;
  }

  std::vector<uint64_t>
  argsForLaunch(unsigned I, const std::vector<uint64_t> &Base) const override {
    // Ping-pong buffers; width doubles per pass.
    uint64_t Src = (I % 2 == 0) ? Base[0] : Base[1];
    uint64_t Dst = (I % 2 == 0) ? Base[1] : Base[0];
    return {Src, Dst, 1u << I, kTotalElems};
  }

  Function *build(Module &M) const override {
    Context &Ctx = M.getContext();
    Type *I32 = Ctx.getInt32Ty();
    Type *GPtr = Ctx.getPointerTy(I32, AddressSpace::Global);
    Function *F = M.createFunction(
        "ms_merge_pass", Ctx.getVoidTy(),
        {{GPtr, "in"}, {GPtr, "out"}, {I32, "width"}, {I32, "n"}});

    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *Active = F->createBlock("active");
    BasicBlock *Done = F->createBlock("done");
    IRBuilder B(Ctx, Entry);
    Value *Tid = B.createThreadIdX();
    Value *Gid = B.createAdd(B.createMul(B.createBlockIdX(),
                                         B.createBlockDimX()),
                             Tid, "gid");
    Value *Width = F->getArg(2);
    Value *N = F->getArg(3);
    Value *Base = B.createMul(Gid, B.createShl(Width, B.getInt32(1)), "base");
    Value *InRange = B.createICmp(ICmpPred::SLT, Base, N, "inrange");
    B.createCondBr(InRange, Active, Done);

    B.setInsertPoint(Active);
    // [base, iend) and [iend, jend) are the two runs.
    Value *IEnd0 = B.createAdd(Base, Width);
    Value *IEnd = B.createSelect(B.createICmp(ICmpPred::SLT, IEnd0, N), IEnd0,
                                 N, "iend");
    Value *JEnd0 = B.createAdd(Base, B.createShl(Width, B.getInt32(1)));
    Value *JEnd = B.createSelect(B.createICmp(ICmpPred::SLT, JEnd0, N), JEnd0,
                                 N, "jend");

    ForLoop KLoop(B, Base, ICmpPred::SLT, JEnd, "k");
    Value *K = KLoop.iv();
    PhiInst *IPhi = nullptr, *JPhi = nullptr;
    {
      // i / j merge cursors carried around the loop: create them in the
      // header block (where K's phi lives).
      IRBuilder HB(Ctx);
      HB.setInsertPoint(cast<Instruction>(K));
      IPhi = HB.createPhi(I32, "i");
      JPhi = HB.createPhi(I32, "j");
      // Incoming from the preheader mirrors K's first entry.
      IPhi->addIncoming(Base, cast<PhiInst>(K)->getIncomingBlock(0));
      JPhi->addIncoming(IEnd, cast<PhiInst>(K)->getIncomingBlock(0));
    }

    // Clamped speculative loads keep both candidates available.
    Value *ISafe = B.createSelect(
        B.createICmp(ICmpPred::SLT, IPhi, IEnd), IPhi, Base, "isafe");
    Value *JSafe = B.createSelect(
        B.createICmp(ICmpPred::SLT, JPhi, JEnd), JPhi, Base, "jsafe");
    Value *LI = B.createLoadAt(F->getArg(0), ISafe, "li");
    Value *LJ = B.createLoadAt(F->getArg(0), JSafe, "lj");
    Value *IValid = B.createICmp(ICmpPred::SLT, IPhi, IEnd, "ivalid");
    Value *JDone = B.createICmp(ICmpPred::SGE, JPhi, JEnd, "jdone");
    Value *LE = B.createICmp(ICmpPred::SLE, LI, LJ, "le");
    Value *Take = B.createAnd(IValid, B.createOr(JDone, LE), "take");

    BasicBlock *TakeI = F->createBlock("take.i");
    BasicBlock *TakeJ = F->createBlock("take.j");
    BasicBlock *Merge = F->createBlock("merge");
    B.createCondBr(Take, TakeI, TakeJ);

    B.setInsertPoint(TakeI);
    B.createStoreAt(LI, F->getArg(1), K);
    Value *INext = B.createAdd(IPhi, B.getInt32(1), "inext");
    B.createBr(Merge);
    B.setInsertPoint(TakeJ);
    B.createStoreAt(LJ, F->getArg(1), K);
    Value *JNext = B.createAdd(JPhi, B.getInt32(1), "jnext");
    B.createBr(Merge);

    B.setInsertPoint(Merge);
    PhiInst *INew = B.createPhi(I32, "i.new");
    INew->addIncoming(INext, TakeI);
    INew->addIncoming(IPhi, TakeJ);
    PhiInst *JNew = B.createPhi(I32, "j.new");
    JNew->addIncoming(JPhi, TakeI);
    JNew->addIncoming(JNext, TakeJ);

    BasicBlock *Latch = B.getInsertBlock();
    KLoop.close(B.createAdd(K, B.getInt32(1)));
    IPhi->addIncoming(INew, Latch);
    JPhi->addIncoming(JNew, Latch);

    B.createBr(Done);
    B.setInsertPoint(Done);
    B.createRet();
    return F;
  }

  std::vector<uint64_t> setup(GlobalMemory &Mem) const override {
    uint64_t A = Mem.allocate(kTotalElems * 4, "bufA");
    uint64_t Bb = Mem.allocate(kTotalElems * 4, "bufB");
    Mem.fillI32(A, makeInput());
    return {A, Bb};
  }

  bool validate(const GlobalMemory &Mem, const std::vector<uint64_t> &Args,
                std::string *Why) const override {
    uint64_t Final = (numLaunches() % 2 == 0) ? Args[0] : Args[1];
    std::vector<int32_t> Got = Mem.dumpI32(Final, kTotalElems);
    std::vector<int32_t> Want = makeInput();
    std::sort(Want.begin(), Want.end());
    if (Got != Want) {
      if (Why)
        *Why = "MS: array is not sorted correctly";
      return false;
    }
    return true;
  }

private:
  std::vector<int32_t> makeInput() const {
    std::vector<int32_t> In(kTotalElems);
    RNG Rng(0x350 + BlockSize);
    for (unsigned I = 0; I < kTotalElems; ++I)
      In[I] = static_cast<int32_t>(Rng.nextInRange(-100000, 100000));
    return In;
  }

  unsigned BlockSize;
};

} // namespace

namespace darm {
namespace kernels_detail {
std::unique_ptr<Benchmark> createMergeSort(unsigned BlockSize) {
  return std::make_unique<MergeSortBenchmark>(BlockSize);
}
} // namespace kernels_detail
} // namespace darm
