//===- SRAD.cpp - SRAD: speckle reducing anisotropic diffusion ---------------------===//
//
// Rodinia's SRAD (§VI-A/VI-B): the kernel contains two
// if-then-else-if-then-else chains. RB branches on thread position and
// block size and touches no memory inside its arms (melding it only adds
// select overhead); RD is a data-dependent 3-way branch over shared-memory
// operations whose outcome is *biased* — the input is constructed so the
// third way is never taken, mirroring the paper's explanation of why DARM
// can lose to branch fusion here (it melds all three paths, paying for one
// that never executes).
//
//===----------------------------------------------------------------------===//

#include "darm/kernels/Benchmark.h"

#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/Module.h"
#include "darm/support/RNG.h"

#include <bit>

using namespace darm;

namespace {

constexpr unsigned kGridDim = 2;
constexpr float kL1 = 0.25f; // d < L1  -> way A (taken)
constexpr float kL2 = 4.0f;  // d < L2  -> way B (taken); else way C (never)

class SRADBenchmark : public Benchmark {
public:
  explicit SRADBenchmark(unsigned BlockSize) : BlockSize(BlockSize) {}

  std::string name() const override { return "SRAD"; }
  LaunchParams launch() const override { return {kGridDim, BlockSize}; }

  Function *build(Module &M) const override {
    Context &Ctx = M.getContext();
    Type *F32 = Ctx.getFloatTy();
    Type *GPtr = Ctx.getPointerTy(F32, AddressSpace::Global);
    Function *F = M.createFunction("srad", Ctx.getVoidTy(),
                                   {{GPtr, "img"}, {GPtr, "coef"}});
    SharedArray *Sh = F->createSharedArray(F32, BlockSize, "sh");
    SharedArray *ShOut = F->createSharedArray(F32, BlockSize, "shout");

    BasicBlock *Entry = F->createBlock("entry");
    IRBuilder B(Ctx, Entry);
    Value *Tid = B.createThreadIdX();
    Value *Ntid = B.createBlockDimX();
    Value *Gid = B.createAdd(B.createMul(B.createBlockIdX(), Ntid), Tid,
                             "gid");
    B.createStoreAt(B.createLoadAt(F->getArg(0), Gid, "pix"), Sh, Tid);
    B.createBarrier();

    // ---- RB: block-size-dependent 3-way chain, pure ALU ----------------
    unsigned Q = BlockSize / 4;
    Value *Pix = B.createLoadAt(Sh, Tid, "p0");
    Value *InQ1 = B.createICmp(ICmpPred::SLT, Tid,
                               B.getInt32(static_cast<int32_t>(Q)), "inq1");
    BasicBlock *RB1 = F->createBlock("rb1");
    BasicBlock *RBElse = F->createBlock("rb.else");
    BasicBlock *RB2 = F->createBlock("rb2");
    BasicBlock *RB3 = F->createBlock("rb3");
    BasicBlock *RBJoin = F->createBlock("rb.join");
    B.createCondBr(InQ1, RB1, RBElse);
    B.setInsertPoint(RB1);
    Value *W1 = B.createFAdd(B.createFMul(Pix, B.getFloat(0.5f)),
                             B.getFloat(1.0f), "w1");
    B.createBr(RBJoin);
    B.setInsertPoint(RBElse);
    Value *InQ2 = B.createICmp(ICmpPred::SLT, Tid,
                               B.getInt32(static_cast<int32_t>(2 * Q)),
                               "inq2");
    B.createCondBr(InQ2, RB2, RB3);
    B.setInsertPoint(RB2);
    Value *W2 = B.createFAdd(B.createFMul(Pix, B.getFloat(0.25f)),
                             B.getFloat(2.0f), "w2");
    B.createBr(RBJoin);
    B.setInsertPoint(RB3);
    Value *W3 = B.createFAdd(B.createFMul(Pix, B.getFloat(0.125f)),
                             B.getFloat(3.0f), "w3");
    B.createBr(RBJoin);
    B.setInsertPoint(RBJoin);
    PhiInst *W = B.createPhi(F32, "w");
    W->addIncoming(W1, RB1);
    W->addIncoming(W2, RB2);
    W->addIncoming(W3, RB3);

    // ---- RD: data-dependent, biased 3-way chain over LDS ----------------
    // d = |sh[t+1] - sh[t]| (wrapping neighbor), biased < L2 by input.
    Value *NIdx = B.createSRem(B.createAdd(Tid, B.getInt32(1)), Ntid,
                               "nidx");
    Value *Nb = B.createLoadAt(Sh, NIdx, "nb");
    Value *Diff = B.createFSub(Nb, Pix, "diff");
    Value *D2 = B.createFMul(Diff, Diff, "d2");
    Value *IsA = B.createFCmp(FCmpPred::OLT, D2, B.getFloat(kL1), "isa");
    BasicBlock *RDA = F->createBlock("rd.a");
    BasicBlock *RDElse = F->createBlock("rd.else");
    BasicBlock *RDB = F->createBlock("rd.b");
    BasicBlock *RDC = F->createBlock("rd.c");
    BasicBlock *RDJoin = F->createBlock("rd.join");
    B.createCondBr(IsA, RDA, RDElse);

    auto EmitWay = [&](BasicBlock *BB, float Scale, float Bias,
                       const std::string &Tag) -> Value * {
      B.setInsertPoint(BB);
      Value *S = B.createLoadAt(Sh, Tid, Tag + ".s");
      Value *R = B.createFAdd(B.createFMul(S, B.getFloat(Scale)),
                              B.createFMul(W, B.getFloat(Bias)), Tag + ".r");
      // Write to a private LDS staging array: keeps an LDS store in the
      // melded region without racing the neighbor reads of other warps.
      B.createStoreAt(R, ShOut, Tid);
      B.createBr(RDJoin);
      return R;
    };
    Value *RA = EmitWay(RDA, 0.9f, 0.1f, "a");
    B.setInsertPoint(RDElse);
    Value *IsB = B.createFCmp(FCmpPred::OLT, D2, B.getFloat(kL2), "isb");
    B.createCondBr(IsB, RDB, RDC);
    Value *RBv = EmitWay(RDB, 0.7f, 0.3f, "b");
    Value *RC = EmitWay(RDC, 0.5f, 0.5f, "c");

    B.setInsertPoint(RDJoin);
    PhiInst *R = B.createPhi(F32, "r");
    R->addIncoming(RA, RDA);
    R->addIncoming(RBv, RDB);
    R->addIncoming(RC, RDC);
    B.createStoreAt(R, F->getArg(1), Gid);
    B.createRet();
    return F;
  }

  std::vector<uint64_t> setup(GlobalMemory &Mem) const override {
    unsigned N = kGridDim * BlockSize;
    uint64_t Img = Mem.allocate(N * 4, "img");
    uint64_t Coef = Mem.allocate(N * 4, "coef");
    Mem.fillF32(Img, makeInput());
    return {Img, Coef};
  }

  bool validate(const GlobalMemory &Mem, const std::vector<uint64_t> &Args,
                std::string *Why) const override {
    unsigned N = kGridDim * BlockSize;
    unsigned Q = BlockSize / 4;
    std::vector<float> In = makeInput();
    std::vector<float> Got = Mem.dumpF32(Args[1], N);
    for (unsigned Blk = 0; Blk < kGridDim; ++Blk)
      for (unsigned T = 0; T < BlockSize; ++T) {
        float Pix = In[Blk * BlockSize + T];
        float W = (T < Q)       ? Pix * 0.5f + 1.0f
                  : (T < 2 * Q) ? Pix * 0.25f + 2.0f
                                : Pix * 0.125f + 3.0f;
        float Nb = In[Blk * BlockSize + (T + 1) % BlockSize];
        float D2 = (Nb - Pix) * (Nb - Pix);
        float R;
        if (D2 < kL1)
          R = Pix * 0.9f + W * 0.1f;
        else if (D2 < kL2)
          R = Pix * 0.7f + W * 0.3f;
        else
          R = Pix * 0.5f + W * 0.5f;
        float Have = Got[Blk * BlockSize + T];
        if (std::bit_cast<uint32_t>(Have) != std::bit_cast<uint32_t>(R)) {
          if (Why)
            *Why = "SRAD: coefficient differs from host reference";
          return false;
        }
      }
    return true;
  }

private:
  std::vector<float> makeInput() const {
    // Neighbor differences stay below sqrt(L2): ways A and B are taken,
    // way C never is (the paper's "divergence is biased" observation).
    unsigned N = kGridDim * BlockSize;
    std::vector<float> In(N);
    RNG Rng(0x52ad + BlockSize);
    float Cur = 10.0f;
    for (unsigned I = 0; I < N; ++I) {
      Cur += (Rng.nextFloat() - 0.5f) * 1.5f;
      In[I] = Cur;
    }
    return In;
  }

  unsigned BlockSize;
};

} // namespace

namespace darm {
namespace kernels_detail {
std::unique_ptr<Benchmark> createSRAD(unsigned BlockSize) {
  return std::make_unique<SRADBenchmark>(BlockSize);
}
} // namespace kernels_detail
} // namespace darm
