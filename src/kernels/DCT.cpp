//===- DCT.cpp - DCT: in-place quantization of a DCT plane ------------------------===//
//
// From the CUDA samples [27] (§VI-A): quantization rounds positive and
// negative coefficients differently, giving a data-dependent diamond whose
// arms both contain an expensive integer division — ideal for melding, and
// notable for having *no* memory instructions inside the divergent region
// (Fig. 11 discussion).
//
//===----------------------------------------------------------------------===//

#include "darm/kernels/Benchmark.h"

#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/Module.h"
#include "darm/support/RNG.h"

using namespace darm;

namespace {

constexpr unsigned kGridDim = 8;
constexpr int32_t kQuant = 13;

class DCTBenchmark : public Benchmark {
public:
  explicit DCTBenchmark(unsigned BlockSize) : BlockSize(BlockSize) {}

  std::string name() const override { return "DCT"; }
  LaunchParams launch() const override { return {kGridDim, BlockSize}; }

  Function *build(Module &M) const override {
    Context &Ctx = M.getContext();
    Type *I32 = Ctx.getInt32Ty();
    Type *GPtr = Ctx.getPointerTy(I32, AddressSpace::Global);
    Function *F = M.createFunction("dct_quantize", Ctx.getVoidTy(),
                                   {{GPtr, "plane"}, {I32, "q"}});

    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *Pos = F->createBlock("pos");
    BasicBlock *Neg = F->createBlock("neg");
    BasicBlock *Join = F->createBlock("join");
    IRBuilder B(Ctx, Entry);
    Value *Tid = B.createThreadIdX();
    Value *Gid = B.createAdd(B.createMul(B.createBlockIdX(),
                                         B.createBlockDimX()),
                             Tid, "gid");
    Value *Q = F->getArg(1);
    Value *Half = B.createAShr(Q, B.getInt32(1), "half");
    Value *V = B.createLoadAt(F->getArg(0), Gid, "v");
    Value *IsPos = B.createICmp(ICmpPred::SGT, V, B.getInt32(0), "ispos");
    B.createCondBr(IsPos, Pos, Neg);

    B.setInsertPoint(Pos);
    Value *RP = B.createSDiv(B.createAdd(V, Half), Q, "rp");
    B.createBr(Join);
    B.setInsertPoint(Neg);
    Value *RN = B.createSDiv(B.createSub(V, Half), Q, "rn");
    B.createBr(Join);

    B.setInsertPoint(Join);
    PhiInst *R = B.createPhi(I32, "r");
    R->addIncoming(RP, Pos);
    R->addIncoming(RN, Neg);
    B.createStoreAt(R, F->getArg(0), Gid);
    B.createRet();
    return F;
  }

  std::vector<uint64_t> setup(GlobalMemory &Mem) const override {
    unsigned N = kGridDim * BlockSize;
    uint64_t Plane = Mem.allocate(N * 4, "plane");
    Mem.fillI32(Plane, makeInput());
    return {Plane, static_cast<uint64_t>(kQuant)};
  }

  bool validate(const GlobalMemory &Mem, const std::vector<uint64_t> &Args,
                std::string *Why) const override {
    unsigned N = kGridDim * BlockSize;
    std::vector<int32_t> Got = Mem.dumpI32(Args[0], N);
    std::vector<int32_t> Want = makeInput();
    for (int32_t &V : Want)
      V = V > 0 ? (V + kQuant / 2) / kQuant : (V - kQuant / 2) / kQuant;
    if (Got != Want) {
      if (Why)
        *Why = "DCT: quantized plane differs from host reference";
      return false;
    }
    return true;
  }

private:
  std::vector<int32_t> makeInput() const {
    unsigned N = kGridDim * BlockSize;
    std::vector<int32_t> In(N);
    RNG Rng(0xdc7 + BlockSize);
    for (unsigned I = 0; I < N; ++I)
      In[I] = static_cast<int32_t>(Rng.nextInRange(-2000, 2000));
    return In;
  }

  unsigned BlockSize;
};

} // namespace

namespace darm {
namespace kernels_detail {
std::unique_ptr<Benchmark> createDCT(unsigned BlockSize) {
  return std::make_unique<DCTBenchmark>(BlockSize);
}
} // namespace kernels_detail
} // namespace darm
