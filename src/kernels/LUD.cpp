//===- LUD.cpp - LUD: lud_perimeter-style row/column processing --------------------===//
//
// Rodinia's lud_perimeter (§VI-A): the first half of the block processes a
// row chunk of the perimeter, the second half a column chunk — similar
// multiply-accumulate loops over shared memory on both sides. The branch
// condition depends on thread ID *and block size*: with blockDim 16 or 32
// the two roles split inside one warp (runtime divergence), while at 64+
// the halves are warp-aligned and the branch is dynamically uniform — so
// melding only pays off at the divergent block sizes, reproducing the
// paper's block-size-dependent behaviour.
//
//===----------------------------------------------------------------------===//

#include "darm/kernels/Benchmark.h"

#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/Module.h"
#include "darm/kernels/LoopHelper.h"
#include "darm/support/RNG.h"

using namespace darm;

namespace {

constexpr unsigned kGridDim = 4;
constexpr unsigned kChunk = 8; // per-thread MAC length

class LUDBenchmark : public Benchmark {
public:
  explicit LUDBenchmark(unsigned BlockSize) : BlockSize(BlockSize) {}

  std::string name() const override { return "LUD"; }
  LaunchParams launch() const override { return {kGridDim, BlockSize}; }

  Function *build(Module &M) const override {
    Context &Ctx = M.getContext();
    Type *I32 = Ctx.getInt32Ty();
    Type *GPtr = Ctx.getPointerTy(I32, AddressSpace::Global);
    Function *F = M.createFunction("lud_perimeter", Ctx.getVoidTy(),
                                   {{GPtr, "mat"}, {GPtr, "out"}});
    unsigned Half = BlockSize / 2;
    SharedArray *ShM = F->createSharedArray(I32, BlockSize * kChunk, "tile");
    SharedArray *ShRow = F->createSharedArray(I32, kChunk, "diagrow");
    SharedArray *ShCol = F->createSharedArray(I32, kChunk, "diagcol");

    BasicBlock *Entry = F->createBlock("entry");
    IRBuilder B(Ctx, Entry);
    Value *Tid = B.createThreadIdX();
    Value *Ntid = B.createBlockDimX();
    Value *Gid = B.createAdd(B.createMul(B.createBlockIdX(), Ntid), Tid,
                             "gid");

    // Stage the per-thread tile slice into LDS.
    ForLoop Stage(B, B.getInt32(0), ICmpPred::SLT,
                  B.getInt32(static_cast<int32_t>(kChunk)), "stage");
    {
      Value *I = Stage.iv();
      Value *Src = B.createAdd(B.createMul(Gid, B.getInt32(kChunk)), I);
      Value *Dst = B.createAdd(B.createMul(Tid, B.getInt32(kChunk)), I);
      B.createStoreAt(B.createLoadAt(F->getArg(0), Src, "stg"), ShM, Dst);
      Stage.close(B.createAdd(I, B.getInt32(1)));
    }
    // The first kChunk threads fill the two diagonal vectors.
    BasicBlock *FillBB = F->createBlock("fill");
    BasicBlock *Staged = F->createBlock("staged");
    Value *IsFiller =
        B.createICmp(ICmpPred::SLT, Tid, B.getInt32(kChunk), "isfiller");
    B.createCondBr(IsFiller, FillBB, Staged);
    B.setInsertPoint(FillBB);
    Value *DiagV = B.createAdd(Tid, B.getInt32(3), "diagv");
    B.createStoreAt(DiagV, ShRow, Tid);
    B.createStoreAt(B.createMul(DiagV, B.getInt32(2)), ShCol, Tid);
    B.createBr(Staged);
    B.setInsertPoint(Staged);
    B.createBarrier();

    // Divergent role split: rows vs. columns.
    Value *IsRow = B.createICmp(ICmpPred::SLT, Tid,
                                B.getInt32(static_cast<int32_t>(Half)),
                                "isrow");
    BasicBlock *RowBB = F->createBlock("row");
    BasicBlock *ColBB = F->createBlock("col");
    BasicBlock *Join = F->createBlock("join");
    B.createCondBr(IsRow, RowBB, ColBB);

    struct Side {
      Value *Acc;
      BasicBlock *End;
    };
    auto EmitMac = [&](BasicBlock *Head, SharedArray *Diag,
                       const std::string &Tag) -> Side {
      B.setInsertPoint(Head);
      ForLoop L(B, B.getInt32(0), ICmpPred::SLT,
                B.getInt32(static_cast<int32_t>(kChunk)), Tag + ".i");
      Value *I = L.iv();
      PhiInst *Acc;
      {
        IRBuilder HB(Ctx);
        HB.setInsertPoint(cast<Instruction>(I));
        Acc = HB.createPhi(I32, Tag + ".acc");
        Acc->addIncoming(B.getInt32(0),
                         cast<PhiInst>(I)->getIncomingBlock(0));
      }
      Value *TileIdx = B.createAdd(B.createMul(Tid, B.getInt32(kChunk)), I,
                                   Tag + ".idx");
      Value *Elem = B.createLoadAt(ShM, TileIdx, Tag + ".elem");
      Value *D = B.createLoadAt(Diag, I, Tag + ".diag");
      Value *NewAcc = B.createAdd(Acc, B.createMul(Elem, D, Tag + ".prod"),
                                  Tag + ".newacc");
      BasicBlock *Latch = B.getInsertBlock();
      L.close(B.createAdd(I, B.getInt32(1)));
      Acc->addIncoming(NewAcc, Latch);
      BasicBlock *End = B.getInsertBlock();
      B.createBr(Join);
      return {Acc, End};
    };
    Side RowSide = EmitMac(RowBB, ShRow, "row");
    Side ColSide = EmitMac(ColBB, ShCol, "col");

    B.setInsertPoint(Join);
    PhiInst *Acc = B.createPhi(I32, "acc");
    Acc->addIncoming(RowSide.Acc, RowSide.End);
    Acc->addIncoming(ColSide.Acc, ColSide.End);
    B.createStoreAt(Acc, F->getArg(1), Gid);
    B.createRet();
    return F;
  }

  std::vector<uint64_t> setup(GlobalMemory &Mem) const override {
    unsigned N = kGridDim * BlockSize * kChunk;
    uint64_t Mat = Mem.allocate(N * 4, "mat");
    uint64_t Out = Mem.allocate(kGridDim * BlockSize * 4, "out");
    Mem.fillI32(Mat, makeInput());
    return {Mat, Out};
  }

  bool validate(const GlobalMemory &Mem, const std::vector<uint64_t> &Args,
                std::string *Why) const override {
    unsigned Half = BlockSize / 2;
    std::vector<int32_t> In = makeInput();
    std::vector<int32_t> Got = Mem.dumpI32(Args[1], kGridDim * BlockSize);
    for (unsigned Blk = 0; Blk < kGridDim; ++Blk)
      for (unsigned T = 0; T < BlockSize; ++T) {
        int32_t Acc = 0;
        for (unsigned I = 0; I < kChunk; ++I) {
          int32_t Elem = In[(Blk * BlockSize + T) * kChunk + I];
          int32_t Diag = (T < Half) ? static_cast<int32_t>(I + 3)
                                    : static_cast<int32_t>((I + 3) * 2);
          Acc += Elem * Diag;
        }
        if (Got[Blk * BlockSize + T] != Acc) {
          if (Why)
            *Why = "LUD: accumulated perimeter values differ";
          return false;
        }
      }
    return true;
  }

private:
  std::vector<int32_t> makeInput() const {
    unsigned N = kGridDim * BlockSize * kChunk;
    std::vector<int32_t> In(N);
    RNG Rng(0x10d + BlockSize);
    for (unsigned I = 0; I < N; ++I)
      In[I] = static_cast<int32_t>(Rng.nextInRange(-100, 100));
    return In;
  }

  unsigned BlockSize;
};

} // namespace

namespace darm {
namespace kernels_detail {
std::unique_ptr<Benchmark> createLUD(unsigned BlockSize) {
  return std::make_unique<LUDBenchmark>(BlockSize);
}
} // namespace kernels_detail
} // namespace darm
