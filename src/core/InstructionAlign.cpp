//===- InstructionAlign.cpp - Intra-block instruction alignment ----------------===//

#include "darm/core/InstructionAlign.h"

#include "darm/analysis/CostModel.h"
#include "darm/ir/BasicBlock.h"
#include "darm/ir/Instruction.h"

using namespace darm;

bool darm::areInstructionsCompatible(const Instruction *A,
                                     const Instruction *B) {
  if (A->getOpcode() != B->getOpcode())
    return false;
  if (A->getType() != B->getType())
    return false;
  if (A->getNumOperands() != B->getNumOperands())
    return false;
  // Operand types must match pairwise so selects between the two sides'
  // operands are well-typed.
  for (unsigned I = 0, E = A->getNumOperands(); I != E; ++I)
    if (A->getOperand(I)->getType() != B->getOperand(I)->getType())
      return false;

  switch (A->getOpcode()) {
  case Opcode::ICmp:
    return cast<ICmpInst>(A)->getPredicate() ==
           cast<ICmpInst>(B)->getPredicate();
  case Opcode::FCmp:
    return cast<FCmpInst>(A)->getPredicate() ==
           cast<FCmpInst>(B)->getPredicate();
  case Opcode::Call: {
    // Convergent intrinsics must never be melded into divergent control
    // flow (deadlock risk, §IV-C); subgraphs containing them are already
    // rejected, but be defensive here too.
    Intrinsic IA = cast<CallInst>(A)->getIntrinsic();
    return IA == cast<CallInst>(B)->getIntrinsic() && !A->isConvergent();
  }
  case Opcode::Phi:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
    return false; // handled structurally, never via the aligner
  default:
    return true;
  }
}

std::vector<Instruction *> darm::alignableInstructions(BasicBlock *BB) {
  std::vector<Instruction *> Result;
  for (Instruction *I : *BB)
    if (!I->isPhi() && !I->isTerminator())
      Result.push_back(I);
  return Result;
}

std::vector<InstrAlignEntry> darm::alignInstructions(BasicBlock *TrueBB,
                                                     BasicBlock *FalseBB,
                                                     double GapPenalty) {
  std::vector<Instruction *> T = alignableInstructions(TrueBB);
  std::vector<Instruction *> F = alignableInstructions(FalseBB);

  auto Score = [&](unsigned I, unsigned J) -> double {
    if (!areInstructionsCompatible(T[I], F[J]))
      return -1e9;
    // Melding saves one of the two (equal) latencies; weighting by latency
    // prioritizes aligning expensive instructions (loads, divides).
    return static_cast<double>(CostModel::getLatency(T[I]));
  };

  std::vector<InstrAlignEntry> Result;
  for (const AlignEntry &E : smithWaterman(
           static_cast<unsigned>(T.size()), static_cast<unsigned>(F.size()),
           Score, GapPenalty)) {
    InstrAlignEntry IE;
    if (E.A >= 0)
      IE.TrueInst = T[static_cast<unsigned>(E.A)];
    if (E.B >= 0)
      IE.FalseInst = F[static_cast<unsigned>(E.B)];
    Result.push_back(IE);
  }
  return Result;
}
