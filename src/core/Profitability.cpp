//===- Profitability.cpp - Melding profitability (MP_B / MP_S) -----------------===//

#include "darm/core/Profitability.h"

#include "darm/analysis/CostModel.h"
#include "darm/core/InstructionAlign.h"
#include "darm/ir/BasicBlock.h"
#include "darm/ir/Instruction.h"

#include <map>

using namespace darm;

namespace {

/// Key identifying an instruction "type" for the frequency profile. Two
/// instructions with the same key are potentially meldable into one.
using TypeKey = std::tuple<Opcode, unsigned /*payload*/, const Type *>;

TypeKey keyOf(const Instruction *I) {
  unsigned Payload = 0;
  switch (I->getOpcode()) {
  case Opcode::ICmp:
    Payload = static_cast<unsigned>(cast<ICmpInst>(I)->getPredicate());
    break;
  case Opcode::FCmp:
    Payload = static_cast<unsigned>(cast<FCmpInst>(I)->getPredicate());
    break;
  case Opcode::Call:
    Payload = static_cast<unsigned>(cast<CallInst>(I)->getIntrinsic());
    break;
  case Opcode::Load:
    Payload = static_cast<unsigned>(cast<LoadInst>(I)->getAddressSpace());
    break;
  case Opcode::Store:
    Payload = static_cast<unsigned>(cast<StoreInst>(I)->getAddressSpace());
    break;
  default:
    break;
  }
  return {I->getOpcode(), Payload, I->getType()};
}

std::map<TypeKey, std::pair<unsigned, unsigned>>
opcodeProfile(const BasicBlock &BB) {
  // freq and per-type latency weight w_i.
  std::map<TypeKey, std::pair<unsigned, unsigned>> Profile;
  for (const Instruction *I : BB) {
    if (I->isPhi() || I->isTerminator())
      continue;
    auto &[Freq, Lat] = Profile[keyOf(I)];
    ++Freq;
    Lat = CostModel::getLatency(I);
  }
  return Profile;
}

/// lat(b) over the *meldable* body only (no phis/terminators): this is
/// the normalization that makes two identical-profile blocks score
/// exactly 0.5 as the paper states (§IV-C).
unsigned bodyLatency(const BasicBlock &BB) {
  unsigned Total = 0;
  for (const Instruction *I : BB)
    if (!I->isPhi() && !I->isTerminator())
      Total += CostModel::getLatency(I);
  return Total;
}

} // namespace

double darm::blockMeldProfit(const BasicBlock &B1, const BasicBlock &B2) {
  unsigned LatSum = bodyLatency(B1) + bodyLatency(B2);
  if (LatSum == 0)
    return 0.0;
  auto P1 = opcodeProfile(B1);
  auto P2 = opcodeProfile(B2);
  double Saved = 0;
  for (const auto &[Key, FL1] : P1) {
    auto It = P2.find(Key);
    if (It == P2.end())
      continue;
    Saved += static_cast<double>(std::min(FL1.first, It->second.first)) *
             FL1.second;
  }
  return Saved / static_cast<double>(LatSum);
}

double darm::blockMeldProfitWithOverhead(BasicBlock &B1, BasicBlock &B2,
                                         double *AbsSaving) {
  unsigned LatSum = bodyLatency(B1) + bodyLatency(B2);
  if (AbsSaving)
    *AbsSaving = 0;
  if (LatSum == 0)
    return 0.0;
  double Saved = 0;
  double Overhead = 0;
  for (const InstrAlignEntry &E :
       alignInstructions(&B1, &B2, /*GapPenalty=*/-0.5)) {
    if (!E.isMatch())
      continue;
    Saved += CostModel::getLatency(E.TrueInst);
    // A select is needed per operand position where the two sides
    // disagree; most disappear again (shared conditions, identical-arm
    // folds, CSE, if-conversion), hence the fractional weight, calibrated
    // so the paper's default 0.2 threshold separates melds that pay off
    // in simulation from those that do not.
    for (unsigned K = 0, N = E.TrueInst->getNumOperands(); K != N; ++K)
      if (E.TrueInst->getOperand(K) != E.FalseInst->getOperand(K))
        Overhead += 0.25 * CostModel::getLatency(Opcode::Select);
  }
  if (AbsSaving)
    *AbsSaving = Saved - Overhead;
  return (Saved - Overhead) / static_cast<double>(LatSum);
}

double darm::subgraphMeldProfit(
    const std::vector<std::pair<BasicBlock *, BasicBlock *>> &Mapping) {
  double Num = 0, Den = 0;
  for (const auto &[B1, B2] : Mapping) {
    unsigned LatSum = bodyLatency(*B1) + bodyLatency(*B2);
    Num += blockMeldProfit(*B1, *B2) * static_cast<double>(LatSum);
    Den += static_cast<double>(LatSum);
  }
  return Den == 0 ? 0.0 : Num / Den;
}

double darm::subgraphMeldProfitWithOverhead(
    const std::vector<std::pair<BasicBlock *, BasicBlock *>> &Mapping,
    double *AbsSaving) {
  double Num = 0, Den = 0, Abs = 0;
  for (const auto &[B1, B2] : Mapping) {
    unsigned LatSum = bodyLatency(*B1) + bodyLatency(*B2);
    double PairAbs = 0;
    Num += blockMeldProfitWithOverhead(*B1, *B2, &PairAbs) *
           static_cast<double>(LatSum);
    Den += static_cast<double>(LatSum);
    Abs += PairAbs;
  }
  if (AbsSaving)
    *AbsSaving = Abs;
  return Den == 0 ? 0.0 : Num / Den;
}
