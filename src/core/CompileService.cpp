//===- CompileService.cpp - Artifact compilation + sharded cache --------------===//
//
// Implements the context-free artifact layer (core/CompiledModule.h) and
// the sharded get-or-compile cache in front of it (core/CompileService.h,
// docs/caching.md). Lives in the darm_service library: producing a
// DecodedProgram image needs darm_sim, which the core layers must not
// link (darm_sim already depends on darm_analysis below them).
//
//===----------------------------------------------------------------------===//

#include "darm/core/CompileService.h"

#include "darm/analysis/Verifier.h"
#include "darm/core/DARMPass.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/ir/Serialize.h"
#include "darm/sim/DecodedProgram.h"
#include "darm/support/BinaryStream.h"
#include "darm/support/Hashing.h"

#include <sstream>

using namespace darm;

//===----------------------------------------------------------------------===//
// Config fingerprint
//===----------------------------------------------------------------------===//

std::string darm::configFingerprint(const DARMConfig &Cfg) {
  // Every field, in declaration order, under a version tag. Doubles are
  // printed with max_digits10 round-trip precision so distinct values
  // never collapse to one fingerprint. kDARMConfigFieldCount acts as the
  // tripwire: growing the struct without extending this list changes the
  // count (a cache flush), never a silent false hit — and the unit test
  // counts its per-field mutations against the constant so the diff
  // points here. Deliberately NOT sizeof(DARMConfig): ABI padding
  // differs across compilers/platforms, and baking it into the key would
  // silently invalidate every artifact persisted by another build
  // (docs/caching.md fingerprint portability).
  std::ostringstream OS;
  OS.precision(17);
  OS << "darm-cfg-v2;" << kDARMConfigFieldCount << ';';
  OS << Cfg.ProfitThreshold << ';' << Cfg.InstrGapPenalty << ';'
     << Cfg.SubgraphGapPenalty << ';' << Cfg.EnableUnpredication << ';'
     << Cfg.DiamondOnly << ';' << Cfg.EnableRegionReplication << ';'
     << Cfg.MinAbsoluteSaving << ';' << Cfg.MaxIterations << ';'
     << Cfg.VerifyEachStep << ';' << Cfg.EnableConstProp << ';'
     << Cfg.EnableAlgebraic << ';' << Cfg.EnableGVN << ';' << Cfg.EnableLICM
     << ';' << Cfg.EnableLoopUnroll;
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Artifact container serialization ("DRMA")
//===----------------------------------------------------------------------===//

namespace {

constexpr char kArtifactMagic[4] = {'D', 'R', 'M', 'A'};

void writeByteVector(ByteWriter &W, const std::vector<uint8_t> &V) {
  W.writeVar(V.size());
  for (uint8_t B : V)
    W.writeU8(B);
}

bool readByteVector(ByteReader &R, std::vector<uint8_t> &V) {
  uint64_t N = R.readVar();
  // Reject before allocating: a corrupt length must not OOM the reader.
  if (R.failed() || N > (1u << 30))
    return false;
  V.resize(static_cast<size_t>(N));
  for (size_t I = 0; I < V.size(); ++I)
    V[I] = R.readU8();
  return !R.failed();
}

} // namespace

std::vector<uint8_t> darm::serializeCompiledModule(const CompiledModule &Art) {
  ByteWriter W;
  for (char C : kArtifactMagic)
    W.writeU8(static_cast<uint8_t>(C));
  W.writeU16(kArtifactFormatVersion);
  W.writeU64(Art.IRHash);
  W.writeStr(Art.Fingerprint);
  writeByteVector(W, Art.ModuleBytes);
  writeByteVector(W, Art.ProgramBytes);
  W.writeStr(Art.CompileError);
  // The deterministic compile counters. StageSeconds — host wall-clock —
  // are deliberately not part of the artifact value (see the header):
  // equal compiles must serialize to equal bytes on any machine.
  W.writeVar(Art.Stats.Iterations);
  W.writeVar(Art.Stats.RegionsMelded);
  W.writeVar(Art.Stats.SubgraphPairsMelded);
  W.writeVar(Art.Stats.BlockRegionMelds);
  W.writeVar(Art.Stats.SelectsInserted);
  W.writeVar(Art.Stats.UnpredicationSplits);
  W.writeVar(Art.Stats.GuardedStores);
  std::vector<uint8_t> Bytes = W.take();
  // Trailing FNV-1a/64 over the whole image. The inner decoders catch
  // structural damage, but a flipped byte inside a counter varint or the
  // module payload's data section can still decode to a plausible wrong
  // value — the checksum turns every single-byte flip into a detected
  // reject (a cold miss), which the on-disk store's crash-safety
  // contract requires.
  const uint64_t Sum = hashBytes(Bytes.data(), Bytes.size());
  for (unsigned I = 0; I < 8; ++I)
    Bytes.push_back(static_cast<uint8_t>(Sum >> (8 * I)));
  return Bytes;
}

bool darm::deserializeCompiledModule(const uint8_t *Data, size_t Size,
                                     CompiledModule &Art, std::string *Err) {
  auto Reject = [&](const char *Why) {
    if (Err)
      *Err = std::string("artifact: ") + Why;
    return false;
  };
  if (Size < 8)
    return Reject("too short for a DRMA artifact");
  uint64_t Sum = 0;
  for (unsigned I = 0; I < 8; ++I)
    Sum |= static_cast<uint64_t>(Data[Size - 8 + I]) << (8 * I);
  if (hashBytes(Data, Size - 8) != Sum)
    return Reject("checksum mismatch (corrupt artifact)");
  ByteReader R(Data, Size - 8);
  for (char C : kArtifactMagic)
    if (R.readU8() != static_cast<uint8_t>(C))
      return Reject("bad magic (not a DRMA artifact)");
  const uint16_t Version = R.readU16();
  if (R.failed())
    return Reject("truncated header");
  if (Version != kArtifactFormatVersion)
    return Reject("unsupported format version");
  CompiledModule A;
  A.IRHash = R.readU64();
  A.Fingerprint = R.readStr();
  if (!readByteVector(R, A.ModuleBytes) || !readByteVector(R, A.ProgramBytes))
    return Reject("truncated payload");
  A.CompileError = R.readStr();
  A.Stats.Iterations = static_cast<unsigned>(R.readVar());
  A.Stats.RegionsMelded = static_cast<unsigned>(R.readVar());
  A.Stats.SubgraphPairsMelded = static_cast<unsigned>(R.readVar());
  A.Stats.BlockRegionMelds = static_cast<unsigned>(R.readVar());
  A.Stats.SelectsInserted = static_cast<unsigned>(R.readVar());
  A.Stats.UnpredicationSplits = static_cast<unsigned>(R.readVar());
  A.Stats.GuardedStores = static_cast<unsigned>(R.readVar());
  if (R.failed())
    return Reject("truncated payload");
  if (!R.atEnd())
    return Reject("trailing bytes after artifact");
  Art = std::move(A);
  return true;
}

//===----------------------------------------------------------------------===//
// Artifact construction / consumption
//===----------------------------------------------------------------------===//

namespace {

/// Miss-path core shared by compileToArtifact and getOrCompile. \p
/// Snapshot, when non-null, is F's canonical single-function snapshot
/// (serializeFunction) and \p IRHash its hash — computed once by the
/// caller, because at corpus scale serializing + hashing the snapshot is
/// ~3x cheaper than hashing the printed text, and the same bytes then
/// rematerialize the kernel. A null snapshot (IR the serializer refuses)
/// falls back to the printed-form round trip.
CompiledModule compileArtifactImpl(const Function &F,
                                   const std::vector<uint8_t> *Snapshot,
                                   uint64_t IRHash,
                                   const std::string &Fingerprint,
                                   const CompileFn &Compile,
                                   bool IncludeProgram) {
  CompiledModule Art;
  Art.IRHash = IRHash;
  Art.Fingerprint = Fingerprint;

  // Rematerialize the kernel in a private Context (round-trip identity of
  // both forms is pinned), so the caller's function and Context are never
  // touched.
  Context Ctx;
  std::string Err;
  std::unique_ptr<Module> M = Snapshot
                                  ? deserializeModule(Ctx, *Snapshot, &Err)
                                  : parseModule(Ctx, printFunction(F), &Err);
  if (!M || M->functions().empty()) {
    Art.CompileError = "artifact: input rematerialization failed: " + Err;
    return Art;
  }
  Function &Kernel = *M->functions().front();

  Compile(Kernel, Art.Stats);

  if (!verifyFunction(Kernel, &Err)) {
    // Cache the negative result: consumers report the verifier message
    // exactly as a direct compile would, without re-running the broken
    // transform per consumer.
    Art.CompileError = Err;
    return Art;
  }

  Art.ModuleBytes = serializeModule(*M);
  if (Art.ModuleBytes.empty()) {
    Art.CompileError = "artifact: melded module is not serializable";
    return Art;
  }
  if (IncludeProgram)
    Art.ProgramBytes = serializeDecodedProgram(decodeProgram(Kernel));
  return Art;
}

} // namespace

uint64_t darm::artifactIRHash(const Function &F) {
  std::vector<uint8_t> Snap = serializeFunction(F);
  return Snap.empty() ? hashFunction(F)
                      : hashBytes(Snap.data(), Snap.size());
}

CompiledModule darm::compileToArtifact(const Function &F,
                                       const std::string &Fingerprint,
                                       const CompileFn &Compile,
                                       bool IncludeProgram) {
  std::vector<uint8_t> Snap = serializeFunction(F);
  if (!Snap.empty())
    return compileArtifactImpl(F, &Snap, hashBytes(Snap.data(), Snap.size()),
                               Fingerprint, Compile, IncludeProgram);
  return compileArtifactImpl(F, nullptr, hashFunction(F), Fingerprint, Compile,
                             IncludeProgram);
}

CompiledModule darm::compileToArtifact(const Function &F,
                                       const DARMConfig &Cfg,
                                       bool IncludeProgram) {
  return compileToArtifact(
      F, configFingerprint(Cfg),
      [&Cfg](Function &Kernel, DARMStats &Stats) {
        runDARM(Kernel, Cfg, &Stats);
      },
      IncludeProgram);
}

std::unique_ptr<Module> darm::moduleFromArtifact(const CompiledModule &Art,
                                                 Context &Ctx,
                                                 std::string *Err) {
  if (Art.failed()) {
    if (Err)
      *Err = Art.CompileError;
    return nullptr;
  }
  return deserializeModule(Ctx, Art.ModuleBytes, Err);
}

bool darm::decodeFromArtifact(const CompiledModule &Art, DecodedProgram &P) {
  return !Art.ProgramBytes.empty() &&
         deserializeDecodedProgram(Art.ProgramBytes.data(),
                                   Art.ProgramBytes.size(), P);
}

//===----------------------------------------------------------------------===//
// CompileService
//===----------------------------------------------------------------------===//

size_t CompileService::KeyHash::operator()(const Key &K) const {
  StableHasher H;
  H.updateU64(K.IRHash);
  H.update(K.Fingerprint);
  return static_cast<size_t>(H.finish());
}

CompileService::CompileService() : CompileService(Options()) {}

CompileService::CompileService(Options O) : Opts(O) {
  if (Opts.NumShards == 0)
    Opts.NumShards = 1;
  ShardBudget = Opts.MaxBytes / Opts.NumShards;
  Shards = std::vector<Shard>(Opts.NumShards);
}

CompileService::Shard &CompileService::shardFor(const Key &K) const {
  return Shards[KeyHash()(K) % Shards.size()];
}

CompileService::Artifact CompileService::lookup(
    uint64_t IRHash, const std::string &Fingerprint) const {
  Key K{IRHash, Fingerprint};
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(K);
  return It == S.Map.end() ? nullptr : It->second->Art;
}

CompileService::Artifact CompileService::getOrCompile(const Function &F,
                                                      const std::string &FP,
                                                      const CompileFn &Compile,
                                                      bool IncludeProgram,
                                                      CacheSource *Source) {
  // One snapshot serves both halves of the miss path: its hash is the
  // content key (artifactIRHash), and on a miss the same bytes
  // rematerialize the kernel — nothing is printed, parsed or hashed
  // twice.
  std::vector<uint8_t> Snap = serializeFunction(F);
  Key K{Snap.empty() ? hashFunction(F) : hashBytes(Snap.data(), Snap.size()),
        FP};
  Shard &S = shardFor(K);
  // Distinguishes "key absent" (a cold miss) from "key cached without a
  // program image" (an upgrade): the latter re-runs the compile too, but
  // is counted in Upgrades, not Misses — folding upgrades into misses
  // would understate the hit rate every consumer reports.
  bool UpgradeOfCached = false;
  {
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Map.find(K);
    // A hit must satisfy the caller: an entry cached without a program
    // image does not serve an IncludeProgram request (failed artifacts
    // have nothing to decode and always count as hits).
    if (It != S.Map.end()) {
      if (!IncludeProgram || It->second->Art->failed() ||
          !It->second->Art->ProgramBytes.empty()) {
        S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
        Hits.fetch_add(1, std::memory_order_relaxed);
        if (Source)
          *Source = CacheSource::MemoryHit;
        return It->second->Art;
      }
      UpgradeOfCached = true;
    }
  }
  // Second level: a persisted artifact (previous process, or another
  // daemon sharing the store) serves the request without recompiling —
  // the warm-start-survives-restart path. The store validates what it
  // returns; anything torn/corrupt/stale comes back null and we fall
  // through to a plain compile. An upgrade probes the store too: a
  // program-carrying artifact persisted by an earlier IncludeProgram
  // compile upgrades the in-memory program-less entry for free.
  if (Persist) {
    if (Artifact OnDisk = Persist->load(K.IRHash, FP, IncludeProgram)) {
      DiskHits.fetch_add(1, std::memory_order_relaxed);
      if (Source)
        *Source = CacheSource::DiskHit;
      return insert(K, std::move(OnDisk), IncludeProgram);
    }
  }
  // Compile with no lock held: a multi-second meld must not serialize
  // every other key in the shard. Racing compiles of the same key are
  // deterministic duplicates; insert() keeps the first.
  (UpgradeOfCached ? Upgrades : Misses).fetch_add(1,
                                                  std::memory_order_relaxed);
  auto Art = std::make_shared<const CompiledModule>(
      compileArtifactImpl(F, Snap.empty() ? nullptr : &Snap, K.IRHash, FP,
                          Compile, IncludeProgram));
  // Persist before inserting: even when the insert loses a duplicate
  // race (or the artifact is oversized for the in-memory budget), the
  // store's write-once rule makes the extra store a no-op, and the disk
  // copy is what survives the process.
  if (Persist)
    Persist->store(*Art);
  if (Source)
    *Source = UpgradeOfCached ? CacheSource::Upgraded : CacheSource::Compiled;
  return insert(K, std::move(Art), IncludeProgram);
}

CompileService::Artifact CompileService::getOrCompile(const Function &F,
                                                      const DARMConfig &Cfg,
                                                      bool IncludeProgram,
                                                      CacheSource *Source) {
  return getOrCompile(
      F, configFingerprint(Cfg),
      [&Cfg](Function &Kernel, DARMStats &Stats) {
        runDARM(Kernel, Cfg, &Stats);
      },
      IncludeProgram, Source);
}

CompileService::Artifact CompileService::insert(const Key &K, Artifact Art,
                                                bool RequireProgram) {
  Shard &S = shardFor(K);
  size_t Bytes = Art->byteSize();
  // Oversized policy (see the header): an artifact that alone exceeds
  // the shard budget never enters the cache. It previously slid past the
  // eviction loop's size guard and pinned the shard permanently over
  // budget; now it is handed back uncached, and if a persistence layer
  // is wired the disk copy (no byte budget) answers repeat requests.
  if (Bytes > ShardBudget) {
    Oversized.fetch_add(1, std::memory_order_relaxed);
    return Art;
  }
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(K);
  if (It != S.Map.end()) {
    // Keep the incumbent unless ours upgrades it with a program image.
    bool Upgrade = RequireProgram && !It->second->Art->failed() &&
                   It->second->Art->ProgramBytes.empty();
    if (!Upgrade) {
      DuplicateCompiles.fetch_add(1, std::memory_order_relaxed);
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
      return It->second->Art;
    }
    S.Bytes -= It->second->Bytes;
    S.Lru.erase(It->second);
    S.Map.erase(It);
  }
  S.Lru.push_front(Entry{K, Art, Bytes});
  S.Map[K] = S.Lru.begin();
  S.Bytes += Bytes;
  // Every cached entry fits the budget individually (oversized ones were
  // rejected above), so this runs the cold tail down without ever
  // popping the entry just inserted at the front.
  while (S.Bytes > ShardBudget) {
    Entry &Cold = S.Lru.back();
    S.Bytes -= Cold.Bytes;
    S.Map.erase(Cold.K);
    S.Lru.pop_back();
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }
  return Art;
}

CompileService::CacheStats CompileService::stats() const {
  CacheStats St;
  St.Hits = Hits.load(std::memory_order_relaxed);
  St.Misses = Misses.load(std::memory_order_relaxed);
  St.Upgrades = Upgrades.load(std::memory_order_relaxed);
  St.DiskHits = DiskHits.load(std::memory_order_relaxed);
  St.Evictions = Evictions.load(std::memory_order_relaxed);
  St.DuplicateCompiles = DuplicateCompiles.load(std::memory_order_relaxed);
  St.Oversized = Oversized.load(std::memory_order_relaxed);
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    St.Bytes += S.Bytes;
    St.Entries += S.Map.size();
  }
  return St;
}

void CompileService::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Lru.clear();
    S.Map.clear();
    S.Bytes = 0;
  }
  Hits.store(0);
  Misses.store(0);
  Upgrades.store(0);
  DiskHits.store(0);
  Evictions.store(0);
  DuplicateCompiles.store(0);
  Oversized.store(0);
}
