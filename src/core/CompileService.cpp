//===- CompileService.cpp - Artifact compilation + sharded cache --------------===//
//
// Implements the context-free artifact layer (core/CompiledModule.h) and
// the sharded get-or-compile cache in front of it (core/CompileService.h,
// docs/caching.md). Lives in the darm_service library: producing a
// DecodedProgram image needs darm_sim, which the core layers must not
// link (darm_sim already depends on darm_analysis below them).
//
//===----------------------------------------------------------------------===//

#include "darm/core/CompileService.h"

#include "darm/analysis/Verifier.h"
#include "darm/core/DARMPass.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/ir/Serialize.h"
#include "darm/sim/DecodedProgram.h"
#include "darm/support/Hashing.h"

#include <sstream>

using namespace darm;

//===----------------------------------------------------------------------===//
// Config fingerprint
//===----------------------------------------------------------------------===//

std::string darm::configFingerprint(const DARMConfig &Cfg) {
  // Every field, in declaration order, under a version tag. Doubles are
  // printed with max_digits10 round-trip precision so distinct values
  // never collapse to one fingerprint. sizeof(DARMConfig) acts as a
  // tripwire: growing the struct without extending this list changes the
  // fingerprint wholesale (a cache flush), never a silent false hit —
  // and the unit test pins the expected size so the diff points here.
  std::ostringstream OS;
  OS.precision(17);
  OS << "darm-cfg-v1;" << sizeof(DARMConfig) << ';';
  OS << Cfg.ProfitThreshold << ';' << Cfg.InstrGapPenalty << ';'
     << Cfg.SubgraphGapPenalty << ';' << Cfg.EnableUnpredication << ';'
     << Cfg.DiamondOnly << ';' << Cfg.EnableRegionReplication << ';'
     << Cfg.MinAbsoluteSaving << ';' << Cfg.MaxIterations << ';'
     << Cfg.VerifyEachStep << ';' << Cfg.EnableConstProp << ';'
     << Cfg.EnableAlgebraic << ';' << Cfg.EnableGVN << ';' << Cfg.EnableLICM
     << ';' << Cfg.EnableLoopUnroll;
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Artifact construction / consumption
//===----------------------------------------------------------------------===//

namespace {

/// Miss-path core shared by compileToArtifact and getOrCompile. \p
/// Snapshot, when non-null, is F's canonical single-function snapshot
/// (serializeFunction) and \p IRHash its hash — computed once by the
/// caller, because at corpus scale serializing + hashing the snapshot is
/// ~3x cheaper than hashing the printed text, and the same bytes then
/// rematerialize the kernel. A null snapshot (IR the serializer refuses)
/// falls back to the printed-form round trip.
CompiledModule compileArtifactImpl(const Function &F,
                                   const std::vector<uint8_t> *Snapshot,
                                   uint64_t IRHash,
                                   const std::string &Fingerprint,
                                   const CompileFn &Compile,
                                   bool IncludeProgram) {
  CompiledModule Art;
  Art.IRHash = IRHash;
  Art.Fingerprint = Fingerprint;

  // Rematerialize the kernel in a private Context (round-trip identity of
  // both forms is pinned), so the caller's function and Context are never
  // touched.
  Context Ctx;
  std::string Err;
  std::unique_ptr<Module> M = Snapshot
                                  ? deserializeModule(Ctx, *Snapshot, &Err)
                                  : parseModule(Ctx, printFunction(F), &Err);
  if (!M || M->functions().empty()) {
    Art.CompileError = "artifact: input rematerialization failed: " + Err;
    return Art;
  }
  Function &Kernel = *M->functions().front();

  Compile(Kernel, Art.Stats);

  if (!verifyFunction(Kernel, &Err)) {
    // Cache the negative result: consumers report the verifier message
    // exactly as a direct compile would, without re-running the broken
    // transform per consumer.
    Art.CompileError = Err;
    return Art;
  }

  Art.ModuleBytes = serializeModule(*M);
  if (Art.ModuleBytes.empty()) {
    Art.CompileError = "artifact: melded module is not serializable";
    return Art;
  }
  if (IncludeProgram)
    Art.ProgramBytes = serializeDecodedProgram(decodeProgram(Kernel));
  return Art;
}

} // namespace

uint64_t darm::artifactIRHash(const Function &F) {
  std::vector<uint8_t> Snap = serializeFunction(F);
  return Snap.empty() ? hashFunction(F)
                      : hashBytes(Snap.data(), Snap.size());
}

CompiledModule darm::compileToArtifact(const Function &F,
                                       const std::string &Fingerprint,
                                       const CompileFn &Compile,
                                       bool IncludeProgram) {
  std::vector<uint8_t> Snap = serializeFunction(F);
  if (!Snap.empty())
    return compileArtifactImpl(F, &Snap, hashBytes(Snap.data(), Snap.size()),
                               Fingerprint, Compile, IncludeProgram);
  return compileArtifactImpl(F, nullptr, hashFunction(F), Fingerprint, Compile,
                             IncludeProgram);
}

CompiledModule darm::compileToArtifact(const Function &F,
                                       const DARMConfig &Cfg,
                                       bool IncludeProgram) {
  return compileToArtifact(
      F, configFingerprint(Cfg),
      [&Cfg](Function &Kernel, DARMStats &Stats) {
        runDARM(Kernel, Cfg, &Stats);
      },
      IncludeProgram);
}

std::unique_ptr<Module> darm::moduleFromArtifact(const CompiledModule &Art,
                                                 Context &Ctx,
                                                 std::string *Err) {
  if (Art.failed()) {
    if (Err)
      *Err = Art.CompileError;
    return nullptr;
  }
  return deserializeModule(Ctx, Art.ModuleBytes, Err);
}

bool darm::decodeFromArtifact(const CompiledModule &Art, DecodedProgram &P) {
  return !Art.ProgramBytes.empty() &&
         deserializeDecodedProgram(Art.ProgramBytes.data(),
                                   Art.ProgramBytes.size(), P);
}

//===----------------------------------------------------------------------===//
// CompileService
//===----------------------------------------------------------------------===//

size_t CompileService::KeyHash::operator()(const Key &K) const {
  StableHasher H;
  H.updateU64(K.IRHash);
  H.update(K.Fingerprint);
  return static_cast<size_t>(H.finish());
}

CompileService::CompileService() : CompileService(Options()) {}

CompileService::CompileService(Options O) : Opts(O) {
  if (Opts.NumShards == 0)
    Opts.NumShards = 1;
  ShardBudget = Opts.MaxBytes / Opts.NumShards;
  Shards = std::vector<Shard>(Opts.NumShards);
}

CompileService::Shard &CompileService::shardFor(const Key &K) const {
  return Shards[KeyHash()(K) % Shards.size()];
}

CompileService::Artifact CompileService::lookup(
    uint64_t IRHash, const std::string &Fingerprint) const {
  Key K{IRHash, Fingerprint};
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(K);
  return It == S.Map.end() ? nullptr : It->second->Art;
}

CompileService::Artifact CompileService::getOrCompile(const Function &F,
                                                      const std::string &FP,
                                                      const CompileFn &Compile,
                                                      bool IncludeProgram) {
  // One snapshot serves both halves of the miss path: its hash is the
  // content key (artifactIRHash), and on a miss the same bytes
  // rematerialize the kernel — nothing is printed, parsed or hashed
  // twice.
  std::vector<uint8_t> Snap = serializeFunction(F);
  Key K{Snap.empty() ? hashFunction(F) : hashBytes(Snap.data(), Snap.size()),
        FP};
  Shard &S = shardFor(K);
  {
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Map.find(K);
    // A hit must satisfy the caller: an entry cached without a program
    // image does not serve an IncludeProgram request (failed artifacts
    // have nothing to decode and always count as hits).
    if (It != S.Map.end() &&
        (!IncludeProgram || It->second->Art->failed() ||
         !It->second->Art->ProgramBytes.empty())) {
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
      Hits.fetch_add(1, std::memory_order_relaxed);
      return It->second->Art;
    }
  }
  // Compile with no lock held: a multi-second meld must not serialize
  // every other key in the shard. Racing compiles of the same key are
  // deterministic duplicates; insert() keeps the first.
  Misses.fetch_add(1, std::memory_order_relaxed);
  auto Art = std::make_shared<const CompiledModule>(
      compileArtifactImpl(F, Snap.empty() ? nullptr : &Snap, K.IRHash, FP,
                          Compile, IncludeProgram));
  return insert(K, std::move(Art), IncludeProgram);
}

CompileService::Artifact CompileService::getOrCompile(const Function &F,
                                                      const DARMConfig &Cfg,
                                                      bool IncludeProgram) {
  return getOrCompile(
      F, configFingerprint(Cfg),
      [&Cfg](Function &Kernel, DARMStats &Stats) {
        runDARM(Kernel, Cfg, &Stats);
      },
      IncludeProgram);
}

CompileService::Artifact CompileService::insert(const Key &K, Artifact Art,
                                                bool RequireProgram) {
  Shard &S = shardFor(K);
  size_t Bytes = Art->byteSize();
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(K);
  if (It != S.Map.end()) {
    // Keep the incumbent unless ours upgrades it with a program image.
    bool Upgrade = RequireProgram && !It->second->Art->failed() &&
                   It->second->Art->ProgramBytes.empty();
    if (!Upgrade) {
      DuplicateCompiles.fetch_add(1, std::memory_order_relaxed);
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
      return It->second->Art;
    }
    S.Bytes -= It->second->Bytes;
    S.Lru.erase(It->second);
    S.Map.erase(It);
  }
  S.Lru.push_front(Entry{K, Art, Bytes});
  S.Map[K] = S.Lru.begin();
  S.Bytes += Bytes;
  while (S.Bytes > ShardBudget && S.Lru.size() > 1) {
    Entry &Cold = S.Lru.back();
    S.Bytes -= Cold.Bytes;
    S.Map.erase(Cold.K);
    S.Lru.pop_back();
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }
  return Art;
}

CompileService::CacheStats CompileService::stats() const {
  CacheStats St;
  St.Hits = Hits.load(std::memory_order_relaxed);
  St.Misses = Misses.load(std::memory_order_relaxed);
  St.Evictions = Evictions.load(std::memory_order_relaxed);
  St.DuplicateCompiles = DuplicateCompiles.load(std::memory_order_relaxed);
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    St.Bytes += S.Bytes;
    St.Entries += S.Map.size();
  }
  return St;
}

void CompileService::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Lru.clear();
    S.Map.clear();
    S.Bytes = 0;
  }
  Hits.store(0);
  Misses.store(0);
  Evictions.store(0);
  DuplicateCompiles.store(0);
}
