//===- MeldRegionAnalysis.cpp - Meldable divergent regions ---------------------===//

#include "darm/core/MeldRegionAnalysis.h"

#include "darm/analysis/CostModel.h"
#include "darm/analysis/DivergenceAnalysis.h"
#include "darm/analysis/DominatorTree.h"
#include "darm/analysis/RegionQuery.h"
#include "darm/core/Profitability.h"
#include "darm/core/SequenceAlign.h"
#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/Module.h"

#include <algorithm>
#include <map>

using namespace darm;

bool SESESubgraph::contains(const BasicBlock *BB) const {
  return std::find(Blocks.begin(), Blocks.end(), BB) != Blocks.end();
}

bool SESESubgraph::hasConvergentOps() const {
  for (BasicBlock *BB : Blocks)
    for (Instruction *I : *BB)
      if (I->isConvergent())
        return true;
  return false;
}

bool SESESubgraph::isAcyclic() const {
  // Three-color DFS within the body.
  std::map<BasicBlock *, int> Color;
  std::vector<std::pair<BasicBlock *, unsigned>> Stack{{Entry, 0}};
  Color[Entry] = 1;
  while (!Stack.empty()) {
    auto &[BB, Idx] = Stack.back();
    std::vector<BasicBlock *> Succs = BB->successors();
    if (Idx < Succs.size()) {
      BasicBlock *S = Succs[Idx++];
      if (!contains(S))
        continue;
      int C = Color[S];
      if (C == 1)
        return false; // back edge
      if (C == 0) {
        Color[S] = 1;
        Stack.push_back({S, 0});
      }
    } else {
      Color[BB] = 2;
      Stack.pop_back();
    }
  }
  return true;
}

unsigned SESESubgraph::totalLatency() const {
  unsigned Total = 0;
  for (BasicBlock *BB : Blocks)
    Total += CostModel::getBlockLatency(*BB);
  return Total;
}

std::optional<MeldableRegion>
darm::detectMeldableRegion(BasicBlock *BB, const RegionQuery &RQ,
                           const DivergenceAnalysis &DA) {
  auto *Br = dyn_cast_or_null<CondBrInst>(BB->getTerminator());
  if (!Br)
    return std::nullopt;
  // Condition 1 of Definition 5: the entry branch is divergent.
  if (!DA.isDivergent(Br->getCondition()))
    return std::nullopt;

  BasicBlock *BT = Br->getTrueSuccessor();
  BasicBlock *BF = Br->getFalseSuccessor();
  if (BT == BF)
    return std::nullopt;

  RegionDesc R = RQ.getSmallestRegion(BB);
  if (!R.isValid())
    return std::nullopt;

  // Condition 2: neither successor post-dominates the other, so both paths
  // contain at least one SESE subgraph.
  const PostDominatorTree &PDT = RQ.getPostDomTree();
  if (!PDT.isReachable(BT) || !PDT.isReachable(BF))
    return std::nullopt;
  if (PDT.dominates(BT, BF) || PDT.dominates(BF, BT))
    return std::nullopt;
  if (BT == R.Exit || BF == R.Exit)
    return std::nullopt;

  MeldableRegion MR;
  MR.Entry = BB;
  MR.Exit = R.Exit;
  MR.Cond = Br->getCondition();
  return MR;
}

namespace {

/// Finds the next SESE subgraph starting at \p Cur inside the region, or
/// nullopt if the path is unstructured at this point.
std::optional<SESESubgraph>
carveSubgraph(BasicBlock *Cur, BasicBlock *RegionExit,
              const std::set<BasicBlock *> &RegionBlocks,
              const RegionQuery &RQ) {
  const PostDominatorTree &PDT = RQ.getPostDomTree();
  if (!PDT.isReachable(Cur))
    return std::nullopt;

  // The nearest post-dominator that closes a region gives the *finest*
  // decomposition (single blocks stay single; an if-then becomes one
  // multi-block subgraph).
  for (BasicBlock *X = PDT.getIDom(Cur); X; X = PDT.getIDom(X)) {
    bool XInside = RegionBlocks.count(X) || X == RegionExit;
    if (!XInside)
      break;
    if (!RQ.isRegion(Cur, X))
      continue;
    std::set<BasicBlock *> Body = RQ.collectBlocks(Cur, X);
    bool Inside = true;
    for (BasicBlock *B : Body)
      if (!RegionBlocks.count(B)) {
        Inside = false;
        break;
      }
    if (!Inside)
      break;

    // A SESE subgraph needs exactly one exit edge; a diamond whose arms
    // both edge into the candidate exit is not SESE at this level, so keep
    // walking up the post-dominator chain (the subgraph then extends
    // *through* the join block, like (C, X1) in the paper's Fig. 4).
    BasicBlock *Last = nullptr;
    unsigned ExitEdges = 0;
    for (BasicBlock *P : X->predecessors())
      if (Body.count(P)) {
        ++ExitEdges;
        Last = P;
      }
    if (ExitEdges != 1)
      continue;

    SESESubgraph SG;
    SG.Entry = Cur;
    SG.ExitTarget = X;
    SG.LastBlock = Last;
    // Pre-order DFS for deterministic block order.
    std::set<BasicBlock *> Visited{Cur};
    std::vector<BasicBlock *> Stack{Cur};
    while (!Stack.empty()) {
      BasicBlock *B = Stack.back();
      Stack.pop_back();
      SG.Blocks.push_back(B);
      std::vector<BasicBlock *> Succs = B->successors();
      // Push in reverse so the true arm is visited first.
      for (auto It = Succs.rbegin(); It != Succs.rend(); ++It)
        if (*It != X && Body.count(*It) && Visited.insert(*It).second)
          Stack.push_back(*It);
    }
    return SG;
  }
  return std::nullopt;
}

/// Inserts \p Xnew-style merge blocks so that the subgraph ending before
/// \p Target has exactly one exit edge. \p BodyPreds are the body blocks
/// with edges into Target. Returns the new merge block.
BasicBlock *mergeExitEdges(Function &F, BasicBlock *Target,
                           const std::vector<BasicBlock *> &BodyPreds) {
  Context &Ctx = F.getContext();
  BasicBlock *Xnew = F.createBlock(Target->getName() + ".merge", Target);

  // Migrate phi entries: values arriving from BodyPreds now merge in Xnew.
  for (PhiInst *P : Target->phis()) {
    std::vector<std::pair<Value *, BasicBlock *>> Moved;
    for (BasicBlock *Pred : BodyPreds) {
      int Idx = P->getBlockIndex(Pred);
      if (Idx < 0)
        continue;
      Moved.push_back({P->getIncomingValue(static_cast<unsigned>(Idx)), Pred});
      P->removeIncoming(static_cast<unsigned>(Idx));
    }
    if (Moved.empty())
      continue;
    if (Moved.size() == 1) {
      P->addIncoming(Moved.front().first, Xnew);
    } else {
      auto *NewPhi = new PhiInst(P->getType());
      Xnew->insert(Xnew->begin(), NewPhi);
      for (const auto &[V, Pred] : Moved)
        NewPhi->addIncoming(V, Pred);
      P->addIncoming(NewPhi, Xnew);
    }
  }
  for (BasicBlock *Pred : BodyPreds)
    Pred->getTerminator()->replaceSuccessor(Target, Xnew);
  Xnew->push_back(new BrInst(Target, Ctx.getVoidTy()));
  return Xnew;
}

/// Walks one divergent path, inserting merge blocks wherever a candidate
/// subgraph has several exit edges. Returns true on CFG change.
bool simplifyPath(Function &F, BasicBlock *PathStart, BasicBlock *RegionExit,
                  const RegionQuery &RQ,
                  const std::set<BasicBlock *> &RegionBlocks) {
  bool Changed = false;
  const PostDominatorTree &PDT = RQ.getPostDomTree();
  BasicBlock *Cur = PathStart;
  unsigned Guard = 0;
  while (Cur != RegionExit && ++Guard < 1024) {
    if (!PDT.isReachable(Cur))
      break;
    // Find this element's exit the same way carveSubgraph does.
    BasicBlock *Exit = nullptr;
    std::set<BasicBlock *> Body;
    for (BasicBlock *X = PDT.getIDom(Cur); X; X = PDT.getIDom(X)) {
      bool XInside = RegionBlocks.count(X) || X == RegionExit;
      if (!XInside)
        break;
      if (!RQ.isRegion(Cur, X))
        continue;
      std::set<BasicBlock *> B = RQ.collectBlocks(Cur, X);
      bool Inside = true;
      for (BasicBlock *BB : B)
        if (!RegionBlocks.count(BB)) {
          Inside = false;
          break;
        }
      if (!Inside)
        break;
      Exit = X;
      Body = std::move(B);
      break;
    }
    if (!Exit)
      break; // unstructured; buildChains will reject it

    std::vector<BasicBlock *> BodyPreds;
    for (BasicBlock *P : Exit->predecessors())
      if (Body.count(P))
        BodyPreds.push_back(P);
    if (BodyPreds.size() > 1) {
      mergeExitEdges(F, Exit, BodyPreds);
      Changed = true;
      // The merge block joins the body; chain continues at Exit either
      // way. (Analyses are stale now; the caller recomputes them.)
    }
    Cur = Exit;
  }
  return Changed;
}

} // namespace

bool darm::simplifyRegion(Function &F, MeldableRegion &MR,
                          const RegionQuery &RQ) {
  std::set<BasicBlock *> Blocks = RQ.collectBlocks(MR.Entry, MR.Exit);
  auto *Br = cast<CondBrInst>(MR.Entry->getTerminator());
  bool Changed = false;
  Changed |=
      simplifyPath(F, Br->getTrueSuccessor(), MR.Exit, RQ, Blocks);
  Changed |=
      simplifyPath(F, Br->getFalseSuccessor(), MR.Exit, RQ, Blocks);
  return Changed;
}

bool darm::buildChains(MeldableRegion &MR, const RegionQuery &RQ) {
  std::set<BasicBlock *> Blocks = RQ.collectBlocks(MR.Entry, MR.Exit);
  auto *Br = cast<CondBrInst>(MR.Entry->getTerminator());

  auto BuildPath = [&](BasicBlock *Start,
                       std::vector<SESESubgraph> &Chain) -> bool {
    BasicBlock *Cur = Start;
    unsigned Guard = 0;
    while (Cur != MR.Exit && ++Guard < 1024) {
      std::optional<SESESubgraph> SG =
          carveSubgraph(Cur, MR.Exit, Blocks, RQ);
      if (!SG)
        return false;
      BasicBlock *Next = SG->ExitTarget;
      Chain.push_back(std::move(*SG));
      Cur = Next;
    }
    return Cur == MR.Exit && !Chain.empty();
  };

  MR.TrueChain.clear();
  MR.FalseChain.clear();
  return BuildPath(Br->getTrueSuccessor(), MR.TrueChain) &&
         BuildPath(Br->getFalseSuccessor(), MR.FalseChain);
}

std::optional<std::vector<std::pair<BasicBlock *, BasicBlock *>>>
darm::matchSubgraphStructure(const SESESubgraph &T, const SESESubgraph &F) {
  if (T.Blocks.size() != F.Blocks.size())
    return std::nullopt;

  std::map<BasicBlock *, BasicBlock *> Map; // T-side -> F-side
  std::set<BasicBlock *> MappedF;
  std::vector<std::pair<BasicBlock *, BasicBlock *>> Order;
  std::vector<std::pair<BasicBlock *, BasicBlock *>> Stack;

  auto AddPair = [&](BasicBlock *A, BasicBlock *B) {
    Map[A] = B;
    MappedF.insert(B);
    Order.push_back({A, B});
    Stack.push_back({A, B});
  };
  AddPair(T.Entry, F.Entry);

  while (!Stack.empty()) {
    auto [A, B] = Stack.back();
    Stack.pop_back();
    Instruction *TA = A->getTerminator();
    Instruction *TB = B->getTerminator();
    if (!TA || !TB || TA->getOpcode() != TB->getOpcode())
      return std::nullopt;
    unsigned N = TA->getNumSuccessors();
    if (N != TB->getNumSuccessors())
      return std::nullopt;
    for (unsigned I = 0; I != N; ++I) {
      BasicBlock *SA = TA->getSuccessor(I);
      BasicBlock *SB = TB->getSuccessor(I);
      bool ExitA = (SA == T.ExitTarget);
      bool ExitB = (SB == F.ExitTarget);
      if (ExitA != ExitB)
        return std::nullopt;
      if (ExitA)
        continue;
      if (!T.contains(SA) || !F.contains(SB))
        return std::nullopt; // edge escaping the body: not simple
      auto It = Map.find(SA);
      if (It != Map.end()) {
        if (It->second != SB)
          return std::nullopt;
        continue;
      }
      if (MappedF.count(SB))
        return std::nullopt;
      AddPair(SA, SB);
    }
  }
  if (Order.size() != T.Blocks.size())
    return std::nullopt; // some body block unreachable in lockstep walk
  return Order;
}

MeldCandidate darm::analyzeMeldability(const SESESubgraph &T,
                                       const SESESubgraph &F,
                                       const DARMConfig &Cfg) {
  MeldCandidate C;
  C.TrueSG = &T;
  C.FalseSG = &F;

  // Convergent operations must stay out of melded control flow.
  if (T.hasConvergentOps() || F.hasConvergentOps())
    return C;

  double AbsSaving = 0;
  if (T.isSingleBlock() && F.isSingleBlock()) {
    C.Kind = MeldKind::BlockBlock;
    C.Mapping = {{T.Entry, F.Entry}};
    C.Profit = blockMeldProfitWithOverhead(*T.Entry, *F.Entry, &AbsSaving);
    if (AbsSaving < Cfg.MinAbsoluteSaving)
      C.Kind = MeldKind::None;
    return C;
  }

  if (!T.isSingleBlock() && !F.isSingleBlock()) {
    auto Mapping = matchSubgraphStructure(T, F);
    if (!Mapping)
      return C;
    C.Kind = MeldKind::RegionRegion;
    C.Mapping = std::move(*Mapping);
    C.Profit = subgraphMeldProfitWithOverhead(C.Mapping, &AbsSaving);
    if (AbsSaving < Cfg.MinAbsoluteSaving)
      C.Kind = MeldKind::None;
    return C;
  }

  // Single block vs. region: region replication (case 2). Restricted to
  // acyclic region bodies (steering through a replicated loop is not
  // meaningful).
  if (!Cfg.EnableRegionReplication)
    return C;
  const SESESubgraph &Single = T.isSingleBlock() ? T : F;
  const SESESubgraph &Region = T.isSingleBlock() ? F : T;
  if (!Region.isAcyclic())
    return C;

  BasicBlock *Best = nullptr;
  double BestProfit = -1.0;
  double BestAbs = 0;
  for (BasicBlock *BB : Region.Blocks) {
    double Abs = 0;
    double P = blockMeldProfitWithOverhead(*Single.Entry, *BB, &Abs);
    if (P > BestProfit) {
      BestProfit = P;
      Best = BB;
      BestAbs = Abs;
    }
  }
  if (!Best || BestAbs < Cfg.MinAbsoluteSaving)
    return C;
  C.Kind = MeldKind::BlockRegion;
  C.BestMatch = Best;
  C.SingleIsTrue = T.isSingleBlock();
  C.Mapping = {T.isSingleBlock()
                   ? std::make_pair(Single.Entry, Best)
                   : std::make_pair(Best, Single.Entry)};
  // MP_S over the correspondence O = {(A, BestMatch)} collapses to MP_B of
  // the matched pair (§IV-C: the alignment scores the pair by its melding
  // profitability; unmatched region blocks are not in O).
  C.Profit = BestProfit;
  return C;
}

std::vector<MeldCandidate> darm::alignChains(const MeldableRegion &MR,
                                             const DARMConfig &Cfg) {
  const auto &TC = MR.TrueChain;
  const auto &FC = MR.FalseChain;

  // In DiamondOnly (branch fusion) mode only pure diamonds are melded:
  // one single-block subgraph on each path.
  if (Cfg.DiamondOnly) {
    if (TC.size() != 1 || FC.size() != 1 || !TC[0].isSingleBlock() ||
        !FC[0].isSingleBlock())
      return {};
    MeldCandidate C = analyzeMeldability(TC[0], FC[0], Cfg);
    if (C.Kind == MeldKind::BlockBlock && C.Profit >= Cfg.ProfitThreshold)
      return {C};
    return {};
  }

  // Memoize candidate analysis for the SW scoring function.
  std::map<std::pair<unsigned, unsigned>, MeldCandidate> Memo;
  auto GetCand = [&](unsigned I, unsigned J) -> const MeldCandidate & {
    auto Key = std::make_pair(I, J);
    auto It = Memo.find(Key);
    if (It == Memo.end())
      It = Memo.emplace(Key, analyzeMeldability(TC[I], FC[J], Cfg)).first;
    return It->second;
  };

  auto Score = [&](unsigned I, unsigned J) -> double {
    const MeldCandidate &C = GetCand(I, J);
    return C.Kind == MeldKind::None ? -1e9 : C.Profit;
  };

  std::vector<MeldCandidate> Result;
  for (const AlignEntry &E :
       smithWaterman(static_cast<unsigned>(TC.size()),
                     static_cast<unsigned>(FC.size()), Score,
                     Cfg.SubgraphGapPenalty)) {
    if (!E.isMatch())
      continue;
    const MeldCandidate &C = GetCand(static_cast<unsigned>(E.A),
                                     static_cast<unsigned>(E.B));
    if (C.Kind != MeldKind::None && C.Profit >= Cfg.ProfitThreshold)
      Result.push_back(C);
  }
  return Result;
}
