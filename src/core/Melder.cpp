//===- Melder.cpp - Subgraph melding code generation ----------------------------===//

#include "darm/core/Melder.h"

#include "darm/core/InstructionAlign.h"
#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/Module.h"

#include <map>
#include <set>

using namespace darm;

namespace {

/// Which divergent path an instruction came from.
enum class Side : uint8_t { True, False };

/// All bookkeeping for melding one candidate.
class MeldingSession {
public:
  MeldingSession(Function &F, Value *Cond, const MeldCandidate &Cand,
                 const DARMConfig &Cfg, DARMStats *Stats)
      : F(F), Ctx(F.getContext()), Cond(Cond), Cand(Cand), Cfg(Cfg),
        Stats(Stats) {}

  bool run();

private:
  struct PairInfo {
    BasicBlock *TrueBB = nullptr;  // may be null (gap block in replication)
    BasicBlock *FalseBB = nullptr; // may be null
    BasicBlock *Melded = nullptr;
  };

  // -- helpers -------------------------------------------------------------
  Value *lookup(Value *V) const {
    auto It = OperandMap.find(V);
    return It == OperandMap.end() ? V : It->second;
  }

  BasicBlock *mapBlock(Side S, BasicBlock *BB) const {
    const auto &M = (S == Side::True) ? BlockMapT : BlockMapF;
    auto It = M.find(BB);
    return It == M.end() ? nullptr : It->second;
  }

  const SESESubgraph &sideSG(Side S) const {
    return (S == Side::True) ? *Cand.TrueSG : *Cand.FalseSG;
  }
  BasicBlock *sideLast(Side S) const {
    return (S == Side::True) ? LastT : LastF;
  }
  BasicBlock *sideExitBlock(Side S) const {
    return (S == Side::True) ? ExitT : ExitF;
  }

  void buildPairList();
  void createMeldedBlocks();
  void clonePhis(const PairInfo &P);
  void cloneBody(const PairInfo &P);
  void cloneTerminator(const PairInfo &P);
  void buildExitBlocks();
  void rewireEntries();
  void redirectExitPhis();
  void wireOperands();
  void coverPhis();
  void replaceExternalUses();
  void deleteOriginalBlocks();
  void applyUnpredication(const std::vector<BasicBlock *> &Targets);
  void applyFullPredication();
  /// Values that can evaluate differently for the lanes of the other
  /// side: melding-inserted selects, phis of melded blocks, and
  /// everything data-dependent on them (forward closure over uses). A
  /// predicated store whose address is in this set would write
  /// wrong-side addresses for disabled lanes.
  std::set<Value *> computeSideDependentValues() const;
  /// Wraps \p St in its own conditionally executed block so only \p S
  /// lanes reach it (the sound fallback for side-dependent addresses).
  void guardStore(StoreInst *St, Side S);

  Value *selectBetween(Value *VT, Value *VF, Instruction *Before);
  /// Steering constant for a replicated branch: the successor arm that
  /// keeps the single block's lanes on a path through BestMatch (or any
  /// path to the exit once BestMatch is behind them).
  bool steerToward(BasicBlock *BranchBB) const;
  bool reaches(BasicBlock *From, BasicBlock *To) const;

  Function &F;
  Context &Ctx;
  Value *Cond;
  const MeldCandidate &Cand;
  const DARMConfig &Cfg;
  DARMStats *Stats;

  std::vector<PairInfo> Pairs;
  std::map<Value *, Value *> OperandMap;
  std::map<BasicBlock *, BasicBlock *> BlockMapT, BlockMapF;
  // Melded instruction -> its two sources (match) or one source (gap).
  std::map<Instruction *, std::pair<Instruction *, Instruction *>> MatchSrc;
  std::map<Instruction *, std::pair<Instruction *, Side>> GapSrc;
  std::map<Instruction *, std::pair<PhiInst *, Side>> PhiSrc;
  // Selects inserted by this meld (side-dependent by construction) and
  // the melded blocks themselves (whose phis are side-dependent).
  std::set<Instruction *> MeldSelects;
  std::set<BasicBlock *> MeldedBlockSet;
  // Internal melded terminators -> source terminators (one per side; null
  // for the missing side in replication mode).
  std::map<Instruction *, std::pair<Instruction *, Instruction *>> TermSrc;
  // Exit machinery.
  BasicBlock *LastT = nullptr, *LastF = nullptr; // per-side last blocks
  BasicBlock *ExitT = nullptr, *ExitF = nullptr; // B'T and B'F
  Instruction *ExitCloneT = nullptr, *ExitCloneF = nullptr;
  BasicBlock *MeldedLast = nullptr;
  /// True when the two exit branches melded into one conditional branch on
  /// a select'ed condition (Fig. 6c): lanes looping back stay converged
  /// and only exiting lanes split by C (via ExitSplit -> B'T/B'F).
  bool UnifiedExit = false;
  BasicBlock *ExitSplit = nullptr;
};

Value *MeldingSession::selectBetween(Value *VT, Value *VF,
                                     Instruction *Before) {
  if (VT == VF)
    return VT;
  // Undef on either side folds to the other: the lanes for which the
  // value is undef never consume it.
  if (isa<UndefValue>(VT))
    return VF;
  if (isa<UndefValue>(VF))
    return VT;
  auto *Sel = new SelectInst(Cond, VT, VF);
  Before->getParent()->insert(Before->getIterator(), Sel);
  MeldSelects.insert(Sel);
  if (Stats)
    ++Stats->SelectsInserted;
  return Sel;
}

bool MeldingSession::reaches(BasicBlock *From, BasicBlock *To) const {
  const SESESubgraph &Region =
      Cand.SingleIsTrue ? *Cand.FalseSG : *Cand.TrueSG;
  std::set<BasicBlock *> Seen{From};
  std::vector<BasicBlock *> Worklist{From};
  while (!Worklist.empty()) {
    BasicBlock *BB = Worklist.back();
    Worklist.pop_back();
    if (BB == To)
      return true;
    for (BasicBlock *S : BB->successors())
      if (Region.contains(S) && Seen.insert(S).second)
        Worklist.push_back(S);
  }
  return false;
}

bool MeldingSession::steerToward(BasicBlock *BranchBB) const {
  Instruction *T = BranchBB->getTerminator();
  assert(T->getNumSuccessors() == 2 && "steering a non-conditional branch");
  const SESESubgraph &Region =
      Cand.SingleIsTrue ? *Cand.FalseSG : *Cand.TrueSG;
  BasicBlock *S0 = T->getSuccessor(0);
  // Prefer the arm that still reaches the host block; once past it (or if
  // unreachable either way), any arm leads to the subgraph exit because
  // the body is acyclic.
  if (Region.contains(S0) && reaches(S0, Cand.BestMatch))
    return true;
  BasicBlock *S1 = T->getSuccessor(1);
  if (Region.contains(S1) && reaches(S1, Cand.BestMatch))
    return false;
  return true;
}

void MeldingSession::buildPairList() {
  switch (Cand.Kind) {
  case MeldKind::BlockBlock:
  case MeldKind::RegionRegion:
    for (const auto &[BT, BF] : Cand.Mapping)
      Pairs.push_back({BT, BF, nullptr});
    LastT = Cand.TrueSG->LastBlock;
    LastF = Cand.FalseSG->LastBlock;
    break;
  case MeldKind::BlockRegion: {
    const SESESubgraph &Single =
        Cand.SingleIsTrue ? *Cand.TrueSG : *Cand.FalseSG;
    const SESESubgraph &Region =
        Cand.SingleIsTrue ? *Cand.FalseSG : *Cand.TrueSG;
    for (BasicBlock *R : Region.Blocks) {
      BasicBlock *S = (R == Cand.BestMatch) ? Single.Entry : nullptr;
      if (Cand.SingleIsTrue)
        Pairs.push_back({S, R, nullptr});
      else
        Pairs.push_back({R, S, nullptr});
    }
    // The single block *is* its side's last block; the region side exits
    // from its own last block.
    LastT = Cand.SingleIsTrue ? Single.Entry : Region.LastBlock;
    LastF = Cand.SingleIsTrue ? Region.LastBlock : Single.Entry;
    break;
  }
  case MeldKind::None:
    break;
  }
}

void MeldingSession::createMeldedBlocks() {
  for (PairInfo &P : Pairs) {
    std::string Name;
    if (P.TrueBB && P.FalseBB)
      Name = P.TrueBB->getName() + "_" + P.FalseBB->getName();
    else
      Name = (P.TrueBB ? P.TrueBB : P.FalseBB)->getName() + ".meld";
    P.Melded = F.createBlock(Name);
    if (P.TrueBB)
      BlockMapT[P.TrueBB] = P.Melded;
    if (P.FalseBB)
      BlockMapF[P.FalseBB] = P.Melded;
  }
}

void MeldingSession::clonePhis(const PairInfo &P) {
  for (Side S : {Side::True, Side::False}) {
    BasicBlock *Src = (S == Side::True) ? P.TrueBB : P.FalseBB;
    if (!Src)
      continue;
    const SESESubgraph &SG = sideSG(S);
    for (PhiInst *Phi : Src->phis()) {
      // A phi whose only entry comes through the subgraph's entry edge is
      // a plain inflow; forward the value instead of copying the phi.
      if (Phi->getNumIncoming() == 1 &&
          !SG.contains(Phi->getIncomingBlock(0))) {
        OperandMap[Phi] = Phi->getIncomingValue(0);
        continue;
      }
      auto *Copy = cast<PhiInst>(Phi->clone());
      P.Melded->insert(P.Melded->begin(), Copy);
      OperandMap[Phi] = Copy;
      PhiSrc[Copy] = {Phi, S};
    }
  }
}

void MeldingSession::cloneBody(const PairInfo &P) {
  if (P.TrueBB && P.FalseBB) {
    for (const InstrAlignEntry &E :
         alignInstructions(P.TrueBB, P.FalseBB, Cfg.InstrGapPenalty)) {
      if (E.isMatch()) {
        Instruction *Clone = E.TrueInst->clone();
        P.Melded->push_back(Clone);
        OperandMap[E.TrueInst] = Clone;
        OperandMap[E.FalseInst] = Clone;
        MatchSrc[Clone] = {E.TrueInst, E.FalseInst};
        continue;
      }
      Instruction *Src = E.TrueInst ? E.TrueInst : E.FalseInst;
      Instruction *Clone = Src->clone();
      P.Melded->push_back(Clone);
      OperandMap[Src] = Clone;
      GapSrc[Clone] = {Src, E.TrueInst ? Side::True : Side::False};
    }
    return;
  }
  // Gap-only block (region replication): every instruction keeps its side.
  Side S = P.TrueBB ? Side::True : Side::False;
  BasicBlock *Src = P.TrueBB ? P.TrueBB : P.FalseBB;
  for (Instruction *I : alignableInstructions(Src)) {
    Instruction *Clone = I->clone();
    P.Melded->push_back(Clone);
    OperandMap[I] = Clone;
    GapSrc[Clone] = {I, S};
  }
}

void MeldingSession::cloneTerminator(const PairInfo &P) {
  // The structural side drives control flow: the true side for two-sided
  // melds, the region side for replication.
  Side Structural =
      (Cand.Kind == MeldKind::BlockRegion && Cand.SingleIsTrue) ? Side::False
                                                                : Side::True;
  BasicBlock *Src = (Structural == Side::True) ? P.TrueBB : P.FalseBB;
  assert(Src && "structural side must exist");
  if (Src == sideLast(Structural)) {
    MeldedLast = P.Melded;
    return; // terminator handled by buildExitBlocks
  }
  Instruction *T = Src->getTerminator();
  Instruction *Clone = T->clone();
  // Remap successors through the structural block map (internal targets
  // only: non-last blocks never edge to the exit in a simple region).
  for (unsigned I = 0, E = Clone->getNumSuccessors(); I != E; ++I) {
    BasicBlock *M = mapBlock(Structural, Clone->getSuccessor(I));
    assert(M && "internal successor not in the meld");
    Clone->setSuccessor(I, M);
  }
  P.Melded->push_back(Clone);
  Instruction *OtherT = nullptr;
  if (P.TrueBB && P.FalseBB)
    OtherT = ((Structural == Side::True) ? P.FalseBB : P.TrueBB)
                 ->getTerminator();
  TermSrc[Clone] = (Structural == Side::True)
                       ? std::make_pair(T, OtherT)
                       : std::make_pair(OtherT, T);
}

void MeldingSession::buildExitBlocks() {
  assert(MeldedLast && "no melded last block identified");
  ExitT = F.createBlock(MeldedLast->getName() + ".exit.t");
  ExitF = F.createBlock(MeldedLast->getName() + ".exit.f");

  // Try to meld the two exit branches into a single conditional branch
  // (§IV-D / Fig. 6c): possible when both are condbr and their successor
  // slots correspond (same exit slot; internal slots map to the same
  // melded block). Crucial for melded loops: the back edge then keeps the
  // warp converged instead of re-diverging every iteration.
  auto *CBT = dyn_cast_or_null<CondBrInst>(LastT->getTerminator());
  auto *CBF = dyn_cast_or_null<CondBrInst>(LastF->getTerminator());
  bool CanUnify = CBT && CBF;
  int ExitSlot = -1;
  if (CanUnify) {
    for (unsigned I = 0; I < 2 && CanUnify; ++I) {
      bool ExitA = CBT->getSuccessor(I) == Cand.TrueSG->ExitTarget;
      bool ExitB = CBF->getSuccessor(I) == Cand.FalseSG->ExitTarget;
      if (ExitA != ExitB) {
        CanUnify = false;
      } else if (ExitA) {
        ExitSlot = static_cast<int>(I);
      } else if (mapBlock(Side::True, CBT->getSuccessor(I)) !=
                     mapBlock(Side::False, CBF->getSuccessor(I)) ||
                 !mapBlock(Side::True, CBT->getSuccessor(I))) {
        CanUnify = false;
      }
    }
    if (ExitSlot < 0)
      CanUnify = false; // last block must own the exit edge
  }

  if (CanUnify) {
    UnifiedExit = true;
    ExitT->push_back(
        new BrInst(Cand.TrueSG->ExitTarget, Ctx.getVoidTy()));
    ExitF->push_back(
        new BrInst(Cand.FalseSG->ExitTarget, Ctx.getVoidTy()));
    ExitSplit = F.createBlock(MeldedLast->getName() + ".exit");
    ExitSplit->push_back(new CondBrInst(Cond, ExitT, ExitF, Ctx.getVoidTy()));
    auto *Melded = cast<CondBrInst>(CBT->clone());
    for (unsigned I = 0; I < 2; ++I) {
      if (static_cast<int>(I) == ExitSlot)
        Melded->setSuccessor(I, ExitSplit);
      else
        Melded->setSuccessor(I, mapBlock(Side::True, CBT->getSuccessor(I)));
    }
    MeldedLast->push_back(Melded);
    // Pass 2 rewires the condition to select(C, condT', condF').
    TermSrc[Melded] = {CBT, CBF};
    return;
  }

  auto CloneExit = [&](Side S, BasicBlock *Host) -> Instruction * {
    BasicBlock *Last = sideLast(S);
    Instruction *T = Last->getTerminator();
    Instruction *Clone = T->clone();
    for (unsigned I = 0, E = Clone->getNumSuccessors(); I != E; ++I) {
      BasicBlock *Succ = Clone->getSuccessor(I);
      if (Succ == sideSG(S).ExitTarget)
        continue; // leave the region exit edge as-is
      BasicBlock *M = mapBlock(S, Succ);
      assert(M && "internal successor of last block not melded");
      Clone->setSuccessor(I, M);
    }
    Host->push_back(Clone);
    return Clone;
  };
  ExitCloneT = CloneExit(Side::True, ExitT);
  ExitCloneF = CloneExit(Side::False, ExitF);
  MeldedLast->push_back(new CondBrInst(Cond, ExitT, ExitF, Ctx.getVoidTy()));
}

void MeldingSession::rewireEntries() {
  for (Side S : {Side::True, Side::False}) {
    const SESESubgraph &SG = sideSG(S);
    BasicBlock *MeldedEntry = Pairs.front().Melded;
    // Snapshot the outside predecessors (the unique entry edge source; a
    // loop-header entry also has internal preds, which die with the
    // subgraph).
    std::vector<BasicBlock *> Outside;
    for (BasicBlock *Pred : SG.Entry->predecessors())
      if (!SG.contains(Pred) &&
          std::find(Outside.begin(), Outside.end(), Pred) == Outside.end())
        Outside.push_back(Pred);
    for (BasicBlock *Pred : Outside)
      Pred->getTerminator()->replaceSuccessor(SG.Entry, MeldedEntry);
  }
}

void MeldingSession::redirectExitPhis() {
  Cand.TrueSG->ExitTarget->replacePhiIncomingBlock(LastT, ExitT);
  Cand.FalseSG->ExitTarget->replacePhiIncomingBlock(LastF, ExitF);
}

void MeldingSession::wireOperands() {
  for (const PairInfo &P : Pairs) {
    for (Instruction *I : *P.Melded) {
      if (auto MS = MatchSrc.find(I); MS != MatchSrc.end()) {
        auto [IT, IF] = MS->second;
        for (unsigned K = 0, E = I->getNumOperands(); K != E; ++K) {
          Value *VT = lookup(IT->getOperand(K));
          Value *VF = lookup(IF->getOperand(K));
          I->setOperand(K, selectBetween(VT, VF, I));
        }
        continue;
      }
      if (auto GS = GapSrc.find(I); GS != GapSrc.end()) {
        Instruction *Src = GS->second.first;
        for (unsigned K = 0, E = I->getNumOperands(); K != E; ++K)
          I->setOperand(K, lookup(Src->getOperand(K)));
        continue;
      }
      if (auto PS = PhiSrc.find(I); PS != PhiSrc.end()) {
        auto *Phi = cast<PhiInst>(I);
        auto [SrcPhi, S] = PS->second;
        for (unsigned K = 0, E = Phi->getNumIncoming(); K != E; ++K) {
          Phi->setIncomingValue(K, lookup(SrcPhi->getIncomingValue(K)));
          BasicBlock *In = SrcPhi->getIncomingBlock(K);
          if (!UnifiedExit && In == sideLast(S)) {
            // The last block's branch now lives in B'side. (With a
            // unified exit the back edge stays in MeldedLast, which the
            // block map already yields.)
            Phi->setIncomingBlock(K, sideExitBlock(S));
          } else if (BasicBlock *M = mapBlock(S, In)) {
            Phi->setIncomingBlock(K, M);
          } else {
            assert(!sideSG(S).contains(In) && "unmapped internal predecessor");
            // Outside pred: stays (entry edge).
          }
        }
        continue;
      }
      if (auto TS = TermSrc.find(I); TS != TermSrc.end()) {
        auto [TT, TF] = TS->second;
        if (auto *CB = dyn_cast<CondBrInst>(I)) {
          Value *CT, *CF;
          if (Cand.Kind == MeldKind::BlockRegion) {
            // Concretize the replicated branch so the single block's lanes
            // always pass through the host block (§IV-C case 2).
            Instruction *RT = Cand.SingleIsTrue ? TF : TT;
            Value *RegionCond =
                lookup(cast<CondBrInst>(RT)->getCondition());
            Value *Steer = Ctx.getBool(steerToward(RT->getParent()));
            CT = Cand.SingleIsTrue ? Steer : RegionCond;
            CF = Cand.SingleIsTrue ? RegionCond : Steer;
          } else {
            CT = lookup(cast<CondBrInst>(TT)->getCondition());
            CF = lookup(cast<CondBrInst>(TF)->getCondition());
          }
          CB->setCondition(selectBetween(CT, CF, CB));
        }
        continue;
      }
    }
  }
  // Exit clones (non-unified mode) use only their own side's values; no
  // selects needed.
  if (!UnifiedExit) {
    for (Side S : {Side::True, Side::False}) {
      Instruction *Clone = (S == Side::True) ? ExitCloneT : ExitCloneF;
      Instruction *Src = sideLast(S)->getTerminator();
      for (unsigned K = 0, E = Clone->getNumOperands(); K != E; ++K)
        Clone->setOperand(K, lookup(Src->getOperand(K)));
    }
  }
}

void MeldingSession::coverPhis() {
  // Melded blocks now have their final predecessors; phi entries must
  // cover exactly the distinct preds. Missing entries feed undef (their
  // lanes never consume the value); stale entries are dropped.
  for (const PairInfo &P : Pairs) {
    std::set<BasicBlock *> PredSet(P.Melded->predecessors().begin(),
                                   P.Melded->predecessors().end());
    for (PhiInst *Phi : P.Melded->phis()) {
      for (int K = static_cast<int>(Phi->getNumIncoming()) - 1; K >= 0; --K)
        if (!PredSet.count(Phi->getIncomingBlock(static_cast<unsigned>(K))))
          Phi->removeIncoming(static_cast<unsigned>(K));
      std::set<BasicBlock *> Covered;
      for (unsigned K = 0, E = Phi->getNumIncoming(); K != E; ++K)
        Covered.insert(Phi->getIncomingBlock(K));
      for (BasicBlock *Pred : PredSet)
        if (!Covered.count(Pred))
          Phi->addIncoming(Ctx.getUndef(Phi->getType()), Pred);
    }
  }
}

void MeldingSession::replaceExternalUses() {
  for (const auto &[Orig, Melded] : OperandMap)
    if (Orig != Melded)
      Orig->replaceAllUsesWith(Melded);
}

void MeldingSession::deleteOriginalBlocks() {
  std::vector<BasicBlock *> Doomed;
  for (const PairInfo &P : Pairs) {
    if (P.TrueBB)
      Doomed.push_back(P.TrueBB);
    if (P.FalseBB)
      Doomed.push_back(P.FalseBB);
  }
  // Disconnect first so cyclic bodies become erasable.
  for (BasicBlock *BB : Doomed) {
    if (Instruction *T = BB->getTerminator()) {
      for (BasicBlock *Succ : BB->successors())
        Succ->removePhiEntriesFor(BB);
      BB->erase(T);
    }
  }
  for (BasicBlock *BB : Doomed)
    F.eraseBlock(BB);
}

void MeldingSession::applyUnpredication(
    const std::vector<BasicBlock *> &Targets) {
  // Split each targeted block at gap-run boundaries and guard the runs by
  // the divergent condition (§IV-E, Fig. 3c).
  std::vector<BasicBlock *> Work = Targets;

  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();

    // Find the first gap run.
    BasicBlock::iterator RunBegin = BB->end();
    Side RunSide = Side::True;
    for (auto It = BB->begin(); It != BB->end(); ++It) {
      auto GS = GapSrc.find(*It);
      if (GS == GapSrc.end())
        continue;
      RunBegin = It;
      RunSide = GS->second.second;
      break;
    }
    if (RunBegin == BB->end())
      continue;
    auto RunEnd = RunBegin;
    while (RunEnd != BB->end()) {
      auto GS = GapSrc.find(*RunEnd);
      if (GS == GapSrc.end() || GS->second.second != RunSide)
        break;
      ++RunEnd;
    }
    // Split [RunBegin, RunEnd) into its own conditionally executed block.
    Instruction *RunEndInst = (RunEnd == BB->end()) ? nullptr : *RunEnd;
    BasicBlock *RunBB = BB->splitBefore(RunBegin, BB->getName() + ".split");
    BasicBlock *TailBB = RunBB->splitBefore(
        RunEndInst ? RunEndInst->getIterator() : RunBB->end(),
        BB->getName() + ".tail");
    // BB currently ends with `br RunBB`; make the run conditional.
    Instruction *Br = BB->getTerminator();
    BB->erase(Br);
    if (RunSide == Side::True)
      BB->push_back(new CondBrInst(Cond, RunBB, TailBB, Ctx.getVoidTy()));
    else
      BB->push_back(new CondBrInst(Cond, TailBB, RunBB, Ctx.getVoidTy()));
    if (Stats)
      ++Stats->UnpredicationSplits;
    // Gap instructions in the run are now guarded; strip them from the
    // map so nested re-scans terminate, then continue with the tail.
    for (Instruction *I : *RunBB)
      GapSrc.erase(I);
    Work.push_back(TailBB);
  }
}

std::set<Value *> MeldingSession::computeSideDependentValues() const {
  std::set<Value *> Dep;
  std::vector<Value *> Work;
  auto Add = [&](Value *V) {
    if (Dep.insert(V).second)
      Work.push_back(V);
  };
  for (Instruction *Sel : MeldSelects)
    Add(Sel);
  // Melded phis carry undef (or the other side's value) for wrong-side
  // lanes (coverPhis).
  for (BasicBlock *BB : MeldedBlockSet)
    for (PhiInst *Phi : BB->phis())
      Add(Phi);
  while (!Work.empty()) {
    Value *V = Work.back();
    Work.pop_back();
    for (const Use &U : V->uses())
      Add(U.TheUser);
  }
  return Dep;
}

void MeldingSession::guardStore(StoreInst *St, Side S) {
  BasicBlock *BB = St->getParent();
  BasicBlock *RunBB = BB->splitBefore(St->getIterator(),
                                      BB->getName() + ".stguard");
  auto TailPos = std::next(RunBB->begin());
  BasicBlock *TailBB =
      RunBB->splitBefore(TailPos, BB->getName() + ".sttail");
  Instruction *Br = BB->getTerminator();
  BB->erase(Br);
  if (S == Side::True)
    BB->push_back(new CondBrInst(Cond, RunBB, TailBB, Ctx.getVoidTy()));
  else
    BB->push_back(new CondBrInst(Cond, TailBB, RunBB, Ctx.getVoidTy()));
  if (Stats)
    ++Stats->GuardedStores;
}

void MeldingSession::applyFullPredication() {
  // Full predication of the gap instructions not covered by
  // unpredication: they execute under the full mask; stores must preserve
  // the other side's memory, so they become load + select + store (§IV-E:
  // "store instructions outside the melded blocks are fully predicated by
  // inserting extra loads").
  //
  // That lowering is only sound when disabled lanes evaluate the *same*
  // address the store's own side would: the inserted load/store pair is a
  // per-lane no-op only at a well-defined, in-bounds address. When the
  // address chain passes through melding-inserted selects or melded phis,
  // disabled lanes compute the other side's address — possibly out of
  // bounds, possibly aliasing an active lane's target (a stale write that
  // clobbers it). Such stores keep a real guard branch instead
  // (differential fuzzing flushed this out: seed 20's else-arm LDS store
  // melded its index computation with the then-arm's global index, and
  // then-lanes stored 96 elements past a 64-element LDS array).
  for (const PairInfo &P : Pairs)
    MeldedBlockSet.insert(P.Melded);
  const std::set<Value *> SideDep = computeSideDependentValues();
  std::vector<std::pair<StoreInst *, Side>> Guarded;
  for (const auto &[Melded, SrcSide] : GapSrc) {
    auto *St = dyn_cast<StoreInst>(Melded);
    if (!St)
      continue;
    Value *Ptr = St->getPointer();
    if (SideDep.count(Ptr)) {
      Guarded.push_back({St, SrcSide.second});
      continue;
    }
    auto *Old = new LoadInst(Ptr);
    St->getParent()->insert(St->getIterator(), Old);
    Value *NewVal = St->getValueOperand();
    Value *Guard = (SrcSide.second == Side::True)
                       ? selectBetween(NewVal, Old, St)
                       : selectBetween(static_cast<Value *>(Old), NewVal, St);
    St->setOperand(0, Guard);
  }
  // Split after the scan: block surgery invalidates GapSrc iteration.
  for (auto &[St, S] : Guarded)
    guardStore(St, S);
}

bool MeldingSession::run() {
  buildPairList();
  if (Pairs.empty())
    return false;
  createMeldedBlocks();
  for (const PairInfo &P : Pairs) {
    clonePhis(P);
    cloneBody(P);
  }
  for (const PairInfo &P : Pairs)
    cloneTerminator(P);
  buildExitBlocks();
  rewireEntries();
  redirectExitPhis();
  wireOperands();
  coverPhis();
  replaceExternalUses();
  deleteOriginalBlocks();
  // §IV-E: unpredication splits gap runs into guarded blocks. For region
  // replication it applies only to the melded (host) block; replicated
  // gap blocks are fully predicated instead — splitting them would bloat
  // the replicated structure with branches. Gap stores not covered by
  // unpredication get the load+select+store lowering.
  std::vector<BasicBlock *> UnpredTargets;
  if (Cfg.EnableUnpredication) {
    if (Cand.Kind == MeldKind::BlockRegion) {
      for (const PairInfo &P : Pairs)
        if (P.TrueBB && P.FalseBB)
          UnpredTargets.push_back(P.Melded);
    } else {
      for (const PairInfo &P : Pairs)
        UnpredTargets.push_back(P.Melded);
    }
  }
  applyUnpredication(UnpredTargets);
  applyFullPredication();
  if (Stats) {
    ++Stats->SubgraphPairsMelded;
    if (Cand.Kind == MeldKind::BlockRegion)
      ++Stats->BlockRegionMelds;
  }
  return true;
}

} // namespace

bool darm::meldCandidate(Function &F, Value *Cond, const MeldCandidate &Cand,
                         const DARMConfig &Cfg, DARMStats *Stats) {
  assert(Cand.Kind != MeldKind::None && "cannot meld a non-candidate");
  return MeldingSession(F, Cond, Cand, Cfg, Stats).run();
}
