//===- TailMerge.cpp - Tail merging baseline ------------------------------------===//

#include "darm/core/TailMerge.h"

#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/Module.h"

#include <map>

using namespace darm;

namespace {

/// Payload equality beyond opcode/type (predicate, intrinsic id).
bool samePayload(const Instruction *A, const Instruction *B) {
  switch (A->getOpcode()) {
  case Opcode::ICmp:
    return cast<ICmpInst>(A)->getPredicate() ==
           cast<ICmpInst>(B)->getPredicate();
  case Opcode::FCmp:
    return cast<FCmpInst>(A)->getPredicate() ==
           cast<FCmpInst>(B)->getPredicate();
  case Opcode::Call:
    return cast<CallInst>(A)->getIntrinsic() ==
           cast<CallInst>(B)->getIntrinsic();
  default:
    return true;
  }
}

/// True if the two arm blocks compute identical sequences: instruction I of
/// \p T2 must equal instruction I of \p T1 with operands matching either
/// directly or through the arms' positional correspondence \p Map.
bool armsIdentical(BasicBlock *T1, BasicBlock *T2,
                   std::map<Value *, Value *> &Map) {
  if (T1->size() != T2->size())
    return false;
  auto It1 = T1->begin(), It2 = T2->begin();
  for (; It1 != T1->end(); ++It1, ++It2) {
    Instruction *A = *It1, *B = *It2;
    if (A->getOpcode() != B->getOpcode() || A->getType() != B->getType() ||
        A->getNumOperands() != B->getNumOperands() || !samePayload(A, B))
      return false;
    if (A->isPhi())
      return false; // single-pred arms have no meaningful phis
    for (unsigned K = 0, E = A->getNumOperands(); K != E; ++K) {
      Value *OA = A->getOperand(K);
      Value *OB = B->getOperand(K);
      auto M = Map.find(OA);
      if (M != Map.end() ? (M->second != OB) : (OA != OB))
        return false;
    }
    Map[A] = B;
  }
  return true;
}

bool tryMergeAt(Function &F, BasicBlock *BB) {
  auto *Br = dyn_cast_or_null<CondBrInst>(BB->getTerminator());
  if (!Br)
    return false;
  BasicBlock *T1 = Br->getTrueSuccessor();
  BasicBlock *T2 = Br->getFalseSuccessor();
  if (T1 == T2 || T1 == BB || T2 == BB)
    return false;
  if (T1->getSinglePredecessor() != BB || T2->getSinglePredecessor() != BB)
    return false;
  BasicBlock *J1 = T1->getSingleSuccessor();
  BasicBlock *J2 = T2->getSingleSuccessor();
  if (!J1 || J1 != J2 || J1 == T1 || J1 == T2)
    return false;

  std::map<Value *, Value *> Map;
  if (!armsIdentical(T1, T2, Map))
    return false;

  // Join phis must agree on the two arms (directly or positionally).
  for (PhiInst *P : J1->phis()) {
    Value *V1 = P->getIncomingValueForBlock(T1);
    Value *V2 = P->getIncomingValueForBlock(T2);
    auto M = Map.find(V1);
    if (M != Map.end() ? (M->second != V2) : (V1 != V2))
      return false;
  }

  // Fold: both edges fall through T1; T2 dies.
  Context &Ctx = F.getContext();
  J1->removePhiEntriesFor(T2);
  BB->erase(Br);
  BB->push_back(new BrInst(T1, Ctx.getVoidTy()));
  // T2 still points at J1; disconnect and delete. Its values' uses, if
  // any, must be redirected to T1's (they are identical computations).
  for (auto It1 = T1->begin(), It2 = T2->begin(); It2 != T2->end();
       ++It1, ++It2)
    if (!(*It2)->getType()->isVoid() && (*It2)->hasUses())
      (*It2)->replaceAllUsesWith(*It1);
  T2->erase(T2->getTerminator());
  F.eraseBlock(T2);
  return true;
}

} // namespace

bool darm::runTailMerge(Function &F) {
  bool Any = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F)
      if (tryMergeAt(F, BB)) {
        Changed = true;
        Any = true;
        break; // block list mutated; restart scan
      }
  }
  return Any;
}
