//===- SequenceAlign.cpp - Smith-Waterman sequence alignment ------------------===//

#include "darm/core/SequenceAlign.h"

#include <algorithm>

using namespace darm;

namespace {

struct DPResult {
  std::vector<double> H; // (LenA+1) x (LenB+1), row-major
  unsigned BestI = 0, BestJ = 0;
  double BestScore = 0;
};

DPResult runDP(unsigned LenA, unsigned LenB,
               const std::function<double(unsigned, unsigned)> &Score,
               double GapPenalty) {
  DPResult R;
  unsigned W = LenB + 1;
  R.H.assign((LenA + 1) * W, 0.0);
  for (unsigned I = 1; I <= LenA; ++I) {
    for (unsigned J = 1; J <= LenB; ++J) {
      double Diag = R.H[(I - 1) * W + (J - 1)] + Score(I - 1, J - 1);
      double Up = R.H[(I - 1) * W + J] + GapPenalty;
      double Left = R.H[I * W + (J - 1)] + GapPenalty;
      double Best = std::max({0.0, Diag, Up, Left});
      R.H[I * W + J] = Best;
      if (Best > R.BestScore) {
        R.BestScore = Best;
        R.BestI = I;
        R.BestJ = J;
      }
    }
  }
  return R;
}

} // namespace

double darm::smithWatermanScore(
    unsigned LenA, unsigned LenB,
    const std::function<double(unsigned, unsigned)> &Score,
    double GapPenalty) {
  return runDP(LenA, LenB, Score, GapPenalty).BestScore;
}

std::vector<AlignEntry>
darm::smithWaterman(unsigned LenA, unsigned LenB,
                    const std::function<double(unsigned, unsigned)> &Score,
                    double GapPenalty) {
  DPResult R = runDP(LenA, LenB, Score, GapPenalty);
  unsigned W = LenB + 1;

  // Traceback from the best cell down to a zero cell.
  std::vector<AlignEntry> Window;
  unsigned I = R.BestI, J = R.BestJ;
  while (I > 0 && J > 0 && R.H[I * W + J] > 0.0) {
    double Cur = R.H[I * W + J];
    double Diag = R.H[(I - 1) * W + (J - 1)] + Score(I - 1, J - 1);
    if (Cur == Diag) {
      Window.push_back({static_cast<int>(I - 1), static_cast<int>(J - 1)});
      --I;
      --J;
    } else if (Cur == R.H[(I - 1) * W + J] + GapPenalty) {
      Window.push_back({static_cast<int>(I - 1), -1});
      --I;
    } else {
      Window.push_back({-1, static_cast<int>(J - 1)});
      --J;
    }
  }
  std::reverse(Window.begin(), Window.end());

  // Compose the full-coverage alignment: leading gaps, the window, and
  // trailing gaps.
  std::vector<AlignEntry> Full;
  for (unsigned K = 0; K < I; ++K)
    Full.push_back({static_cast<int>(K), -1});
  for (unsigned K = 0; K < J; ++K)
    Full.push_back({-1, static_cast<int>(K)});
  Full.insert(Full.end(), Window.begin(), Window.end());
  for (unsigned K = R.BestI; K < LenA; ++K)
    Full.push_back({static_cast<int>(K), -1});
  for (unsigned K = R.BestJ; K < LenB; ++K)
    Full.push_back({-1, static_cast<int>(K)});
  return Full;
}
