//===- SequenceAlign.cpp - Smith-Waterman sequence alignment ------------------===//
//
// Type-erased wrappers over the header templates, for callers that store
// the scorer in a std::function. The explicit template-argument calls
// force the template overload (a plain call would select these wrappers
// again and recurse).
//
//===----------------------------------------------------------------------===//

#include "darm/core/SequenceAlign.h"

using namespace darm;

using ScoreFunction = const std::function<double(unsigned, unsigned)> &;

double darm::smithWatermanScore(unsigned LenA, unsigned LenB,
                                ScoreFunction Score, double GapPenalty) {
  return smithWatermanScore<ScoreFunction>(LenA, LenB, Score, GapPenalty);
}

std::vector<AlignEntry> darm::smithWaterman(unsigned LenA, unsigned LenB,
                                            ScoreFunction Score,
                                            double GapPenalty) {
  return smithWaterman<ScoreFunction>(LenA, LenB, Score, GapPenalty);
}
