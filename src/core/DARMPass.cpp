//===- DARMPass.cpp - Control-flow melding driver -----------------------------===//

#include "darm/core/DARMPass.h"

#include "darm/analysis/DivergenceAnalysis.h"
#include "darm/analysis/DominanceFrontier.h"
#include "darm/analysis/DominatorTree.h"
#include "darm/analysis/RegionQuery.h"
#include "darm/analysis/Verifier.h"
#include "darm/core/Melder.h"
#include "darm/core/MeldRegionAnalysis.h"
#include "darm/ir/Function.h"
#include "darm/ir/IRPrinter.h"
#include "darm/support/ErrorHandling.h"
#include "darm/transform/AlgebraicSimplify.h"
#include "darm/transform/ConstProp.h"
#include "darm/transform/DCE.h"
#include "darm/transform/GVN.h"
#include "darm/transform/LICM.h"
#include "darm/transform/LoopUnroll.h"
#include "darm/transform/PassManager.h"
#include "darm/transform/SSAUpdater.h"
#include "darm/transform/SimplifyCFG.h"

#include <algorithm>
#include <cstdio>
#include <memory>

using namespace darm;

namespace {

/// One analysis snapshot; rebuilt after every CFG mutation.
struct Analyses {
  explicit Analyses(Function &F)
      : DT(F), PDT(F), DF(F, DT), DA(F, DT, DF), RQ(F, DT, PDT) {}
  DominatorTree DT;
  PostDominatorTree PDT;
  DominanceFrontier DF;
  DivergenceAnalysis DA;
  RegionQuery RQ;
};

/// Finds, simplifies and melds one region. Returns true if the CFG
/// changed (melds done or simplification applied).
bool meldOneRegion(Function &F, const DARMConfig &Cfg, DARMStats *Stats) {
  auto A = std::make_unique<Analyses>(F);
  for (BasicBlock *BB : F) {
    auto MR = detectMeldableRegion(BB, A->RQ, A->DA);
    if (!MR)
      continue;

    // Region simplification may insert merge blocks; recompute analyses
    // and re-detect (entry/exit are stable across simplification).
    if (simplifyRegion(F, *MR, A->RQ)) {
      A = std::make_unique<Analyses>(F);
      MR = detectMeldableRegion(BB, A->RQ, A->DA);
      if (!MR)
        return true; // CFG changed; caller re-runs
    }

    if (!buildChains(*MR, A->RQ))
      continue; // unstructured path: skip this region

    std::vector<MeldCandidate> Melds = alignChains(*MR, Cfg);
    if (Melds.empty())
      continue;

    for (const MeldCandidate &C : Melds)
      meldCandidate(F, MR->Cond, C, Cfg, Stats);
    if (Stats)
      ++Stats->RegionsMelded;
    return true;
  }
  return false;
}

/// The verify stage / post-cleanup check: aborts the process on invalid IR.
void verifyOrAbort(Function &F) {
  std::string Err;
  if (!verifyFunction(F, &Err)) {
    std::fprintf(stderr, "DARM produced invalid IR: %s\n%s\n", Err.c_str(),
                 printFunction(F).c_str());
    reportFatalError("melding broke the IR invariants");
  }
}

} // namespace

void darm::buildDARMPipeline(PassManager &PM, const DARMConfig &Cfg,
                             DARMStats *Stats, bool *MeldedLastRun) {
  // The pipeline verifies through its own named stage below; a PassManager
  // constructed with VerifyEach=true would just verify twice per stage.
  //
  // Canonicalization first (docs/passes.md ordering rationale): constprop
  // prunes dead arms so later passes see only live code; algebraic
  // normalizes both arms into one shape before gvn deduplicates; licm
  // shrinks loop bodies before the unroller pays its clone budget; the
  // unroller runs last so the straight-line ladders it emits flow directly
  // into region detection.
  if (Cfg.EnableConstProp)
    PM.addPass("constprop", [](Function &F) { return propagateConstants(F); });
  if (Cfg.EnableAlgebraic)
    PM.addPass("algebraic", [](Function &F) { return simplifyAlgebraic(F); });
  if (Cfg.EnableGVN)
    PM.addPass("gvn", [](Function &F) { return runGVN(F); });
  if (Cfg.EnableLICM)
    PM.addPass("licm", [](Function &F) { return hoistLoopInvariants(F); });
  if (Cfg.EnableLoopUnroll)
    PM.addPass("loop-unroll",
               [](Function &F) { return unrollDivergentLoops(F); });
  PM.addPass("simplifycfg", [](Function &F) { return simplifyCFG(F); });
  PM.addPass("darm-meld", [Cfg, Stats, MeldedLastRun](Function &F) {
    bool Melded = meldOneRegion(F, Cfg, Stats);
    if (MeldedLastRun)
      *MeldedLastRun = Melded;
    return Melded;
  });
  PM.addPass("ssa-repair", [](Function &F) { return repairFunctionSSA(F); });
  PM.addPass("dce", [](Function &F) { return eliminateDeadCode(F); });
  if (Cfg.VerifyEachStep)
    PM.addPass("verify", [](Function &F) {
      verifyOrAbort(F);
      return false;
    });
}

bool darm::runDARM(Function &F, const DARMConfig &Cfg, DARMStats *Stats) {
  PassManager PM(/*VerifyEach=*/false);
  bool MeldedThisIter = false;
  buildDARMPipeline(PM, Cfg, Stats, &MeldedThisIter);

  // Algorithm 1's do-while: rerun the whole pipeline while the meld stage
  // keeps finding regions. Only melds drive the fixed point; the return
  // value reports whether *any* stage changed the IR, so callers can trust
  // "false" to mean the function is untouched.
  bool Changed = false;
  for (unsigned Iter = 0; Iter < Cfg.MaxIterations; ++Iter) {
    if (Stats)
      Stats->Iterations = Iter + 1;
    Changed |= PM.run(F);
    if (!MeldedThisIter)
      break;
  }
  // The loop normally exits via a traversal whose meld found nothing, which
  // already cleaned up after the last successful meld. Hitting the
  // iteration bound mid-meld skips that; canonicalize before returning.
  if (MeldedThisIter) {
    Changed |= simplifyCFG(F);
    Changed |= eliminateDeadCode(F);
    if (Cfg.VerifyEachStep)
      verifyOrAbort(F);
  }

  // Accumulate (by stage name) rather than overwrite, so stats objects
  // reused across functions report whole-run totals.
  auto AccumulateTimings = [Stats](const PassManager &From) {
    if (!Stats)
      return;
    for (const auto &[Name, Secs] : From.cumulativeTimings()) {
      auto It = std::find_if(Stats->StageSeconds.begin(),
                             Stats->StageSeconds.end(),
                             [&](const auto &E) { return E.first == Name; });
      if (It != Stats->StageSeconds.end())
        It->second += Secs;
      else
        Stats->StageSeconds.push_back({Name, Secs});
    }
  };
  AccumulateTimings(PM);

  // A melded ladder or unrolled loop often leaves re-foldable arithmetic
  // behind (selects over equal values, re-hoistable duplicates). One
  // cleanup round keeps the output canonical; its timings land in the same
  // per-stage buckets as the main pipeline's.
  if (Cfg.anyCanonicalization()) {
    PassManager Cleanup(/*VerifyEach=*/false);
    if (Cfg.EnableAlgebraic)
      Cleanup.addPass("algebraic",
                      [](Function &F) { return simplifyAlgebraic(F); });
    if (Cfg.EnableGVN)
      Cleanup.addPass("gvn", [](Function &F) { return runGVN(F); });
    Cleanup.addPass("dce", [](Function &F) { return eliminateDeadCode(F); });
    Cleanup.addPass("simplifycfg", [](Function &F) { return simplifyCFG(F); });
    if (Cfg.VerifyEachStep)
      Cleanup.addPass("verify", [](Function &F) {
        verifyOrAbort(F);
        return false;
      });
    Changed |= Cleanup.run(F);
    AccumulateTimings(Cleanup);
  }
  return Changed;
}

bool darm::runBranchFusion(Function &F, DARMStats *Stats) {
  DARMConfig Cfg;
  Cfg.DiamondOnly = true;
  Cfg.EnableRegionReplication = false;
  return runDARM(F, Cfg, Stats);
}
