//===- DARMPass.cpp - Control-flow melding driver -----------------------------===//

#include "darm/core/DARMPass.h"

#include "darm/analysis/DivergenceAnalysis.h"
#include "darm/analysis/DominanceFrontier.h"
#include "darm/analysis/DominatorTree.h"
#include "darm/analysis/RegionQuery.h"
#include "darm/analysis/Verifier.h"
#include "darm/core/Melder.h"
#include "darm/core/MeldRegionAnalysis.h"
#include "darm/ir/Function.h"
#include "darm/ir/IRPrinter.h"
#include "darm/support/ErrorHandling.h"
#include "darm/transform/DCE.h"
#include "darm/transform/SSAUpdater.h"
#include "darm/transform/SimplifyCFG.h"

#include <cstdio>
#include <memory>

using namespace darm;

namespace {

/// One analysis snapshot; rebuilt after every CFG mutation.
struct Analyses {
  explicit Analyses(Function &F)
      : DT(F), PDT(F), DF(F, DT), DA(F, DT, DF), RQ(F, DT, PDT) {}
  DominatorTree DT;
  PostDominatorTree PDT;
  DominanceFrontier DF;
  DivergenceAnalysis DA;
  RegionQuery RQ;
};

/// Finds, simplifies and melds one region. Returns true if the CFG
/// changed (melds done or simplification applied).
bool meldOneRegion(Function &F, const DARMConfig &Cfg, DARMStats *Stats) {
  auto A = std::make_unique<Analyses>(F);
  for (BasicBlock *BB : F) {
    auto MR = detectMeldableRegion(BB, A->RQ, A->DA);
    if (!MR)
      continue;

    // Region simplification may insert merge blocks; recompute analyses
    // and re-detect (entry/exit are stable across simplification).
    if (simplifyRegion(F, *MR, A->RQ)) {
      A = std::make_unique<Analyses>(F);
      MR = detectMeldableRegion(BB, A->RQ, A->DA);
      if (!MR)
        return true; // CFG changed; caller re-runs
    }

    if (!buildChains(*MR, A->RQ))
      continue; // unstructured path: skip this region

    std::vector<MeldCandidate> Melds = alignChains(*MR, Cfg);
    if (Melds.empty())
      continue;

    for (const MeldCandidate &C : Melds)
      meldCandidate(F, MR->Cond, C, Cfg, Stats);
    if (Stats)
      ++Stats->RegionsMelded;
    return true;
  }
  return false;
}

bool runMelding(Function &F, const DARMConfig &Cfg, DARMStats *Stats) {
  bool Changed = false;
  for (unsigned Iter = 0; Iter < Cfg.MaxIterations; ++Iter) {
    if (Stats)
      Stats->Iterations = Iter + 1;
    if (!meldOneRegion(F, Cfg, Stats))
      break;
    Changed = true;
    // Paper: simplify the control flow and recompute the control-flow
    // analyses, then scan again (Algorithm 1's do-while).
    repairFunctionSSA(F);
    simplifyCFG(F);
    eliminateDeadCode(F);
    if (Cfg.VerifyEachStep) {
      std::string Err;
      if (!verifyFunction(F, &Err)) {
        std::fprintf(stderr, "DARM produced invalid IR: %s\n%s\n",
                     Err.c_str(), printFunction(F).c_str());
        reportFatalError("melding broke the IR invariants");
      }
    }
  }
  return Changed;
}

} // namespace

bool darm::runDARM(Function &F, const DARMConfig &Cfg, DARMStats *Stats) {
  return runMelding(F, Cfg, Stats);
}

bool darm::runBranchFusion(Function &F, DARMStats *Stats) {
  DARMConfig Cfg;
  Cfg.DiamondOnly = true;
  Cfg.EnableRegionReplication = false;
  return runMelding(F, Cfg, Stats);
}
