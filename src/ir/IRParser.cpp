//===- IRParser.cpp - Textual IR parsing ------------------------------------===//
//
// Recursive-descent parser over a hand-rolled lexer. Forward references to
// values (possible through phis and loop back-edges) are resolved with
// placeholder values that are RAUW'd once the definition is seen; forward
// block references are created on demand.
//
//===----------------------------------------------------------------------===//

#include "darm/ir/IRParser.h"

#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/Module.h"

#include <bit>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>

using namespace darm;

namespace {

enum class Tok {
  Eof,
  Error,      // lexical error; Text holds the message
  Ident,      // bare identifier / keyword
  LocalName,  // %name
  GlobalName, // @name
  IntLit,
  FloatLit,
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Comma,
  Equal,
  Star,
  Colon,
  Arrow,
};

struct Token {
  Tok K;
  std::string Text;
  int64_t IntVal = 0;
  float FloatVal = 0;
  unsigned Line = 0;
};

class Lexer {
public:
  explicit Lexer(const std::string &Text) : Text(Text) {}

  Token next() {
    skipWhitespaceAndComments();
    Token T;
    T.Line = Line;
    if (Pos >= Text.size()) {
      T.K = Tok::Eof;
      return T;
    }
    char C = Text[Pos];
    switch (C) {
    case '(':
      ++Pos;
      T.K = Tok::LParen;
      return T;
    case ')':
      ++Pos;
      T.K = Tok::RParen;
      return T;
    case '[':
      ++Pos;
      T.K = Tok::LBracket;
      return T;
    case ']':
      ++Pos;
      T.K = Tok::RBracket;
      return T;
    case '{':
      ++Pos;
      T.K = Tok::LBrace;
      return T;
    case '}':
      ++Pos;
      T.K = Tok::RBrace;
      return T;
    case ',':
      ++Pos;
      T.K = Tok::Comma;
      return T;
    case '=':
      ++Pos;
      T.K = Tok::Equal;
      return T;
    case '*':
      ++Pos;
      T.K = Tok::Star;
      return T;
    case ':':
      ++Pos;
      T.K = Tok::Colon;
      return T;
    case '-':
      if (Pos + 1 < Text.size() && Text[Pos + 1] == '>') {
        Pos += 2;
        T.K = Tok::Arrow;
        return T;
      }
      // Negative non-finite float keywords: the number path below only
      // consumes digits, so "-inf"/"-nan" must be recognized here.
      if (Text.compare(Pos, 4, "-inf") == 0) {
        Pos += 4;
        T.K = Tok::FloatLit;
        T.FloatVal = -std::numeric_limits<float>::infinity();
        return T;
      }
      if (Text.compare(Pos, 4, "-nan") == 0) {
        Pos += 4;
        T.K = Tok::FloatLit;
        T.FloatVal = std::bit_cast<float>(0xffc00000u);
        return T;
      }
      return lexNumber();
    case '%':
    case '@': {
      ++Pos;
      T.K = (C == '%') ? Tok::LocalName : Tok::GlobalName;
      T.Text = lexIdentText();
      return T;
    }
    default:
      break;
    }
    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber();
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '.') {
      T.K = Tok::Ident;
      T.Text = lexIdentText();
      return T;
    }
    // A character no token starts with is a lexical error with its own
    // diagnostic (like out-of-range literals), not a silent end-of-input.
    ++Pos;
    T.K = Tok::Error;
    T.Text = std::string("unexpected character '") + C + "'";
    return T;
  }

  unsigned getLine() const { return Line; }

private:
  void skipWhitespaceAndComments() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == ';' || (C == '/' && Pos + 1 < Text.size() &&
                              Text[Pos + 1] == '/')) {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  std::string lexIdentText() {
    size_t Start = Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
          C == '.' || C == '-')
        ++Pos;
      else
        break;
    }
    return Text.substr(Start, Pos - Start);
  }

  Token lexNumber() {
    Token T;
    T.Line = Line;
    size_t Start = Pos;
    if (Text[Pos] == '-')
      ++Pos;
    bool IsFloat = false;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isdigit(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '.' || C == 'e' || C == 'E' ||
                 ((C == '+' || C == '-') && Pos > Start &&
                  (Text[Pos - 1] == 'e' || Text[Pos - 1] == 'E'))) {
        IsFloat = true;
        ++Pos;
      } else {
        break;
      }
    }
    std::string S = Text.substr(Start, Pos - Start);
    if (IsFloat) {
      T.K = Tok::FloatLit;
      errno = 0;
      T.FloatVal = std::strtof(S.c_str(), nullptr);
      // Overflow saturates to +-HUGE_VALF with ERANGE; reject instead of
      // silently accepting an infinity the author never wrote. Underflow
      // also reports ERANGE but returns the nearest (sub)normal, which is
      // exactly what a printed denormal round-trips to — keep it.
      if (errno == ERANGE && std::abs(T.FloatVal) == HUGE_VALF) {
        T.K = Tok::Error;
        T.Text = "float literal '" + S + "' out of range";
      }
    } else {
      T.K = Tok::IntLit;
      errno = 0;
      T.IntVal = std::strtoll(S.c_str(), nullptr, 10);
      if (errno == ERANGE) {
        T.K = Tok::Error;
        T.Text = "integer literal '" + S + "' out of range";
      }
    }
    return T;
  }

  const std::string &Text;
  size_t Pos = 0;
  unsigned Line = 1;
};

/// Placeholder for a not-yet-defined local value; resolved by RAUW when the
/// defining instruction is parsed. Implemented as a detached Argument.
using FwdRef = Argument;

class Parser {
public:
  Parser(Module &M, Lexer &Lex) : M(M), Ctx(M.getContext()), Lex(Lex) {
    advance();
  }

  bool atEof() const { return Cur.K == Tok::Eof; }

  Function *parseFunction();

  std::string takeError() { return ErrorMsg; }
  bool hadError() const { return !ErrorMsg.empty(); }

private:
  void advance() {
    if (HasPeek) {
      Cur = Peeked;
      HasPeek = false;
    } else {
      Cur = Lex.next();
    }
    // A lexical error (e.g. out-of-range literal) poisons the parse with
    // its own message; Tok::Error matches no expectation, so the current
    // production fails and ErrorMsg keeps this first diagnostic.
    if (Cur.K == Tok::Error)
      error(Cur.Text);
  }

  /// One-token lookahead (used to distinguish "label:" from an opcode).
  const Token &peekNext() {
    if (!HasPeek) {
      Peeked = Lex.next();
      HasPeek = true;
    }
    return Peeked;
  }

  bool expect(Tok K, const char *What) {
    if (Cur.K != K)
      return error(std::string("expected ") + What);
    advance();
    return true;
  }

  bool expectIdent(const std::string &S) {
    if (Cur.K != Tok::Ident || Cur.Text != S)
      return error("expected '" + S + "'");
    advance();
    return true;
  }

  bool error(const std::string &Msg) {
    if (ErrorMsg.empty()) {
      std::ostringstream OS;
      OS << "line " << Cur.Line << ": " << Msg;
      if (Cur.K == Tok::Ident || Cur.K == Tok::LocalName ||
          Cur.K == Tok::GlobalName)
        OS << " (got '" << Cur.Text << "')";
      ErrorMsg = OS.str();
    }
    return false;
  }

  Type *parseType();
  Value *parseOperand(Type *Ty);
  BasicBlock *getOrCreateBlock(const std::string &Name);
  Value *lookupValue(const std::string &Name, Type *Ty);
  bool defineValue(const std::string &Name, Value *V);
  bool parseInstruction(IRBuilder &B);

  Module &M;
  Context &Ctx;
  Lexer &Lex;
  Token Cur;
  Token Peeked;
  bool HasPeek = false;
  std::string ErrorMsg;

  Function *F = nullptr;
  std::map<std::string, Value *> Values;
  std::map<std::string, std::unique_ptr<FwdRef>> Pending;
  std::map<std::string, BasicBlock *> BlockMap;
  std::map<std::string, bool> BlockDefined;
};

Type *Parser::parseType() {
  if (Cur.K != Tok::Ident) {
    error("expected type");
    return nullptr;
  }
  Type *Base = nullptr;
  if (Cur.Text == "void")
    Base = Ctx.getVoidTy();
  else if (Cur.Text == "i1")
    Base = Ctx.getInt1Ty();
  else if (Cur.Text == "i32")
    Base = Ctx.getInt32Ty();
  else if (Cur.Text == "i64")
    Base = Ctx.getInt64Ty();
  else if (Cur.Text == "f32")
    Base = Ctx.getFloatTy();
  if (!Base) {
    error("unknown type '" + Cur.Text + "'");
    return nullptr;
  }
  advance();
  if (Cur.K == Tok::Ident && Cur.Text == "addrspace") {
    advance();
    if (!expect(Tok::LParen, "'('"))
      return nullptr;
    if (Cur.K != Tok::IntLit) {
      error("expected address space number");
      return nullptr;
    }
    unsigned AS = static_cast<unsigned>(Cur.IntVal);
    if (AS != 1 && AS != 3) {
      error("address space must be 1 (global) or 3 (shared)");
      return nullptr;
    }
    advance();
    if (!expect(Tok::RParen, "')'") || !expect(Tok::Star, "'*'"))
      return nullptr;
    return Ctx.getPointerTy(Base, static_cast<AddressSpace>(AS));
  }
  return Base;
}

BasicBlock *Parser::getOrCreateBlock(const std::string &Name) {
  auto It = BlockMap.find(Name);
  if (It != BlockMap.end())
    return It->second;
  BasicBlock *BB = F->createBlock(Name);
  assert(BB->getName() == Name && "parser block names must be unique");
  BlockMap[Name] = BB;
  BlockDefined[Name] = false;
  return BB;
}

Value *Parser::lookupValue(const std::string &Name, Type *Ty) {
  auto It = Values.find(Name);
  if (It != Values.end()) {
    if (It->second->getType() != Ty) {
      error("type mismatch for '%" + Name + "'");
      return nullptr;
    }
    return It->second;
  }
  auto P = Pending.find(Name);
  if (P != Pending.end()) {
    if (P->second->getType() != Ty) {
      error("type mismatch for forward-referenced '%" + Name + "'");
      return nullptr;
    }
    return P->second.get();
  }
  auto Ref = std::make_unique<FwdRef>(Ty, Name, nullptr, ~0u);
  Value *Raw = Ref.get();
  Pending.emplace(Name, std::move(Ref));
  return Raw;
}

bool Parser::defineValue(const std::string &Name, Value *V) {
  if (Values.count(Name))
    return error("redefinition of '%" + Name + "'");
  Values[Name] = V;
  auto P = Pending.find(Name);
  if (P != Pending.end()) {
    if (P->second->getType() != V->getType())
      return error("type mismatch resolving '%" + Name + "'");
    P->second->replaceAllUsesWith(V);
    Pending.erase(P);
  }
  return true;
}

Value *Parser::parseOperand(Type *Ty) {
  switch (Cur.K) {
  case Tok::LocalName: {
    std::string Name = Cur.Text;
    advance();
    return lookupValue(Name, Ty);
  }
  case Tok::GlobalName: {
    std::string Name = Cur.Text;
    advance();
    for (const auto &S : F->sharedArrays())
      if (S->getName() == Name) {
        if (S->getType() != Ty) {
          error("type mismatch for '@" + Name + "'");
          return nullptr;
        }
        return S.get();
      }
    error("unknown shared array '@" + Name + "'");
    return nullptr;
  }
  case Tok::IntLit: {
    if (!Ty->isInteger()) {
      error("integer literal for non-integer type");
      return nullptr;
    }
    Value *V = Ctx.getConstantInt(Ty, Cur.IntVal);
    advance();
    return V;
  }
  case Tok::FloatLit: {
    if (!Ty->isFloat()) {
      error("float literal for non-float type");
      return nullptr;
    }
    Value *V = Ctx.getConstantFloat(Cur.FloatVal);
    advance();
    return V;
  }
  case Tok::Ident:
    if (Cur.Text == "true" || Cur.Text == "false") {
      if (!Ty->isInt1()) {
        error("boolean literal for non-i1 type");
        return nullptr;
      }
      Value *V = Ctx.getBool(Cur.Text == "true");
      advance();
      return V;
    }
    if (Cur.Text == "undef") {
      advance();
      return Ctx.getUndef(Ty);
    }
    if (Cur.Text == "inf" || Cur.Text == "nan") {
      if (!Ty->isFloat()) {
        error("non-finite float literal for non-float type");
        return nullptr;
      }
      bool IsNan = Cur.Text == "nan";
      advance();
      if (!IsNan)
        return Ctx.getConstantFloat(std::numeric_limits<float>::infinity());
      // "nan" optionally carries an exact bit pattern: nan(<u32 bits>).
      if (Cur.K != Tok::LParen)
        return Ctx.getConstantFloat(std::bit_cast<float>(0x7fc00000u));
      advance();
      if (Cur.K != Tok::IntLit || Cur.IntVal < 0 ||
          Cur.IntVal > static_cast<int64_t>(UINT32_MAX)) {
        error("expected 32-bit NaN payload");
        return nullptr;
      }
      float F = std::bit_cast<float>(static_cast<uint32_t>(Cur.IntVal));
      if (!std::isnan(F)) {
        error("NaN payload does not encode a NaN");
        return nullptr;
      }
      advance();
      if (!expect(Tok::RParen, "')'"))
        return nullptr;
      return Ctx.getConstantFloat(F);
    }
    [[fallthrough]];
  default:
    error("expected operand");
    return nullptr;
  }
}

bool Parser::parseInstruction(IRBuilder &B) {
  std::string ResultName;
  if (Cur.K == Tok::LocalName) {
    ResultName = Cur.Text;
    advance();
    if (!expect(Tok::Equal, "'='"))
      return false;
    // Name the instruction at creation so auto-naming cannot claim names
    // the file uses later.
    B.setNextName(ResultName);
  }
  if (Cur.K != Tok::Ident)
    return error("expected opcode");
  std::string Op = Cur.Text;
  advance();

  Value *Result = nullptr;

  auto ParseBinary = [&](Opcode OC) -> bool {
    Type *Ty = parseType();
    if (!Ty)
      return false;
    Value *L = parseOperand(Ty);
    if (!L || !expect(Tok::Comma, "','"))
      return false;
    Value *R = parseOperand(Ty);
    if (!R)
      return false;
    Result = B.createBinary(OC, L, R);
    return true;
  };

  static const std::map<std::string, Opcode> BinOps = {
      {"add", Opcode::Add},   {"sub", Opcode::Sub},   {"mul", Opcode::Mul},
      {"sdiv", Opcode::SDiv}, {"srem", Opcode::SRem}, {"udiv", Opcode::UDiv},
      {"urem", Opcode::URem}, {"and", Opcode::And},   {"or", Opcode::Or},
      {"xor", Opcode::Xor},   {"shl", Opcode::Shl},   {"lshr", Opcode::LShr},
      {"ashr", Opcode::AShr}, {"fadd", Opcode::FAdd}, {"fsub", Opcode::FSub},
      {"fmul", Opcode::FMul}, {"fdiv", Opcode::FDiv}};
  static const std::map<std::string, Opcode> CastOps = {
      {"zext", Opcode::ZExt},
      {"sext", Opcode::SExt},
      {"trunc", Opcode::Trunc},
      {"sitofp", Opcode::SIToFP},
      {"fptosi", Opcode::FPToSI}};
  static const std::map<std::string, ICmpPred> IPreds = {
      {"eq", ICmpPred::EQ},   {"ne", ICmpPred::NE},   {"slt", ICmpPred::SLT},
      {"sle", ICmpPred::SLE}, {"sgt", ICmpPred::SGT}, {"sge", ICmpPred::SGE},
      {"ult", ICmpPred::ULT}, {"ule", ICmpPred::ULE}, {"ugt", ICmpPred::UGT},
      {"uge", ICmpPred::UGE}};
  static const std::map<std::string, FCmpPred> FPreds = {
      {"oeq", FCmpPred::OEQ}, {"one", FCmpPred::ONE}, {"olt", FCmpPred::OLT},
      {"ole", FCmpPred::OLE}, {"ogt", FCmpPred::OGT}, {"oge", FCmpPred::OGE}};

  if (auto It = BinOps.find(Op); It != BinOps.end()) {
    if (!ParseBinary(It->second))
      return false;
  } else if (auto CIt = CastOps.find(Op); CIt != CastOps.end()) {
    Type *SrcTy = parseType();
    if (!SrcTy)
      return false;
    Value *V = parseOperand(SrcTy);
    if (!V || !expectIdent("to"))
      return false;
    Type *DstTy = parseType();
    if (!DstTy)
      return false;
    Result = B.createCast(CIt->second, V, DstTy);
  } else if (Op == "icmp" || Op == "fcmp") {
    if (Cur.K != Tok::Ident)
      return error("expected comparison predicate");
    std::string PredName = Cur.Text;
    advance();
    Type *Ty = parseType();
    if (!Ty)
      return false;
    Value *L = parseOperand(Ty);
    if (!L || !expect(Tok::Comma, "','"))
      return false;
    Value *R = parseOperand(Ty);
    if (!R)
      return false;
    if (Op == "icmp") {
      auto P = IPreds.find(PredName);
      if (P == IPreds.end())
        return error("unknown icmp predicate '" + PredName + "'");
      Result = B.createICmp(P->second, L, R);
    } else {
      auto P = FPreds.find(PredName);
      if (P == FPreds.end())
        return error("unknown fcmp predicate '" + PredName + "'");
      Result = B.createFCmp(P->second, L, R);
    }
  } else if (Op == "load") {
    Type *PtrTy = parseType();
    if (!PtrTy)
      return false;
    if (!PtrTy->isPointer())
      return error("load expects a pointer type");
    Value *Ptr = parseOperand(PtrTy);
    if (!Ptr)
      return false;
    Result = B.createLoad(Ptr);
  } else if (Op == "store") {
    Type *ValTy = parseType();
    if (!ValTy)
      return false;
    Value *V = parseOperand(ValTy);
    if (!V || !expect(Tok::Comma, "','"))
      return false;
    Type *PtrTy = parseType();
    if (!PtrTy)
      return false;
    if (!PtrTy->isPointer() || PtrTy->getPointee() != ValTy)
      return error("store value/pointer type mismatch");
    Value *Ptr = parseOperand(PtrTy);
    if (!Ptr)
      return false;
    B.createStore(V, Ptr);
  } else if (Op == "gep") {
    Type *PtrTy = parseType();
    if (!PtrTy)
      return false;
    if (!PtrTy->isPointer())
      return error("gep expects a pointer type");
    Value *Ptr = parseOperand(PtrTy);
    if (!Ptr || !expect(Tok::Comma, "','"))
      return false;
    Type *IdxTy = parseType();
    if (!IdxTy)
      return false;
    Value *Idx = parseOperand(IdxTy);
    if (!Idx)
      return false;
    Result = B.createGep(Ptr, Idx);
  } else if (Op == "select") {
    if (!expectIdent("i1"))
      return false;
    Value *C = parseOperand(Ctx.getInt1Ty());
    if (!C || !expect(Tok::Comma, "','"))
      return false;
    Type *Ty = parseType();
    if (!Ty)
      return false;
    Value *T = parseOperand(Ty);
    if (!T || !expect(Tok::Comma, "','"))
      return false;
    Value *FV = parseOperand(Ty);
    if (!FV)
      return false;
    Result = B.createSelect(C, T, FV);
  } else if (Op == "phi") {
    Type *Ty = parseType();
    if (!Ty)
      return false;
    PhiInst *P = B.createPhi(Ty);
    Result = P;
    do {
      if (!expect(Tok::LBracket, "'['"))
        return false;
      Value *V = parseOperand(Ty);
      if (!V || !expect(Tok::Comma, "','"))
        return false;
      if (Cur.K != Tok::LocalName)
        return error("expected block name in phi");
      BasicBlock *BB = getOrCreateBlock(Cur.Text);
      advance();
      if (!expect(Tok::RBracket, "']'"))
        return false;
      P->addIncoming(V, BB);
      if (Cur.K != Tok::Comma)
        break;
      advance();
    } while (true);
  } else if (Op == "call") {
    Type *RetTy = parseType();
    if (!RetTy)
      return false;
    if (Cur.K != Tok::GlobalName)
      return error("expected intrinsic name");
    std::string IName = Cur.Text;
    advance();
    Intrinsic IID;
    if (IName == "darm.tid.x")
      IID = Intrinsic::TidX;
    else if (IName == "darm.ntid.x")
      IID = Intrinsic::NTidX;
    else if (IName == "darm.ctaid.x")
      IID = Intrinsic::CTAidX;
    else if (IName == "darm.nctaid.x")
      IID = Intrinsic::NCTAidX;
    else if (IName == "darm.laneid")
      IID = Intrinsic::LaneId;
    else if (IName == "darm.barrier")
      IID = Intrinsic::Barrier;
    else if (IName == "darm.shfl.sync")
      IID = Intrinsic::ShflSync;
    else
      return error("unknown intrinsic '@" + IName + "'");
    if (!expect(Tok::LParen, "'('"))
      return false;
    std::vector<Value *> Args;
    if (Cur.K != Tok::RParen) {
      do {
        Type *ATy = parseType();
        if (!ATy)
          return false;
        Value *A = parseOperand(ATy);
        if (!A)
          return false;
        Args.push_back(A);
        if (Cur.K != Tok::Comma)
          break;
        advance();
      } while (true);
    }
    if (!expect(Tok::RParen, "')'"))
      return false;
    Result = B.createCall(IID, Args);
  } else if (Op == "br") {
    if (!expectIdent("label"))
      return false;
    if (Cur.K != Tok::LocalName)
      return error("expected target block");
    BasicBlock *T = getOrCreateBlock(Cur.Text);
    advance();
    B.createBr(T);
  } else if (Op == "condbr") {
    if (!expectIdent("i1"))
      return false;
    Value *C = parseOperand(Ctx.getInt1Ty());
    if (!C || !expect(Tok::Comma, "','") || !expectIdent("label"))
      return false;
    if (Cur.K != Tok::LocalName)
      return error("expected true target");
    BasicBlock *T = getOrCreateBlock(Cur.Text);
    advance();
    if (!expect(Tok::Comma, "','") || !expectIdent("label"))
      return false;
    if (Cur.K != Tok::LocalName)
      return error("expected false target");
    BasicBlock *FB = getOrCreateBlock(Cur.Text);
    advance();
    B.createCondBr(C, T, FB);
  } else if (Op == "ret") {
    // Optional typed return value.
    if (Cur.K == Tok::Ident && Cur.Text != "ret" &&
        (Cur.Text == "i1" || Cur.Text == "i32" || Cur.Text == "i64" ||
         Cur.Text == "f32")) {
      Type *Ty = parseType();
      if (!Ty)
        return false;
      Value *V = parseOperand(Ty);
      if (!V)
        return false;
      B.createRet(V);
    } else {
      B.createRet();
    }
  } else {
    return error("unknown opcode '" + Op + "'");
  }

  if (!ResultName.empty()) {
    if (!Result)
      return error("instruction does not produce a value");
    if (Result->getName() != ResultName)
      return error("duplicate value name '%" + ResultName + "'");
    return defineValue(ResultName, Result);
  }
  if (Result && !Result->getType()->isVoid()) {
    // Unnamed result: keep the auto-assigned name visible for lookups.
    return defineValue(Result->getName(), Result);
  }
  return true;
}

Function *Parser::parseFunction() {
  if (!expectIdent("func"))
    return nullptr;
  if (Cur.K != Tok::GlobalName) {
    error("expected function name");
    return nullptr;
  }
  std::string FnName = Cur.Text;
  advance();
  if (!expect(Tok::LParen, "'('"))
    return nullptr;

  Function::ParamList Params;
  if (Cur.K != Tok::RParen) {
    do {
      Type *Ty = parseType();
      if (!Ty)
        return nullptr;
      if (Cur.K != Tok::LocalName) {
        error("expected parameter name");
        return nullptr;
      }
      Params.push_back({Ty, Cur.Text});
      advance();
      if (Cur.K != Tok::Comma)
        break;
      advance();
    } while (true);
  }
  if (!expect(Tok::RParen, "')'") || !expect(Tok::Arrow, "'->'"))
    return nullptr;
  Type *RetTy = parseType();
  if (!RetTy)
    return nullptr;
  if (!expect(Tok::LBrace, "'{'"))
    return nullptr;

  F = M.createFunction(FnName, RetTy, Params);
  Values.clear();
  Pending.clear();
  BlockMap.clear();
  BlockDefined.clear();
  for (const auto &A : F->args())
    Values[A->getName()] = A.get();

  // Shared array declarations precede the first block label.
  while (Cur.K == Tok::Ident && Cur.Text == "shared") {
    advance();
    if (Cur.K != Tok::GlobalName) {
      error("expected shared array name");
      return nullptr;
    }
    std::string SName = Cur.Text;
    advance();
    if (!expect(Tok::Equal, "'='"))
      return nullptr;
    Type *ElemTy = parseType();
    if (!ElemTy)
      return nullptr;
    if (!expect(Tok::LBracket, "'['"))
      return nullptr;
    if (Cur.K != Tok::IntLit) {
      error("expected element count");
      return nullptr;
    }
    unsigned N = static_cast<unsigned>(Cur.IntVal);
    advance();
    if (!expect(Tok::RBracket, "']'"))
      return nullptr;
    F->createSharedArray(ElemTy, N, SName);
  }

  IRBuilder B(Ctx);
  BasicBlock *CurBB = nullptr;
  while (Cur.K != Tok::RBrace && Cur.K != Tok::Eof) {
    // A block label is "ident ':'"; no instruction contains a colon, so one
    // token of lookahead disambiguates.
    if (Cur.K == Tok::Ident && peekNext().K == Tok::Colon) {
      std::string Name = Cur.Text;
      advance(); // ident
      advance(); // ':'
      CurBB = getOrCreateBlock(Name);
      if (BlockDefined[Name]) {
        error("redefinition of block '" + Name + "'");
        return nullptr;
      }
      BlockDefined[Name] = true;
      // Forward references create blocks early; layout follows label
      // definition order so printing round-trips exactly.
      F->moveBlockBefore(CurBB, nullptr);
      B.setInsertPoint(CurBB);
      continue;
    }
    if (!CurBB) {
      error("instruction before first block label");
      return nullptr;
    }
    if (!parseInstruction(B))
      return nullptr;
  }
  if (!expect(Tok::RBrace, "'}'"))
    return nullptr;

  if (!Pending.empty()) {
    error("use of undefined value '%" + Pending.begin()->first + "'");
    return nullptr;
  }
  for (const auto &KV : BlockDefined)
    if (!KV.second) {
      error("branch to undefined block '" + KV.first + "'");
      return nullptr;
    }
  return F;
}

} // namespace

std::unique_ptr<Module> darm::parseModule(Context &Ctx,
                                          const std::string &Text,
                                          std::string *Error) {
  auto M = std::make_unique<Module>(Ctx, "parsed");
  Lexer Lex(Text);
  Parser P(*M, Lex);
  while (!P.atEof()) {
    if (!P.parseFunction()) {
      if (Error)
        *Error = P.takeError();
      return nullptr;
    }
  }
  return M;
}

Function *darm::parseFunctionInto(Module &M, const std::string &Text,
                                  std::string *Error) {
  Lexer Lex(Text);
  Parser P(M, Lex);
  Function *F = P.parseFunction();
  if (!F && Error)
    *Error = P.takeError();
  return F;
}
