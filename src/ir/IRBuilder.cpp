//===- IRBuilder.cpp - Convenience IR construction -----------------------------===//

#include "darm/ir/IRBuilder.h"

#include "darm/support/ErrorHandling.h"

using namespace darm;

Instruction *IRBuilder::insert(Instruction *I, const std::string &Name) {
  assert(Block && "no insertion point set");
  std::string Effective = Name.empty() ? NextName : Name;
  NextName.clear();
  if (!Effective.empty() && !I->getType()->isVoid())
    I->setName(Block->getParent()->uniqueName(Effective));
  Block->insert(Pos, I);
  return I;
}

Value *IRBuilder::createBinary(Opcode Op, Value *L, Value *R,
                               const std::string &Name) {
  return insert(new BinaryInst(Op, L, R), Name);
}

Value *IRBuilder::createICmp(ICmpPred Pred, Value *L, Value *R,
                             const std::string &Name) {
  return insert(new ICmpInst(Pred, L, R, Ctx.getInt1Ty()), Name);
}

Value *IRBuilder::createFCmp(FCmpPred Pred, Value *L, Value *R,
                             const std::string &Name) {
  return insert(new FCmpInst(Pred, L, R, Ctx.getInt1Ty()), Name);
}

Value *IRBuilder::createCast(Opcode Op, Value *V, Type *DestTy,
                             const std::string &Name) {
  return insert(new CastInst(Op, V, DestTy), Name);
}

Value *IRBuilder::createLoad(Value *Ptr, const std::string &Name) {
  return insert(new LoadInst(Ptr), Name);
}

Instruction *IRBuilder::createStore(Value *V, Value *Ptr) {
  return insert(new StoreInst(V, Ptr, Ctx.getVoidTy()));
}

Value *IRBuilder::createGep(Value *Ptr, Value *Index,
                            const std::string &Name) {
  return insert(new GepInst(Ptr, Index), Name);
}

Value *IRBuilder::createLoadAt(Value *Ptr, Value *Index,
                               const std::string &Name) {
  return createLoad(createGep(Ptr, Index), Name);
}

void IRBuilder::createStoreAt(Value *V, Value *Ptr, Value *Index) {
  createStore(V, createGep(Ptr, Index));
}

Value *IRBuilder::createSelect(Value *Cond, Value *TrueV, Value *FalseV,
                               const std::string &Name) {
  return insert(new SelectInst(Cond, TrueV, FalseV), Name);
}

PhiInst *IRBuilder::createPhi(Type *Ty, const std::string &Name) {
  auto *P = new PhiInst(Ty);
  // Phis must lead the block regardless of the current insertion point.
  assert(Block && "no insertion point set");
  std::string Effective = Name.empty() ? NextName : Name;
  NextName.clear();
  if (!Effective.empty())
    P->setName(Block->getParent()->uniqueName(Effective));
  Block->insert(Block->getFirstNonPhi(), P);
  return P;
}

Value *IRBuilder::createCall(Intrinsic IID, const std::vector<Value *> &Args,
                             const std::string &Name) {
  Type *RetTy;
  switch (IID) {
  case Intrinsic::Barrier:
    RetTy = Ctx.getVoidTy();
    break;
  default:
    RetTy = Ctx.getInt32Ty();
    break;
  }
  return insert(new CallInst(IID, RetTy, Args), Name);
}

Instruction *IRBuilder::createBr(BasicBlock *Target) {
  return insert(new BrInst(Target, Ctx.getVoidTy()));
}

Instruction *IRBuilder::createCondBr(Value *Cond, BasicBlock *TrueBB,
                                     BasicBlock *FalseBB) {
  return insert(new CondBrInst(Cond, TrueBB, FalseBB, Ctx.getVoidTy()));
}

Instruction *IRBuilder::createRet(Value *V) {
  return insert(new RetInst(Ctx.getVoidTy(), V));
}
