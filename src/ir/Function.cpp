//===- Function.cpp - GPU kernel function -------------------------------------===//

#include "darm/ir/Function.h"

#include "darm/ir/Context.h"
#include "darm/ir/Module.h"

#include <algorithm>

using namespace darm;

Function::Function(Module *Parent, const std::string &Name, Type *RetTy,
                   const ParamList &Params)
    : Parent(Parent), Name(Name), RetTy(RetTy) {
  for (unsigned I = 0, E = static_cast<unsigned>(Params.size()); I != E; ++I) {
    Args.push_back(std::make_unique<Argument>(
        Params[I].first, uniqueName(Params[I].second), this, I));
  }
}

Function::~Function() {
  // Detach every operand reference first so deletion order cannot matter.
  for (BasicBlock *BB : Blocks)
    for (Instruction *I : *BB)
      I->dropAllOperands();
  for (BasicBlock *BB : Blocks)
    delete BB;
}

Context &Function::getContext() const { return Parent->getContext(); }

SharedArray *Function::createSharedArray(Type *ElemTy, unsigned NumElements,
                                         const std::string &ArrName) {
  Type *PtrTy = getContext().getPointerTy(ElemTy, AddressSpace::Shared);
  Shareds.push_back(std::make_unique<SharedArray>(
      PtrTy, NumElements, uniqueName(ArrName), this));
  return Shareds.back().get();
}

unsigned Function::getSharedMemoryBytes() const {
  unsigned Total = 0;
  for (const auto &S : Shareds)
    Total += S->getSizeInBytes();
  return Total;
}

BasicBlock *Function::createBlock(const std::string &BBName,
                                  BasicBlock *InsertBefore) {
  auto *BB = new BasicBlock(this, uniqueName(BBName));
  if (!InsertBefore) {
    Blocks.push_back(BB);
    return BB;
  }
  auto It = std::find(Blocks.begin(), Blocks.end(), InsertBefore);
  assert(It != Blocks.end() && "insertion point not in this function");
  Blocks.insert(It, BB);
  return BB;
}

void Function::eraseBlock(BasicBlock *BB) {
  assert(BB->getParent() == this && "block not in this function");
  assert(BB->getNumPredecessors() == 0 &&
         "erasing a block that still has predecessors");
  // Drop the terminator's CFG edges and phi entries in successors.
  if (Instruction *T = BB->getTerminator()) {
    for (BasicBlock *Succ : BB->successors())
      Succ->removePhiEntriesFor(BB);
    BB->remove(T);
    delete T;
  }
  // Values defined here may still be referenced (by now-unreachable code or
  // by phis); forward them to undef before deletion.
  Context &Ctx = getContext();
  for (Instruction *I : *BB)
    if (I->hasUses())
      I->replaceAllUsesWith(Ctx.getUndef(I->getType()));
  auto It = std::find(Blocks.begin(), Blocks.end(), BB);
  assert(It != Blocks.end() && "block missing from layout");
  Blocks.erase(It);
  delete BB;
}

void Function::moveBlockBefore(BasicBlock *BB, BasicBlock *Before) {
  auto It = std::find(Blocks.begin(), Blocks.end(), BB);
  assert(It != Blocks.end() && "block not in this function");
  Blocks.erase(It);
  auto Dest = Before ? std::find(Blocks.begin(), Blocks.end(), Before)
                     : Blocks.end();
  Blocks.insert(Dest, BB);
}

std::string Function::uniqueName(const std::string &Base) {
  std::string Candidate = Base.empty() ? "v" : Base;
  if (UsedNames.insert(Candidate).second)
    return Candidate;
  while (true) {
    std::string Next = Candidate + "." + std::to_string(++NextId);
    if (UsedNames.insert(Next).second)
      return Next;
  }
}

BasicBlock *Function::getBlockByName(const std::string &N) const {
  for (BasicBlock *BB : Blocks)
    if (BB->getName() == N)
      return BB;
  return nullptr;
}

size_t Function::getInstructionCount() const {
  size_t Count = 0;
  for (const BasicBlock *BB : Blocks)
    Count += BB->size();
  return Count;
}
