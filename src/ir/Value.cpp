//===- Value.cpp - def-use graph maintenance --------------------------------===//

#include "darm/ir/Value.h"

#include "darm/support/ErrorHandling.h"

#include <algorithm>

using namespace darm;

Value::~Value() {
  assert(Uses.empty() && "value destroyed while still in use");
}

void Value::removeUse(User *U, unsigned OpIdx) {
  auto It = std::find(Uses.begin(), Uses.end(), Use{U, OpIdx});
  assert(It != Uses.end() && "use not registered");
  Uses.erase(It);
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New && "replacement must not be null");
  if (New == this)
    return;
  assert(New->getType() == getType() && "RAUW type mismatch");
  // Snapshot: setOperand mutates the use list.
  std::vector<Use> Snapshot = Uses;
  for (const Use &U : Snapshot)
    U.TheUser->setOperand(U.OpIdx, New);
  assert(Uses.empty() && "RAUW left stale uses");
}

void User::setOperand(unsigned I, Value *V) {
  assert(I < Ops.size() && "operand index out of range");
  assert(V && "operand must not be null");
  if (Ops[I] == V)
    return;
  Ops[I]->removeUse(this, I);
  Ops[I] = V;
  V->addUse(this, I);
}

void User::appendOperand(Value *V) {
  assert(V && "operand must not be null");
  Ops.push_back(V);
  V->addUse(this, static_cast<unsigned>(Ops.size()) - 1);
}

void User::removeOperand(unsigned I) {
  assert(I < Ops.size() && "operand index out of range");
  Ops[I]->removeUse(this, I);
  // Later operands shift down; re-register their uses under new indices.
  for (unsigned J = I + 1, E = static_cast<unsigned>(Ops.size()); J != E; ++J) {
    Ops[J]->removeUse(this, J);
    Ops[J]->addUse(this, J - 1);
  }
  Ops.erase(Ops.begin() + I);
}

void User::dropAllOperands() {
  for (unsigned I = 0, E = static_cast<unsigned>(Ops.size()); I != E; ++I)
    Ops[I]->removeUse(this, I);
  Ops.clear();
}
