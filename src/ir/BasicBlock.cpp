//===- BasicBlock.cpp - CFG node ---------------------------------------------===//

#include "darm/ir/BasicBlock.h"

#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/Module.h"

#include <algorithm>

using namespace darm;

BasicBlock::BasicBlock(Function *Parent, const std::string &Name)
    : Parent(Parent), Name(Name) {}

BasicBlock::~BasicBlock() {
  // Detach all operand uses first so intra-block references (in any
  // direction) cannot dangle during deletion. Cross-block references must
  // have been cleaned up by the caller (Function teardown or eraseBlock).
  for (Instruction *I : Insts)
    I->dropAllOperands();
  for (Instruction *I : Insts)
    delete I;
}

BasicBlock::iterator BasicBlock::getFirstNonPhi() {
  iterator It = Insts.begin();
  while (It != Insts.end() && (*It)->isPhi())
    ++It;
  return It;
}

std::vector<PhiInst *> BasicBlock::phis() const {
  std::vector<PhiInst *> Result;
  for (Instruction *I : Insts) {
    auto *P = dyn_cast<PhiInst>(I);
    if (!P)
      break;
    Result.push_back(P);
  }
  return Result;
}

void BasicBlock::insert(iterator Pos, Instruction *I) {
  assert(!I->getParent() && "instruction already in a block");
  assert((!I->isTerminator() || (Pos == Insts.end() && !getTerminator())) &&
         "terminator must be unique and at the end of the block");
  I->Parent = this;
  I->Pos = Insts.insert(Pos, I);
  if (I->isTerminator())
    I->linkSuccessors();
  // Give value-producing instructions a function-unique name so textual IR
  // round-trips.
  if (!I->getType()->isVoid() && !I->hasName() && Parent)
    I->setName(Parent->uniqueName("v"));
}

void BasicBlock::insertBeforeTerminator(Instruction *I) {
  Instruction *T = getTerminator();
  insert(T ? T->getIterator() : end(), I);
}

void BasicBlock::remove(Instruction *I) {
  assert(I->getParent() == this && "instruction not in this block");
  if (I->isTerminator())
    I->unlinkSuccessors();
  Insts.erase(I->Pos);
  I->Parent = nullptr;
}

void BasicBlock::erase(Instruction *I) {
  remove(I);
  assert(!I->hasUses() && "erasing an instruction that is still used");
  delete I;
}

BasicBlock *BasicBlock::getSinglePredecessor() const {
  if (Preds.empty())
    return nullptr;
  BasicBlock *First = Preds.front();
  for (BasicBlock *P : Preds)
    if (P != First)
      return nullptr;
  return First;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  Instruction *T = getTerminator();
  if (!T)
    return {};
  std::vector<BasicBlock *> Result;
  for (unsigned I = 0, E = T->getNumSuccessors(); I != E; ++I)
    Result.push_back(T->getSuccessor(I));
  return Result;
}

unsigned BasicBlock::getNumSuccessors() const {
  Instruction *T = getTerminator();
  return T ? T->getNumSuccessors() : 0;
}

BasicBlock *BasicBlock::getSingleSuccessor() const {
  std::vector<BasicBlock *> Succs = successors();
  if (Succs.empty())
    return nullptr;
  BasicBlock *First = Succs.front();
  for (BasicBlock *S : Succs)
    if (S != First)
      return nullptr;
  return First;
}

bool BasicBlock::isSuccessor(const BasicBlock *BB) const {
  Instruction *T = getTerminator();
  if (!T)
    return false;
  for (unsigned I = 0, E = T->getNumSuccessors(); I != E; ++I)
    if (T->getSuccessor(I) == BB)
      return true;
  return false;
}

void BasicBlock::removePredecessor(BasicBlock *P) {
  auto It = std::find(Preds.begin(), Preds.end(), P);
  assert(It != Preds.end() && "predecessor not registered");
  Preds.erase(It);
}

void BasicBlock::removePhiEntriesFor(BasicBlock *Pred) {
  for (PhiInst *P : phis()) {
    int Idx;
    while ((Idx = P->getBlockIndex(Pred)) >= 0)
      P->removeIncoming(static_cast<unsigned>(Idx));
  }
}

void BasicBlock::replacePhiIncomingBlock(BasicBlock *Old, BasicBlock *New) {
  for (PhiInst *P : phis())
    for (unsigned I = 0, E = P->getNumIncoming(); I != E; ++I)
      if (P->getIncomingBlock(I) == Old)
        P->setIncomingBlock(I, New);
}

BasicBlock *BasicBlock::splitBefore(iterator Pos, const std::string &NewName) {
  assert(Parent && "block must be in a function");
  assert((Pos == Insts.end() || !(*Pos)->isPhi()) &&
         "cannot split in the middle of the phi prefix");
  BasicBlock *NewBB = Parent->createBlock(NewName, /*InsertBefore=*/nullptr);

  // Move [Pos, end) into the new block. Moving the terminator via
  // remove/insert transfers its CFG edges to NewBB automatically.
  while (Pos != Insts.end()) {
    Instruction *I = *Pos;
    ++Pos;
    remove(I);
    NewBB->push_back(I);
  }
  // Successor phis still name this block; they now receive from NewBB.
  for (BasicBlock *Succ : NewBB->successors())
    Succ->replacePhiIncomingBlock(this, NewBB);

  // Fall through to the new block.
  Context &Ctx = Parent->getContext();
  push_back(new BrInst(NewBB, Ctx.getVoidTy()));
  return NewBB;
}
