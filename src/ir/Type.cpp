//===- Type.cpp - IR type system -------------------------------------------===//

#include "darm/ir/Type.h"

#include "darm/support/ErrorHandling.h"

using namespace darm;

unsigned Type::getStoreSizeInBytes() const {
  switch (K) {
  case Kind::Void:
    darm_unreachable("void has no store size");
  case Kind::Int1:
    return 1;
  case Kind::Int32:
    return 4;
  case Kind::Int64:
    return 8;
  case Kind::Float:
    return 4;
  case Kind::Pointer:
    return 8;
  }
  darm_unreachable("unknown type kind");
}

std::string Type::getName() const {
  switch (K) {
  case Kind::Void:
    return "void";
  case Kind::Int1:
    return "i1";
  case Kind::Int32:
    return "i32";
  case Kind::Int64:
    return "i64";
  case Kind::Float:
    return "f32";
  case Kind::Pointer:
    return Pointee->getName() + " addrspace(" +
           std::to_string(static_cast<unsigned>(AS)) + ")*";
  }
  darm_unreachable("unknown type kind");
}
