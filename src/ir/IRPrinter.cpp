//===- IRPrinter.cpp - Textual IR emission --------------------------------===//

#include "darm/ir/IRPrinter.h"

#include "darm/ir/Function.h"
#include "darm/ir/Instruction.h"
#include "darm/ir/Module.h"
#include "darm/support/ErrorHandling.h"

#include <bit>
#include <cmath>
#include <sstream>

using namespace darm;

std::string darm::printOperand(const Value *V) {
  if (const auto *CI = dyn_cast<ConstantInt>(V)) {
    if (CI->getType()->isInt1())
      return CI->isZero() ? "false" : "true";
    return std::to_string(CI->getValue());
  }
  if (const auto *CF = dyn_cast<ConstantFloat>(V)) {
    const float F = CF->getValue();
    if (std::isinf(F))
      return std::signbit(F) ? "-inf" : "inf";
    if (std::isnan(F)) {
      // The canonical quiet NaNs print as keywords; any other payload is
      // emitted bit-exactly so the parser reconstructs the same constant.
      const uint32_t Bits = std::bit_cast<uint32_t>(F);
      if (Bits == 0x7fc00000u)
        return "nan";
      if (Bits == 0xffc00000u)
        return "-nan";
      return "nan(" + std::to_string(Bits) + ")";
    }
    std::ostringstream OS2;
    OS2.precision(9); // 9 significant digits round-trip any float exactly
    OS2 << F;
    std::string S = OS2.str();
    // Ensure the token contains '.' or 'e' so the lexer sees a float.
    if (S.find('.') == std::string::npos && S.find('e') == std::string::npos)
      S += ".0";
    return S;
  }
  if (isa<UndefValue>(V))
    return "undef";
  if (isa<SharedArray>(V))
    return "@" + V->getName();
  return "%" + V->getName();
}

/// Renders "type operand".
static std::string typedOperand(const Value *V) {
  return V->getType()->getName() + " " + printOperand(V);
}

std::string darm::printInstruction(const Instruction &I) {
  std::ostringstream OS;
  if (!I.getType()->isVoid())
    OS << "%" << I.getName() << " = ";

  switch (I.getOpcode()) {
  case Opcode::Br:
    OS << "br label %" << cast<BrInst>(&I)->getTarget()->getName();
    break;
  case Opcode::CondBr: {
    const auto *B = cast<CondBrInst>(&I);
    OS << "condbr i1 " << printOperand(B->getCondition()) << ", label %"
       << B->getTrueSuccessor()->getName() << ", label %"
       << B->getFalseSuccessor()->getName();
    break;
  }
  case Opcode::Ret: {
    const auto *R = cast<RetInst>(&I);
    OS << "ret";
    if (R->hasReturnValue())
      OS << " " << typedOperand(R->getReturnValue());
    break;
  }
  case Opcode::ICmp: {
    const auto *C = cast<ICmpInst>(&I);
    OS << "icmp " << getPredName(C->getPredicate()) << " "
       << C->getLHS()->getType()->getName() << " " << printOperand(C->getLHS())
       << ", " << printOperand(C->getRHS());
    break;
  }
  case Opcode::FCmp: {
    const auto *C = cast<FCmpInst>(&I);
    OS << "fcmp " << getPredName(C->getPredicate()) << " "
       << C->getLHS()->getType()->getName() << " " << printOperand(C->getLHS())
       << ", " << printOperand(C->getRHS());
    break;
  }
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::Trunc:
  case Opcode::SIToFP:
  case Opcode::FPToSI: {
    const auto *C = cast<CastInst>(&I);
    OS << I.getOpcodeName() << " " << typedOperand(C->getSource()) << " to "
       << I.getType()->getName();
    break;
  }
  case Opcode::Load:
    OS << "load " << typedOperand(cast<LoadInst>(&I)->getPointer());
    break;
  case Opcode::Store: {
    const auto *S = cast<StoreInst>(&I);
    OS << "store " << typedOperand(S->getValueOperand()) << ", "
       << typedOperand(S->getPointer());
    break;
  }
  case Opcode::Gep: {
    const auto *G = cast<GepInst>(&I);
    OS << "gep " << typedOperand(G->getPointer()) << ", "
       << typedOperand(G->getIndex());
    break;
  }
  case Opcode::Phi: {
    const auto *P = cast<PhiInst>(&I);
    OS << "phi " << I.getType()->getName();
    for (unsigned K = 0, E = P->getNumIncoming(); K != E; ++K) {
      OS << (K ? ", " : " ") << "[ " << printOperand(P->getIncomingValue(K))
         << ", %" << P->getIncomingBlock(K)->getName() << " ]";
    }
    break;
  }
  case Opcode::Select: {
    const auto *S = cast<SelectInst>(&I);
    OS << "select i1 " << printOperand(S->getCondition()) << ", "
       << typedOperand(S->getTrueValue()) << ", "
       << printOperand(S->getFalseValue());
    break;
  }
  case Opcode::Call: {
    const auto *C = cast<CallInst>(&I);
    OS << "call " << I.getType()->getName() << " @"
       << getIntrinsicName(C->getIntrinsic()) << "(";
    for (unsigned K = 0, E = C->getNumOperands(); K != E; ++K)
      OS << (K ? ", " : "") << typedOperand(C->getOperand(K));
    OS << ")";
    break;
  }
  default: // binary operations
    OS << I.getOpcodeName() << " " << I.getType()->getName() << " "
       << printOperand(I.getOperand(0)) << ", " << printOperand(I.getOperand(1));
    break;
  }
  return OS.str();
}

std::string darm::printBlock(const BasicBlock &BB) {
  std::ostringstream OS;
  OS << BB.getName() << ":\n";
  for (const Instruction *I : BB)
    OS << "  " << printInstruction(*I) << "\n";
  return OS.str();
}

std::string darm::printFunction(const Function &F) {
  std::ostringstream OS;
  OS << "func @" << F.getName() << "(";
  for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I) {
    const Argument *A = F.getArg(I);
    OS << (I ? ", " : "") << A->getType()->getName() << " %" << A->getName();
  }
  OS << ") -> " << F.getReturnType()->getName() << " {\n";
  for (const auto &S : F.sharedArrays())
    OS << "  shared @" << S->getName() << " = "
       << S->getElementType()->getName() << "[" << S->getNumElements()
       << "]\n";
  for (const BasicBlock *BB : F)
    OS << printBlock(*BB);
  OS << "}\n";
  return OS.str();
}

std::string darm::printModule(const Module &M) {
  std::ostringstream OS;
  for (const auto &F : M.functions())
    OS << printFunction(*F) << "\n";
  return OS.str();
}

std::string darm::printDot(const Function &F) {
  std::ostringstream OS;
  OS << "digraph \"" << F.getName() << "\" {\n";
  OS << "  node [shape=record, fontname=monospace];\n";
  for (const BasicBlock *BB : F) {
    OS << "  \"" << BB->getName() << "\" [label=\"{" << BB->getName() << ":";
    for (const Instruction *I : *BB) {
      std::string Line = printInstruction(*I);
      // Escape characters meaningful to the record syntax.
      std::string Escaped;
      for (char C : Line) {
        if (C == '<' || C == '>' || C == '{' || C == '}' || C == '|' ||
            C == '"')
          Escaped += '\\';
        Escaped += C;
      }
      OS << "\\l  " << Escaped;
    }
    OS << "\\l}\"];\n";
    const Instruction *T = BB->getTerminator();
    if (!T)
      continue;
    for (unsigned I = 0, E = T->getNumSuccessors(); I != E; ++I) {
      OS << "  \"" << BB->getName() << "\" -> \""
         << T->getSuccessor(I)->getName() << "\"";
      if (T->getNumSuccessors() == 2)
        OS << " [label=\"" << (I == 0 ? "T" : "F") << "\"]";
      OS << ";\n";
    }
  }
  OS << "}\n";
  return OS.str();
}
