//===- Context.cpp - Ownership of types and constants ----------------------===//

#include "darm/ir/Context.h"

#include "darm/ir/Value.h"

#include <bit>

using namespace darm;

Context::Context()
    : VoidTy(new Type(Type::Kind::Void)), Int1Ty(new Type(Type::Kind::Int1)),
      Int32Ty(new Type(Type::Kind::Int32)),
      Int64Ty(new Type(Type::Kind::Int64)),
      FloatTy(new Type(Type::Kind::Float)) {}

Context::~Context() = default;

Type *Context::getPointerTy(Type *Pointee, AddressSpace AS) {
  for (const auto &T : PointerTys)
    if (T->getPointee() == Pointee && T->getAddressSpace() == AS)
      return T.get();
  PointerTys.emplace_back(new Type(Pointee, AS));
  return PointerTys.back().get();
}

ConstantInt *Context::getConstantInt(Type *Ty, int64_t V) {
  assert(Ty->isInteger() && "integer constant requires integer type");
  if (Ty->isInt1())
    V &= 1;
  else if (Ty->isInt32())
    V = static_cast<int32_t>(V);
  auto &Slot = IntConsts[{Ty, V}];
  if (!Slot)
    Slot = std::make_unique<ConstantInt>(Ty, V);
  return Slot.get();
}

ConstantInt *Context::getInt32(int32_t V) {
  return getConstantInt(getInt32Ty(), V);
}

ConstantInt *Context::getBool(bool V) {
  return getConstantInt(getInt1Ty(), V ? 1 : 0);
}

ConstantFloat *Context::getConstantFloat(float V) {
  uint32_t Bits = std::bit_cast<uint32_t>(V);
  auto &Slot = FloatConsts[Bits];
  if (!Slot)
    Slot = std::make_unique<ConstantFloat>(getFloatTy(), V);
  return Slot.get();
}

UndefValue *Context::getUndef(Type *Ty) {
  auto &Slot = Undefs[Ty];
  if (!Slot)
    Slot = std::make_unique<UndefValue>(Ty);
  return Slot.get();
}
