//===- Instruction.cpp - IR instruction hierarchy ---------------------------===//

#include "darm/ir/Instruction.h"

#include "darm/ir/BasicBlock.h"
#include "darm/ir/Function.h"
#include "darm/support/ErrorHandling.h"

using namespace darm;

const char *darm::getOpcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Ret:
    return "ret";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::SDiv:
    return "sdiv";
  case Opcode::SRem:
    return "srem";
  case Opcode::UDiv:
    return "udiv";
  case Opcode::URem:
    return "urem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::LShr:
    return "lshr";
  case Opcode::AShr:
    return "ashr";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::ICmp:
    return "icmp";
  case Opcode::FCmp:
    return "fcmp";
  case Opcode::ZExt:
    return "zext";
  case Opcode::SExt:
    return "sext";
  case Opcode::Trunc:
    return "trunc";
  case Opcode::SIToFP:
    return "sitofp";
  case Opcode::FPToSI:
    return "fptosi";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Gep:
    return "gep";
  case Opcode::Phi:
    return "phi";
  case Opcode::Select:
    return "select";
  case Opcode::Call:
    return "call";
  case Opcode::NumOpcodes:
    break;
  }
  darm_unreachable("unknown opcode");
}

const char *darm::getPredName(ICmpPred P) {
  switch (P) {
  case ICmpPred::EQ:
    return "eq";
  case ICmpPred::NE:
    return "ne";
  case ICmpPred::SLT:
    return "slt";
  case ICmpPred::SLE:
    return "sle";
  case ICmpPred::SGT:
    return "sgt";
  case ICmpPred::SGE:
    return "sge";
  case ICmpPred::ULT:
    return "ult";
  case ICmpPred::ULE:
    return "ule";
  case ICmpPred::UGT:
    return "ugt";
  case ICmpPred::UGE:
    return "uge";
  }
  darm_unreachable("unknown icmp predicate");
}

const char *darm::getPredName(FCmpPred P) {
  switch (P) {
  case FCmpPred::OEQ:
    return "oeq";
  case FCmpPred::ONE:
    return "one";
  case FCmpPred::OLT:
    return "olt";
  case FCmpPred::OLE:
    return "ole";
  case FCmpPred::OGT:
    return "ogt";
  case FCmpPred::OGE:
    return "oge";
  }
  darm_unreachable("unknown fcmp predicate");
}

const char *darm::getIntrinsicName(Intrinsic IID) {
  switch (IID) {
  case Intrinsic::TidX:
    return "darm.tid.x";
  case Intrinsic::NTidX:
    return "darm.ntid.x";
  case Intrinsic::CTAidX:
    return "darm.ctaid.x";
  case Intrinsic::NCTAidX:
    return "darm.nctaid.x";
  case Intrinsic::LaneId:
    return "darm.laneid";
  case Intrinsic::Barrier:
    return "darm.barrier";
  case Intrinsic::ShflSync:
    return "darm.shfl.sync";
  }
  darm_unreachable("unknown intrinsic");
}

Function *Instruction::getFunction() const {
  return Parent ? Parent->getParent() : nullptr;
}

bool Instruction::hasSideEffects() const {
  switch (getOpcode()) {
  case Opcode::Store:
  case Opcode::Ret:
  case Opcode::Br:
  case Opcode::CondBr:
    return true;
  case Opcode::Call: {
    Intrinsic IID = cast<CallInst>(this)->getIntrinsic();
    return IID == Intrinsic::Barrier || IID == Intrinsic::ShflSync;
  }
  default:
    return false;
  }
}

bool Instruction::isConvergent() const {
  const auto *C = dyn_cast<CallInst>(this);
  if (!C)
    return false;
  Intrinsic IID = C->getIntrinsic();
  return IID == Intrinsic::Barrier || IID == Intrinsic::ShflSync;
}

bool Instruction::isSafeToSpeculate() const {
  if (isBinaryOp() || isCast())
    return true;
  switch (getOpcode()) {
  case Opcode::ICmp:
  case Opcode::FCmp:
  case Opcode::Select:
  case Opcode::Gep:
    return true;
  case Opcode::Call:
    return !isConvergent(); // thread-index queries are pure
  default:
    return false;
  }
}

unsigned Instruction::getNumSuccessors() const {
  switch (getOpcode()) {
  case Opcode::Br:
    return 1;
  case Opcode::CondBr:
    return 2;
  default:
    return 0;
  }
}

BasicBlock *Instruction::getSuccessor(unsigned I) const {
  if (const auto *B = dyn_cast<BrInst>(this)) {
    assert(I == 0 && "br has one successor");
    return B->getTarget();
  }
  const auto *CB = cast<CondBrInst>(this);
  assert(I < 2 && "condbr has two successors");
  return I == 0 ? CB->getTrueSuccessor() : CB->getFalseSuccessor();
}

void Instruction::setSuccessor(unsigned I, BasicBlock *BB) {
  assert(BB && "successor must not be null");
  BasicBlock *Old = getSuccessor(I);
  if (Old == BB)
    return;
  if (auto *B = dyn_cast<BrInst>(this)) {
    B->Target = BB;
  } else {
    auto *CB = cast<CondBrInst>(this);
    if (I == 0)
      CB->TrueBB = BB;
    else
      CB->FalseBB = BB;
  }
  if (Parent) {
    Old->removePredecessor(Parent);
    BB->addPredecessor(Parent);
  }
}

void Instruction::replaceSuccessor(BasicBlock *Old, BasicBlock *New) {
  for (unsigned I = 0, E = getNumSuccessors(); I != E; ++I)
    if (getSuccessor(I) == Old)
      setSuccessor(I, New);
}

void Instruction::linkSuccessors() {
  assert(Parent && "linking successors of a detached instruction");
  for (unsigned I = 0, E = getNumSuccessors(); I != E; ++I)
    getSuccessor(I)->addPredecessor(Parent);
}

void Instruction::unlinkSuccessors() {
  assert(Parent && "unlinking successors of a detached instruction");
  for (unsigned I = 0, E = getNumSuccessors(); I != E; ++I)
    getSuccessor(I)->removePredecessor(Parent);
}

void Instruction::removeFromParent() {
  assert(Parent && "instruction not in a block");
  Parent->remove(this);
}

void Instruction::eraseFromParent() {
  assert(Parent && "instruction not in a block");
  Parent->erase(this);
}

void Instruction::moveBefore(Instruction *Before) {
  assert(Before->getParent() && "destination not in a block");
  removeFromParent();
  Before->getParent()->insert(Before->getIterator(), this);
}

Instruction *Instruction::clone() const { return cloneImpl(); }

Value *PhiInst::getUniqueIncomingValue(bool IgnoreUndef) const {
  Value *Unique = nullptr;
  for (unsigned I = 0, E = getNumIncoming(); I != E; ++I) {
    Value *V = getIncomingValue(I);
    if (V == this)
      continue; // self-loop entries are wildcards
    if (IgnoreUndef && isa<UndefValue>(V))
      continue;
    if (Unique && Unique != V)
      return nullptr;
    Unique = V;
  }
  return Unique;
}
