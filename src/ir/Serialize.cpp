//===- Serialize.cpp - Binary module snapshots --------------------------------===//
//
// The version-1 module encoding (ir/Serialize.h): interned type and
// constant tables followed by per-function instruction records with
// tagged operand references. The deserializer mirrors IRParser's
// forward-reference handling (detached Argument placeholders, RAUW'd
// when the defining instruction materializes), validates every index and
// operand type before constructing an instruction — corrupt bytes
// produce an error string, never an out-of-range read or a tripped
// constructor assert — and rebuilds names through Function::uniqueName
// so the result prints byte-identically to the source module.
//
//===----------------------------------------------------------------------===//

#include "darm/ir/Serialize.h"

#include "darm/ir/Context.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Instruction.h"
#include "darm/ir/Module.h"
#include "darm/support/BinaryStream.h"
#include "darm/support/Hashing.h"

#include <cstring>
#include <map>
#include <unordered_map>

using namespace darm;

uint64_t darm::hashModule(const Module &M) { return hashBytes(printModule(M)); }
uint64_t darm::hashFunction(const Function &F) {
  return hashBytes(printFunction(F));
}

namespace {

// "DRMB" — DARM binary module.
constexpr uint8_t kMagic[4] = {'D', 'R', 'M', 'B'};

// Operand reference tags (low two bits of the varint).
enum RefTag : uint64_t {
  RefInst = 0,   // instruction, function-wide flat index in layout order
  RefArg = 1,    // function argument index
  RefShared = 2, // shared array index
  RefConst = 3,  // constant table index
};

// Type table kinds. Primitives match Type::Kind's order; pointers add
// their pointee index + address space.
enum TypeRec : uint8_t {
  TyVoid = 0,
  TyInt1 = 1,
  TyInt32 = 2,
  TyInt64 = 3,
  TyFloat = 4,
  TyPointer = 5,
};

// Constant table kinds.
enum ConstRec : uint8_t {
  ConstInt = 0,   // type index + zigzag value
  ConstFloat = 1, // raw IEEE-754 bits (always f32)
  ConstUndef = 2, // type index
};

uint32_t floatBits(float V) {
  uint32_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  return Bits;
}
float bitsToFloat(uint32_t Bits) {
  float V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

class ModuleWriter {
public:
  std::vector<uint8_t> write(const std::string &Name,
                             const std::vector<const Function *> &Fns) {
    // Function bodies stream into Body while lazily interning types and
    // constants; the finalized tables are emitted first, then the body.
    Body.writeVar(Fns.size());
    for (const Function *F : Fns)
      writeFunction(*F);
    if (Bad)
      return {};

    ByteWriter Out;
    for (uint8_t B : kMagic)
      Out.writeU8(B);
    Out.writeU16(kModuleFormatVersion);
    Out.writeU16(0); // reserved
    Out.writeStr(Name);

    Out.writeVar(TypeRecs.size());
    for (const auto &R : TypeRecs) {
      Out.writeU8(R.Kind);
      if (R.Kind == TyPointer) {
        Out.writeVar(R.Pointee);
        Out.writeU8(R.AddrSpace);
      }
    }
    Out.writeVar(ConstRecs.size());
    for (const auto &R : ConstRecs) {
      Out.writeU8(R.Kind);
      switch (R.Kind) {
      case ConstInt:
        Out.writeVar(R.Type);
        Out.writeSVar(R.IntVal);
        break;
      case ConstFloat:
        Out.writeU32(R.FloatBits);
        break;
      case ConstUndef:
        Out.writeVar(R.Type);
        break;
      }
    }
    std::vector<uint8_t> BodyBytes = Body.take();
    std::vector<uint8_t> All = Out.take();
    All.insert(All.end(), BodyBytes.begin(), BodyBytes.end());
    return All;
  }

private:
  struct TypeRecord {
    uint8_t Kind;
    uint32_t Pointee = 0;
    uint8_t AddrSpace = 0;
  };
  struct ConstRecord {
    uint8_t Kind;
    uint32_t Type = 0;
    int64_t IntVal = 0;
    uint32_t FloatBits = 0;
  };

  uint64_t typeIdx(Type *Ty) {
    auto It = TypeIdx.find(Ty);
    if (It != TypeIdx.end())
      return It->second;
    TypeRecord R;
    switch (Ty->getKind()) {
    case Type::Kind::Void:
      R.Kind = TyVoid;
      break;
    case Type::Kind::Int1:
      R.Kind = TyInt1;
      break;
    case Type::Kind::Int32:
      R.Kind = TyInt32;
      break;
    case Type::Kind::Int64:
      R.Kind = TyInt64;
      break;
    case Type::Kind::Float:
      R.Kind = TyFloat;
      break;
    case Type::Kind::Pointer:
      R.Kind = TyPointer;
      // Interns the pointee first, so the table is topologically ordered
      // and the reader can resolve pointees as it goes.
      R.Pointee = static_cast<uint32_t>(typeIdx(Ty->getPointee()));
      R.AddrSpace = static_cast<uint8_t>(Ty->getAddressSpace());
      break;
    }
    uint64_t Idx = TypeRecs.size();
    TypeRecs.push_back(R);
    TypeIdx[Ty] = Idx;
    return Idx;
  }

  uint64_t constIdx(const Constant *C) {
    auto It = ConstIdx.find(C);
    if (It != ConstIdx.end())
      return It->second;
    ConstRecord R;
    if (const auto *CI = dyn_cast<ConstantInt>(C)) {
      R.Kind = ConstInt;
      R.Type = static_cast<uint32_t>(typeIdx(CI->getType()));
      R.IntVal = CI->getValue();
    } else if (const auto *CF = dyn_cast<ConstantFloat>(C)) {
      R.Kind = ConstFloat;
      R.FloatBits = floatBits(CF->getValue());
    } else {
      R.Kind = ConstUndef;
      R.Type = static_cast<uint32_t>(typeIdx(C->getType()));
    }
    uint64_t Idx = ConstRecs.size();
    ConstRecs.push_back(R);
    ConstIdx[C] = Idx;
    return Idx;
  }

  void writeRef(const Value *V) {
    if (const auto *C = dyn_cast<Constant>(V)) {
      Body.writeVar((constIdx(C) << 2) | RefConst);
      return;
    }
    auto It = LocalIdx.find(V);
    if (It == LocalIdx.end()) {
      // Operand from another function or a detached value: the module is
      // not well-formed enough to snapshot.
      Bad = true;
      Body.writeVar(RefInst);
      return;
    }
    Body.writeVar(It->second);
  }

  void writeFunction(const Function &F) {
    LocalIdx.clear();
    Body.writeStr(F.getName());
    Body.writeVar(typeIdx(F.getReturnType()));

    Body.writeVar(F.args().size());
    for (size_t I = 0; I < F.args().size(); ++I) {
      const Argument *A = F.args()[I].get();
      Body.writeVar(typeIdx(A->getType()));
      Body.writeStr(A->getName());
      LocalIdx[A] = (uint64_t{I} << 2) | RefArg;
    }
    Body.writeVar(F.sharedArrays().size());
    for (size_t I = 0; I < F.sharedArrays().size(); ++I) {
      const SharedArray *S = F.sharedArrays()[I].get();
      Body.writeVar(typeIdx(S->getType()->getPointee()));
      Body.writeVar(S->getNumElements());
      Body.writeStr(S->getName());
      LocalIdx[S] = (uint64_t{I} << 2) | RefShared;
    }

    std::map<const BasicBlock *, uint64_t> BlockIdx;
    Body.writeVar(F.getNumBlocks());
    for (const BasicBlock *BB : F) {
      BlockIdx[BB] = BlockIdx.size();
      Body.writeStr(BB->getName());
    }
    // Flat instruction indices, assigned up front so phis (and any other
    // forward reference) encode uniformly.
    uint64_t NextInst = 0;
    for (const BasicBlock *BB : F)
      for (const Instruction *I : *BB)
        LocalIdx[I] = (NextInst++ << 2) | RefInst;

    for (const BasicBlock *BB : F) {
      Body.writeVar(BB->size());
      for (const Instruction *I : *BB) {
        Body.writeU8(static_cast<uint8_t>(I->getOpcode()));
        uint8_t SubOp = 0;
        if (const auto *IC = dyn_cast<ICmpInst>(I))
          SubOp = static_cast<uint8_t>(IC->getPredicate());
        else if (const auto *FC = dyn_cast<FCmpInst>(I))
          SubOp = static_cast<uint8_t>(FC->getPredicate());
        else if (const auto *CA = dyn_cast<CallInst>(I))
          SubOp = static_cast<uint8_t>(CA->getIntrinsic());
        Body.writeU8(SubOp);
        Body.writeVar(typeIdx(I->getType()));
        Body.writeStr(I->getType()->isVoid() ? std::string() : I->getName());

        switch (I->getOpcode()) {
        case Opcode::Br:
          Body.writeVar(BlockIdx[cast<BrInst>(I)->getTarget()]);
          break;
        case Opcode::CondBr: {
          const auto *CB = cast<CondBrInst>(I);
          writeRef(CB->getCondition());
          Body.writeVar(BlockIdx[CB->getTrueSuccessor()]);
          Body.writeVar(BlockIdx[CB->getFalseSuccessor()]);
          break;
        }
        case Opcode::Phi: {
          const auto *P = cast<PhiInst>(I);
          Body.writeVar(P->getNumIncoming());
          for (unsigned K = 0; K < P->getNumIncoming(); ++K) {
            writeRef(P->getIncomingValue(K));
            Body.writeVar(BlockIdx[P->getIncomingBlock(K)]);
          }
          break;
        }
        default:
          Body.writeVar(I->getNumOperands());
          for (unsigned K = 0; K < I->getNumOperands(); ++K)
            writeRef(I->getOperand(K));
          break;
        }
      }
    }
  }

  ByteWriter Body;
  std::vector<TypeRecord> TypeRecs;
  std::vector<ConstRecord> ConstRecs;
  std::unordered_map<Type *, uint64_t> TypeIdx;
  std::unordered_map<const Constant *, uint64_t> ConstIdx;
  std::unordered_map<const Value *, uint64_t> LocalIdx;
  bool Bad = false;
};

//===----------------------------------------------------------------------===//
// Deserialization
//===----------------------------------------------------------------------===//

class ModuleReader {
public:
  ModuleReader(Context &Ctx, const uint8_t *Data, size_t Size)
      : Ctx(Ctx), R(Data, Size) {}

  std::unique_ptr<Module> read(std::string *Err) {
    auto M = readImpl();
    if (!M && Err)
      *Err = ErrorMsg.empty() ? "truncated snapshot" : ErrorMsg;
    return M;
  }

private:
  bool error(const std::string &Msg) {
    if (ErrorMsg.empty())
      ErrorMsg = Msg;
    return false;
  }

  Type *readTypeIdx() {
    uint64_t Idx = R.readVar();
    if (Idx >= Types.size()) {
      error("type index out of range");
      return nullptr;
    }
    return Types[Idx];
  }

  std::unique_ptr<Module> readImpl() {
    for (uint8_t Expect : kMagic)
      if (R.readU8() != Expect) {
        error("bad magic (not a DARM module snapshot)");
        return nullptr;
      }
    uint16_t Version = R.readU16();
    if (Version != kModuleFormatVersion) {
      error("unsupported snapshot version " + std::to_string(Version));
      return nullptr;
    }
    R.readU16(); // reserved
    std::string ModName = R.readStr();
    if (R.failed()) {
      error("truncated header");
      return nullptr;
    }

    uint64_t NumTypes = R.readVar();
    if (NumTypes > (1u << 20)) {
      error("implausible type table size");
      return nullptr;
    }
    Types.reserve(NumTypes);
    for (uint64_t I = 0; I < NumTypes; ++I) {
      uint8_t Kind = R.readU8();
      switch (Kind) {
      case TyVoid:
        Types.push_back(Ctx.getVoidTy());
        break;
      case TyInt1:
        Types.push_back(Ctx.getInt1Ty());
        break;
      case TyInt32:
        Types.push_back(Ctx.getInt32Ty());
        break;
      case TyInt64:
        Types.push_back(Ctx.getInt64Ty());
        break;
      case TyFloat:
        Types.push_back(Ctx.getFloatTy());
        break;
      case TyPointer: {
        uint64_t Pointee = R.readVar();
        uint8_t AS = R.readU8();
        if (Pointee >= Types.size()) {
          error("pointer pointee index out of range");
          return nullptr;
        }
        if (AS != 1 && AS != 3) {
          error("bad address space");
          return nullptr;
        }
        if (Types[Pointee]->isVoid() || Types[Pointee]->isPointer()) {
          error("bad pointee type");
          return nullptr;
        }
        Types.push_back(
            Ctx.getPointerTy(Types[Pointee], static_cast<AddressSpace>(AS)));
        break;
      }
      default:
        error("unknown type kind");
        return nullptr;
      }
      if (R.failed()) {
        error("truncated type table");
        return nullptr;
      }
    }

    uint64_t NumConsts = R.readVar();
    if (NumConsts > (1u << 28)) {
      error("implausible constant table size");
      return nullptr;
    }
    Consts.reserve(NumConsts);
    for (uint64_t I = 0; I < NumConsts; ++I) {
      uint8_t Kind = R.readU8();
      switch (Kind) {
      case ConstInt: {
        Type *Ty = readTypeIdx();
        int64_t V = R.readSVar();
        if (!Ty)
          return nullptr;
        if (!Ty->isInteger()) {
          error("integer constant with non-integer type");
          return nullptr;
        }
        Consts.push_back(Ctx.getConstantInt(Ty, V));
        break;
      }
      case ConstFloat:
        Consts.push_back(Ctx.getConstantFloat(bitsToFloat(R.readU32())));
        break;
      case ConstUndef: {
        Type *Ty = readTypeIdx();
        if (!Ty)
          return nullptr;
        Consts.push_back(Ctx.getUndef(Ty));
        break;
      }
      default:
        error("unknown constant kind");
        return nullptr;
      }
      if (R.failed()) {
        error("truncated constant table");
        return nullptr;
      }
    }

    auto M = std::make_unique<Module>(Ctx, ModName);
    uint64_t NumFuncs = R.readVar();
    if (NumFuncs > (1u << 16)) {
      error("implausible function count");
      return nullptr;
    }
    for (uint64_t I = 0; I < NumFuncs; ++I)
      if (!readFunction(*M))
        return nullptr;
    if (!R.atEnd()) {
      error("trailing bytes after module");
      return nullptr;
    }
    return M;
  }

  /// One decoded instruction record; operands stay as raw tagged refs
  /// until the construction pass resolves them.
  struct InstRec {
    Opcode Op;
    uint8_t SubOp;
    Type *Ty;
    std::string Name;
    std::vector<uint64_t> Refs;
    std::vector<uint64_t> Blocks; // phi incoming / branch successors
  };

  /// Resolves a tagged reference while constructing instruction \p Cur.
  /// Instruction references at or past Cur come back as typed
  /// placeholders that RAUW to the real value once it exists.
  Value *resolveRef(uint64_t Ref, size_t Cur) {
    uint64_t Idx = Ref >> 2;
    switch (Ref & 3) {
    case RefArg:
      if (Idx >= F->getNumArgs()) {
        error("argument reference out of range");
        return nullptr;
      }
      return F->getArg(static_cast<unsigned>(Idx));
    case RefShared:
      if (Idx >= F->sharedArrays().size()) {
        error("shared-array reference out of range");
        return nullptr;
      }
      return F->sharedArrays()[static_cast<size_t>(Idx)].get();
    case RefConst:
      if (Idx >= Consts.size()) {
        error("constant reference out of range");
        return nullptr;
      }
      return Consts[static_cast<size_t>(Idx)];
    default:
      break;
    }
    if (Idx >= Defined.size()) {
      error("instruction reference out of range");
      return nullptr;
    }
    if (Idx < Cur && Defined[static_cast<size_t>(Idx)])
      return Defined[static_cast<size_t>(Idx)];
    auto It = Placeholders.find(static_cast<uint32_t>(Idx));
    if (It != Placeholders.end())
      return It->second.get();
    Type *Ty = RecTypes[static_cast<size_t>(Idx)];
    auto Ref2 = std::make_unique<Argument>(Ty, std::string(), nullptr, ~0u);
    Value *Raw = Ref2.get();
    Placeholders.emplace(static_cast<uint32_t>(Idx), std::move(Ref2));
    return Raw;
  }

  /// Releases unresolved placeholders without tripping the live-use
  /// assert: anything still referencing one is redirected to undef.
  void dropPlaceholders() {
    for (auto &KV : Placeholders)
      KV.second->replaceAllUsesWith(Ctx.getUndef(KV.second->getType()));
    Placeholders.clear();
  }

  bool readFunction(Module &M) {
    std::string Name = R.readStr();
    Type *RetTy = readTypeIdx();
    if (!RetTy || R.failed())
      return error("truncated function header");

    uint64_t NumArgs = R.readVar();
    if (NumArgs > (1u << 16))
      return error("implausible argument count");
    Function::ParamList Params;
    for (uint64_t I = 0; I < NumArgs; ++I) {
      Type *Ty = readTypeIdx();
      std::string AName = R.readStr();
      if (!Ty || R.failed())
        return error("truncated argument list");
      Params.push_back({Ty, AName});
    }
    F = M.createFunction(Name, RetTy, Params);

    uint64_t NumShareds = R.readVar();
    if (NumShareds > (1u << 16))
      return error("implausible shared-array count");
    for (uint64_t I = 0; I < NumShareds; ++I) {
      Type *ElemTy = readTypeIdx();
      uint64_t N = R.readVar();
      std::string SName = R.readStr();
      if (!ElemTy || R.failed())
        return error("truncated shared-array list");
      if (ElemTy->isVoid() || ElemTy->isPointer())
        return error("bad shared-array element type");
      if (N > (1u << 28))
        return error("implausible shared-array size");
      F->createSharedArray(ElemTy, static_cast<unsigned>(N), SName);
    }

    uint64_t NumBlocks = R.readVar();
    if (NumBlocks > (1u << 24))
      return error("implausible block count");
    std::vector<BasicBlock *> Blocks;
    Blocks.reserve(NumBlocks);
    for (uint64_t I = 0; I < NumBlocks; ++I) {
      std::string BName = R.readStr();
      if (R.failed())
        return error("truncated block name table");
      Blocks.push_back(F->createBlock(BName));
    }

    // Pass 1: decode every record, so forward references know the type
    // of the instruction they point at before it exists.
    std::vector<std::vector<InstRec>> Body(Blocks.size());
    RecTypes.clear();
    for (size_t B = 0; B < Blocks.size(); ++B) {
      uint64_t NumInsts = R.readVar();
      if (NumInsts > (1u << 24))
        return error("implausible instruction count");
      Body[B].reserve(NumInsts);
      for (uint64_t I = 0; I < NumInsts; ++I) {
        InstRec Rec;
        uint8_t Op = R.readU8();
        if (Op >= static_cast<uint8_t>(Opcode::NumOpcodes))
          return error("unknown opcode");
        Rec.Op = static_cast<Opcode>(Op);
        Rec.SubOp = R.readU8();
        Rec.Ty = readTypeIdx();
        Rec.Name = R.readStr();
        if (!Rec.Ty || R.failed())
          return error("truncated instruction record");
        switch (Rec.Op) {
        case Opcode::Br:
          Rec.Blocks.push_back(R.readVar());
          break;
        case Opcode::CondBr:
          Rec.Refs.push_back(R.readVar());
          Rec.Blocks.push_back(R.readVar());
          Rec.Blocks.push_back(R.readVar());
          break;
        case Opcode::Phi: {
          uint64_t N = R.readVar();
          if (N > (1u << 20))
            return error("implausible phi arity");
          for (uint64_t K = 0; K < N; ++K) {
            Rec.Refs.push_back(R.readVar());
            Rec.Blocks.push_back(R.readVar());
          }
          break;
        }
        default: {
          uint64_t N = R.readVar();
          if (N > (1u << 16))
            return error("implausible operand count");
          for (uint64_t K = 0; K < N; ++K)
            Rec.Refs.push_back(R.readVar());
          break;
        }
        }
        if (R.failed())
          return error("truncated instruction record");
        for (uint64_t BI : Rec.Blocks)
          if (BI >= Blocks.size())
            return error("block reference out of range");
        RecTypes.push_back(Rec.Ty);
        Body[B].push_back(std::move(Rec));
      }
    }

    // Pass 2: construct in order, resolving operands (placeholder-and-
    // RAUW for forward references, exactly like the textual parser).
    Defined.assign(RecTypes.size(), nullptr);
    Placeholders.clear();
    size_t Cur = 0;
    for (size_t B = 0; B < Blocks.size(); ++B) {
      for (InstRec &Rec : Body[B]) {
        Instruction *I = buildInst(Rec, Blocks, Cur);
        if (!I) {
          dropPlaceholders();
          return false;
        }
        if (!I->getType()->isVoid() && !Rec.Name.empty())
          I->setName(F->uniqueName(Rec.Name));
        if (I->isTerminator() && Blocks[B]->getTerminator()) {
          delete I;
          dropPlaceholders();
          return error("multiple terminators in block");
        }
        Blocks[B]->push_back(I);
        Defined[Cur] = I;
        auto It = Placeholders.find(static_cast<uint32_t>(Cur));
        if (It != Placeholders.end()) {
          It->second->replaceAllUsesWith(I);
          Placeholders.erase(It);
        }
        ++Cur;
      }
    }
    // Every flat index is defined by construction, so any surviving
    // placeholder means buildInst dropped a reference on an error path.
    dropPlaceholders();
    return true;
  }

  /// Constructs one instruction from its record, validating operand
  /// types first: the IR constructors assert these invariants, and an
  /// assert is the wrong failure mode for untrusted bytes.
  Instruction *buildInst(const InstRec &Rec,
                         const std::vector<BasicBlock *> &Blocks, size_t Cur) {
    auto Operand = [&](size_t K) -> Value * {
      return K < Rec.Refs.size() ? resolveRef(Rec.Refs[K], Cur) : nullptr;
    };
    auto Expect = [&](size_t N) {
      if (Rec.Refs.size() != N) {
        error("operand count mismatch");
        return false;
      }
      return true;
    };
    Type *VoidTy = Ctx.getVoidTy();
    switch (Rec.Op) {
    case Opcode::Br:
      if (!Expect(0))
        return nullptr;
      return new BrInst(Blocks[static_cast<size_t>(Rec.Blocks[0])], VoidTy);
    case Opcode::CondBr: {
      if (!Expect(1))
        return nullptr;
      Value *C = Operand(0);
      if (!C)
        return nullptr;
      if (!C->getType()->isInt1()) {
        error("condbr condition is not i1");
        return nullptr;
      }
      return new CondBrInst(C, Blocks[static_cast<size_t>(Rec.Blocks[0])],
                            Blocks[static_cast<size_t>(Rec.Blocks[1])],
                            VoidTy);
    }
    case Opcode::Ret: {
      if (Rec.Refs.size() > 1) {
        error("ret with more than one operand");
        return nullptr;
      }
      Value *V = Rec.Refs.empty() ? nullptr : Operand(0);
      if (!Rec.Refs.empty() && !V)
        return nullptr;
      return new RetInst(VoidTy, V);
    }
    case Opcode::ICmp:
    case Opcode::FCmp: {
      if (!Expect(2))
        return nullptr;
      Value *L = Operand(0), *Rv = Operand(1);
      if (!L || !Rv)
        return nullptr;
      if (L->getType() != Rv->getType() || !Rec.Ty->isInt1()) {
        error("cmp operand/result type mismatch");
        return nullptr;
      }
      if (Rec.Op == Opcode::ICmp) {
        if (Rec.SubOp > static_cast<uint8_t>(ICmpPred::UGE)) {
          error("bad icmp predicate");
          return nullptr;
        }
        return new ICmpInst(static_cast<ICmpPred>(Rec.SubOp), L, Rv,
                            Ctx.getInt1Ty());
      }
      if (Rec.SubOp > static_cast<uint8_t>(FCmpPred::OGE)) {
        error("bad fcmp predicate");
        return nullptr;
      }
      return new FCmpInst(static_cast<FCmpPred>(Rec.SubOp), L, Rv,
                          Ctx.getInt1Ty());
    }
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Trunc:
    case Opcode::SIToFP:
    case Opcode::FPToSI: {
      if (!Expect(1))
        return nullptr;
      Value *V = Operand(0);
      if (!V)
        return nullptr;
      return new CastInst(Rec.Op, V, Rec.Ty);
    }
    case Opcode::Load: {
      if (!Expect(1))
        return nullptr;
      Value *P = Operand(0);
      if (!P)
        return nullptr;
      if (!P->getType()->isPointer() || P->getType()->getPointee() != Rec.Ty) {
        error("load pointer/result type mismatch");
        return nullptr;
      }
      return new LoadInst(P);
    }
    case Opcode::Store: {
      if (!Expect(2))
        return nullptr;
      Value *V = Operand(0), *P = Operand(1);
      if (!V || !P)
        return nullptr;
      if (!P->getType()->isPointer() ||
          P->getType()->getPointee() != V->getType()) {
        error("store value/pointer type mismatch");
        return nullptr;
      }
      return new StoreInst(V, P, VoidTy);
    }
    case Opcode::Gep: {
      if (!Expect(2))
        return nullptr;
      Value *P = Operand(0), *Idx = Operand(1);
      if (!P || !Idx)
        return nullptr;
      if (!P->getType()->isPointer() || P->getType() != Rec.Ty ||
          !Idx->getType()->isInteger()) {
        error("gep operand type mismatch");
        return nullptr;
      }
      return new GepInst(P, Idx);
    }
    case Opcode::Select: {
      if (!Expect(3))
        return nullptr;
      Value *C = Operand(0), *T = Operand(1), *Fv = Operand(2);
      if (!C || !T || !Fv)
        return nullptr;
      if (!C->getType()->isInt1() || T->getType() != Fv->getType() ||
          T->getType() != Rec.Ty) {
        error("select operand type mismatch");
        return nullptr;
      }
      return new SelectInst(C, T, Fv);
    }
    case Opcode::Phi: {
      auto *P = new PhiInst(Rec.Ty);
      for (size_t K = 0; K < Rec.Refs.size(); ++K) {
        Value *V = resolveRef(Rec.Refs[K], Cur);
        if (!V || V->getType() != Rec.Ty) {
          if (V)
            error("phi incoming type mismatch");
          P->dropAllReferences();
          delete P;
          return nullptr;
        }
        P->addIncoming(V, Blocks[static_cast<size_t>(Rec.Blocks[K])]);
      }
      return P;
    }
    case Opcode::Call: {
      if (Rec.SubOp > static_cast<uint8_t>(Intrinsic::ShflSync)) {
        error("bad intrinsic id");
        return nullptr;
      }
      std::vector<Value *> Args;
      for (size_t K = 0; K < Rec.Refs.size(); ++K) {
        Value *V = resolveRef(Rec.Refs[K], Cur);
        if (!V)
          return nullptr;
        Args.push_back(V);
      }
      return new CallInst(static_cast<Intrinsic>(Rec.SubOp), Rec.Ty, Args);
    }
    default: {
      // Binary ops (Add..FDiv).
      if (!Expect(2))
        return nullptr;
      Value *L = Operand(0), *Rv = Operand(1);
      if (!L || !Rv)
        return nullptr;
      if (L->getType() != Rv->getType() || L->getType() != Rec.Ty) {
        error("binary operand type mismatch");
        return nullptr;
      }
      return new BinaryInst(Rec.Op, L, Rv);
    }
    }
  }

  Context &Ctx;
  ByteReader R;
  std::string ErrorMsg;
  std::vector<Type *> Types;
  std::vector<Constant *> Consts;

  // Per-function construction state.
  Function *F = nullptr;
  std::vector<Type *> RecTypes;
  std::vector<Instruction *> Defined;
  std::map<uint32_t, std::unique_ptr<Argument>> Placeholders;
};

} // namespace

std::vector<uint8_t> darm::serializeModule(const Module &M) {
  std::vector<const Function *> Fns;
  Fns.reserve(M.functions().size());
  for (const auto &F : M.functions())
    Fns.push_back(F.get());
  return ModuleWriter().write(M.getName(), Fns);
}

std::vector<uint8_t> darm::serializeFunction(const Function &F) {
  return ModuleWriter().write(std::string(), {&F});
}

std::unique_ptr<Module> darm::deserializeModule(Context &Ctx,
                                                const uint8_t *Data,
                                                size_t Size, std::string *Err) {
  return ModuleReader(Ctx, Data, Size).read(Err);
}

std::unique_ptr<Module> darm::deserializeModule(
    Context &Ctx, const std::vector<uint8_t> &Bytes, std::string *Err) {
  return deserializeModule(Ctx, Bytes.data(), Bytes.size(), Err);
}
