//===- ErrorHandling.cpp - Fatal error reporting --------------------------===//

#include "darm/support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace darm;

void darm::reportUnreachable(const char *Msg, const char *File,
                             unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

void darm::reportFatalError(const char *Msg) {
  std::fprintf(stderr, "fatal error: %s\n", Msg);
  std::exit(1);
}
