//===- ErrorHandling.cpp - Fatal error reporting --------------------------===//

#include "darm/support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace darm;

void darm::reportUnreachable(const char *Msg, const char *File,
                             unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

namespace {
// Per-thread slot (see ErrorHandling.h): a worker's scoped handler must
// neither race with another worker's installation nor catch an abort
// raised by a simulation it does not own.
thread_local darm::FatalErrorHandler Handler = nullptr;
} // namespace

darm::FatalErrorHandler darm::setFatalErrorHandler(FatalErrorHandler H) {
  FatalErrorHandler Old = Handler;
  Handler = H;
  return Old;
}

void darm::reportFatalError(const char *Msg) {
  if (Handler)
    Handler(Msg); // expected to throw; fall through to exit if it returns
  std::fprintf(stderr, "fatal error: %s\n", Msg);
  std::exit(1);
}
