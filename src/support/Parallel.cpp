//===- Parallel.cpp - Work-scheduling thread pool ---------------------------===//
//
// A deliberately small pool: one condition variable hands batches to the
// workers, an atomic cursor hands items to whoever is free (workers and
// the calling thread alike), and a per-batch active count lets the caller
// wait for in-flight items without joining threads. Waking a worker and
// registering it with the current batch happen under one mutex, so a
// batch can never complete while a late-waking worker is about to enter
// it, and a worker can never observe a batch whose results buffer has
// already been torn down.
//
//===----------------------------------------------------------------------===//

#include "darm/support/Parallel.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

using namespace darm;

unsigned darm::hardwareParallelism() {
  const unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

namespace {

/// One forIndices invocation. Owned by ThreadPool::Impl for the duration
/// of the batch; the caller never returns while Active > 0, so the
/// callback reference stays valid for every claimed item.
struct Batch {
  const std::function<void(size_t)> *Fn = nullptr;
  size_t N = 0;
  std::atomic<size_t> Next{0};

  // Lowest-indexed failure (see Parallel.h): claims are monotonically
  // increasing, so when an item throws, every lower index has already
  // been claimed and will record its own (lower) failure if it throws
  // too — the minimum is deterministic regardless of scheduling.
  std::mutex ExcM;
  size_t ExcIdx = ~size_t{0};
  std::exception_ptr Exc;

  void runItems() {
    while (true) {
      const size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      try {
        (*Fn)(I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(ExcM);
        if (!Exc || I < ExcIdx) {
          ExcIdx = I;
          Exc = std::current_exception();
        }
        // Fail fast: stop claiming further items. In-flight ones drain.
        Next.store(N, std::memory_order_relaxed);
      }
    }
  }
};

} // namespace

struct ThreadPool::Impl {
  std::mutex M;
  std::condition_variable WorkCV; ///< signals a new batch (or shutdown)
  std::condition_variable DoneCV; ///< signals the batch drained
  Batch *Current = nullptr;       ///< valid while Generation unchanged
  uint64_t Generation = 0;
  unsigned Active = 0; ///< workers currently inside Current
  bool Shutdown = false;
  std::vector<std::thread> Workers;

  void workerLoop() {
    uint64_t SeenGen = 0;
    while (true) {
      Batch *B;
      {
        std::unique_lock<std::mutex> Lock(M);
        WorkCV.wait(Lock,
                    [&] { return Shutdown || Generation != SeenGen; });
        if (Shutdown)
          return;
        SeenGen = Generation;
        B = Current;
        // The caller may have drained the whole batch itself and cleared
        // Current (under this mutex) before we woke; nothing to join.
        if (!B)
          continue;
        ++Active; // registered before the lock drops: the caller's done
                  // wait below cannot miss this worker
      }
      B->runItems();
      {
        std::lock_guard<std::mutex> Lock(M);
        --Active;
      }
      DoneCV.notify_all();
    }
  }
};

ThreadPool::ThreadPool(unsigned Jobs) : NumJobs(Jobs == 0 ? 1 : Jobs) {
  if (NumJobs == 1)
    return; // inline mode: no Impl, no threads
  I = std::make_unique<Impl>();
  I->Workers.reserve(NumJobs - 1);
  for (unsigned W = 0; W + 1 < NumJobs; ++W)
    I->Workers.emplace_back([this] { I->workerLoop(); });
}

ThreadPool::~ThreadPool() {
  if (!I)
    return;
  {
    std::lock_guard<std::mutex> Lock(I->M);
    I->Shutdown = true;
  }
  I->WorkCV.notify_all();
  for (std::thread &T : I->Workers)
    T.join();
}

void ThreadPool::forIndices(size_t N, const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (!I) {
    // Jobs == 1: a plain loop on the calling thread, bit-for-bit the
    // sequential behaviour (order, thread identity, exception flow).
    for (size_t Idx = 0; Idx < N; ++Idx)
      Fn(Idx);
    return;
  }

  Batch B;
  B.Fn = &Fn;
  B.N = N;
  {
    std::lock_guard<std::mutex> Lock(I->M);
    I->Current = &B;
    ++I->Generation;
  }
  I->WorkCV.notify_all();

  // The caller is a full participant: it claims items like any worker.
  B.runItems();

  // Wait for workers still inside this batch. A worker that has not yet
  // woken for this generation will find the cursor exhausted and leave
  // immediately; wake-and-register is atomic under M, so Active == 0
  // under the lock means no worker can still touch B.
  {
    std::unique_lock<std::mutex> Lock(I->M);
    I->DoneCV.wait(Lock, [&] { return I->Active == 0; });
    I->Current = nullptr;
  }

  if (B.Exc)
    std::rethrow_exception(B.Exc);
}
