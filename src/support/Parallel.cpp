//===- Parallel.cpp - Work-scheduling thread pool ---------------------------===//
//
// A deliberately small pool: one condition variable hands batches to the
// workers, and a work-stealing chunk scheduler hands items to whoever is
// free (workers and the calling thread alike). Waking a worker and
// registering it with the current batch happen under one mutex, so a
// batch can never complete while a late-waking worker is about to enter
// it, and a worker can never observe a batch whose results buffer has
// already been torn down.
//
// Item scheduling (docs/performance.md, "Sweep scheduling"): participants
// carve guided chunks off a global cursor — half the remaining work split
// evenly across participants, never below one item — into a
// per-participant (lo, hi) range slot packed in one atomic word. The
// owner pops items off the front of its slot; a participant that finds
// the cursor drained steals the upper half of another participant's slot
// with a single CAS. Early chunks are large (one cursor hit covers many
// items), tail chunks shrink to singles, and a chunk stuck behind one
// expensive item is re-split by idle participants instead of stalling
// the batch.
//
//===----------------------------------------------------------------------===//

#include "darm/support/Parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

using namespace darm;

unsigned darm::hardwareParallelism() {
  const unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

namespace {

/// One forIndices invocation. Owned by ThreadPool::Impl for the duration
/// of the batch; the caller never returns while Active > 0, so the
/// callback reference stays valid for every claimed item.
struct Batch {
  const std::function<void(size_t)> *Fn = nullptr;
  size_t N = 0;
  unsigned Participants = 1;

  /// Undispensed tail of [0, N): refills carve chunks off the front.
  std::atomic<size_t> Next{0};

  /// Per-participant claimed-but-unrun range, packed Lo << 32 | Hi
  /// (empty when Lo >= Hi; ranges fit because the chunked path is gated
  /// on N fitting in 32 bits). Slots are cache-line separated — the
  /// owner CASes its slot on every item pop.
  struct alignas(64) Slot {
    std::atomic<uint64_t> R{0};
  };
  std::unique_ptr<Slot[]> Slots;

  /// Hands out distinct slot indices to the caller (0) and each worker
  /// that registers with this batch.
  std::atomic<unsigned> NextParticipant{1};

  // Deterministic failure (see Parallel.h): once an item throws, items
  // at or above the lowest recorded failing index are skipped, but every
  // item *below* it still runs — any of those that throws lowers the
  // record. The rethrown exception is therefore the globally
  // lowest-indexed throwing item, independent of scheduling: exactly the
  // exception a sequential loop would have surfaced first.
  std::atomic<size_t> MinFail{std::numeric_limits<size_t>::max()};
  std::mutex ExcM;
  size_t ExcIdx = std::numeric_limits<size_t>::max();
  std::exception_ptr Exc;

  static constexpr uint64_t pack(uint64_t Lo, uint64_t Hi) {
    return (Lo << 32) | Hi;
  }
  static constexpr uint32_t lo(uint64_t V) {
    return static_cast<uint32_t>(V >> 32);
  }
  static constexpr uint32_t hi(uint64_t V) {
    return static_cast<uint32_t>(V);
  }

  void runOne(size_t I) {
    if (I >= MinFail.load(std::memory_order_relaxed))
      return; // a lower item already failed; only lower indices matter
    try {
      (*Fn)(I);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(ExcM);
      if (!Exc || I < ExcIdx) {
        ExcIdx = I;
        Exc = std::current_exception();
        MinFail.store(I, std::memory_order_relaxed);
      }
    }
  }

  /// Pops the front item of \p S into \p I. Fails only when the slot is
  /// empty (a concurrent steal can shrink it, never refill it).
  bool popOwn(std::atomic<uint64_t> &S, size_t &I) {
    uint64_t V = S.load(std::memory_order_relaxed);
    while (lo(V) < hi(V)) {
      if (S.compare_exchange_weak(V, pack(lo(V) + uint64_t{1}, hi(V)),
                                  std::memory_order_acq_rel,
                                  std::memory_order_relaxed)) {
        I = lo(V);
        return true;
      }
    }
    return false;
  }

  /// Claims a guided chunk off the global cursor into participant \p P's
  /// slot: half the remaining items split across all participants,
  /// never below 1.
  bool refill(unsigned P) {
    size_t C = Next.load(std::memory_order_relaxed);
    while (C < N) {
      const size_t Chunk =
          std::max<size_t>(1, (N - C) / (2 * size_t{Participants}));
      if (Next.compare_exchange_weak(C, C + Chunk,
                                     std::memory_order_relaxed)) {
        Slots[P].R.store(pack(C, C + Chunk), std::memory_order_release);
        return true;
      }
    }
    return false;
  }

  /// Steals the upper half of some other participant's slot into \p P's
  /// own (empty) slot. Victims keep the lower half, so their in-order
  /// front pop is undisturbed; slots holding a single item are left to
  /// their owner.
  bool stealInto(unsigned P) {
    for (unsigned D = 1; D < Participants; ++D) {
      std::atomic<uint64_t> &V = Slots[(P + D) % Participants].R;
      uint64_t Cur = V.load(std::memory_order_acquire);
      while (hi(Cur) - lo(Cur) >= 2) {
        const uint32_t Mid = lo(Cur) + (hi(Cur) - lo(Cur)) / 2;
        if (V.compare_exchange_weak(Cur, pack(lo(Cur), Mid),
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
          Slots[P].R.store(pack(Mid, hi(Cur)), std::memory_order_release);
          return true;
        }
      }
    }
    return false;
  }

  void runItemsChunked(unsigned P) {
    while (true) {
      size_t I;
      if (popOwn(Slots[P].R, I)) {
        runOne(I);
        continue;
      }
      if (refill(P))
        continue;
      if (!stealInto(P))
        return; // cursor drained, nothing worth stealing anywhere
    }
  }

  /// Per-item monotonic claiming, for batches too large for the packed
  /// 32-bit ranges. Claims are monotonically increasing, so when an item
  /// throws, every lower index has already been claimed and the
  /// fail-fast cursor jump cannot skip a lower would-be thrower.
  void runItemsSerial() {
    while (true) {
      const size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      runOne(I);
      if (MinFail.load(std::memory_order_relaxed) <= I)
        Next.store(N, std::memory_order_relaxed); // fail fast
    }
  }

  void runItems(unsigned P) {
    if (Slots)
      runItemsChunked(P);
    else
      runItemsSerial();
  }
};

} // namespace

struct ThreadPool::Impl {
  std::mutex M;
  std::condition_variable WorkCV; ///< signals a new batch (or shutdown)
  std::condition_variable DoneCV; ///< signals the batch drained
  Batch *Current = nullptr;       ///< valid while Generation unchanged
  uint64_t Generation = 0;
  unsigned Active = 0; ///< workers currently inside Current
  bool Shutdown = false;
  std::vector<std::thread> Workers;

  void workerLoop() {
    uint64_t SeenGen = 0;
    while (true) {
      Batch *B;
      unsigned P;
      {
        std::unique_lock<std::mutex> Lock(M);
        WorkCV.wait(Lock,
                    [&] { return Shutdown || Generation != SeenGen; });
        if (Shutdown)
          return;
        SeenGen = Generation;
        B = Current;
        // The caller may have drained the whole batch itself and cleared
        // Current (under this mutex) before we woke; nothing to join.
        if (!B)
          continue;
        P = B->NextParticipant.fetch_add(1, std::memory_order_relaxed);
        ++Active; // registered before the lock drops: the caller's done
                  // wait below cannot miss this worker
      }
      B->runItems(P);
      {
        std::lock_guard<std::mutex> Lock(M);
        --Active;
      }
      DoneCV.notify_all();
    }
  }
};

ThreadPool::ThreadPool(unsigned Jobs) : NumJobs(Jobs == 0 ? 1 : Jobs) {
  if (NumJobs == 1)
    return; // inline mode: no Impl, no threads
  I = std::make_unique<Impl>();
  I->Workers.reserve(NumJobs - 1);
  for (unsigned W = 0; W + 1 < NumJobs; ++W)
    I->Workers.emplace_back([this] { I->workerLoop(); });
}

ThreadPool::~ThreadPool() {
  if (!I)
    return;
  {
    std::lock_guard<std::mutex> Lock(I->M);
    I->Shutdown = true;
  }
  I->WorkCV.notify_all();
  for (std::thread &T : I->Workers)
    T.join();
}

void ThreadPool::forIndices(size_t N, const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (!I) {
    // Jobs == 1: a plain loop on the calling thread, bit-for-bit the
    // sequential behaviour (order, thread identity, exception flow).
    for (size_t Idx = 0; Idx < N; ++Idx)
      Fn(Idx);
    return;
  }

  Batch B;
  B.Fn = &Fn;
  B.N = N;
  B.Participants = NumJobs;
  if (N <= std::numeric_limits<uint32_t>::max())
    B.Slots = std::make_unique<Batch::Slot[]>(NumJobs);
  {
    std::lock_guard<std::mutex> Lock(I->M);
    I->Current = &B;
    ++I->Generation;
  }
  I->WorkCV.notify_all();

  // The caller is a full participant: it claims items like any worker.
  B.runItems(0);

  // Wait for workers still inside this batch. A worker that has not yet
  // woken for this generation will find the cursor exhausted and leave
  // immediately; wake-and-register is atomic under M, so Active == 0
  // under the lock means no worker can still touch B.
  {
    std::unique_lock<std::mutex> Lock(I->M);
    I->DoneCV.wait(Lock, [&] { return I->Active == 0; });
    I->Current = nullptr;
  }

  if (B.Exc)
    std::rethrow_exception(B.Exc);
}
