//===- Simulator.cpp - SIMT warp simulator (execute phase) ------------------------===//
//
// The execute phase over DecodedProgram (see Decode.cpp for the decode
// phase). Per-warp state is flat: one contiguous structure-of-arrays
// register file of NumRegisters x WarpSize uint64s (row r, lane l at
// Regs[r * WarpSize + l]), recycled across blocks and launches through a
// free pool. Lane loops iterate only the set bits of the active mask
// (std::countr_zero), and phi parallel-copies stage through one
// preallocated buffer instead of per-edge vector<vector> allocations.
//
// The observable behaviour — SimStats counters, cycle accounting, and all
// memory effects — is bit-identical to the original tree-walking
// interpreter; tests/sim_golden_test.cpp pins that equivalence against
// recorded goldens for every kernel in src/kernels/.
//
//===----------------------------------------------------------------------===//

#include "darm/sim/Simulator.h"

#include "darm/analysis/CostModel.h"
#include "darm/ir/Function.h"
#include "darm/support/ErrorHandling.h"
#include "darm/support/Simd.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <type_traits>

// Token-threaded (computed-goto) trace dispatch needs the GNU
// labels-as-values extension; elsewhere the portable switch executor is
// the only mode. DARM_SIM_THREADED is the configure-time feature macro
// (CMake option of the same name); GpuConfig::Dispatch selects at run
// time among whatever this leaves available.
#if defined(DARM_SIM_THREADED) && (defined(__GNUC__) || defined(__clang__))
#define DARM_SIM_HAS_THREADED 1
#else
#define DARM_SIM_HAS_THREADED 0
#endif

using namespace darm;

// The SIMD helpers mirror the executor's write normalization as their own
// enum (support/ cannot include sim/); the trace handlers cast between
// the two, so the member orders must agree.
static_assert(
    static_cast<int>(simd::Norm::None) == static_cast<int>(NormKind::None) &&
        static_cast<int>(simd::Norm::I1) == static_cast<int>(NormKind::I1) &&
        static_cast<int>(simd::Norm::I32) == static_cast<int>(NormKind::I32) &&
        static_cast<int>(simd::Norm::F32) == static_cast<int>(NormKind::F32),
    "simd::Norm must mirror NormKind");

namespace {

float asFloat(uint64_t Bits) {
  return std::bit_cast<float>(static_cast<uint32_t>(Bits));
}
uint64_t fromFloat(float F) {
  return static_cast<uint64_t>(std::bit_cast<uint32_t>(F));
}

/// Canonical register form on write (decode resolved the kind from the
/// destination type).
uint64_t applyNorm(NormKind K, uint64_t Raw) {
  switch (K) {
  case NormKind::I1:
    return Raw & 1;
  case NormKind::I32:
    return static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int32_t>(Raw)));
  case NormKind::F32:
    return Raw & 0xffffffffull;
  case NormKind::None:
    break;
  }
  return Raw;
}

/// Calls \p Fn(lane) for every set bit of \p Mask, low to high.
template <typename Fn> void forLanes(uint64_t Mask, Fn &&F) {
  while (Mask) {
    F(static_cast<unsigned>(std::countr_zero(Mask)));
    Mask &= Mask - 1;
  }
}

uint64_t fullMask(unsigned Lanes) {
  return Lanes >= 64 ? ~0ull : ((1ull << Lanes) - 1);
}

/// Lane-iteration policies for the executor templates. Sparse walks the
/// set bits of the active mask (the divergent slow path). Dense iterates
/// lanes [0, N) contiguously — legal only when the active mask is
/// exactly the warp's full mask, where it visits the same lanes in the
/// same order but gives the compiler a trivially countable loop to
/// unroll and vectorize (the uniform fast path, docs/performance.md).
struct SparseLanes {
  uint64_t Mask;
  template <typename Fn> void each(Fn &&F) const {
    forLanes(Mask, static_cast<Fn &&>(F));
  }
};
struct DenseLanes {
  unsigned N;
  template <typename Fn> void each(Fn &&F) const {
    for (unsigned L = 0; L < N; ++L)
      F(L);
  }
};

enum class WarpStatus { Finished, AtBarrier };

} // namespace

/// All mutable execution state, pooled so repeated run() calls allocate
/// nothing in steady state.
struct SimEngine::Scratch {
  struct StackEntry {
    uint32_t PC;   ///< current block, kNoBlock once lanes exited
    uint32_t RPC;  ///< reconvergence block; kNoBlock = function exit
    uint64_t Mask; ///< lanes executing this entry
  };

  struct Warp {
    unsigned Index = 0;
    std::vector<StackEntry> Stack;
    uint32_t ResumeIdx = 0; ///< instruction index into the top entry's block
    /// Trace whose memory-free prefix already ran op-major in
    /// batchPrefix (accounting included); runWarp finishes the remainder
    /// warp-major. kNoTrace otherwise.
    uint32_t PendingTrace = kNoTrace;
    uint64_t Cycles = 0;
    uint64_t DynInstrs = 0;
    /// W.Cycles at the start of the current phase (set in runBlock
    /// before batchPrefix, which may already charge trace cycles).
    uint64_t PhaseBase = 0;
    bool Done = false;
    unsigned NumLanes = 0;  ///< live lanes (== WarpSize except the tail warp)
    uint64_t FullMask = 0;  ///< fullMask(NumLanes): the converged mask
    std::vector<uint64_t> Regs; ///< SoA register file, NumRegisters x WarpSize
  };

  /// One operand resolved to either a register row or a broadcast
  /// immediate; get(lane) is the per-lane read.
  struct OpRow {
    const uint64_t *Row;
    uint64_t Imm;
    uint64_t get(unsigned L) const { return Row ? Row[L] : Imm; }
  };

  // Launch context (set by SimEngine::run).
  const DecodedProgram *Prog = nullptr;
  const GpuConfig *Cfg = nullptr;
  const LaunchParams *LP = nullptr;
  const std::vector<uint64_t> *Args = nullptr;
  GlobalMemory *Mem = nullptr;
  SimStats LaunchStats;
  EngineStats EStats; ///< host-side trace-path telemetry, reset per run()
  unsigned BlockIdx = 0;
  /// Resolved dispatch mode (GpuConfig::Dispatch x DARM_SIM_HAS_THREADED),
  /// set once in the SimEngine constructor.
  bool UseThreaded = false;

  // Shift/mask forms of the contention-model address math (set from Cfg
  // in the SimEngine constructor). The geometry divisors are powers of
  // two on every real configuration, and a 64-bit divide per lane per
  // memory instruction is the single most expensive ALU op in the
  // execute loop.
  bool SegPow2 = false, BankPow2 = false, WarpPow2 = false;
  unsigned SegShift = 0, BankShift = 0;
  uint64_t BankIdxMask = 0, LaneIdxMask = 0;

  uint64_t segmentOf(uint64_t A) const {
    return SegPow2 ? A >> SegShift : A / Cfg->CoalesceSegmentBytes;
  }
  uint64_t bankOf(uint64_t A) const {
    return BankPow2 ? (A >> BankShift) & BankIdxMask
                    : (A / Cfg->LdsBankWidthBytes) % Cfg->NumLdsBanks;
  }
  unsigned laneModWarp(uint64_t L) const {
    // The shfl lane operand truncates to 32 bits before the modulo
    // (the pre-existing semantics: i32 registers store sign-extended,
    // so a 64-bit modulo would pick a different lane for negative
    // operands on non-power-of-two warp sizes).
    const unsigned U = static_cast<unsigned>(L);
    return WarpPow2 ? (U & static_cast<unsigned>(LaneIdxMask))
                    : U % Cfg->WarpSize;
  }

  // Pooled state.
  std::vector<Warp> Warps;
  std::vector<std::vector<uint64_t>> RegisterPool;
  std::vector<uint8_t> Lds;
  std::vector<uint64_t> Staging; ///< MaxEdgePhis x WarpSize phi staging
  std::vector<std::pair<uint64_t, uint64_t>> BankPairs; ///< (bank, addr)
  std::vector<uint64_t> Segments;
  std::vector<Warp *> GroupBuf; ///< batchPrefix cohort, rebuilt per phase
  /// MaskedTok scratch row: SIMD results for all lanes of one divergent
  /// op before the active-lane scatter (lane masks cap WarpSize at 64).
  alignas(64) uint64_t TmpRow[64] = {};

  OpRow row(const Warp &W, OperandSlot Slot) const {
    if (Slot & kImmediateBit)
      return {nullptr, Prog->Immediates[Slot & ~kImmediateBit]};
    return {W.Regs.data() + static_cast<size_t>(Slot) * Cfg->WarpSize, 0};
  }

  uint64_t *destRow(Warp &W, const DecodedInst &DI) {
    assert(DI.Dest != kNoRegister && "instruction has no destination");
    return W.Regs.data() + static_cast<size_t>(DI.Dest) * Cfg->WarpSize;
  }

  void acquireRegisters(Warp &W) {
    const size_t Size = static_cast<size_t>(Prog->NumRegisters) * Cfg->WarpSize;
    if (RegisterPool.empty()) {
      W.Regs.assign(Size, 0);
      return;
    }
    W.Regs = std::move(RegisterPool.back());
    RegisterPool.pop_back();
    W.Regs.resize(Size);
    // A recycled file keeps the previous block's bits: every in-lane read
    // is dominated by an in-lane write (SSA), so only the rows the
    // kernel reads cross-lane — shfl.sync value operands — must present
    // zeros for lanes whose slot was never written (DecodedProgram::
    // CrossLaneRegisters). Skipping the full-file clear is the win: the
    // register file is the largest per-warp state.
    for (uint32_t R : Prog->CrossLaneRegisters)
      std::fill_n(W.Regs.data() + static_cast<size_t>(R) * Cfg->WarpSize,
                  Cfg->WarpSize, 0);
  }
  void releaseRegisters(Warp &W) { RegisterPool.push_back(std::move(W.Regs)); }

  /// One operand as a SIMD input: a register row pointer, or a broadcast
  /// immediate when Ptr is null (the vector loop splats it once).
  simd::In in(const Warp &W, OperandSlot Slot) const {
    if (Slot & kImmediateBit)
      return {nullptr, Prog->Immediates[Slot & ~kImmediateBit]};
    return {W.Regs.data() + static_cast<size_t>(Slot) * Cfg->WarpSize, 0};
  }

  /// Lane policies for the token handlers: how a SIMD result reaches the
  /// destination row.
  ///
  ///   DenseTok  — the active mask IS the warp's full mask: compute lanes
  ///               [0, N) straight into the destination row. Used by the
  ///               trace executors, the multi-warp batch loop, and
  ///               full-mask block bodies.
  ///   MaskedTok — divergent mask: compute ALL lanes [0, N) into a
  ///               scratch row, then copy back only the active lanes.
  ///               Legal because every named token is a total operation
  ///               (shift counts masked, float ops untrapped, divides and
  ///               intrinsics stay in Generic): inactive lanes compute
  ///               garbage that the scatter discards, and their
  ///               destination bits are preserved bit-exactly. Worth it
  ///               when the mask is dense enough that one vector sweep
  ///               beats popcount scalar iterations (runBlockBody).
  ///
  /// Generic/Load/Store ignore the out/commit hooks and use lanes():
  /// exactly the SparseLanes/DenseLanes path the scalar executor takes,
  /// so masks, memory order and abort behaviour are untouched.
  struct DenseTok {
    unsigned N;
    uint64_t Mask;
    uint64_t *out(uint64_t *Dest) const { return Dest; }
    void commit(uint64_t *, const uint64_t *) const {}
    DenseLanes lanes() const { return DenseLanes{N}; }
  };
  struct MaskedTok {
    unsigned N;
    uint64_t Mask;
    uint64_t *Tmp;
    uint64_t *out(uint64_t *) const { return Tmp; }
    void commit(uint64_t *Dest, const uint64_t *T) const {
      forLanes(Mask, [&](unsigned L) { Dest[L] = T[L]; });
    }
    SparseLanes lanes() const { return SparseLanes{Mask}; }
  };

  // Per-token op handlers, one tok_<Name> per entry of
  // DARM_SIM_TRACE_TOKEN_LIST (DecodedProgram.h), templated over the lane
  // policy above. The named tokens are SIMD lane loops (support/Simd.h);
  // Generic replays the executor's full scalar switch, and Load/Store go
  // through the contention model exactly as the per-block path does. The
  // trace executors, the multi-warp batch path and tokenized block bodies
  // all dispatch into these.
  template <typename Pol>
  void tok_Generic(Warp &W, const DecodedInst &DI, Pol P) {
    computeOp(W, DI, P.lanes());
  }
  template <typename Pol> void tok_Move(Warp &W, const DecodedInst &DI, Pol P) {
    uint64_t *Dest = destRow(W, DI), *D = P.out(Dest);
    simd::move(D, in(W, DI.A), P.N, static_cast<simd::Norm>(DI.Norm));
    P.commit(Dest, D);
  }
  template <typename Pol> void tok_Load(Warp &W, const DecodedInst &DI, Pol P) {
    executeMemory(W, DI, P.Mask, P.lanes());
  }
  template <typename Pol>
  void tok_Store(Warp &W, const DecodedInst &DI, Pol P) {
    executeMemory(W, DI, P.Mask, P.lanes());
  }
#define DARM_SIM_TOK_BINOP(NAME, FN)                                           \
  template <typename Pol>                                                      \
  void tok_##NAME(Warp &W, const DecodedInst &DI, Pol P) {                     \
    uint64_t *Dest = destRow(W, DI), *D = P.out(Dest);                         \
    simd::FN(D, in(W, DI.A), in(W, DI.B), P.N);                                \
    P.commit(Dest, D);                                                         \
  }
  DARM_SIM_TOK_BINOP(Add32, addI32)
  DARM_SIM_TOK_BINOP(Add64, addI64)
  DARM_SIM_TOK_BINOP(Sub32, subI32)
  DARM_SIM_TOK_BINOP(Sub64, subI64)
  DARM_SIM_TOK_BINOP(Mul32, mulI32)
  DARM_SIM_TOK_BINOP(Mul64, mulI64)
  DARM_SIM_TOK_BINOP(And32, andI32)
  DARM_SIM_TOK_BINOP(And64, andI64)
  DARM_SIM_TOK_BINOP(Or32, orI32)
  DARM_SIM_TOK_BINOP(Or64, orI64)
  DARM_SIM_TOK_BINOP(Xor32, xorI32)
  DARM_SIM_TOK_BINOP(Xor64, xorI64)
  DARM_SIM_TOK_BINOP(Shl32, shlI32)
  DARM_SIM_TOK_BINOP(Shl64, shlI64)
  DARM_SIM_TOK_BINOP(LShr32, lshrI32)
  DARM_SIM_TOK_BINOP(LShr64, lshrI64)
  DARM_SIM_TOK_BINOP(AShr32, ashrI32)
  DARM_SIM_TOK_BINOP(AShr64, ashrI64)
  DARM_SIM_TOK_BINOP(FAdd, fAdd)
  DARM_SIM_TOK_BINOP(FSub, fSub)
  DARM_SIM_TOK_BINOP(FMul, fMul)
  DARM_SIM_TOK_BINOP(FDiv, fDiv)
#undef DARM_SIM_TOK_BINOP
// Per-predicate compare handlers: the predicate is baked into the token
// at decode (tokenOf), so there is no inner dispatch left — each handler
// is a single SIMD compare call. The unsigned forms additionally thread
// the i32 truncation flag through.
#define DARM_SIM_TOK_CMP(NAME, FN)                                             \
  template <typename Pol>                                                      \
  void tok_##NAME(Warp &W, const DecodedInst &DI, Pol P) {                     \
    uint64_t *Dest = destRow(W, DI), *D = P.out(Dest);                         \
    simd::FN(D, in(W, DI.A), in(W, DI.B), P.N);                                \
    P.commit(Dest, D);                                                         \
  }
#define DARM_SIM_TOK_UCMP(NAME, FN)                                            \
  template <typename Pol>                                                      \
  void tok_##NAME(Warp &W, const DecodedInst &DI, Pol P) {                     \
    uint64_t *Dest = destRow(W, DI), *D = P.out(Dest);                         \
    simd::FN(D, in(W, DI.A), in(W, DI.B), P.N,                                 \
             (DI.Flags & DecodedInst::kIs32) != 0);                            \
    P.commit(Dest, D);                                                         \
  }
  DARM_SIM_TOK_CMP(ICmpEq, cmpEq)
  DARM_SIM_TOK_CMP(ICmpNe, cmpNe)
  DARM_SIM_TOK_CMP(ICmpSlt, cmpSlt)
  DARM_SIM_TOK_CMP(ICmpSle, cmpSle)
  DARM_SIM_TOK_CMP(ICmpSgt, cmpSgt)
  DARM_SIM_TOK_CMP(ICmpSge, cmpSge)
  DARM_SIM_TOK_UCMP(ICmpUlt, cmpUlt)
  DARM_SIM_TOK_UCMP(ICmpUle, cmpUle)
  DARM_SIM_TOK_UCMP(ICmpUgt, cmpUgt)
  DARM_SIM_TOK_UCMP(ICmpUge, cmpUge)
  DARM_SIM_TOK_CMP(FCmpOeq, cmpFoeq)
  DARM_SIM_TOK_CMP(FCmpOne, cmpFone)
  DARM_SIM_TOK_CMP(FCmpOlt, cmpFolt)
  DARM_SIM_TOK_CMP(FCmpOle, cmpFole)
  DARM_SIM_TOK_CMP(FCmpOgt, cmpFogt)
  DARM_SIM_TOK_CMP(FCmpOge, cmpFoge)
#undef DARM_SIM_TOK_UCMP
#undef DARM_SIM_TOK_CMP
// Division family: one token per op (both widths) — the simd helper
// applies the decoded write norm; the unsigned forms also take the i32
// operand truncation. Total semantics (Simd.h) keep MaskedTok legal.
#define DARM_SIM_TOK_SDIV(NAME, FN)                                            \
  template <typename Pol>                                                      \
  void tok_##NAME(Warp &W, const DecodedInst &DI, Pol P) {                     \
    uint64_t *Dest = destRow(W, DI), *D = P.out(Dest);                         \
    simd::FN(D, in(W, DI.A), in(W, DI.B), P.N,                                 \
             static_cast<simd::Norm>(DI.Norm));                                \
    P.commit(Dest, D);                                                         \
  }
#define DARM_SIM_TOK_UDIV(NAME, FN)                                            \
  template <typename Pol>                                                      \
  void tok_##NAME(Warp &W, const DecodedInst &DI, Pol P) {                     \
    uint64_t *Dest = destRow(W, DI), *D = P.out(Dest);                         \
    simd::FN(D, in(W, DI.A), in(W, DI.B), P.N,                                 \
             (DI.Flags & DecodedInst::kIs32) != 0,                             \
             static_cast<simd::Norm>(DI.Norm));                                \
    P.commit(Dest, D);                                                         \
  }
  DARM_SIM_TOK_SDIV(SDiv, sdiv)
  DARM_SIM_TOK_SDIV(SRem, srem)
  DARM_SIM_TOK_UDIV(UDiv, udiv)
  DARM_SIM_TOK_UDIV(URem, urem)
#undef DARM_SIM_TOK_UDIV
#undef DARM_SIM_TOK_SDIV
  template <typename Pol>
  void tok_Select(Warp &W, const DecodedInst &DI, Pol P) {
    uint64_t *Dest = destRow(W, DI), *D = P.out(Dest);
    simd::select(D, in(W, DI.A), in(W, DI.B), in(W, DI.C), P.N,
                 static_cast<simd::Norm>(DI.Norm));
    P.commit(Dest, D);
  }
  template <typename Pol> void tok_Gep(Warp &W, const DecodedInst &DI, Pol P) {
    uint64_t *Dest = destRow(W, DI), *D = P.out(Dest);
    simd::gep(D, in(W, DI.A), in(W, DI.B), DI.ElemSize, P.N);
    P.commit(Dest, D);
  }

  /// advanceUniformTerminator outcomes: continue the uniform loop at the
  /// updated PC, the warp finished (stack empty), or leave the fast path
  /// with state intact for runWarp's slow path.
  enum class Advance { Continue, Finished, Leave };

  uint64_t runBlock(unsigned Block);
  WarpStatus runWarp(Warp &W);
  bool runUniform(Warp &W, WarpStatus &St);
  Advance advanceUniformTerminator(Warp &W, uint32_t Block);
  void traceAccounting(Warp &W, const DecodedTrace &T, uint64_t Mask);
  void runTraceOps(Warp &W, const DecodedTrace &T, uint32_t Begin);
  template <typename Pol>
  void runToksSwitch(Warp &W, const DecodedInst *Ops, const uint8_t *Toks,
                     uint32_t IP, uint32_t End, Pol P);
  template <typename Pol>
  void runToksThreaded(Warp &W, const DecodedInst *Ops, const uint8_t *Toks,
                       uint32_t IP, uint32_t End, Pol P);
  template <typename Pol>
  void runToks(Warp &W, const DecodedInst *Ops, const uint8_t *Toks,
               uint32_t IP, uint32_t End, Pol P);
  template <typename Pol>
  void execTok(Warp &W, const DecodedInst &DI, TraceTok Tok, Pol P);
  void batchPrefix();
  template <typename Lanes>
  bool runBlockBody(Warp &W, const DecodedBlock &DB, uint64_t Mask, Lanes Ln);
  template <typename Lanes>
  void runEdgeCopies(Warp &W, PhiCopyRange R, Lanes Ln);
  template <typename Lanes>
  void execute(Warp &W, const DecodedInst &DI, uint64_t Mask, Lanes Ln);
  template <typename Lanes>
  void computeOp(Warp &W, const DecodedInst &DI, Lanes Ln);
  template <typename Lanes>
  void executeMemory(Warp &W, const DecodedInst &DI, uint64_t Mask, Lanes Ln);
};

uint64_t SimEngine::Scratch::runBlock(unsigned Block) {
  BlockIdx = Block;
  const unsigned WS = Cfg->WarpSize;
  const unsigned NumThreads = LP->BlockDimX;
  const unsigned NumWarps = (NumThreads + WS - 1) / WS;

  Lds.assign(Prog->SharedMemoryBytes, 0);
  Warps.resize(NumWarps);
  for (unsigned WI = 0; WI < NumWarps; ++WI) {
    Warp &W = Warps[WI];
    W.Index = WI;
    W.Stack.clear();
    const unsigned Lanes = std::min(WS, NumThreads - WI * WS);
    W.NumLanes = Lanes;
    W.FullMask = fullMask(Lanes);
    W.Stack.push_back({Prog->EntryBlock, kNoBlock, W.FullMask});
    W.ResumeIdx = 0;
    W.PendingTrace = kNoTrace;
    W.Cycles = 0;
    W.DynInstrs = 0;
    W.Done = false;
    acquireRegisters(W);
    // Broadcast launch arguments and LDS base offsets to every lane (raw
    // 64-bit payloads, exactly as the host supplied them).
    for (size_t A = 0; A < Prog->ArgRegisters.size(); ++A)
      std::fill_n(W.Regs.data() +
                      static_cast<size_t>(Prog->ArgRegisters[A]) * WS,
                  WS, Args->at(A));
    for (const auto &[Reg, Offset] : Prog->SharedArrayInit)
      std::fill_n(W.Regs.data() + static_cast<size_t>(Reg) * WS, WS, Offset);
  }

  uint64_t BlockCycles = 0;
  while (true) {
    // Phase-cycle baselines first: batchPrefix may charge batched trace
    // accounting to a warp's cycles before its runWarp call, and those
    // charges belong to this phase's max.
    for (Warp &W : Warps)
      if (!W.Done)
        W.PhaseBase = W.Cycles;
    batchPrefix();
    uint64_t PhaseMax = 0;
    bool AllDone = true;
    for (Warp &W : Warps) {
      if (W.Done)
        continue;
      WarpStatus St = runWarp(W);
      PhaseMax = std::max(PhaseMax, W.Cycles - W.PhaseBase);
      if (St == WarpStatus::Finished) {
        W.Done = true;
        LaunchStats.TotalWarpCycles += W.Cycles;
      } else {
        AllDone = false;
      }
    }
    BlockCycles += PhaseMax;
    if (AllDone)
      break;
  }
  for (Warp &W : Warps)
    releaseRegisters(W);
  return BlockCycles;
}

template <typename Lanes>
void SimEngine::Scratch::runEdgeCopies(Warp &W, PhiCopyRange R, Lanes Ln) {
  if (R.empty())
    return;
  const PhiCopy *Copies = Prog->PhiCopies.data();
  const unsigned WS = Cfg->WarpSize;
  // A single copy needs no parallel-copy staging: per-lane read-then-
  // write is correct even when source and destination alias. Most edges
  // carry zero or one phi, so this skips the staging round trip on the
  // hot path.
  if (R.End - R.Begin == 1) {
    const PhiCopy &C = Copies[R.Begin];
    uint64_t *Dest = W.Regs.data() + static_cast<size_t>(C.Dest) * WS;
    if constexpr (std::is_same_v<Lanes, DenseLanes>) {
      // Chunk-wise read-then-write, so a self-copy stays correct.
      simd::move(Dest, in(W, C.Src), Ln.N, static_cast<simd::Norm>(C.Norm));
    } else {
      const OpRow Src = row(W, C.Src);
      const NormKind Norm = C.Norm;
      Ln.each([&](unsigned L) { Dest[L] = applyNorm(Norm, Src.get(L)); });
    }
    return;
  }
  // Parallel-copy semantics: read all sources before any write.
  if constexpr (std::is_same_v<Lanes, DenseLanes>) {
    uint64_t *Stage = Staging.data();
    for (uint32_t C = R.Begin; C != R.End; ++C, Stage += WS)
      simd::move(Stage, in(W, Copies[C].Src), Ln.N, simd::Norm::None);
    Stage = Staging.data();
    for (uint32_t C = R.Begin; C != R.End; ++C, Stage += WS)
      simd::move(W.Regs.data() + static_cast<size_t>(Copies[C].Dest) * WS,
                 simd::In{Stage, 0}, Ln.N,
                 static_cast<simd::Norm>(Copies[C].Norm));
  } else {
    uint64_t *Stage = Staging.data();
    for (uint32_t C = R.Begin; C != R.End; ++C, Stage += WS) {
      const OpRow Src = row(W, Copies[C].Src);
      Ln.each([&](unsigned L) { Stage[L] = Src.get(L); });
    }
    Stage = Staging.data();
    for (uint32_t C = R.Begin; C != R.End; ++C, Stage += WS) {
      uint64_t *Dest =
          W.Regs.data() + static_cast<size_t>(Copies[C].Dest) * WS;
      const NormKind Norm = Copies[C].Norm;
      Ln.each([&](unsigned L) { Dest[L] = applyNorm(Norm, Stage[L]); });
    }
  }
}

/// Executes one block's body (everything before the terminator) plus the
/// whole block's accounting — issue counts, ALU lane tallies, cycle
/// charges including the terminator's latency, BranchesExecuted, and the
/// runaway-instruction budget. One definition serves the divergent slow
/// path (SparseLanes) and the uniform fast path (DenseLanes), so the
/// counter invariants the sim goldens pin live in exactly one place.
///
/// Barrier-free blocks entered at their top take the batched form: the
/// active mask is constant within a block, so the per-instruction
/// bookkeeping sums to one update precomputed at decode
/// (DecodedBlock::NumAluInsts / StaticLatency); memory ops still account
/// individually — their latency is dynamic (bank conflicts, coalescing).
/// Blocks with barriers (or resumed mid-block) account per instruction,
/// because a barrier suspends the warp between two of its instructions.
/// The batching latitude: the budget abort fires at the *top* of the
/// block whose execution would cross the limit, not at the precise
/// instruction — the same launches abort, but if that same block also
/// contains an out-of-bounds access, the reported reason can be the
/// budget message where per-instruction order would have hit the memory
/// abort first. Both orders are deterministic, an aborted launch's
/// stats and memory are discarded, and the differential oracle compares
/// reference and transformed kernels through this same engine, so the
/// latitude is invisible to every gate.
///
/// Returns true when a barrier suspended the warp (ResumeIdx points past
/// it); false when the block body completed and the caller should decide
/// the terminator.
template <typename Lanes>
bool SimEngine::Scratch::runBlockBody(Warp &W, const DecodedBlock &DB,
                                      uint64_t Mask, Lanes Ln) {
  const DecodedInst *Insts = Prog->Insts.data();
  const uint32_t Last = DB.NumInsts - 1; // terminator
  if (!DB.HasBarrier && W.ResumeIdx == 0) {
    if (W.DynInstrs + DB.NumInsts > Cfg->MaxDynamicInstrPerWarp) {
      W.DynInstrs += DB.NumInsts;
      reportFatalError("simulated warp exceeded the dynamic "
                       "instruction budget (runaway loop?)");
    }
    W.DynInstrs += DB.NumInsts;
    LaunchStats.InstructionsIssued += DB.NumInsts;
    LaunchStats.AluInsts += DB.NumAluInsts;
    LaunchStats.AluLanesActive +=
        static_cast<uint64_t>(DB.NumAluInsts) * std::popcount(Mask);
    LaunchStats.AluLanesTotal +=
        static_cast<uint64_t>(DB.NumAluInsts) * Cfg->WarpSize;
    W.Cycles += DB.StaticLatency; // terminator latency included
    // Body execution goes through the token streams (DecodedProgram::
    // InstTokens) — the same SIMD handlers and threaded dispatch the
    // traces use. Full masks run dense; divergent masks run masked-dense
    // when occupancy makes one vector sweep cheaper than popcount scalar
    // iterations, and fall back to the scalar sparse loop below a
    // quarter occupancy.
    const DecodedInst *Body = Insts + DB.FirstInst;
    const uint8_t *Toks = Prog->InstTokens.data() + DB.FirstInst;
    if constexpr (std::is_same_v<Lanes, DenseLanes>) {
      runToks(W, Body, Toks, 0, Last, DenseTok{W.NumLanes, W.FullMask});
    } else {
      if (Mask == W.FullMask) {
        runToks(W, Body, Toks, 0, Last, DenseTok{W.NumLanes, W.FullMask});
      } else if (static_cast<unsigned>(std::popcount(Mask)) * 4 >=
                 W.NumLanes) {
        runToks(W, Body, Toks, 0, Last, MaskedTok{W.NumLanes, Mask, TmpRow});
      } else {
        for (uint32_t Idx = 0; Idx < Last; ++Idx) {
          const DecodedInst &DI = Body[Idx];
          if (DI.Op == Opcode::Load || DI.Op == Opcode::Store)
            executeMemory(W, DI, Mask, Ln);
          else
            computeOp(W, DI, Ln);
        }
      }
    }
  } else {
    for (uint32_t Idx = W.ResumeIdx; Idx < Last; ++Idx) {
      const DecodedInst &DI = Insts[DB.FirstInst + Idx];
      if (++W.DynInstrs > Cfg->MaxDynamicInstrPerWarp)
        reportFatalError("simulated warp exceeded the dynamic "
                         "instruction budget (runaway loop?)");
      if (DI.Op == Opcode::Call &&
          DI.SubOp == static_cast<uint8_t>(Intrinsic::Barrier)) {
        W.Cycles += DI.Latency;
        ++LaunchStats.InstructionsIssued;
        W.ResumeIdx = Idx + 1;
        return true;
      }
      execute(W, DI, Mask, Ln);
    }
    // Terminator accounting (the caller decides where it goes).
    if (++W.DynInstrs > Cfg->MaxDynamicInstrPerWarp)
      reportFatalError("simulated warp exceeded the dynamic "
                       "instruction budget (runaway loop?)");
    ++LaunchStats.InstructionsIssued;
    W.Cycles += Insts[DB.FirstInst + Last].Latency;
  }
  ++LaunchStats.BranchesExecuted;
  W.ResumeIdx = 0;
  return false;
}

WarpStatus SimEngine::Scratch::runWarp(Warp &W) {
  // Finish a trace whose memory-free prefix already ran op-major across
  // the warp cohort (batchPrefix; accounting included): execute the
  // remainder warp-major — memory ops land in exactly the sequential
  // per-warp order — then decide the final block's terminator.
  if (W.PendingTrace != kNoTrace) {
    const DecodedTrace &T = Prog->Traces[W.PendingTrace];
    W.PendingTrace = kNoTrace;
    runTraceOps(W, T, T.PrefixOps);
    if (advanceUniformTerminator(W, T.LastBlock) == Advance::Finished)
      return WarpStatus::Finished;
  }
  const DecodedInst *Insts = Prog->Insts.data();
  while (true) {
    if (W.Stack.empty())
      return WarpStatus::Finished;
    StackEntry &Top = W.Stack.back();
    if (Top.PC == kNoBlock || Top.PC == Top.RPC) {
      // Lanes reached the reconvergence point (or exited): merge back.
      W.Stack.pop_back();
      W.ResumeIdx = 0;
      continue;
    }

    // Uniform fast path: a fully converged warp in a block whose
    // terminator provably cannot split the mask runs block-to-block in
    // runUniform until control reaches a possibly-divergent branch.
    if (Top.Mask == W.FullMask && Prog->Blocks[Top.PC].UniformSafe) {
      WarpStatus St;
      if (runUniform(W, St))
        return St;
      continue; // left the uniform region with state intact
    }

    const DecodedBlock &DB = Prog->Blocks[Top.PC];
    const uint64_t Mask = Top.Mask;
    const SparseLanes Ln{Mask};
    if (runBlockBody(W, DB, Mask, Ln))
      return WarpStatus::AtBarrier;

    // Terminator.
    const DecodedInst &Term = Insts[DB.FirstInst + DB.NumInsts - 1];
    if (Term.Op == Opcode::Ret) {
      W.Stack.pop_back();
    } else if (Term.Op == Opcode::Br) {
      runEdgeCopies(W, DB.Edge[0], Ln);
      Top.PC = DB.Succ[0];
    } else {
      const OpRow Cond = row(W, Term.A);
      // Dense SIMD bit-pack over all lanes, then restrict to the active
      // mask — cheaper than a sparse per-lane scan at any occupancy.
      const uint64_t MT =
          Cond.Row ? simd::boolMask(Cond.Row, W.NumLanes) & Mask
                   : ((Cond.Imm & 1) ? Mask : 0);
      const uint64_t MF = Mask & ~MT;
      if (MF == 0) {
        runEdgeCopies(W, DB.Edge[0], Ln);
        Top.PC = DB.Succ[0];
      } else if (MT == 0) {
        runEdgeCopies(W, DB.Edge[1], Ln);
        Top.PC = DB.Succ[1];
      } else {
        // Divergence: reconverge at the IPDOM, serialize both paths.
        ++LaunchStats.DivergentBranches;
        const uint32_t SuccT = DB.Succ[0], SuccF = DB.Succ[1];
        const uint32_t R = DB.Reconverge;
        Top.PC = R; // this entry becomes the reconvergence entry
        runEdgeCopies(W, DB.Edge[1], SparseLanes{MF});
        W.Stack.push_back({SuccF, R, MF}); // invalidates Top
        runEdgeCopies(W, DB.Edge[0], SparseLanes{MT});
        W.Stack.push_back({SuccT, R, MT});
      }
    }
  }
}

/// Decides a UniformSafe block's terminator for a converged warp: ret
/// pops the (bottom) stack entry; branch directions read one lane —
/// every active lane agrees (DecodedBlock::UniformSafe), and lane 0 is
/// always active under a full mask — and the taken edge's phi copies run
/// dense. Shared by the uniform per-block loop and the trace path, which
/// materializes no terminators (DecodedTrace::LastBlock points here).
SimEngine::Scratch::Advance
SimEngine::Scratch::advanceUniformTerminator(Warp &W, uint32_t Block) {
  const DecodedBlock &DB = Prog->Blocks[Block];
  const DecodedInst &Term = Prog->Insts[DB.FirstInst + DB.NumInsts - 1];
  if (Term.Op == Opcode::Ret) {
    W.Stack.pop_back();
    // Leave on a non-empty stack is defensive: push sites exclude full
    // masks, so a full-mask ret can only pop the bottom entry.
    return W.Stack.empty() ? Advance::Finished : Advance::Leave;
  }
  unsigned S = 0;
  if (Term.Op != Opcode::Br) {
    const OpRow Cond = row(W, Term.A);
    S = (Cond.get(0) & 1) ? 0 : 1;
  }
  runEdgeCopies(W, DB.Edge[S], DenseLanes{W.NumLanes});
  W.Stack.back().PC = DB.Succ[S];
  return Advance::Continue;
}

/// The uniform fast path (docs/performance.md): executes consecutive
/// UniformSafe blocks while the warp's full mask is active. Lane loops
/// are dense ([0, NumLanes), exactly the set bits of the full mask in
/// the same order), the conditional-branch mask scan collapses to one
/// lane read (UniformSafe guarantees every lane agrees), and the
/// reconvergence stack is never pushed — a full mask implies the stack's
/// bottom entry, whose RPC is the function exit, so the top-of-loop
/// PC==RPC check in runWarp can never fire here.
///
/// Barrier-free blocks run through their superblock trace
/// (DecodedBlock::TraceId): the whole fused chain — block bodies,
/// interior phi moves resolved to sequential register Moves, batched
/// accounting precomputed at decode — in one dispatch (switch or
/// computed-goto, GpuConfig::Dispatch), with SIMD lane loops for the hot
/// ops; only the final block's terminator remains to decide. Blocks with
/// barriers take the per-block, per-instruction path, because a barrier
/// suspends the warp mid-block. Counters, cycles and memory effects are
/// bit-identical to the slow path (sim goldens); the only latitude is
/// the runaway-budget abort position within a block or trace (see
/// runBlockBody / traceAccounting).
///
/// Returns true when the warp finished or reached a barrier (\p St set);
/// false when control reached a block the fast path cannot handle — the
/// warp state is left exactly where runWarp's slow path picks up.
bool SimEngine::Scratch::runUniform(Warp &W, WarpStatus &St) {
  const uint64_t Mask = W.FullMask;
  const DenseLanes Ln{W.NumLanes};
  while (true) {
    const DecodedBlock &DB = Prog->Blocks[W.Stack.back().PC];
    if (!DB.UniformSafe)
      return false;

    if (DB.TraceId != kNoTrace) {
      assert(W.ResumeIdx == 0 && "mid-block resume implies a barrier block");
      const DecodedTrace &T = Prog->Traces[DB.TraceId];
      traceAccounting(W, T, Mask);
      runTraceOps(W, T, 0);
      switch (advanceUniformTerminator(W, T.LastBlock)) {
      case Advance::Continue:
        continue;
      case Advance::Finished:
        St = WarpStatus::Finished;
        return true;
      case Advance::Leave:
        return false;
      }
    }

    // Barrier block (or mid-block resume after one): per-block path.
    if (runBlockBody(W, DB, Mask, Ln)) {
      St = WarpStatus::AtBarrier;
      return true;
    }
    switch (advanceUniformTerminator(W, W.Stack.back().PC)) {
    case Advance::Continue:
      continue;
    case Advance::Finished:
      St = WarpStatus::Finished;
      return true;
    case Advance::Leave:
      return false;
    }
  }
}

/// The trace-wide batched accounting: exactly the sum of the chained
/// blocks' per-block batched updates (runBlockBody), precomputed at
/// decode (DecodedTrace). The runaway-budget check is hoisted to the
/// trace top — a trace is straight-line, so a warp entering it retires
/// all DynInsts; the same launches abort, with the abort-position
/// latitude runBlockBody documents widened from one block to one trace.
void SimEngine::Scratch::traceAccounting(Warp &W, const DecodedTrace &T,
                                         uint64_t Mask) {
  if (W.DynInstrs + T.DynInsts > Cfg->MaxDynamicInstrPerWarp) {
    W.DynInstrs += T.DynInsts;
    reportFatalError("simulated warp exceeded the dynamic "
                     "instruction budget (runaway loop?)");
  }
  W.DynInstrs += T.DynInsts;
  LaunchStats.InstructionsIssued += T.DynInsts;
  LaunchStats.AluInsts += T.NumAluInsts;
  LaunchStats.AluLanesActive +=
      static_cast<uint64_t>(T.NumAluInsts) * std::popcount(Mask);
  LaunchStats.AluLanesTotal +=
      static_cast<uint64_t>(T.NumAluInsts) * Cfg->WarpSize;
  W.Cycles += T.StaticLatency;
  LaunchStats.BranchesExecuted += T.NumBlocks;
  ++EStats.TraceRuns;
  EStats.TraceInstrs += T.DynInsts;
}

/// One tokenized op through the portable switch. Also the building block
/// of the op-major multi-warp batch loop, which switches once per op and
/// runs it across the whole cohort.
template <typename Pol>
void SimEngine::Scratch::execTok(Warp &W, const DecodedInst &DI, TraceTok Tok,
                                 Pol P) {
  switch (Tok) {
#define DARM_SIM_TOK_CASE(NAME)                                                \
  case TraceTok::NAME:                                                         \
    tok_##NAME(W, DI, P);                                                      \
    break;
    DARM_SIM_TRACE_TOKEN_LIST(DARM_SIM_TOK_CASE)
#undef DARM_SIM_TOK_CASE
  }
}

template <typename Pol>
void SimEngine::Scratch::runToksSwitch(Warp &W, const DecodedInst *Ops,
                                       const uint8_t *Toks, uint32_t IP,
                                       uint32_t End, Pol P) {
  for (; IP != End; ++IP)
    execTok(W, Ops[IP], static_cast<TraceTok>(Toks[IP]), P);
}

/// Token-threaded dispatch: every handler jumps straight to the next
/// op's label (GNU labels-as-values), so the indirect branch is
/// per-opcode-site rather than one shared switch branch — measurably
/// better branch prediction on long streams. Bit-equivalent to
/// runToksSwitch by construction: the label table and the switch cases
/// expand from the same DARM_SIM_TRACE_TOKEN_LIST into the same tok_
/// handlers (pinned on the fuzz population by sim_test).
template <typename Pol>
void SimEngine::Scratch::runToksThreaded(Warp &W, const DecodedInst *Ops,
                                         const uint8_t *Toks, uint32_t IP,
                                         uint32_t End, Pol P) {
#if DARM_SIM_HAS_THREADED
  static const void *const Labels[] = {
#define DARM_SIM_TOK_LABEL(NAME) &&Lbl_##NAME,
      DARM_SIM_TRACE_TOKEN_LIST(DARM_SIM_TOK_LABEL)
#undef DARM_SIM_TOK_LABEL
  };
#define DARM_SIM_DISPATCH()                                                    \
  do {                                                                         \
    if (IP == End)                                                             \
      return;                                                                  \
    goto *Labels[Toks[IP]];                                                    \
  } while (0)
  DARM_SIM_DISPATCH();
#define DARM_SIM_TOK_IMPL(NAME)                                                \
  Lbl_##NAME : tok_##NAME(W, Ops[IP], P);                                      \
  ++IP;                                                                        \
  DARM_SIM_DISPATCH();
  DARM_SIM_TRACE_TOKEN_LIST(DARM_SIM_TOK_IMPL)
#undef DARM_SIM_TOK_IMPL
#undef DARM_SIM_DISPATCH
#else
  runToksSwitch(W, Ops, Toks, IP, End, P);
#endif
}

/// Runs [IP, End) of a token stream in the resolved dispatch mode.
template <typename Pol>
void SimEngine::Scratch::runToks(Warp &W, const DecodedInst *Ops,
                                 const uint8_t *Toks, uint32_t IP, uint32_t End,
                                 Pol P) {
  if (UseThreaded)
    runToksThreaded(W, Ops, Toks, IP, End, P);
  else
    runToksSwitch(W, Ops, Toks, IP, End, P);
}

void SimEngine::Scratch::runTraceOps(Warp &W, const DecodedTrace &T,
                                     uint32_t Begin) {
  runToks(W, Prog->TraceOps.data() + T.FirstOp,
          Prog->TraceTokens.data() + T.FirstOp, Begin, T.NumOps,
          DenseTok{W.NumLanes, W.FullMask});
}

/// Multi-warp batching (docs/performance.md): when every live warp of
/// the thread block is about to enter the same trace converged, the
/// trace's memory-free prefix runs op-major across the cohort — one
/// token dispatch per op instead of one per op per warp, and each op's
/// code stays hot across the group. Legal because the prefix touches
/// only warp-private registers (DecodedTrace::PrefixOps): any
/// interleaving is bit-identical to the sequential warp order the
/// goldens pin. Accounting runs per warp, in warp order, before any op —
/// so a budget abort surfaces for the lowest-indexed warp, exactly where
/// the phase-sequential path's per-trace check would put it. The
/// remainder of the trace (first memory op onward) runs warp-major via
/// Warp::PendingTrace, preserving phase-sequential memory order.
void SimEngine::Scratch::batchPrefix() {
  if (Warps.size() < 2)
    return;
  // Cheap bail first: this runs at every phase boundary, and most phases
  // are not batchable — decide from the first live warp's block alone
  // (trace-headed, prefix non-empty) before scanning the whole cohort.
  const Warp *First = nullptr;
  for (const Warp &W : Warps)
    if (!W.Done) {
      First = &W;
      break;
    }
  if (!First || First->Stack.empty() || First->ResumeIdx != 0)
    return;
  const StackEntry &FT = First->Stack.back();
  if (FT.PC == kNoBlock || FT.PC == FT.RPC || FT.Mask != First->FullMask)
    return;
  const uint32_t PC = FT.PC;
  const DecodedBlock &DB = Prog->Blocks[PC];
  if (!DB.UniformSafe || DB.TraceId == kNoTrace)
    return;
  const DecodedTrace &T = Prog->Traces[DB.TraceId];
  if (T.PrefixOps == 0)
    return;

  GroupBuf.clear();
  for (Warp &W : Warps) {
    if (W.Done)
      continue;
    if (W.Stack.empty() || W.ResumeIdx != 0)
      return;
    const StackEntry &Top = W.Stack.back();
    if (Top.PC != PC || Top.PC == Top.RPC || Top.Mask != W.FullMask)
      return;
    GroupBuf.push_back(&W);
  }
  if (GroupBuf.size() < 2)
    return;

  for (Warp *W : GroupBuf)
    traceAccounting(*W, T, W->FullMask);
  const DecodedInst *Ops = Prog->TraceOps.data() + T.FirstOp;
  const uint8_t *Toks = Prog->TraceTokens.data() + T.FirstOp;
  for (uint32_t IP = 0; IP < T.PrefixOps; ++IP)
    for (Warp *W : GroupBuf)
      execTok(*W, Ops[IP], static_cast<TraceTok>(Toks[IP]),
              DenseTok{W->NumLanes, W->FullMask});
  for (Warp *W : GroupBuf)
    W->PendingTrace = DB.TraceId;
  EStats.BatchedTraceInstrs +=
      static_cast<uint64_t>(T.PrefixOps) * GroupBuf.size();
}

template <typename Lanes>
void SimEngine::Scratch::execute(Warp &W, const DecodedInst &DI,
                                 uint64_t Mask, Lanes Ln) {
  ++LaunchStats.InstructionsIssued;

  if (DI.Op == Opcode::Load || DI.Op == Opcode::Store) {
    executeMemory(W, DI, Mask, Ln);
    return;
  }

  // Everything else is a VALU-class instruction.
  ++LaunchStats.AluInsts;
  LaunchStats.AluLanesActive += std::popcount(Mask);
  LaunchStats.AluLanesTotal += Cfg->WarpSize;
  W.Cycles += DI.Latency;

  computeOp(W, DI, Ln);
}

/// The data-path switch alone — no issue counters, no cycle charges. The
/// uniform fast path batches those per block and calls this directly.
template <typename Lanes>
void SimEngine::Scratch::computeOp(Warp &W, const DecodedInst &DI, Lanes Ln) {
  uint64_t *Dest = destRow(W, DI);
  const bool Is32 = DI.Flags & DecodedInst::kIs32;
  const unsigned ShiftMask = Is32 ? 31 : 63;

// Binary scalar op: evaluates EXPR with RA/RB bound per active lane.
#define DARM_BINOP(OPC, EXPR)                                                  \
  case Opcode::OPC: {                                                          \
    const OpRow A = row(W, DI.A), B = row(W, DI.B);                            \
    Ln.each([&](unsigned L) {                                           \
      const uint64_t RA = A.get(L), RB = B.get(L);                             \
      (void)RA;                                                                \
      (void)RB;                                                                \
      Dest[L] = applyNorm(DI.Norm, static_cast<uint64_t>(EXPR));               \
    });                                                                        \
    break;                                                                     \
  }

  switch (DI.Op) {
    // Two's-complement add/sub/mul are bitwise identical for signed and
    // unsigned; unsigned avoids signed-overflow UB.
    DARM_BINOP(Add, RA + RB)
    DARM_BINOP(Sub, RA - RB)
    DARM_BINOP(Mul, RA *RB)
    // Division by zero is defined to yield 0 in this IR (Instruction.h);
    // INT_MIN / -1 is defined as negation to avoid hardware UB.
    DARM_BINOP(SDiv, [&] {
      const int64_t SA = static_cast<int64_t>(RA);
      const int64_t SB = static_cast<int64_t>(RB);
      if (SB == 0)
        return uint64_t{0};
      if (SB == -1)
        return uint64_t{0} - RA;
      return static_cast<uint64_t>(SA / SB);
    }())
    DARM_BINOP(SRem, [&] {
      const int64_t SA = static_cast<int64_t>(RA);
      const int64_t SB = static_cast<int64_t>(RB);
      if (SB == 0 || SB == -1)
        return uint64_t{0};
      return static_cast<uint64_t>(SA % SB);
    }())
    DARM_BINOP(UDiv, [&] {
      const uint64_t UA = Is32 ? static_cast<uint32_t>(RA) : RA;
      const uint64_t UB = Is32 ? static_cast<uint32_t>(RB) : RB;
      return UB == 0 ? 0 : UA / UB;
    }())
    DARM_BINOP(URem, [&] {
      const uint64_t UA = Is32 ? static_cast<uint32_t>(RA) : RA;
      const uint64_t UB = Is32 ? static_cast<uint32_t>(RB) : RB;
      return UB == 0 ? 0 : UA % UB;
    }())
    DARM_BINOP(And, RA &RB)
    DARM_BINOP(Or, RA | RB)
    DARM_BINOP(Xor, RA ^ RB)
    DARM_BINOP(Shl, RA << (RB & ShiftMask))
    DARM_BINOP(LShr, (Is32 ? static_cast<uint32_t>(RA) : RA)
                         >> (RB & ShiftMask))
    DARM_BINOP(AShr, (Is32 ? static_cast<int64_t>(static_cast<int32_t>(RA))
                           : static_cast<int64_t>(RA))
                         >> (RB & ShiftMask))
    DARM_BINOP(FAdd, fromFloat(asFloat(RA) + asFloat(RB)))
    DARM_BINOP(FSub, fromFloat(asFloat(RA) - asFloat(RB)))
    DARM_BINOP(FMul, fromFloat(asFloat(RA) * asFloat(RB)))
    DARM_BINOP(FDiv, fromFloat(asFloat(RA) / asFloat(RB)))

  case Opcode::ICmp: {
    const OpRow A = row(W, DI.A), B = row(W, DI.B);
    const auto Pred = static_cast<ICmpPred>(DI.SubOp);
    Ln.each([&](unsigned L) {
      const uint64_t RA = A.get(L), RB = B.get(L);
      const int64_t SA = static_cast<int64_t>(RA);
      const int64_t SB = static_cast<int64_t>(RB);
      const uint64_t UA = Is32 ? static_cast<uint32_t>(RA) : RA;
      const uint64_t UB = Is32 ? static_cast<uint32_t>(RB) : RB;
      uint64_t R = 0;
      switch (Pred) {
      case ICmpPred::EQ:
        R = RA == RB;
        break;
      case ICmpPred::NE:
        R = RA != RB;
        break;
      case ICmpPred::SLT:
        R = SA < SB;
        break;
      case ICmpPred::SLE:
        R = SA <= SB;
        break;
      case ICmpPred::SGT:
        R = SA > SB;
        break;
      case ICmpPred::SGE:
        R = SA >= SB;
        break;
      case ICmpPred::ULT:
        R = UA < UB;
        break;
      case ICmpPred::ULE:
        R = UA <= UB;
        break;
      case ICmpPred::UGT:
        R = UA > UB;
        break;
      case ICmpPred::UGE:
        R = UA >= UB;
        break;
      }
      Dest[L] = R; // i1 result, already canonical
    });
    break;
  }
  case Opcode::FCmp: {
    const OpRow A = row(W, DI.A), B = row(W, DI.B);
    const auto Pred = static_cast<FCmpPred>(DI.SubOp);
    Ln.each([&](unsigned L) {
      const float FA = asFloat(A.get(L)), FB = asFloat(B.get(L));
      uint64_t R = 0;
      switch (Pred) {
      case FCmpPred::OEQ:
        R = FA == FB;
        break;
      case FCmpPred::ONE:
        R = FA != FB;
        break;
      case FCmpPred::OLT:
        R = FA < FB;
        break;
      case FCmpPred::OLE:
        R = FA <= FB;
        break;
      case FCmpPred::OGT:
        R = FA > FB;
        break;
      case FCmpPred::OGE:
        R = FA >= FB;
        break;
      }
      Dest[L] = R;
    });
    break;
  }
  case Opcode::Select: {
    const OpRow C = row(W, DI.A), T = row(W, DI.B), F = row(W, DI.C);
    Ln.each([&](unsigned L) {
      Dest[L] = applyNorm(DI.Norm, (C.get(L) & 1) ? T.get(L) : F.get(L));
    });
    break;
  }
  case Opcode::Gep: {
    const OpRow Base = row(W, DI.A), Index = row(W, DI.B);
    const int64_t Elem = DI.ElemSize;
    Ln.each([&](unsigned L) {
      const int64_t Idx = static_cast<int64_t>(Index.get(L));
      Dest[L] = Base.get(L) + static_cast<uint64_t>(Idx * Elem);
    });
    break;
  }
  case Opcode::ZExt: {
    const OpRow Src = row(W, DI.A);
    const uint8_t F = DI.Flags;
    Ln.each([&](unsigned L) {
      const uint64_t V = Src.get(L);
      const uint64_t R = (F & DecodedInst::kSrcIsI1)    ? (V & 1)
                         : (F & DecodedInst::kSrcIsI32) ? static_cast<uint32_t>(V)
                                                        : V;
      Dest[L] = applyNorm(DI.Norm, R);
    });
    break;
  }
  case Opcode::SExt: {
    const OpRow Src = row(W, DI.A);
    const bool FromI1 = DI.Flags & DecodedInst::kSrcIsI1;
    Ln.each([&](unsigned L) {
      const uint64_t V = Src.get(L);
      // i32 registers are stored sign-extended already.
      const uint64_t R = FromI1 ? ((V & 1) ? ~0ull : 0) : V;
      Dest[L] = applyNorm(DI.Norm, R);
    });
    break;
  }
  case Opcode::Trunc: {
    const OpRow Src = row(W, DI.A);
    Ln.each([&](unsigned L) {
      Dest[L] = applyNorm(DI.Norm, Src.get(L)); // norm truncates on write
    });
    break;
  }
  case Opcode::SIToFP: {
    const OpRow Src = row(W, DI.A);
    Ln.each([&](unsigned L) {
      Dest[L] = applyNorm(DI.Norm, fromFloat(static_cast<float>(
                                       static_cast<int64_t>(Src.get(L)))));
    });
    break;
  }
  case Opcode::FPToSI: {
    // Like division by zero, fptosi is total in this IR (Instruction.h):
    // NaN yields 0 and out-of-range values saturate to the destination's
    // limits. A plain C++ cast would be undefined for those inputs, and
    // predication may feed fptosi any bit pattern.
    const OpRow Src = row(W, DI.A);
    const bool To32 = DI.Norm == NormKind::I32;
    const float Lo = To32 ? -2147483648.0f : -9223372036854775808.0f;
    const float Hi = To32 ? 2147483648.0f : 9223372036854775808.0f;
    const int64_t Min = To32 ? INT32_MIN : INT64_MIN;
    const int64_t Max = To32 ? INT32_MAX : INT64_MAX;
    Ln.each([&](unsigned L) {
      const float F = asFloat(Src.get(L));
      int64_t R;
      if (std::isnan(F))
        R = 0;
      else if (F < Lo)
        R = Min;
      else if (F >= Hi)
        R = Max;
      else
        R = static_cast<int64_t>(F);
      Dest[L] = applyNorm(DI.Norm, static_cast<uint64_t>(R));
    });
    break;
  }
  case Opcode::Call: {
    const unsigned WS = Cfg->WarpSize;
    switch (static_cast<Intrinsic>(DI.SubOp)) {
    case Intrinsic::TidX:
      Ln.each([&](unsigned L) {
        Dest[L] = applyNorm(DI.Norm, W.Index * WS + L);
      });
      break;
    case Intrinsic::NTidX:
      Ln.each([&](unsigned L) {
        Dest[L] = applyNorm(DI.Norm, LP->BlockDimX);
      });
      break;
    case Intrinsic::CTAidX:
      Ln.each([&](unsigned L) {
        Dest[L] = applyNorm(DI.Norm, BlockIdx);
      });
      break;
    case Intrinsic::NCTAidX:
      Ln.each([&](unsigned L) {
        Dest[L] = applyNorm(DI.Norm, LP->GridDimX);
      });
      break;
    case Intrinsic::LaneId:
      Ln.each([&](unsigned L) { Dest[L] = applyNorm(DI.Norm, L); });
      break;
    case Intrinsic::ShflSync: {
      const OpRow Val = row(W, DI.A), Lane = row(W, DI.B);
      Ln.each([&](unsigned L) {
        const unsigned Src = laneModWarp(Lane.get(L));
        Dest[L] = applyNorm(DI.Norm, Val.get(Src));
      });
      break;
    }
    case Intrinsic::Barrier:
      darm_unreachable("barrier handled in runWarp");
    }
    break;
  }
  default:
    darm_unreachable("unhandled opcode in execute");
  }
#undef DARM_BINOP
}

template <typename Lanes>
void SimEngine::Scratch::executeMemory(Warp &W, const DecodedInst &DI,
                                       uint64_t Mask, Lanes Ln) {
  (void)Mask;
  const bool IsLoad = DI.Op == Opcode::Load;
  const bool Shared = DI.Flags & DecodedInst::kShared;
  const unsigned Size = DI.ElemSize;
  const OpRow Ptr = row(W, IsLoad ? DI.A : DI.B);

  // Gather active addresses for the contention model. A warp is at most
  // 64 lanes, so a stack buffer beats a heap vector in the hot loop.
  uint64_t AddrBuf[64];
  unsigned NA = 0;
  Ln.each([&](unsigned L) { AddrBuf[NA++] = Ptr.get(L); });

  if (Shared) {
    ++LaunchStats.SharedMemInsts;
    // Bank conflicts: lanes hitting distinct addresses in one bank
    // serialize; same-address lanes broadcast. Degree = max distinct
    // addresses within a bank. The common case — every lane in its own
    // bank — is detected with one pass over a bank bitmask; only actual
    // bank reuse (conflict or broadcast) pays for the sort.
    unsigned Degree = 1;
    bool BankReused = Cfg->NumLdsBanks > 64;
    if (!BankReused) {
      uint64_t Seen = 0;
      for (unsigned I = 0; I < NA; ++I) {
        const uint64_t Bit = 1ull << bankOf(AddrBuf[I]);
        if (Seen & Bit) {
          BankReused = true;
          break;
        }
        Seen |= Bit;
      }
    }
    if (BankReused) {
      // Exact degree via one sort of (bank, addr) pairs.
      BankPairs.clear();
      for (unsigned I = 0; I < NA; ++I)
        BankPairs.push_back({bankOf(AddrBuf[I]), AddrBuf[I]});
      std::sort(BankPairs.begin(), BankPairs.end());
      unsigned Run = 0;
      for (size_t I = 0; I < BankPairs.size(); ++I) {
        if (I > 0 && BankPairs[I].first != BankPairs[I - 1].first)
          Run = 0;
        if (I == 0 || BankPairs[I] != BankPairs[I - 1])
          ++Run;
        Degree = std::max(Degree, Run);
      }
    }
    const uint64_t Penalty =
        static_cast<uint64_t>(Degree - 1) * CostModel::BankConflictPenalty;
    W.Cycles += CostModel::SharedMemLatency + Penalty;
  } else {
    ++LaunchStats.VectorMemInsts;
    // Coalescing: each additional 128-byte segment costs a transaction.
    // Lane-monotonic addresses (the overwhelmingly common access shape)
    // keep equal segments adjacent, so distinct segments are just the
    // transitions of one linear scan; only unsorted gathers pay for the
    // sort + unique.
    unsigned NumSeg = 1;
    bool Sorted = true;
    for (unsigned I = 1; I < NA; ++I) {
      if (AddrBuf[I] < AddrBuf[I - 1]) {
        Sorted = false;
        break;
      }
      NumSeg += segmentOf(AddrBuf[I]) != segmentOf(AddrBuf[I - 1]);
    }
    if (!Sorted) {
      Segments.clear();
      for (unsigned I = 0; I < NA; ++I)
        Segments.push_back(segmentOf(AddrBuf[I]));
      std::sort(Segments.begin(), Segments.end());
      NumSeg = static_cast<unsigned>(std::max<size_t>(
          1, std::unique(Segments.begin(), Segments.end()) -
                 Segments.begin()));
    }
    const uint64_t Penalty =
        static_cast<uint64_t>(NumSeg - 1) * CostModel::GlobalSegmentPenalty;
    W.Cycles += CostModel::GlobalMemLatency + Penalty;
  }

  // Data movement: reuse the gathered addresses (AddrBuf is in lane
  // order for both policies) and hoist the space dispatch out of the
  // per-lane loops. The LDS accesses are inlined here — bounds math
  // against a hoisted size, overflow-proof (Addr > size catches the
  // wrap) — because one call per lane per memory op was a measurable
  // slice of the fig8 profile.
  if (IsLoad) {
    uint64_t *Dest = destRow(W, DI);
    const NormKind Norm = DI.Norm;
    if (Shared) {
      const uint8_t *L8 = Lds.data();
      const size_t LSize = Lds.size();
      // The element size is hoisted out of the lane loop as a compile-
      // time constant for the common widths, so the per-lane memcpy
      // folds to a plain move instead of a libc call per lane.
      auto LoadLds = [&](auto Sz) {
        const unsigned S = Sz;
        unsigned I = 0;
        Ln.each([&](unsigned L) {
          const uint64_t A = AddrBuf[I++];
          uint64_t V = 0;
          if (!(A > LSize || S > LSize - A)) // else speculated OOB -> 0
            std::memcpy(&V, L8 + A, S);
          Dest[L] = applyNorm(Norm, V);
        });
      };
      if (Size == 4)
        LoadLds(std::integral_constant<unsigned, 4>{});
      else if (Size == 8)
        LoadLds(std::integral_constant<unsigned, 8>{});
      else
        LoadLds(Size);
    } else {
      unsigned I = 0;
      Ln.each([&](unsigned L) {
        Dest[L] = applyNorm(Norm, Mem->load(AddrBuf[I++], Size));
      });
    }
  } else {
    const OpRow Val = row(W, DI.A);
    if (Shared) {
      uint8_t *L8 = Lds.data();
      const size_t LSize = Lds.size();
      auto StoreLds = [&](auto Sz) {
        const unsigned S = Sz;
        unsigned I = 0;
        Ln.each([&](unsigned L) {
          const uint64_t A = AddrBuf[I++];
          if (A > LSize || S > LSize - A)
            reportFatalError("simulated kernel stored out of LDS bounds");
          const uint64_t V = Val.get(L);
          std::memcpy(L8 + A, &V, S);
        });
      };
      if (Size == 4)
        StoreLds(std::integral_constant<unsigned, 4>{});
      else if (Size == 8)
        StoreLds(std::integral_constant<unsigned, 8>{});
      else
        StoreLds(Size);
    } else {
      unsigned I = 0;
      Ln.each(
          [&](unsigned L) { Mem->store(AddrBuf[I++], Size, Val.get(L)); });
    }
  }
}

//===----------------------------------------------------------------------===//
// SimEngine
//===----------------------------------------------------------------------===//

SimEngine::SimEngine(Function &Kernel, const GpuConfig &Config)
    : Cfg(Config), S(std::make_unique<Scratch>()) {
  initScratch();
  Prog = decodeProgram(Kernel);
  initProgramScratch();
}

SimEngine::SimEngine(DecodedProgram Program, const GpuConfig &Config)
    : Prog(std::move(Program)), Cfg(Config), S(std::make_unique<Scratch>()) {
  initScratch();
  initProgramScratch();
}

void SimEngine::initScratch() {
  Cfg.validate();
  // Shift/mask forms of the contention-model divisors (see Scratch).
  if (std::has_single_bit(uint64_t{Cfg.CoalesceSegmentBytes})) {
    S->SegPow2 = true;
    S->SegShift = std::countr_zero(uint64_t{Cfg.CoalesceSegmentBytes});
  }
  if (std::has_single_bit(uint64_t{Cfg.LdsBankWidthBytes}) &&
      std::has_single_bit(uint64_t{Cfg.NumLdsBanks})) {
    S->BankPow2 = true;
    S->BankShift = std::countr_zero(uint64_t{Cfg.LdsBankWidthBytes});
    S->BankIdxMask = Cfg.NumLdsBanks - 1;
  }
  if (std::has_single_bit(uint64_t{Cfg.WarpSize})) {
    S->WarpPow2 = true;
    S->LaneIdxMask = Cfg.WarpSize - 1;
  }
  // Resolve the trace dispatch mode once: the request (Cfg.Dispatch)
  // against what this build compiled in. Threaded when available unless
  // Switch is forced; a Threaded request without the feature macro falls
  // back to the (always compiled) switch executor.
  S->UseThreaded =
      DARM_SIM_HAS_THREADED != 0 && Cfg.Dispatch != SimDispatch::Switch;
}

void SimEngine::initProgramScratch() {
  S->Staging.resize(static_cast<size_t>(Prog.MaxEdgePhis) * Cfg.WarpSize);
  S->BankPairs.reserve(Cfg.WarpSize);
  S->Segments.reserve(Cfg.WarpSize);
}

SimEngine::~SimEngine() = default;

const EngineStats &SimEngine::engineStats() const { return S->EStats; }

const char *SimEngine::dispatchMode() const {
  return S->UseThreaded ? "threaded" : "switch";
}

SimStats SimEngine::run(const LaunchParams &LP,
                        const std::vector<uint64_t> &Args, GlobalMemory &Mem) {
  S->Prog = &Prog;
  S->Cfg = &Cfg;
  S->LP = &LP;
  S->Args = &Args;
  S->Mem = &Mem;
  S->LaunchStats = SimStats();
  S->EStats = EngineStats();
  for (unsigned B = 0; B < LP.GridDimX; ++B)
    S->LaunchStats.Cycles += S->runBlock(B);
  return S->LaunchStats;
}

SimStats darm::runKernel(Function &Kernel, const LaunchParams &LP,
                         const std::vector<uint64_t> &Args, GlobalMemory &Mem,
                         const GpuConfig &Cfg) {
  SimEngine Engine(Kernel, Cfg);
  return Engine.run(LP, Args, Mem);
}
