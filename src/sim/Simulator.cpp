//===- Simulator.cpp - SIMT warp simulator (execute phase) ------------------------===//
//
// The execute phase over DecodedProgram (see Decode.cpp for the decode
// phase). Per-warp state is flat: one contiguous structure-of-arrays
// register file of NumRegisters x WarpSize uint64s (row r, lane l at
// Regs[r * WarpSize + l]), recycled across blocks and launches through a
// free pool. Lane loops iterate only the set bits of the active mask
// (std::countr_zero), and phi parallel-copies stage through one
// preallocated buffer instead of per-edge vector<vector> allocations.
//
// The observable behaviour — SimStats counters, cycle accounting, and all
// memory effects — is bit-identical to the original tree-walking
// interpreter; tests/sim_golden_test.cpp pins that equivalence against
// recorded goldens for every kernel in src/kernels/.
//
//===----------------------------------------------------------------------===//

#include "darm/sim/Simulator.h"

#include "darm/analysis/CostModel.h"
#include "darm/ir/Function.h"
#include "darm/support/ErrorHandling.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

using namespace darm;

namespace {

float asFloat(uint64_t Bits) {
  return std::bit_cast<float>(static_cast<uint32_t>(Bits));
}
uint64_t fromFloat(float F) {
  return static_cast<uint64_t>(std::bit_cast<uint32_t>(F));
}

/// Canonical register form on write (decode resolved the kind from the
/// destination type).
uint64_t applyNorm(NormKind K, uint64_t Raw) {
  switch (K) {
  case NormKind::I1:
    return Raw & 1;
  case NormKind::I32:
    return static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int32_t>(Raw)));
  case NormKind::F32:
    return Raw & 0xffffffffull;
  case NormKind::None:
    break;
  }
  return Raw;
}

/// Calls \p Fn(lane) for every set bit of \p Mask, low to high.
template <typename Fn> void forLanes(uint64_t Mask, Fn &&F) {
  while (Mask) {
    F(static_cast<unsigned>(std::countr_zero(Mask)));
    Mask &= Mask - 1;
  }
}

uint64_t fullMask(unsigned Lanes) {
  return Lanes >= 64 ? ~0ull : ((1ull << Lanes) - 1);
}

enum class WarpStatus { Finished, AtBarrier };

} // namespace

/// All mutable execution state, pooled so repeated run() calls allocate
/// nothing in steady state.
struct SimEngine::Scratch {
  struct StackEntry {
    uint32_t PC;   ///< current block, kNoBlock once lanes exited
    uint32_t RPC;  ///< reconvergence block; kNoBlock = function exit
    uint64_t Mask; ///< lanes executing this entry
  };

  struct Warp {
    unsigned Index = 0;
    std::vector<StackEntry> Stack;
    uint32_t ResumeIdx = 0; ///< instruction index into the top entry's block
    uint64_t Cycles = 0;
    uint64_t DynInstrs = 0;
    bool Done = false;
    std::vector<uint64_t> Regs; ///< SoA register file, NumRegisters x WarpSize
  };

  /// One operand resolved to either a register row or a broadcast
  /// immediate; get(lane) is the per-lane read.
  struct OpRow {
    const uint64_t *Row;
    uint64_t Imm;
    uint64_t get(unsigned L) const { return Row ? Row[L] : Imm; }
  };

  // Launch context (set by SimEngine::run).
  const DecodedProgram *Prog = nullptr;
  const GpuConfig *Cfg = nullptr;
  const LaunchParams *LP = nullptr;
  const std::vector<uint64_t> *Args = nullptr;
  GlobalMemory *Mem = nullptr;
  SimStats LaunchStats;
  unsigned BlockIdx = 0;

  // Pooled state.
  std::vector<Warp> Warps;
  std::vector<std::vector<uint64_t>> RegisterPool;
  std::vector<uint8_t> Lds;
  std::vector<uint64_t> Staging; ///< MaxEdgePhis x WarpSize phi staging
  std::vector<uint64_t> Addrs;   ///< active-lane addresses (contention model)
  std::vector<std::pair<uint64_t, uint64_t>> BankPairs; ///< (bank, addr)
  std::vector<uint64_t> Segments;

  OpRow row(const Warp &W, OperandSlot Slot) const {
    if (Slot & kImmediateBit)
      return {nullptr, Prog->Immediates[Slot & ~kImmediateBit]};
    return {W.Regs.data() + static_cast<size_t>(Slot) * Cfg->WarpSize, 0};
  }

  uint64_t *destRow(Warp &W, const DecodedInst &DI) {
    assert(DI.Dest != kNoRegister && "instruction has no destination");
    return W.Regs.data() + static_cast<size_t>(DI.Dest) * Cfg->WarpSize;
  }

  void acquireRegisters(Warp &W) {
    if (!RegisterPool.empty()) {
      W.Regs = std::move(RegisterPool.back());
      RegisterPool.pop_back();
    }
    // assign() zero-fills while reusing the pooled allocation.
    W.Regs.assign(static_cast<size_t>(Prog->NumRegisters) * Cfg->WarpSize, 0);
  }
  void releaseRegisters(Warp &W) { RegisterPool.push_back(std::move(W.Regs)); }

  uint64_t runBlock(unsigned Block);
  WarpStatus runWarp(Warp &W);
  void runEdgeCopies(Warp &W, PhiCopyRange R, uint64_t Mask);
  void execute(Warp &W, const DecodedInst &DI, uint64_t Mask);
  void executeMemory(Warp &W, const DecodedInst &DI, uint64_t Mask);
  uint64_t memLoad(bool Shared, uint64_t Addr, unsigned Size) const;
  void memStore(bool Shared, uint64_t Addr, unsigned Size, uint64_t V);
};

uint64_t SimEngine::Scratch::runBlock(unsigned Block) {
  BlockIdx = Block;
  const unsigned WS = Cfg->WarpSize;
  const unsigned NumThreads = LP->BlockDimX;
  const unsigned NumWarps = (NumThreads + WS - 1) / WS;

  Lds.assign(Prog->SharedMemoryBytes, 0);
  Warps.resize(NumWarps);
  for (unsigned WI = 0; WI < NumWarps; ++WI) {
    Warp &W = Warps[WI];
    W.Index = WI;
    W.Stack.clear();
    const unsigned Lanes = std::min(WS, NumThreads - WI * WS);
    W.Stack.push_back({Prog->EntryBlock, kNoBlock, fullMask(Lanes)});
    W.ResumeIdx = 0;
    W.Cycles = 0;
    W.DynInstrs = 0;
    W.Done = false;
    acquireRegisters(W);
    // Broadcast launch arguments and LDS base offsets to every lane (raw
    // 64-bit payloads, exactly as the host supplied them).
    for (size_t A = 0; A < Prog->ArgRegisters.size(); ++A)
      std::fill_n(W.Regs.data() +
                      static_cast<size_t>(Prog->ArgRegisters[A]) * WS,
                  WS, Args->at(A));
    for (const auto &[Reg, Offset] : Prog->SharedArrayInit)
      std::fill_n(W.Regs.data() + static_cast<size_t>(Reg) * WS, WS, Offset);
  }

  uint64_t BlockCycles = 0;
  while (true) {
    uint64_t PhaseMax = 0;
    bool AllDone = true;
    for (Warp &W : Warps) {
      if (W.Done)
        continue;
      const uint64_t Before = W.Cycles;
      WarpStatus St = runWarp(W);
      PhaseMax = std::max(PhaseMax, W.Cycles - Before);
      if (St == WarpStatus::Finished) {
        W.Done = true;
        LaunchStats.TotalWarpCycles += W.Cycles;
      } else {
        AllDone = false;
      }
    }
    BlockCycles += PhaseMax;
    if (AllDone)
      break;
  }
  for (Warp &W : Warps)
    releaseRegisters(W);
  return BlockCycles;
}

void SimEngine::Scratch::runEdgeCopies(Warp &W, PhiCopyRange R,
                                       uint64_t Mask) {
  if (R.empty())
    return;
  // Parallel-copy semantics: read all sources before any write.
  const PhiCopy *Copies = Prog->PhiCopies.data();
  const unsigned WS = Cfg->WarpSize;
  uint64_t *Stage = Staging.data();
  for (uint32_t C = R.Begin; C != R.End; ++C, Stage += WS) {
    const OpRow Src = row(W, Copies[C].Src);
    forLanes(Mask, [&](unsigned L) { Stage[L] = Src.get(L); });
  }
  Stage = Staging.data();
  for (uint32_t C = R.Begin; C != R.End; ++C, Stage += WS) {
    uint64_t *Dest =
        W.Regs.data() + static_cast<size_t>(Copies[C].Dest) * WS;
    const NormKind Norm = Copies[C].Norm;
    forLanes(Mask, [&](unsigned L) { Dest[L] = applyNorm(Norm, Stage[L]); });
  }
}

WarpStatus SimEngine::Scratch::runWarp(Warp &W) {
  const DecodedInst *Insts = Prog->Insts.data();
  while (true) {
    if (W.Stack.empty())
      return WarpStatus::Finished;
    StackEntry &Top = W.Stack.back();
    if (Top.PC == kNoBlock || Top.PC == Top.RPC) {
      // Lanes reached the reconvergence point (or exited): merge back.
      W.Stack.pop_back();
      W.ResumeIdx = 0;
      continue;
    }

    const DecodedBlock &DB = Prog->Blocks[Top.PC];
    const uint64_t Mask = Top.Mask;
    const uint32_t Last = DB.NumInsts - 1; // terminator
    for (uint32_t Idx = W.ResumeIdx; Idx < DB.NumInsts; ++Idx) {
      const DecodedInst &DI = Insts[DB.FirstInst + Idx];
      if (++W.DynInstrs > Cfg->MaxDynamicInstrPerWarp)
        reportFatalError("simulated warp exceeded the dynamic "
                         "instruction budget (runaway loop?)");

      if (DI.Op == Opcode::Call &&
          DI.SubOp == static_cast<uint8_t>(Intrinsic::Barrier)) {
        W.Cycles += DI.Latency;
        ++LaunchStats.InstructionsIssued;
        W.ResumeIdx = Idx + 1;
        return WarpStatus::AtBarrier;
      }

      if (Idx == Last) {
        ++LaunchStats.InstructionsIssued;
        ++LaunchStats.BranchesExecuted;
        W.Cycles += DI.Latency;
        W.ResumeIdx = 0;
        if (DI.Op == Opcode::Ret) {
          W.Stack.pop_back();
        } else if (DI.Op == Opcode::Br) {
          runEdgeCopies(W, DB.Edge[0], Mask);
          Top.PC = DB.Succ[0];
        } else {
          const OpRow Cond = row(W, DI.A);
          uint64_t MT = 0;
          forLanes(Mask, [&](unsigned L) {
            if (Cond.get(L) & 1)
              MT |= 1ull << L;
          });
          const uint64_t MF = Mask & ~MT;
          if (MF == 0) {
            runEdgeCopies(W, DB.Edge[0], Mask);
            Top.PC = DB.Succ[0];
          } else if (MT == 0) {
            runEdgeCopies(W, DB.Edge[1], Mask);
            Top.PC = DB.Succ[1];
          } else {
            // Divergence: reconverge at the IPDOM, serialize both paths.
            ++LaunchStats.DivergentBranches;
            const uint32_t SuccT = DB.Succ[0], SuccF = DB.Succ[1];
            const uint32_t R = DB.Reconverge;
            Top.PC = R; // this entry becomes the reconvergence entry
            runEdgeCopies(W, DB.Edge[1], MF);
            W.Stack.push_back({SuccF, R, MF}); // invalidates Top
            runEdgeCopies(W, DB.Edge[0], MT);
            W.Stack.push_back({SuccT, R, MT});
          }
        }
        break;
      }

      execute(W, DI, Mask);
    }
  }
}

void SimEngine::Scratch::execute(Warp &W, const DecodedInst &DI,
                                 uint64_t Mask) {
  ++LaunchStats.InstructionsIssued;

  if (DI.Op == Opcode::Load || DI.Op == Opcode::Store) {
    executeMemory(W, DI, Mask);
    return;
  }

  // Everything else is a VALU-class instruction.
  ++LaunchStats.AluInsts;
  LaunchStats.AluLanesActive += std::popcount(Mask);
  LaunchStats.AluLanesTotal += Cfg->WarpSize;
  W.Cycles += DI.Latency;

  uint64_t *Dest = destRow(W, DI);
  const bool Is32 = DI.Flags & DecodedInst::kIs32;
  const unsigned ShiftMask = Is32 ? 31 : 63;

// Binary scalar op: evaluates EXPR with RA/RB bound per active lane.
#define DARM_BINOP(OPC, EXPR)                                                  \
  case Opcode::OPC: {                                                          \
    const OpRow A = row(W, DI.A), B = row(W, DI.B);                            \
    forLanes(Mask, [&](unsigned L) {                                           \
      const uint64_t RA = A.get(L), RB = B.get(L);                             \
      (void)RA;                                                                \
      (void)RB;                                                                \
      Dest[L] = applyNorm(DI.Norm, static_cast<uint64_t>(EXPR));               \
    });                                                                        \
    break;                                                                     \
  }

  switch (DI.Op) {
    // Two's-complement add/sub/mul are bitwise identical for signed and
    // unsigned; unsigned avoids signed-overflow UB.
    DARM_BINOP(Add, RA + RB)
    DARM_BINOP(Sub, RA - RB)
    DARM_BINOP(Mul, RA *RB)
    // Division by zero is defined to yield 0 in this IR (Instruction.h);
    // INT_MIN / -1 is defined as negation to avoid hardware UB.
    DARM_BINOP(SDiv, [&] {
      const int64_t SA = static_cast<int64_t>(RA);
      const int64_t SB = static_cast<int64_t>(RB);
      if (SB == 0)
        return uint64_t{0};
      if (SB == -1)
        return uint64_t{0} - RA;
      return static_cast<uint64_t>(SA / SB);
    }())
    DARM_BINOP(SRem, [&] {
      const int64_t SA = static_cast<int64_t>(RA);
      const int64_t SB = static_cast<int64_t>(RB);
      if (SB == 0 || SB == -1)
        return uint64_t{0};
      return static_cast<uint64_t>(SA % SB);
    }())
    DARM_BINOP(UDiv, [&] {
      const uint64_t UA = Is32 ? static_cast<uint32_t>(RA) : RA;
      const uint64_t UB = Is32 ? static_cast<uint32_t>(RB) : RB;
      return UB == 0 ? 0 : UA / UB;
    }())
    DARM_BINOP(URem, [&] {
      const uint64_t UA = Is32 ? static_cast<uint32_t>(RA) : RA;
      const uint64_t UB = Is32 ? static_cast<uint32_t>(RB) : RB;
      return UB == 0 ? 0 : UA % UB;
    }())
    DARM_BINOP(And, RA &RB)
    DARM_BINOP(Or, RA | RB)
    DARM_BINOP(Xor, RA ^ RB)
    DARM_BINOP(Shl, RA << (RB & ShiftMask))
    DARM_BINOP(LShr, (Is32 ? static_cast<uint32_t>(RA) : RA)
                         >> (RB & ShiftMask))
    DARM_BINOP(AShr, (Is32 ? static_cast<int64_t>(static_cast<int32_t>(RA))
                           : static_cast<int64_t>(RA))
                         >> (RB & ShiftMask))
    DARM_BINOP(FAdd, fromFloat(asFloat(RA) + asFloat(RB)))
    DARM_BINOP(FSub, fromFloat(asFloat(RA) - asFloat(RB)))
    DARM_BINOP(FMul, fromFloat(asFloat(RA) * asFloat(RB)))
    DARM_BINOP(FDiv, fromFloat(asFloat(RA) / asFloat(RB)))

  case Opcode::ICmp: {
    const OpRow A = row(W, DI.A), B = row(W, DI.B);
    const auto Pred = static_cast<ICmpPred>(DI.SubOp);
    forLanes(Mask, [&](unsigned L) {
      const uint64_t RA = A.get(L), RB = B.get(L);
      const int64_t SA = static_cast<int64_t>(RA);
      const int64_t SB = static_cast<int64_t>(RB);
      const uint64_t UA = Is32 ? static_cast<uint32_t>(RA) : RA;
      const uint64_t UB = Is32 ? static_cast<uint32_t>(RB) : RB;
      uint64_t R = 0;
      switch (Pred) {
      case ICmpPred::EQ:
        R = RA == RB;
        break;
      case ICmpPred::NE:
        R = RA != RB;
        break;
      case ICmpPred::SLT:
        R = SA < SB;
        break;
      case ICmpPred::SLE:
        R = SA <= SB;
        break;
      case ICmpPred::SGT:
        R = SA > SB;
        break;
      case ICmpPred::SGE:
        R = SA >= SB;
        break;
      case ICmpPred::ULT:
        R = UA < UB;
        break;
      case ICmpPred::ULE:
        R = UA <= UB;
        break;
      case ICmpPred::UGT:
        R = UA > UB;
        break;
      case ICmpPred::UGE:
        R = UA >= UB;
        break;
      }
      Dest[L] = R; // i1 result, already canonical
    });
    break;
  }
  case Opcode::FCmp: {
    const OpRow A = row(W, DI.A), B = row(W, DI.B);
    const auto Pred = static_cast<FCmpPred>(DI.SubOp);
    forLanes(Mask, [&](unsigned L) {
      const float FA = asFloat(A.get(L)), FB = asFloat(B.get(L));
      uint64_t R = 0;
      switch (Pred) {
      case FCmpPred::OEQ:
        R = FA == FB;
        break;
      case FCmpPred::ONE:
        R = FA != FB;
        break;
      case FCmpPred::OLT:
        R = FA < FB;
        break;
      case FCmpPred::OLE:
        R = FA <= FB;
        break;
      case FCmpPred::OGT:
        R = FA > FB;
        break;
      case FCmpPred::OGE:
        R = FA >= FB;
        break;
      }
      Dest[L] = R;
    });
    break;
  }
  case Opcode::Select: {
    const OpRow C = row(W, DI.A), T = row(W, DI.B), F = row(W, DI.C);
    forLanes(Mask, [&](unsigned L) {
      Dest[L] = applyNorm(DI.Norm, (C.get(L) & 1) ? T.get(L) : F.get(L));
    });
    break;
  }
  case Opcode::Gep: {
    const OpRow Base = row(W, DI.A), Index = row(W, DI.B);
    const int64_t Elem = DI.ElemSize;
    forLanes(Mask, [&](unsigned L) {
      const int64_t Idx = static_cast<int64_t>(Index.get(L));
      Dest[L] = Base.get(L) + static_cast<uint64_t>(Idx * Elem);
    });
    break;
  }
  case Opcode::ZExt: {
    const OpRow Src = row(W, DI.A);
    const uint8_t F = DI.Flags;
    forLanes(Mask, [&](unsigned L) {
      const uint64_t V = Src.get(L);
      const uint64_t R = (F & DecodedInst::kSrcIsI1)    ? (V & 1)
                         : (F & DecodedInst::kSrcIsI32) ? static_cast<uint32_t>(V)
                                                        : V;
      Dest[L] = applyNorm(DI.Norm, R);
    });
    break;
  }
  case Opcode::SExt: {
    const OpRow Src = row(W, DI.A);
    const bool FromI1 = DI.Flags & DecodedInst::kSrcIsI1;
    forLanes(Mask, [&](unsigned L) {
      const uint64_t V = Src.get(L);
      // i32 registers are stored sign-extended already.
      const uint64_t R = FromI1 ? ((V & 1) ? ~0ull : 0) : V;
      Dest[L] = applyNorm(DI.Norm, R);
    });
    break;
  }
  case Opcode::Trunc: {
    const OpRow Src = row(W, DI.A);
    forLanes(Mask, [&](unsigned L) {
      Dest[L] = applyNorm(DI.Norm, Src.get(L)); // norm truncates on write
    });
    break;
  }
  case Opcode::SIToFP: {
    const OpRow Src = row(W, DI.A);
    forLanes(Mask, [&](unsigned L) {
      Dest[L] = applyNorm(DI.Norm, fromFloat(static_cast<float>(
                                       static_cast<int64_t>(Src.get(L)))));
    });
    break;
  }
  case Opcode::FPToSI: {
    // Like division by zero, fptosi is total in this IR (Instruction.h):
    // NaN yields 0 and out-of-range values saturate to the destination's
    // limits. A plain C++ cast would be undefined for those inputs, and
    // predication may feed fptosi any bit pattern.
    const OpRow Src = row(W, DI.A);
    const bool To32 = DI.Norm == NormKind::I32;
    const float Lo = To32 ? -2147483648.0f : -9223372036854775808.0f;
    const float Hi = To32 ? 2147483648.0f : 9223372036854775808.0f;
    const int64_t Min = To32 ? INT32_MIN : INT64_MIN;
    const int64_t Max = To32 ? INT32_MAX : INT64_MAX;
    forLanes(Mask, [&](unsigned L) {
      const float F = asFloat(Src.get(L));
      int64_t R;
      if (std::isnan(F))
        R = 0;
      else if (F < Lo)
        R = Min;
      else if (F >= Hi)
        R = Max;
      else
        R = static_cast<int64_t>(F);
      Dest[L] = applyNorm(DI.Norm, static_cast<uint64_t>(R));
    });
    break;
  }
  case Opcode::Call: {
    const unsigned WS = Cfg->WarpSize;
    switch (static_cast<Intrinsic>(DI.SubOp)) {
    case Intrinsic::TidX:
      forLanes(Mask, [&](unsigned L) {
        Dest[L] = applyNorm(DI.Norm, W.Index * WS + L);
      });
      break;
    case Intrinsic::NTidX:
      forLanes(Mask, [&](unsigned L) {
        Dest[L] = applyNorm(DI.Norm, LP->BlockDimX);
      });
      break;
    case Intrinsic::CTAidX:
      forLanes(Mask, [&](unsigned L) {
        Dest[L] = applyNorm(DI.Norm, BlockIdx);
      });
      break;
    case Intrinsic::NCTAidX:
      forLanes(Mask, [&](unsigned L) {
        Dest[L] = applyNorm(DI.Norm, LP->GridDimX);
      });
      break;
    case Intrinsic::LaneId:
      forLanes(Mask, [&](unsigned L) { Dest[L] = applyNorm(DI.Norm, L); });
      break;
    case Intrinsic::ShflSync: {
      const OpRow Val = row(W, DI.A), Lane = row(W, DI.B);
      forLanes(Mask, [&](unsigned L) {
        const unsigned Src = static_cast<unsigned>(Lane.get(L)) % WS;
        Dest[L] = applyNorm(DI.Norm, Val.get(Src));
      });
      break;
    }
    case Intrinsic::Barrier:
      darm_unreachable("barrier handled in runWarp");
    }
    break;
  }
  default:
    darm_unreachable("unhandled opcode in execute");
  }
#undef DARM_BINOP
}

uint64_t SimEngine::Scratch::memLoad(bool Shared, uint64_t Addr,
                                     unsigned Size) const {
  if (!Shared)
    return Mem->load(Addr, Size);
  if (Addr + Size > Lds.size())
    return 0; // speculated OOB load (see Memory.h)
  uint64_t V = 0;
  std::memcpy(&V, Lds.data() + Addr, Size);
  return V;
}

void SimEngine::Scratch::memStore(bool Shared, uint64_t Addr, unsigned Size,
                                  uint64_t V) {
  if (!Shared) {
    Mem->store(Addr, Size, V);
    return;
  }
  if (Addr + Size > Lds.size())
    reportFatalError("simulated kernel stored out of LDS bounds");
  std::memcpy(Lds.data() + Addr, &V, Size);
}

void SimEngine::Scratch::executeMemory(Warp &W, const DecodedInst &DI,
                                       uint64_t Mask) {
  const bool IsLoad = DI.Op == Opcode::Load;
  const bool Shared = DI.Flags & DecodedInst::kShared;
  const unsigned Size = DI.ElemSize;
  const OpRow Ptr = row(W, IsLoad ? DI.A : DI.B);

  // Gather active addresses for the contention model.
  Addrs.clear();
  forLanes(Mask, [&](unsigned L) { Addrs.push_back(Ptr.get(L)); });

  if (Shared) {
    ++LaunchStats.SharedMemInsts;
    // Bank conflicts: lanes hitting distinct addresses in one bank
    // serialize; same-address lanes broadcast. Degree = max distinct
    // addresses within a bank, via one sort of (bank, addr) pairs.
    BankPairs.clear();
    for (uint64_t A : Addrs)
      BankPairs.push_back(
          {(A / Cfg->LdsBankWidthBytes) % Cfg->NumLdsBanks, A});
    std::sort(BankPairs.begin(), BankPairs.end());
    unsigned Degree = 1;
    unsigned Run = 0;
    for (size_t I = 0; I < BankPairs.size(); ++I) {
      if (I > 0 && BankPairs[I].first != BankPairs[I - 1].first)
        Run = 0;
      if (I == 0 || BankPairs[I] != BankPairs[I - 1])
        ++Run;
      Degree = std::max(Degree, Run);
    }
    const uint64_t Penalty =
        static_cast<uint64_t>(Degree - 1) * CostModel::BankConflictPenalty;
    W.Cycles += CostModel::SharedMemLatency + Penalty;
  } else {
    ++LaunchStats.VectorMemInsts;
    // Coalescing: each additional 128-byte segment costs a transaction.
    Segments.clear();
    for (uint64_t A : Addrs)
      Segments.push_back(A / Cfg->CoalesceSegmentBytes);
    std::sort(Segments.begin(), Segments.end());
    const unsigned NumSeg = std::max<size_t>(
        1, std::unique(Segments.begin(), Segments.end()) - Segments.begin());
    const uint64_t Penalty =
        static_cast<uint64_t>(NumSeg - 1) * CostModel::GlobalSegmentPenalty;
    W.Cycles += CostModel::GlobalMemLatency + Penalty;
  }

  if (IsLoad) {
    uint64_t *Dest = destRow(W, DI);
    forLanes(Mask, [&](unsigned L) {
      Dest[L] = applyNorm(DI.Norm, memLoad(Shared, Ptr.get(L), Size));
    });
  } else {
    const OpRow Val = row(W, DI.A);
    forLanes(Mask, [&](unsigned L) {
      memStore(Shared, Ptr.get(L), Size, Val.get(L));
    });
  }
}

//===----------------------------------------------------------------------===//
// SimEngine
//===----------------------------------------------------------------------===//

SimEngine::SimEngine(Function &Kernel, const GpuConfig &Config)
    : Cfg(Config), S(std::make_unique<Scratch>()) {
  Cfg.validate();
  Prog = decodeProgram(Kernel);
  S->Staging.resize(static_cast<size_t>(Prog.MaxEdgePhis) * Cfg.WarpSize);
  S->Addrs.reserve(Cfg.WarpSize);
  S->BankPairs.reserve(Cfg.WarpSize);
  S->Segments.reserve(Cfg.WarpSize);
}

SimEngine::~SimEngine() = default;

SimStats SimEngine::run(const LaunchParams &LP,
                        const std::vector<uint64_t> &Args, GlobalMemory &Mem) {
  S->Prog = &Prog;
  S->Cfg = &Cfg;
  S->LP = &LP;
  S->Args = &Args;
  S->Mem = &Mem;
  S->LaunchStats = SimStats();
  for (unsigned B = 0; B < LP.GridDimX; ++B)
    S->LaunchStats.Cycles += S->runBlock(B);
  return S->LaunchStats;
}

SimStats darm::runKernel(Function &Kernel, const LaunchParams &LP,
                         const std::vector<uint64_t> &Args, GlobalMemory &Mem,
                         const GpuConfig &Cfg) {
  SimEngine Engine(Kernel, Cfg);
  return Engine.run(LP, Args, Mem);
}
