//===- Simulator.cpp - SIMT warp simulator --------------------------------------===//

#include "darm/sim/Simulator.h"

#include "darm/analysis/CostModel.h"
#include "darm/analysis/DominatorTree.h"
#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/Module.h"
#include "darm/support/ErrorHandling.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <set>
#include <unordered_map>

using namespace darm;

namespace {

/// Canonical register form: i1 as 0/1, i32 sign-extended to 64 bits, f32
/// as its bit pattern in the low 32 bits, pointers as byte addresses.
uint64_t normalize(const Type *Ty, uint64_t Raw) {
  switch (Ty->getKind()) {
  case Type::Kind::Int1:
    return Raw & 1;
  case Type::Kind::Int32:
    return static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int32_t>(Raw)));
  case Type::Kind::Float:
    return Raw & 0xffffffffull;
  default:
    return Raw;
  }
}

float asFloat(uint64_t Bits) {
  return std::bit_cast<float>(static_cast<uint32_t>(Bits));
}
uint64_t fromFloat(float F) {
  return static_cast<uint64_t>(std::bit_cast<uint32_t>(F));
}

/// One reconvergence-stack entry.
struct StackEntry {
  BasicBlock *PC;
  uint64_t Mask;
  BasicBlock *RPC; // reconvergence block; null = function exit
};

enum class WarpStatus { Finished, AtBarrier };

class BlockExecutor {
public:
  BlockExecutor(Function &F, const LaunchParams &LP,
                const std::vector<uint64_t> &Args, GlobalMemory &Mem,
                const GpuConfig &Cfg, unsigned BlockIdx, SimStats &Stats)
      : F(F), LP(LP), Mem(Mem), Cfg(Cfg), BlockIdx(BlockIdx), Stats(Stats),
        PDT(F), Lds(F.getSharedMemoryBytes(), 0) {
    numberValues(Args);
  }

  /// Runs all warps of the block phase-by-phase; returns the block's
  /// cycle count (max over warps within each barrier phase, summed).
  uint64_t run();

private:
  struct Warp {
    unsigned Index = 0;
    std::vector<StackEntry> Stack;
    unsigned ResumeIdx = 0; // instruction index into the top entry's block
    uint64_t Cycles = 0;
    uint64_t DynInstrs = 0;
    bool Done = false;
    std::vector<std::vector<uint64_t>> Regs; // [valueId][lane]
  };

  void numberValues(const std::vector<uint64_t> &Args);
  unsigned idOf(const Value *V) const {
    auto It = ValueIds.find(V);
    assert(It != ValueIds.end() && "value not numbered");
    return It->second;
  }

  uint64_t eval(Warp &W, const Value *V, unsigned Lane) const {
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return normalize(CI->getType(), static_cast<uint64_t>(CI->getValue()));
    if (const auto *CF = dyn_cast<ConstantFloat>(V))
      return fromFloat(CF->getValue());
    if (isa<UndefValue>(V))
      return 0;
    return W.Regs[idOf(V)][Lane];
  }

  void write(Warp &W, const Value *V, unsigned Lane, uint64_t Bits) {
    W.Regs[idOf(V)][Lane] = normalize(V->getType(), Bits);
  }

  void evalEdgePhis(Warp &W, BasicBlock *From, BasicBlock *To,
                    uint64_t Mask);
  WarpStatus runWarp(Warp &W);
  void execute(Warp &W, const Instruction *I, uint64_t Mask);
  uint64_t evalScalarOp(const Instruction *I, uint64_t A, uint64_t B) const;
  void executeMemory(Warp &W, const Instruction *I, uint64_t Mask);
  uint64_t memLoad(AddressSpace AS, uint64_t Addr, unsigned Size) const;
  void memStore(Warp &W, AddressSpace AS, uint64_t Addr, unsigned Size,
                uint64_t V);

  Function &F;
  const LaunchParams &LP;
  GlobalMemory &Mem;
  const GpuConfig &Cfg;
  unsigned BlockIdx;
  SimStats &Stats;
  PostDominatorTree PDT;
  std::vector<uint8_t> Lds;
  std::unordered_map<const Value *, unsigned> ValueIds;
  unsigned NumValues = 0;
  std::vector<std::pair<const Value *, uint64_t>> BroadcastInit;
  Warp *Cur = nullptr; // for intrinsics needing lane identity
};

void BlockExecutor::numberValues(const std::vector<uint64_t> &Args) {
  auto Number = [&](const Value *V) { ValueIds[V] = NumValues++; };
  for (unsigned I = 0; I < F.getNumArgs(); ++I) {
    Number(F.getArg(I));
    BroadcastInit.push_back({F.getArg(I), Args.at(I)});
  }
  uint64_t LdsOffset = 0;
  for (const auto &S : F.sharedArrays()) {
    Number(S.get());
    LdsOffset = (LdsOffset + 15) & ~15ull;
    BroadcastInit.push_back({S.get(), LdsOffset});
    LdsOffset += S->getSizeInBytes();
  }
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      if (!I->getType()->isVoid())
        Number(I);
}

uint64_t BlockExecutor::run() {
  unsigned NumThreads = LP.BlockDimX;
  unsigned NumWarps = (NumThreads + Cfg.WarpSize - 1) / Cfg.WarpSize;
  std::vector<Warp> Warps(NumWarps);
  for (unsigned W = 0; W < NumWarps; ++W) {
    Warps[W].Index = W;
    unsigned Lanes = std::min(Cfg.WarpSize, NumThreads - W * Cfg.WarpSize);
    uint64_t Mask = (Lanes == 64) ? ~0ull : ((1ull << Lanes) - 1);
    Warps[W].Stack.push_back({&F.getEntryBlock(), Mask, nullptr});
    Warps[W].Regs.assign(NumValues,
                         std::vector<uint64_t>(Cfg.WarpSize, 0));
    for (const auto &[V, Bits] : BroadcastInit)
      for (unsigned L = 0; L < Cfg.WarpSize; ++L)
        Warps[W].Regs[idOf(V)][L] = Bits;
  }

  uint64_t BlockCycles = 0;
  while (true) {
    uint64_t PhaseMax = 0;
    bool AllDone = true;
    for (Warp &W : Warps) {
      if (W.Done)
        continue;
      uint64_t Before = W.Cycles;
      Cur = &W;
      WarpStatus S = runWarp(W);
      Cur = nullptr;
      PhaseMax = std::max(PhaseMax, W.Cycles - Before);
      if (S == WarpStatus::Finished) {
        W.Done = true;
        Stats.TotalWarpCycles += W.Cycles;
      } else {
        AllDone = false;
      }
    }
    BlockCycles += PhaseMax;
    if (AllDone)
      break;
  }
  return BlockCycles;
}

void BlockExecutor::evalEdgePhis(Warp &W, BasicBlock *From, BasicBlock *To,
                                 uint64_t Mask) {
  std::vector<PhiInst *> Phis = To->phis();
  if (Phis.empty())
    return;
  // Parallel-copy semantics: read all sources before any write.
  std::vector<std::vector<uint64_t>> Staged(Phis.size());
  for (size_t P = 0; P < Phis.size(); ++P) {
    Value *In = Phis[P]->getIncomingValueForBlock(From);
    Staged[P].resize(Cfg.WarpSize, 0);
    for (unsigned L = 0; L < Cfg.WarpSize; ++L)
      if (Mask & (1ull << L))
        Staged[P][L] = eval(W, In, L);
  }
  for (size_t P = 0; P < Phis.size(); ++P)
    for (unsigned L = 0; L < Cfg.WarpSize; ++L)
      if (Mask & (1ull << L))
        write(W, Phis[P], L, Staged[P][L]);
}

WarpStatus BlockExecutor::runWarp(Warp &W) {
  while (true) {
    if (W.Stack.empty())
      return WarpStatus::Finished;
    StackEntry &Top = W.Stack.back();
    if (!Top.PC || Top.PC == Top.RPC) {
      // Lanes reached the reconvergence point (or exited): merge back.
      W.Stack.pop_back();
      W.ResumeIdx = 0;
      continue;
    }

    BasicBlock *BB = Top.PC;
    uint64_t Mask = Top.Mask;
    unsigned Idx = 0;
    bool Transferred = false;
    for (Instruction *I : *BB) {
      if (Idx++ < W.ResumeIdx)
        continue;
      if (I->isPhi())
        continue; // evaluated at edge time
      if (++W.DynInstrs > Cfg.MaxDynamicInstrPerWarp)
        reportFatalError("simulated warp exceeded the dynamic "
                         "instruction budget (runaway loop?)");

      if (const auto *C = dyn_cast<CallInst>(I);
          C && C->getIntrinsic() == Intrinsic::Barrier) {
        W.Cycles += CostModel::getLatency(I);
        ++Stats.InstructionsIssued;
        W.ResumeIdx = Idx;
        return WarpStatus::AtBarrier;
      }

      if (I->isTerminator()) {
        ++Stats.InstructionsIssued;
        ++Stats.BranchesExecuted;
        W.Cycles += CostModel::getLatency(I);
        W.ResumeIdx = 0;
        if (isa<RetInst>(I)) {
          W.Stack.pop_back();
          Transferred = true;
          break;
        }
        if (const auto *Br = dyn_cast<BrInst>(I)) {
          evalEdgePhis(W, BB, Br->getTarget(), Mask);
          Top.PC = Br->getTarget();
          Transferred = true;
          break;
        }
        const auto *CB = cast<CondBrInst>(I);
        uint64_t MT = 0, MF = 0;
        for (unsigned L = 0; L < Cfg.WarpSize; ++L) {
          if (!(Mask & (1ull << L)))
            continue;
          if (eval(W, CB->getCondition(), L) & 1)
            MT |= 1ull << L;
          else
            MF |= 1ull << L;
        }
        BasicBlock *TBB = CB->getTrueSuccessor();
        BasicBlock *FBB = CB->getFalseSuccessor();
        if (MF == 0) {
          evalEdgePhis(W, BB, TBB, Mask);
          Top.PC = TBB;
        } else if (MT == 0) {
          evalEdgePhis(W, BB, FBB, Mask);
          Top.PC = FBB;
        } else {
          // Divergence: reconverge at the IPDOM, serialize both paths.
          ++Stats.DivergentBranches;
          BasicBlock *R = PDT.isReachable(BB) ? PDT.getIDom(BB) : nullptr;
          Top.PC = R; // this entry becomes the reconvergence entry
          evalEdgePhis(W, BB, FBB, MF);
          W.Stack.push_back({FBB, MF, R});
          evalEdgePhis(W, BB, TBB, MT);
          W.Stack.push_back({TBB, MT, R});
        }
        Transferred = true;
        break;
      }

      execute(W, I, Mask);
    }
    if (!Transferred) {
      // Block without terminator cannot occur in verified IR.
      darm_unreachable("block fell through without a terminator");
    }
  }
}

uint64_t BlockExecutor::evalScalarOp(const Instruction *I, uint64_t A,
                                     uint64_t B) const {
  const Type *Ty = I->getType();
  bool Is32 = I->getOpcode() >= Opcode::Add &&
              I->getOpcode() <= Opcode::AShr &&
              Ty->getKind() == Type::Kind::Int32;
  int64_t SA = static_cast<int64_t>(A), SB = static_cast<int64_t>(B);
  uint64_t UA = Is32 ? static_cast<uint32_t>(A) : A;
  uint64_t UB = Is32 ? static_cast<uint32_t>(B) : B;
  unsigned ShiftMask = Is32 ? 31 : 63;

  switch (I->getOpcode()) {
  case Opcode::Add:
    return static_cast<uint64_t>(SA + SB);
  case Opcode::Sub:
    return static_cast<uint64_t>(SA - SB);
  case Opcode::Mul:
    return static_cast<uint64_t>(SA * SB);
  case Opcode::SDiv:
    // Division by zero is defined to yield 0 in this IR (Instruction.h).
    if (SB == 0)
      return 0;
    if (SB == -1)
      return static_cast<uint64_t>(-SA); // avoid INT_MIN/-1 UB
    return static_cast<uint64_t>(SA / SB);
  case Opcode::SRem:
    if (SB == 0 || SB == -1)
      return 0;
    return static_cast<uint64_t>(SA % SB);
  case Opcode::UDiv:
    return UB == 0 ? 0 : UA / UB;
  case Opcode::URem:
    return UB == 0 ? 0 : UA % UB;
  case Opcode::And:
    return A & B;
  case Opcode::Or:
    return A | B;
  case Opcode::Xor:
    return A ^ B;
  case Opcode::Shl:
    return A << (B & ShiftMask);
  case Opcode::LShr:
    return UA >> (B & ShiftMask);
  case Opcode::AShr:
    return static_cast<uint64_t>(
        (Is32 ? static_cast<int64_t>(static_cast<int32_t>(A)) : SA) >>
        (B & ShiftMask));
  case Opcode::FAdd:
    return fromFloat(asFloat(A) + asFloat(B));
  case Opcode::FSub:
    return fromFloat(asFloat(A) - asFloat(B));
  case Opcode::FMul:
    return fromFloat(asFloat(A) * asFloat(B));
  case Opcode::FDiv:
    return fromFloat(asFloat(A) / asFloat(B));
  default:
    darm_unreachable("not a scalar binary op");
  }
}

void BlockExecutor::execute(Warp &W, const Instruction *I, uint64_t Mask) {
  unsigned Active = std::popcount(Mask);
  ++Stats.InstructionsIssued;

  if (I->getOpcode() == Opcode::Load || I->getOpcode() == Opcode::Store) {
    executeMemory(W, I, Mask);
    return;
  }

  // Everything else is a VALU-class instruction.
  ++Stats.AluInsts;
  Stats.AluLanesActive += Active;
  Stats.AluLanesTotal += Cfg.WarpSize;
  W.Cycles += CostModel::getLatency(I);

  for (unsigned L = 0; L < Cfg.WarpSize; ++L) {
    if (!(Mask & (1ull << L)))
      continue;
    uint64_t R = 0;
    switch (I->getOpcode()) {
    case Opcode::ICmp: {
      const auto *C = cast<ICmpInst>(I);
      uint64_t A = eval(W, C->getLHS(), L), B = eval(W, C->getRHS(), L);
      int64_t SA = static_cast<int64_t>(A), SB = static_cast<int64_t>(B);
      bool Is32 = C->getLHS()->getType()->isInt32();
      uint64_t UA = Is32 ? static_cast<uint32_t>(A) : A;
      uint64_t UB = Is32 ? static_cast<uint32_t>(B) : B;
      switch (C->getPredicate()) {
      case ICmpPred::EQ:
        R = A == B;
        break;
      case ICmpPred::NE:
        R = A != B;
        break;
      case ICmpPred::SLT:
        R = SA < SB;
        break;
      case ICmpPred::SLE:
        R = SA <= SB;
        break;
      case ICmpPred::SGT:
        R = SA > SB;
        break;
      case ICmpPred::SGE:
        R = SA >= SB;
        break;
      case ICmpPred::ULT:
        R = UA < UB;
        break;
      case ICmpPred::ULE:
        R = UA <= UB;
        break;
      case ICmpPred::UGT:
        R = UA > UB;
        break;
      case ICmpPred::UGE:
        R = UA >= UB;
        break;
      }
      break;
    }
    case Opcode::FCmp: {
      const auto *C = cast<FCmpInst>(I);
      float A = asFloat(eval(W, C->getLHS(), L));
      float B = asFloat(eval(W, C->getRHS(), L));
      switch (C->getPredicate()) {
      case FCmpPred::OEQ:
        R = A == B;
        break;
      case FCmpPred::ONE:
        R = A != B;
        break;
      case FCmpPred::OLT:
        R = A < B;
        break;
      case FCmpPred::OLE:
        R = A <= B;
        break;
      case FCmpPred::OGT:
        R = A > B;
        break;
      case FCmpPred::OGE:
        R = A >= B;
        break;
      }
      break;
    }
    case Opcode::Select: {
      const auto *S = cast<SelectInst>(I);
      R = (eval(W, S->getCondition(), L) & 1)
              ? eval(W, S->getTrueValue(), L)
              : eval(W, S->getFalseValue(), L);
      break;
    }
    case Opcode::Gep: {
      const auto *G = cast<GepInst>(I);
      uint64_t Base = eval(W, G->getPointer(), L);
      int64_t Index = static_cast<int64_t>(eval(W, G->getIndex(), L));
      unsigned Elem =
          G->getType()->getPointee()->getStoreSizeInBytes();
      R = Base + static_cast<uint64_t>(Index * static_cast<int64_t>(Elem));
      break;
    }
    case Opcode::ZExt: {
      const auto *C = cast<CastInst>(I);
      uint64_t V = eval(W, C->getSource(), L);
      Type *Src = C->getSource()->getType();
      R = Src->isInt1() ? (V & 1)
                        : (Src->isInt32() ? static_cast<uint32_t>(V) : V);
      break;
    }
    case Opcode::SExt: {
      const auto *C = cast<CastInst>(I);
      uint64_t V = eval(W, C->getSource(), L);
      Type *Src = C->getSource()->getType();
      if (Src->isInt1())
        R = (V & 1) ? ~0ull : 0;
      else
        R = V; // i32 is stored sign-extended already
      break;
    }
    case Opcode::Trunc:
      R = eval(W, cast<CastInst>(I)->getSource(), L);
      break; // normalize() truncates on write
    case Opcode::SIToFP:
      R = fromFloat(static_cast<float>(static_cast<int64_t>(
          eval(W, cast<CastInst>(I)->getSource(), L))));
      break;
    case Opcode::FPToSI:
      R = static_cast<uint64_t>(static_cast<int64_t>(
          asFloat(eval(W, cast<CastInst>(I)->getSource(), L))));
      break;
    case Opcode::Call: {
      const auto *C = cast<CallInst>(I);
      switch (C->getIntrinsic()) {
      case Intrinsic::TidX:
        R = W.Index * Cfg.WarpSize + L;
        break;
      case Intrinsic::NTidX:
        R = LP.BlockDimX;
        break;
      case Intrinsic::CTAidX:
        R = BlockIdx;
        break;
      case Intrinsic::NCTAidX:
        R = LP.GridDimX;
        break;
      case Intrinsic::LaneId:
        R = L;
        break;
      case Intrinsic::ShflSync: {
        unsigned Src = static_cast<unsigned>(eval(W, C->getOperand(1), L)) %
                       Cfg.WarpSize;
        R = eval(W, C->getOperand(0), Src);
        break;
      }
      case Intrinsic::Barrier:
        darm_unreachable("barrier handled in runWarp");
      }
      break;
    }
    default:
      R = evalScalarOp(I, eval(W, I->getOperand(0), L),
                       eval(W, I->getOperand(1), L));
      break;
    }
    write(W, I, L, R);
  }
}

uint64_t BlockExecutor::memLoad(AddressSpace AS, uint64_t Addr,
                                unsigned Size) const {
  if (AS == AddressSpace::Global)
    return Mem.load(Addr, Size);
  if (Addr + Size > Lds.size())
    return 0; // speculated OOB load (see Memory.h)
  uint64_t V = 0;
  std::memcpy(&V, Lds.data() + Addr, Size);
  return V;
}

void BlockExecutor::memStore(Warp &W, AddressSpace AS, uint64_t Addr,
                             unsigned Size, uint64_t V) {
  (void)W;
  if (AS == AddressSpace::Global) {
    Mem.store(Addr, Size, V);
    return;
  }
  if (Addr + Size > Lds.size())
    reportFatalError("simulated kernel stored out of LDS bounds");
  std::memcpy(Lds.data() + Addr, &V, Size);
}

void BlockExecutor::executeMemory(Warp &W, const Instruction *I,
                                  uint64_t Mask) {
  bool IsLoad = I->getOpcode() == Opcode::Load;
  Value *PtrOp = IsLoad ? cast<LoadInst>(I)->getPointer()
                        : cast<StoreInst>(I)->getPointer();
  AddressSpace AS = PtrOp->getType()->getAddressSpace();
  unsigned Size = PtrOp->getType()->getPointee()->getStoreSizeInBytes();

  // Gather active addresses for the contention model.
  std::vector<uint64_t> Addrs;
  for (unsigned L = 0; L < Cfg.WarpSize; ++L)
    if (Mask & (1ull << L))
      Addrs.push_back(eval(W, PtrOp, L));

  uint64_t Penalty = 0;
  if (AS == AddressSpace::Shared) {
    ++Stats.SharedMemInsts;
    // Bank conflicts: lanes hitting distinct addresses in one bank
    // serialize; same-address lanes broadcast.
    std::unordered_map<unsigned, std::set<uint64_t>> Banks;
    for (uint64_t A : Addrs)
      Banks[(A / Cfg.LdsBankWidthBytes) % Cfg.NumLdsBanks].insert(A);
    unsigned Degree = 1;
    for (const auto &[Bank, AddrSet] : Banks)
      Degree = std::max(Degree, static_cast<unsigned>(AddrSet.size()));
    Penalty = static_cast<uint64_t>(Degree - 1) *
              CostModel::BankConflictPenalty;
    W.Cycles += CostModel::SharedMemLatency + Penalty;
  } else {
    ++Stats.VectorMemInsts;
    // Coalescing: each additional 128-byte segment costs a transaction.
    std::set<uint64_t> Segments;
    for (uint64_t A : Addrs)
      Segments.insert(A / Cfg.CoalesceSegmentBytes);
    unsigned NumSeg = std::max<size_t>(1, Segments.size());
    Penalty = static_cast<uint64_t>(NumSeg - 1) *
              CostModel::GlobalSegmentPenalty;
    W.Cycles += CostModel::GlobalMemLatency + Penalty;
  }

  for (unsigned L = 0; L < Cfg.WarpSize; ++L) {
    if (!(Mask & (1ull << L)))
      continue;
    uint64_t Addr = eval(W, PtrOp, L);
    if (IsLoad) {
      write(W, I, L, memLoad(AS, Addr, Size));
    } else {
      uint64_t V = eval(W, cast<StoreInst>(I)->getValueOperand(), L);
      memStore(W, AS, Addr, Size, V);
    }
  }
}

} // namespace

SimStats darm::runKernel(Function &Kernel, const LaunchParams &LP,
                         const std::vector<uint64_t> &Args, GlobalMemory &Mem,
                         const GpuConfig &Cfg) {
  assert(Cfg.WarpSize <= 64 && "mask is 64 bits wide");
  SimStats Stats;
  for (unsigned B = 0; B < LP.GridDimX; ++B) {
    BlockExecutor Exec(Kernel, LP, Args, Mem, Cfg, B, Stats);
    Stats.Cycles += Exec.run();
  }
  return Stats;
}
