//===- Memory.cpp - Simulated device memory -------------------------------------===//

#include "darm/sim/Memory.h"

#include "darm/support/ErrorHandling.h"

#include <bit>
#include <cstring>

using namespace darm;

uint64_t GlobalMemory::allocate(uint64_t Size, const std::string &Name) {
  (void)Name;
  // 256-byte alignment so buffers start segment-aligned.
  uint64_t Base = (Bytes.size() + 255) & ~255ull;
  Bytes.resize(Base + Size, 0);
  return Base;
}

void GlobalMemory::reportStoreOutOfBounds() const {
  reportFatalError("simulated kernel stored out of bounds");
}

float GlobalMemory::readF32(uint64_t Addr) const {
  return std::bit_cast<float>(static_cast<uint32_t>(load(Addr, 4)));
}

void GlobalMemory::writeF32(uint64_t Addr, float V) {
  store(Addr, 4, std::bit_cast<uint32_t>(V));
}

void GlobalMemory::fillI32(uint64_t Base, const std::vector<int32_t> &Data) {
  for (size_t I = 0; I < Data.size(); ++I)
    writeI32(Base + I * 4, Data[I]);
}

std::vector<int32_t> GlobalMemory::dumpI32(uint64_t Base,
                                           size_t Count) const {
  std::vector<int32_t> Result(Count);
  for (size_t I = 0; I < Count; ++I)
    Result[I] = readI32(Base + I * 4);
  return Result;
}

void GlobalMemory::fillF32(uint64_t Base, const std::vector<float> &Data) {
  for (size_t I = 0; I < Data.size(); ++I)
    writeF32(Base + I * 4, Data[I]);
}

std::vector<float> GlobalMemory::dumpF32(uint64_t Base, size_t Count) const {
  std::vector<float> Result(Count);
  for (size_t I = 0; I < Count; ++I)
    Result[I] = readF32(Base + I * 4);
  return Result;
}
