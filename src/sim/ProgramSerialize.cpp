//===- ProgramSerialize.cpp - DecodedProgram byte image -----------------------===//
//
// Field-wise little-endian encoding of a DecodedProgram, the
// decode-skipping half of a CompiledModule artifact (docs/caching.md).
// Every field is written through ByteWriter's explicit byte composition;
// the structs are never memcpy'd, so an image written by any build
// decodes on any other. A cache hit that goes through these bytes must
// behave bit-identically to a fresh decodeProgram() — pinned by
// tests/serialize_test.cpp comparing the two field-for-field.
//
//===----------------------------------------------------------------------===//

#include "darm/sim/DecodedProgram.h"
#include "darm/support/BinaryStream.h"

using namespace darm;

namespace {

// "DRMP" — DARM program image.
constexpr uint8_t kMagic[4] = {'D', 'R', 'M', 'P'};

// Element-count sanity bound: a corrupt count must not turn into a
// multi-gigabyte resize before the sticky-fail reader notices.
constexpr uint64_t kMaxElems = 1ull << 28;

void writeInst(ByteWriter &W, const DecodedInst &I) {
  W.writeU8(static_cast<uint8_t>(I.Op));
  W.writeU8(I.SubOp);
  W.writeU8(static_cast<uint8_t>(I.Norm));
  W.writeU8(I.Flags);
  W.writeU16(I.Latency);
  W.writeU16(I.ElemSize);
  W.writeU32(I.Dest);
  W.writeU32(I.A);
  W.writeU32(I.B);
  W.writeU32(I.C);
}

bool readInst(ByteReader &R, DecodedInst &I) {
  uint8_t Op = R.readU8();
  if (Op >= static_cast<uint8_t>(Opcode::NumOpcodes))
    return false;
  I.Op = static_cast<Opcode>(Op);
  I.SubOp = R.readU8();
  uint8_t Norm = R.readU8();
  if (Norm > static_cast<uint8_t>(NormKind::F32))
    return false;
  I.Norm = static_cast<NormKind>(Norm);
  I.Flags = R.readU8();
  I.Latency = R.readU16();
  I.ElemSize = R.readU16();
  I.Dest = R.readU32();
  I.A = R.readU32();
  I.B = R.readU32();
  I.C = R.readU32();
  return !R.failed();
}

template <typename T, typename Fn>
void writeVec(ByteWriter &W, const std::vector<T> &V, Fn WriteElem) {
  W.writeVar(V.size());
  for (const T &E : V)
    WriteElem(E);
}

template <typename T, typename Fn>
bool readVec(ByteReader &R, std::vector<T> &V, Fn ReadElem) {
  uint64_t N = R.readVar();
  if (R.failed() || N > kMaxElems)
    return false;
  V.clear();
  V.reserve(N);
  for (uint64_t I = 0; I < N; ++I) {
    T E{};
    if (!ReadElem(E))
      return false;
    V.push_back(E);
  }
  return !R.failed();
}

} // namespace

std::vector<uint8_t> darm::serializeDecodedProgram(const DecodedProgram &P) {
  ByteWriter W;
  for (uint8_t B : kMagic)
    W.writeU8(B);
  W.writeU16(kProgramFormatVersion);
  W.writeU16(0); // reserved

  W.writeU32(P.NumRegisters);
  W.writeU32(P.EntryBlock);
  W.writeU32(P.MaxEdgePhis);
  W.writeU32(P.SharedMemoryBytes);

  writeVec(W, P.Insts, [&](const DecodedInst &I) { writeInst(W, I); });
  writeVec(W, P.InstTokens, [&](uint8_t T) { W.writeU8(T); });
  writeVec(W, P.Blocks, [&](const DecodedBlock &B) {
    W.writeU32(B.FirstInst);
    W.writeU32(B.NumInsts);
    W.writeU32(B.Succ[0]);
    W.writeU32(B.Succ[1]);
    for (const PhiCopyRange &E : B.Edge) {
      W.writeU32(E.Begin);
      W.writeU32(E.End);
    }
    W.writeU32(B.Reconverge);
    W.writeU8(B.UniformSafe);
    W.writeU8(B.HasBarrier);
    W.writeU32(B.NumAluInsts);
    W.writeU32(B.StaticLatency);
    W.writeU32(B.TraceId);
  });
  writeVec(W, P.Traces, [&](const DecodedTrace &T) {
    W.writeU32(T.FirstOp);
    W.writeU32(T.NumOps);
    W.writeU32(T.PrefixOps);
    W.writeU32(T.LastBlock);
    W.writeU32(T.NumBlocks);
    W.writeU32(T.DynInsts);
    W.writeU32(T.NumAluInsts);
    W.writeU32(T.StaticLatency);
  });
  writeVec(W, P.TraceOps, [&](const DecodedInst &I) { writeInst(W, I); });
  writeVec(W, P.TraceTokens, [&](uint8_t T) { W.writeU8(T); });
  writeVec(W, P.PhiCopies, [&](const PhiCopy &C) {
    W.writeU32(C.Dest);
    W.writeU32(C.Src);
    W.writeU8(static_cast<uint8_t>(C.Norm));
  });
  writeVec(W, P.Immediates, [&](uint64_t V) { W.writeU64(V); });
  writeVec(W, P.ArgRegisters, [&](uint32_t V) { W.writeU32(V); });
  writeVec(W, P.SharedArrayInit, [&](const std::pair<uint32_t, uint64_t> &S) {
    W.writeU32(S.first);
    W.writeU64(S.second);
  });
  writeVec(W, P.CrossLaneRegisters, [&](uint32_t V) { W.writeU32(V); });
  return W.take();
}

bool darm::deserializeDecodedProgram(const uint8_t *Data, size_t Size,
                                     DecodedProgram &P) {
  ByteReader R(Data, Size);
  for (uint8_t Expect : kMagic)
    if (R.readU8() != Expect)
      return false;
  if (R.readU16() != kProgramFormatVersion)
    return false;
  R.readU16(); // reserved

  P = DecodedProgram();
  P.NumRegisters = R.readU32();
  P.EntryBlock = R.readU32();
  P.MaxEdgePhis = R.readU32();
  P.SharedMemoryBytes = R.readU32();

  bool Ok =
      readVec(R, P.Insts, [&](DecodedInst &I) { return readInst(R, I); }) &&
      readVec(R, P.InstTokens,
              [&](uint8_t &T) {
                T = R.readU8();
                return T < kNumTraceToks;
              }) &&
      readVec(R, P.Blocks,
              [&](DecodedBlock &B) {
                B.FirstInst = R.readU32();
                B.NumInsts = R.readU32();
                B.Succ[0] = R.readU32();
                B.Succ[1] = R.readU32();
                for (PhiCopyRange &E : B.Edge) {
                  E.Begin = R.readU32();
                  E.End = R.readU32();
                }
                B.Reconverge = R.readU32();
                B.UniformSafe = R.readU8();
                B.HasBarrier = R.readU8();
                B.NumAluInsts = R.readU32();
                B.StaticLatency = R.readU32();
                B.TraceId = R.readU32();
                return !R.failed();
              }) &&
      readVec(R, P.Traces,
              [&](DecodedTrace &T) {
                T.FirstOp = R.readU32();
                T.NumOps = R.readU32();
                T.PrefixOps = R.readU32();
                T.LastBlock = R.readU32();
                T.NumBlocks = R.readU32();
                T.DynInsts = R.readU32();
                T.NumAluInsts = R.readU32();
                T.StaticLatency = R.readU32();
                return !R.failed();
              }) &&
      readVec(R, P.TraceOps,
              [&](DecodedInst &I) { return readInst(R, I); }) &&
      readVec(R, P.TraceTokens,
              [&](uint8_t &T) {
                T = R.readU8();
                return T < kNumTraceToks;
              }) &&
      readVec(R, P.PhiCopies,
              [&](PhiCopy &C) {
                C.Dest = R.readU32();
                C.Src = R.readU32();
                uint8_t Norm = R.readU8();
                if (Norm > static_cast<uint8_t>(NormKind::F32))
                  return false;
                C.Norm = static_cast<NormKind>(Norm);
                return !R.failed();
              }) &&
      readVec(R, P.Immediates,
              [&](uint64_t &V) {
                V = R.readU64();
                return true;
              }) &&
      readVec(R, P.ArgRegisters,
              [&](uint32_t &V) {
                V = R.readU32();
                return true;
              }) &&
      readVec(R, P.SharedArrayInit,
              [&](std::pair<uint32_t, uint64_t> &S) {
                S.first = R.readU32();
                S.second = R.readU64();
                return true;
              }) &&
      readVec(R, P.CrossLaneRegisters, [&](uint32_t &V) {
        V = R.readU32();
        return true;
      });
  return Ok && !R.failed() && R.atEnd();
}
