//===- GpuConfig.cpp - Simulated GPU parameter validation -------------------------===//

#include "darm/sim/GpuConfig.h"

#include "darm/support/ErrorHandling.h"

#include <cstdio>

using namespace darm;

void GpuConfig::validate() const {
  if (WarpSize == 0 || WarpSize > 64) {
    std::fprintf(stderr,
                 "GpuConfig: WarpSize=%u is outside the supported range "
                 "(0, 64] — execution masks are 64 bits wide\n",
                 WarpSize);
    reportFatalError("invalid GpuConfig::WarpSize");
  }
  if (NumLdsBanks == 0 || LdsBankWidthBytes == 0)
    reportFatalError("GpuConfig: LDS bank geometry must be nonzero");
  if (CoalesceSegmentBytes == 0)
    reportFatalError("GpuConfig: CoalesceSegmentBytes must be nonzero");
  if (MaxDynamicInstrPerWarp == 0)
    reportFatalError("GpuConfig: MaxDynamicInstrPerWarp must be nonzero");
}

const char *SimStats::counterName(unsigned I) {
  static const char *const Names[NumCounters] = {
      "cycles",           "total_warp_cycles", "instructions_issued",
      "alu_insts",        "vector_mem_insts",  "shared_mem_insts",
      "branches_executed", "divergent_branches", "alu_lanes_active",
      "alu_lanes_total"};
  if (I >= NumCounters)
    reportFatalError("SimStats::counterName: index out of range");
  return Names[I];
}

uint64_t &SimStats::counter(unsigned I) {
  uint64_t *const Fields[NumCounters] = {
      &Cycles,           &TotalWarpCycles,   &InstructionsIssued,
      &AluInsts,         &VectorMemInsts,    &SharedMemInsts,
      &BranchesExecuted, &DivergentBranches, &AluLanesActive,
      &AluLanesTotal};
  if (I >= NumCounters)
    reportFatalError("SimStats::counter: index out of range");
  return *Fields[I];
}

uint64_t SimStats::counter(unsigned I) const {
  return const_cast<SimStats *>(this)->counter(I);
}
