//===- GpuConfig.cpp - Simulated GPU parameter validation -------------------------===//

#include "darm/sim/GpuConfig.h"

#include "darm/support/ErrorHandling.h"

#include <cstdio>

using namespace darm;

void GpuConfig::validate() const {
  if (WarpSize == 0 || WarpSize > 64) {
    std::fprintf(stderr,
                 "GpuConfig: WarpSize=%u is outside the supported range "
                 "(0, 64] — execution masks are 64 bits wide\n",
                 WarpSize);
    reportFatalError("invalid GpuConfig::WarpSize");
  }
  if (NumLdsBanks == 0 || LdsBankWidthBytes == 0)
    reportFatalError("GpuConfig: LDS bank geometry must be nonzero");
  if (CoalesceSegmentBytes == 0)
    reportFatalError("GpuConfig: CoalesceSegmentBytes must be nonzero");
  if (MaxDynamicInstrPerWarp == 0)
    reportFatalError("GpuConfig: MaxDynamicInstrPerWarp must be nonzero");
}
