//===- Decode.cpp - IR -> DecodedProgram flattening -------------------------------===//
//
// The decode phase of the simulator: runs once per kernel, never in the
// execute loop. Everything the old tree-walking interpreter recomputed per
// dynamic instruction — operand dispatch over the Value hierarchy, value-id
// hash lookups, CostModel latencies, phi incoming-value searches, and the
// post-dominator queries for reconvergence — is resolved here into the
// dense arrays of DecodedProgram.
//
//===----------------------------------------------------------------------===//

#include "darm/analysis/CostModel.h"
#include "darm/analysis/DivergenceAnalysis.h"
#include "darm/analysis/DominanceFrontier.h"
#include "darm/analysis/DominatorTree.h"
#include "darm/ir/Function.h"
#include "darm/sim/DecodedProgram.h"
#include "darm/support/ErrorHandling.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

using namespace darm;

namespace {

/// Canonical register form (see NormKind): i1 as 0/1, i32 sign-extended,
/// f32 as its bit pattern in the low 32 bits.
uint64_t normalizeImm(const Type *Ty, uint64_t Raw) {
  switch (Ty->getKind()) {
  case Type::Kind::Int1:
    return Raw & 1;
  case Type::Kind::Int32:
    return static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int32_t>(Raw)));
  case Type::Kind::Float:
    return Raw & 0xffffffffull;
  default:
    return Raw;
  }
}

NormKind normKindOf(const Type *Ty) {
  switch (Ty->getKind()) {
  case Type::Kind::Int1:
    return NormKind::I1;
  case Type::Kind::Int32:
    return NormKind::I32;
  case Type::Kind::Float:
    return NormKind::F32;
  default:
    return NormKind::None;
  }
}

class Decoder {
public:
  explicit Decoder(Function &F) : F(F) {}

  DecodedProgram decode();

private:
  uint32_t registerOf(const Value *V) const {
    auto It = RegisterIds.find(V);
    assert(It != RegisterIds.end() && "value not numbered");
    return It->second;
  }

  OperandSlot slotOf(const Value *V);
  uint32_t immediateSlot(uint64_t Bits);
  void numberValues();
  DecodedInst decodeInst(const Instruction *I);
  PhiCopyRange decodeEdgePhis(BasicBlock *From, BasicBlock *To);
  void formTraces();
  void pushTraceOp(const DecodedInst &DI);
  void emitEdgeMoves(PhiCopyRange R);

  Function &F;
  DecodedProgram P;
  std::unordered_map<const Value *, uint32_t> RegisterIds;
  std::unordered_map<uint64_t, uint32_t> ImmediateIds;
  std::unordered_map<const BasicBlock *, uint32_t> BlockIds;
};

/// Dispatch token for one trace op. Named tokens are taken only when the
/// decoded write norm matches what their SIMD lane loop bakes in (e.g.
/// Add32 applies exactly the i32 sign-extend norm); any unexpected
/// combination — and the whole long tail of divides, casts and
/// intrinsics — falls back to Generic, which replays the executor's full
/// scalar switch. Correctness therefore never depends on this mapping
/// being exhaustive, only on the named cases being exact.
TraceTok tokenOf(const DecodedInst &DI) {
  const bool Is32 = DI.Flags & DecodedInst::kIs32;
  const bool N32 = DI.Norm == NormKind::I32;
  const bool N64 = DI.Norm == NormKind::None;
  switch (DI.Op) {
  case Opcode::Phi:
    return TraceTok::Move;
  case Opcode::Load:
    return TraceTok::Load;
  case Opcode::Store:
    return TraceTok::Store;
#define DARM_BINOP_TOK(OPC)                                                    \
  case Opcode::OPC:                                                            \
    if (Is32 && N32)                                                           \
      return TraceTok::OPC##32;                                                \
    if (!Is32 && N64)                                                          \
      return TraceTok::OPC##64;                                                \
    return TraceTok::Generic;
    DARM_BINOP_TOK(Add)
    DARM_BINOP_TOK(Sub)
    DARM_BINOP_TOK(Mul)
    DARM_BINOP_TOK(And)
    DARM_BINOP_TOK(Or)
    DARM_BINOP_TOK(Xor)
    DARM_BINOP_TOK(Shl)
    DARM_BINOP_TOK(LShr)
    DARM_BINOP_TOK(AShr)
#undef DARM_BINOP_TOK
  // The division family is total in this IR (Instruction.h): division by
  // zero yields 0, INT_MIN/-1 negates. No trap means one token per op
  // regardless of width — the handler applies the decoded write norm.
  case Opcode::SDiv:
    return TraceTok::SDiv;
  case Opcode::SRem:
    return TraceTok::SRem;
  case Opcode::UDiv:
    return TraceTok::UDiv;
  case Opcode::URem:
    return TraceTok::URem;
  case Opcode::FAdd:
    return DI.Norm == NormKind::F32 ? TraceTok::FAdd : TraceTok::Generic;
  case Opcode::FSub:
    return DI.Norm == NormKind::F32 ? TraceTok::FSub : TraceTok::Generic;
  case Opcode::FMul:
    return DI.Norm == NormKind::F32 ? TraceTok::FMul : TraceTok::Generic;
  case Opcode::FDiv:
    return DI.Norm == NormKind::F32 ? TraceTok::FDiv : TraceTok::Generic;
  case Opcode::ICmp:
    // One token per predicate: the handler calls the exact SIMD compare
    // with no inner dispatch (the hottest ALU op on divergent kernels).
    switch (static_cast<ICmpPred>(DI.SubOp)) {
    case ICmpPred::EQ:
      return TraceTok::ICmpEq;
    case ICmpPred::NE:
      return TraceTok::ICmpNe;
    case ICmpPred::SLT:
      return TraceTok::ICmpSlt;
    case ICmpPred::SLE:
      return TraceTok::ICmpSle;
    case ICmpPred::SGT:
      return TraceTok::ICmpSgt;
    case ICmpPred::SGE:
      return TraceTok::ICmpSge;
    case ICmpPred::ULT:
      return TraceTok::ICmpUlt;
    case ICmpPred::ULE:
      return TraceTok::ICmpUle;
    case ICmpPred::UGT:
      return TraceTok::ICmpUgt;
    case ICmpPred::UGE:
      return TraceTok::ICmpUge;
    }
    return TraceTok::Generic;
  case Opcode::FCmp:
    switch (static_cast<FCmpPred>(DI.SubOp)) {
    case FCmpPred::OEQ:
      return TraceTok::FCmpOeq;
    case FCmpPred::ONE:
      return TraceTok::FCmpOne;
    case FCmpPred::OLT:
      return TraceTok::FCmpOlt;
    case FCmpPred::OLE:
      return TraceTok::FCmpOle;
    case FCmpPred::OGT:
      return TraceTok::FCmpOgt;
    case FCmpPred::OGE:
      return TraceTok::FCmpOge;
    }
    return TraceTok::Generic;
  case Opcode::Select:
    return TraceTok::Select;
  case Opcode::Gep:
    return N64 ? TraceTok::Gep : TraceTok::Generic;
  default:
    return TraceTok::Generic;
  }
}

void Decoder::numberValues() {
  auto Number = [&](const Value *V) { RegisterIds[V] = P.NumRegisters++; };
  for (unsigned I = 0; I < F.getNumArgs(); ++I) {
    Number(F.getArg(I));
    P.ArgRegisters.push_back(registerOf(F.getArg(I)));
  }
  uint64_t LdsOffset = 0;
  for (const auto &S : F.sharedArrays()) {
    Number(S.get());
    LdsOffset = (LdsOffset + 15) & ~15ull;
    P.SharedArrayInit.push_back({registerOf(S.get()), LdsOffset});
    LdsOffset += S->getSizeInBytes();
  }
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      if (!I->getType()->isVoid())
        Number(I);
}

uint32_t Decoder::immediateSlot(uint64_t Bits) {
  auto [It, Inserted] =
      ImmediateIds.try_emplace(Bits, static_cast<uint32_t>(P.Immediates.size()));
  if (Inserted)
    P.Immediates.push_back(Bits);
  return It->second | kImmediateBit;
}

OperandSlot Decoder::slotOf(const Value *V) {
  if (const auto *CI = dyn_cast<ConstantInt>(V))
    return immediateSlot(
        normalizeImm(CI->getType(), static_cast<uint64_t>(CI->getValue())));
  if (const auto *CF = dyn_cast<ConstantFloat>(V))
    return immediateSlot(
        static_cast<uint64_t>(std::bit_cast<uint32_t>(CF->getValue())));
  if (isa<UndefValue>(V))
    return immediateSlot(0);
  return registerOf(V);
}

DecodedInst Decoder::decodeInst(const Instruction *I) {
  DecodedInst D;
  D.Op = I->getOpcode();
  D.Latency = static_cast<uint16_t>(CostModel::getLatency(I));
  if (!I->getType()->isVoid()) {
    D.Dest = registerOf(I);
    D.Norm = normKindOf(I->getType());
  }

  switch (D.Op) {
  case Opcode::Br:
  case Opcode::Ret:
    break;
  case Opcode::CondBr:
    D.A = slotOf(cast<CondBrInst>(I)->getCondition());
    break;
  case Opcode::ICmp: {
    const auto *C = cast<ICmpInst>(I);
    D.SubOp = static_cast<uint8_t>(C->getPredicate());
    if (C->getLHS()->getType()->isInt32())
      D.Flags |= DecodedInst::kIs32;
    D.A = slotOf(C->getLHS());
    D.B = slotOf(C->getRHS());
    break;
  }
  case Opcode::FCmp: {
    const auto *C = cast<FCmpInst>(I);
    D.SubOp = static_cast<uint8_t>(C->getPredicate());
    D.A = slotOf(C->getLHS());
    D.B = slotOf(C->getRHS());
    break;
  }
  case Opcode::Select: {
    const auto *S = cast<SelectInst>(I);
    D.A = slotOf(S->getCondition());
    D.B = slotOf(S->getTrueValue());
    D.C = slotOf(S->getFalseValue());
    break;
  }
  case Opcode::Gep: {
    const auto *G = cast<GepInst>(I);
    D.A = slotOf(G->getPointer());
    D.B = slotOf(G->getIndex());
    D.ElemSize = static_cast<uint16_t>(
        G->getType()->getPointee()->getStoreSizeInBytes());
    break;
  }
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::Trunc:
  case Opcode::SIToFP:
  case Opcode::FPToSI: {
    const auto *C = cast<CastInst>(I);
    Type *Src = C->getSource()->getType();
    if (Src->isInt1())
      D.Flags |= DecodedInst::kSrcIsI1;
    else if (Src->isInt32())
      D.Flags |= DecodedInst::kSrcIsI32;
    D.A = slotOf(C->getSource());
    break;
  }
  case Opcode::Load: {
    const auto *L = cast<LoadInst>(I);
    if (L->getAddressSpace() == AddressSpace::Shared)
      D.Flags |= DecodedInst::kShared;
    D.ElemSize = static_cast<uint16_t>(
        L->getPointer()->getType()->getPointee()->getStoreSizeInBytes());
    D.A = slotOf(L->getPointer());
    break;
  }
  case Opcode::Store: {
    const auto *S = cast<StoreInst>(I);
    if (S->getAddressSpace() == AddressSpace::Shared)
      D.Flags |= DecodedInst::kShared;
    D.ElemSize = static_cast<uint16_t>(
        S->getPointer()->getType()->getPointee()->getStoreSizeInBytes());
    D.A = slotOf(S->getValueOperand());
    D.B = slotOf(S->getPointer());
    break;
  }
  case Opcode::Call: {
    const auto *C = cast<CallInst>(I);
    D.SubOp = static_cast<uint8_t>(C->getIntrinsic());
    if (C->getIntrinsic() == Intrinsic::ShflSync) {
      D.A = slotOf(C->getOperand(0));
      D.B = slotOf(C->getOperand(1));
      // The value row is read cross-lane: slots of lanes that never
      // executed the definition must read as 0 (see CrossLaneRegisters).
      if (!(D.A & kImmediateBit))
        P.CrossLaneRegisters.push_back(D.A);
    }
    break;
  }
  case Opcode::Phi:
    darm_unreachable("phis are decoded as edge copies");
  default:
    // Binary arithmetic / logic (Add .. FDiv).
    assert(I->isBinaryOp() && "unhandled opcode in decode");
    if (D.Op >= Opcode::Add && D.Op <= Opcode::AShr &&
        I->getType()->getKind() == Type::Kind::Int32)
      D.Flags |= DecodedInst::kIs32;
    D.A = slotOf(I->getOperand(0));
    D.B = slotOf(I->getOperand(1));
    break;
  }
  return D;
}

PhiCopyRange Decoder::decodeEdgePhis(BasicBlock *From, BasicBlock *To) {
  PhiCopyRange R;
  R.Begin = static_cast<uint32_t>(P.PhiCopies.size());
  for (Instruction *I : *To) {
    if (!I->isPhi())
      break;
    auto *Phi = cast<PhiInst>(I);
    P.PhiCopies.push_back({registerOf(Phi),
                           slotOf(Phi->getIncomingValueForBlock(From)),
                           normKindOf(Phi->getType())});
  }
  R.End = static_cast<uint32_t>(P.PhiCopies.size());
  P.MaxEdgePhis = std::max(P.MaxEdgePhis, R.End - R.Begin);
  return R;
}

void Decoder::pushTraceOp(const DecodedInst &DI) {
  P.TraceTokens.push_back(static_cast<uint8_t>(tokenOf(DI)));
  P.TraceOps.push_back(DI);
}

/// Sequentializes one edge's phi parallel copies into the current trace
/// as Move ops. A copy is emittable once no other pending copy still
/// reads its destination; pure cycles (swap patterns) are broken by
/// routing one source through a fresh scratch register. The scratch copy
/// is raw (NormKind::None) — staged parallel-copy reads are raw too, and
/// each redirected reader keeps its own norm on the final write, so the
/// sequence computes exactly what the staged executor computes.
/// Self-copies are dropped: a phi register is only ever written through
/// normalized copies, so re-normalizing it is a no-op.
void Decoder::emitEdgeMoves(PhiCopyRange R) {
  if (R.empty())
    return;
  struct Pending {
    uint32_t Dest;
    OperandSlot Src;
    NormKind Norm;
  };
  std::vector<Pending> Work;
  for (uint32_t I = R.Begin; I != R.End; ++I) {
    const PhiCopy &C = P.PhiCopies[I];
    if (C.Src == C.Dest) // immediates never compare equal: tag bit set
      continue;
    Work.push_back({C.Dest, C.Src, C.Norm});
  }
  auto ReadBy = [&](uint32_t Reg) {
    for (const Pending &W : Work)
      if (W.Src == Reg)
        return true;
    return false;
  };
  auto Emit = [&](uint32_t Dest, OperandSlot Src, NormKind Norm) {
    DecodedInst M;
    M.Op = Opcode::Phi; // never otherwise decoded; trace token Move
    M.Dest = Dest;
    M.A = Src;
    M.Norm = Norm;
    pushTraceOp(M);
  };
  while (!Work.empty()) {
    size_t Ready = Work.size();
    for (size_t J = 0; J < Work.size(); ++J) {
      if (!ReadBy(Work[J].Dest)) {
        Ready = J;
        break;
      }
    }
    if (Ready != Work.size()) {
      Emit(Work[Ready].Dest, Work[Ready].Src, Work[Ready].Norm);
      Work[Ready] = Work.back();
      Work.pop_back();
      continue;
    }
    // Every remaining destination is still read: the work list is a set
    // of cycles. Divert one source through a fresh scratch register (a
    // new register per break — a shared scratch could be clobbered by a
    // second cycle while readers of the first are still pending).
    const uint32_t Temp = P.NumRegisters++;
    const OperandSlot S = Work.front().Src;
    Emit(Temp, S, NormKind::None);
    for (Pending &W : Work)
      if (W.Src == S)
        W.Src = Temp;
  }
}

/// Superblock/trace formation (docs/performance.md): every eligible block
/// — UniformSafe and barrier-free — heads a trace that greedily chains
/// through unconditional branches into further eligible blocks, fusing
/// their bodies (and the interior edges' phi moves) into one flat op
/// stream with trace-wide batched accounting. The chain stops at a ret,
/// any conditional branch (even a uniform one: its direction is decided
/// at run time, possibly straight into another trace), an ineligible
/// successor, a block already in this trace (loop back-edge), or the
/// kMaxTraceBlocks duplication cap.
void Decoder::formTraces() {
  const uint32_t NumBlocks = static_cast<uint32_t>(P.Blocks.size());
  std::vector<uint32_t> Stamp(NumBlocks, kNoTrace);
  auto Eligible = [&](uint32_t BI) {
    const DecodedBlock &DB = P.Blocks[BI];
    return DB.UniformSafe && !DB.HasBarrier;
  };
  for (uint32_t Head = 0; Head < NumBlocks; ++Head) {
    if (!Eligible(Head))
      continue;
    const uint32_t Id = static_cast<uint32_t>(P.Traces.size());
    DecodedTrace T;
    T.FirstOp = static_cast<uint32_t>(P.TraceOps.size());
    uint32_t Cur = Head;
    for (;;) {
      const DecodedBlock &DB = P.Blocks[Cur];
      Stamp[Cur] = Id;
      for (uint32_t II = DB.FirstInst; II + 1 < DB.FirstInst + DB.NumInsts;
           ++II)
        pushTraceOp(P.Insts[II]);
      ++T.NumBlocks;
      T.DynInsts += DB.NumInsts;
      T.NumAluInsts += DB.NumAluInsts;
      T.StaticLatency += DB.StaticLatency;
      T.LastBlock = Cur;
      const DecodedInst &Term = P.Insts[DB.FirstInst + DB.NumInsts - 1];
      if (Term.Op != Opcode::Br)
        break;
      const uint32_t Next = DB.Succ[0];
      if (!Eligible(Next) || Stamp[Next] == Id ||
          T.NumBlocks >= kMaxTraceBlocks)
        break;
      emitEdgeMoves(DB.Edge[0]);
      Cur = Next;
    }
    T.NumOps = static_cast<uint32_t>(P.TraceOps.size()) - T.FirstOp;
    // The memory-free prefix may run op-major across warps (multi-warp
    // batching): no observable effect outside warp-private registers.
    T.PrefixOps = T.NumOps;
    for (uint32_t O = 0; O != T.NumOps; ++O) {
      const auto Tok = static_cast<TraceTok>(P.TraceTokens[T.FirstOp + O]);
      if (Tok == TraceTok::Load || Tok == TraceTok::Store) {
        T.PrefixOps = O;
        break;
      }
    }
    P.Blocks[Head].TraceId = Id;
    P.Traces.push_back(T);
  }
}

DecodedProgram Decoder::decode() {
  numberValues();
  P.SharedMemoryBytes = F.getSharedMemoryBytes();

  std::vector<BasicBlock *> Blocks = F.getBlockVector();
  for (uint32_t I = 0; I < Blocks.size(); ++I)
    BlockIds[Blocks[I]] = I;
  P.EntryBlock = BlockIds.at(&F.getEntryBlock());

  // Reconvergence targets come from one post-dominator tree per kernel
  // (the old interpreter rebuilt it for every grid block).
  PostDominatorTree PDT(F);

  // The uniform-warp fast path's licence (DecodedBlock::UniformSafe):
  // divergence analysis under the ExecutionTime seed policy, which
  // additionally treats loads and shfl.sync as divergent because their
  // values can change with *when* a masked subset executes them. Runs
  // once per kernel, here in decode, never in the execute loop.
  DominatorTree DT(F);
  DominanceFrontier DFr(F, DT);
  DivergenceAnalysis DA(F, DT, DFr, DivergenceSeeds::ExecutionTime);

  P.Blocks.resize(Blocks.size());
  for (uint32_t BI = 0; BI < Blocks.size(); ++BI) {
    BasicBlock *BB = Blocks[BI];
    DecodedBlock &DB = P.Blocks[BI];
    DB.FirstInst = static_cast<uint32_t>(P.Insts.size());
    for (Instruction *I : *BB) {
      if (I->isPhi())
        continue;
      P.Insts.push_back(decodeInst(I));
      // Dispatch token alongside every instruction: block bodies outside
      // traces run through the same token-dispatched SIMD handlers.
      P.InstTokens.push_back(static_cast<uint8_t>(tokenOf(P.Insts.back())));
    }
    DB.NumInsts = static_cast<uint32_t>(P.Insts.size()) - DB.FirstInst;
    assert(DB.NumInsts > 0 && "block without a terminator");

    // Batched-accounting summary for the uniform fast path: VALU issue
    // count and the static (non-memory) latency sum, terminator included.
    for (uint32_t II = DB.FirstInst; II != DB.FirstInst + DB.NumInsts; ++II) {
      const DecodedInst &DI = P.Insts[II];
      const bool IsTerm = II + 1 == DB.FirstInst + DB.NumInsts;
      const bool IsMem = DI.Op == Opcode::Load || DI.Op == Opcode::Store;
      if (DI.Op == Opcode::Call &&
          DI.SubOp == static_cast<uint8_t>(Intrinsic::Barrier))
        DB.HasBarrier = 1;
      if (!IsMem)
        DB.StaticLatency += DI.Latency;
      if (!IsTerm && !IsMem &&
          !(DI.Op == Opcode::Call &&
            DI.SubOp == static_cast<uint8_t>(Intrinsic::Barrier)))
        ++DB.NumAluInsts;
    }

    if (PDT.isReachable(BB))
      if (BasicBlock *R = PDT.getIDom(BB))
        DB.Reconverge = BlockIds.at(R);

    const Instruction *Term = BB->getTerminator();
    assert(Term && "unterminated block reached the simulator");
    if (const auto *CB2 = dyn_cast<CondBrInst>(Term))
      DB.UniformSafe = !DA.isDivergent(CB2->getCondition());
    else
      DB.UniformSafe = 1; // ret / unconditional br cannot split the mask
    if (const auto *Br = dyn_cast<BrInst>(Term)) {
      DB.Succ[0] = BlockIds.at(Br->getTarget());
      DB.Edge[0] = decodeEdgePhis(BB, Br->getTarget());
    } else if (const auto *CB = dyn_cast<CondBrInst>(Term)) {
      DB.Succ[0] = BlockIds.at(CB->getTrueSuccessor());
      DB.Succ[1] = BlockIds.at(CB->getFalseSuccessor());
      DB.Edge[0] = decodeEdgePhis(BB, CB->getTrueSuccessor());
      DB.Edge[1] = decodeEdgePhis(BB, CB->getFalseSuccessor());
    }
  }

  formTraces();

  std::sort(P.CrossLaneRegisters.begin(), P.CrossLaneRegisters.end());
  P.CrossLaneRegisters.erase(
      std::unique(P.CrossLaneRegisters.begin(), P.CrossLaneRegisters.end()),
      P.CrossLaneRegisters.end());
  return P;
}

} // namespace

DecodedProgram darm::decodeProgram(Function &F) { return Decoder(F).decode(); }
