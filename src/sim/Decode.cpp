//===- Decode.cpp - IR -> DecodedProgram flattening -------------------------------===//
//
// The decode phase of the simulator: runs once per kernel, never in the
// execute loop. Everything the old tree-walking interpreter recomputed per
// dynamic instruction — operand dispatch over the Value hierarchy, value-id
// hash lookups, CostModel latencies, phi incoming-value searches, and the
// post-dominator queries for reconvergence — is resolved here into the
// dense arrays of DecodedProgram.
//
//===----------------------------------------------------------------------===//

#include "darm/analysis/CostModel.h"
#include "darm/analysis/DivergenceAnalysis.h"
#include "darm/analysis/DominanceFrontier.h"
#include "darm/analysis/DominatorTree.h"
#include "darm/ir/Function.h"
#include "darm/sim/DecodedProgram.h"
#include "darm/support/ErrorHandling.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

using namespace darm;

namespace {

/// Canonical register form (see NormKind): i1 as 0/1, i32 sign-extended,
/// f32 as its bit pattern in the low 32 bits.
uint64_t normalizeImm(const Type *Ty, uint64_t Raw) {
  switch (Ty->getKind()) {
  case Type::Kind::Int1:
    return Raw & 1;
  case Type::Kind::Int32:
    return static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int32_t>(Raw)));
  case Type::Kind::Float:
    return Raw & 0xffffffffull;
  default:
    return Raw;
  }
}

NormKind normKindOf(const Type *Ty) {
  switch (Ty->getKind()) {
  case Type::Kind::Int1:
    return NormKind::I1;
  case Type::Kind::Int32:
    return NormKind::I32;
  case Type::Kind::Float:
    return NormKind::F32;
  default:
    return NormKind::None;
  }
}

class Decoder {
public:
  explicit Decoder(Function &F) : F(F) {}

  DecodedProgram decode();

private:
  uint32_t registerOf(const Value *V) const {
    auto It = RegisterIds.find(V);
    assert(It != RegisterIds.end() && "value not numbered");
    return It->second;
  }

  OperandSlot slotOf(const Value *V);
  uint32_t immediateSlot(uint64_t Bits);
  void numberValues();
  DecodedInst decodeInst(const Instruction *I);
  PhiCopyRange decodeEdgePhis(BasicBlock *From, BasicBlock *To);

  Function &F;
  DecodedProgram P;
  std::unordered_map<const Value *, uint32_t> RegisterIds;
  std::unordered_map<uint64_t, uint32_t> ImmediateIds;
  std::unordered_map<const BasicBlock *, uint32_t> BlockIds;
};

void Decoder::numberValues() {
  auto Number = [&](const Value *V) { RegisterIds[V] = P.NumRegisters++; };
  for (unsigned I = 0; I < F.getNumArgs(); ++I) {
    Number(F.getArg(I));
    P.ArgRegisters.push_back(registerOf(F.getArg(I)));
  }
  uint64_t LdsOffset = 0;
  for (const auto &S : F.sharedArrays()) {
    Number(S.get());
    LdsOffset = (LdsOffset + 15) & ~15ull;
    P.SharedArrayInit.push_back({registerOf(S.get()), LdsOffset});
    LdsOffset += S->getSizeInBytes();
  }
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      if (!I->getType()->isVoid())
        Number(I);
}

uint32_t Decoder::immediateSlot(uint64_t Bits) {
  auto [It, Inserted] =
      ImmediateIds.try_emplace(Bits, static_cast<uint32_t>(P.Immediates.size()));
  if (Inserted)
    P.Immediates.push_back(Bits);
  return It->second | kImmediateBit;
}

OperandSlot Decoder::slotOf(const Value *V) {
  if (const auto *CI = dyn_cast<ConstantInt>(V))
    return immediateSlot(
        normalizeImm(CI->getType(), static_cast<uint64_t>(CI->getValue())));
  if (const auto *CF = dyn_cast<ConstantFloat>(V))
    return immediateSlot(
        static_cast<uint64_t>(std::bit_cast<uint32_t>(CF->getValue())));
  if (isa<UndefValue>(V))
    return immediateSlot(0);
  return registerOf(V);
}

DecodedInst Decoder::decodeInst(const Instruction *I) {
  DecodedInst D;
  D.Op = I->getOpcode();
  D.Latency = static_cast<uint16_t>(CostModel::getLatency(I));
  if (!I->getType()->isVoid()) {
    D.Dest = registerOf(I);
    D.Norm = normKindOf(I->getType());
  }

  switch (D.Op) {
  case Opcode::Br:
  case Opcode::Ret:
    break;
  case Opcode::CondBr:
    D.A = slotOf(cast<CondBrInst>(I)->getCondition());
    break;
  case Opcode::ICmp: {
    const auto *C = cast<ICmpInst>(I);
    D.SubOp = static_cast<uint8_t>(C->getPredicate());
    if (C->getLHS()->getType()->isInt32())
      D.Flags |= DecodedInst::kIs32;
    D.A = slotOf(C->getLHS());
    D.B = slotOf(C->getRHS());
    break;
  }
  case Opcode::FCmp: {
    const auto *C = cast<FCmpInst>(I);
    D.SubOp = static_cast<uint8_t>(C->getPredicate());
    D.A = slotOf(C->getLHS());
    D.B = slotOf(C->getRHS());
    break;
  }
  case Opcode::Select: {
    const auto *S = cast<SelectInst>(I);
    D.A = slotOf(S->getCondition());
    D.B = slotOf(S->getTrueValue());
    D.C = slotOf(S->getFalseValue());
    break;
  }
  case Opcode::Gep: {
    const auto *G = cast<GepInst>(I);
    D.A = slotOf(G->getPointer());
    D.B = slotOf(G->getIndex());
    D.ElemSize = static_cast<uint16_t>(
        G->getType()->getPointee()->getStoreSizeInBytes());
    break;
  }
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::Trunc:
  case Opcode::SIToFP:
  case Opcode::FPToSI: {
    const auto *C = cast<CastInst>(I);
    Type *Src = C->getSource()->getType();
    if (Src->isInt1())
      D.Flags |= DecodedInst::kSrcIsI1;
    else if (Src->isInt32())
      D.Flags |= DecodedInst::kSrcIsI32;
    D.A = slotOf(C->getSource());
    break;
  }
  case Opcode::Load: {
    const auto *L = cast<LoadInst>(I);
    if (L->getAddressSpace() == AddressSpace::Shared)
      D.Flags |= DecodedInst::kShared;
    D.ElemSize = static_cast<uint16_t>(
        L->getPointer()->getType()->getPointee()->getStoreSizeInBytes());
    D.A = slotOf(L->getPointer());
    break;
  }
  case Opcode::Store: {
    const auto *S = cast<StoreInst>(I);
    if (S->getAddressSpace() == AddressSpace::Shared)
      D.Flags |= DecodedInst::kShared;
    D.ElemSize = static_cast<uint16_t>(
        S->getPointer()->getType()->getPointee()->getStoreSizeInBytes());
    D.A = slotOf(S->getValueOperand());
    D.B = slotOf(S->getPointer());
    break;
  }
  case Opcode::Call: {
    const auto *C = cast<CallInst>(I);
    D.SubOp = static_cast<uint8_t>(C->getIntrinsic());
    if (C->getIntrinsic() == Intrinsic::ShflSync) {
      D.A = slotOf(C->getOperand(0));
      D.B = slotOf(C->getOperand(1));
      // The value row is read cross-lane: slots of lanes that never
      // executed the definition must read as 0 (see CrossLaneRegisters).
      if (!(D.A & kImmediateBit))
        P.CrossLaneRegisters.push_back(D.A);
    }
    break;
  }
  case Opcode::Phi:
    darm_unreachable("phis are decoded as edge copies");
  default:
    // Binary arithmetic / logic (Add .. FDiv).
    assert(I->isBinaryOp() && "unhandled opcode in decode");
    if (D.Op >= Opcode::Add && D.Op <= Opcode::AShr &&
        I->getType()->getKind() == Type::Kind::Int32)
      D.Flags |= DecodedInst::kIs32;
    D.A = slotOf(I->getOperand(0));
    D.B = slotOf(I->getOperand(1));
    break;
  }
  return D;
}

PhiCopyRange Decoder::decodeEdgePhis(BasicBlock *From, BasicBlock *To) {
  PhiCopyRange R;
  R.Begin = static_cast<uint32_t>(P.PhiCopies.size());
  for (Instruction *I : *To) {
    if (!I->isPhi())
      break;
    auto *Phi = cast<PhiInst>(I);
    P.PhiCopies.push_back({registerOf(Phi),
                           slotOf(Phi->getIncomingValueForBlock(From)),
                           normKindOf(Phi->getType())});
  }
  R.End = static_cast<uint32_t>(P.PhiCopies.size());
  P.MaxEdgePhis = std::max(P.MaxEdgePhis, R.End - R.Begin);
  return R;
}

DecodedProgram Decoder::decode() {
  numberValues();
  P.SharedMemoryBytes = F.getSharedMemoryBytes();

  std::vector<BasicBlock *> Blocks = F.getBlockVector();
  for (uint32_t I = 0; I < Blocks.size(); ++I)
    BlockIds[Blocks[I]] = I;
  P.EntryBlock = BlockIds.at(&F.getEntryBlock());

  // Reconvergence targets come from one post-dominator tree per kernel
  // (the old interpreter rebuilt it for every grid block).
  PostDominatorTree PDT(F);

  // The uniform-warp fast path's licence (DecodedBlock::UniformSafe):
  // divergence analysis under the ExecutionTime seed policy, which
  // additionally treats loads and shfl.sync as divergent because their
  // values can change with *when* a masked subset executes them. Runs
  // once per kernel, here in decode, never in the execute loop.
  DominatorTree DT(F);
  DominanceFrontier DFr(F, DT);
  DivergenceAnalysis DA(F, DT, DFr, DivergenceSeeds::ExecutionTime);

  P.Blocks.resize(Blocks.size());
  for (uint32_t BI = 0; BI < Blocks.size(); ++BI) {
    BasicBlock *BB = Blocks[BI];
    DecodedBlock &DB = P.Blocks[BI];
    DB.FirstInst = static_cast<uint32_t>(P.Insts.size());
    for (Instruction *I : *BB) {
      if (I->isPhi())
        continue;
      P.Insts.push_back(decodeInst(I));
    }
    DB.NumInsts = static_cast<uint32_t>(P.Insts.size()) - DB.FirstInst;
    assert(DB.NumInsts > 0 && "block without a terminator");

    // Batched-accounting summary for the uniform fast path: VALU issue
    // count and the static (non-memory) latency sum, terminator included.
    for (uint32_t II = DB.FirstInst; II != DB.FirstInst + DB.NumInsts; ++II) {
      const DecodedInst &DI = P.Insts[II];
      const bool IsTerm = II + 1 == DB.FirstInst + DB.NumInsts;
      const bool IsMem = DI.Op == Opcode::Load || DI.Op == Opcode::Store;
      if (DI.Op == Opcode::Call &&
          DI.SubOp == static_cast<uint8_t>(Intrinsic::Barrier))
        DB.HasBarrier = 1;
      if (!IsMem)
        DB.StaticLatency += DI.Latency;
      if (!IsTerm && !IsMem &&
          !(DI.Op == Opcode::Call &&
            DI.SubOp == static_cast<uint8_t>(Intrinsic::Barrier)))
        ++DB.NumAluInsts;
    }

    if (PDT.isReachable(BB))
      if (BasicBlock *R = PDT.getIDom(BB))
        DB.Reconverge = BlockIds.at(R);

    const Instruction *Term = BB->getTerminator();
    assert(Term && "unterminated block reached the simulator");
    if (const auto *CB2 = dyn_cast<CondBrInst>(Term))
      DB.UniformSafe = !DA.isDivergent(CB2->getCondition());
    else
      DB.UniformSafe = 1; // ret / unconditional br cannot split the mask
    if (const auto *Br = dyn_cast<BrInst>(Term)) {
      DB.Succ[0] = BlockIds.at(Br->getTarget());
      DB.Edge[0] = decodeEdgePhis(BB, Br->getTarget());
    } else if (const auto *CB = dyn_cast<CondBrInst>(Term)) {
      DB.Succ[0] = BlockIds.at(CB->getTrueSuccessor());
      DB.Succ[1] = BlockIds.at(CB->getFalseSuccessor());
      DB.Edge[0] = decodeEdgePhis(BB, CB->getTrueSuccessor());
      DB.Edge[1] = decodeEdgePhis(BB, CB->getFalseSuccessor());
    }
  }

  std::sort(P.CrossLaneRegisters.begin(), P.CrossLaneRegisters.end());
  P.CrossLaneRegisters.erase(
      std::unique(P.CrossLaneRegisters.begin(), P.CrossLaneRegisters.end()),
      P.CrossLaneRegisters.end());
  return P;
}

} // namespace

DecodedProgram darm::decodeProgram(Function &F) { return Decoder(F).decode(); }
