//===- algebraic_test.cpp - Algebraic simplification tests --------------------===//
//
// Per-pass gates (docs/passes.md): identities and strength reductions the
// pass must apply, the float and total-division hazards it must refuse,
// verifier cleanliness and idempotence.
//
//===----------------------------------------------------------------------===//

#include "darm/analysis/Verifier.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/transform/AlgebraicSimplify.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

Function *parse(Context &Ctx, std::unique_ptr<Module> &Keep,
                const std::string &Text) {
  std::string Err;
  Keep = parseModule(Ctx, Text, &Err);
  EXPECT_NE(Keep, nullptr) << Err;
  return Keep ? Keep->functions().front().get() : nullptr;
}

void expectCleanAndIdempotent(Function &F) {
  std::string Err;
  EXPECT_TRUE(verifyFunction(F, &Err)) << Err << printFunction(F);
  const std::string Once = printFunction(F);
  EXPECT_FALSE(simplifyAlgebraic(F))
      << "second run still changed:\n" << printFunction(F);
  EXPECT_EQ(printFunction(F), Once);
}

TEST(AlgebraicTest, RemovesIntegerIdentities) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out, i32 %a) -> void {
entry:
  %x = add i32 %a, 0
  %y = mul i32 %x, 1
  %z = xor i32 %y, %y
  %w = or i32 %y, %z
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %w, i32 addrspace(1)* %p
  ret
}
)");
  EXPECT_TRUE(simplifyAlgebraic(*F));
  const std::string Out = printFunction(*F);
  // add 0 / mul 1 collapse to %a, xor x,x to 0, or x,0 to x: the store
  // writes the argument directly.
  EXPECT_NE(Out.find("store i32 %a"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("add i32"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("xor"), std::string::npos) << Out;
  expectCleanAndIdempotent(*F);
}

TEST(AlgebraicTest, StrengthReducesPowersOfTwo) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out, i32 %a) -> void {
entry:
  %m = mul i32 %a, 8
  %d = udiv i32 %m, 4
  %r = urem i32 %d, 16
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %r, i32 addrspace(1)* %p
  ret
}
)");
  EXPECT_TRUE(simplifyAlgebraic(*F));
  const std::string Out = printFunction(*F);
  EXPECT_NE(Out.find("shl i32 %a, 3"), std::string::npos) << Out;
  EXPECT_NE(Out.find("lshr"), std::string::npos) << Out;
  EXPECT_NE(Out.find(", 15"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("mul"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("udiv"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("urem"), std::string::npos) << Out;
  expectCleanAndIdempotent(*F);
}

TEST(AlgebraicTest, FoldsConstantOperands) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out) -> void {
entry:
  %a = add i32 4, 6
  %b = shl i32 %a, 1
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %b, i32 addrspace(1)* %p
  ret
}
)");
  EXPECT_TRUE(simplifyAlgebraic(*F));
  EXPECT_NE(printFunction(*F).find("store i32 20"), std::string::npos)
      << printFunction(*F);
  expectCleanAndIdempotent(*F);
}

// Total-semantics cases: srem x,x and srem x,-1 are defined as 0 and may
// fold; sdiv x,x is NOT 1 (0/0 == 0 here) and must survive.
TEST(AlgebraicTest, RespectsTotalDivisionSemantics) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out, i32 %a) -> void {
entry:
  %r = srem i32 %a, -1
  %q = sdiv i32 %a, %a
  %s = add i32 %r, %q
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %s, i32 addrspace(1)* %p
  ret
}
)");
  EXPECT_TRUE(simplifyAlgebraic(*F));
  const std::string Out = printFunction(*F);
  EXPECT_EQ(Out.find("srem"), std::string::npos) << Out;
  EXPECT_NE(Out.find("sdiv i32 %a, %a"), std::string::npos) << Out;
  expectCleanAndIdempotent(*F);
}

// Negative: no float identities. x+0.0 changes -0.0, x*1.0 can change
// NaN payloads, and the oracle compares memory images bitwise.
TEST(AlgebraicTest, DoesNotTouchFloatIdentities) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(f32 addrspace(1)* %out, f32 %a) -> void {
entry:
  %x = fadd f32 %a, 0.0
  %y = fmul f32 %x, 1.0
  %p = gep f32 addrspace(1)* %out, i32 0
  store f32 %y, f32 addrspace(1)* %p
  ret
}
)");
  const std::string Before = printFunction(*F);
  EXPECT_FALSE(simplifyAlgebraic(*F));
  EXPECT_EQ(printFunction(*F), Before);
}

// Negative: nothing fires on irreducible runtime expressions.
TEST(AlgebraicTest, DoesNotFireWithoutIdentity) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out, i32 %a, i32 %b) -> void {
entry:
  %x = add i32 %a, %b
  %y = mul i32 %x, 3
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %y, i32 addrspace(1)* %p
  ret
}
)");
  const std::string Before = printFunction(*F);
  EXPECT_FALSE(simplifyAlgebraic(*F));
  EXPECT_EQ(printFunction(*F), Before);
}

} // namespace
