//===- config_sweep_test.cpp - DARM configuration-space property sweep -------------===//
//
// Every point of the DARM configuration space (threshold × unpredication
// × replication × diamond-only) must preserve semantics on the full
// benchmark suite's trickiest kernels. This is the ablation-safety net:
// benches may compare configurations freely because each one is
// validated here.
//
//===----------------------------------------------------------------------===//

#include "darm/analysis/Verifier.h"
#include "darm/core/DARMPass.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/kernels/Benchmark.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

struct ConfigPoint {
  std::string Bench;
  double Threshold;
  bool Unpred;
  bool Replic;
  bool DiamondOnly;
};

std::string pointName(const ::testing::TestParamInfo<ConfigPoint> &Info) {
  const ConfigPoint &P = Info.param;
  std::string N = P.Bench + "_t";
  N += std::to_string(static_cast<int>(P.Threshold * 100));
  N += P.Unpred ? "_unpred" : "_fullpred";
  N += P.Replic ? "_repl" : "_norepl";
  if (P.DiamondOnly)
    N += "_diamond";
  return N;
}

std::vector<ConfigPoint> allPoints() {
  std::vector<ConfigPoint> Points;
  // The kernels that exercise every melding path: region-region with
  // loops (PCM), region-region straight (BIT), replication (SB4/SB4R,
  // NQU), biased 3-way (SRAD), plus a plain diamond (DCT).
  for (const char *Bench :
       {"BIT", "PCM", "NQU", "SRAD", "DCT", "SB3R", "SB4", "SB4R"})
    for (double T : {0.05, 0.2, 0.35})
      for (bool Unpred : {true, false})
        for (bool Replic : {true, false})
          Points.push_back({Bench, T, Unpred, Replic, false});
  // Diamond-only (branch fusion shape) across the same kernels.
  for (const char *Bench : {"BIT", "SB4R", "DCT"})
    Points.push_back({Bench, 0.2, true, false, true});
  return Points;
}

class ConfigSweep : public ::testing::TestWithParam<ConfigPoint> {};

TEST_P(ConfigSweep, SemanticsPreserved) {
  const ConfigPoint &P = GetParam();
  unsigned BS = paperBlockSizes(P.Bench).front();
  auto Bench = createBenchmark(P.Bench, BS);
  ASSERT_NE(Bench, nullptr);

  Context Ctx;
  Module M(Ctx, P.Bench);
  Function *F = Bench->build(M);

  DARMConfig Cfg;
  Cfg.ProfitThreshold = P.Threshold;
  Cfg.EnableUnpredication = P.Unpred;
  Cfg.EnableRegionReplication = P.Replic;
  Cfg.DiamondOnly = P.DiamondOnly;
  // Stress the metric floor too: at the lowest threshold also drop the
  // absolute-savings floor so maximal melding is exercised.
  if (P.Threshold < 0.1)
    Cfg.MinAbsoluteSaving = 0.0;
  runDARM(*F, Cfg);

  std::string Err;
  ASSERT_TRUE(verifyFunction(*F, &Err)) << Err << "\n" << printFunction(*F);
  SimStats Stats;
  std::string Why;
  EXPECT_TRUE(runAndValidate(*Bench, *F, Stats, &Why)) << Why;
}

INSTANTIATE_TEST_SUITE_P(Grid, ConfigSweep,
                         ::testing::ValuesIn(allPoints()), pointName);

} // namespace
