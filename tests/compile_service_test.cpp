//===- compile_service_test.cpp - Compile cache behaviour ---------------------===//
//
// Pins the CompileService contract (docs/caching.md): config
// fingerprints distinguish every tunable, hits return the exact artifact
// a cold compile produces (byte-identical, at any cache state), the LRU
// byte budget evicts cold entries, failed compiles are cached negative
// results, and concurrent get-or-compile under the support/Parallel.h
// pool is deterministic.
//
//===----------------------------------------------------------------------===//

#include "darm/core/CompileService.h"

#include "darm/core/DARMPass.h"
#include "darm/fuzz/KernelGenerator.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/ir/Serialize.h"
#include "darm/sim/DecodedProgram.h"
#include "darm/support/Hashing.h"
#include "darm/support/Parallel.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

Function *buildKernel(Module &M, uint64_t Seed) {
  fuzz::FuzzCase C(Seed);
  Function *F = fuzz::buildFuzzKernel(M, C);
  EXPECT_NE(F, nullptr);
  return F;
}

TEST(ConfigFingerprint, DistinguishesEveryField) {
  const std::string Base = configFingerprint(DARMConfig());
  auto Differs = [&](DARMConfig Cfg) {
    EXPECT_NE(configFingerprint(Cfg), Base);
  };
  {
    DARMConfig C;
    C.ProfitThreshold = 0.3;
    Differs(C);
  }
  {
    DARMConfig C;
    C.InstrGapPenalty = -0.25;
    Differs(C);
  }
  {
    DARMConfig C;
    C.SubgraphGapPenalty = -0.2;
    Differs(C);
  }
  {
    DARMConfig C;
    C.EnableUnpredication = false;
    Differs(C);
  }
  {
    DARMConfig C;
    C.DiamondOnly = true;
    Differs(C);
  }
  {
    DARMConfig C;
    C.EnableRegionReplication = false;
    Differs(C);
  }
  {
    DARMConfig C;
    C.MinAbsoluteSaving = 3.0;
    Differs(C);
  }
  {
    DARMConfig C;
    C.MaxIterations = 7;
    Differs(C);
  }
  {
    DARMConfig C;
    C.VerifyEachStep = false;
    Differs(C);
  }
  {
    DARMConfig C;
    C.EnableConstProp = true;
    Differs(C);
  }
  {
    DARMConfig C;
    C.EnableAlgebraic = true;
    Differs(C);
  }
  {
    DARMConfig C;
    C.EnableGVN = true;
    Differs(C);
  }
  {
    DARMConfig C;
    C.EnableLICM = true;
    Differs(C);
  }
  {
    DARMConfig C;
    C.EnableLoopUnroll = true;
    Differs(C);
  }
  // Equal configs fingerprint equal; the fingerprint embeds the schema
  // version and the explicit field count as a tripwire for fields added
  // without extending configFingerprint — NOT sizeof(DARMConfig), which
  // varies with compiler padding and would silently split on-disk
  // artifact keys across ABIs (docs/caching.md fingerprint portability).
  // When growing the struct: bump kDARMConfigFieldCount, extend
  // configFingerprint() and the serve/Protocol.h config codec, and add a
  // Differs() block above — this pin counts them.
  EXPECT_EQ(configFingerprint(DARMConfig()), Base);
  EXPECT_EQ(kDARMConfigFieldCount, 14u);
  const std::string Prefix =
      "darm-cfg-v2;" + std::to_string(kDARMConfigFieldCount) + ";";
  EXPECT_EQ(Base.rfind(Prefix, 0), 0u) << Base;
  EXPECT_EQ(Base.find(std::to_string(sizeof(DARMConfig))), std::string::npos)
      << "fingerprint must not embed ABI-dependent sizeof";
}

TEST(CompiledModuleTest, ArtifactMatchesDirectCompile) {
  Context Ctx;
  Module M(Ctx, "direct");
  Function *F = buildKernel(M, 11);

  CompiledModule Art = compileToArtifact(*F, DARMConfig());
  ASSERT_FALSE(Art.failed()) << Art.CompileError;
  EXPECT_EQ(Art.IRHash, artifactIRHash(*F));
  EXPECT_FALSE(Art.ModuleBytes.empty());
  EXPECT_FALSE(Art.ProgramBytes.empty());

  // The input function is untouched...
  std::string Before = printFunction(*F);
  EXPECT_EQ(artifactIRHash(*F), Art.IRHash);

  // ...and the artifact's module is exactly what melding the input
  // in place produces.
  DARMStats DirectStats;
  runDARM(*F, DARMConfig(), &DirectStats);
  Context ArtCtx;
  std::string Err;
  std::unique_ptr<Module> AM = moduleFromArtifact(Art, ArtCtx, &Err);
  ASSERT_NE(AM, nullptr) << Err;
  EXPECT_EQ(printFunction(*AM->functions().front()), printFunction(*F));
  EXPECT_EQ(Art.Stats.RegionsMelded, DirectStats.RegionsMelded);
  EXPECT_EQ(Art.Stats.Iterations, DirectStats.Iterations);

  // The embedded program image equals a fresh decode of the melded IR.
  EXPECT_EQ(Art.ProgramBytes,
            serializeDecodedProgram(decodeProgram(*AM->functions().front())));

  // Determinism: compiling the same input again is byte-identical.
  Context Ctx2;
  Module M2(Ctx2, "direct");
  Function *F2 = buildKernel(M2, 11);
  CompiledModule Art2 = compileToArtifact(*F2, DARMConfig());
  EXPECT_EQ(Art2.ModuleBytes, Art.ModuleBytes);
  EXPECT_EQ(Art2.ProgramBytes, Art.ProgramBytes);
}

TEST(CompiledModuleTest, ArtifactIRHashIsPureInFunctionContent) {
  // Same kernel in modules with different names, Contexts and sibling
  // functions: the content key must not move — renaming a module or
  // adding an unrelated sibling must never cold the cache.
  Context C1;
  Module M1(C1, "alpha");
  Function *F1 = buildKernel(M1, 9);
  Context C2;
  Module M2(C2, "beta");
  Function *F2 = buildKernel(M2, 9);
  Function *Sibling = buildKernel(M2, 10);
  EXPECT_EQ(artifactIRHash(*F1), artifactIRHash(*F2));
  EXPECT_NE(artifactIRHash(*F1), artifactIRHash(*Sibling));

  // The key is the hash of the canonical single-function snapshot.
  std::vector<uint8_t> Snap = serializeFunction(*F1);
  ASSERT_FALSE(Snap.empty());
  EXPECT_EQ(artifactIRHash(*F1), hashBytes(Snap.data(), Snap.size()));
  EXPECT_EQ(Snap, serializeFunction(*F2));
}

TEST(CompileServiceTest, MissThenHit) {
  CompileService Svc;
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildKernel(M, 3);

  CompileService::Artifact A = Svc.getOrCompile(*F, DARMConfig());
  ASSERT_NE(A, nullptr);
  CompileService::Artifact B = Svc.getOrCompile(*F, DARMConfig());
  EXPECT_EQ(A.get(), B.get()) << "hit must return the cached artifact";

  // The same kernel built in a different Context hits too: the key is
  // content, not identity.
  Context Ctx2;
  Module M2(Ctx2, "m2");
  Function *F2 = buildKernel(M2, 3);
  CompileService::Artifact C = Svc.getOrCompile(*F2, DARMConfig());
  EXPECT_EQ(A.get(), C.get());

  CompileService::CacheStats St = Svc.stats();
  EXPECT_EQ(St.Misses, 1u);
  EXPECT_EQ(St.Hits, 2u);
  EXPECT_EQ(St.Entries, 1u);
  EXPECT_GT(St.Bytes, 0u);
  EXPECT_DOUBLE_EQ(St.hitRate(), 2.0 / 3.0);

  EXPECT_NE(Svc.lookup(A->IRHash, A->Fingerprint), nullptr);
  Svc.clear();
  EXPECT_EQ(Svc.lookup(A->IRHash, A->Fingerprint), nullptr);
  EXPECT_EQ(Svc.stats().Entries, 0u);
}

TEST(CompileServiceTest, DistinctConfigsAndKernelsDistinctEntries) {
  CompileService Svc;
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildKernel(M, 4);
  Function *G = buildKernel(M, 5);

  DARMConfig Aggressive;
  Aggressive.ProfitThreshold = 0.1;
  CompileService::Artifact A = Svc.getOrCompile(*F, DARMConfig());
  CompileService::Artifact B = Svc.getOrCompile(*F, Aggressive);
  CompileService::Artifact C = Svc.getOrCompile(*G, DARMConfig());
  EXPECT_NE(A.get(), B.get());
  EXPECT_NE(A.get(), C.get());
  EXPECT_EQ(Svc.stats().Entries, 3u);
  EXPECT_EQ(Svc.stats().Misses, 3u);
}

TEST(CompileServiceTest, ProgramUpgradeCountsAsUpgrade) {
  CompileService Svc;
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildKernel(M, 6);

  CacheSource Src = CacheSource::MemoryHit;
  CompileService::Artifact NoProg = Svc.getOrCompile(
      *F, DARMConfig(), /*IncludeProgram=*/false, &Src);
  EXPECT_TRUE(NoProg->ProgramBytes.empty());
  EXPECT_EQ(Src, CacheSource::Compiled);
  CompileService::Artifact WithProg =
      Svc.getOrCompile(*F, DARMConfig(), /*IncludeProgram=*/true, &Src);
  EXPECT_FALSE(WithProg->ProgramBytes.empty());
  EXPECT_EQ(WithProg->ModuleBytes, NoProg->ModuleBytes);
  EXPECT_EQ(Src, CacheSource::Upgraded);
  // Re-deriving the program image for an already-cached module is an
  // upgrade, not a cold miss: it must not dilute the hit rate a cache
  // of full artifacts would report.
  EXPECT_EQ(Svc.stats().Misses, 1u);
  EXPECT_EQ(Svc.stats().Upgrades, 1u);
  EXPECT_DOUBLE_EQ(Svc.stats().hitRate(), 0.0);
  // A program-less request is satisfied by the upgraded entry.
  CompileService::Artifact Again =
      Svc.getOrCompile(*F, DARMConfig(), /*IncludeProgram=*/false, &Src);
  EXPECT_EQ(Again.get(), WithProg.get());
  EXPECT_EQ(Src, CacheSource::MemoryHit);
  EXPECT_EQ(Svc.stats().Hits, 1u);
  EXPECT_DOUBLE_EQ(Svc.stats().hitRate(), 0.5);
}

TEST(CompileServiceTest, FailedCompileIsCachedNegative) {
  CompileService Svc;
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildKernel(M, 7);

  unsigned Runs = 0;
  // A compile step that produces verifier-rejected IR (a block with no
  // terminator): the service must cache the failure, not rerun it.
  CompileFn Broken = [&Runs](Function &K, DARMStats &) {
    ++Runs;
    K.createBlock("dangling");
  };
  CompileService::Artifact A = Svc.getOrCompile(*F, "test:broken", Broken);
  ASSERT_TRUE(A->failed());
  EXPECT_TRUE(A->ModuleBytes.empty());
  CompileService::Artifact B = Svc.getOrCompile(*F, "test:broken", Broken);
  EXPECT_EQ(A.get(), B.get());
  EXPECT_EQ(Runs, 1u);
  EXPECT_EQ(Svc.stats().Hits, 1u);

  Context Err;
  std::string Msg;
  EXPECT_EQ(moduleFromArtifact(*A, Err, &Msg), nullptr);
  EXPECT_EQ(Msg, A->CompileError);
}

TEST(CompileServiceTest, LruEvictionUnderByteBudget) {
  CompileService::Options Opts;
  Opts.NumShards = 1; // one LRU list so the budget math is exact
  Opts.MaxBytes = 64 * 1024;
  CompileService Svc(Opts);

  Context Ctx;
  Module M(Ctx, "m");
  CompileService::Artifact First;
  uint64_t Seed = 100;
  // Compile until the budget forces evictions.
  while (Svc.stats().Evictions == 0 && Seed < 200) {
    Function *F = buildKernel(M, Seed);
    CompileService::Artifact A = Svc.getOrCompile(*F, DARMConfig());
    if (!First)
      First = A;
    ++Seed;
  }
  CompileService::CacheStats St = Svc.stats();
  ASSERT_GT(St.Evictions, 0u) << "64 KiB must not hold 100 artifacts";
  EXPECT_LE(St.Bytes, Opts.MaxBytes);
  // The coldest entry (the first) is gone; re-requesting it is a miss.
  EXPECT_EQ(Svc.lookup(First->IRHash, First->Fingerprint), nullptr);
  // Evicted artifacts stay alive through consumer references.
  EXPECT_FALSE(First->ModuleBytes.empty());
}

TEST(CompileServiceTest, OversizedArtifactIsServedButNotCached) {
  CompileService::Options Opts;
  Opts.NumShards = 1;
  Opts.MaxBytes = 256; // far below any real artifact's byteSize()
  CompileService Svc(Opts);

  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildKernel(M, 5);
  CacheSource Src = CacheSource::MemoryHit;
  CompileService::Artifact A =
      Svc.getOrCompile(*F, DARMConfig(), /*IncludeProgram=*/true, &Src);
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(Src, CacheSource::Compiled);
  EXPECT_GT(A->byteSize(), Opts.MaxBytes);

  // Reject-from-cache policy (core/CompileService.h): the caller gets
  // the artifact, but the cache neither admits it (which would pin the
  // shard over budget forever — the old `size() > 1` eviction guard bug)
  // nor evicts everything else to make room that still would not
  // suffice.
  CompileService::CacheStats St = Svc.stats();
  EXPECT_EQ(St.Oversized, 1u);
  EXPECT_EQ(St.Entries, 0u);
  EXPECT_EQ(St.Bytes, 0u);
  EXPECT_EQ(Svc.lookup(A->IRHash, A->Fingerprint), nullptr);

  // Re-requesting recompiles (a miss, counted again as oversized) and
  // still returns the full deterministic artifact.
  CompileService::Artifact B =
      Svc.getOrCompile(*F, DARMConfig(), /*IncludeProgram=*/true, &Src);
  EXPECT_EQ(Src, CacheSource::Compiled);
  EXPECT_EQ(Svc.stats().Misses, 2u);
  EXPECT_EQ(Svc.stats().Oversized, 2u);
  EXPECT_EQ(B->ModuleBytes, A->ModuleBytes);
  EXPECT_EQ(B->ProgramBytes, A->ProgramBytes);
}

TEST(CompileServiceTest, ConcurrentGetOrCompileIsDeterministic) {
  CompileService Svc;
  // 64 work items over 8 distinct kernels, racing on a shared service.
  // Per-worker-Context rule: every item builds its own Context.
  constexpr size_t Items = 64;
  ThreadPool Pool(8);
  std::vector<CompileService::Artifact> Arts =
      parallelMap<CompileService::Artifact>(Pool, Items, [&](size_t I) {
        Context Ctx;
        Module M(Ctx, "w");
        Function *F = fuzz::buildFuzzKernel(M, fuzz::FuzzCase(I % 8));
        return Svc.getOrCompile(*F, DARMConfig());
      });

  for (size_t I = 0; I < Items; ++I) {
    ASSERT_NE(Arts[I], nullptr);
    EXPECT_FALSE(Arts[I]->failed()) << Arts[I]->CompileError;
    // Same seed -> byte-identical artifact, regardless of which worker
    // compiled it or whether it hit.
    EXPECT_EQ(Arts[I]->ModuleBytes, Arts[I % 8]->ModuleBytes);
    EXPECT_EQ(Arts[I]->ProgramBytes, Arts[I % 8]->ProgramBytes);
  }
  CompileService::CacheStats St = Svc.stats();
  EXPECT_EQ(St.Hits + St.Misses, Items);
  EXPECT_EQ(St.Entries, 8u);
  // Racing compiles may duplicate work but never change results.
  EXPECT_GE(St.Misses, 8u);
}

} // namespace
