//===- analysis_test.cpp - Analysis substrate unit + property tests ----------------===//

#include "darm/analysis/CostModel.h"
#include "darm/analysis/DivergenceAnalysis.h"
#include "darm/analysis/DominanceFrontier.h"
#include "darm/analysis/DominatorTree.h"
#include "darm/analysis/LoopInfo.h"
#include "darm/analysis/RegionQuery.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/Module.h"
#include "darm/support/RNG.h"

#include <gtest/gtest.h>

#include <set>

using namespace darm;

namespace {

/// Parses a function and fails the test on error.
Function *parse(Context &Ctx, std::unique_ptr<Module> &Keep,
                const std::string &Text) {
  std::string Err;
  Keep = parseModule(Ctx, Text, &Err);
  EXPECT_NE(Keep, nullptr) << Err;
  return Keep ? Keep->functions().front().get() : nullptr;
}

const char *kDiamond = R"(
func @diamond(i32 %a) -> void {
entry:
  %c = icmp sgt i32 %a, 0
  condbr i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  ret
}
)";

TEST(DomTree, Diamond) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, kDiamond);
  DominatorTree DT(*F);
  BasicBlock *E = F->getBlockByName("entry");
  BasicBlock *T = F->getBlockByName("t");
  BasicBlock *Eb = F->getBlockByName("e");
  BasicBlock *J = F->getBlockByName("j");
  EXPECT_TRUE(DT.dominates(E, J));
  EXPECT_TRUE(DT.dominates(E, T));
  EXPECT_FALSE(DT.dominates(T, J));
  EXPECT_EQ(DT.getIDom(J), E);
  EXPECT_EQ(DT.getIDom(T), E);
  EXPECT_EQ(DT.getIDom(E), nullptr);
  EXPECT_EQ(DT.findNearestCommonDominator(T, Eb), E);
  EXPECT_EQ(DT.getLevel(E), 1u);
  EXPECT_EQ(DT.getLevel(J), 2u);
}

TEST(PostDomTree, Diamond) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, kDiamond);
  PostDominatorTree PDT(*F);
  BasicBlock *E = F->getBlockByName("entry");
  BasicBlock *T = F->getBlockByName("t");
  BasicBlock *J = F->getBlockByName("j");
  EXPECT_TRUE(PDT.dominates(J, E));
  EXPECT_TRUE(PDT.dominates(J, T));
  EXPECT_FALSE(PDT.dominates(T, E));
  EXPECT_EQ(PDT.getIDom(E), J);
  EXPECT_EQ(PDT.getIDom(J), nullptr);
}

TEST(DomFrontier, DiamondJoin) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, kDiamond);
  DominatorTree DT(*F);
  DominanceFrontier DF(*F, DT);
  BasicBlock *T = F->getBlockByName("t");
  BasicBlock *J = F->getBlockByName("j");
  EXPECT_EQ(DF.getFrontier(T), std::set<BasicBlock *>{J});
  EXPECT_TRUE(DF.getFrontier(F->getBlockByName("entry")).empty());
  auto IDF = DF.computeIDF({T});
  EXPECT_EQ(IDF, std::vector<BasicBlock *>{J});
}

/// Random CFG generator for oracle-based dominance testing.
Function *randomCFG(Module &M, RNG &Rng, unsigned NumBlocks) {
  Context &Ctx = M.getContext();
  Function *F = M.createFunction("rand", Ctx.getVoidTy(),
                                 {{Ctx.getInt32Ty(), "a"}});
  std::vector<BasicBlock *> Blocks;
  for (unsigned I = 0; I < NumBlocks; ++I)
    Blocks.push_back(F->createBlock("b" + std::to_string(I)));
  IRBuilder B(Ctx);
  Value *A = F->getArg(0);
  for (unsigned I = 0; I < NumBlocks; ++I) {
    B.setInsertPoint(Blocks[I]);
    unsigned Kind = static_cast<unsigned>(Rng.nextBelow(10));
    if (I + 1 == NumBlocks || Kind == 0) {
      B.createRet();
    } else if (Kind < 5) {
      B.createBr(Blocks[Rng.nextBelow(NumBlocks)]);
    } else {
      Value *C = B.createICmp(ICmpPred::SLT, A,
                              B.getInt32(static_cast<int32_t>(I)));
      B.createCondBr(C, Blocks[Rng.nextBelow(NumBlocks)],
                     Blocks[Rng.nextBelow(NumBlocks)]);
    }
  }
  return F;
}

/// Oracle: A dominates B iff B is unreachable from entry when A is removed.
bool dominatesOracle(Function &F, BasicBlock *A, BasicBlock *B) {
  if (A == B)
    return true;
  std::set<BasicBlock *> Seen{A}; // never walk through A
  std::vector<BasicBlock *> Work{&F.getEntryBlock()};
  if (&F.getEntryBlock() == A)
    return true;
  Seen.insert(&F.getEntryBlock());
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    if (BB == B)
      return false;
    for (BasicBlock *S : BB->successors())
      if (Seen.insert(S).second)
        Work.push_back(S);
  }
  return true; // B unreachable without A
}

class DomTreeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DomTreeProperty, MatchesReachabilityOracle) {
  RNG Rng(GetParam());
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = randomCFG(M, Rng, 4 + Rng.nextBelow(10));
  DominatorTree DT(*F);
  std::set<BasicBlock *> Reachable;
  {
    std::vector<BasicBlock *> Work{&F->getEntryBlock()};
    Reachable.insert(&F->getEntryBlock());
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      for (BasicBlock *S : BB->successors())
        if (Reachable.insert(S).second)
          Work.push_back(S);
    }
  }
  for (BasicBlock *A : *F) {
    EXPECT_EQ(DT.isReachable(A), Reachable.count(A) != 0);
    if (!Reachable.count(A))
      continue;
    for (BasicBlock *B : *F) {
      if (!Reachable.count(B))
        continue;
      EXPECT_EQ(DT.dominates(A, B), dominatesOracle(*F, A, B))
          << A->getName() << " vs " << B->getName() << " seed "
          << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomTreeProperty,
                         ::testing::Range<uint64_t>(0, 25));

TEST(LoopInfoTest, NestedLoops) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @loops(i32 %n) -> void {
entry:
  br label %outer
outer:
  %i = phi i32 [ 0, %entry ], [ %inext, %outer.latch ]
  br label %inner
inner:
  %j = phi i32 [ 0, %outer ], [ %jnext, %inner ]
  %jnext = add i32 %j, 1
  %jc = icmp slt i32 %jnext, %n
  condbr i1 %jc, label %inner, label %outer.latch
outer.latch:
  %inext = add i32 %i, 1
  %ic = icmp slt i32 %inext, %n
  condbr i1 %ic, label %outer, label %exit
exit:
  ret
}
)");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  BasicBlock *Outer = F->getBlockByName("outer");
  BasicBlock *Inner = F->getBlockByName("inner");
  Loop *LInner = LI.getLoopFor(Inner);
  Loop *LOuter = LI.getLoopFor(Outer);
  ASSERT_NE(LInner, nullptr);
  ASSERT_NE(LOuter, nullptr);
  EXPECT_NE(LInner, LOuter);
  EXPECT_EQ(LInner->getParent(), LOuter);
  EXPECT_EQ(LI.getLoopDepth(Inner), 2u);
  EXPECT_EQ(LI.getLoopDepth(Outer), 1u);
  EXPECT_EQ(LI.getLoopDepth(F->getBlockByName("exit")), 0u);
  EXPECT_EQ(LOuter->getLatches().size(), 1u);
  EXPECT_EQ(LI.topLevelLoops().size(), 1u);
}

TEST(RegionQueryTest, DiamondRegions) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, kDiamond);
  DominatorTree DT(*F);
  PostDominatorTree PDT(*F);
  RegionQuery RQ(*F, DT, PDT);
  BasicBlock *E = F->getBlockByName("entry");
  BasicBlock *T = F->getBlockByName("t");
  BasicBlock *J = F->getBlockByName("j");
  EXPECT_TRUE(RQ.isRegion(E, J));
  EXPECT_TRUE(RQ.isRegion(T, J));
  EXPECT_FALSE(RQ.isRegion(T, E));
  auto Body = RQ.collectBlocks(E, J);
  EXPECT_EQ(Body.size(), 3u);
  RegionDesc R = RQ.getSmallestRegion(E);
  EXPECT_EQ(R.Exit, J);
  EXPECT_EQ(RQ.countExitEdges(E, J), 2u);
  EXPECT_TRUE(RQ.isSimpleRegion(T, J));
  EXPECT_FALSE(RQ.isSimpleRegion(E, J)); // two exit edges
}

TEST(Divergence, SeedsAndPropagation) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @div(i32 addrspace(1)* %p, i32 %uniform) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %ntid = call i32 @darm.ntid.x()
  %d1 = add i32 %tid, %uniform
  %u1 = mul i32 %uniform, %ntid
  %g = gep i32 addrspace(1)* %p, i32 %d1
  %ld = load i32 addrspace(1)* %g
  %gu = gep i32 addrspace(1)* %p, i32 %u1
  %lu = load i32 addrspace(1)* %gu
  ret
}
)");
  DominatorTree DT(*F);
  DominanceFrontier DF(*F, DT);
  DivergenceAnalysis DA(*F, DT, DF);
  auto ValueByName = [&](const std::string &N) -> Value * {
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB)
        if (I->getName() == N)
          return I;
    return nullptr;
  };
  EXPECT_TRUE(DA.isDivergent(ValueByName("tid")));
  EXPECT_FALSE(DA.isDivergent(ValueByName("ntid")));
  EXPECT_TRUE(DA.isDivergent(ValueByName("d1")));
  EXPECT_FALSE(DA.isDivergent(ValueByName("u1")));
  EXPECT_TRUE(DA.isDivergent(ValueByName("ld"))); // divergent address
  EXPECT_FALSE(DA.isDivergent(ValueByName("lu"))); // uniform address
}

TEST(Divergence, SyncDependenceTaintsJoinPhis) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @sync(i32 %u) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %c = icmp slt i32 %tid, 16
  condbr i1 %c, label %t, label %e
t:
  %a = add i32 %u, 1
  br label %j
e:
  %b = add i32 %u, 2
  br label %j
j:
  %m = phi i32 [ %a, %t ], [ %b, %e ]
  ret
}
)");
  DominatorTree DT(*F);
  DominanceFrontier DF(*F, DT);
  DivergenceAnalysis DA(*F, DT, DF);
  // %a and %b are uniform computations, but the merged phi depends on
  // which path each lane took: sync-divergent.
  PhiInst *Phi = F->getBlockByName("j")->phis().front();
  EXPECT_TRUE(DA.isDivergent(Phi));
  EXPECT_TRUE(DA.hasDivergentBranch(F->getBlockByName("entry")));
  EXPECT_EQ(DA.countDivergentBranches(), 1u);
}

TEST(CostModelTest, LatencyOrdering) {
  // Relative latencies that the melding profitability relies on.
  EXPECT_LT(CostModel::getLatency(Opcode::Add),
            CostModel::getLatency(Opcode::Mul));
  EXPECT_LT(CostModel::getLatency(Opcode::Mul),
            CostModel::getLatency(Opcode::SDiv));
  EXPECT_LT(CostModel::getLatency(Opcode::Load, AddressSpace::Shared),
            CostModel::getLatency(Opcode::Load, AddressSpace::Global));
  EXPECT_EQ(CostModel::getLatency(Opcode::Phi), 0u);
}

} // namespace
