//===- gvn_test.cpp - Dominator-scoped value numbering tests ------------------===//
//
// Per-pass gates (docs/passes.md): redundancies GVN must merge, hazards
// it must refuse (floats, loads, non-dominating defs), verifier
// cleanliness and idempotence.
//
//===----------------------------------------------------------------------===//

#include "darm/analysis/Verifier.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/transform/GVN.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

Function *parse(Context &Ctx, std::unique_ptr<Module> &Keep,
                const std::string &Text) {
  std::string Err;
  Keep = parseModule(Ctx, Text, &Err);
  EXPECT_NE(Keep, nullptr) << Err;
  return Keep ? Keep->functions().front().get() : nullptr;
}

void expectCleanAndIdempotent(Function &F) {
  std::string Err;
  EXPECT_TRUE(verifyFunction(F, &Err)) << Err << printFunction(F);
  const std::string Once = printFunction(F);
  EXPECT_FALSE(runGVN(F)) << "second run still changed:\n" << printFunction(F);
  EXPECT_EQ(printFunction(F), Once);
}

TEST(GVNTest, MergesLocalDuplicates) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out, i32 %a, i32 %b) -> void {
entry:
  %x = add i32 %a, %b
  %y = add i32 %a, %b
  %s = sub i32 %x, %y
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %s, i32 addrspace(1)* %p
  ret
}
)");
  EXPECT_TRUE(runGVN(*F));
  const std::string Out = printFunction(*F);
  // %y merged into %x; the sub now sees the same value twice.
  EXPECT_EQ(Out.find("%y"), std::string::npos) << Out;
  EXPECT_NE(Out.find("sub i32 %x, %x"), std::string::npos) << Out;
  expectCleanAndIdempotent(*F);
}

TEST(GVNTest, MergesCommutedIntegerPair) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out, i32 %a, i32 %b) -> void {
entry:
  %x = mul i32 %a, %b
  %y = mul i32 %b, %a
  %s = add i32 %x, %y
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %s, i32 addrspace(1)* %p
  ret
}
)");
  EXPECT_TRUE(runGVN(*F));
  EXPECT_EQ(printFunction(*F).find("%y"), std::string::npos)
      << printFunction(*F);
  expectCleanAndIdempotent(*F);
}

TEST(GVNTest, MergesAcrossDominatingBlocks) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out, i32 %a, i1 %c) -> void {
entry:
  %x = add i32 %a, 3
  condbr i1 %c, label %t, label %j
t:
  %y = add i32 %a, 3
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %y, i32 addrspace(1)* %p
  br label %j
j:
  ret
}
)");
  EXPECT_TRUE(runGVN(*F));
  const std::string Out = printFunction(*F);
  EXPECT_EQ(Out.find("%y"), std::string::npos) << Out;
  EXPECT_NE(Out.find("store i32 %x"), std::string::npos) << Out;
  expectCleanAndIdempotent(*F);
}

// Negative: sibling arms do not dominate each other, so the duplicate
// expressions in %t and %e must both survive.
TEST(GVNTest, DoesNotMergeSiblingArms) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out, i32 %a, i1 %c) -> void {
entry:
  condbr i1 %c, label %t, label %e
t:
  %x = add i32 %a, 3
  br label %j
e:
  %y = add i32 %a, 3
  br label %j
j:
  %v = phi i32 [ %x, %t ], [ %y, %e ]
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %v, i32 addrspace(1)* %p
  ret
}
)");
  const std::string Before = printFunction(*F);
  EXPECT_FALSE(runGVN(*F));
  EXPECT_EQ(printFunction(*F), Before);
}

// Negative: float add is NOT commutative here — when both operands are
// NaN the hardware propagates one operand's payload, so a+b and b+a can
// differ bitwise, and the fuzz oracle compares memory images bitwise.
TEST(GVNTest, DoesNotCommuteFloatAdd) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(f32 addrspace(1)* %out, f32 %a, f32 %b) -> void {
entry:
  %x = fadd f32 %a, %b
  %y = fadd f32 %b, %a
  %s = fmul f32 %x, %y
  %p = gep f32 addrspace(1)* %out, i32 0
  store f32 %s, f32 addrspace(1)* %p
  ret
}
)");
  const std::string Before = printFunction(*F);
  EXPECT_FALSE(runGVN(*F));
  EXPECT_EQ(printFunction(*F), Before);
}

// Identical float expressions in the SAME operand order are structurally
// equal and safe to merge — only the commuted form is a hazard.
TEST(GVNTest, MergesIdenticalFloatExpr) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(f32 addrspace(1)* %out, f32 %a, f32 %b) -> void {
entry:
  %x = fadd f32 %a, %b
  %y = fadd f32 %a, %b
  %s = fmul f32 %x, %y
  %p = gep f32 addrspace(1)* %out, i32 0
  store f32 %s, f32 addrspace(1)* %p
  ret
}
)");
  EXPECT_TRUE(runGVN(*F));
  EXPECT_EQ(printFunction(*F).find("%y"), std::string::npos)
      << printFunction(*F);
  expectCleanAndIdempotent(*F);
}

// Negative: loads observe memory, which stores may have changed between
// them — there is no alias analysis, so identical loads never merge.
TEST(GVNTest, DoesNotMergeLoads) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %buf) -> void {
entry:
  %p = gep i32 addrspace(1)* %buf, i32 0
  %x = load i32 addrspace(1)* %p
  %q = gep i32 addrspace(1)* %buf, i32 1
  store i32 %x, i32 addrspace(1)* %q
  %y = load i32 addrspace(1)* %p
  %z = add i32 %x, %y
  store i32 %z, i32 addrspace(1)* %q
  ret
}
)");
  EXPECT_FALSE(runGVN(*F));
  EXPECT_NE(printFunction(*F).find("%y"), std::string::npos)
      << printFunction(*F);
}

} // namespace
