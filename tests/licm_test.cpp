//===- licm_test.cpp - Loop-invariant code motion tests -----------------------===//
//
// Per-pass gates (docs/passes.md): invariant computations LICM must hoist
// into the preheader, hazards it must refuse (variant operands, memory,
// loops with no preheader), verifier cleanliness and idempotence.
//
//===----------------------------------------------------------------------===//

#include "darm/analysis/Verifier.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/transform/LICM.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

Function *parse(Context &Ctx, std::unique_ptr<Module> &Keep,
                const std::string &Text) {
  std::string Err;
  Keep = parseModule(Ctx, Text, &Err);
  EXPECT_NE(Keep, nullptr) << Err;
  return Keep ? Keep->functions().front().get() : nullptr;
}

void expectCleanAndIdempotent(Function &F) {
  std::string Err;
  EXPECT_TRUE(verifyFunction(F, &Err)) << Err << printFunction(F);
  const std::string Once = printFunction(F);
  EXPECT_FALSE(hoistLoopInvariants(F))
      << "second run still changed:\n" << printFunction(F);
  EXPECT_EQ(printFunction(F), Once);
}

/// The block a given instruction's printed line appears under.
std::string blockOf(const std::string &Printed, const std::string &InstName) {
  std::string Block;
  size_t Pos = 0;
  while (Pos < Printed.size()) {
    size_t End = Printed.find('\n', Pos);
    if (End == std::string::npos)
      End = Printed.size();
    std::string Line = Printed.substr(Pos, End - Pos);
    if (!Line.empty() && Line.back() == ':' && Line[0] != ' ')
      Block = Line.substr(0, Line.size() - 1);
    if (Line.find("%" + InstName + " =") != std::string::npos)
      return Block;
    Pos = End + 1;
  }
  return "";
}

const char *SumLoop = R"(
func @f(i32 addrspace(1)* %out, i32 %n, i32 %t) -> void {
entry:
  br label %h
h:
  %iv = phi i32 [ 0, %entry ], [ %ivn, %b ]
  %acc = phi i32 [ 0, %entry ], [ %accn, %b ]
  %c = icmp slt i32 %iv, %t
  condbr i1 %c, label %b, label %x
b:
  %inv = mul i32 %n, 3
  %accn = add i32 %acc, %inv
  %ivn = add i32 %iv, 1
  br label %h
x:
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %acc, i32 addrspace(1)* %p
  ret
}
)";

TEST(LICMTest, HoistsInvariantToPreheader) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, SumLoop);
  EXPECT_TRUE(hoistLoopInvariants(*F));
  const std::string Out = printFunction(*F);
  EXPECT_EQ(blockOf(Out, "inv"), "entry") << Out;
  // The accumulator chain is loop-variant and must stay in the body.
  EXPECT_EQ(blockOf(Out, "accn"), "b") << Out;
  EXPECT_EQ(blockOf(Out, "ivn"), "b") << Out;
  expectCleanAndIdempotent(*F);
}

TEST(LICMTest, HoistsOutOfNestedLoopsInRounds) {
  Context Ctx;
  std::unique_ptr<Module> M;
  // %inv depends only on %n: it must climb from the inner body through
  // the outer loop into the true (outermost) preheader.
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out, i32 %n, i32 %t) -> void {
entry:
  br label %oh
oh:
  %oi = phi i32 [ 0, %entry ], [ %oin, %ox ]
  %oc = icmp slt i32 %oi, %t
  condbr i1 %oc, label %opre, label %done
opre:
  br label %ih
ih:
  %ii = phi i32 [ 0, %opre ], [ %iin, %ib ]
  %ic = icmp slt i32 %ii, %t
  condbr i1 %ic, label %ib, label %ox
ib:
  %inv = mul i32 %n, 5
  %v = add i32 %inv, %ii
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %v, i32 addrspace(1)* %p
  %iin = add i32 %ii, 1
  br label %ih
ox:
  %oin = add i32 %oi, 1
  br label %oh
done:
  ret
}
)");
  EXPECT_TRUE(hoistLoopInvariants(*F));
  EXPECT_EQ(blockOf(printFunction(*F), "inv"), "entry") << printFunction(*F);
  expectCleanAndIdempotent(*F);
}

// Negative: an expression using the induction variable is loop-variant.
TEST(LICMTest, DoesNotHoistVariantExpression) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out, i32 %n, i32 %t) -> void {
entry:
  br label %h
h:
  %iv = phi i32 [ 0, %entry ], [ %ivn, %b ]
  %c = icmp slt i32 %iv, %t
  condbr i1 %c, label %b, label %x
b:
  %var = mul i32 %iv, %n
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %var, i32 addrspace(1)* %p
  %ivn = add i32 %iv, 1
  br label %h
x:
  ret
}
)");
  EXPECT_TRUE(hoistLoopInvariants(*F)); // the gep (of two invariants) hoists
  const std::string Out = printFunction(*F);
  EXPECT_EQ(blockOf(Out, "var"), "b") << Out;
  EXPECT_EQ(blockOf(Out, "p"), "entry") << Out;
  expectCleanAndIdempotent(*F);
}

// Negative: loads and stores never move — there is no alias analysis, and
// a hoisted load could observe a different memory state.
TEST(LICMTest, DoesNotHoistMemoryOps) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out, i32 %t) -> void {
entry:
  %p = gep i32 addrspace(1)* %out, i32 0
  br label %h
h:
  %iv = phi i32 [ 0, %entry ], [ %ivn, %b ]
  %c = icmp slt i32 %iv, %t
  condbr i1 %c, label %b, label %x
b:
  %ld = load i32 addrspace(1)* %p
  %s = add i32 %ld, 1
  store i32 %s, i32 addrspace(1)* %p
  %ivn = add i32 %iv, 1
  br label %h
x:
  ret
}
)");
  EXPECT_FALSE(hoistLoopInvariants(*F));
  EXPECT_EQ(blockOf(printFunction(*F), "ld"), "b") << printFunction(*F);
}

} // namespace
