//===- fuzz_test.cpp - Differential fuzzing subsystem tests ----------------------===//
//
// Covers the generator (determinism, verifier cleanliness), the
// differential oracle (clean sweep, injected-bug detection), the greedy
// minimizer (end-to-end shrink via a deliberately broken transform), the
// repro file format, and regression repros for bugs the fuzzer flushed
// out (tests/repros/*.darm).
//
//===----------------------------------------------------------------------===//

#include "darm/analysis/Verifier.h"
#include "darm/core/CompileService.h"
#include "darm/core/DARMPass.h"
#include "darm/fuzz/DiffOracle.h"
#include "darm/fuzz/Minimizer.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/kernels/Benchmark.h"
#include "darm/sim/Simulator.h"
#include "darm/support/ErrorHandling.h"
#include "darm/transform/AlgebraicSimplify.h"
#include "darm/transform/DCE.h"
#include "darm/transform/LoopUnroll.h"
#include "darm/transform/SimplifyCFG.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <tuple>

using namespace darm;
using namespace darm::fuzz;

namespace {

TEST(Generator, DeterministicPerSeed) {
  for (uint64_t Seed : {0ull, 7ull, 123ull}) {
    Context C1, C2;
    Module M1(C1, "a"), M2(C2, "b");
    FuzzCase Case(Seed);
    std::string P1 = printFunction(*buildFuzzKernel(M1, Case));
    std::string P2 = printFunction(*buildFuzzKernel(M2, Case));
    EXPECT_EQ(P1, P2) << "seed " << Seed;
  }
}

TEST(Generator, VerifierCleanAcrossSeeds) {
  for (uint64_t Seed = 0; Seed < 50; ++Seed) {
    Context Ctx;
    Module M(Ctx, "gen");
    FuzzCase C(Seed);
    Function *F = buildFuzzKernel(M, C);
    std::string Err;
    EXPECT_TRUE(verifyFunction(*F, &Err))
        << "seed " << Seed << ": " << Err;
  }
}

TEST(Generator, GeometryIsSelfConsistent) {
  for (uint64_t Seed = 0; Seed < 50; ++Seed) {
    FuzzCase C(Seed);
    unsigned Total = C.Launch.GridDimX * C.Launch.BlockDimX;
    // Output regions are whole multiples of the thread count, so every
    // store slot is lane-private.
    EXPECT_EQ((C.IntElems - C.IntInputElems) % Total, 0u);
    EXPECT_EQ((C.FloatElems - C.FloatInputElems) % Total, 0u);
    EXPECT_EQ(C.SharedElems % C.Launch.BlockDimX, 0u);
    EXPECT_GE(C.IntElems - C.IntInputElems, Total);
  }
}

// The generator must actually exercise the shfl.sync construct, and the
// cases that do must be deterministic and oracle-clean like any other.
TEST(Generator, ShflSyncSeedsAreGeneratedAndDeterministic) {
  int64_t ShflSeed = -1;
  for (uint64_t Seed = 0; Seed < 200 && ShflSeed < 0; ++Seed) {
    Context Ctx;
    Module M(Ctx, "scan");
    FuzzCase C(Seed);
    if (printFunction(*buildFuzzKernel(M, C)).find("shfl.sync") !=
        std::string::npos)
      ShflSeed = static_cast<int64_t>(Seed);
  }
  ASSERT_GE(ShflSeed, 0) << "no seed in [0, 200) generated a shfl.sync";

  FuzzCase C(static_cast<uint64_t>(ShflSeed));
  Context C1, C2;
  Module M1(C1, "a"), M2(C2, "b");
  EXPECT_EQ(printFunction(*buildFuzzKernel(M1, C)),
            printFunction(*buildFuzzKernel(M2, C)));
  OracleResult R = runOracle(C);
  EXPECT_FALSE(R.Mismatch) << R.Config << ": " << R.Detail;
}

// Multi-launch seeds replay the same kernel over accumulating memory
// (decode-once/run-many). The replay must be deterministic, and the
// second launch must actually observe the first one's stores.
TEST(Generator, MultiLaunchSeedsAreGeneratedAndDeterministic) {
  int64_t MLSeed = -1;
  for (uint64_t Seed = 0; Seed < 100 && MLSeed < 0; ++Seed)
    if (FuzzCase(Seed).NumLaunches > 1)
      MLSeed = static_cast<int64_t>(Seed);
  ASSERT_GE(MLSeed, 0) << "no seed in [0, 100) is multi-launch";

  FuzzCase C(static_cast<uint64_t>(MLSeed));
  Context Ctx;
  Module M(Ctx, "ml");
  Function *F = buildFuzzKernel(M, C);

  auto Run = [&](const FuzzCase &Case) {
    GlobalMemory Mem;
    std::vector<uint64_t> Args = setupFuzzMemory(Case, Mem);
    std::string Fatal;
    SimStats S = simulateFuzzCase(*F, Case, Args, Mem, &Fatal);
    EXPECT_TRUE(Fatal.empty()) << Fatal;
    return std::pair<uint64_t, uint64_t>(S.InstructionsIssued,
                                         hashMemoryImage(Mem));
  };

  auto First = Run(C);
  auto Second = Run(C);
  EXPECT_EQ(First, Second) << "multi-launch replay is not deterministic";

  // One launch of the same kernel issues strictly less and (for any
  // kernel that reads back its own cells) ends in a different image.
  FuzzCase OneShot = C;
  OneShot.NumLaunches = 1;
  auto Single = Run(OneShot);
  EXPECT_LT(Single.first, First.first);

  // And the full oracle is clean across every config for this seed.
  OracleResult R = runOracle(C);
  EXPECT_FALSE(R.Mismatch) << R.Config << ": " << R.Detail;
}

// The meldable divergent-loop-pair shape (emitLoopPairDiamond): a
// divergent diamond whose arms each run a bounded per-lane-trip loop —
// the exact input the divergent-loop unroller converts into meldable
// branch divergence. The shape rides its own RNG stream, so it must not
// appear in the golden-pinned seeds, must appear nearby, and must stay
// deterministic and oracle-clean where it does.
TEST(Generator, LoopPairShapeSeedsAreGeneratedAndDeterministic) {
  // The claims golden pins seeds 0..7; the shape's gate salt was chosen
  // so none of them fire. This pin fails loudly if that drifts.
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    Context Ctx;
    Module M(Ctx, "pin");
    EXPECT_EQ(printFunction(*buildFuzzKernel(M, FuzzCase(Seed))).find("mtrip"),
              std::string::npos)
        << "seed " << Seed << " grew the loop-pair shape";
  }
  int64_t ShapeSeed = -1;
  for (uint64_t Seed = 8; Seed < 100 && ShapeSeed < 0; ++Seed) {
    Context Ctx;
    Module M(Ctx, "scan");
    if (printFunction(*buildFuzzKernel(M, FuzzCase(Seed))).find("mtrip") !=
        std::string::npos)
      ShapeSeed = static_cast<int64_t>(Seed);
  }
  ASSERT_GE(ShapeSeed, 0) << "no seed in [8, 100) generated a loop pair";

  FuzzCase C(static_cast<uint64_t>(ShapeSeed));
  Context C1, C2;
  Module M1(C1, "a"), M2(C2, "b");
  Function *F = buildFuzzKernel(M1, C);
  EXPECT_EQ(printFunction(*F), printFunction(*buildFuzzKernel(M2, C)));

  // The unroller must accept the generated loops — that is the point of
  // the shape — and leave verifier-clean IR behind.
  EXPECT_TRUE(unrollDivergentLoops(*F)) << printFunction(*F);
  std::string Err;
  EXPECT_TRUE(verifyFunction(*F, &Err)) << Err << printFunction(*F);

  // And the seed is clean across the whole config table (including the
  // lone-pass and attribution configs).
  OracleResult R = runOracle(C);
  EXPECT_FALSE(R.Mismatch) << R.Config << ": " << R.Detail;
}

TEST(Oracle, CleanSweep) {
  // The CI fuzz-smoke job sweeps hundreds of seeds through the darm_fuzz
  // tool; this in-suite slice keeps the oracle itself pinned by ctest.
  for (uint64_t Seed = 0; Seed < 40; ++Seed) {
    OracleResult R = runOracle(FuzzCase(Seed));
    EXPECT_FALSE(R.Mismatch) << "seed " << Seed << " config " << R.Config
                             << ": " << R.Detail << "\n"
                             << R.ReproIR;
  }
}

/// One sweep result in comparable form.
using SweepRow =
    std::tuple<uint64_t, bool, std::string, std::string, std::string>;

std::vector<SweepRow> collectSweep(unsigned Jobs,
                                   const std::vector<uint64_t> &Seeds,
                                   const OracleOptions &Opts,
                                   unsigned StopAfterFindings = ~0u) {
  ThreadPool Pool(Jobs);
  std::vector<SweepRow> Out;
  unsigned Findings = 0;
  sweepSeeds(Pool, Seeds, Opts,
             [&](uint64_t Seed, const OracleResult &R) {
               Out.emplace_back(Seed, R.Mismatch, R.Config, R.Detail,
                                R.ReproIR);
               if (R.Mismatch)
                 ++Findings;
               return Findings < StopAfterFindings;
             });
  return Out;
}

TEST(Oracle, SweepJobsInvariance) {
  // The acceptance bar for the parallel sweep engine: any --jobs value
  // reports the same seeds, verdicts, diagnostics and repro IR in the
  // same order as the sequential sweep (docs/performance.md).
  std::vector<uint64_t> Seeds;
  for (uint64_t S = 0; S < 30; ++S)
    Seeds.push_back(S);
  OracleOptions Opts;
  const std::vector<SweepRow> Seq = collectSweep(1, Seeds, Opts);
  ASSERT_EQ(Seq.size(), Seeds.size());
  EXPECT_EQ(collectSweep(4, Seeds, Opts), Seq);
}

/// Forward declaration (defined below for the injected-bug tests).
void deleteAllStores(Function &F);

TEST(Oracle, SweepJobsInvarianceWithFindingsAndEarlyStop) {
  // With a broken transform most seeds produce findings; the parallel
  // sweep must report the identical (ordered) finding list and stop at
  // the same seed the sequential max-failures cutoff stops at.
  std::vector<uint64_t> Seeds;
  for (uint64_t S = 0; S < 12; ++S)
    Seeds.push_back(S);
  OracleOptions Opts;
  Opts.Configs.push_back({"broken", deleteAllStores});
  Opts.RoundTrip = false;
  Opts.Minimize = false; // verdict identity is the point, not shrinking
  const std::vector<SweepRow> Seq = collectSweep(1, Seeds, Opts, 3);
  unsigned Findings = 0;
  for (const SweepRow &Row : Seq)
    Findings += std::get<1>(Row);
  EXPECT_EQ(Findings, 3u);
  EXPECT_EQ(collectSweep(4, Seeds, Opts, 3), Seq);
  EXPECT_EQ(collectSweep(8, Seeds, Opts, 3), Seq);
}

/// A deliberately broken "transform": deletes every store, which any
/// differential oracle worth its name must flag.
void deleteAllStores(Function &F) {
  std::vector<Instruction *> Doomed;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      if (isa<StoreInst>(I))
        Doomed.push_back(I);
  for (Instruction *I : Doomed)
    I->eraseFromParent();
}

TEST(Oracle, CatchesInjectedBugAndMinimizes) {
  FuzzCase C(0);
  OracleOptions Opts;
  Opts.Configs.push_back({"broken", deleteAllStores});
  Opts.RoundTrip = false;
  OracleResult R = runOracle(C, Opts);
  ASSERT_TRUE(R.Mismatch);
  EXPECT_EQ(R.Config, "broken");
  EXPECT_NE(R.Detail.find("ref="), std::string::npos) << R.Detail;
  ASSERT_FALSE(R.ReproIR.empty());

  // The minimized repro must still be valid, parseable IR...
  Context Ctx;
  std::string Err;
  auto M = parseModule(Ctx, R.ReproIR, &Err);
  ASSERT_NE(M, nullptr) << Err << "\n" << R.ReproIR;
  EXPECT_TRUE(verifyFunction(*M->functions().front(), &Err)) << Err;

  // ... and substantially smaller than the original kernel.
  Context OCtx;
  Module OM(OCtx, "orig");
  size_t OrigSize = buildFuzzKernel(OM, C)->getInstructionCount();
  size_t MinSize = M->functions().front()->getInstructionCount();
  EXPECT_LT(MinSize, OrigSize / 2)
      << "minimizer barely reduced: " << MinSize << " vs " << OrigSize;
}

TEST(Oracle, CachedSweepMatchesUncachedIncludingFindings) {
  // The compile-cache path (OracleOptions::Cache, docs/caching.md)
  // evaluates the deserialized artifact on hit and miss alike, so a
  // cached sweep — cold or warm — must report the exact finding stream
  // of an uncached one, broken transforms included.
  std::vector<uint64_t> Seeds;
  for (uint64_t S = 0; S < 10; ++S)
    Seeds.push_back(S);
  OracleOptions Base;
  Base.Minimize = false; // verdict identity is the point, not shrinking
  Base.Configs.push_back({"darm", [](Function &F) { runDARM(F); }});
  Base.Configs.push_back({"broken", deleteAllStores});
  const std::vector<SweepRow> Ref = collectSweep(1, Seeds, Base);

  CompileService Cache;
  OracleOptions Cached = Base;
  Cached.Cache = &Cache;
  EXPECT_EQ(collectSweep(4, Seeds, Cached), Ref); // cold: all misses
  const CompileService::CacheStats Cold = Cache.stats();
  EXPECT_GT(Cold.Misses, 0u);
  EXPECT_EQ(Cold.Hits, 0u);
  EXPECT_EQ(collectSweep(4, Seeds, Cached), Ref); // warm: served from cache
  const CompileService::CacheStats Warm = Cache.stats();
  EXPECT_GT(Warm.Hits, 0u);
  EXPECT_EQ(Warm.Misses, Cold.Misses)
      << "warm pass should not have compiled anything new";
}

TEST(Oracle, SerializeAxisReproChecksClean) {
  // The "serialize" axis travels through checkRepro like any other
  // config name (darm_fuzz --repro on a serialize finding).
  FuzzCase C(7);
  Context Ctx;
  Module M(Ctx, "k");
  Function *F = buildFuzzKernel(M, C);
  OracleResult R = checkRepro(*F, C, "serialize");
  EXPECT_FALSE(R.Mismatch) << R.Detail;
}

/// A sabotaged canonicalization pass: the algebraic strength reduction
/// with a classic off-by-one — urem x, 2^k becomes `and x, 2^k` instead
/// of `and x, 2^k - 1`. Every generated kernel clamps its input-region
/// loads with urem-by-power-of-two, so the bad mask redirects loads and
/// corrupts the checksum chain.
void brokenStrengthReduce(Function &F) {
  std::vector<Instruction *> Doomed;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      if (I->getOpcode() == Opcode::URem)
        if (auto *C = dyn_cast<ConstantInt>(I->getOperand(1)))
          if (C->getValue() > 1 && (C->getValue() & (C->getValue() - 1)) == 0)
            Doomed.push_back(I);
  for (Instruction *I : Doomed) {
    auto *Bad =
        new BinaryInst(Opcode::And, I->getOperand(0), I->getOperand(1));
    I->getParent()->insert(I->getIterator(), Bad);
    Bad->setName(F.uniqueName("bad"));
    I->replaceAllUsesWith(Bad);
    I->getParent()->erase(I);
  }
}

// ISSUE satellite: a miscompile injected into ONE canonicalization pass
// must be caught by that pass's differential axis and travel end-to-end
// through the minimizer, exactly like a melder bug.
TEST(Oracle, CatchesMiscompileInCanonicalizationPass) {
  FuzzCase C(0);
  OracleOptions Opts;
  Opts.Configs.push_back({"broken-algebraic", brokenStrengthReduce});
  Opts.RoundTrip = false;
  OracleResult R = runOracle(C, Opts);
  ASSERT_TRUE(R.Mismatch);
  EXPECT_EQ(R.Config, "broken-algebraic");
  ASSERT_FALSE(R.ReproIR.empty());

  // The minimized repro parses, verifies, and shrank substantially.
  Context Ctx;
  std::string Err;
  auto M = parseModule(Ctx, R.ReproIR, &Err);
  ASSERT_NE(M, nullptr) << Err << "\n" << R.ReproIR;
  EXPECT_TRUE(verifyFunction(*M->functions().front(), &Err)) << Err;
  Context OCtx;
  Module OM(OCtx, "orig");
  EXPECT_LT(M->functions().front()->getInstructionCount(),
            buildFuzzKernel(OM, C)->getInstructionCount() / 2);

  // The genuine pass on the same seed is clean — the finding is the
  // injected bug, not the axis.
  OracleOptions Good;
  Good.Configs.push_back(
      {"algebraic-good", [](Function &F) { simplifyAlgebraic(F); }});
  Good.RoundTrip = false;
  EXPECT_FALSE(runOracle(C, Good).Mismatch);
}

/// A "melder" that adds a useless divergent diamond before the return:
/// memory is untouched (both arms are empty), so the memory-diff axes
/// stay clean — only the claims axis can catch the extra dynamic
/// divergent branch. Runs the real cleanup first so the counters match
/// the oracle's claims baseline except for the injected branch.
void injectDivergentBranch(Function &F) {
  simplifyCFG(F);
  eliminateDeadCode(F);
  BasicBlock *RetBB = nullptr;
  for (BasicBlock *BB : F)
    if (isa<RetInst>(BB->getTerminator()))
      RetBB = BB;
  ASSERT_NE(RetBB, nullptr);
  RetBB->getTerminator()->eraseFromParent();

  IRBuilder B(F.getContext());
  BasicBlock *T = F.createBlock("inj.t");
  BasicBlock *E = F.createBlock("inj.e");
  BasicBlock *J = F.createBlock("inj.j");
  B.setInsertPoint(RetBB);
  Value *Lane = B.createCall(Intrinsic::LaneId, {}, "inj.lane");
  Value *Cond = B.createICmp(ICmpPred::EQ, B.createAnd(Lane, B.getInt32(1)),
                             B.getInt32(0), "inj.c");
  B.createCondBr(Cond, T, E);
  B.setInsertPoint(T);
  B.createBr(J);
  B.setInsertPoint(E);
  B.createBr(J);
  B.setInsertPoint(J);
  B.createRet();
}

TEST(Oracle, CatchesClaimsRegressionAndMinimizes) {
  FuzzCase C(0);
  OracleOptions Opts;
  Opts.Configs.push_back({"inject-divergence", injectDivergentBranch});
  Opts.RoundTrip = false;
  Opts.ClaimsOpts = check::ClaimsOptions(); // strict: any extra branch trips
  OracleResult R = runOracle(C, Opts);
  ASSERT_TRUE(R.Mismatch);
  EXPECT_EQ(R.Config, "inject-divergence");
  EXPECT_NE(R.Detail.find("claims: divergent_branches"), std::string::npos)
      << R.Detail;
  // The finding minimized like any memory mismatch would.
  ASSERT_FALSE(R.ReproIR.empty());
  Context Ctx;
  std::string Err;
  auto M = parseModule(Ctx, R.ReproIR, &Err);
  ASSERT_NE(M, nullptr) << Err;
  Context OCtx;
  Module OM(OCtx, "orig");
  EXPECT_LT(M->functions().front()->getInstructionCount(),
            buildFuzzKernel(OM, C)->getInstructionCount() / 2);
  // With the claims axis off, the injected config is indistinguishable
  // from a correct transform.
  Opts.Claims = false;
  EXPECT_FALSE(runOracle(C, Opts).Mismatch);
}

TEST(Oracle, ReproHeaderRoundTrips) {
  FuzzCase C(77);
  OracleResult R;
  R.Mismatch = true;
  R.Config = "darm-nounpred";
  R.Detail = "i32[3]: ref=0x1 got=0x2";
  {
    Context Ctx;
    Module M(Ctx, "m");
    R.ReproIR = printFunction(*buildFuzzKernel(M, C));
  }
  std::string Text = formatRepro(C, R);

  // The whole file parses directly (headers are IR comments).
  Context Ctx;
  std::string Err;
  ASSERT_NE(parseModule(Ctx, Text, &Err), nullptr) << Err;

  FuzzCase C2;
  std::string Config;
  ASSERT_TRUE(parseReproHeader(Text, C2, Config));
  EXPECT_EQ(C2.Seed, C.Seed);
  EXPECT_EQ(Config, "darm-nounpred");
  EXPECT_EQ(C2.Launch.GridDimX, C.Launch.GridDimX);
  EXPECT_EQ(C2.Launch.BlockDimX, C.Launch.BlockDimX);
  EXPECT_EQ(C2.NumLaunches, C.NumLaunches);
  EXPECT_EQ(C2.IntElems, C.IntElems);
  EXPECT_EQ(C2.IntInputElems, C.IntInputElems);
  EXPECT_EQ(C2.FloatElems, C.FloatElems);
  EXPECT_EQ(C2.FloatInputElems, C.FloatInputElems);
  EXPECT_EQ(C2.SharedElems, C.SharedElems);
}

TEST(Minimizer, EditsApplyPositionally) {
  FuzzCase C(3);
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildFuzzKernel(M, C);
  size_t Before = F->getInstructionCount();

  // Deleting entry instruction #0 (a value-producing call) must succeed
  // and leave valid IR.
  Edit E{Edit::DeleteInst, "entry", 0, 0};
  ASSERT_TRUE(applyEdit(*F, E));
  std::string Err;
  EXPECT_TRUE(verifyFunction(*F, &Err)) << Err;
  EXPECT_EQ(F->getInstructionCount(), Before - 1);

  // A replay through buildEdited produces the same function text.
  Context Ctx2;
  Module M2(Ctx2, "m2");
  Function *F2 = buildEdited(M2, C, {E});
  ASSERT_NE(F2, nullptr);
  EXPECT_EQ(printFunction(*F2), printFunction(*F));

  // Out-of-shape edits are rejected, not misapplied.
  EXPECT_FALSE(applyEdit(*F, {Edit::DeleteInst, "nosuchblock", 0, 0}));
  // CollapseBranch needs a condbr terminator; the ret block has none.
  const BasicBlock *RetBB = nullptr;
  for (const BasicBlock *BB : *F)
    if (isa<RetInst>(BB->getTerminator()))
      RetBB = BB;
  ASSERT_NE(RetBB, nullptr);
  EXPECT_FALSE(applyEdit(*F, {Edit::CollapseBranch, RetBB->getName(), 0, 0}));
}

// Bugs the fuzzer flushed out stay fixed: each checked-in repro must now
// pass its recorded failing config.
class ReproRegression : public ::testing::TestWithParam<const char *> {};

TEST_P(ReproRegression, StaysFixed) {
  std::string Path = std::string(DARM_REPRO_DIR) + "/" + GetParam();
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "missing repro file " << Path;
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  FuzzCase C;
  std::string Config;
  ASSERT_TRUE(parseReproHeader(Text, C, Config)) << Path;
  Context Ctx;
  std::string Err;
  auto M = parseModule(Ctx, Text, &Err);
  ASSERT_NE(M, nullptr) << Err;
  OracleResult R = checkRepro(*M->functions().front(), C, Config);
  EXPECT_FALSE(R.Mismatch) << R.Config << ": " << R.Detail;

  // And the originating seed is clean end-to-end under the full oracle.
  OracleResult Full = runOracle(FuzzCase(C.Seed));
  EXPECT_FALSE(Full.Mismatch)
      << Full.Config << ": " << Full.Detail << "\n" << Full.ReproIR;
}

INSTANTIATE_TEST_SUITE_P(CheckedIn, ReproRegression,
                         ::testing::Values("fuzz20.darm-nounpred.darm"));

// The seed-20 bug distilled: a gap store whose address chain melds with
// the other arm's address computation must not be fully predicated — the
// disabled lanes would store through the other side's (here: far
// out-of-bounds) index. Built explicitly so the regression does not
// depend on generator internals staying byte-stable.
TEST(FullPredication, SideDependentStoreAddressIsGuarded) {
  const char *Text =
      "func @sidedep(i32 addrspace(1)* %buf) -> void {\n"
      "  shared @sh = i32[64]\n"
      "entry:\n"
      "  %lane = call i32 @darm.laneid()\n"
      "  %m = and i32 %lane, 3\n"
      "  %c = icmp slt i32 %m, 2\n"
      "  condbr i1 %c, label %t, label %e\n"
      "t:\n"
      "  %it = add i32 %lane, 9600\n"  // global-ish index, OOB as LDS
      "  %pt = gep i32 addrspace(1)* %buf, i32 %it\n"
      "  %vt = load i32 addrspace(1)* %pt\n"
      "  br label %j\n"
      "e:\n"
      "  %ie = add i32 %lane, 0\n"     // aligns with %it; LDS index
      "  %pe = gep i32 addrspace(3)* @sh, i32 %ie\n"
      "  store i32 7, i32 addrspace(3)* %pe\n"
      "  br label %j\n"
      "j:\n"
      "  %r = phi i32 [ %vt, %t ], [ 5, %e ]\n"
      "  %o = gep i32 addrspace(1)* %buf, i32 %lane\n"
      "  store i32 %r, i32 addrspace(1)* %o\n"
      "  ret\n"
      "}\n";
  Context Ctx;
  std::string Err;
  auto M = parseModule(Ctx, Text, &Err);
  ASSERT_NE(M, nullptr) << Err;
  Function *F = M->functions().front().get();

  DARMConfig Cfg;
  Cfg.EnableUnpredication = false;
  Cfg.ProfitThreshold = 0.0;
  Cfg.MinAbsoluteSaving = 0.0;
  runDARM(*F, Cfg);
  ASSERT_TRUE(verifyFunction(*F, &Err)) << Err << "\n" << printFunction(*F);

  // Simulate; before the fix this aborted with an out-of-LDS-bounds
  // store. Route reportFatalError into a gtest failure instead of exit.
  GlobalMemory Mem;
  uint64_t Buf = Mem.allocate(64 * 4);
  struct Thrower {
    [[noreturn]] static void Throw(const char *Msg) {
      throw std::runtime_error(Msg);
    }
  };
  FatalErrorHandler Prev = setFatalErrorHandler(Thrower::Throw);
  try {
    runKernel(*F, {1, 32}, {Buf}, Mem);
  } catch (const std::exception &E) {
    setFatalErrorHandler(Prev);
    FAIL() << "simulator aborted: " << E.what() << "\n" << printFunction(*F);
  }
  setFatalErrorHandler(Prev);

  // Lanes 0/1 took the true arm (phi selects the load), lanes 2/3 the
  // else arm (constant 5).
  for (unsigned L = 0; L < 32; ++L) {
    int32_t Got = Mem.readI32(Buf + L * 4);
    int32_t Want = (L & 3) < 2 ? 0 /* OOB load reads 0 */ : 5;
    EXPECT_EQ(Got, Want) << "lane " << L;
  }
}

} // namespace
