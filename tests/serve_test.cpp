//===- serve_test.cpp - darmd protocol + on-disk store crash safety -----------===//
//
// Pins the serving layer (docs/caching.md): the DRMA artifact container
// and DRMQ/DRMR wire codecs round-trip and reject corruption, the
// serveStream loop answers byte-identically to in-process
// compileToArtifact, and the on-disk artifact store survives every
// crash shape — truncated files, flipped bytes, wrong magic, stale
// versions, torn writes, concurrent writers racing one key — as a cold
// miss that recompiles and re-persists, never an abort, never a wrong
// artifact.
//
//===----------------------------------------------------------------------===//

#include "darm/serve/ArtifactStore.h"
#include "darm/serve/Server.h"

#include "darm/core/CompileService.h"
#include "darm/fuzz/KernelGenerator.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/support/Hashing.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace darm;
using namespace darm::serve;

namespace {

Function *buildKernel(Module &M, uint64_t Seed) {
  fuzz::FuzzCase C(Seed);
  Function *F = fuzz::buildFuzzKernel(M, C);
  EXPECT_NE(F, nullptr);
  return F;
}

CompiledModule makeArtifact(uint64_t Seed, bool IncludeProgram = true) {
  Context Ctx;
  Module M(Ctx, "serve");
  Function *F = buildKernel(M, Seed);
  return compileToArtifact(*F, DARMConfig(), IncludeProgram);
}

/// A unique fresh directory per test under the build tree.
std::string freshDir(const char *Tag) {
  std::string D = std::string("serve_test_") + Tag + ".dir";
  std::system(("rm -rf " + D).c_str());
  return D;
}

void writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  OS.write(reinterpret_cast<const char *>(Bytes.data()),
           static_cast<std::streamsize>(Bytes.size()));
}

//===----------------------------------------------------------------------===//
// DRMA artifact container
//===----------------------------------------------------------------------===//

TEST(ArtifactCodec, RoundTripsEveryField) {
  CompiledModule Art = makeArtifact(11);
  Art.Stats.Iterations = 3;
  Art.Stats.RegionsMelded = 2;
  const std::vector<uint8_t> Bytes = serializeCompiledModule(Art);

  CompiledModule Back;
  std::string Err;
  ASSERT_TRUE(deserializeCompiledModule(Bytes, Back, &Err)) << Err;
  EXPECT_EQ(Back.IRHash, Art.IRHash);
  EXPECT_EQ(Back.Fingerprint, Art.Fingerprint);
  EXPECT_EQ(Back.ModuleBytes, Art.ModuleBytes);
  EXPECT_EQ(Back.ProgramBytes, Art.ProgramBytes);
  EXPECT_EQ(Back.CompileError, Art.CompileError);
  EXPECT_EQ(Back.Stats.Iterations, Art.Stats.Iterations);
  EXPECT_EQ(Back.Stats.RegionsMelded, Art.Stats.RegionsMelded);
  // Decode-reencode is byte-identical: the container is canonical.
  EXPECT_EQ(serializeCompiledModule(Back), Bytes);
}

TEST(ArtifactCodec, RejectsEveryTruncation) {
  const std::vector<uint8_t> Bytes = serializeCompiledModule(makeArtifact(12));
  CompiledModule Out;
  for (size_t Len = 0; Len < Bytes.size(); ++Len)
    EXPECT_FALSE(deserializeCompiledModule(Bytes.data(), Len, Out))
        << "prefix of " << Len << " bytes must not decode";
}

TEST(ArtifactCodec, RejectsEveryFlippedByte) {
  // The trailing whole-image checksum makes this exhaustive guarantee
  // possible: a flip in a counter varint or deep in the module payload
  // decodes structurally fine but must still read as corrupt.
  const std::vector<uint8_t> Bytes = serializeCompiledModule(makeArtifact(13));
  CompiledModule Out;
  for (size_t I = 0; I < Bytes.size(); ++I) {
    std::vector<uint8_t> Bad = Bytes;
    Bad[I] ^= 0x40;
    EXPECT_FALSE(deserializeCompiledModule(Bad, Out))
        << "flipped byte " << I << " must not decode";
  }
}

TEST(ArtifactCodec, RejectsTrailingGarbage) {
  std::vector<uint8_t> Bytes = serializeCompiledModule(makeArtifact(14));
  Bytes.push_back(0);
  CompiledModule Out;
  EXPECT_FALSE(deserializeCompiledModule(Bytes, Out));
}

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

TEST(Protocol, RequestRoundTrip) {
  Context Ctx;
  Module M(Ctx, "req");
  Function *F = buildKernel(M, 21);

  CompileRequest Req;
  Req.Cfg = DARMConfig::withCanonicalization();
  Req.Cfg.ProfitThreshold = 0.125;
  Req.Cfg.MaxIterations = 9;
  Req.IncludeProgram = false;
  Req.IRText = printFunction(*F);

  CompileRequest Back;
  std::string Err;
  const std::vector<uint8_t> Frame = encodeRequest(Req);
  ASSERT_TRUE(decodeRequest(Frame.data(), Frame.size(), Back, &Err)) << Err;
  // The config codec is field-exact: equal fingerprints, not just
  // equal-ish structs.
  EXPECT_EQ(configFingerprint(Back.Cfg), configFingerprint(Req.Cfg));
  EXPECT_EQ(Back.IncludeProgram, Req.IncludeProgram);
  EXPECT_EQ(Back.IRText, Req.IRText);
}

TEST(Protocol, RequestRejectsCorruption) {
  CompileRequest Req;
  Req.IRText = "kernel @k() { entry: ret }";
  std::vector<uint8_t> Frame = encodeRequest(Req);
  CompileRequest Out;

  for (size_t Len = 0; Len < Frame.size(); ++Len)
    EXPECT_FALSE(decodeRequest(Frame.data(), Len, Out));
  {
    std::vector<uint8_t> Bad = Frame;
    Bad[0] = 'X'; // magic
    EXPECT_FALSE(decodeRequest(Bad.data(), Bad.size(), Out));
  }
  {
    std::vector<uint8_t> Bad = Frame;
    Bad[4] ^= 0xff; // version
    EXPECT_FALSE(decodeRequest(Bad.data(), Bad.size(), Out));
  }
  {
    std::vector<uint8_t> Bad = Frame;
    Bad.push_back(0); // trailing garbage
    EXPECT_FALSE(decodeRequest(Bad.data(), Bad.size(), Out));
  }
}

TEST(Protocol, ResponseRoundTripOkAndError) {
  {
    CompileResponse Resp;
    Resp.Ok = true;
    Resp.Origin = ServeOrigin::DiskHit;
    Resp.Art = makeArtifact(22);
    const std::vector<uint8_t> Frame = encodeResponse(Resp);
    CompileResponse Back;
    std::string Err;
    ASSERT_TRUE(decodeResponse(Frame.data(), Frame.size(), Back, &Err)) << Err;
    EXPECT_TRUE(Back.Ok);
    EXPECT_EQ(Back.Origin, ServeOrigin::DiskHit);
    EXPECT_EQ(serializeCompiledModule(Back.Art),
              serializeCompiledModule(Resp.Art));
  }
  {
    CompileResponse Resp;
    Resp.Error = "parse error: nope";
    const std::vector<uint8_t> Frame = encodeResponse(Resp);
    CompileResponse Back;
    ASSERT_TRUE(decodeResponse(Frame.data(), Frame.size(), Back));
    EXPECT_FALSE(Back.Ok);
    EXPECT_EQ(Back.Error, Resp.Error);
  }
}

TEST(Protocol, FramesOverSocketpair) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  const std::vector<uint8_t> Payload = {1, 2, 3, 250, 251, 252};
  ASSERT_TRUE(writeFrame(Fds[0], Payload));
  std::vector<uint8_t> Back;
  bool CleanEof = true;
  ASSERT_TRUE(readFrame(Fds[1], Back, &CleanEof));
  EXPECT_EQ(Back, Payload);
  EXPECT_FALSE(CleanEof);
  ::close(Fds[0]);
  EXPECT_FALSE(readFrame(Fds[1], Back, &CleanEof));
  EXPECT_TRUE(CleanEof); // EOF at a frame boundary, not a torn frame
  ::close(Fds[1]);
}

//===----------------------------------------------------------------------===//
// serveStream end to end
//===----------------------------------------------------------------------===//

TEST(ServeStream, ByteIdenticalToInProcessCompile) {
  Context Ctx;
  Module M(Ctx, "serve");
  Function *F = buildKernel(M, 31);
  const std::vector<uint8_t> Expect =
      serializeCompiledModule(compileToArtifact(*F, DARMConfig()));

  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  CompileService Svc;
  ServeCounters Counters;
  std::thread Server([&] {
    serveStream(Fds[1], Fds[1], Svc, &Counters);
    ::close(Fds[1]);
  });

  CompileRequest Req;
  Req.IRText = printFunction(*F);
  CompileResponse Resp;
  std::string Err;
  ASSERT_TRUE(roundTrip(Fds[0], Req, Resp, &Err)) << Err;
  ASSERT_TRUE(Resp.Ok) << Resp.Error;
  EXPECT_EQ(Resp.Origin, ServeOrigin::Compiled);
  EXPECT_EQ(serializeCompiledModule(Resp.Art), Expect);

  // The duplicate is a memory hit with the same bytes.
  ASSERT_TRUE(roundTrip(Fds[0], Req, Resp, &Err)) << Err;
  ASSERT_TRUE(Resp.Ok);
  EXPECT_EQ(Resp.Origin, ServeOrigin::MemoryHit);
  EXPECT_EQ(serializeCompiledModule(Resp.Art), Expect);

  ::close(Fds[0]);
  Server.join();
  EXPECT_EQ(Counters.Requests.load(), 2u);
  EXPECT_EQ(Counters.Compiled.load(), 1u);
  EXPECT_EQ(Counters.MemoryHits.load(), 1u);
}

TEST(ServeStream, BadIRIsPerRequestErrorSessionContinues) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  CompileService Svc;
  std::thread Server([&] {
    serveStream(Fds[1], Fds[1], Svc);
    ::close(Fds[1]);
  });

  CompileRequest Bad;
  Bad.IRText = "this is not IR";
  CompileResponse Resp;
  std::string Err;
  ASSERT_TRUE(roundTrip(Fds[0], Bad, Resp, &Err)) << Err;
  EXPECT_FALSE(Resp.Ok);
  EXPECT_NE(Resp.Error.find("parse error"), std::string::npos);

  // The session survives a bad request: a good one still answers.
  Context Ctx;
  Module M(Ctx, "after");
  Function *F = buildKernel(M, 32);
  CompileRequest Good;
  Good.IRText = printFunction(*F);
  ASSERT_TRUE(roundTrip(Fds[0], Good, Resp, &Err)) << Err;
  EXPECT_TRUE(Resp.Ok) << Resp.Error;

  ::close(Fds[0]);
  Server.join();
}

//===----------------------------------------------------------------------===//
// FileArtifactStore crash safety
//===----------------------------------------------------------------------===//

class ArtifactStoreTest : public ::testing::Test {
protected:
  /// Each test gets a fresh store dir named after the test.
  std::string Dir;
  void SetUp() override {
    Dir = freshDir(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  void TearDown() override { std::system(("rm -rf " + Dir).c_str()); }
};

TEST_F(ArtifactStoreTest, StoreLoadRoundTrip) {
  FileArtifactStore Store(Dir);
  ASSERT_TRUE(Store.valid());
  const CompiledModule Art = makeArtifact(41);
  Store.store(Art);
  auto Back = Store.load(Art.IRHash, Art.Fingerprint, /*NeedProgram=*/true);
  ASSERT_NE(Back, nullptr);
  EXPECT_EQ(serializeCompiledModule(*Back), serializeCompiledModule(Art));
  EXPECT_EQ(Store.stats().Stores, 1u);
  EXPECT_EQ(Store.stats().Loads, 1u);

  // Write-once: storing the same artifact again is a skip, not a write.
  Store.store(Art);
  EXPECT_EQ(Store.stats().Stores, 1u);
  EXPECT_EQ(Store.stats().StoreSkips, 1u);
}

TEST_F(ArtifactStoreTest, AbsentKeyIsMiss) {
  FileArtifactStore Store(Dir);
  EXPECT_EQ(Store.load(0x1234, "nope", true), nullptr);
  EXPECT_EQ(Store.stats().LoadMisses, 1u);
}

TEST_F(ArtifactStoreTest, TruncatedFileIsMissAndHeals) {
  FileArtifactStore Store(Dir);
  const CompiledModule Art = makeArtifact(42);
  Store.store(Art);
  const std::string Path = Store.pathFor(Art.IRHash, Art.Fingerprint);
  const std::vector<uint8_t> Full = serializeCompiledModule(Art);

  for (size_t Len : {size_t(0), size_t(3), Full.size() / 2, Full.size() - 1}) {
    writeFile(Path, std::vector<uint8_t>(Full.begin(), Full.begin() + Len));
    EXPECT_EQ(Store.load(Art.IRHash, Art.Fingerprint, true), nullptr)
        << "truncation to " << Len << " bytes must miss";
    // The recompile's store() replaces the corrupt incumbent — the heal
    // path a real daemon takes right after the miss.
    Store.store(Art);
    EXPECT_NE(Store.load(Art.IRHash, Art.Fingerprint, true), nullptr);
  }
}

TEST_F(ArtifactStoreTest, FlippedBytesAreMisses) {
  FileArtifactStore Store(Dir);
  const CompiledModule Art = makeArtifact(43);
  Store.store(Art);
  const std::string Path = Store.pathFor(Art.IRHash, Art.Fingerprint);
  const std::vector<uint8_t> Full = serializeCompiledModule(Art);
  // Every 7th offset keeps the sweep fast while still crossing the
  // magic, header, payload, counter and checksum regions.
  for (size_t I = 0; I < Full.size(); I += 7) {
    std::vector<uint8_t> Bad = Full;
    Bad[I] ^= 0x08;
    writeFile(Path, Bad);
    EXPECT_EQ(Store.load(Art.IRHash, Art.Fingerprint, true), nullptr)
        << "flipped byte " << I << " must miss";
  }
}

TEST_F(ArtifactStoreTest, WrongMagicAndStaleVersionAreMisses) {
  FileArtifactStore Store(Dir);
  const CompiledModule Art = makeArtifact(44);
  Store.store(Art);
  const std::string Path = Store.pathFor(Art.IRHash, Art.Fingerprint);
  const std::vector<uint8_t> Full = serializeCompiledModule(Art);
  {
    std::vector<uint8_t> Bad = Full;
    Bad[0] = 'X'; // not DRMA — e.g. a stray file with a colliding name
    writeFile(Path, Bad);
    EXPECT_EQ(Store.load(Art.IRHash, Art.Fingerprint, true), nullptr);
  }
  {
    std::vector<uint8_t> Bad = Full;
    Bad[4] = 0xee; // a future/stale format version
    Bad[5] = 0xee;
    writeFile(Path, Bad);
    EXPECT_EQ(Store.load(Art.IRHash, Art.Fingerprint, true), nullptr);
  }
}

TEST_F(ArtifactStoreTest, MiskeyedFileIsMiss) {
  // A valid artifact sitting at the wrong path (filename-hash collision,
  // a copied/renamed file): the key inside the container must win.
  FileArtifactStore Store(Dir);
  const CompiledModule A = makeArtifact(45);
  const CompiledModule B = makeArtifact(46);
  ASSERT_NE(A.IRHash, B.IRHash);
  Store.store(A);
  writeFile(Store.pathFor(B.IRHash, B.Fingerprint),
            serializeCompiledModule(A));
  EXPECT_EQ(Store.load(B.IRHash, B.Fingerprint, true), nullptr);
  // The real key still loads fine.
  EXPECT_NE(Store.load(A.IRHash, A.Fingerprint, true), nullptr);
}

TEST_F(ArtifactStoreTest, TornWriteSweptOnOpen) {
  // A writer killed mid-store leaves only a temp file (the rename never
  // happened). A fresh store over the directory sweeps it and the key
  // reads as absent.
  {
    FileArtifactStore Store(Dir);
    ASSERT_TRUE(Store.valid());
  }
  writeFile(Dir + "/.tmp-dead-writer", {0x12, 0x34});
  const CompiledModule Art = makeArtifact(47);
  FileArtifactStore Store(Dir);
  EXPECT_EQ(Store.load(Art.IRHash, Art.Fingerprint, true), nullptr);
  struct stat St;
  EXPECT_NE(::stat((Dir + "/.tmp-dead-writer").c_str(), &St), 0)
      << "temp droppings must be swept on open";
}

TEST_F(ArtifactStoreTest, ConcurrentWritersOneKey) {
  // N threads race store() on one key; compiles are deterministic so
  // every writer carries the same bytes — whichever rename lands, the
  // file must be complete and valid, and later loads must succeed.
  FileArtifactStore Store(Dir);
  const CompiledModule Art = makeArtifact(48);
  std::vector<std::thread> Writers;
  for (int I = 0; I < 8; ++I)
    Writers.emplace_back([&] { Store.store(Art); });
  for (std::thread &T : Writers)
    T.join();
  auto Back = Store.load(Art.IRHash, Art.Fingerprint, true);
  ASSERT_NE(Back, nullptr);
  EXPECT_EQ(serializeCompiledModule(*Back), serializeCompiledModule(Art));
  // No temp droppings survive the races.
  FileArtifactStore Fresh(Dir);
  EXPECT_NE(Fresh.load(Art.IRHash, Art.Fingerprint, true), nullptr);
}

TEST_F(ArtifactStoreTest, UnusableDirectoryDegradesToMisses) {
  FileArtifactStore Store("/dev/null/not-a-dir");
  EXPECT_FALSE(Store.valid());
  const CompiledModule Art = makeArtifact(49);
  Store.store(Art); // silently dropped
  EXPECT_EQ(Store.load(Art.IRHash, Art.Fingerprint, true), nullptr);
}

//===----------------------------------------------------------------------===//
// CompileService + persistence integration
//===----------------------------------------------------------------------===//

TEST_F(ArtifactStoreTest, ServiceWarmStartsFromDisk) {
  Context Ctx;
  Module M(Ctx, "persist");
  Function *F = buildKernel(M, 51);

  CompileService::Artifact ColdArt;
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CacheSource Src = CacheSource::MemoryHit;
    ColdArt = Svc.getOrCompile(*F, DARMConfig(), true, &Src);
    EXPECT_EQ(Src, CacheSource::Compiled);
    EXPECT_EQ(Store.stats().Stores, 1u);
  }
  // The restart: a fresh service over the same directory serves the key
  // from disk — zero recompiles — and the artifact is byte-identical.
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CacheSource Src = CacheSource::Compiled;
    CompileService::Artifact Warm = Svc.getOrCompile(*F, DARMConfig(), true, &Src);
    EXPECT_EQ(Src, CacheSource::DiskHit);
    EXPECT_EQ(serializeCompiledModule(*Warm), serializeCompiledModule(*ColdArt));
    CompileService::CacheStats St = Svc.stats();
    EXPECT_EQ(St.Misses, 0u);
    EXPECT_EQ(St.DiskHits, 1u);
    // The disk hit was promoted into memory: the duplicate is a pure
    // memory hit, no second disk read.
    Svc.getOrCompile(*F, DARMConfig(), true, &Src);
    EXPECT_EQ(Src, CacheSource::MemoryHit);
    EXPECT_EQ(Store.stats().Loads, 1u);
  }
}

TEST_F(ArtifactStoreTest, ServiceRecompilesOverCorruptFile) {
  Context Ctx;
  Module M(Ctx, "heal");
  Function *F = buildKernel(M, 52);

  std::string Path;
  std::vector<uint8_t> Expect;
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CompileService::Artifact Art = Svc.getOrCompile(*F, DARMConfig());
    Expect = serializeCompiledModule(*Art);
    Path = Store.pathFor(Art->IRHash, Art->Fingerprint);
  }
  // Corrupt the persisted file (a torn rename, a bad disk)...
  std::vector<uint8_t> Bad(Expect.begin(), Expect.begin() + Expect.size() / 3);
  writeFile(Path, Bad);
  // ...the restarted service misses, recompiles, answers correctly, and
  // re-persists over the bad file.
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CacheSource Src = CacheSource::MemoryHit;
    CompileService::Artifact Art = Svc.getOrCompile(*F, DARMConfig(), true, &Src);
    EXPECT_EQ(Src, CacheSource::Compiled);
    EXPECT_EQ(serializeCompiledModule(*Art), Expect);
    EXPECT_EQ(Store.stats().Stores, 1u) << "the corrupt file must be healed";
  }
  // Third start: clean disk hit again.
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CacheSource Src = CacheSource::Compiled;
    Svc.getOrCompile(*F, DARMConfig(), true, &Src);
    EXPECT_EQ(Src, CacheSource::DiskHit);
  }
}

TEST_F(ArtifactStoreTest, ProgramlessDiskEntryUpgradesOnDemand) {
  Context Ctx;
  Module M(Ctx, "upgrade");
  Function *F = buildKernel(M, 53);
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    Svc.getOrCompile(*F, DARMConfig(), /*IncludeProgram=*/false);
  }
  // The restart asks for a program image: the program-less disk file
  // cannot satisfy it (NeedProgram gate), so the service recompiles and
  // the store() upgrade-replaces the incumbent.
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CacheSource Src = CacheSource::MemoryHit;
    CompileService::Artifact Art =
        Svc.getOrCompile(*F, DARMConfig(), /*IncludeProgram=*/true, &Src);
    EXPECT_EQ(Src, CacheSource::Compiled);
    EXPECT_FALSE(Art->ProgramBytes.empty());
    EXPECT_EQ(Store.stats().Stores, 1u) << "program upgrade must be written";
  }
  // Now the full artifact serves from disk.
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CacheSource Src = CacheSource::Compiled;
    CompileService::Artifact Art =
        Svc.getOrCompile(*F, DARMConfig(), /*IncludeProgram=*/true, &Src);
    EXPECT_EQ(Src, CacheSource::DiskHit);
    EXPECT_FALSE(Art->ProgramBytes.empty());
  }
}

TEST_F(ArtifactStoreTest, NegativeResultsPersist) {
  // A failed compile is a cacheable negative result in memory
  // (docs/caching.md) — and on disk: the restart must not retry the
  // doomed compile.
  Context Ctx;
  Module M(Ctx, "neg");
  Function *F = buildKernel(M, 54);
  const std::string FP = "serve-test-fail-v1";
  unsigned Runs = 0;
  // Verifier-rejected output (a block with no terminator), as in the
  // in-memory negative-caching test.
  const CompileFn Fail = [&Runs](Function &K, DARMStats &) {
    ++Runs;
    K.createBlock("dangling");
  };
  std::string ColdError;
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CompileService::Artifact Art = Svc.getOrCompile(*F, FP, Fail);
    ASSERT_TRUE(Art->failed());
    ColdError = Art->CompileError;
    EXPECT_EQ(Store.stats().Stores, 1u);
  }
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CacheSource Src = CacheSource::Compiled;
    CompileService::Artifact Art = Svc.getOrCompile(*F, FP, Fail, true, &Src);
    EXPECT_EQ(Src, CacheSource::DiskHit);
    EXPECT_TRUE(Art->failed());
    EXPECT_EQ(Art->CompileError, ColdError);
    EXPECT_EQ(Runs, 1u) << "the doomed compile must not rerun after restart";
  }
}

} // namespace
