//===- serve_test.cpp - darmd protocol + on-disk store crash safety -----------===//
//
// Pins the serving layer (docs/caching.md): the DRMA artifact container
// and DRMQ/DRMR wire codecs round-trip and reject corruption, the
// serveStream loop answers byte-identically to in-process
// compileToArtifact, and the on-disk artifact store survives every
// crash shape — truncated files, flipped bytes, wrong magic, stale
// versions, torn writes, concurrent writers racing one key — as a cold
// miss that recompiles and re-persists, never an abort, never a wrong
// artifact.
//
//===----------------------------------------------------------------------===//

#include "darm/serve/ArtifactStore.h"
#include "darm/serve/Client.h"
#include "darm/serve/Server.h"

#include "darm/core/CompileService.h"
#include "darm/fuzz/KernelGenerator.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/support/Hashing.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <thread>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace darm;
using namespace darm::serve;

namespace {

Function *buildKernel(Module &M, uint64_t Seed) {
  fuzz::FuzzCase C(Seed);
  Function *F = fuzz::buildFuzzKernel(M, C);
  EXPECT_NE(F, nullptr);
  return F;
}

CompiledModule makeArtifact(uint64_t Seed, bool IncludeProgram = true) {
  Context Ctx;
  Module M(Ctx, "serve");
  Function *F = buildKernel(M, Seed);
  return compileToArtifact(*F, DARMConfig(), IncludeProgram);
}

/// A unique fresh directory per test under the build tree.
std::string freshDir(const char *Tag) {
  std::string D = std::string("serve_test_") + Tag + ".dir";
  std::system(("rm -rf " + D).c_str());
  return D;
}

void writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  OS.write(reinterpret_cast<const char *>(Bytes.data()),
           static_cast<std::streamsize>(Bytes.size()));
}

//===----------------------------------------------------------------------===//
// DRMA artifact container
//===----------------------------------------------------------------------===//

TEST(ArtifactCodec, RoundTripsEveryField) {
  CompiledModule Art = makeArtifact(11);
  Art.Stats.Iterations = 3;
  Art.Stats.RegionsMelded = 2;
  const std::vector<uint8_t> Bytes = serializeCompiledModule(Art);

  CompiledModule Back;
  std::string Err;
  ASSERT_TRUE(deserializeCompiledModule(Bytes, Back, &Err)) << Err;
  EXPECT_EQ(Back.IRHash, Art.IRHash);
  EXPECT_EQ(Back.Fingerprint, Art.Fingerprint);
  EXPECT_EQ(Back.ModuleBytes, Art.ModuleBytes);
  EXPECT_EQ(Back.ProgramBytes, Art.ProgramBytes);
  EXPECT_EQ(Back.CompileError, Art.CompileError);
  EXPECT_EQ(Back.Stats.Iterations, Art.Stats.Iterations);
  EXPECT_EQ(Back.Stats.RegionsMelded, Art.Stats.RegionsMelded);
  // Decode-reencode is byte-identical: the container is canonical.
  EXPECT_EQ(serializeCompiledModule(Back), Bytes);
}

TEST(ArtifactCodec, RejectsEveryTruncation) {
  const std::vector<uint8_t> Bytes = serializeCompiledModule(makeArtifact(12));
  CompiledModule Out;
  for (size_t Len = 0; Len < Bytes.size(); ++Len)
    EXPECT_FALSE(deserializeCompiledModule(Bytes.data(), Len, Out))
        << "prefix of " << Len << " bytes must not decode";
}

TEST(ArtifactCodec, RejectsEveryFlippedByte) {
  // The trailing whole-image checksum makes this exhaustive guarantee
  // possible: a flip in a counter varint or deep in the module payload
  // decodes structurally fine but must still read as corrupt.
  const std::vector<uint8_t> Bytes = serializeCompiledModule(makeArtifact(13));
  CompiledModule Out;
  for (size_t I = 0; I < Bytes.size(); ++I) {
    std::vector<uint8_t> Bad = Bytes;
    Bad[I] ^= 0x40;
    EXPECT_FALSE(deserializeCompiledModule(Bad, Out))
        << "flipped byte " << I << " must not decode";
  }
}

TEST(ArtifactCodec, RejectsTrailingGarbage) {
  std::vector<uint8_t> Bytes = serializeCompiledModule(makeArtifact(14));
  Bytes.push_back(0);
  CompiledModule Out;
  EXPECT_FALSE(deserializeCompiledModule(Bytes, Out));
}

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

TEST(Protocol, RequestRoundTrip) {
  Context Ctx;
  Module M(Ctx, "req");
  Function *F = buildKernel(M, 21);

  CompileRequest Req;
  Req.Cfg = DARMConfig::withCanonicalization();
  Req.Cfg.ProfitThreshold = 0.125;
  Req.Cfg.MaxIterations = 9;
  Req.IncludeProgram = false;
  Req.IRText = printFunction(*F);

  CompileRequest Back;
  std::string Err;
  const std::vector<uint8_t> Frame = encodeRequest(Req);
  ASSERT_TRUE(decodeRequest(Frame.data(), Frame.size(), Back, &Err)) << Err;
  // The config codec is field-exact: equal fingerprints, not just
  // equal-ish structs.
  EXPECT_EQ(configFingerprint(Back.Cfg), configFingerprint(Req.Cfg));
  EXPECT_EQ(Back.IncludeProgram, Req.IncludeProgram);
  EXPECT_EQ(Back.IRText, Req.IRText);
}

TEST(Protocol, RequestRejectsCorruption) {
  CompileRequest Req;
  Req.IRText = "kernel @k() { entry: ret }";
  std::vector<uint8_t> Frame = encodeRequest(Req);
  CompileRequest Out;

  for (size_t Len = 0; Len < Frame.size(); ++Len)
    EXPECT_FALSE(decodeRequest(Frame.data(), Len, Out));
  {
    std::vector<uint8_t> Bad = Frame;
    Bad[0] = 'X'; // magic
    EXPECT_FALSE(decodeRequest(Bad.data(), Bad.size(), Out));
  }
  {
    std::vector<uint8_t> Bad = Frame;
    Bad[4] ^= 0xff; // version
    EXPECT_FALSE(decodeRequest(Bad.data(), Bad.size(), Out));
  }
  {
    std::vector<uint8_t> Bad = Frame;
    Bad.push_back(0); // trailing garbage
    EXPECT_FALSE(decodeRequest(Bad.data(), Bad.size(), Out));
  }
}

TEST(Protocol, ResponseRoundTripOkAndError) {
  {
    CompileResponse Resp;
    Resp.Ok = true;
    Resp.Origin = ServeOrigin::DiskHit;
    Resp.Art = makeArtifact(22);
    const std::vector<uint8_t> Frame = encodeResponse(Resp);
    CompileResponse Back;
    std::string Err;
    ASSERT_TRUE(decodeResponse(Frame.data(), Frame.size(), Back, &Err)) << Err;
    EXPECT_TRUE(Back.Ok);
    EXPECT_EQ(Back.Origin, ServeOrigin::DiskHit);
    EXPECT_EQ(serializeCompiledModule(Back.Art),
              serializeCompiledModule(Resp.Art));
  }
  {
    CompileResponse Resp;
    Resp.Error = "parse error: nope";
    const std::vector<uint8_t> Frame = encodeResponse(Resp);
    CompileResponse Back;
    ASSERT_TRUE(decodeResponse(Frame.data(), Frame.size(), Back));
    EXPECT_FALSE(Back.Ok);
    EXPECT_EQ(Back.Error, Resp.Error);
  }
}

TEST(Protocol, BusyResponseRoundTrip) {
  CompileResponse Resp;
  Resp.Busy = true;
  const std::vector<uint8_t> Frame = encodeResponse(Resp);
  CompileResponse Back;
  std::string Err;
  ASSERT_TRUE(decodeResponse(Frame.data(), Frame.size(), Back, &Err)) << Err;
  EXPECT_FALSE(Back.Ok);
  EXPECT_TRUE(Back.Busy);
  EXPECT_FALSE(Back.Error.empty());
}

TEST(Protocol, FramesOverSocketpair) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  const std::vector<uint8_t> Payload = {1, 2, 3, 250, 251, 252};
  ASSERT_TRUE(writeFrame(Fds[0], Payload));
  std::vector<uint8_t> Back;
  bool CleanEof = true;
  ASSERT_TRUE(readFrame(Fds[1], Back, &CleanEof));
  EXPECT_EQ(Back, Payload);
  EXPECT_FALSE(CleanEof);
  ::close(Fds[0]);
  EXPECT_FALSE(readFrame(Fds[1], Back, &CleanEof));
  EXPECT_TRUE(CleanEof); // EOF at a frame boundary, not a torn frame
  ::close(Fds[1]);
}

//===----------------------------------------------------------------------===//
// serveStream end to end
//===----------------------------------------------------------------------===//

TEST(ServeStream, ByteIdenticalToInProcessCompile) {
  Context Ctx;
  Module M(Ctx, "serve");
  Function *F = buildKernel(M, 31);
  const std::vector<uint8_t> Expect =
      serializeCompiledModule(compileToArtifact(*F, DARMConfig()));

  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  CompileService Svc;
  ServeCounters Counters;
  std::thread Server([&] {
    serveStream(Fds[1], Fds[1], Svc, &Counters);
    ::close(Fds[1]);
  });

  CompileRequest Req;
  Req.IRText = printFunction(*F);
  CompileResponse Resp;
  std::string Err;
  ASSERT_TRUE(roundTrip(Fds[0], Req, Resp, &Err)) << Err;
  ASSERT_TRUE(Resp.Ok) << Resp.Error;
  EXPECT_EQ(Resp.Origin, ServeOrigin::Compiled);
  EXPECT_EQ(serializeCompiledModule(Resp.Art), Expect);

  // The duplicate is a memory hit with the same bytes.
  ASSERT_TRUE(roundTrip(Fds[0], Req, Resp, &Err)) << Err;
  ASSERT_TRUE(Resp.Ok);
  EXPECT_EQ(Resp.Origin, ServeOrigin::MemoryHit);
  EXPECT_EQ(serializeCompiledModule(Resp.Art), Expect);

  ::close(Fds[0]);
  Server.join();
  EXPECT_EQ(Counters.Requests.load(), 2u);
  EXPECT_EQ(Counters.Compiled.load(), 1u);
  EXPECT_EQ(Counters.MemoryHits.load(), 1u);
}

TEST(ServeStream, BadIRIsPerRequestErrorSessionContinues) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  CompileService Svc;
  std::thread Server([&] {
    serveStream(Fds[1], Fds[1], Svc);
    ::close(Fds[1]);
  });

  CompileRequest Bad;
  Bad.IRText = "this is not IR";
  CompileResponse Resp;
  std::string Err;
  ASSERT_TRUE(roundTrip(Fds[0], Bad, Resp, &Err)) << Err;
  EXPECT_FALSE(Resp.Ok);
  EXPECT_NE(Resp.Error.find("parse error"), std::string::npos);

  // The session survives a bad request: a good one still answers.
  Context Ctx;
  Module M(Ctx, "after");
  Function *F = buildKernel(M, 32);
  CompileRequest Good;
  Good.IRText = printFunction(*F);
  ASSERT_TRUE(roundTrip(Fds[0], Good, Resp, &Err)) << Err;
  EXPECT_TRUE(Resp.Ok) << Resp.Error;

  ::close(Fds[0]);
  Server.join();
}

//===----------------------------------------------------------------------===//
// Deadlines, SIGPIPE, drain (docs/serving.md resilience contracts)
//===----------------------------------------------------------------------===//

TEST(Deadline, SlowLorisPeerIsCutOthersUnaffected) {
  // Connection 1 starts a frame and stalls (length prefix, no payload);
  // connection 2 sends a real request. The loris is disconnected by the
  // frame deadline; the good connection answers normally.
  int Loris[2], Good[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Loris), 0);
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Good), 0);
  CompileService Svc;
  ServeCounters Counters;
  ServeOptions SO;
  SO.FrameTimeoutMs = 150;
  std::thread LorisServer(
      [&] { serveStream(Loris[1], Loris[1], Svc, &Counters, SO); });
  std::thread GoodServer(
      [&] { serveStream(Good[1], Good[1], Svc, &Counters, SO); });

  const uint8_t Prefix[4] = {100, 0, 0, 0}; // "100 bytes follow" — they never do
  ASSERT_EQ(::write(Loris[0], Prefix, 4), 4);

  Context Ctx;
  Module M(Ctx, "good");
  CompileRequest Req;
  Req.IRText = printFunction(*buildKernel(M, 61));
  CompileResponse Resp;
  std::string Err;
  ASSERT_TRUE(roundTrip(Good[0], Req, Resp, &Err)) << Err;
  EXPECT_TRUE(Resp.Ok) << Resp.Error;

  LorisServer.join(); // returns within the deadline or the test times out
  EXPECT_EQ(Counters.Timeouts.load(), 1u);
  ::close(Good[0]);
  GoodServer.join();
  ::close(Loris[0]);
  ::close(Loris[1]);
  ::close(Good[1]);
  EXPECT_EQ(Counters.Requests.load(), 1u) << "the loris never completed one";
}

TEST(Deadline, IdleTimeoutCutsSilentConnection) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  CompileService Svc;
  ServeCounters Counters;
  ServeOptions SO;
  SO.IdleTimeoutMs = 100;
  std::thread Server([&] { serveStream(Fds[1], Fds[1], Svc, &Counters, SO); });
  Server.join(); // the silent peer is cut; join or the watchdog fires
  EXPECT_EQ(Counters.Timeouts.load(), 1u);
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(Framing, ClosedPeerIsCleanFailureNotSigpipe) {
  // Without MSG_NOSIGNAL the second write would raise SIGPIPE and kill
  // the whole test binary; the contract is a clean false.
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  ::close(Fds[1]);
  const std::vector<uint8_t> Payload(1 << 16, 0xab);
  EXPECT_FALSE(writeFrame(Fds[0], Payload));
  EXPECT_FALSE(writeFrame(Fds[0], Payload)); // and again, post-EPIPE
  ::close(Fds[0]);
}

TEST(ServeStream, DrainingSessionStillAnswersRequestItReads) {
  // The graceful-shutdown contract: a request the server has already
  // read when the drain flag goes up is NOT abandoned — it is answered,
  // and only then does the session close. The Requests counter ticks
  // right after the frame is read, so waiting on it (rather than a
  // sleep) makes the set-drain-mid-service ordering deterministic. The
  // idle timeout is a safety exit so a scheduling fluke cannot leave
  // the session blocked forever; the drain check normally fires first.
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  CompileService Svc;
  ServeCounters Counters;
  std::atomic<bool> Drain{false};
  ServeOptions SO;
  SO.Drain = &Drain;
  SO.IdleTimeoutMs = 2000;
  std::thread Server(
      [&] { serveStream(Fds[1], Fds[1], Svc, &Counters, SO); });

  Context Ctx;
  Module M(Ctx, "drain");
  CompileRequest Req;
  Req.IRText = printFunction(*buildKernel(M, 62));
  ASSERT_TRUE(writeFrame(Fds[0], encodeRequest(Req), 2000));
  // Wait until the server has READ the frame — from here it must answer.
  for (int I = 0; I < 2000 && Counters.Requests.load() == 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(Counters.Requests.load(), 1u);
  Drain.store(true, std::memory_order_release);

  std::vector<uint8_t> Frame;
  bool CleanEof = false;
  ASSERT_TRUE(readFrame(Fds[0], Frame, &CleanEof, 5000, 5000));
  CompileResponse Resp;
  std::string Err;
  ASSERT_TRUE(decodeResponse(Frame.data(), Frame.size(), Resp, &Err)) << Err;
  EXPECT_TRUE(Resp.Ok) << Resp.Error;

  // ...and the session then ends instead of waiting for another frame.
  Server.join();
  EXPECT_FALSE(readFrame(Fds[0], Frame, &CleanEof, 1000, 1000));
  ::close(Fds[0]);
  ::close(Fds[1]);
}

//===----------------------------------------------------------------------===//
// SocketServer: TCP transport, load shedding, graceful drain
//===----------------------------------------------------------------------===//

TEST(SocketServerTest, TcpServeAndGracefulDrain) {
  CompileService Svc;
  ServeCounters Counters;
  std::string Err;
  uint16_t Port = 0;
  const int ListenFd = listenTcp("127.0.0.1:0", &Err, &Port);
  ASSERT_GE(ListenFd, 0) << Err;
  ASSERT_NE(Port, 0);
  SocketServer Server(Svc, &Counters);
  ASSERT_TRUE(Server.start(ListenFd));

  const std::string Endpoint = "127.0.0.1:" + std::to_string(Port);
  ASSERT_TRUE(endpointIsTcp(Endpoint));
  const int Fd = connectEndpoint(Endpoint, &Err, /*TimeoutMs=*/2000);
  ASSERT_GE(Fd, 0) << Err;

  Context Ctx;
  Module M(Ctx, "tcp");
  Function *F = buildKernel(M, 63);
  const std::vector<uint8_t> Expect =
      serializeCompiledModule(compileToArtifact(*F, DARMConfig()));
  CompileRequest Req;
  Req.IRText = printFunction(*F);
  CompileResponse Resp;
  ASSERT_TRUE(roundTrip(Fd, Req, Resp, &Err, /*TimeoutMs=*/30000)) << Err;
  ASSERT_TRUE(Resp.Ok) << Resp.Error;
  EXPECT_EQ(serializeCompiledModule(Resp.Art), Expect)
      << "TCP transport must not change a single artifact byte";
  ::close(Fd);

  EXPECT_TRUE(Server.drain(/*DeadlineMs=*/5000));
  // Drained server refuses new connections: the listener is gone.
  EXPECT_LT(connectEndpoint(Endpoint, &Err, /*TimeoutMs=*/500), 0);
}

TEST(SocketServerTest, OverCapConnectionGetsBusyFrame) {
  CompileService Svc;
  ServeCounters Counters;
  SocketServer::Options Opts;
  Opts.MaxConnections = 1;
  SocketServer Server(Svc, &Counters, Opts);
  const std::string Path = "serve_test_busy.sock";
  std::string Err;
  const int ListenFd = listenUnixSocket(Path, &Err);
  ASSERT_GE(ListenFd, 0) << Err;
  ASSERT_TRUE(Server.start(ListenFd));

  const int Holder = connectUnixSocket(Path, &Err);
  ASSERT_GE(Holder, 0) << Err;
  // Wait until the holder is accepted and occupies the one slot.
  for (int I = 0; I < 2000 && Server.activeConnections() < 1; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(Server.activeConnections(), 1u);

  // The over-cap connection is answered with one unsolicited Busy frame
  // and closed — load shedding, not a silent drop.
  const int Shed = connectUnixSocket(Path, &Err);
  ASSERT_GE(Shed, 0) << Err;
  std::vector<uint8_t> Frame;
  bool CleanEof = false;
  ASSERT_TRUE(readFrame(Shed, Frame, &CleanEof, /*IdleTimeoutMs=*/5000,
                        /*FrameTimeoutMs=*/5000));
  CompileResponse Resp;
  ASSERT_TRUE(decodeResponse(Frame.data(), Frame.size(), Resp, &Err)) << Err;
  EXPECT_FALSE(Resp.Ok);
  EXPECT_TRUE(Resp.Busy);
  EXPECT_FALSE(readFrame(Shed, Frame, &CleanEof));
  EXPECT_TRUE(CleanEof) << "shed connection must be closed cleanly";
  ::close(Shed);
  ::close(Holder);
  Server.drain(2000);
  EXPECT_GE(Counters.Busy.load(), 1u);
  ::unlink(Path.c_str());
}

//===----------------------------------------------------------------------===//
// serve::Client: retry, backoff, reconnect, Busy absorption, fallback
//===----------------------------------------------------------------------===//

/// A scripted flaky daemon on a Unix socket: tears the first
/// \p TornConnections connections after reading their request (close
/// without answering), answers \p BusyConnections more with one Busy
/// frame, then serves the rest properly until drained.
class FlakyServer {
public:
  FlakyServer(const std::string &Path, unsigned TornConnections,
              unsigned BusyConnections)
      : Path(Path), Torn(TornConnections), BusyN(BusyConnections) {
    std::string Err;
    ListenFd = listenUnixSocket(Path, &Err);
    EXPECT_GE(ListenFd, 0) << Err;
    Acceptor = std::thread([this] { run(); });
  }
  ~FlakyServer() {
    Stop.store(true);
    ::shutdown(ListenFd, SHUT_RDWR);
    ::close(ListenFd);
    Acceptor.join();
    ::unlink(Path.c_str());
  }

private:
  void run() {
    while (!Stop.load()) {
      const int Conn = ::accept(ListenFd, nullptr, nullptr);
      if (Conn < 0)
        return;
      if (Torn > 0) {
        --Torn;
        std::vector<uint8_t> Frame;
        readFrame(Conn, Frame, nullptr, 2000, 2000); // swallow the request
        ::close(Conn); // ...and hang up without answering
        continue;
      }
      if (BusyN > 0) {
        --BusyN;
        // Read the request first so the answer is deterministic: an
        // unsolicited Busy racing the client's write can surface as a
        // torn connection instead (that shape is pinned by
        // SocketServerTest.OverCapConnectionGetsBusyFrame).
        std::vector<uint8_t> Frame;
        readFrame(Conn, Frame, nullptr, 2000, 2000);
        CompileResponse Busy;
        Busy.Busy = true;
        writeFrame(Conn, encodeResponse(Busy), 2000);
        ::close(Conn);
        continue;
      }
      serveStream(Conn, Conn, Svc);
      ::close(Conn);
    }
  }

  std::string Path;
  unsigned Torn, BusyN;
  int ListenFd = -1;
  CompileService Svc;
  std::atomic<bool> Stop{false};
  std::thread Acceptor;
};

ClientOptions fastClientOptions(const std::string &Endpoint) {
  ClientOptions O;
  O.Endpoint = Endpoint;
  O.ConnectTimeoutMs = 2000;
  O.RequestTimeoutMs = 30000;
  O.BackoffBaseMs = 1;
  O.BackoffCapMs = 5; // fast schedule: the tests pin behaviour, not timing
  return O;
}

TEST(ClientTest, RetriesTornConnectionsAndSucceeds) {
  const std::string Path = "serve_test_flaky_torn.sock";
  FlakyServer Flaky(Path, /*TornConnections=*/2, /*BusyConnections=*/0);
  ClientOptions O = fastClientOptions(Path);
  O.MaxRetries = 3;
  Client Cli(O);

  Context Ctx;
  Module M(Ctx, "cli");
  Function *F = buildKernel(M, 64);
  const std::vector<uint8_t> Expect =
      serializeCompiledModule(compileToArtifact(*F, DARMConfig()));
  CompileRequest Req;
  Req.IRText = printFunction(*F);
  CompileResponse Resp;
  std::string Err;
  ASSERT_TRUE(Cli.request(Req, Resp, &Err)) << Err;
  ASSERT_TRUE(Resp.Ok) << Resp.Error;
  EXPECT_EQ(serializeCompiledModule(Resp.Art), Expect);
  EXPECT_EQ(Cli.counters().Attempts.load(), 3u);
  EXPECT_EQ(Cli.counters().Retries.load(), 2u);
  EXPECT_EQ(Cli.counters().Reconnects.load(), 2u);
}

TEST(ClientTest, AbsorbsBusySheddingWithBackoff) {
  const std::string Path = "serve_test_flaky_busy.sock";
  FlakyServer Flaky(Path, /*TornConnections=*/0, /*BusyConnections=*/2);
  ClientOptions O = fastClientOptions(Path);
  O.MaxRetries = 4;
  Client Cli(O);

  Context Ctx;
  Module M(Ctx, "busy");
  CompileRequest Req;
  Req.IRText = printFunction(*buildKernel(M, 65));
  CompileResponse Resp;
  std::string Err;
  ASSERT_TRUE(Cli.request(Req, Resp, &Err)) << Err;
  EXPECT_TRUE(Resp.Ok) << Resp.Error;
  EXPECT_EQ(Cli.counters().BusyShed.load(), 2u);
  EXPECT_GE(Cli.counters().Retries.load(), 2u);
}

TEST(ClientTest, PermanentErrorIsNotRetried) {
  const std::string Path = "serve_test_flaky_perm.sock";
  FlakyServer Flaky(Path, 0, 0); // healthy server
  ClientOptions O = fastClientOptions(Path);
  O.MaxRetries = 5;
  Client Cli(O);

  CompileRequest Req;
  Req.IRText = "this is not IR";
  CompileResponse Resp;
  std::string Err;
  // A definitive answer: request() is true, Resp.Ok false — and exactly
  // one attempt, because resending identical bytes cannot help.
  ASSERT_TRUE(Cli.request(Req, Resp, &Err)) << Err;
  EXPECT_FALSE(Resp.Ok);
  EXPECT_FALSE(Resp.Busy);
  EXPECT_EQ(Cli.counters().Attempts.load(), 1u);
  EXPECT_EQ(Cli.counters().Retries.load(), 0u);
}

TEST(ClientTest, FallsBackToLocalCompileWhenDaemonIsGone) {
  // Nobody listens here: every attempt fails to connect, retries
  // exhaust, and the verified local fallback answers — byte-identical
  // to what the daemon would have said, by the determinism contract.
  ClientOptions O = fastClientOptions("serve_test_no_such_daemon.sock");
  O.MaxRetries = 1;
  O.ConnectTimeoutMs = 200;
  O.Fallback = FallbackMode::LocalCompile;
  CompileService Shared;
  Client Cli(O, &Shared);

  Context Ctx;
  Module M(Ctx, "fb");
  Function *F = buildKernel(M, 66);
  const std::vector<uint8_t> Expect =
      serializeCompiledModule(compileToArtifact(*F, DARMConfig()));
  CompileRequest Req;
  Req.IRText = printFunction(*F);
  CompileResponse Resp;
  std::string Err;
  ASSERT_TRUE(Cli.request(Req, Resp, &Err)) << Err;
  ASSERT_TRUE(Resp.Ok) << Resp.Error;
  EXPECT_EQ(serializeCompiledModule(Resp.Art), Expect)
      << "local fallback must be byte-identical to the daemon's answer";
  EXPECT_EQ(Cli.counters().Fallbacks.load(), 1u);
  EXPECT_EQ(Cli.counters().Attempts.load(), 2u);
  EXPECT_EQ(Shared.stats().Misses, 1u) << "fallback compiles in the shared service";
}

TEST(ClientTest, FailsCleanlyWithoutFallback) {
  ClientOptions O = fastClientOptions("serve_test_no_such_daemon2.sock");
  O.MaxRetries = 1;
  O.ConnectTimeoutMs = 200;
  Client Cli(O);
  CompileRequest Req;
  Req.IRText = "kernel irrelevant";
  CompileResponse Resp;
  std::string Err;
  EXPECT_FALSE(Cli.request(Req, Resp, &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_EQ(Cli.counters().Attempts.load(), 2u);
}

//===----------------------------------------------------------------------===//
// FileArtifactStore crash safety
//===----------------------------------------------------------------------===//

class ArtifactStoreTest : public ::testing::Test {
protected:
  /// Each test gets a fresh store dir named after the test.
  std::string Dir;
  void SetUp() override {
    Dir = freshDir(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  void TearDown() override { std::system(("rm -rf " + Dir).c_str()); }
};

TEST_F(ArtifactStoreTest, StoreLoadRoundTrip) {
  FileArtifactStore Store(Dir);
  ASSERT_TRUE(Store.valid());
  const CompiledModule Art = makeArtifact(41);
  Store.store(Art);
  auto Back = Store.load(Art.IRHash, Art.Fingerprint, /*NeedProgram=*/true);
  ASSERT_NE(Back, nullptr);
  EXPECT_EQ(serializeCompiledModule(*Back), serializeCompiledModule(Art));
  EXPECT_EQ(Store.stats().Stores, 1u);
  EXPECT_EQ(Store.stats().Loads, 1u);

  // Write-once: storing the same artifact again is a skip, not a write.
  Store.store(Art);
  EXPECT_EQ(Store.stats().Stores, 1u);
  EXPECT_EQ(Store.stats().StoreSkips, 1u);
}

TEST_F(ArtifactStoreTest, AbsentKeyIsMiss) {
  FileArtifactStore Store(Dir);
  EXPECT_EQ(Store.load(0x1234, "nope", true), nullptr);
  EXPECT_EQ(Store.stats().LoadMisses, 1u);
}

TEST_F(ArtifactStoreTest, TruncatedFileIsMissAndHeals) {
  FileArtifactStore Store(Dir);
  const CompiledModule Art = makeArtifact(42);
  Store.store(Art);
  const std::string Path = Store.pathFor(Art.IRHash, Art.Fingerprint);
  const std::vector<uint8_t> Full = serializeCompiledModule(Art);

  for (size_t Len : {size_t(0), size_t(3), Full.size() / 2, Full.size() - 1}) {
    writeFile(Path, std::vector<uint8_t>(Full.begin(), Full.begin() + Len));
    EXPECT_EQ(Store.load(Art.IRHash, Art.Fingerprint, true), nullptr)
        << "truncation to " << Len << " bytes must miss";
    // The recompile's store() replaces the corrupt incumbent — the heal
    // path a real daemon takes right after the miss.
    Store.store(Art);
    EXPECT_NE(Store.load(Art.IRHash, Art.Fingerprint, true), nullptr);
  }
}

TEST_F(ArtifactStoreTest, FlippedBytesAreMisses) {
  FileArtifactStore Store(Dir);
  const CompiledModule Art = makeArtifact(43);
  Store.store(Art);
  const std::string Path = Store.pathFor(Art.IRHash, Art.Fingerprint);
  const std::vector<uint8_t> Full = serializeCompiledModule(Art);
  // Every 7th offset keeps the sweep fast while still crossing the
  // magic, header, payload, counter and checksum regions.
  for (size_t I = 0; I < Full.size(); I += 7) {
    std::vector<uint8_t> Bad = Full;
    Bad[I] ^= 0x08;
    writeFile(Path, Bad);
    EXPECT_EQ(Store.load(Art.IRHash, Art.Fingerprint, true), nullptr)
        << "flipped byte " << I << " must miss";
  }
}

TEST_F(ArtifactStoreTest, WrongMagicAndStaleVersionAreMisses) {
  FileArtifactStore Store(Dir);
  const CompiledModule Art = makeArtifact(44);
  Store.store(Art);
  const std::string Path = Store.pathFor(Art.IRHash, Art.Fingerprint);
  const std::vector<uint8_t> Full = serializeCompiledModule(Art);
  {
    std::vector<uint8_t> Bad = Full;
    Bad[0] = 'X'; // not DRMA — e.g. a stray file with a colliding name
    writeFile(Path, Bad);
    EXPECT_EQ(Store.load(Art.IRHash, Art.Fingerprint, true), nullptr);
  }
  {
    std::vector<uint8_t> Bad = Full;
    Bad[4] = 0xee; // a future/stale format version
    Bad[5] = 0xee;
    writeFile(Path, Bad);
    EXPECT_EQ(Store.load(Art.IRHash, Art.Fingerprint, true), nullptr);
  }
}

TEST_F(ArtifactStoreTest, MiskeyedFileIsMiss) {
  // A valid artifact sitting at the wrong path (filename-hash collision,
  // a copied/renamed file): the key inside the container must win.
  FileArtifactStore Store(Dir);
  const CompiledModule A = makeArtifact(45);
  const CompiledModule B = makeArtifact(46);
  ASSERT_NE(A.IRHash, B.IRHash);
  Store.store(A);
  writeFile(Store.pathFor(B.IRHash, B.Fingerprint),
            serializeCompiledModule(A));
  EXPECT_EQ(Store.load(B.IRHash, B.Fingerprint, true), nullptr);
  // The real key still loads fine.
  EXPECT_NE(Store.load(A.IRHash, A.Fingerprint, true), nullptr);
}

TEST_F(ArtifactStoreTest, TornWriteSweptOnOpen) {
  // A writer killed mid-store leaves only a temp file (the rename never
  // happened). A fresh store over the directory sweeps it and the key
  // reads as absent.
  {
    FileArtifactStore Store(Dir);
    ASSERT_TRUE(Store.valid());
  }
  writeFile(Dir + "/.tmp-dead-writer", {0x12, 0x34});
  const CompiledModule Art = makeArtifact(47);
  FileArtifactStore Store(Dir);
  EXPECT_EQ(Store.load(Art.IRHash, Art.Fingerprint, true), nullptr);
  struct stat St;
  EXPECT_NE(::stat((Dir + "/.tmp-dead-writer").c_str(), &St), 0)
      << "temp droppings must be swept on open";
}

TEST_F(ArtifactStoreTest, ConcurrentWritersOneKey) {
  // N threads race store() on one key; compiles are deterministic so
  // every writer carries the same bytes — whichever rename lands, the
  // file must be complete and valid, and later loads must succeed.
  FileArtifactStore Store(Dir);
  const CompiledModule Art = makeArtifact(48);
  std::vector<std::thread> Writers;
  for (int I = 0; I < 8; ++I)
    Writers.emplace_back([&] { Store.store(Art); });
  for (std::thread &T : Writers)
    T.join();
  auto Back = Store.load(Art.IRHash, Art.Fingerprint, true);
  ASSERT_NE(Back, nullptr);
  EXPECT_EQ(serializeCompiledModule(*Back), serializeCompiledModule(Art));
  // No temp droppings survive the races.
  FileArtifactStore Fresh(Dir);
  EXPECT_NE(Fresh.load(Art.IRHash, Art.Fingerprint, true), nullptr);
}

TEST_F(ArtifactStoreTest, UnusableDirectoryDegradesToMisses) {
  FileArtifactStore Store("/dev/null/not-a-dir");
  EXPECT_FALSE(Store.valid());
  const CompiledModule Art = makeArtifact(49);
  Store.store(Art); // silently dropped
  EXPECT_EQ(Store.load(Art.IRHash, Art.Fingerprint, true), nullptr);
}

//===----------------------------------------------------------------------===//
// Store GC (byte budget, LRU by mtime) + stale-bounded temp sweep
//===----------------------------------------------------------------------===//

namespace {
/// Backdates a file's mtime by \p Secs (the GC's LRU clock).
void ageFile(const std::string &Path, long Secs) {
  struct timespec Times[2];
  Times[0].tv_sec = ::time(nullptr) - Secs;
  Times[0].tv_nsec = 0;
  Times[1] = Times[0];
  ASSERT_EQ(::utimensat(AT_FDCWD, Path.c_str(), Times, 0), 0);
}

size_t fileSize(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 ? static_cast<size_t>(St.st_size) : 0;
}

/// Total bytes of .drma files in \p Dir.
size_t storeBytes(const std::string &Dir) {
  size_t Total = 0;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return 0;
  while (struct dirent *E = ::readdir(D)) {
    const std::string Name = E->d_name;
    if (Name.size() > 5 && Name.compare(Name.size() - 5, 5, ".drma") == 0)
      Total += fileSize(Dir + "/" + Name);
  }
  ::closedir(D);
  return Total;
}
} // namespace

TEST_F(ArtifactStoreTest, GcEvictsOldestToBudgetOnOpen) {
  const CompiledModule Old = makeArtifact(71);
  const CompiledModule Fresh = makeArtifact(72);
  size_t OldSize, FreshSize;
  {
    FileArtifactStore Store(Dir);
    Store.store(Old);
    Store.store(Fresh);
    OldSize = fileSize(Store.pathFor(Old.IRHash, Old.Fingerprint));
    FreshSize = fileSize(Store.pathFor(Fresh.IRHash, Fresh.Fingerprint));
    ageFile(Store.pathFor(Old.IRHash, Old.Fingerprint), 1000);
  }
  // Reopen with a budget that fits only one: the older entry is evicted.
  FileArtifactStore::Options Opts;
  Opts.MaxBytes = OldSize + FreshSize - 1;
  FileArtifactStore Store(Dir, Opts);
  EXPECT_EQ(Store.load(Old.IRHash, Old.Fingerprint, true), nullptr)
      << "the LRU entry must be the one evicted";
  EXPECT_NE(Store.load(Fresh.IRHash, Fresh.Fingerprint, true), nullptr);
  EXPECT_GE(Store.stats().Evictions, 1u);
  EXPECT_LE(storeBytes(Dir), Opts.MaxBytes);
}

TEST_F(ArtifactStoreTest, GcKeepsDirectoryUnderBudgetAcrossOverfill) {
  // The acceptance shape: a workload that writes ~2x the budget must
  // leave the directory at or under budget after every store.
  const size_t ProbeSize = [&] {
    FileArtifactStore Probe(Dir);
    const CompiledModule A = makeArtifact(80);
    Probe.store(A);
    return fileSize(Probe.pathFor(A.IRHash, A.Fingerprint));
  }();
  std::system(("rm -rf " + Dir).c_str());

  FileArtifactStore::Options Opts;
  Opts.MaxBytes = ProbeSize * 3; // a few artifacts fit; eight do not
  FileArtifactStore Store(Dir, Opts);
  for (uint64_t Seed = 80; Seed < 88; ++Seed) {
    Store.store(makeArtifact(Seed));
    EXPECT_LE(storeBytes(Dir), Opts.MaxBytes)
        << "budget must hold after every store, not eventually";
  }
  EXPECT_GE(Store.stats().Evictions, 1u);
  // The store still works: the newest key must have survived and load.
  const CompiledModule Last = makeArtifact(87);
  EXPECT_NE(Store.load(Last.IRHash, Last.Fingerprint, true), nullptr);
}

TEST_F(ArtifactStoreTest, LoadBumpsRecencySoHotKeysSurviveGc) {
  const CompiledModule A = makeArtifact(73); // oldest... but loaded (hot)
  const CompiledModule B = makeArtifact(74); // cold: the eviction victim
  const CompiledModule C = makeArtifact(75);
  size_t Sizes = 0;
  {
    FileArtifactStore Store(Dir);
    Store.store(A);
    Store.store(B);
    ageFile(Store.pathFor(A.IRHash, A.Fingerprint), 2000);
    ageFile(Store.pathFor(B.IRHash, B.Fingerprint), 1000);
    // The load bumps A's mtime to now: A is younger than B again.
    ASSERT_NE(Store.load(A.IRHash, A.Fingerprint, true), nullptr);
    Store.store(C);
    Sizes = storeBytes(Dir);
  }
  FileArtifactStore::Options Opts;
  Opts.MaxBytes = Sizes - 1; // forces at least one eviction
  FileArtifactStore Store(Dir, Opts);
  EXPECT_EQ(Store.load(B.IRHash, B.Fingerprint, true), nullptr)
      << "the unloaded key is the LRU victim";
  EXPECT_NE(Store.load(A.IRHash, A.Fingerprint, true), nullptr)
      << "the loaded key was bumped hot and must survive";
  EXPECT_NE(Store.load(C.IRHash, C.Fingerprint, true), nullptr);
}

TEST_F(ArtifactStoreTest, TempSweepSparesLiveWritersTwoProcess) {
  // Two stores over one directory: the second store's open must sweep
  // the temp of a DEAD writer process but spare a LIVE one mid-store —
  // yanking a live temp would break the concurrent writer's rename.
  {
    FileArtifactStore Store(Dir);
    ASSERT_TRUE(Store.valid());
  }
  // The dead writer: a real child process that leaves a parseable temp
  // (its own pid) and exits before the sweep runs.
  const pid_t Child = ::fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    char Name[512];
    std::snprintf(Name, sizeof(Name), "%s/.tmp-%016lx-%016lx", Dir.c_str(),
                  static_cast<unsigned long>(::getpid()), 0ul);
    const int Fd = ::open(Name, O_WRONLY | O_CREAT, 0666);
    if (Fd >= 0)
      ::close(Fd);
    ::_exit(0);
  }
  ASSERT_EQ(::waitpid(Child, nullptr, 0), Child);
  char DeadTemp[512], LiveTemp[512];
  std::snprintf(DeadTemp, sizeof(DeadTemp), "%s/.tmp-%016lx-%016lx",
                Dir.c_str(), static_cast<unsigned long>(Child), 0ul);
  struct stat St;
  ASSERT_EQ(::stat(DeadTemp, &St), 0) << "child must have left its temp";
  // The live writer: this process, temp freshly created.
  std::snprintf(LiveTemp, sizeof(LiveTemp), "%s/.tmp-%016lx-%016lx",
                Dir.c_str(), static_cast<unsigned long>(::getpid()), 1ul);
  writeFile(LiveTemp, {0x11});

  FileArtifactStore Store(Dir);
  EXPECT_NE(::stat(DeadTemp, &St), 0) << "dead writer's temp must be swept";
  EXPECT_EQ(::stat(LiveTemp, &St), 0) << "live writer's temp must be spared";
  ::unlink(LiveTemp);
}

TEST_F(ArtifactStoreTest, AgedTempOfForeignLiveProcessIsSwept) {
  // A temp owned by a live pid we cannot prove dead (pid 1) is spared
  // while fresh but presumed abandoned once it ages past the threshold.
  {
    FileArtifactStore Store(Dir);
    ASSERT_TRUE(Store.valid());
  }
  char Temp[512];
  std::snprintf(Temp, sizeof(Temp), "%s/.tmp-%016lx-%016lx", Dir.c_str(), 1ul,
                0ul);
  writeFile(Temp, {0x22});
  struct stat St;
  {
    FileArtifactStore Store(Dir);
    EXPECT_EQ(::stat(Temp, &St), 0) << "fresh foreign temp must be spared";
  }
  ageFile(Temp, 2 * 3600);
  {
    FileArtifactStore Store(Dir);
    EXPECT_NE(::stat(Temp, &St), 0) << "aged foreign temp must be swept";
  }
}

//===----------------------------------------------------------------------===//
// CompileService + persistence integration
//===----------------------------------------------------------------------===//

TEST_F(ArtifactStoreTest, ServiceWarmStartsFromDisk) {
  Context Ctx;
  Module M(Ctx, "persist");
  Function *F = buildKernel(M, 51);

  CompileService::Artifact ColdArt;
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CacheSource Src = CacheSource::MemoryHit;
    ColdArt = Svc.getOrCompile(*F, DARMConfig(), true, &Src);
    EXPECT_EQ(Src, CacheSource::Compiled);
    EXPECT_EQ(Store.stats().Stores, 1u);
  }
  // The restart: a fresh service over the same directory serves the key
  // from disk — zero recompiles — and the artifact is byte-identical.
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CacheSource Src = CacheSource::Compiled;
    CompileService::Artifact Warm = Svc.getOrCompile(*F, DARMConfig(), true, &Src);
    EXPECT_EQ(Src, CacheSource::DiskHit);
    EXPECT_EQ(serializeCompiledModule(*Warm), serializeCompiledModule(*ColdArt));
    CompileService::CacheStats St = Svc.stats();
    EXPECT_EQ(St.Misses, 0u);
    EXPECT_EQ(St.DiskHits, 1u);
    // The disk hit was promoted into memory: the duplicate is a pure
    // memory hit, no second disk read.
    Svc.getOrCompile(*F, DARMConfig(), true, &Src);
    EXPECT_EQ(Src, CacheSource::MemoryHit);
    EXPECT_EQ(Store.stats().Loads, 1u);
  }
}

TEST_F(ArtifactStoreTest, ServiceRecompilesOverCorruptFile) {
  Context Ctx;
  Module M(Ctx, "heal");
  Function *F = buildKernel(M, 52);

  std::string Path;
  std::vector<uint8_t> Expect;
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CompileService::Artifact Art = Svc.getOrCompile(*F, DARMConfig());
    Expect = serializeCompiledModule(*Art);
    Path = Store.pathFor(Art->IRHash, Art->Fingerprint);
  }
  // Corrupt the persisted file (a torn rename, a bad disk)...
  std::vector<uint8_t> Bad(Expect.begin(), Expect.begin() + Expect.size() / 3);
  writeFile(Path, Bad);
  // ...the restarted service misses, recompiles, answers correctly, and
  // re-persists over the bad file.
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CacheSource Src = CacheSource::MemoryHit;
    CompileService::Artifact Art = Svc.getOrCompile(*F, DARMConfig(), true, &Src);
    EXPECT_EQ(Src, CacheSource::Compiled);
    EXPECT_EQ(serializeCompiledModule(*Art), Expect);
    EXPECT_EQ(Store.stats().Stores, 1u) << "the corrupt file must be healed";
  }
  // Third start: clean disk hit again.
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CacheSource Src = CacheSource::Compiled;
    Svc.getOrCompile(*F, DARMConfig(), true, &Src);
    EXPECT_EQ(Src, CacheSource::DiskHit);
  }
}

TEST_F(ArtifactStoreTest, ProgramlessDiskEntryUpgradesOnDemand) {
  Context Ctx;
  Module M(Ctx, "upgrade");
  Function *F = buildKernel(M, 53);
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    Svc.getOrCompile(*F, DARMConfig(), /*IncludeProgram=*/false);
  }
  // The restart asks for a program image: the program-less disk file
  // cannot satisfy it (NeedProgram gate), so the service recompiles and
  // the store() upgrade-replaces the incumbent.
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CacheSource Src = CacheSource::MemoryHit;
    CompileService::Artifact Art =
        Svc.getOrCompile(*F, DARMConfig(), /*IncludeProgram=*/true, &Src);
    EXPECT_EQ(Src, CacheSource::Compiled);
    EXPECT_FALSE(Art->ProgramBytes.empty());
    EXPECT_EQ(Store.stats().Stores, 1u) << "program upgrade must be written";
  }
  // Now the full artifact serves from disk.
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CacheSource Src = CacheSource::Compiled;
    CompileService::Artifact Art =
        Svc.getOrCompile(*F, DARMConfig(), /*IncludeProgram=*/true, &Src);
    EXPECT_EQ(Src, CacheSource::DiskHit);
    EXPECT_FALSE(Art->ProgramBytes.empty());
  }
}

TEST_F(ArtifactStoreTest, NegativeResultsPersist) {
  // A failed compile is a cacheable negative result in memory
  // (docs/caching.md) — and on disk: the restart must not retry the
  // doomed compile.
  Context Ctx;
  Module M(Ctx, "neg");
  Function *F = buildKernel(M, 54);
  const std::string FP = "serve-test-fail-v1";
  unsigned Runs = 0;
  // Verifier-rejected output (a block with no terminator), as in the
  // in-memory negative-caching test.
  const CompileFn Fail = [&Runs](Function &K, DARMStats &) {
    ++Runs;
    K.createBlock("dangling");
  };
  std::string ColdError;
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CompileService::Artifact Art = Svc.getOrCompile(*F, FP, Fail);
    ASSERT_TRUE(Art->failed());
    ColdError = Art->CompileError;
    EXPECT_EQ(Store.stats().Stores, 1u);
  }
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CacheSource Src = CacheSource::Compiled;
    CompileService::Artifact Art = Svc.getOrCompile(*F, FP, Fail, true, &Src);
    EXPECT_EQ(Src, CacheSource::DiskHit);
    EXPECT_TRUE(Art->failed());
    EXPECT_EQ(Art->CompileError, ColdError);
    EXPECT_EQ(Runs, 1u) << "the doomed compile must not rerun after restart";
  }
}

} // namespace
