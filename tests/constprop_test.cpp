//===- constprop_test.cpp - Sparse conditional constant propagation tests -----===//
//
// Per-pass gates (docs/passes.md): positive cases where the pass must
// fire, negative cases where it must not, verifier cleanliness after
// every rewrite, and idempotence — a second run reports no change.
//
//===----------------------------------------------------------------------===//

#include "darm/analysis/Verifier.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/transform/ConstProp.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

Function *parse(Context &Ctx, std::unique_ptr<Module> &Keep,
                const std::string &Text) {
  std::string Err;
  Keep = parseModule(Ctx, Text, &Err);
  EXPECT_NE(Keep, nullptr) << Err;
  return Keep ? Keep->functions().front().get() : nullptr;
}

void expectCleanAndIdempotent(Function &F, bool (*Pass)(Function &)) {
  std::string Err;
  EXPECT_TRUE(verifyFunction(F, &Err)) << Err << printFunction(F);
  const std::string Once = printFunction(F);
  EXPECT_FALSE(Pass(F)) << "second run still changed:\n" << printFunction(F);
  EXPECT_EQ(printFunction(F), Once);
}

TEST(ConstPropTest, FoldsConstantChain) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out) -> void {
entry:
  %a = add i32 4, 6
  %b = mul i32 %a, 2
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %b, i32 addrspace(1)* %p
  ret
}
)");
  EXPECT_TRUE(propagateConstants(*F));
  const std::string Out = printFunction(*F);
  EXPECT_NE(Out.find("store i32 20"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("add i32"), std::string::npos) << Out;
  expectCleanAndIdempotent(*F, propagateConstants);
}

TEST(ConstPropTest, ResolvesConstantBranchAndDeletesDeadArm) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out) -> void {
entry:
  %c = icmp slt i32 2, 5
  condbr i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  %v = phi i32 [ 1, %t ], [ 2, %e ]
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %v, i32 addrspace(1)* %p
  ret
}
)");
  EXPECT_TRUE(propagateConstants(*F));
  const std::string Out = printFunction(*F);
  // The branch resolved to the true arm, the false arm is unreachable and
  // deleted, and the join phi collapsed to the constant 1.
  EXPECT_EQ(Out.find("condbr"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("\ne:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("store i32 1,"), std::string::npos) << Out;
  expectCleanAndIdempotent(*F, propagateConstants);
}

// The "sparse conditional" part: a phi only merges values over feasible
// edges, so a constant flowing around a statically-dead arm stays a
// constant even though the dead arm would contribute a different value.
TEST(ConstPropTest, IgnoresInfeasiblePhiInputs) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out, i32 %n) -> void {
entry:
  condbr i1 false, label %dead, label %live
dead:
  %x = add i32 %n, 1
  br label %j
live:
  br label %j
j:
  %v = phi i32 [ %x, %dead ], [ 7, %live ]
  %w = mul i32 %v, 3
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %w, i32 addrspace(1)* %p
  ret
}
)");
  EXPECT_TRUE(propagateConstants(*F));
  const std::string Out = printFunction(*F);
  EXPECT_NE(Out.find("store i32 21"), std::string::npos) << Out;
  expectCleanAndIdempotent(*F, propagateConstants);
}

// Negative: runtime inputs are overdefined, so nothing may fold — and in
// particular loads and stores must survive untouched.
TEST(ConstPropTest, DoesNotFireOnRuntimeValues) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out, i32 %n) -> void {
entry:
  %a = add i32 %n, 1
  %c = icmp slt i32 %a, 10
  condbr i1 %c, label %t, label %j
t:
  br label %j
j:
  %v = phi i32 [ %a, %t ], [ %n, %entry ]
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %v, i32 addrspace(1)* %p
  ret
}
)");
  const std::string Before = printFunction(*F);
  EXPECT_FALSE(propagateConstants(*F));
  EXPECT_EQ(printFunction(*F), Before);
}

// Division by zero is total (defined as 0) in this IR, so SCCP may fold
// it — but only to the simulator's semantics.
TEST(ConstPropTest, FoldsTotalDivisionSemantics) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out) -> void {
entry:
  %a = sdiv i32 5, 0
  %b = srem i32 -8, 0
  %c = add i32 %a, %b
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %c, i32 addrspace(1)* %p
  ret
}
)");
  EXPECT_TRUE(propagateConstants(*F));
  const std::string Out = printFunction(*F);
  // sdiv 5,0 == 0 and srem -8,0 == 0 under the total semantics.
  EXPECT_NE(Out.find("store i32 0,"), std::string::npos) << Out;
  expectCleanAndIdempotent(*F, propagateConstants);
}

} // namespace
