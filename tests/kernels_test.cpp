//===- kernels_test.cpp - Benchmark kernels under every transform ---------------===//
//
// Parameterized sweep (the repo's most important integration property):
// every benchmark kernel, at every paper block size, transformed by every
// pipeline (none / tail merge / branch fusion / DARM), must still verify
// and produce results identical to the independent host reference.
//
//===----------------------------------------------------------------------===//

#include "darm/analysis/Verifier.h"
#include "darm/core/DARMPass.h"
#include "darm/core/TailMerge.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/kernels/Benchmark.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

struct SweepParam {
  std::string Bench;
  unsigned BlockSize;
  std::string Transform; // "none", "tailmerge", "bf", "darm"
};

std::string paramName(const ::testing::TestParamInfo<SweepParam> &Info) {
  return Info.param.Bench + "_bs" + std::to_string(Info.param.BlockSize) +
         "_" + Info.param.Transform;
}

std::vector<SweepParam> allParams() {
  std::vector<SweepParam> Params;
  std::vector<std::string> Names = realBenchmarkNames();
  for (const std::string &S : syntheticBenchmarkNames())
    Names.push_back(S);
  for (const std::string &N : Names)
    for (unsigned BS : paperBlockSizes(N))
      for (const char *T : {"none", "tailmerge", "bf", "darm"})
        Params.push_back({N, BS, T});
  return Params;
}

class KernelSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(KernelSweep, ValidatesAgainstHostReference) {
  const SweepParam &P = GetParam();
  auto Bench = createBenchmark(P.Bench, P.BlockSize);
  ASSERT_NE(Bench, nullptr);

  Context Ctx;
  Module M(Ctx, P.Bench);
  Function *F = Bench->build(M);
  std::string Err;
  ASSERT_TRUE(verifyFunction(*F, &Err)) << Err << "\n" << printFunction(*F);

  if (P.Transform == "tailmerge")
    runTailMerge(*F);
  else if (P.Transform == "bf")
    runBranchFusion(*F);
  else if (P.Transform == "darm")
    runDARM(*F);
  ASSERT_TRUE(verifyFunction(*F, &Err)) << Err << "\n" << printFunction(*F);

  SimStats Stats;
  std::string Why;
  EXPECT_TRUE(runAndValidate(*Bench, *F, Stats, &Why))
      << Why << "\n"
      << printFunction(*F);
  EXPECT_GT(Stats.InstructionsIssued, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, KernelSweep,
                         ::testing::ValuesIn(allParams()), paramName);

// DARM must strictly reduce cycles on the benchmarks the paper highlights
// as its biggest wins (BIT and PCM are divergent at every block size).
class MeldingWins : public ::testing::TestWithParam<std::string> {};

TEST_P(MeldingWins, DarmReducesCycles) {
  const std::string BenchName = GetParam();
  for (unsigned BS : paperBlockSizes(BenchName)) {
    auto Bench = createBenchmark(BenchName, BS);
    Context Ctx;
    Module M(Ctx, BenchName);
    Function *Base = Bench->build(M);
    Function *Melded = Bench->build(M);
    DARMStats DS;
    ASSERT_TRUE(runDARM(*Melded, DARMConfig(), &DS))
        << BenchName << " bs" << BS << ": DARM changed nothing";
    ASSERT_GT(DS.RegionsMelded, 0u)
        << BenchName << " bs" << BS << ": DARM found nothing to meld";

    SimStats SBase, SMeld;
    std::string Why;
    ASSERT_TRUE(runAndValidate(*Bench, *Base, SBase, &Why)) << Why;
    ASSERT_TRUE(runAndValidate(*Bench, *Melded, SMeld, &Why)) << Why;
    EXPECT_LT(SMeld.Cycles, SBase.Cycles) << BenchName << " bs" << BS;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperWins, MeldingWins,
                         ::testing::Values("BIT", "PCM", "DCT"));

} // namespace
