//===- property_test.cpp - Randomized end-to-end properties ----------------------===//
//
// Property-based testing of the whole pipeline: a generator produces
// random SPMD kernels full of divergent control flow (diamonds, one-sided
// ifs, 3-way chains, nested regions) over shared memory; for every seed,
// every transformation must (a) keep the verifier green and (b) leave the
// simulated memory image bit-identical to the untransformed kernel.
//
//===----------------------------------------------------------------------===//

#include "darm/analysis/Verifier.h"
#include "darm/core/DARMPass.h"
#include "darm/core/SequenceAlign.h"
#include "darm/core/TailMerge.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/sim/Simulator.h"
#include "darm/support/RNG.h"
#include "darm/transform/DCE.h"
#include "darm/transform/SimplifyCFG.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

/// Builds a random straight-line arithmetic expression over \p Pool.
Value *randomExpr(IRBuilder &B, RNG &Rng, std::vector<Value *> &Pool) {
  Value *A = Pool[Rng.nextBelow(Pool.size())];
  Value *C = Pool[Rng.nextBelow(Pool.size())];
  static const Opcode Ops[] = {Opcode::Add, Opcode::Sub,  Opcode::Mul,
                               Opcode::And, Opcode::Or,   Opcode::Xor,
                               Opcode::Shl, Opcode::AShr, Opcode::SDiv};
  Opcode Op = Ops[Rng.nextBelow(std::size(Ops))];
  if (Op == Opcode::Shl || Op == Opcode::AShr)
    C = B.getInt32(static_cast<int32_t>(Rng.nextBelow(5)));
  Value *R = B.createBinary(Op, A, C);
  Pool.push_back(R);
  return R;
}

/// Emits a random arm body: some arithmetic and a store to sh[tid].
void randomArm(IRBuilder &B, RNG &Rng, std::vector<Value *> Pool,
               Value *ShTid) {
  unsigned N = 1 + static_cast<unsigned>(Rng.nextBelow(4));
  Value *Last = Pool.back();
  for (unsigned I = 0; I < N; ++I)
    Last = randomExpr(B, Rng, Pool);
  B.createStore(Last, ShTid);
}

/// One random divergent region appended at the builder's position.
/// Shapes: 0 diamond, 1 if-then/if-then, 2 three-way chain, 3 nested.
void randomRegion(Function *F, IRBuilder &B, RNG &Rng,
                  std::vector<Value *> Pool, Value *Tid, Value *ShTid,
                  unsigned Depth) {
  Context &Ctx = B.getContext();
  Value *X = B.createLoad(ShTid, "x");
  Pool.push_back(X);
  Value *CondSrc = B.createXor(Tid, B.getInt32(static_cast<int32_t>(
                                        Rng.nextBelow(64))));
  Value *Cond = B.createICmp(
      static_cast<ICmpPred>(Rng.nextBelow(6)), // EQ..SGE
      B.createAnd(CondSrc, B.getInt32(3)),
      B.getInt32(static_cast<int32_t>(Rng.nextBelow(4))), "divcond");

  BasicBlock *T = F->createBlock("rt");
  BasicBlock *E = F->createBlock("re");
  BasicBlock *J = F->createBlock("rj");
  B.createCondBr(Cond, T, E);

  unsigned Shape = static_cast<unsigned>(Rng.nextBelow(Depth > 0 ? 4 : 3));
  auto EmitSide = [&](BasicBlock *BB) {
    B.setInsertPoint(BB);
    switch (Shape) {
    case 1: { // if-then inside the arm
      Value *P = B.createICmp(ICmpPred::SGT, X,
                              B.getInt32(static_cast<int32_t>(
                                  Rng.nextInRange(-20, 20))));
      BasicBlock *Then = F->createBlock("st");
      BasicBlock *Join = F->createBlock("sj");
      B.createCondBr(P, Then, Join);
      B.setInsertPoint(Then);
      randomArm(B, Rng, Pool, ShTid);
      B.createBr(Join);
      B.setInsertPoint(Join);
      randomArm(B, Rng, Pool, ShTid);
      break;
    }
    case 3: // nested divergent region
      randomRegion(F, B, Rng, Pool, Tid, ShTid, Depth - 1);
      randomArm(B, Rng, Pool, ShTid);
      break;
    default:
      randomArm(B, Rng, Pool, ShTid);
      break;
    }
    B.createBr(J);
  };
  EmitSide(T);
  // Three-way: the else side opens another branch.
  if (Shape == 2) {
    B.setInsertPoint(E);
    Value *C2 = B.createICmp(ICmpPred::EQ, B.createAnd(Tid, B.getInt32(1)),
                             B.getInt32(0));
    BasicBlock *E1 = F->createBlock("re1");
    BasicBlock *E2 = F->createBlock("re2");
    B.createCondBr(C2, E1, E2);
    B.setInsertPoint(E1);
    randomArm(B, Rng, Pool, ShTid);
    B.createBr(J);
    B.setInsertPoint(E2);
    randomArm(B, Rng, Pool, ShTid);
    B.createBr(J);
  } else {
    EmitSide(E);
  }
  B.setInsertPoint(J);
  // The join occasionally merges a value via phi as well.
  (void)Ctx;
}

Function *buildRandomKernel(Module &M, uint64_t Seed, unsigned BlockSize) {
  RNG Rng(Seed);
  Context &Ctx = M.getContext();
  Type *I32 = Ctx.getInt32Ty();
  Type *GPtr = Ctx.getPointerTy(I32, AddressSpace::Global);
  Function *F = M.createFunction("rand" + std::to_string(Seed),
                                 Ctx.getVoidTy(), {{GPtr, "data"}});
  SharedArray *Sh = F->createSharedArray(I32, BlockSize, "sh");

  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(Ctx, Entry);
  Value *Tid = B.createThreadIdX();
  Value *Gid = B.createAdd(
      B.createMul(B.createBlockIdX(), B.createBlockDimX()), Tid, "gid");
  Value *ShTid = B.createGep(Sh, Tid, "shtid");
  B.createStore(B.createLoadAt(F->getArg(0), Gid, "in"), ShTid);
  B.createBarrier();

  std::vector<Value *> Pool = {Tid, B.getInt32(3), B.getInt32(-7),
                               B.getInt32(11)};
  unsigned Regions = 1 + static_cast<unsigned>(Rng.nextBelow(3));
  for (unsigned R = 0; R < Regions; ++R) {
    randomRegion(F, B, Rng, Pool, Tid, ShTid, /*Depth=*/1);
    B.createBarrier();
  }
  B.createStoreAt(B.createLoad(ShTid, "out"), F->getArg(0), Gid);
  B.createRet();
  return F;
}

std::vector<int32_t> runOnce(Function &F, unsigned BlockSize,
                             uint64_t Seed) {
  const unsigned Grid = 2;
  unsigned N = Grid * BlockSize;
  GlobalMemory Mem;
  uint64_t Data = Mem.allocate(N * 4);
  RNG Rng(Seed * 77 + 5);
  std::vector<int32_t> In(N);
  for (unsigned I = 0; I < N; ++I)
    In[I] = static_cast<int32_t>(Rng.nextInRange(-1000, 1000));
  Mem.fillI32(Data, In);
  runKernel(F, {Grid, BlockSize}, {Data}, Mem);
  return Mem.dumpI32(Data, N);
}

class RandomPrograms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPrograms, TransformsPreserveSemantics) {
  uint64_t Seed = GetParam();
  const unsigned BlockSize = 64;

  Context Ctx;
  Module M(Ctx, "prop");
  Function *Base = buildRandomKernel(M, Seed, BlockSize);
  std::string Err;
  ASSERT_TRUE(verifyFunction(*Base, &Err)) << Err;
  std::vector<int32_t> Expected = runOnce(*Base, BlockSize, Seed);

  struct Pipe {
    const char *Name;
    std::function<void(Function &)> Run;
  };
  const Pipe Pipes[] = {
      {"darm", [](Function &F) { runDARM(F); }},
      {"bf", [](Function &F) { runBranchFusion(F); }},
      {"tailmerge", [](Function &F) { runTailMerge(F); }},
      {"simplify",
       [](Function &F) {
         simplifyCFG(F);
         eliminateDeadCode(F);
       }},
      {"darm+simplify",
       [](Function &F) {
         runDARM(F);
         simplifyCFG(F);
         eliminateDeadCode(F);
       }},
  };
  for (const Pipe &P : Pipes) {
    Function *F = buildRandomKernel(M, Seed, BlockSize);
    P.Run(*F);
    ASSERT_TRUE(verifyFunction(*F, &Err))
        << P.Name << " seed " << Seed << ": " << Err << "\n"
        << printFunction(*F);
    EXPECT_EQ(runOnce(*F, BlockSize, Seed), Expected)
        << P.Name << " changed semantics for seed " << Seed << "\n"
        << printFunction(*F);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<uint64_t>(0, 48));

// The printer/parser must round-trip random programs exactly.
class RoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTrip, PrintParsePrintIsStable) {
  uint64_t Seed = GetParam();
  Context Ctx;
  Module M(Ctx, "rt");
  Function *F = buildRandomKernel(M, Seed, 64);
  std::string Once = printFunction(*F);

  Context Ctx2;
  std::string Err;
  auto M2 = parseModule(Ctx2, Once, &Err);
  ASSERT_NE(M2, nullptr) << Err << "\n" << Once;
  Function *F2 = M2->functions().front().get();
  ASSERT_TRUE(verifyFunction(*F2, &Err)) << Err;
  EXPECT_EQ(printFunction(*F2), Once);

  // Parsed kernels must also behave identically.
  EXPECT_EQ(runOnce(*F, 64, Seed), runOnce(*F2, 64, Seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Range<uint64_t>(0, 16));

// smithWaterman guarantees full coverage: the returned alignment visits
// every index of both sequences exactly once, in order, whatever the
// score matrix looks like. These invariants hold for *any* scores, so we
// check them under randomized (including adversarially negative) ones.
class SmithWatermanProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SmithWatermanProperty, FullCoverageInvariants) {
  uint64_t Seed = GetParam();
  RNG Rng(Seed * 131 + 17);
  const unsigned LenA = static_cast<unsigned>(Rng.nextBelow(12));
  const unsigned LenB = static_cast<unsigned>(Rng.nextBelow(12));

  // Random dense score matrix in [-5, 5], with occasional large
  // negative "incompatible" entries like the melder's scorers emit.
  std::vector<double> Scores(std::max(1u, LenA * LenB));
  for (double &S : Scores) {
    S = static_cast<double>(Rng.nextInRange(-50, 50)) / 10.0;
    if (Rng.chance(1, 8))
      S = -1e6;
  }
  auto Score = [&](unsigned I, unsigned J) { return Scores[I * LenB + J]; };
  const double Gap = -static_cast<double>(Rng.nextBelow(20)) / 10.0;

  std::vector<AlignEntry> Align = smithWaterman(LenA, LenB, Score, Gap);

  // Every index of each sequence appears exactly once, in increasing
  // order.
  std::vector<int> SeenA, SeenB;
  for (const AlignEntry &E : Align) {
    EXPECT_TRUE(E.A >= 0 || E.B >= 0) << "double gap entry";
    if (E.A >= 0)
      SeenA.push_back(E.A);
    if (E.B >= 0)
      SeenB.push_back(E.B);
  }
  ASSERT_EQ(SeenA.size(), LenA) << "seed " << Seed;
  ASSERT_EQ(SeenB.size(), LenB) << "seed " << Seed;
  for (unsigned I = 0; I < LenA; ++I)
    EXPECT_EQ(SeenA[I], static_cast<int>(I));
  for (unsigned J = 0; J < LenB; ++J)
    EXPECT_EQ(SeenB[J], static_cast<int>(J));

  // Matches are monotone in both sequences (no crossing alignment), and
  // the window score reported by smithWatermanScore is non-negative.
  int LastA = -1, LastB = -1;
  for (const AlignEntry &E : Align)
    if (E.isMatch()) {
      EXPECT_GT(E.A, LastA);
      EXPECT_GT(E.B, LastB);
      LastA = E.A;
      LastB = E.B;
    }
  EXPECT_GE(smithWatermanScore(LenA, LenB, Score, Gap), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmithWatermanProperty,
                         ::testing::Range<uint64_t>(0, 64));

// TailMerge's contract on store ordering, pinned differentially under
// the simulator: when two lanes on *opposite arms* of a diamond store
// different values to the same shared address, the unmerged kernel
// serializes then-arm stores before else-arm stores (IPDOM stack order),
// and tail merging — which collapses the two identical-shape arms into
// one block executed under the full mask — must preserve the final
// memory image exactly. Arm-local operands make the two stores
// structurally identical, which is precisely TailMerge's trigger.
TEST(TailMergeSemantics, OppositeArmStoresToSameAddress) {
  const char *Text =
      "func @clash(i32 addrspace(1)* %out) -> void {\n"
      "  shared @sh = i32[32]\n"
      "entry:\n"
      "  %tid = call i32 @darm.tid.x()\n"
      "  %zero = and i32 %tid, 0\n"
      "  %p = gep i32 addrspace(3)* @sh, i32 %zero\n"
      "  %c = icmp eq i32 %tid, 0\n"
      "  condbr i1 %c, label %t, label %e\n"
      "t:\n"
      "  %vt = add i32 %tid, 100\n"
      "  store i32 %vt, i32 addrspace(3)* %p\n"
      "  br label %j\n"
      "e:\n"
      "  %ve = add i32 %tid, 100\n"
      "  store i32 %ve, i32 addrspace(3)* %p\n"
      "  br label %j\n"
      "j:\n"
      "  call void @darm.barrier()\n"
      "  %r = load i32 addrspace(3)* %p\n"
      "  %o = gep i32 addrspace(1)* %out, i32 %tid\n"
      "  store i32 %r, i32 addrspace(1)* %o\n"
      "  ret\n"
      "}\n";

  auto Run = [&](bool Merge) {
    Context Ctx;
    std::string Err;
    auto M = parseModule(Ctx, Text, &Err);
    EXPECT_NE(M, nullptr) << Err;
    Function *F = M->functions().front().get();
    if (Merge) {
      EXPECT_TRUE(runTailMerge(*F)) << "tail merge did not fire:\n"
                                    << printFunction(*F);
      EXPECT_TRUE(verifyFunction(*F, &Err)) << Err;
    }
    GlobalMemory Mem;
    uint64_t Out = Mem.allocate(32 * 4);
    runKernel(*F, {1, 32}, {Out}, Mem);
    return Mem.dumpI32(Out, 32);
  };

  std::vector<int32_t> Ref = Run(false);
  std::vector<int32_t> Merged = Run(true);
  EXPECT_EQ(Ref, Merged);

  // In the unmerged kernel the then-arm lane (tid 0, value 100) executes
  // first and the else-arm lanes (last: tid 31, value 131) overwrite it;
  // the merged block keeps the same full-mask lane order. Both must see
  // sh[0] == 131 everywhere.
  for (unsigned L = 0; L < 32; ++L)
    EXPECT_EQ(Ref[L], 131) << "lane " << L;
}

} // namespace
