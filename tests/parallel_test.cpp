//===- parallel_test.cpp - Work-scheduling subsystem tests ------------------------===//
//
// Covers the sweep thread pool (support/Parallel.h): ordered parallelMap
// results, deterministic lowest-index exception propagation, pool reuse
// across batches (including after a failure), the jobs=1 inline
// guarantee, and the per-thread fatal-error handler the pool's workers
// rely on (support/ErrorHandling.h) — installation in one thread must
// neither leak into nor race with another thread's dispatch.
//
//===----------------------------------------------------------------------===//

#include "darm/fuzz/KernelGenerator.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/support/ErrorHandling.h"
#include "darm/support/Parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

using namespace darm;

namespace {

TEST(ThreadPool, HardwareParallelismIsPositive) {
  EXPECT_GE(hardwareParallelism(), 1u);
  ThreadPool Default;
  EXPECT_EQ(Default.jobs(), hardwareParallelism());
  ThreadPool Zero(0); // clamped, not a hang
  EXPECT_EQ(Zero.jobs(), 1u);
}

TEST(ParallelMap, OrderedResultsAtAnyPoolSize) {
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Jobs);
    std::vector<int> Out = parallelMap<int>(Pool, 100, [](size_t I) {
      if (I % 7 == 0) // perturb scheduling
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      return static_cast<int>(I * I);
    });
    ASSERT_EQ(Out.size(), 100u);
    for (size_t I = 0; I < Out.size(); ++I)
      EXPECT_EQ(Out[I], static_cast<int>(I * I)) << "jobs " << Jobs;
  }
}

TEST(ParallelMap, EveryIndexRunsExactlyOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Counts(500);
  Pool.forIndices(500, [&](size_t I) { ++Counts[I]; });
  for (size_t I = 0; I < Counts.size(); ++I)
    EXPECT_EQ(Counts[I].load(), 1) << "index " << I;
}

TEST(ParallelMap, LowestIndexExceptionWins) {
  // Every item throws its own index; the scheduler guarantees every item
  // below the lowest recorded failure still runs, so index 0's exception
  // must be the one rethrown — on every run, at any pool size.
  for (int Round = 0; Round < 20; ++Round) {
    ThreadPool Pool(4);
    try {
      Pool.forIndices(64, [](size_t I) {
        throw std::runtime_error(std::to_string(I));
      });
      FAIL() << "forIndices swallowed the exception";
    } catch (const std::runtime_error &E) {
      EXPECT_STREQ(E.what(), "0");
    }
  }
}

TEST(ParallelMap, SingleThrowerPropagates) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Ran(32);
  try {
    Pool.forIndices(32, [&](size_t I) {
      ++Ran[I];
      if (I == 7)
        throw std::runtime_error("seven");
    });
    FAIL() << "forIndices swallowed the exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "seven");
  }
  // Indices below the reported thrower are never skipped (that is what
  // makes the choice deterministic); later ones may have been skipped.
  for (size_t I = 0; I < 7; ++I)
    EXPECT_EQ(Ran[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, SkewedCostsDrainEveryItemExactlyOnce) {
  // Work-stealing stress: one item in the first chunk is far more
  // expensive than everything else, so the chunk it was claimed in must
  // be re-split by idle participants (steals) for the batch to finish
  // promptly. The pinned property is correctness under that churn —
  // every index runs exactly once, results stay ordered — at several
  // pool sizes and skew positions.
  for (unsigned Jobs : {2u, 4u, 8u}) {
    ThreadPool Pool(Jobs);
    for (size_t Expensive : {size_t{0}, size_t{1}, size_t{255}}) {
      constexpr size_t N = 256;
      std::vector<std::atomic<int>> Counts(N);
      std::vector<int> Out = parallelMap<int>(Pool, N, [&](size_t I) {
        ++Counts[I];
        if (I == Expensive)
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return static_cast<int>(I) + 1;
      });
      for (size_t I = 0; I < N; ++I) {
        EXPECT_EQ(Counts[I].load(), 1)
            << "jobs " << Jobs << " expensive " << Expensive << " idx " << I;
        EXPECT_EQ(Out[I], static_cast<int>(I) + 1);
      }
    }
  }
}

TEST(ThreadPool, SkewedFailureStaysDeterministic) {
  // The expensive item also throws, and a cheap lower-indexed item
  // throws too: no matter which one is observed first, the lower index
  // must win, because items below the recorded failure keep running.
  for (int Round = 0; Round < 10; ++Round) {
    ThreadPool Pool(4);
    try {
      Pool.forIndices(128, [](size_t I) {
        if (I == 100) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          throw std::runtime_error("slow-high");
        }
        if (I == 3)
          throw std::runtime_error("fast-low");
      });
      FAIL() << "forIndices swallowed the exception";
    } catch (const std::runtime_error &E) {
      EXPECT_STREQ(E.what(), "fast-low");
    }
  }
}

TEST(ThreadPool, ReusedAcrossBatchesIncludingAfterFailure) {
  ThreadPool Pool(4);
  for (int Batch = 0; Batch < 5; ++Batch) {
    std::atomic<int> Sum{0};
    Pool.forIndices(50, [&](size_t I) { Sum += static_cast<int>(I); });
    EXPECT_EQ(Sum.load(), 49 * 50 / 2) << "batch " << Batch;
    // A failing batch must not poison the pool for the next one.
    EXPECT_THROW(
        Pool.forIndices(8, [](size_t) { throw std::runtime_error("x"); }),
        std::runtime_error);
  }
}

TEST(ThreadPool, Jobs1RunsInlineOnTheCallingThread) {
  ThreadPool Pool(1);
  const std::thread::id Caller = std::this_thread::get_id();
  std::vector<std::thread::id> Ids(16);
  std::vector<size_t> Seen;
  Pool.forIndices(16, [&](size_t I) {
    Ids[I] = std::this_thread::get_id();
    Seen.push_back(I);
  });
  for (const std::thread::id &Id : Ids)
    EXPECT_EQ(Id, Caller);
  // Inline mode is the sequential loop: strictly ascending order.
  for (size_t I = 0; I < Seen.size(); ++I)
    EXPECT_EQ(Seen[I], I);
}

TEST(ThreadPool, UsesAtMostJobsThreads) {
  ThreadPool Pool(3);
  std::mutex M;
  std::set<std::thread::id> Ids;
  Pool.forIndices(64, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(20));
    std::lock_guard<std::mutex> Lock(M);
    Ids.insert(std::this_thread::get_id());
  });
  EXPECT_LE(Ids.size(), 3u);
}

TEST(ParallelMap, PerWorkerContextIRConstruction) {
  // The real sweep shape: every item builds a kernel into its own
  // Context. Printed text must match the sequential build bit-for-bit.
  ThreadPool Pool(4);
  std::vector<std::string> Parallel =
      parallelMap<std::string>(Pool, 24, [](size_t I) {
        Context Ctx;
        Module M(Ctx, "par");
        fuzz::FuzzCase C(static_cast<uint64_t>(I));
        return printFunction(*fuzz::buildFuzzKernel(M, C));
      });
  for (size_t I = 0; I < Parallel.size(); ++I) {
    Context Ctx;
    Module M(Ctx, "seq");
    fuzz::FuzzCase C(static_cast<uint64_t>(I));
    EXPECT_EQ(Parallel[I], printFunction(*fuzz::buildFuzzKernel(M, C)))
        << "seed " << I;
  }
}

//===----------------------------------------------------------------------===//
// Per-thread fatal-error handler (the regression tests for making
// support/ErrorHandling thread-safe).
//===----------------------------------------------------------------------===//

struct AbortA {
  std::string Msg;
};
struct AbortB {
  std::string Msg;
};
[[noreturn]] void raiseA(const char *Msg) { throw AbortA{Msg}; }
[[noreturn]] void raiseB(const char *Msg) { throw AbortB{Msg}; }

TEST(FatalHandler, InstallationIsThreadLocal) {
  // Installing a handler on one thread must not become visible on
  // another: a worker's scoped handler may never swallow (or redirect)
  // a different worker's abort.
  ScopedFatalErrorHandler Guard(raiseA);
  std::thread Other([] {
    // This thread never installed anything, so its slot is the default.
    FatalErrorHandler Prev = setFatalErrorHandler(nullptr);
    EXPECT_EQ(Prev, nullptr);
  });
  Other.join();
}

TEST(FatalHandler, ConcurrentDispatchNoCrossTalk) {
  // Four threads concurrently install different handlers and trigger
  // fatal errors; each must catch exactly its own exception type. Under
  // the old process-global slot this races (and cross-talks) reliably.
  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([T, &Failures] {
      for (int Round = 0; Round < 200; ++Round) {
        if (T % 2 == 0) {
          ScopedFatalErrorHandler Guard(raiseA);
          try {
            reportFatalError("boom-a");
          } catch (const AbortA &E) {
            if (E.Msg != "boom-a")
              ++Failures;
          } catch (...) {
            ++Failures; // wrong handler fired: cross-talk
          }
        } else {
          ScopedFatalErrorHandler Guard(raiseB);
          try {
            reportFatalError("boom-b");
          } catch (const AbortB &E) {
            if (E.Msg != "boom-b")
              ++Failures;
          } catch (...) {
            ++Failures;
          }
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
}

TEST(FatalHandler, ScopedHandlerRestoresPrevious) {
  FatalErrorHandler Before = setFatalErrorHandler(raiseA);
  {
    ScopedFatalErrorHandler Guard(raiseB);
    try {
      reportFatalError("inner");
      FAIL() << "handler did not fire";
    } catch (const AbortB &) {
    }
  }
  // Guard restored raiseA.
  try {
    reportFatalError("outer");
    FAIL() << "handler did not fire";
  } catch (const AbortA &) {
  }
  setFatalErrorHandler(Before);
}

} // namespace
