//===- loop_unroll_test.cpp - Divergent-loop unrolling tests ------------------===//
//
// Per-pass gates (docs/passes.md) for the canonicalization headliner:
// a bounded per-lane-trip loop becomes a straight-line ladder of early
// exits (branch divergence darm-meld can fuse), while uniform loops,
// unbounded loops, over-budget loops and multi-exit loops must survive
// untouched. Semantics across the rewrite are covered differentially by
// the fuzz oracle's loop-unroll config; these tests pin the structure.
//
//===----------------------------------------------------------------------===//

#include "darm/analysis/Verifier.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/transform/LoopUnroll.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

Function *parse(Context &Ctx, std::unique_ptr<Module> &Keep,
                const std::string &Text) {
  std::string Err;
  Keep = parseModule(Ctx, Text, &Err);
  EXPECT_NE(Keep, nullptr) << Err;
  return Keep ? Keep->functions().front().get() : nullptr;
}

void expectCleanAndIdempotent(Function &F) {
  std::string Err;
  EXPECT_TRUE(verifyFunction(F, &Err)) << Err << printFunction(F);
  const std::string Once = printFunction(F);
  EXPECT_FALSE(unrollDivergentLoops(F))
      << "second run still changed:\n" << printFunction(F);
  EXPECT_EQ(printFunction(F), Once);
}

/// A loop whose trip count is (lane & 3) + 1: divergent, bounded by 4.
const char *LaneTripLoop = R"(
func @f(i32 addrspace(1)* %out) -> void {
entry:
  %lane = call i32 @darm.laneid()
  %m = and i32 %lane, 3
  %trip = add i32 %m, 1
  br label %h
h:
  %iv = phi i32 [ 0, %entry ], [ %ivn, %b ]
  %acc = phi i32 [ 0, %entry ], [ %accn, %b ]
  %c = icmp slt i32 %iv, %trip
  condbr i1 %c, label %b, label %x
b:
  %accn = add i32 %acc, %iv
  %ivn = add i32 %iv, 1
  br label %h
x:
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %acc, i32 addrspace(1)* %p
  ret
}
)";

TEST(LoopUnrollTest, UnrollsDivergentBoundedLoop) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, LaneTripLoop);
  EXPECT_TRUE(unrollDivergentLoops(*F));
  const std::string Out = printFunction(*F);
  // Max trip 4 -> a ladder of guards h.u0..h.u4, and the rotating loop
  // (header with a backedge) is gone.
  EXPECT_NE(Out.find("h.u0:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("h.u4:"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("h.u5"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("\nh:"), std::string::npos) << Out;
  // The exit's value is now a multi-way merge over the ladder rungs.
  EXPECT_NE(Out.find("phi i32 [ 0, %h.u0 ]"), std::string::npos) << Out;
  expectCleanAndIdempotent(*F);
}

// Negative: a uniform loop (constant trip count) is not divergent — the
// unroller exists to trade loop divergence for meldable branch
// divergence, and must leave convergent loops to run as loops.
TEST(LoopUnrollTest, DoesNotUnrollUniformLoop) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out) -> void {
entry:
  br label %h
h:
  %iv = phi i32 [ 0, %entry ], [ %ivn, %b ]
  %c = icmp slt i32 %iv, 3
  condbr i1 %c, label %b, label %x
b:
  %ivn = add i32 %iv, 1
  br label %h
x:
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %iv, i32 addrspace(1)* %p
  ret
}
)");
  const std::string Before = printFunction(*F);
  EXPECT_FALSE(unrollDivergentLoops(*F));
  EXPECT_EQ(printFunction(*F), Before);
}

// Negative: a divergent trip count with no provable static bound (raw
// lane id, no mask) cannot be unrolled.
TEST(LoopUnrollTest, DoesNotUnrollUnboundedTrip) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out) -> void {
entry:
  %lane = call i32 @darm.laneid()
  %trip = add i32 %lane, 1
  br label %h
h:
  %iv = phi i32 [ 0, %entry ], [ %ivn, %b ]
  %c = icmp slt i32 %iv, %trip
  condbr i1 %c, label %b, label %x
b:
  %ivn = add i32 %iv, 1
  br label %h
x:
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %iv, i32 addrspace(1)* %p
  ret
}
)");
  const std::string Before = printFunction(*F);
  EXPECT_FALSE(unrollDivergentLoops(*F));
  EXPECT_EQ(printFunction(*F), Before);
}

// Negative: a bound above the trip-count budget (and (lane, 127)) + 1 has
// max trips 128 > the pass's cap — unrolling would bloat the kernel.
TEST(LoopUnrollTest, RespectsTripBudget) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out) -> void {
entry:
  %lane = call i32 @darm.laneid()
  %m = and i32 %lane, 127
  %trip = add i32 %m, 1
  br label %h
h:
  %iv = phi i32 [ 0, %entry ], [ %ivn, %b ]
  %c = icmp slt i32 %iv, %trip
  condbr i1 %c, label %b, label %x
b:
  %ivn = add i32 %iv, 1
  br label %h
x:
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %iv, i32 addrspace(1)* %p
  ret
}
)");
  const std::string Before = printFunction(*F);
  EXPECT_FALSE(unrollDivergentLoops(*F));
  EXPECT_EQ(printFunction(*F), Before);
}

// Negative: a second (side) exit out of the body breaks the single-exit
// contract the ladder construction relies on.
TEST(LoopUnrollTest, DoesNotUnrollMultiExitLoop) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out) -> void {
entry:
  %lane = call i32 @darm.laneid()
  %m = and i32 %lane, 3
  %trip = add i32 %m, 1
  br label %h
h:
  %iv = phi i32 [ 0, %entry ], [ %ivn, %b2 ]
  %c = icmp slt i32 %iv, %trip
  condbr i1 %c, label %b, label %x
b:
  %brk = icmp eq i32 %iv, 2
  condbr i1 %brk, label %out2, label %b2
b2:
  %ivn = add i32 %iv, 1
  br label %h
out2:
  ret
x:
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %iv, i32 addrspace(1)* %p
  ret
}
)");
  const std::string Before = printFunction(*F);
  EXPECT_FALSE(unrollDivergentLoops(*F));
  EXPECT_EQ(printFunction(*F), Before);
}

// Nested divergent loops: only the innermost is a candidate per round,
// and the driver re-runs until quiescent — an inner bounded loop unrolls
// even under an outer loop, which then still runs as a loop.
TEST(LoopUnrollTest, UnrollsInnerLoopOfNest) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 addrspace(1)* %out, i32 %t) -> void {
entry:
  %lane = call i32 @darm.laneid()
  %m = and i32 %lane, 1
  %trip = add i32 %m, 1
  br label %oh
oh:
  %oi = phi i32 [ 0, %entry ], [ %oin, %ox ]
  %oc = icmp slt i32 %oi, %t
  condbr i1 %oc, label %opre, label %done
opre:
  br label %ih
ih:
  %ii = phi i32 [ 0, %opre ], [ %iin, %ib ]
  %ic = icmp slt i32 %ii, %trip
  condbr i1 %ic, label %ib, label %ox
ib:
  %iin = add i32 %ii, 1
  br label %ih
ox:
  %oin = add i32 %oi, 1
  br label %oh
done:
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %oi, i32 addrspace(1)* %p
  ret
}
)");
  EXPECT_TRUE(unrollDivergentLoops(*F));
  const std::string Out = printFunction(*F);
  // The inner ladder exists; the outer loop's backedge block survives.
  EXPECT_NE(Out.find("ih.u0:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("ox:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\noh:"), std::string::npos) << Out;
  expectCleanAndIdempotent(*F);
}

} // namespace
