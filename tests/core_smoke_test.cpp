//===- core_smoke_test.cpp - End-to-end melding smoke tests ---------------------===//
//
// The pipeline's most important property: DARM preserves semantics while
// reducing divergence. These tests drive hand-built divergent kernels
// through the pass and compare simulator results and counters.
//
//===----------------------------------------------------------------------===//

#include "helpers/TestKernels.h"

#include "darm/analysis/Verifier.h"
#include "darm/core/DARMPass.h"
#include "darm/ir/IRPrinter.h"
#include "darm/sim/Simulator.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

TEST(CoreSmoke, DiamondMeldsAndPreservesSemantics) {
  Context Ctx;
  Module M(Ctx, "smoke");
  Function *F = testkernels::buildDiamondKernel(M, "diamond");
  ASSERT_TRUE(verifyFunction(*F));

  // Baseline run.
  GlobalMemory MemBase;
  uint64_t In = MemBase.allocate(64 * 4);
  uint64_t Out = MemBase.allocate(64 * 4);
  std::vector<int32_t> Input(64);
  for (int I = 0; I < 64; ++I)
    Input[I] = I * 7 - 100;
  MemBase.fillI32(In, Input);
  LaunchParams LP{1, 64};
  SimStats Base = runKernel(*F, LP, {In, Out}, MemBase);
  EXPECT_GT(Base.DivergentBranches, 0u);

  // Meld.
  DARMStats DS;
  ASSERT_TRUE(runDARM(*F, DARMConfig(), &DS));
  EXPECT_GE(DS.SubgraphPairsMelded, 1u);
  std::string Err;
  ASSERT_TRUE(verifyFunction(*F, &Err)) << Err << printFunction(*F);

  GlobalMemory MemMeld;
  uint64_t In2 = MemMeld.allocate(64 * 4);
  uint64_t Out2 = MemMeld.allocate(64 * 4);
  MemMeld.fillI32(In2, Input);
  SimStats Meld = runKernel(*F, LP, {In2, Out2}, MemMeld);

  EXPECT_EQ(MemBase.dumpI32(Out, 64), MemMeld.dumpI32(Out2, 64));
  // The diamond disappears: no divergent branches remain.
  EXPECT_EQ(Meld.DivergentBranches, 0u);
  EXPECT_LT(Meld.Cycles, Base.Cycles);
  EXPECT_GT(Meld.aluUtilization(), Base.aluUtilization());
}

TEST(CoreSmoke, BitonicStepRegionRegionMeld) {
  Context Ctx;
  Module M(Ctx, "smoke2");
  Function *F = testkernels::buildBitonicStepKernel(M, "bitonic_step", 128);
  ASSERT_TRUE(verifyFunction(*F));

  const unsigned N = 128;
  std::vector<int32_t> Input(N);
  for (unsigned I = 0; I < N; ++I)
    Input[I] = static_cast<int32_t>((I * 2654435761u) % 1000);

  auto Run = [&](Function &Kern, SimStats &Stats) {
    GlobalMemory Mem;
    uint64_t Data = Mem.allocate(N * 4);
    Mem.fillI32(Data, Input);
    LaunchParams LP{1, N};
    Stats = runKernel(Kern, LP, {Data, 2, 1}, Mem);
    return Mem.dumpI32(Data, N);
  };

  SimStats Base;
  std::vector<int32_t> BaseOut = Run(*F, Base);
  EXPECT_GT(Base.DivergentBranches, 0u);

  DARMStats DS;
  ASSERT_TRUE(runDARM(*F, DARMConfig(), &DS));
  std::string Err;
  ASSERT_TRUE(verifyFunction(*F, &Err)) << Err << printFunction(*F);
  EXPECT_GE(DS.RegionsMelded, 1u);

  SimStats Meld;
  std::vector<int32_t> MeldOut = Run(*F, Meld);
  EXPECT_EQ(BaseOut, MeldOut);
  // Melding the two compare-and-swap regions reduces issued LDS
  // instructions and divergence.
  EXPECT_LT(Meld.SharedMemInsts, Base.SharedMemInsts);
  EXPECT_LT(Meld.DivergentBranches, Base.DivergentBranches);
  EXPECT_LT(Meld.Cycles, Base.Cycles);
}

} // namespace
