//===- ir_test.cpp - IR substrate unit tests -------------------------------------===//

#include "darm/analysis/Verifier.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

TEST(Types, InterningAndProperties) {
  Context Ctx;
  EXPECT_EQ(Ctx.getInt32Ty(), Ctx.getInt32Ty());
  Type *P1 = Ctx.getPointerTy(Ctx.getInt32Ty(), AddressSpace::Global);
  Type *P2 = Ctx.getPointerTy(Ctx.getInt32Ty(), AddressSpace::Global);
  Type *P3 = Ctx.getPointerTy(Ctx.getInt32Ty(), AddressSpace::Shared);
  EXPECT_EQ(P1, P2);
  EXPECT_NE(P1, P3);
  EXPECT_EQ(P1->getPointee(), Ctx.getInt32Ty());
  EXPECT_EQ(P3->getAddressSpace(), AddressSpace::Shared);
  EXPECT_EQ(Ctx.getInt32Ty()->getStoreSizeInBytes(), 4u);
  EXPECT_EQ(Ctx.getInt64Ty()->getIntegerBitWidth(), 64u);
  EXPECT_EQ(P1->getName(), "i32 addrspace(1)*");
  EXPECT_TRUE(Ctx.getInt1Ty()->isInteger());
  EXPECT_FALSE(Ctx.getFloatTy()->isInteger());
}

TEST(Constants, InterningAndNormalization) {
  Context Ctx;
  EXPECT_EQ(Ctx.getInt32(42), Ctx.getInt32(42));
  EXPECT_NE(Ctx.getInt32(42), Ctx.getInt32(43));
  EXPECT_EQ(Ctx.getBool(true)->getValue(), 1);
  // i32 constants normalize through 32-bit truncation.
  EXPECT_EQ(Ctx.getConstantInt(Ctx.getInt32Ty(), 1ll << 40)->getValue(), 0);
  EXPECT_EQ(Ctx.getConstantFloat(1.5f), Ctx.getConstantFloat(1.5f));
  EXPECT_EQ(Ctx.getUndef(Ctx.getInt32Ty()), Ctx.getUndef(Ctx.getInt32Ty()));
  EXPECT_NE(Ctx.getUndef(Ctx.getInt32Ty()), Ctx.getUndef(Ctx.getInt64Ty()));
}

TEST(DefUse, SetOperandMaintainsBothSides) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction(
      "f", Ctx.getVoidTy(),
      {{Ctx.getInt32Ty(), "a"}, {Ctx.getInt32Ty(), "b"}});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(Ctx, BB);
  Value *A = F->getArg(0), *Bv = F->getArg(1);
  Value *Add = B.createAdd(A, A, "s");
  EXPECT_EQ(A->getNumUses(), 2u);
  cast<Instruction>(Add)->setOperand(1, Bv);
  EXPECT_EQ(A->getNumUses(), 1u);
  EXPECT_EQ(Bv->getNumUses(), 1u);
  B.createRet();
}

TEST(DefUse, ReplaceAllUsesWith) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F =
      M.createFunction("f", Ctx.getVoidTy(), {{Ctx.getInt32Ty(), "a"}});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(Ctx, BB);
  Value *A = F->getArg(0);
  Value *X = B.createAdd(A, B.getInt32(1), "x");
  Value *U1 = B.createMul(X, X, "u1");
  Value *U2 = B.createSub(X, A, "u2");
  Value *Y = B.createAdd(A, B.getInt32(2), "y");
  X->replaceAllUsesWith(Y);
  EXPECT_EQ(X->getNumUses(), 0u);
  EXPECT_EQ(Y->getNumUses(), 3u);
  EXPECT_EQ(cast<Instruction>(U1)->getOperand(0), Y);
  EXPECT_EQ(cast<Instruction>(U2)->getOperand(0), Y);
  B.createRet();
}

TEST(Instructions, CloneCopiesPayload) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F =
      M.createFunction("f", Ctx.getVoidTy(), {{Ctx.getInt32Ty(), "a"}});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(Ctx, BB);
  Value *A = F->getArg(0);
  auto *Cmp =
      cast<ICmpInst>(B.createICmp(ICmpPred::SLT, A, B.getInt32(7), "c"));
  auto *Clone = cast<ICmpInst>(Cmp->clone());
  EXPECT_EQ(Clone->getPredicate(), ICmpPred::SLT);
  EXPECT_EQ(Clone->getOperand(0), A);
  EXPECT_EQ(Clone->getParent(), nullptr);
  EXPECT_FALSE(Clone->hasName());
  Clone->dropAllReferences();
  delete Clone;
  B.createRet();
}

TEST(Instructions, Properties) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F =
      M.createFunction("f", Ctx.getVoidTy(), {{Ctx.getInt32Ty(), "a"}});
  BasicBlock *BB = F->createBlock("entry");
  BasicBlock *BB2 = F->createBlock("next");
  IRBuilder B(Ctx, BB);
  Value *A = F->getArg(0);
  auto *Div = cast<Instruction>(B.createSDiv(A, A));
  EXPECT_TRUE(Div->isSafeToSpeculate()); // division by zero is defined
  auto *Tid = cast<Instruction>(B.createThreadIdX());
  EXPECT_TRUE(Tid->isSafeToSpeculate());
  EXPECT_FALSE(Tid->isConvergent());
  auto *Bar = cast<Instruction>(
      B.insert(new CallInst(Intrinsic::Barrier, Ctx.getVoidTy(), {})));
  EXPECT_TRUE(Bar->isConvergent());
  EXPECT_TRUE(Bar->hasSideEffects());
  Instruction *Br = B.createBr(BB2);
  EXPECT_TRUE(Br->isTerminator());
  EXPECT_EQ(Br->getNumSuccessors(), 1u);
  B.setInsertPoint(BB2);
  B.createRet();
  EXPECT_EQ(BB->getSingleSuccessor(), BB2);
  EXPECT_EQ(BB2->getSinglePredecessor(), BB);
}

TEST(CFG, SuccessorRetargetingUpdatesPreds) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *X = F->createBlock("x");
  BasicBlock *Y = F->createBlock("y");
  IRBuilder B(Ctx, E);
  Instruction *Br = B.createCondBr(Ctx.getBool(true), X, Y);
  EXPECT_EQ(X->getNumPredecessors(), 1u);
  Br->setSuccessor(0, Y);
  EXPECT_EQ(X->getNumPredecessors(), 0u);
  EXPECT_EQ(Y->getNumPredecessors(), 2u); // duplicate edges allowed
  B.setInsertPoint(X);
  B.createRet();
  B.setInsertPoint(Y);
  B.createRet();
}

TEST(CFG, SplitBeforeMovesInstructionsAndEdges) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F =
      M.createFunction("f", Ctx.getVoidTy(), {{Ctx.getInt32Ty(), "a"}});
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *T = F->createBlock("tail");
  IRBuilder B(Ctx, E);
  Value *A = F->getArg(0);
  B.createAdd(A, A, "x");
  Value *Y = B.createMul(A, A, "y");
  B.createBr(T);
  B.setInsertPoint(T);
  PhiInst *P = B.createPhi(Ctx.getInt32Ty(), "p");
  P->addIncoming(Y, E);
  B.createRet();

  BasicBlock *New = E->splitBefore(cast<Instruction>(Y)->getIterator(),
                                   "split");
  EXPECT_EQ(E->getSingleSuccessor(), New);
  EXPECT_EQ(New->getSingleSuccessor(), T);
  EXPECT_EQ(P->getIncomingBlock(0), New); // phi retargeted
  std::string Err;
  EXPECT_TRUE(verifyFunction(*F, &Err)) << Err;
}

TEST(Function, NameUniquing) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  EXPECT_EQ(F->uniqueName("x"), "x");
  EXPECT_NE(F->uniqueName("x"), "x");
  EXPECT_EQ(F->uniqueName("y"), "y");
}

TEST(Verifier, CatchesMissingTerminator) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  BasicBlock *E = F->createBlock("entry");
  IRBuilder B(Ctx, E);
  B.createAdd(B.getInt32(1), B.getInt32(2));
  std::string Err;
  EXPECT_FALSE(verifyFunction(*F, &Err));
  EXPECT_NE(Err.find("terminator"), std::string::npos);
}

TEST(Verifier, CatchesPhiPredMismatch) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *J = F->createBlock("join");
  IRBuilder B(Ctx, E);
  B.createBr(J);
  B.setInsertPoint(J);
  PhiInst *P = B.createPhi(Ctx.getInt32Ty(), "p");
  P->addIncoming(Ctx.getInt32(1), E);
  P->addIncoming(Ctx.getInt32(2), J); // J is not a predecessor
  B.createRet();
  std::string Err;
  EXPECT_FALSE(verifyFunction(*F, &Err));
}

TEST(Verifier, CatchesDominanceViolation) {
  Context Ctx;
  Module M(Ctx, "m");
  std::string Err;
  // %y uses %x, which is defined only on one path.
  const char *Text = R"(
func @f(i32 %a) -> void {
entry:
  %c = icmp sgt i32 %a, 0
  condbr i1 %c, label %t, label %j
t:
  %x = add i32 %a, 1
  br label %j
j:
  %y = mul i32 %x, 2
  ret
}
)";
  auto Mod = parseModule(Ctx, Text, &Err);
  ASSERT_NE(Mod, nullptr) << Err;
  EXPECT_FALSE(verifyFunction(*Mod->functions().front(), &Err));
  EXPECT_NE(Err.find("dominate"), std::string::npos);
}

TEST(Parser, RejectsMalformedInput) {
  Context Ctx;
  std::string Err;
  EXPECT_EQ(parseModule(Ctx, "func @f( -> void {}", &Err), nullptr);
  EXPECT_EQ(parseModule(Ctx, "func @f() -> void { entry: %x = bogus }",
                        &Err),
            nullptr);
  EXPECT_EQ(
      parseModule(Ctx, "func @f() -> void {\nentry:\n  br label %nowhere\n}",
                  &Err),
      nullptr);
  EXPECT_FALSE(Err.empty());
}

TEST(Parser, ForwardReferencesThroughPhis) {
  Context Ctx;
  std::string Err;
  const char *Text = R"(
func @loop(i32 %n) -> void {
entry:
  br label %hdr
hdr:
  %i = phi i32 [ 0, %entry ], [ %inext, %hdr ]
  %inext = add i32 %i, 1
  %c = icmp slt i32 %inext, %n
  condbr i1 %c, label %hdr, label %done
done:
  ret
}
)";
  auto Mod = parseModule(Ctx, Text, &Err);
  ASSERT_NE(Mod, nullptr) << Err;
  EXPECT_TRUE(verifyFunction(*Mod->functions().front(), &Err)) << Err;
}

TEST(Printer, DotOutputContainsAllBlocks) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *A = F->createBlock("a");
  IRBuilder B(Ctx, E);
  B.createCondBr(Ctx.getBool(true), A, A);
  B.setInsertPoint(A);
  B.createRet();
  std::string Dot = printDot(*F);
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("\"entry\""), std::string::npos);
  EXPECT_NE(Dot.find("\"a\""), std::string::npos);
  EXPECT_NE(Dot.find("label=\"T\""), std::string::npos);
}

TEST(Module, FunctionLookup) {
  Context Ctx;
  Module M(Ctx, "m");
  M.createFunction("one", Ctx.getVoidTy(), {});
  M.createFunction("two", Ctx.getVoidTy(), {});
  EXPECT_NE(M.getFunction("one"), nullptr);
  EXPECT_EQ(M.getFunction("three"), nullptr);
  EXPECT_EQ(M.functions().size(), 2u);
}

} // namespace
