//===- ir_test.cpp - IR substrate unit tests -------------------------------------===//

#include "darm/analysis/Verifier.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

using namespace darm;

namespace {

TEST(Types, InterningAndProperties) {
  Context Ctx;
  EXPECT_EQ(Ctx.getInt32Ty(), Ctx.getInt32Ty());
  Type *P1 = Ctx.getPointerTy(Ctx.getInt32Ty(), AddressSpace::Global);
  Type *P2 = Ctx.getPointerTy(Ctx.getInt32Ty(), AddressSpace::Global);
  Type *P3 = Ctx.getPointerTy(Ctx.getInt32Ty(), AddressSpace::Shared);
  EXPECT_EQ(P1, P2);
  EXPECT_NE(P1, P3);
  EXPECT_EQ(P1->getPointee(), Ctx.getInt32Ty());
  EXPECT_EQ(P3->getAddressSpace(), AddressSpace::Shared);
  EXPECT_EQ(Ctx.getInt32Ty()->getStoreSizeInBytes(), 4u);
  EXPECT_EQ(Ctx.getInt64Ty()->getIntegerBitWidth(), 64u);
  EXPECT_EQ(P1->getName(), "i32 addrspace(1)*");
  EXPECT_TRUE(Ctx.getInt1Ty()->isInteger());
  EXPECT_FALSE(Ctx.getFloatTy()->isInteger());
}

TEST(Constants, InterningAndNormalization) {
  Context Ctx;
  EXPECT_EQ(Ctx.getInt32(42), Ctx.getInt32(42));
  EXPECT_NE(Ctx.getInt32(42), Ctx.getInt32(43));
  EXPECT_EQ(Ctx.getBool(true)->getValue(), 1);
  // i32 constants normalize through 32-bit truncation.
  EXPECT_EQ(Ctx.getConstantInt(Ctx.getInt32Ty(), 1ll << 40)->getValue(), 0);
  EXPECT_EQ(Ctx.getConstantFloat(1.5f), Ctx.getConstantFloat(1.5f));
  EXPECT_EQ(Ctx.getUndef(Ctx.getInt32Ty()), Ctx.getUndef(Ctx.getInt32Ty()));
  EXPECT_NE(Ctx.getUndef(Ctx.getInt32Ty()), Ctx.getUndef(Ctx.getInt64Ty()));
}

TEST(Constants, FloatInterningIsBitExact) {
  Context Ctx;
  // +0.0f and -0.0f compare equal as floats but are distinct constants;
  // a value-keyed intern table would conflate them.
  ConstantFloat *PZ = Ctx.getConstantFloat(0.0f);
  ConstantFloat *NZ = Ctx.getConstantFloat(-0.0f);
  EXPECT_NE(PZ, NZ);
  EXPECT_FALSE(std::signbit(PZ->getValue()));
  EXPECT_TRUE(std::signbit(NZ->getValue()));
  EXPECT_EQ(NZ, Ctx.getConstantFloat(-0.0f));

  // NaN never compares equal to itself; bit-pattern keying still interns
  // it, and distinct payloads stay distinct.
  float QNan = std::bit_cast<float>(0x7fc00000u);
  float PayloadNan = std::bit_cast<float>(0x7fc12345u);
  ConstantFloat *N1 = Ctx.getConstantFloat(QNan);
  EXPECT_EQ(N1, Ctx.getConstantFloat(QNan));
  EXPECT_NE(N1, Ctx.getConstantFloat(PayloadNan));
  EXPECT_EQ(std::bit_cast<uint32_t>(
                Ctx.getConstantFloat(PayloadNan)->getValue()),
            0x7fc12345u);

  ConstantFloat *Inf =
      Ctx.getConstantFloat(std::numeric_limits<float>::infinity());
  EXPECT_EQ(Inf, Ctx.getConstantFloat(std::numeric_limits<float>::infinity()));
  EXPECT_NE(Inf,
            Ctx.getConstantFloat(-std::numeric_limits<float>::infinity()));
}

// Round-trips one f32 constant through print -> parse and returns the
// reconstructed bit pattern.
uint32_t roundTripFloatBits(float F) {
  Context Ctx;
  Module M(Ctx, "m");
  Type *FPtr = Ctx.getPointerTy(Ctx.getFloatTy(), AddressSpace::Global);
  Function *Fn = M.createFunction("k", Ctx.getVoidTy(), {{FPtr, "out"}});
  BasicBlock *BB = Fn->createBlock("entry");
  IRBuilder B(Ctx, BB);
  B.createStore(Ctx.getConstantFloat(F), Fn->getArg(0));
  B.createRet();
  std::string Text = printFunction(*Fn);

  Context Ctx2;
  std::string Err;
  auto M2 = parseModule(Ctx2, Text, &Err);
  EXPECT_NE(M2, nullptr) << Err << "\n" << Text;
  if (!M2)
    return 0;
  // Printing must be stable across the round-trip too.
  EXPECT_EQ(printFunction(*M2->functions().front()), Text);
  const auto *St =
      cast<StoreInst>(M2->functions().front()->getEntryBlock().front());
  return std::bit_cast<uint32_t>(
      cast<ConstantFloat>(St->getValueOperand())->getValue());
}

TEST(Printer, NonFiniteFloatsRoundTrip) {
  EXPECT_EQ(roundTripFloatBits(std::numeric_limits<float>::infinity()),
            std::bit_cast<uint32_t>(std::numeric_limits<float>::infinity()));
  EXPECT_EQ(roundTripFloatBits(-std::numeric_limits<float>::infinity()),
            std::bit_cast<uint32_t>(-std::numeric_limits<float>::infinity()));
  EXPECT_EQ(roundTripFloatBits(std::bit_cast<float>(0x7fc00000u)),
            0x7fc00000u); // canonical quiet NaN
  EXPECT_EQ(roundTripFloatBits(std::bit_cast<float>(0xffc00000u)),
            0xffc00000u); // negative quiet NaN
  EXPECT_EQ(roundTripFloatBits(std::bit_cast<float>(0x7fc12345u)),
            0x7fc12345u); // NaN with a payload
  EXPECT_EQ(roundTripFloatBits(std::bit_cast<float>(0xff812345u)),
            0xff812345u); // negative NaN with a payload
  EXPECT_EQ(roundTripFloatBits(-0.0f), 0x80000000u);
  EXPECT_EQ(roundTripFloatBits(0.0f), 0u);
  EXPECT_EQ(roundTripFloatBits(std::bit_cast<float>(1u)),
            1u); // smallest denormal
  EXPECT_EQ(roundTripFloatBits(std::numeric_limits<float>::max()),
            std::bit_cast<uint32_t>(std::numeric_limits<float>::max()));
}

TEST(Parser, NonFiniteFloatKeywords) {
  Context Ctx;
  std::string Err;
  auto M = parseModule(Ctx,
                       "func @k(f32 addrspace(1)* %o) -> void {\n"
                       "entry:\n"
                       "  %a = fadd f32 inf, -inf\n"
                       "  %b = fadd f32 nan, -nan\n"
                       "  %c = fadd f32 nan(2143302420), -0.0\n"
                       "  store f32 %c, f32 addrspace(1)* %o\n"
                       "  ret\n"
                       "}\n",
                       &Err);
  ASSERT_NE(M, nullptr) << Err;
  // Keywords are rejected where a float makes no sense.
  EXPECT_EQ(parseModule(Ctx,
                        "func @k() -> void {\nentry:\n"
                        "  %a = add i32 inf, 1\n  ret\n}\n",
                        &Err),
            nullptr);
  EXPECT_NE(Err.find("non-float"), std::string::npos) << Err;
  // A nan(...) payload must actually encode a NaN.
  EXPECT_EQ(parseModule(Ctx,
                        "func @k() -> void {\nentry:\n"
                        "  %a = fadd f32 nan(0), 1.0\n  ret\n}\n",
                        &Err),
            nullptr);
}

TEST(Parser, RejectsOutOfRangeLiterals) {
  Context Ctx;
  std::string Err;
  // 2^63 does not fit int64; the seed lexer silently saturated it.
  EXPECT_EQ(parseModule(Ctx,
                        "func @k() -> void {\nentry:\n"
                        "  %a = add i64 9223372036854775808, 1\n  ret\n}\n",
                        &Err),
            nullptr);
  EXPECT_NE(Err.find("out of range"), std::string::npos) << Err;
  EXPECT_NE(Err.find("line 3"), std::string::npos) << Err;

  Err.clear();
  // 1e40 overflows f32 to inf; the seed lexer accepted it silently.
  EXPECT_EQ(parseModule(Ctx,
                        "func @k() -> void {\nentry:\n"
                        "  %a = fadd f32 1e40, 1.0\n  ret\n}\n",
                        &Err),
            nullptr);
  EXPECT_NE(Err.find("out of range"), std::string::npos) << Err;

  Err.clear();
  // In-range extremes still parse.
  auto M = parseModule(Ctx,
                       "func @k() -> void {\nentry:\n"
                       "  %a = add i64 9223372036854775807, "
                       "-9223372036854775808\n"
                       "  %b = fadd f32 3.40282347e+38, 1.17549435e-38\n"
                       "  ret\n}\n",
                       &Err);
  EXPECT_NE(M, nullptr) << Err;
}

TEST(DefUse, SetOperandMaintainsBothSides) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction(
      "f", Ctx.getVoidTy(),
      {{Ctx.getInt32Ty(), "a"}, {Ctx.getInt32Ty(), "b"}});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(Ctx, BB);
  Value *A = F->getArg(0), *Bv = F->getArg(1);
  Value *Add = B.createAdd(A, A, "s");
  EXPECT_EQ(A->getNumUses(), 2u);
  cast<Instruction>(Add)->setOperand(1, Bv);
  EXPECT_EQ(A->getNumUses(), 1u);
  EXPECT_EQ(Bv->getNumUses(), 1u);
  B.createRet();
}

TEST(DefUse, ReplaceAllUsesWith) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F =
      M.createFunction("f", Ctx.getVoidTy(), {{Ctx.getInt32Ty(), "a"}});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(Ctx, BB);
  Value *A = F->getArg(0);
  Value *X = B.createAdd(A, B.getInt32(1), "x");
  Value *U1 = B.createMul(X, X, "u1");
  Value *U2 = B.createSub(X, A, "u2");
  Value *Y = B.createAdd(A, B.getInt32(2), "y");
  X->replaceAllUsesWith(Y);
  EXPECT_EQ(X->getNumUses(), 0u);
  EXPECT_EQ(Y->getNumUses(), 3u);
  EXPECT_EQ(cast<Instruction>(U1)->getOperand(0), Y);
  EXPECT_EQ(cast<Instruction>(U2)->getOperand(0), Y);
  B.createRet();
}

TEST(Instructions, CloneCopiesPayload) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F =
      M.createFunction("f", Ctx.getVoidTy(), {{Ctx.getInt32Ty(), "a"}});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(Ctx, BB);
  Value *A = F->getArg(0);
  auto *Cmp =
      cast<ICmpInst>(B.createICmp(ICmpPred::SLT, A, B.getInt32(7), "c"));
  auto *Clone = cast<ICmpInst>(Cmp->clone());
  EXPECT_EQ(Clone->getPredicate(), ICmpPred::SLT);
  EXPECT_EQ(Clone->getOperand(0), A);
  EXPECT_EQ(Clone->getParent(), nullptr);
  EXPECT_FALSE(Clone->hasName());
  Clone->dropAllReferences();
  delete Clone;
  B.createRet();
}

TEST(Instructions, Properties) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F =
      M.createFunction("f", Ctx.getVoidTy(), {{Ctx.getInt32Ty(), "a"}});
  BasicBlock *BB = F->createBlock("entry");
  BasicBlock *BB2 = F->createBlock("next");
  IRBuilder B(Ctx, BB);
  Value *A = F->getArg(0);
  auto *Div = cast<Instruction>(B.createSDiv(A, A));
  EXPECT_TRUE(Div->isSafeToSpeculate()); // division by zero is defined
  auto *Tid = cast<Instruction>(B.createThreadIdX());
  EXPECT_TRUE(Tid->isSafeToSpeculate());
  EXPECT_FALSE(Tid->isConvergent());
  auto *Bar = cast<Instruction>(
      B.insert(new CallInst(Intrinsic::Barrier, Ctx.getVoidTy(), {})));
  EXPECT_TRUE(Bar->isConvergent());
  EXPECT_TRUE(Bar->hasSideEffects());
  Instruction *Br = B.createBr(BB2);
  EXPECT_TRUE(Br->isTerminator());
  EXPECT_EQ(Br->getNumSuccessors(), 1u);
  B.setInsertPoint(BB2);
  B.createRet();
  EXPECT_EQ(BB->getSingleSuccessor(), BB2);
  EXPECT_EQ(BB2->getSinglePredecessor(), BB);
}

TEST(CFG, SuccessorRetargetingUpdatesPreds) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *X = F->createBlock("x");
  BasicBlock *Y = F->createBlock("y");
  IRBuilder B(Ctx, E);
  Instruction *Br = B.createCondBr(Ctx.getBool(true), X, Y);
  EXPECT_EQ(X->getNumPredecessors(), 1u);
  Br->setSuccessor(0, Y);
  EXPECT_EQ(X->getNumPredecessors(), 0u);
  EXPECT_EQ(Y->getNumPredecessors(), 2u); // duplicate edges allowed
  B.setInsertPoint(X);
  B.createRet();
  B.setInsertPoint(Y);
  B.createRet();
}

TEST(CFG, SplitBeforeMovesInstructionsAndEdges) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F =
      M.createFunction("f", Ctx.getVoidTy(), {{Ctx.getInt32Ty(), "a"}});
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *T = F->createBlock("tail");
  IRBuilder B(Ctx, E);
  Value *A = F->getArg(0);
  B.createAdd(A, A, "x");
  Value *Y = B.createMul(A, A, "y");
  B.createBr(T);
  B.setInsertPoint(T);
  PhiInst *P = B.createPhi(Ctx.getInt32Ty(), "p");
  P->addIncoming(Y, E);
  B.createRet();

  BasicBlock *New = E->splitBefore(cast<Instruction>(Y)->getIterator(),
                                   "split");
  EXPECT_EQ(E->getSingleSuccessor(), New);
  EXPECT_EQ(New->getSingleSuccessor(), T);
  EXPECT_EQ(P->getIncomingBlock(0), New); // phi retargeted
  std::string Err;
  EXPECT_TRUE(verifyFunction(*F, &Err)) << Err;
}

TEST(Function, NameUniquing) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  EXPECT_EQ(F->uniqueName("x"), "x");
  EXPECT_NE(F->uniqueName("x"), "x");
  EXPECT_EQ(F->uniqueName("y"), "y");
}

TEST(Verifier, CatchesMissingTerminator) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  BasicBlock *E = F->createBlock("entry");
  IRBuilder B(Ctx, E);
  B.createAdd(B.getInt32(1), B.getInt32(2));
  std::string Err;
  EXPECT_FALSE(verifyFunction(*F, &Err));
  EXPECT_NE(Err.find("terminator"), std::string::npos);
}

TEST(Verifier, CatchesPhiPredMismatch) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *J = F->createBlock("join");
  IRBuilder B(Ctx, E);
  B.createBr(J);
  B.setInsertPoint(J);
  PhiInst *P = B.createPhi(Ctx.getInt32Ty(), "p");
  P->addIncoming(Ctx.getInt32(1), E);
  P->addIncoming(Ctx.getInt32(2), J); // J is not a predecessor
  B.createRet();
  std::string Err;
  EXPECT_FALSE(verifyFunction(*F, &Err));
}

TEST(Verifier, CatchesDominanceViolation) {
  Context Ctx;
  Module M(Ctx, "m");
  std::string Err;
  // %y uses %x, which is defined only on one path.
  const char *Text = R"(
func @f(i32 %a) -> void {
entry:
  %c = icmp sgt i32 %a, 0
  condbr i1 %c, label %t, label %j
t:
  %x = add i32 %a, 1
  br label %j
j:
  %y = mul i32 %x, 2
  ret
}
)";
  auto Mod = parseModule(Ctx, Text, &Err);
  ASSERT_NE(Mod, nullptr) << Err;
  EXPECT_FALSE(verifyFunction(*Mod->functions().front(), &Err));
  EXPECT_NE(Err.find("dominate"), std::string::npos);
}

TEST(Parser, RejectsMalformedInput) {
  Context Ctx;
  std::string Err;
  EXPECT_EQ(parseModule(Ctx, "func @f( -> void {}", &Err), nullptr);
  EXPECT_EQ(parseModule(Ctx, "func @f() -> void { entry: %x = bogus }",
                        &Err),
            nullptr);
  EXPECT_EQ(
      parseModule(Ctx, "func @f() -> void {\nentry:\n  br label %nowhere\n}",
                  &Err),
      nullptr);
  EXPECT_FALSE(Err.empty());
}

TEST(Parser, ForwardReferencesThroughPhis) {
  Context Ctx;
  std::string Err;
  const char *Text = R"(
func @loop(i32 %n) -> void {
entry:
  br label %hdr
hdr:
  %i = phi i32 [ 0, %entry ], [ %inext, %hdr ]
  %inext = add i32 %i, 1
  %c = icmp slt i32 %inext, %n
  condbr i1 %c, label %hdr, label %done
done:
  ret
}
)";
  auto Mod = parseModule(Ctx, Text, &Err);
  ASSERT_NE(Mod, nullptr) << Err;
  EXPECT_TRUE(verifyFunction(*Mod->functions().front(), &Err)) << Err;
}

TEST(Printer, ByteDeterministicAcrossContextsAndInternOrder) {
  // The canonical printed form is the cache key and the serialization
  // reference (docs/caching.md): it must be byte-identical no matter
  // which Context holds the module or in what order that Context
  // interned its types and constants.
  const char *Text = R"(
func @det(i32 addrspace(1)* %buf, f32 addrspace(1)* %fbuf, i32 %n) -> void {
entry:
  %t = call i32 @darm.tid.x()
  %c = icmp slt i32 %t, %n
  condbr i1 %c, label %hdr, label %exit
hdr:
  %i = phi i32 [ 0, %entry ], [ %inext, %latch ]
  %acc = phi f32 [ -0.0, %entry ], [ %facc, %latch ]
  %inext = add i32 %i, 1
  br label %latch
latch:
  %w = sext i32 %i to i64
  %p = gep f32 addrspace(1)* %fbuf, i64 %w
  %v = load f32 addrspace(1)* %p
  %facc = fadd f32 %acc, %v
  %again = icmp slt i32 %inext, %n
  condbr i1 %again, label %hdr, label %st
st:
  %q = gep i32 addrspace(1)* %buf, i32 %t
  %nanv = fadd f32 %facc, nan(2143302420)
  %sel = select i1 %c, f32 %nanv, %facc
  %bits = fptosi f32 %sel to i32
  store i32 %bits, i32 addrspace(1)* %q
  ret
exit:
  ret
}
)";
  std::string Err;
  Context A;
  auto MA = parseModule(A, Text, &Err);
  ASSERT_NE(MA, nullptr) << Err;
  const std::string Canonical = printModule(*MA);

  // A Context whose intern tables were populated beforehand, in an order
  // the module never uses, must not perturb a single printed byte.
  Context B;
  B.getConstantFloat(3.5f);
  B.getUndef(B.getFloatTy());
  B.getPointerTy(B.getInt64Ty(), AddressSpace::Shared);
  B.getInt32(2143302420);
  B.getConstantInt(B.getInt64Ty(), -1);
  auto MB = parseModule(B, Canonical, &Err);
  ASSERT_NE(MB, nullptr) << Err;
  EXPECT_EQ(printModule(*MB), Canonical);

  // print -> parse -> print is a fixed point, not merely an equivalence.
  Context C;
  auto MC = parseModule(C, Canonical, &Err);
  ASSERT_NE(MC, nullptr) << Err;
  auto MC2 = parseModule(C, printModule(*MC), &Err);
  ASSERT_NE(MC2, nullptr) << Err;
  EXPECT_EQ(printModule(*MC2), Canonical);

  // Auto-generated value numbering is part of the bytes: a function
  // whose unnamed values were numbered by insertion prints the same
  // after a round trip (names are stored, never re-derived at print).
  Context D;
  Module MD(D, "m");
  Function *F = MD.createFunction("auto", D.getVoidTy(),
                                  {{D.getInt32Ty(), "x"}});
  IRBuilder IB(D, F->createBlock("entry"));
  Value *S = IB.createBinary(Opcode::Add, F->getArg(0), D.getInt32(1));
  Value *T = IB.createBinary(Opcode::Mul, S, S);
  IB.createBinary(Opcode::Xor, T, F->getArg(0));
  IB.createRet();
  const std::string AutoText = printFunction(*F);
  Context E;
  auto ME = parseModule(E, AutoText, &Err);
  ASSERT_NE(ME, nullptr) << Err;
  EXPECT_EQ(printFunction(*ME->functions().front()), AutoText);
}

TEST(Printer, DotOutputContainsAllBlocks) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *A = F->createBlock("a");
  IRBuilder B(Ctx, E);
  B.createCondBr(Ctx.getBool(true), A, A);
  B.setInsertPoint(A);
  B.createRet();
  std::string Dot = printDot(*F);
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("\"entry\""), std::string::npos);
  EXPECT_NE(Dot.find("\"a\""), std::string::npos);
  EXPECT_NE(Dot.find("label=\"T\""), std::string::npos);
}

TEST(Module, FunctionLookup) {
  Context Ctx;
  Module M(Ctx, "m");
  M.createFunction("one", Ctx.getVoidTy(), {});
  M.createFunction("two", Ctx.getVoidTy(), {});
  EXPECT_NE(M.getFunction("one"), nullptr);
  EXPECT_EQ(M.getFunction("three"), nullptr);
  EXPECT_EQ(M.functions().size(), 2u);
}

} // namespace
