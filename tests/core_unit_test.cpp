//===- core_unit_test.cpp - DARM core algorithm unit tests -------------------------===//

#include "darm/analysis/DivergenceAnalysis.h"
#include "darm/analysis/DominanceFrontier.h"
#include "darm/analysis/DominatorTree.h"
#include "darm/analysis/RegionQuery.h"
#include "darm/analysis/Verifier.h"
#include "darm/core/DARMPass.h"
#include "darm/core/InstructionAlign.h"
#include "darm/core/MeldRegionAnalysis.h"
#include "darm/core/Profitability.h"
#include "darm/core/SequenceAlign.h"
#include "darm/core/TailMerge.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

Function *parse(Context &Ctx, std::unique_ptr<Module> &Keep,
                const std::string &Text) {
  std::string Err;
  Keep = parseModule(Ctx, Text, &Err);
  EXPECT_NE(Keep, nullptr) << Err;
  return Keep ? Keep->functions().front().get() : nullptr;
}

// -- Smith-Waterman ---------------------------------------------------------

std::vector<AlignEntry> alignStrings(const std::string &A,
                                     const std::string &B, double Match = 2,
                                     double Mismatch = -1,
                                     double Gap = -0.5) {
  return smithWaterman(
      static_cast<unsigned>(A.size()), static_cast<unsigned>(B.size()),
      [&](unsigned I, unsigned J) { return A[I] == B[J] ? Match : Mismatch; },
      Gap);
}

TEST(SmithWaterman, IdenticalSequencesFullyMatch) {
  auto R = alignStrings("abcde", "abcde");
  ASSERT_EQ(R.size(), 5u);
  for (unsigned I = 0; I < 5; ++I) {
    EXPECT_EQ(R[I].A, static_cast<int>(I));
    EXPECT_EQ(R[I].B, static_cast<int>(I));
  }
}

TEST(SmithWaterman, GapInTheMiddle) {
  auto R = alignStrings("abXcd", "abcd");
  unsigned Matches = 0, Gaps = 0;
  for (const AlignEntry &E : R)
    E.isMatch() ? ++Matches : ++Gaps;
  EXPECT_EQ(Matches, 4u);
  EXPECT_EQ(Gaps, 1u);
}

TEST(SmithWaterman, CoversBothSequencesExactlyOnce) {
  auto R = alignStrings("xxabc", "abcyy");
  std::vector<bool> SeenA(5, false), SeenB(5, false);
  for (const AlignEntry &E : R) {
    if (E.A >= 0) {
      EXPECT_FALSE(SeenA[static_cast<unsigned>(E.A)]);
      SeenA[static_cast<unsigned>(E.A)] = true;
    }
    if (E.B >= 0) {
      EXPECT_FALSE(SeenB[static_cast<unsigned>(E.B)]);
      SeenB[static_cast<unsigned>(E.B)] = true;
    }
  }
  for (bool S : SeenA)
    EXPECT_TRUE(S);
  for (bool S : SeenB)
    EXPECT_TRUE(S);
  // Alignment indices must be strictly increasing (order preserving).
  int LastA = -1, LastB = -1;
  for (const AlignEntry &E : R) {
    if (E.A >= 0) {
      EXPECT_GT(E.A, LastA);
      LastA = E.A;
    }
    if (E.B >= 0) {
      EXPECT_GT(E.B, LastB);
      LastB = E.B;
    }
  }
}

TEST(SmithWaterman, EmptySequences) {
  EXPECT_TRUE(alignStrings("", "").empty());
  auto R = alignStrings("ab", "");
  EXPECT_EQ(R.size(), 2u);
  EXPECT_FALSE(R[0].isMatch());
  EXPECT_GT(smithWatermanScore(3, 3, [](unsigned, unsigned) { return 1.0; },
                               -0.5),
            0.0);
}

// -- Instruction compatibility & alignment ---------------------------------

TEST(InstructionAlignTest, CompatibilityRules) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 %a, i32 addrspace(1)* %g, i32 addrspace(3)* %s) -> void {
entry:
  %add1 = add i32 %a, 1
  %add2 = add i32 %a, 2
  %sub = sub i32 %a, 1
  %c1 = icmp slt i32 %a, 0
  %c2 = icmp sgt i32 %a, 0
  %c3 = icmp slt i32 %a, 5
  %lg = load i32 addrspace(1)* %g
  %ls = load i32 addrspace(3)* %s
  %lg2 = load i32 addrspace(1)* %g
  ret
}
)");
  std::vector<Instruction *> I(F->getEntryBlock().begin(),
                               F->getEntryBlock().end());
  auto Named = [&](const std::string &N) -> Instruction * {
    for (Instruction *X : I)
      if (X->getName() == N)
        return X;
    return nullptr;
  };
  EXPECT_TRUE(areInstructionsCompatible(Named("add1"), Named("add2")));
  EXPECT_FALSE(areInstructionsCompatible(Named("add1"), Named("sub")));
  EXPECT_FALSE(areInstructionsCompatible(Named("c1"), Named("c2")));
  EXPECT_TRUE(areInstructionsCompatible(Named("c1"), Named("c3")));
  // Loads from different address spaces cannot meld (pointer types differ).
  EXPECT_FALSE(areInstructionsCompatible(Named("lg"), Named("ls")));
  EXPECT_TRUE(areInstructionsCompatible(Named("lg"), Named("lg2")));
}

TEST(InstructionAlignTest, PrioritizesExpensiveInstructions) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 %a, i32 addrspace(3)* %s) -> void {
entry:
  %c = icmp sgt i32 %a, 0
  condbr i1 %c, label %t, label %e
t:
  %x1 = add i32 %a, 1
  %l1 = load i32 addrspace(3)* %s
  br label %j
e:
  %l2 = load i32 addrspace(3)* %s
  %x2 = add i32 %a, 2
  br label %j
j:
  ret
}
)");
  auto R = alignInstructions(F->getBlockByName("t"), F->getBlockByName("e"),
                             -0.5);
  // The loads (latency 8) must align even though that forces the adds
  // (latency 1) into gaps, since order flips between the blocks.
  bool LoadsAligned = false;
  for (const InstrAlignEntry &E : R)
    if (E.isMatch() && E.TrueInst->getOpcode() == Opcode::Load)
      LoadsAligned = true;
  EXPECT_TRUE(LoadsAligned);
}

// -- Profitability ----------------------------------------------------------

TEST(ProfitabilityTest, IdenticalProfileIsHalf) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 %a) -> void {
entry:
  %c = icmp sgt i32 %a, 0
  condbr i1 %c, label %t, label %e
t:
  %x1 = add i32 %a, 1
  %y1 = mul i32 %x1, 3
  br label %j
e:
  %x2 = add i32 %a, 2
  %y2 = mul i32 %x2, 5
  br label %j
j:
  ret
}
)");
  // Identical opcode frequency profiles score exactly 0.5 (§IV-C).
  double MP = blockMeldProfit(*F->getBlockByName("t"),
                              *F->getBlockByName("e"));
  // Terminators carry latency in lat(b) but are not meldable content, so
  // the paper's "identical profile = 0.5" holds for the meldable part;
  // with the br latency included the value is slightly below 0.5.
  EXPECT_GT(MP, 0.35);
  EXPECT_LE(MP, 0.5);
  // Disjoint profiles score 0.
  EXPECT_EQ(blockMeldProfit(*F->getBlockByName("t"),
                            *F->getBlockByName("j")),
            0.0);
}

TEST(ProfitabilityTest, OverheadPenalizesOperandMismatch) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 %a, i32 %b) -> void {
entry:
  %c = icmp sgt i32 %a, 0
  condbr i1 %c, label %t, label %e
t:
  %x1 = add i32 %a, 1
  br label %j
e:
  %x2 = add i32 %b, 2
  br label %j
j:
  ret
}
)");
  BasicBlock *T = F->getBlockByName("t");
  BasicBlock *E = F->getBlockByName("e");
  EXPECT_LT(blockMeldProfitWithOverhead(*T, *E), blockMeldProfit(*T, *E));
}

// -- Region detection & chains ----------------------------------------------

const char *kComplexRegion = R"(
func @cr(i32 addrspace(3)* %s) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %c = icmp slt i32 %tid, 16
  condbr i1 %c, label %t1, label %f1
t1:
  %a = load i32 addrspace(3)* %s
  %ca = icmp sgt i32 %a, 0
  condbr i1 %ca, label %t2, label %t3
t2:
  store i32 %tid, i32 addrspace(3)* %s
  br label %t3
t3:
  br label %j
f1:
  %b = load i32 addrspace(3)* %s
  %cb = icmp slt i32 %b, 0
  condbr i1 %cb, label %f2, label %f3
f2:
  store i32 %tid, i32 addrspace(3)* %s
  br label %f3
f3:
  br label %j
j:
  ret
}
)";

TEST(MeldRegion, DetectsAndChains) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, kComplexRegion);
  {
    // Without region simplification, the if-then arm (two exit edges into
    // its join) is carved as one coarse subgraph per path.
    DominatorTree DT(*F);
    PostDominatorTree PDT(*F);
    DominanceFrontier DF(*F, DT);
    DivergenceAnalysis DA(*F, DT, DF);
    RegionQuery RQ(*F, DT, PDT);
    auto MR = detectMeldableRegion(F->getBlockByName("entry"), RQ, DA);
    ASSERT_TRUE(MR.has_value());
    EXPECT_EQ(MR->Exit, F->getBlockByName("j"));
    ASSERT_TRUE(buildChains(*MR, RQ));
    ASSERT_EQ(MR->TrueChain.size(), 1u);
    // Region simplification (Definition 3/4) inserts the merge block.
    EXPECT_TRUE(simplifyRegion(*F, *MR, RQ));
  }
  // After simplification each path decomposes finer.
  DominatorTree DT(*F);
  PostDominatorTree PDT(*F);
  DominanceFrontier DF(*F, DT);
  DivergenceAnalysis DA(*F, DT, DF);
  RegionQuery RQ(*F, DT, PDT);
  auto MR = detectMeldableRegion(F->getBlockByName("entry"), RQ, DA);
  ASSERT_TRUE(MR.has_value());
  ASSERT_TRUE(buildChains(*MR, RQ));
  ASSERT_EQ(MR->TrueChain.size(), 2u);
  ASSERT_EQ(MR->FalseChain.size(), 2u);
  EXPECT_EQ(MR->TrueChain[0].Blocks.size(), 3u); // t1, t2, merge
  EXPECT_TRUE(MR->TrueChain[1].isSingleBlock());

  // The two if-then regions are structurally isomorphic.
  auto Mapping =
      matchSubgraphStructure(MR->TrueChain[0], MR->FalseChain[0]);
  ASSERT_TRUE(Mapping.has_value());
  EXPECT_EQ(Mapping->size(), 3u);
  EXPECT_EQ((*Mapping)[0].first, F->getBlockByName("t1"));
  EXPECT_EQ((*Mapping)[0].second, F->getBlockByName("f1"));

  auto Cand = analyzeMeldability(MR->TrueChain[0], MR->FalseChain[0],
                                 DARMConfig());
  EXPECT_EQ(Cand.Kind, MeldKind::RegionRegion);
  EXPECT_GT(Cand.Profit, 0.2);

  auto Melds = alignChains(*MR, DARMConfig());
  ASSERT_FALSE(Melds.empty());
  EXPECT_EQ(Melds.front().Kind, MeldKind::RegionRegion);
}

TEST(MeldRegion, RejectsUniformBranch) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @u(i32 %uniform) -> void {
entry:
  %c = icmp sgt i32 %uniform, 0
  condbr i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  ret
}
)");
  DominatorTree DT(*F);
  PostDominatorTree PDT(*F);
  DominanceFrontier DF(*F, DT);
  DivergenceAnalysis DA(*F, DT, DF);
  RegionQuery RQ(*F, DT, PDT);
  EXPECT_FALSE(
      detectMeldableRegion(F->getBlockByName("entry"), RQ, DA).has_value());
}

TEST(MeldRegion, RejectsConvergentSubgraphs) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @conv(i32 addrspace(3)* %s) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %c = icmp slt i32 %tid, 16
  condbr i1 %c, label %t, label %e
t:
  call void @darm.barrier()
  br label %j
e:
  call void @darm.barrier()
  br label %j
j:
  ret
}
)");
  // Melding would be structurally possible but the arms contain barriers:
  // the candidate must be rejected (deadlock avoidance, §IV-C).
  DARMStats DS;
  runDARM(*F, DARMConfig(), &DS);
  EXPECT_EQ(DS.SubgraphPairsMelded, 0u);
}

TEST(MeldRegion, OneSidedIfIsNotMeldable) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @oneside(i32 addrspace(3)* %s) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %c = icmp slt i32 %tid, 16
  condbr i1 %c, label %t, label %j
t:
  store i32 %tid, i32 addrspace(3)* %s
  br label %j
j:
  ret
}
)");
  DominatorTree DT(*F);
  PostDominatorTree PDT(*F);
  DominanceFrontier DF(*F, DT);
  DivergenceAnalysis DA(*F, DT, DF);
  RegionQuery RQ(*F, DT, PDT);
  // Condition 2 of Definition 5 fails: the false successor is the exit.
  EXPECT_FALSE(
      detectMeldableRegion(F->getBlockByName("entry"), RQ, DA).has_value());
}

// -- Tail merging baseline ---------------------------------------------------

TEST(TailMergeTest, MergesIdenticalArms) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @tm(i32 %a, i32 addrspace(1)* %p) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %c = icmp slt i32 %tid, 16
  condbr i1 %c, label %t, label %e
t:
  %x1 = add i32 %a, 5
  store i32 %x1, i32 addrspace(1)* %p
  br label %j
e:
  %x2 = add i32 %a, 5
  store i32 %x2, i32 addrspace(1)* %p
  br label %j
j:
  ret
}
)");
  EXPECT_TRUE(runTailMerge(*F));
  std::string Err;
  EXPECT_TRUE(verifyFunction(*F, &Err)) << Err;
  EXPECT_EQ(F->getNumBlocks(), 3u); // one arm deleted
}

TEST(TailMergeTest, RejectsDistinctArms) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @tm2(i32 %a, i32 addrspace(1)* %p) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %c = icmp slt i32 %tid, 16
  condbr i1 %c, label %t, label %e
t:
  %x1 = add i32 %a, 5
  store i32 %x1, i32 addrspace(1)* %p
  br label %j
e:
  %x2 = add i32 %a, 6
  store i32 %x2, i32 addrspace(1)* %p
  br label %j
j:
  ret
}
)");
  EXPECT_FALSE(runTailMerge(*F)); // constants differ
}

// -- End-to-end on the complex region ---------------------------------------

TEST(DARMPassTest, MeldsComplexRegionBranchFusionCannot) {
  Context Ctx;
  std::unique_ptr<Module> MD, MB;
  Function *FD = parse(Ctx, MD, kComplexRegion);
  Function *FB = parse(Ctx, MB, kComplexRegion);

  DARMStats SD, SB;
  EXPECT_TRUE(runDARM(*FD, DARMConfig(), &SD));
  EXPECT_GT(SD.SubgraphPairsMelded, 0u);
  std::string Err;
  EXPECT_TRUE(verifyFunction(*FD, &Err)) << Err;

  // Branch fusion is diamond-only: nothing to do here (Table I).
  runBranchFusion(*FB, &SB);
  EXPECT_EQ(SB.SubgraphPairsMelded, 0u);
}

TEST(DARMPassTest, ThresholdGatesMelding) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, kComplexRegion);
  DARMConfig Cfg;
  Cfg.ProfitThreshold = 0.99; // nothing is that profitable
  DARMStats DS;
  runDARM(*F, Cfg, &DS);
  EXPECT_EQ(DS.SubgraphPairsMelded, 0u);
}

} // namespace
