//===- sim_golden_test.cpp - Stats/memory invariance vs recorded goldens ----------===//
//
// Pins the simulator's observable behaviour to goldens recorded from the
// original tree-walking interpreter (pre decode/execute split, PR 2, seed
// commit a6a7a82): for every kernel in src/kernels/ — melded and unmelded,
// at the smallest and largest paper block size — every SimStats counter
// and an FNV-1a hash of the final global-memory image must be bit-
// identical. Any engine change that alters timing, issue accounting, or
// memory effects trips this suite.
//
// Regenerating (only when an *intentional* semantic change is made):
// build, then run this binary with DARM_REGEN_GOLDENS=1 — it prints a
// fresh table to stdout in the exact source format below.
//
//===----------------------------------------------------------------------===//

#include "darm/core/DARMPass.h"
#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/Module.h"
#include "darm/kernels/Benchmark.h"
#include "darm/sim/Simulator.h"
#include "darm/transform/DCE.h"
#include "darm/transform/SimplifyCFG.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace darm;

namespace {

struct GoldenRow {
  const char *Name;
  unsigned BlockSize;
  bool Melded;
  /// Cycles, TotalWarpCycles, InstructionsIssued, AluInsts,
  /// VectorMemInsts, SharedMemInsts, BranchesExecuted, DivergentBranches,
  /// AluLanesActive, AluLanesTotal.
  uint64_t Stats[10];
  uint64_t MemHash;
};

// Recorded from the seed interpreter; see file header.
const GoldenRow kGoldens[] = {
    {"BIT", 32, false,
     {5164ull, 5164ull, 1792ull, 780ull, 8ull, 408ull, 532ull, 200ull, 16320ull, 24960ull},
     0x5db3f8e6fb2bd8adull},
    {"BIT", 32, true,
     {3864ull, 3864ull, 1612ull, 900ull, 8ull, 248ull, 392ull, 120ull, 20160ull, 28800ull},
     0x5db3f8e6fb2bd8adull},
    {"BIT", 256, false,
     {9544ull, 72172ull, 27332ull, 12192ull, 64ull, 5528ull, 8364ull, 2625ull, 282624ull, 390144ull},
     0x5300b9556feea469ull},
    {"BIT", 256, true,
     {8496ull, 63500ull, 27620ull, 15456ull, 64ull, 4248ull, 6668ull, 1985ull, 356352ull, 494592ull},
     0x5300b9556feea469ull},
    {"PCM", 32, false,
     {1298ull, 1298ull, 600ull, 430ull, 8ull, 50ull, 108ull, 10ull, 7020ull, 13760ull},
     0xc1d29f9b29dfbfcfull},
    {"PCM", 32, true,
     {1156ull, 1156ull, 612ull, 508ull, 8ull, 28ull, 64ull, 8ull, 13692ull, 16256ull},
     0xc1d29f9b29dfbfcfull},
    {"PCM", 256, false,
     {1826ull, 14203ull, 6588ull, 4781ull, 64ull, 549ull, 1162ull, 37ull, 83061ull, 152992ull},
     0x8ce6d4dff21fb707ull},
    {"PCM", 256, true,
     {1718ull, 13332ull, 6528ull, 5492ull, 64ull, 292ull, 648ull, 36ull, 172305ull, 175744ull},
     0x8ce6d4dff21fb707ull},
    {"MS", 32, false,
     {1251228ull, 1251228ull, 106968ull, 72152ull, 14812ull, 0ull, 20004ull, 1761ull, 444408ull, 2308864ull},
     0x2be774861d4a0f03ull},
    {"MS", 32, true,
     {1191336ull, 1191336ull, 108648ull, 86048ull, 13056ull, 0ull, 9544ull, 5ull, 534520ull, 2753536ull},
     0x2be774861d4a0f03ull},
    {"MS", 256, false,
     {1074939ull, 1251245ull, 106852ull, 72094ull, 14783ull, 0ull, 19975ull, 1732ull, 444408ull, 2307008ull},
     0x7f533e1bec6ad63full},
    {"MS", 256, true,
     {1039166ull, 1191336ull, 108648ull, 86048ull, 13056ull, 0ull, 9544ull, 5ull, 534520ull, 2753536ull},
     0x7f533e1bec6ad63full},
    {"LUD", 16, false,
     {6628ull, 6628ull, 1260ull, 828ull, 36ull, 168ull, 224ull, 8ull, 8960ull, 26496ull},
     0x2c1ffef7b622dc86ull},
    {"LUD", 16, true,
     {5924ull, 5924ull, 1068ull, 768ull, 36ull, 104ull, 156ull, 4ull, 12160ull, 24576ull},
     0x2c1ffef7b622dc86ull},
    {"LUD", 128, false,
     {8796ull, 34896ull, 3388ull, 2224ull, 144ull, 392ull, 612ull, 4ull, 70784ull, 71168ull},
     0x266585a08119def6ull},
    {"LUD", 128, true,
     {8996ull, 35696ull, 4188ull, 3024ull, 144ull, 392ull, 612ull, 4ull, 96384ull, 96768ull},
     0x266585a08119def6ull},
    {"NQU", 64, false,
     {60242ull, 120014ull, 94090ull, 76490ull, 4ull, 3404ull, 14192ull, 3640ull, 573860ull, 2447680ull},
     0xf01dee91bf41f2c3ull},
    {"NQU", 64, true,
     {60242ull, 120014ull, 94090ull, 76490ull, 4ull, 3404ull, 14192ull, 3640ull, 573860ull, 2447680ull},
     0xf01dee91bf41f2c3ull},
    {"NQU", 256, false,
     {60242ull, 121130ull, 94306ull, 76670ull, 16ull, 3404ull, 14216ull, 3640ull, 579620ull, 2453440ull},
     0x2bab442712b2bac3ull},
    {"NQU", 256, true,
     {60242ull, 121130ull, 94306ull, 76670ull, 16ull, 3404ull, 14216ull, 3640ull, 579620ull, 2453440ull},
     0x2bab442712b2bac3ull},
    {"SRAD", 256, false,
     {466ull, 3370ull, 776ull, 486ull, 32ull, 116ull, 126ull, 18ull, 12338ull, 15552ull},
     0x15cd45c45981bf7eull},
    {"SRAD", 256, true,
     {398ull, 3044ull, 742ull, 578ull, 32ull, 82ull, 34ull, 2ull, 18434ull, 18496ull},
     0x15cd45c45981bf7eull},
    {"SRAD", 1024, false,
     {466ull, 13330ull, 3056ull, 1914ull, 128ull, 452ull, 498ull, 66ull, 49372ull, 61248ull},
     0x417db01af18245a0ull},
    {"SRAD", 1024, true,
     {398ull, 12116ull, 2950ull, 2306ull, 128ull, 322ull, 130ull, 2ull, 73730ull, 73792ull},
     0x417db01af18245a0ull},
    {"DCT", 16, false,
     {1040ull, 1040ull, 152ull, 104ull, 16ull, 0ull, 32ull, 8ull, 1408ull, 3328ull},
     0xc4161e81905d92feull},
    {"DCT", 16, true,
     {896ull, 896ull, 128ull, 104ull, 16ull, 0ull, 8ull, 0ull, 1664ull, 3328ull},
     0xc4161e81905d92feull},
    {"DCT", 256, false,
     {1040ull, 8320ull, 1216ull, 832ull, 128ull, 0ull, 256ull, 64ull, 22528ull, 26624ull},
     0x2256b89f2e81877aull},
    {"DCT", 256, true,
     {896ull, 7168ull, 1024ull, 832ull, 128ull, 0ull, 64ull, 0ull, 26624ull, 26624ull},
     0x2256b89f2e81877aull},
    {"SB1", 32, false,
     {1062ull, 1062ull, 386ull, 202ull, 4ull, 52ull, 110ull, 16ull, 5440ull, 6464ull},
     0x95c403eff205ce5bull},
    {"SB1", 32, true,
     {742ull, 742ull, 226ull, 106ull, 4ull, 36ull, 62ull, 0ull, 3392ull, 3392ull},
     0x95c403eff205ce5bull},
    {"SB1", 256, false,
     {1062ull, 8496ull, 3088ull, 1616ull, 32ull, 416ull, 880ull, 128ull, 43520ull, 51712ull},
     0x61095c5f9737dc10ull},
    {"SB1", 256, true,
     {742ull, 5936ull, 1808ull, 848ull, 32ull, 288ull, 496ull, 0ull, 27136ull, 27136ull},
     0x61095c5f9737dc10ull},
    {"SB1R", 32, false,
     {1062ull, 1062ull, 386ull, 202ull, 4ull, 52ull, 110ull, 16ull, 5440ull, 6464ull},
     0xdecf764905d21330ull},
    {"SB1R", 32, true,
     {886ull, 886ull, 370ull, 250ull, 4ull, 36ull, 62ull, 0ull, 8000ull, 8000ull},
     0xdecf764905d21330ull},
    {"SB1R", 256, false,
     {1062ull, 8496ull, 3088ull, 1616ull, 32ull, 416ull, 880ull, 128ull, 43520ull, 51712ull},
     0xe52ca7760c5665b8ull},
    {"SB1R", 256, true,
     {886ull, 7088ull, 2960ull, 2000ull, 32ull, 288ull, 496ull, 0ull, 64000ull, 64000ull},
     0xe52ca7760c5665b8ull},
    {"SB2", 32, false,
     {1126ull, 1126ull, 450ull, 234ull, 4ull, 52ull, 142ull, 48ull, 5436ull, 7488ull},
     0xa979248419290d61ull},
    {"SB2", 32, true,
     {918ull, 918ull, 402ull, 250ull, 4ull, 36ull, 94ull, 16ull, 7484ull, 8000ull},
     0xa979248419290d61ull},
    {"SB2", 256, false,
     {1126ull, 9008ull, 3600ull, 1872ull, 32ull, 416ull, 1136ull, 384ull, 43496ull, 59904ull},
     0xa6db8ce9ce15e73cull},
    {"SB2", 256, true,
     {918ull, 7344ull, 3216ull, 2000ull, 32ull, 288ull, 752ull, 128ull, 59880ull, 64000ull},
     0xa6db8ce9ce15e73cull},
    {"SB2R", 32, false,
     {1078ull, 1078ull, 450ull, 234ull, 4ull, 52ull, 142ull, 48ull, 5440ull, 7488ull},
     0x39efd4adc1df71baull},
    {"SB2R", 32, true,
     {998ull, 998ull, 482ull, 330ull, 4ull, 36ull, 94ull, 16ull, 8768ull, 10560ull},
     0x39efd4adc1df71baull},
    {"SB2R", 256, false,
     {1078ull, 8624ull, 3600ull, 1872ull, 32ull, 416ull, 1136ull, 384ull, 43496ull, 59904ull},
     0x8330d826e427c87full},
    {"SB2R", 256, true,
     {998ull, 7984ull, 3856ull, 2640ull, 32ull, 288ull, 752ull, 128ull, 70060ull, 84480ull},
     0x8330d826e427c87full},
    {"SB3", 32, false,
     {1894ull, 1894ull, 674ull, 330ull, 4ull, 116ull, 206ull, 80ull, 6468ull, 10560ull},
     0x3dc2e2611f5cb524ull},
    {"SB3", 32, true,
     {1366ull, 1366ull, 578ull, 362ull, 4ull, 68ull, 126ull, 32ull, 10564ull, 11584ull},
     0x3dc2e2611f5cb524ull},
    {"SB3", 256, false,
     {1894ull, 15152ull, 5392ull, 2640ull, 32ull, 928ull, 1648ull, 640ull, 51732ull, 84480ull},
     0x2bff2985fc9ec8d0ull},
    {"SB3", 256, true,
     {1366ull, 10928ull, 4624ull, 2896ull, 32ull, 544ull, 1008ull, 256ull, 84500ull, 92672ull},
     0x2bff2985fc9ec8d0ull},
    {"SB3R", 32, false,
     {1798ull, 1798ull, 674ull, 330ull, 4ull, 116ull, 206ull, 80ull, 6470ull, 10560ull},
     0xc93122142b67a7aeull},
    {"SB3R", 32, true,
     {1526ull, 1526ull, 738ull, 522ull, 4ull, 68ull, 126ull, 32ull, 13141ull, 16704ull},
     0xc93122142b67a7aeull},
    {"SB3R", 256, false,
     {1798ull, 14384ull, 5392ull, 2640ull, 32ull, 928ull, 1648ull, 640ull, 51746ull, 84480ull},
     0x02009d05ed92af94ull},
    {"SB3R", 256, true,
     {1526ull, 12208ull, 5904ull, 4176ull, 32ull, 544ull, 1008ull, 256ull, 105079ull, 133632ull},
     0x02009d05ed92af94ull},
    {"SB4", 32, false,
     {1558ull, 1558ull, 482ull, 250ull, 4ull, 68ull, 142ull, 32ull, 5782ull, 8000ull},
     0x5bd87f4a29d68a26ull},
    {"SB4", 32, true,
     {1270ull, 1270ull, 402ull, 234ull, 4ull, 52ull, 94ull, 16ull, 7146ull, 7488ull},
     0x5bd87f4a29d68a26ull},
    {"SB4", 256, false,
     {1558ull, 12464ull, 3856ull, 2000ull, 32ull, 544ull, 1136ull, 256ull, 46250ull, 64000ull},
     0x609f9f47cb93f146ull},
    {"SB4", 256, true,
     {1270ull, 10160ull, 3216ull, 1872ull, 32ull, 416ull, 752ull, 128ull, 57172ull, 59904ull},
     0x609f9f47cb93f146ull},
    {"SB4R", 32, false,
     {1510ull, 1510ull, 482ull, 250ull, 4ull, 68ull, 142ull, 32ull, 5782ull, 8000ull},
     0x455fbf5a00f76152ull},
    {"SB4R", 32, true,
     {1446ull, 1446ull, 578ull, 410ull, 4ull, 52ull, 94ull, 16ull, 12436ull, 13120ull},
     0x455fbf5a00f76152ull},
    {"SB4R", 256, false,
     {1510ull, 12080ull, 3856ull, 2000ull, 32ull, 544ull, 1136ull, 256ull, 46250ull, 64000ull},
     0x17698a958c768b15ull},
    {"SB4R", 256, true,
     {1446ull, 11568ull, 4624ull, 3280ull, 32ull, 416ull, 752ull, 128ull, 99496ull, 104960ull},
     0x17698a958c768b15ull},
};

struct RunOutcome {
  SimStats Stats;
  uint64_t MemHash = 0;
  bool Valid = false;
};

RunOutcome simulate(const std::string &Name, unsigned BlockSize, bool Meld) {
  auto B = createBenchmark(Name, BlockSize);
  EXPECT_NE(B, nullptr) << "unknown benchmark " << Name;
  Context Ctx;
  Module M(Ctx, Name);
  Function *F = B->build(M);
  if (Meld) {
    DARMConfig Cfg;
    runDARM(*F, Cfg, nullptr);
  }
  simplifyCFG(*F);
  eliminateDeadCode(*F);

  BenchRun R = runBenchmark(*B, *F);
  EXPECT_TRUE(R.Valid) << Name << " bs=" << BlockSize << " meld=" << Meld
                       << ": " << R.Why;
  return {R.Total, R.MemHash, R.Valid};
}

/// The corpus is split into fixed shards (rows I with I % kNumShards ==
/// shard) so `ctest -j` schedules them as independent test cases; every
/// row is covered exactly once across the shards regardless of the
/// count. Regeneration (DARM_REGEN_GOLDENS=1) prints the *whole* table
/// from shard 0 in source order, so the copy-paste workflow from the
/// file header is unchanged.
constexpr unsigned kNumShards = 8;

class SimGoldenShard : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimGoldenShard, StatsAndMemoryBitIdentical) {
  const bool Regen = std::getenv("DARM_REGEN_GOLDENS") != nullptr;
  const unsigned Shard = GetParam();
  if (Regen && Shard != 0)
    GTEST_SKIP() << "regeneration prints the full table from shard 0";
  constexpr size_t NumRows = sizeof(kGoldens) / sizeof(kGoldens[0]);
  for (size_t I = 0; I < NumRows; ++I) {
    if (!Regen && I % kNumShards != Shard)
      continue;
    const GoldenRow &G = kGoldens[I];
    SCOPED_TRACE(std::string(G.Name) + " bs=" + std::to_string(G.BlockSize) +
                 (G.Melded ? " melded" : " baseline"));
    RunOutcome O = simulate(G.Name, G.BlockSize, G.Melded);
    if (Regen) {
      std::printf("    {\"%s\", %u, %s,\n"
                  "     {%lluull, %lluull, %lluull, %lluull, %lluull, "
                  "%lluull, %lluull, %lluull, %lluull, %lluull},\n"
                  "     0x%016llxull},\n",
                  G.Name, G.BlockSize, G.Melded ? "true" : "false",
                  (unsigned long long)O.Stats.Cycles,
                  (unsigned long long)O.Stats.TotalWarpCycles,
                  (unsigned long long)O.Stats.InstructionsIssued,
                  (unsigned long long)O.Stats.AluInsts,
                  (unsigned long long)O.Stats.VectorMemInsts,
                  (unsigned long long)O.Stats.SharedMemInsts,
                  (unsigned long long)O.Stats.BranchesExecuted,
                  (unsigned long long)O.Stats.DivergentBranches,
                  (unsigned long long)O.Stats.AluLanesActive,
                  (unsigned long long)O.Stats.AluLanesTotal,
                  (unsigned long long)O.MemHash);
      continue;
    }
    EXPECT_EQ(O.Stats.Cycles, G.Stats[0]);
    EXPECT_EQ(O.Stats.TotalWarpCycles, G.Stats[1]);
    EXPECT_EQ(O.Stats.InstructionsIssued, G.Stats[2]);
    EXPECT_EQ(O.Stats.AluInsts, G.Stats[3]);
    EXPECT_EQ(O.Stats.VectorMemInsts, G.Stats[4]);
    EXPECT_EQ(O.Stats.SharedMemInsts, G.Stats[5]);
    EXPECT_EQ(O.Stats.BranchesExecuted, G.Stats[6]);
    EXPECT_EQ(O.Stats.DivergentBranches, G.Stats[7]);
    EXPECT_EQ(O.Stats.AluLanesActive, G.Stats[8]);
    EXPECT_EQ(O.Stats.AluLanesTotal, G.Stats[9]);
    EXPECT_EQ(O.MemHash, G.MemHash);
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, SimGoldenShard,
                         ::testing::Range(0u, kNumShards));

// Decode-once/run-many must behave exactly like one-shot runs: replaying
// a launch on a fresh memory image yields the same stats and results.
TEST(SimGolden, EngineReplayIsDeterministic) {
  auto B = createBenchmark("SB2", 64);
  ASSERT_NE(B, nullptr);
  Context Ctx;
  Module M(Ctx, "SB2");
  Function *F = B->build(M);

  SimEngine Engine(*F);
  uint64_t FirstHash = 0;
  SimStats First;
  for (int Round = 0; Round < 3; ++Round) {
    GlobalMemory Mem;
    std::vector<uint64_t> Base = B->setup(Mem);
    SimStats S;
    for (unsigned L = 0, E = B->numLaunches(); L != E; ++L)
      S += Engine.run(B->launch(), B->argsForLaunch(L, Base), Mem);
    std::string Why;
    EXPECT_TRUE(B->validate(Mem, Base, &Why)) << Why;
    if (Round == 0) {
      First = S;
      FirstHash = hashMemoryImage(Mem);
    } else {
      EXPECT_EQ(S.Cycles, First.Cycles);
      EXPECT_EQ(S.InstructionsIssued, First.InstructionsIssued);
      EXPECT_EQ(hashMemoryImage(Mem), FirstHash);
    }
  }
}

} // namespace
