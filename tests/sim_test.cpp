//===- sim_test.cpp - SIMT simulator unit tests -------------------------------------===//

#include "darm/analysis/Verifier.h"
#include "darm/fuzz/KernelGenerator.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/Module.h"
#include "darm/sim/Simulator.h"
#include "darm/support/ErrorHandling.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

Function *parse(Context &Ctx, std::unique_ptr<Module> &Keep,
                const std::string &Text) {
  std::string Err;
  Keep = parseModule(Ctx, Text, &Err);
  EXPECT_NE(Keep, nullptr) << Err;
  return Keep ? Keep->functions().front().get() : nullptr;
}

TEST(Sim, IntrinsicsAndStores) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @ids(i32 addrspace(1)* %out) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %ntid = call i32 @darm.ntid.x()
  %cta = call i32 @darm.ctaid.x()
  %g1 = mul i32 %cta, %ntid
  %gid = add i32 %g1, %tid
  %v = mul i32 %gid, 10
  %p = gep i32 addrspace(1)* %out, i32 %gid
  store i32 %v, i32 addrspace(1)* %p
  ret
}
)");
  GlobalMemory Mem;
  uint64_t Out = Mem.allocate(64 * 4);
  SimStats S = runKernel(*F, {2, 32}, {Out}, Mem);
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(Mem.readI32(Out + I * 4), I * 10);
  EXPECT_EQ(S.DivergentBranches, 0u);
  EXPECT_EQ(S.VectorMemInsts, 2u * 1u); // one coalesced store per warp... per block
}

TEST(Sim, DivergentBranchSerializesAndReconverges) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @div(i32 addrspace(1)* %out) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %par = and i32 %tid, 1
  %c = icmp eq i32 %par, 0
  condbr i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  %v = phi i32 [ 100, %t ], [ 200, %e ]
  %p = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %v, i32 addrspace(1)* %p
  ret
}
)");
  GlobalMemory Mem;
  uint64_t Out = Mem.allocate(32 * 4);
  SimStats S = runKernel(*F, {1, 32}, {Out}, Mem);
  EXPECT_EQ(S.DivergentBranches, 1u);
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(Mem.readI32(Out + I * 4), (I % 2 == 0) ? 100 : 200);
  // The final store executes once for the whole warp (reconverged).
  EXPECT_EQ(S.VectorMemInsts, 1u);
}

TEST(Sim, NestedDivergenceMasksCorrectly) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @nest(i32 addrspace(1)* %out) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %q = and i32 %tid, 3
  %c1 = icmp ult i32 %q, 2
  condbr i1 %c1, label %lo, label %hi
lo:
  %c2 = icmp eq i32 %q, 0
  condbr i1 %c2, label %lo0, label %lo1
lo0:
  br label %j
lo1:
  br label %j
hi:
  %c3 = icmp eq i32 %q, 2
  condbr i1 %c3, label %hi2, label %hi3
hi2:
  br label %j
hi3:
  br label %j
j:
  %v = phi i32 [ 0, %lo0 ], [ 1, %lo1 ], [ 2, %hi2 ], [ 3, %hi3 ]
  %p = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %v, i32 addrspace(1)* %p
  ret
}
)");
  GlobalMemory Mem;
  uint64_t Out = Mem.allocate(32 * 4);
  SimStats S = runKernel(*F, {1, 32}, {Out}, Mem);
  EXPECT_EQ(S.DivergentBranches, 3u);
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(Mem.readI32(Out + I * 4), I % 4);
}

TEST(Sim, LoopWithDivergentTripCount) {
  Context Ctx;
  std::unique_ptr<Module> M;
  // Each lane loops tid times; total = sum of per-lane counters.
  Function *F = parse(Ctx, M, R"(
func @looptc(i32 addrspace(1)* %out) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  br label %hdr
hdr:
  %i = phi i32 [ 0, %entry ], [ %inext, %hdr ]
  %inext = add i32 %i, 1
  %c = icmp slt i32 %inext, %tid
  condbr i1 %c, label %hdr, label %done
done:
  %p = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %i, i32 addrspace(1)* %p
  ret
}
)");
  GlobalMemory Mem;
  uint64_t Out = Mem.allocate(32 * 4);
  runKernel(*F, {1, 32}, {Out}, Mem);
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(Mem.readI32(Out + I * 4), std::max(0, I - 1));
}

TEST(Sim, SharedMemoryBarrierPhases) {
  Context Ctx;
  std::unique_ptr<Module> M;
  // Reverse an array through LDS across a barrier: requires cross-warp
  // ordering, so the phase scheduler must honor the barrier.
  Function *F = parse(Ctx, M, R"(
func @rev(i32 addrspace(1)* %data) -> void {
shared @buf = i32[64]
entry:
  %tid = call i32 @darm.tid.x()
  %ntid = call i32 @darm.ntid.x()
  %p = gep i32 addrspace(1)* %data, i32 %tid
  %v = load i32 addrspace(1)* %p
  %s = gep i32 addrspace(3)* @buf, i32 %tid
  store i32 %v, i32 addrspace(3)* %s
  call void @darm.barrier()
  %nm1 = sub i32 %ntid, 1
  %ridx = sub i32 %nm1, %tid
  %rs = gep i32 addrspace(3)* @buf, i32 %ridx
  %rv = load i32 addrspace(3)* %rs
  store i32 %rv, i32 addrspace(1)* %p
  ret
}
)");
  GlobalMemory Mem;
  uint64_t Data = Mem.allocate(64 * 4);
  for (int I = 0; I < 64; ++I)
    Mem.writeI32(Data + I * 4, I);
  SimStats S = runKernel(*F, {1, 64}, {Data}, Mem);
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(Mem.readI32(Data + I * 4), 63 - I);
  EXPECT_EQ(S.SharedMemInsts, 2u * 2u); // per warp: 1 store + 1 load
}

TEST(Sim, BankConflictsCostCycles) {
  Context Ctx;
  std::unique_ptr<Module> MC, MF;
  // Conflict-free: sh[tid]. 2-way conflicts: sh[2*tid].
  const char *Free = R"(
func @free(i32 addrspace(1)* %out) -> void {
shared @b = i32[256]
entry:
  %tid = call i32 @darm.tid.x()
  %s = gep i32 addrspace(3)* @b, i32 %tid
  %v = load i32 addrspace(3)* %s
  store i32 %v, i32 addrspace(1)* %out
  ret
}
)";
  const char *Conflict = R"(
func @conf(i32 addrspace(1)* %out) -> void {
shared @b = i32[256]
entry:
  %tid = call i32 @darm.tid.x()
  %i2 = mul i32 %tid, 2
  %s = gep i32 addrspace(3)* @b, i32 %i2
  %v = load i32 addrspace(3)* %s
  store i32 %v, i32 addrspace(1)* %out
  ret
}
)";
  Function *FF = parse(Ctx, MC, Free);
  Function *FC = parse(Ctx, MF, Conflict);
  GlobalMemory M1, M2;
  uint64_t O1 = M1.allocate(4), O2 = M2.allocate(4);
  SimStats SF = runKernel(*FF, {1, 32}, {O1}, M1);
  SimStats SC = runKernel(*FC, {1, 32}, {O2}, M2);
  EXPECT_GT(SC.Cycles, SF.Cycles); // conflicts serialize
}

TEST(Sim, CoalescingCostCycles) {
  Context Ctx;
  std::unique_ptr<Module> MA, MB;
  const char *Coalesced = R"(
func @co(i32 addrspace(1)* %in, i32 addrspace(1)* %out) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %p = gep i32 addrspace(1)* %in, i32 %tid
  %v = load i32 addrspace(1)* %p
  %q = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %v, i32 addrspace(1)* %q
  ret
}
)";
  const char *Strided = R"(
func @st(i32 addrspace(1)* %in, i32 addrspace(1)* %out) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %i = mul i32 %tid, 64
  %p = gep i32 addrspace(1)* %in, i32 %i
  %v = load i32 addrspace(1)* %p
  %q = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %v, i32 addrspace(1)* %q
  ret
}
)";
  Function *FA = parse(Ctx, MA, Coalesced);
  Function *FB = parse(Ctx, MB, Strided);
  GlobalMemory M1, M2;
  uint64_t In1 = M1.allocate(32 * 64 * 4), Out1 = M1.allocate(32 * 4);
  uint64_t In2 = M2.allocate(32 * 64 * 4), Out2 = M2.allocate(32 * 4);
  SimStats SA = runKernel(*FA, {1, 32}, {In1, Out1}, M1);
  SimStats SB = runKernel(*FB, {1, 32}, {In2, Out2}, M2);
  EXPECT_GT(SB.Cycles, SA.Cycles); // 32 segments vs 1
  EXPECT_EQ(SA.VectorMemInsts, SB.VectorMemInsts); // same instruction count
}

TEST(Sim, ShflReadsOtherLane) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @shfl(i32 addrspace(1)* %out) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %lane = call i32 @darm.laneid()
  %src = xor i32 %lane, 1
  %got = call i32 @darm.shfl.sync(i32 %tid, i32 %src)
  %p = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %got, i32 addrspace(1)* %p
  ret
}
)");
  GlobalMemory Mem;
  uint64_t Out = Mem.allocate(32 * 4);
  runKernel(*F, {1, 32}, {Out}, Mem);
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(Mem.readI32(Out + I * 4), I ^ 1); // butterfly exchange
}

TEST(Sim, DefinedDivisionByZero) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @div0(i32 addrspace(1)* %out) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %q = sdiv i32 100, %tid
  %r = srem i32 100, %tid
  %sum = add i32 %q, %r
  %p = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %sum, i32 addrspace(1)* %p
  ret
}
)");
  GlobalMemory Mem;
  uint64_t Out = Mem.allocate(32 * 4);
  runKernel(*F, {1, 32}, {Out}, Mem);
  EXPECT_EQ(Mem.readI32(Out + 0), 0); // both sdiv and srem by 0 yield 0
  EXPECT_EQ(Mem.readI32(Out + 4), 100);
  EXPECT_EQ(Mem.readI32(Out + 7 * 4), 100 / 7 + 100 % 7);
}

TEST(Sim, OutOfBoundsLoadReturnsZero) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @oob(i32 addrspace(1)* %out) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %far = add i32 %tid, 1000000
  %p = gep i32 addrspace(1)* %out, i32 %far
  %v = load i32 addrspace(1)* %p
  %q = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %v, i32 addrspace(1)* %q
  ret
}
)");
  GlobalMemory Mem;
  uint64_t Out = Mem.allocate(32 * 4);
  for (int I = 0; I < 32; ++I)
    Mem.writeI32(Out + I * 4, 99);
  runKernel(*F, {1, 32}, {Out}, Mem);
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(Mem.readI32(Out + I * 4), 0);
}

TEST(Sim, PartialWarpMask) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @partial(i32 addrspace(1)* %out) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %p = gep i32 addrspace(1)* %out, i32 %tid
  store i32 7, i32 addrspace(1)* %p
  ret
}
)");
  GlobalMemory Mem;
  uint64_t Out = Mem.allocate(64 * 4);
  runKernel(*F, {1, 16}, {Out}, Mem); // blockDim < warp size
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(Mem.readI32(Out + I * 4), 7);
  for (int I = 16; I < 64; ++I)
    EXPECT_EQ(Mem.readI32(Out + I * 4), 0); // untouched
}

TEST(Sim, EngineDecodeOnceRunMany) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @scale(i32 addrspace(1)* %out, i32 %k) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %v = mul i32 %tid, %k
  %p = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %v, i32 addrspace(1)* %p
  ret
}
)");
  // One decode, several launches with different arguments.
  SimEngine Engine(*F);
  GlobalMemory Mem;
  uint64_t Out = Mem.allocate(32 * 4);
  SimStats S1 = Engine.run({1, 32}, {Out, 3}, Mem);
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(Mem.readI32(Out + I * 4), I * 3);
  SimStats S2 = Engine.run({1, 32}, {Out, 7}, Mem);
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(Mem.readI32(Out + I * 4), I * 7);
  // Identical launches cost identical cycles.
  EXPECT_EQ(S1.Cycles, S2.Cycles);
  EXPECT_EQ(S1.InstructionsIssued, S2.InstructionsIssued);
}

TEST(Sim, DecodedProgramShape) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @shape(i32 addrspace(1)* %out) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %c = icmp slt i32 %tid, 4
  condbr i1 %c, label %t, label %j
t:
  br label %j
j:
  %v = phi i32 [ 1, %t ], [ 2, %entry ]
  %p = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %v, i32 addrspace(1)* %p
  ret
}
)");
  SimEngine Engine(*F);
  const DecodedProgram &P = Engine.program();
  EXPECT_EQ(P.Blocks.size(), 3u);
  EXPECT_EQ(P.ArgRegisters.size(), 1u);
  // Both edges into %j carry exactly one phi copy; constants 1 and 2 are
  // materialized as immediates, not registers.
  EXPECT_EQ(P.MaxEdgePhis, 1u);
  EXPECT_GE(P.Immediates.size(), 2u);
  // Entry's divergent branch reconverges at %j (decoded IPDOM).
  EXPECT_EQ(P.Blocks[P.EntryBlock].Reconverge, 2u);
}

TEST(Sim, UniformSafeBitsAreConservative) {
  // The uniform fast path's licence (DecodedBlock::UniformSafe,
  // docs/performance.md): ret / plain br / uniform-condition branches
  // are safe; anything derived from thread identity, loads or shfl.sync
  // is not — loads and shuffles can vary with *when* a masked subset
  // executes them, so they are execution-time divergent even at a
  // uniform address.
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @uniform(i32 addrspace(1)* %buf, i32 %n) -> void {
entry:
  %c.arg = icmp sgt i32 %n, 4
  condbr i1 %c.arg, label %tid.blk, label %load.blk
tid.blk:
  %tid = call i32 @darm.tid.x()
  %c.tid = icmp slt i32 %tid, 7
  condbr i1 %c.tid, label %load.blk, label %load.blk
load.blk:
  %p = gep i32 addrspace(1)* %buf, i32 0
  %v = load i32 addrspace(1)* %p
  %c.load = icmp eq i32 %v, 0
  condbr i1 %c.load, label %shfl.blk, label %shfl.blk
shfl.blk:
  %s = call i32 @darm.shfl.sync(i32 %n, i32 0)
  %c.shfl = icmp eq i32 %s, 1
  condbr i1 %c.shfl, label %exit, label %exit
exit:
  ret
}
)");
  SimEngine Engine(*F);
  const DecodedProgram &P = Engine.program();
  ASSERT_EQ(P.Blocks.size(), 5u);
  // entry: branch on an argument comparison — uniform, safe.
  EXPECT_TRUE(P.Blocks[0].UniformSafe);
  // tid.blk: thread-identity condition — divergent.
  EXPECT_FALSE(P.Blocks[1].UniformSafe);
  // load.blk: condition fed by a load (even at a uniform address) —
  // execution-time divergent.
  EXPECT_FALSE(P.Blocks[2].UniformSafe);
  // shfl.blk: condition fed by shfl.sync — execution-time divergent.
  EXPECT_FALSE(P.Blocks[3].UniformSafe);
  // exit: ret cannot split the mask.
  EXPECT_TRUE(P.Blocks[4].UniformSafe);
  // The shuffled value's register row is the one cross-lane-readable
  // row, so it is the only one the executor must zero on recycle.
  EXPECT_EQ(P.CrossLaneRegisters.size(), 1u);
}

TEST(Sim, TraceFormationFusesUniformChains) {
  // Decode-time superblock formation (docs/performance.md): a chain of
  // UniformSafe, barrier-free blocks linked by unconditional branches is
  // fused into one trace whose batched accounting sums the per-block
  // numbers exactly.
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @chain(i32 addrspace(1)* %out, i32 %n) -> void {
entry:
  %a = add i32 %n, 1
  br label %mid
mid:
  %b = mul i32 %a, 3
  br label %tail
tail:
  %c = xor i32 %b, 5
  %p = gep i32 addrspace(1)* %out, i32 0
  store i32 %c, i32 addrspace(1)* %p
  ret
}
)");
  SimEngine Engine(*F);
  const DecodedProgram &P = Engine.program();
  ASSERT_EQ(P.Blocks.size(), 3u);
  // Every block is eligible; the entry-headed trace spans all three.
  ASSERT_NE(P.Blocks[0].TraceId, kNoTrace);
  const DecodedTrace &T = P.Traces[P.Blocks[0].TraceId];
  EXPECT_EQ(T.NumBlocks, 3u);
  EXPECT_EQ(T.LastBlock, 2u);
  EXPECT_EQ(T.DynInsts,
            P.Blocks[0].NumInsts + P.Blocks[1].NumInsts + P.Blocks[2].NumInsts);
  EXPECT_EQ(T.NumAluInsts, P.Blocks[0].NumAluInsts + P.Blocks[1].NumAluInsts +
                               P.Blocks[2].NumAluInsts);
  EXPECT_EQ(T.StaticLatency, P.Blocks[0].StaticLatency +
                                 P.Blocks[1].StaticLatency +
                                 P.Blocks[2].StaticLatency);
  // Terminators are never materialized as trace ops: one op per body
  // instruction, minus the three terminators.
  EXPECT_EQ(T.NumOps, T.DynInsts - 3u);
  // The store caps the memory-free (multi-warp batchable) prefix.
  EXPECT_LT(T.PrefixOps, T.NumOps);
  // Interior chained blocks head their own traces too (a warp can enter
  // mid-chain after reconvergence), so every eligible block has one.
  EXPECT_EQ(P.Traces.size(), 3u);
  EXPECT_NE(P.Blocks[1].TraceId, kNoTrace);
  EXPECT_NE(P.Blocks[2].TraceId, kNoTrace);
}

TEST(Sim, TracesNeverCrossBarriersOrDivergentBlocks) {
  // The trace-eligibility pins: a block with a barrier (suspends
  // mid-block) or a non-UniformSafe terminator (can split the mask) never
  // joins a trace — it neither heads one nor gets chained into one.
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @mix(i32 addrspace(1)* %out, i32 %n) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %a = add i32 %tid, 1
  br label %bar
bar:
  call void @darm.barrier()
  %b = mul i32 %a, 2
  br label %div
div:
  %c = icmp slt i32 %tid, 4
  condbr i1 %c, label %t, label %j
t:
  br label %j
j:
  %v = phi i32 [ %b, %div ], [ 7, %t ]
  %p = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %v, i32 addrspace(1)* %p
  ret
}
)");
  SimEngine Engine(*F);
  const DecodedProgram &P = Engine.program();
  ASSERT_EQ(P.Blocks.size(), 5u);
  // bar (index 1) holds the barrier; div (index 2) branches on tid.
  EXPECT_TRUE(P.Blocks[1].HasBarrier);
  EXPECT_EQ(P.Blocks[1].TraceId, kNoTrace);
  EXPECT_FALSE(P.Blocks[2].UniformSafe);
  EXPECT_EQ(P.Blocks[2].TraceId, kNoTrace);
  // entry is eligible but its chain must stop before the barrier block.
  ASSERT_NE(P.Blocks[0].TraceId, kNoTrace);
  EXPECT_EQ(P.Traces[P.Blocks[0].TraceId].NumBlocks, 1u);
  // The general invariant, re-walked from every trace head: each fused
  // block is UniformSafe and barrier-free, and interior links are
  // unconditional branches.
  for (uint32_t BI = 0; BI < P.Blocks.size(); ++BI) {
    if (P.Blocks[BI].TraceId == kNoTrace)
      continue;
    const DecodedTrace &T = P.Traces[P.Blocks[BI].TraceId];
    uint32_t Cur = BI;
    for (uint32_t Step = 0; Step < T.NumBlocks; ++Step) {
      const DecodedBlock &DB = P.Blocks[Cur];
      EXPECT_TRUE(DB.UniformSafe) << "trace spans unsafe block " << Cur;
      EXPECT_FALSE(DB.HasBarrier) << "trace spans barrier block " << Cur;
      if (Step + 1 < T.NumBlocks) {
        // Interior edge: an unconditional branch (single successor).
        EXPECT_EQ(DB.Succ[1], kNoBlock);
        Cur = DB.Succ[0];
      }
    }
    EXPECT_EQ(Cur, T.LastBlock);
  }
}

TEST(Sim, NonDefaultWarpSizes) {
  const char *Src = R"(
func @wsz(i32 addrspace(1)* %out) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %par = and i32 %tid, 1
  %c = icmp eq i32 %par, 0
  condbr i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  %v = phi i32 [ 100, %t ], [ 200, %e ]
  %p = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %v, i32 addrspace(1)* %p
  ret
}
)";
  for (unsigned WS : {1u, 8u, 33u, 64u}) {
    Context Ctx;
    std::unique_ptr<Module> M;
    Function *F = parse(Ctx, M, Src);
    GpuConfig Cfg;
    Cfg.WarpSize = WS;
    GlobalMemory Mem;
    uint64_t Out = Mem.allocate(64 * 4);
    runKernel(*F, {1, 64}, {Out}, Mem, Cfg);
    for (int I = 0; I < 64; ++I)
      EXPECT_EQ(Mem.readI32(Out + I * 4), (I % 2 == 0) ? 100 : 200)
          << "warp size " << WS << " lane " << I;
  }
}

TEST(SimDeathTest, RejectsOutOfRangeWarpSize) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @noop() -> void {
entry:
  ret
}
)");
  for (unsigned Bad : {0u, 65u, 128u}) {
    GpuConfig Cfg;
    Cfg.WarpSize = Bad;
    GlobalMemory Mem;
    EXPECT_EXIT(runKernel(*F, {1, 32}, {}, Mem, Cfg),
                ::testing::ExitedWithCode(1), "WarpSize");
  }
}

TEST(Sim, AluUtilizationReflectsMasking) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @util(i32 addrspace(1)* %out) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %c = icmp slt i32 %tid, 8
  condbr i1 %c, label %t, label %j
t:
  %a = mul i32 %tid, 3
  %b = add i32 %a, 1
  %d = xor i32 %b, 5
  %p = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %d, i32 addrspace(1)* %p
  br label %j
j:
  ret
}
)");
  GlobalMemory Mem;
  uint64_t Out = Mem.allocate(32 * 4);
  SimStats S = runKernel(*F, {1, 32}, {Out}, Mem);
  // Most VALU work runs with 8/32 lanes: utilization well below 1.
  EXPECT_LT(S.aluUtilization(), 0.8);
  EXPECT_GT(S.aluUtilization(), 0.1);
}

//===----------------------------------------------------------------------===//
// Dispatch-mode equivalence: SimDispatch is a host knob, never a device
// parameter (GpuConfig.h). Both executors must produce bit-identical
// SimStats and memory images — and identical host trace telemetry, since
// trace formation happens at decode, before dispatch is even consulted.
//===----------------------------------------------------------------------===//

struct DispatchRun {
  SimStats Stats;
  std::string Fatal;
  std::vector<uint32_t> Memory; ///< full image, 4-byte granules
  EngineStats Engine;
};

/// Builds and runs fuzz case \p C under \p Mode, mirroring
/// fuzz::simulateFuzzCase (own Context, per-thread abort trap,
/// decode-once multi-launch) but with an explicit dispatch request.
DispatchRun runFuzzCaseWithDispatch(const fuzz::FuzzCase &C,
                                    SimDispatch Mode) {
  struct SimAbort {
    std::string Msg;
  };
  struct Catcher {
    [[noreturn]] static void raise(const char *Msg) { throw SimAbort{Msg}; }
  };
  DispatchRun R;
  Context Ctx;
  Module M(Ctx, "dispatch-eq");
  Function *F = fuzz::buildFuzzKernel(M, C);
  GlobalMemory Mem;
  std::vector<uint64_t> Args = fuzz::setupFuzzMemory(C, Mem);
  ScopedFatalErrorHandler Guard(Catcher::raise);
  try {
    GpuConfig GC;
    GC.Dispatch = Mode;
    SimEngine Engine(*F, GC);
    for (unsigned L = 0, E = std::max(1u, C.NumLaunches); L != E; ++L)
      R.Stats += Engine.run(C.Launch, Args, Mem);
    R.Engine = Engine.engineStats();
  } catch (const SimAbort &E) {
    R.Fatal = E.Msg;
  }
  for (uint64_t A = 0; A < Mem.size(); A += 4)
    R.Memory.push_back(static_cast<uint32_t>(Mem.load(A, 4)));
  return R;
}

TEST(SimDispatchEquivalence, ThreadedMatchesSwitchOnFuzzSeeds) {
  for (uint64_t Seed = 0; Seed < 500; ++Seed) {
    const fuzz::FuzzCase C(Seed);
    const DispatchRun Sw = runFuzzCaseWithDispatch(C, SimDispatch::Switch);
    const DispatchRun Th = runFuzzCaseWithDispatch(C, SimDispatch::Threaded);
    ASSERT_EQ(Sw.Fatal, Th.Fatal) << "seed " << Seed;
    for (unsigned I = 0; I < SimStats::NumCounters; ++I)
      ASSERT_EQ(Sw.Stats.counter(I), Th.Stats.counter(I))
          << "seed " << Seed << " counter " << SimStats::counterName(I);
    ASSERT_EQ(Sw.Memory, Th.Memory) << "seed " << Seed;
    // Host-side telemetry too: the same launches retire the same
    // instructions through the same traces in either mode.
    ASSERT_EQ(Sw.Engine.TraceRuns, Th.Engine.TraceRuns) << "seed " << Seed;
    ASSERT_EQ(Sw.Engine.TraceInstrs, Th.Engine.TraceInstrs)
        << "seed " << Seed;
    ASSERT_EQ(Sw.Engine.BatchedTraceInstrs, Th.Engine.BatchedTraceInstrs)
        << "seed " << Seed;
  }
}

} // namespace
