//===- simd_test.cpp - SIMD lane-helper unit tests ---------------------------===//
//
// Pins the bit-identity contract of support/Simd.h directly, one helper
// at a time, independent of the simulator: every helper must equal the
// plain scalar expression it replaces on every lane, write exactly N
// lanes, and handle the vector-chunk/scalar-tail split at awkward widths
// (1 = all tail, 33 = chunks + 1-lane tail, 64 = a full warp row).
//
// The same file builds twice (tests/CMakeLists.txt): once normally and
// once with -DDARM_SIMD_SCALAR forcing the fallback lane loops, so both
// implementations are held to the same expected values.
//
//===----------------------------------------------------------------------===//

#include "darm/support/Simd.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

using namespace darm;
using simd::In;
using simd::Norm;

namespace {

constexpr uint64_t kCanary = 0xdeadbeefcafef00dull;

/// Deterministic lane pattern: adversarial fixed values first (zero,
/// all-ones, the signed extremes of both widths, f32 NaN/inf payloads),
/// then an LCG stream perturbed by \p Salt.
std::vector<uint64_t> patternRow(unsigned N, uint64_t Salt) {
  static const uint64_t Fixed[] = {
      0,
      1,
      ~0ull,                  // -1 at both widths
      0x8000000000000000ull,  // INT64_MIN
      0x7fffffffffffffffull,  // INT64_MAX
      0xffffffff80000000ull,  // sign-extended INT32_MIN
      0x000000007fffffffull,  // INT32_MAX
      0x00000000ffffffffull,  // u32 all-ones, zero-extended
      0x000000007fc00000ull,  // f32 quiet NaN
      0x00000000ff800000ull,  // f32 -inf
      0x0000000000000003ull,
      0x0000000040490fdbull,  // f32 pi
  };
  std::vector<uint64_t> Row(N);
  uint64_t X = Salt * 0x9e3779b97f4a7c15ull + 0x243f6a8885a308d3ull;
  for (unsigned L = 0; L < N; ++L) {
    if (L < sizeof(Fixed) / sizeof(Fixed[0]) && Salt % 2 == 0) {
      Row[L] = Fixed[L] + Salt / 2; // perturb so A != B lane-wise
      continue;
    }
    X = X * 6364136223846793005ull + 1442695040888963407ull;
    Row[L] = X;
  }
  return Row;
}

const unsigned kWidths[] = {1, 33, 64};

uint64_t refSext32(uint64_t V) {
  return static_cast<uint64_t>(
      static_cast<int64_t>(static_cast<int32_t>(static_cast<uint32_t>(V))));
}
float refF32(uint64_t Bits) {
  return std::bit_cast<float>(static_cast<uint32_t>(Bits));
}
uint64_t refFromF32(float F) {
  return static_cast<uint64_t>(std::bit_cast<uint32_t>(F));
}

/// Runs a two-operand helper at every awkward width, against row/row and
/// row/broadcast-immediate operands, checking each lane against \p Ref
/// and that nothing past lane N-1 is written.
template <typename Fn, typename Ref>
void checkBinary(const char *Name, Fn &&F, Ref &&R) {
  for (unsigned N : kWidths) {
    const std::vector<uint64_t> A = patternRow(N, 2);
    const std::vector<uint64_t> B = patternRow(N, 3);
    std::vector<uint64_t> D(N + 1, kCanary);
    F(D.data(), In{A.data(), 0}, In{B.data(), 0}, N);
    for (unsigned L = 0; L < N; ++L)
      ASSERT_EQ(D[L], R(A[L], B[L])) << Name << " N=" << N << " lane " << L;
    EXPECT_EQ(D[N], kCanary) << Name << " wrote past N=" << N;

    // Broadcast immediate as the second operand (Ptr == nullptr).
    const uint64_t Imm = B[N / 2];
    std::fill(D.begin(), D.end(), kCanary);
    F(D.data(), In{A.data(), 0}, In{nullptr, Imm}, N);
    for (unsigned L = 0; L < N; ++L)
      ASSERT_EQ(D[L], R(A[L], Imm)) << Name << " imm N=" << N << " lane " << L;
  }
}

TEST(Simd, I64OpsMatchScalarAtTailWidths) {
  checkBinary("addI64", [](uint64_t *D, In A, In B, unsigned N) {
    simd::addI64(D, A, B, N);
  }, [](uint64_t A, uint64_t B) { return A + B; });
  checkBinary("subI64", [](uint64_t *D, In A, In B, unsigned N) {
    simd::subI64(D, A, B, N);
  }, [](uint64_t A, uint64_t B) { return A - B; });
  checkBinary("mulI64", [](uint64_t *D, In A, In B, unsigned N) {
    simd::mulI64(D, A, B, N);
  }, [](uint64_t A, uint64_t B) { return A * B; });
  checkBinary("xorI64", [](uint64_t *D, In A, In B, unsigned N) {
    simd::xorI64(D, A, B, N);
  }, [](uint64_t A, uint64_t B) { return A ^ B; });
  checkBinary("shlI64", [](uint64_t *D, In A, In B, unsigned N) {
    simd::shlI64(D, A, B, N);
  }, [](uint64_t A, uint64_t B) { return A << (B & 63); });
  checkBinary("lshrI64", [](uint64_t *D, In A, In B, unsigned N) {
    simd::lshrI64(D, A, B, N);
  }, [](uint64_t A, uint64_t B) { return A >> (B & 63); });
  checkBinary("ashrI64", [](uint64_t *D, In A, In B, unsigned N) {
    simd::ashrI64(D, A, B, N);
  }, [](uint64_t A, uint64_t B) {
    return static_cast<uint64_t>(static_cast<int64_t>(A) >> (B & 63));
  });
}

TEST(Simd, I32OpsApplyTheWriteNorm) {
  // Every i32 op must leave a sign-extended low-32 result in the 64-bit
  // lane, exactly like the scalar executor's NormKind::I32 write.
  checkBinary("addI32", [](uint64_t *D, In A, In B, unsigned N) {
    simd::addI32(D, A, B, N);
  }, [](uint64_t A, uint64_t B) { return refSext32(A + B); });
  checkBinary("mulI32", [](uint64_t *D, In A, In B, unsigned N) {
    simd::mulI32(D, A, B, N);
  }, [](uint64_t A, uint64_t B) { return refSext32(A * B); });
  checkBinary("shlI32", [](uint64_t *D, In A, In B, unsigned N) {
    simd::shlI32(D, A, B, N);
  }, [](uint64_t A, uint64_t B) { return refSext32(A << (B & 31)); });
  checkBinary("lshrI32", [](uint64_t *D, In A, In B, unsigned N) {
    simd::lshrI32(D, A, B, N);
  }, [](uint64_t A, uint64_t B) {
    return refSext32(static_cast<uint32_t>(A) >> (B & 31));
  });
  checkBinary("ashrI32", [](uint64_t *D, In A, In B, unsigned N) {
    simd::ashrI32(D, A, B, N);
  }, [](uint64_t A, uint64_t B) {
    return refSext32(static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int32_t>(A)) >> (B & 31)));
  });
}

TEST(Simd, F32OpsAreSingleOpIEEE) {
  // One arithmetic op on the low 32 bits, zero-extended back — including
  // NaN payloads and infinities from the pattern rows.
  checkBinary("fAdd", [](uint64_t *D, In A, In B, unsigned N) {
    simd::fAdd(D, A, B, N);
  }, [](uint64_t A, uint64_t B) {
    return refFromF32(refF32(A) + refF32(B));
  });
  checkBinary("fMul", [](uint64_t *D, In A, In B, unsigned N) {
    simd::fMul(D, A, B, N);
  }, [](uint64_t A, uint64_t B) {
    return refFromF32(refF32(A) * refF32(B));
  });
  checkBinary("fDiv", [](uint64_t *D, In A, In B, unsigned N) {
    simd::fDiv(D, A, B, N);
  }, [](uint64_t A, uint64_t B) {
    return refFromF32(refF32(A) / refF32(B));
  });
}

TEST(Simd, ComparisonsYieldCanonicalBits) {
  checkBinary("cmpEq", [](uint64_t *D, In A, In B, unsigned N) {
    simd::cmpEq(D, A, B, N);
  }, [](uint64_t A, uint64_t B) { return uint64_t{A == B}; });
  checkBinary("cmpSlt", [](uint64_t *D, In A, In B, unsigned N) {
    simd::cmpSlt(D, A, B, N);
  }, [](uint64_t A, uint64_t B) {
    return uint64_t{static_cast<int64_t>(A) < static_cast<int64_t>(B)};
  });
  // Unsigned compares at both operand widths (the Is32 mask).
  checkBinary("cmpUlt64", [](uint64_t *D, In A, In B, unsigned N) {
    simd::cmpUlt(D, A, B, N, /*Is32=*/false);
  }, [](uint64_t A, uint64_t B) { return uint64_t{A < B}; });
  checkBinary("cmpUlt32", [](uint64_t *D, In A, In B, unsigned N) {
    simd::cmpUlt(D, A, B, N, /*Is32=*/true);
  }, [](uint64_t A, uint64_t B) {
    return uint64_t{(A & 0xffffffffull) < (B & 0xffffffffull)};
  });
  // IEEE semantics on NaN: == is false, != (the executor's FCmpOne) true.
  checkBinary("cmpFoeq", [](uint64_t *D, In A, In B, unsigned N) {
    simd::cmpFoeq(D, A, B, N);
  }, [](uint64_t A, uint64_t B) { return uint64_t{refF32(A) == refF32(B)}; });
  checkBinary("cmpFone", [](uint64_t *D, In A, In B, unsigned N) {
    simd::cmpFone(D, A, B, N);
  }, [](uint64_t A, uint64_t B) { return uint64_t{refF32(A) != refF32(B)}; });
}

TEST(Simd, DivisionFamilyIsTotal) {
  // The IR's total-division contract: /0 yields 0, INT_MIN / -1 negates
  // (i.e. wraps back to INT_MIN) — no lane may trap, because masked
  // execution feeds the helpers inactive lanes' garbage too.
  const auto RefSdiv = [](uint64_t A, uint64_t B) -> uint64_t {
    const int64_t SA = static_cast<int64_t>(A), SB = static_cast<int64_t>(B);
    if (SB == 0)
      return 0;
    if (SB == -1)
      return uint64_t{0} - A;
    return static_cast<uint64_t>(SA / SB);
  };
  checkBinary("sdiv", [](uint64_t *D, In A, In B, unsigned N) {
    simd::sdiv(D, A, B, N, Norm::None);
  }, RefSdiv);
  checkBinary("sdivI32", [&](uint64_t *D, In A, In B, unsigned N) {
    simd::sdiv(D, A, B, N, Norm::I32);
  }, [&](uint64_t A, uint64_t B) { return refSext32(RefSdiv(A, B)); });
  checkBinary("srem", [](uint64_t *D, In A, In B, unsigned N) {
    simd::srem(D, A, B, N, Norm::None);
  }, [](uint64_t A, uint64_t B) -> uint64_t {
    const int64_t SA = static_cast<int64_t>(A), SB = static_cast<int64_t>(B);
    if (SB == 0 || SB == -1)
      return 0;
    return static_cast<uint64_t>(SA % SB);
  });
  checkBinary("udiv32", [](uint64_t *D, In A, In B, unsigned N) {
    simd::udiv(D, A, B, N, /*Is32=*/true, Norm::I32);
  }, [](uint64_t A, uint64_t B) {
    const uint64_t UA = A & 0xffffffffull, UB = B & 0xffffffffull;
    return refSext32(UB == 0 ? 0 : UA / UB);
  });
  checkBinary("urem64", [](uint64_t *D, In A, In B, unsigned N) {
    simd::urem(D, A, B, N, /*Is32=*/false, Norm::None);
  }, [](uint64_t A, uint64_t B) -> uint64_t {
    return B == 0 ? 0 : A % B;
  });

  // The named extreme, spelled out: INT64_MIN / -1 must not trap.
  uint64_t D[1];
  const uint64_t Min = 0x8000000000000000ull, NegOne = ~0ull;
  simd::sdiv(D, In{nullptr, Min}, In{nullptr, NegOne}, 1, Norm::None);
  EXPECT_EQ(D[0], Min);
  simd::srem(D, In{nullptr, Min}, In{nullptr, NegOne}, 1, Norm::None);
  EXPECT_EQ(D[0], 0u);
}

TEST(Simd, SelectMoveGepAndNorms) {
  for (unsigned N : kWidths) {
    const std::vector<uint64_t> C = patternRow(N, 4);
    const std::vector<uint64_t> T = patternRow(N, 5);
    const std::vector<uint64_t> F = patternRow(N, 6);
    std::vector<uint64_t> D(N + 1, kCanary);

    // select keys on the low condition bit only.
    simd::select(D.data(), In{C.data(), 0}, In{T.data(), 0}, In{F.data(), 0},
                 N, Norm::I32);
    for (unsigned L = 0; L < N; ++L)
      ASSERT_EQ(D[L], refSext32((C[L] & 1) ? T[L] : F[L])) << "lane " << L;
    EXPECT_EQ(D[N], kCanary);

    // move applies every norm kind exactly like the scalar write.
    simd::move(D.data(), In{T.data(), 0}, N, Norm::None);
    for (unsigned L = 0; L < N; ++L)
      ASSERT_EQ(D[L], T[L]);
    simd::move(D.data(), In{T.data(), 0}, N, Norm::I1);
    for (unsigned L = 0; L < N; ++L)
      ASSERT_EQ(D[L], T[L] & 1);
    simd::move(D.data(), In{T.data(), 0}, N, Norm::F32);
    for (unsigned L = 0; L < N; ++L)
      ASSERT_EQ(D[L], T[L] & 0xffffffffull);

    // gep: base + index * element size, two's-complement wrap.
    simd::gep(D.data(), In{T.data(), 0}, In{F.data(), 0}, 8, N);
    for (unsigned L = 0; L < N; ++L)
      ASSERT_EQ(D[L], T[L] + F[L] * 8);
  }
}

TEST(Simd, BoolMaskPacksLowBits) {
  for (unsigned N : kWidths) {
    std::vector<uint64_t> Row = patternRow(N, 7);
    uint64_t Expect = 0;
    for (unsigned L = 0; L < N; ++L)
      Expect |= (Row[L] & 1) << L;
    EXPECT_EQ(simd::boolMask(Row.data(), N), Expect) << "N=" << N;
  }
  // All-ones and all-zeros at the full 64-lane cap.
  std::vector<uint64_t> Ones(64, ~0ull), Zeros(64, 0x10ull);
  EXPECT_EQ(simd::boolMask(Ones.data(), 64), ~0ull);
  EXPECT_EQ(simd::boolMask(Zeros.data(), 64), 0u);
}

TEST(Simd, ReportsWhichVariantIsUnderTest) {
  // Both binaries run the same assertions; this records which one this
  // is in the test output (and pins that the scalar build really is
  // scalar: DARM_SIMD_SCALAR forces kWidth == 1).
#if defined(DARM_SIMD_SCALAR)
  EXPECT_EQ(simd::kWidth, 1u);
#else
  EXPECT_GE(simd::kWidth, 1u);
#endif
  SUCCEED() << "simd::kWidth = " << simd::kWidth;
}

} // namespace
