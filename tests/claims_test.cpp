//===- claims_test.cpp - Paper-claims conformance: invariants + goldens -----------===//
//
// The check subsystem's test suite (docs/claims.md):
//
//   * unit coverage of the plausibility invariants (statsPlausible) and
//     the darm-claims-v1 golden store (JSON round-trip, diffing);
//   * the golden regression gate: every benchmark corpus cell, measured
//     under unmelded/darm/darm-aggressive/branch-fusion, must match the
//     recorded goldens in tests/goldens/claims/ counter-for-counter;
//   * a pinned-fuzz-seed golden (fuzz.json) doing the same for generated
//     kernels;
//   * an injected regression — a "melder" that keeps every divergent
//     branch — proving the goldens catch a silently lost improvement
//     with a per-counter diff.
//
// Regenerating goldens after an *intentional* metric change:
//   DARM_REGEN_GOLDENS=1 ./build/tests/claims_test
//
//===----------------------------------------------------------------------===//

#include "darm/check/CorpusRunner.h"
#include "darm/check/GoldenStore.h"
#include "darm/fuzz/KernelGenerator.h"
#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/Module.h"
#include "darm/kernels/Benchmark.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace darm;
using namespace darm::check;

namespace {

bool regenMode() { return std::getenv("DARM_REGEN_GOLDENS") != nullptr; }

std::string goldenPath(const std::string &Key) {
  return std::string(DARM_CLAIMS_GOLDEN_DIR) + "/" + Key + ".json";
}

//===----------------------------------------------------------------------===//
// statsPlausible invariants
//===----------------------------------------------------------------------===//

SimStats mkStats(uint64_t DivBranches, uint64_t LanesActive,
                 uint64_t LanesTotal, uint64_t VecMem, uint64_t SharedMem) {
  SimStats S;
  S.DivergentBranches = DivBranches;
  S.AluLanesActive = LanesActive;
  S.AluLanesTotal = LanesTotal;
  S.VectorMemInsts = VecMem;
  S.SharedMemInsts = SharedMem;
  return S;
}

TEST(Plausibility, DivergentBranchIncreaseFails) {
  SimStats Ref = mkStats(10, 100, 100, 5, 5);
  std::string Counter, Detail;
  EXPECT_TRUE(statsPlausible(Ref, mkStats(10, 100, 100, 5, 5),
                             ClaimsOptions(), &Counter, &Detail));
  EXPECT_TRUE(statsPlausible(Ref, mkStats(0, 100, 100, 5, 5),
                             ClaimsOptions(), &Counter, &Detail));
  EXPECT_FALSE(statsPlausible(Ref, mkStats(11, 100, 100, 5, 5),
                              ClaimsOptions(), &Counter, &Detail));
  EXPECT_EQ(Counter, "divergent_branches");
  EXPECT_NE(Detail.find("ref=10 got=11 (+1)"), std::string::npos) << Detail;
}

TEST(Plausibility, DivergentBranchSlackAndRelTol) {
  SimStats Ref = mkStats(10, 100, 100, 5, 5);
  ClaimsOptions O;
  O.DivergentBranchSlack = 2;
  EXPECT_TRUE(statsPlausible(Ref, mkStats(12, 100, 100, 5, 5), O));
  EXPECT_FALSE(statsPlausible(Ref, mkStats(13, 100, 100, 5, 5), O));
  O.DivergentBranchRelTol = 0.5; // cap = 10 + 2 + 5
  EXPECT_TRUE(statsPlausible(Ref, mkStats(17, 100, 100, 5, 5), O));
  EXPECT_FALSE(statsPlausible(Ref, mkStats(18, 100, 100, 5, 5), O));
}

TEST(Plausibility, AluUtilizationDropBeyondToleranceFails) {
  SimStats Ref = mkStats(0, 90, 100, 5, 5); // util 0.90
  ClaimsOptions O;                          // tol 0.02
  std::string Counter, Detail;
  EXPECT_TRUE(statsPlausible(Ref, mkStats(0, 89, 100, 5, 5), O));
  EXPECT_FALSE(
      statsPlausible(Ref, mkStats(0, 80, 100, 5, 5), O, &Counter, &Detail));
  EXPECT_EQ(Counter, "alu_util");
}

TEST(Plausibility, VanishedAluWorkIsNotARegression) {
  // All VALU work dead after melding + DCE: 0/0 utilization is
  // undefined, not a drop.
  SimStats Ref = mkStats(0, 100, 100, 5, 5);
  EXPECT_TRUE(statsPlausible(Ref, mkStats(0, 0, 0, 5, 5), ClaimsOptions()));
}

TEST(Plausibility, MemoryInstructionGrowthFails) {
  SimStats Ref = mkStats(0, 100, 100, 6, 4); // 10 mem issues
  std::string Counter, Detail;
  EXPECT_TRUE(statsPlausible(Ref, mkStats(0, 100, 100, 5, 5), ClaimsOptions()));
  EXPECT_FALSE(statsPlausible(Ref, mkStats(0, 100, 100, 7, 4), ClaimsOptions(),
                              &Counter, &Detail));
  EXPECT_EQ(Counter, "mem_insts");
  ClaimsOptions Loose;
  Loose.MemInstSlack = 1;
  EXPECT_TRUE(statsPlausible(Ref, mkStats(0, 100, 100, 7, 4), Loose));
  Loose.MemInstIncreaseTol = 0.5;
  EXPECT_TRUE(statsPlausible(Ref, mkStats(0, 100, 100, 12, 4), Loose));
  EXPECT_FALSE(statsPlausible(Ref, mkStats(0, 100, 100, 13, 4), Loose));
}

TEST(Plausibility, PolicyExemptsOnlyCoverageConfigs) {
  ClaimsOptions Base;
  // The golden-bearing configs carry the paper-direction invariants.
  EXPECT_FALSE(optionsForConfig("darm", Base).Skip);
  EXPECT_FALSE(optionsForConfig("branch-fusion", Base).Skip);
  // Coverage, lone-canonicalization-pass and per-pass attribution
  // configs are exempt per seed (docs/passes.md): their paper-direction
  // claim is gated at population scale instead. This list is exact — a
  // new config is gating by default until added here AND in Claims.cpp.
  for (const char *Cfg :
       {"darm-aggressive", "darm-nounpred", "constprop", "algebraic", "gvn",
        "licm", "loop-unroll", "darm-constprop", "darm-algebraic", "darm-gvn",
        "darm-licm", "darm-unroll", "darm-canon"})
    EXPECT_TRUE(optionsForConfig(Cfg, Base).Skip) << Cfg;
  EXPECT_FALSE(optionsForConfig("darm-unknown", Base).Skip);
  // Skip really does disable every counter invariant.
  ClaimsOptions Off;
  Off.Skip = true;
  EXPECT_TRUE(statsPlausible(mkStats(0, 100, 100, 5, 5),
                             mkStats(99, 1, 100, 50, 50), Off));
}

TEST(Plausibility, CheckClaimsFlagsMemoryAndValidation) {
  KernelClaims K;
  K.Kernel = "unit";
  K.Configs.push_back({"unmelded", mkStats(5, 10, 10, 2, 0), 0x1234, true});
  K.Configs.push_back({"darm", mkStats(5, 10, 10, 2, 0), 0x9999, false});
  std::vector<Violation> Vs = checkClaims(K);
  ASSERT_EQ(Vs.size(), 2u);
  EXPECT_EQ(Vs[0].Counter, "validation");
  EXPECT_EQ(Vs[1].Counter, "memory_image");
  EXPECT_EQ(Vs[1].Kernel, "unit");
  EXPECT_EQ(Vs[1].Config, "darm");
}

//===----------------------------------------------------------------------===//
// Golden store
//===----------------------------------------------------------------------===//

GoldenFile sampleGolden() {
  GoldenFile G;
  KernelClaims K;
  K.Kernel = "BIT";
  K.BlockSize = 32;
  ConfigMetrics Ref{"unmelded", SimStats(), 0xdeadbeefcafef00dull, true};
  for (unsigned I = 0; I < SimStats::NumCounters; ++I)
    Ref.Stats.counter(I) = 1000 + I;
  K.Configs.push_back(Ref);
  ConfigMetrics Darm = Ref;
  Darm.Config = "darm";
  Darm.Stats.DivergentBranches = 3;
  K.Configs.push_back(Darm);
  G.Kernels.push_back(K);
  return G;
}

TEST(GoldenStore, JsonRoundTripsBitExact) {
  GoldenFile G = sampleGolden();
  std::string Text = toJson(G);
  GoldenFile Back;
  std::string Err;
  ASSERT_TRUE(fromJson(Text, Back, &Err)) << Err;
  ASSERT_EQ(Back.Kernels.size(), 1u);
  EXPECT_TRUE(diffClaims(G, Back.Kernels).empty());
  EXPECT_TRUE(diffClaims(Back, G.Kernels).empty());
  // And the re-serialization is byte-stable (goldens diff cleanly in
  // review).
  EXPECT_EQ(toJson(Back), Text);
}

TEST(GoldenStore, RejectsMalformedAndWrongSchema) {
  GoldenFile Out;
  std::string Err;
  EXPECT_FALSE(fromJson("{", Out, &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(fromJson("{\"schema\": \"darm-claims-v0\", \"kernels\": []}",
                        Out, &Err));
  EXPECT_NE(Err.find("darm-claims-v1"), std::string::npos) << Err;
  EXPECT_FALSE(fromJson("[1, 2]", Out, &Err));
  // Missing a counter key is a schema violation, not a silent zero.
  std::string Text = toJson(sampleGolden());
  size_t P = Text.find("\"cycles\"");
  ASSERT_NE(P, std::string::npos);
  std::string Renamed = Text;
  Renamed.replace(P, 8, "\"cicles\"");
  EXPECT_FALSE(fromJson(Renamed, Out, &Err));
  EXPECT_NE(Err.find("cycles"), std::string::npos) << Err;
  // A duplicate key would make one value win silently; rejected instead.
  std::string Dup = Text;
  Dup.replace(P, 8, "\"cycles\": 1, \"cycles\"");
  EXPECT_FALSE(fromJson(Dup, Out, &Err));
  EXPECT_NE(Err.find("duplicate key"), std::string::npos) << Err;
}

TEST(GoldenStore, DiffReportsPerCounterDelta) {
  GoldenFile G = sampleGolden();
  std::vector<KernelClaims> Measured = G.Kernels;
  Measured[0].Configs[1].Stats.DivergentBranches = 7; // golden records 3
  std::vector<std::string> Diffs = diffClaims(G, Measured);
  ASSERT_EQ(Diffs.size(), 1u);
  EXPECT_NE(Diffs[0].find("BIT/bs32 darm: divergent_branches golden=3 got=7 "
                          "(+4)"),
            std::string::npos)
      << Diffs[0];

  // Missing kernels and configs are reported, in both directions.
  EXPECT_FALSE(diffClaims(G, {}).empty());
  GoldenFile Empty;
  EXPECT_FALSE(diffClaims(Empty, Measured).empty());

  // A config measured but absent from the golden must be reported too
  // (a config added to claimConfigs() without regenerating would
  // otherwise run ungated).
  std::vector<KernelClaims> Extra = G.Kernels;
  Extra[0].Configs.push_back({"new-config", SimStats(), 0, true});
  bool SawExtra = false;
  for (const std::string &Line : diffClaims(G, Extra))
    if (Line.find("new-config: measured but not recorded") !=
        std::string::npos)
      SawExtra = true;
  EXPECT_TRUE(SawExtra);
}

//===----------------------------------------------------------------------===//
// Per-launch stats snapshots
//===----------------------------------------------------------------------===//

// Multi-launch benchmarks expose one SimStats snapshot per launch
// (merge sort runs log(n) dependent passes); the snapshots must sum to
// the aggregate and genuinely differ launch to launch (state
// accumulates), so launch-resolved analyses can trust them.
TEST(BenchRun, PerLaunchSnapshotsSumToTotal) {
  auto B = createBenchmark("MS", 32);
  ASSERT_NE(B, nullptr);
  Context Ctx;
  Module M(Ctx, "MS");
  Function *F = B->build(M);
  BenchRun R = runBenchmark(*B, *F);
  ASSERT_TRUE(R.Valid) << R.Why;
  ASSERT_EQ(R.PerLaunch.size(), B->numLaunches());
  ASSERT_GT(R.PerLaunch.size(), 1u);
  SimStats Sum;
  for (const SimStats &S : R.PerLaunch)
    Sum += S;
  for (unsigned I = 0; I < SimStats::NumCounters; ++I)
    EXPECT_EQ(Sum.counter(I), R.Total.counter(I)) << SimStats::counterName(I);
  EXPECT_NE(R.PerLaunch.front().Cycles, R.PerLaunch.back().Cycles);
}

//===----------------------------------------------------------------------===//
// Golden regression gate over the corpus
//===----------------------------------------------------------------------===//

class ClaimsGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(ClaimsGolden, BenchmarkMatchesRecordedGolden) {
  const std::string Name = GetParam();
  std::vector<KernelClaims> Measured;
  for (const BenchCell &Cell : benchmarkCorpus())
    if (Cell.Name == Name)
      Measured.push_back(measureBenchmark(Cell));
  ASSERT_FALSE(Measured.empty());

  // The measurements must satisfy the plausibility invariants too.
  for (const KernelClaims &K : Measured)
    for (const Violation &V : checkClaims(K))
      ADD_FAILURE() << V.str();

  const std::string Path = goldenPath(Name);
  if (regenMode()) {
    GoldenFile G;
    G.Kernels = Measured;
    std::string Err;
    ASSERT_TRUE(saveGoldenFile(Path, G, &Err)) << Err;
    return;
  }
  GoldenFile G;
  std::string Err;
  ASSERT_TRUE(loadGoldenFile(Path, G, &Err))
      << Err << "\n(record goldens with DARM_REGEN_GOLDENS=1)";
  for (const std::string &Line : diffClaims(G, Measured))
    ADD_FAILURE() << "golden diff: " << Line;
}

std::vector<std::string> allBenchmarks() {
  std::vector<std::string> Names = realBenchmarkNames();
  for (const std::string &N : syntheticBenchmarkNames())
    Names.push_back(N);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(Corpus, ClaimsGolden,
                         ::testing::ValuesIn(allBenchmarks()),
                         [](const auto &Info) { return Info.param; });

//===----------------------------------------------------------------------===//
// Parallel corpus measurement (measureCorpus, docs/performance.md): the
// fan-out over (cell|seed) x config work units must be indistinguishable
// from the sequential loops — byte-identical claims JSON and aggregates
// at any pool size.
//===----------------------------------------------------------------------===//

TEST(CorpusRunner, MeasureCorpusMatchesSequentialByteForByte) {
  const std::vector<BenchCell> Cells = {{"BIT", 32}, {"SB1", 32}};
  const std::vector<uint64_t> Seeds = {0, 1, 2};

  std::vector<KernelClaims> Seq;
  for (const BenchCell &Cell : Cells)
    Seq.push_back(measureBenchmark(Cell));
  for (uint64_t Seed : Seeds)
    Seq.push_back(measureFuzz(fuzz::FuzzCase(Seed)));

  ThreadPool Pool1(1);
  GoldenFile G1;
  G1.Kernels = measureCorpus(Pool1, Cells, Seeds);
  GoldenFile GSeq;
  GSeq.Kernels = Seq;
  EXPECT_EQ(toJson(G1), toJson(GSeq));
}

TEST(CorpusRunner, MeasureCorpusJobsInvariant) {
  const std::vector<BenchCell> Cells = {{"SB2", 32}, {"SB3R", 64}};
  const std::vector<uint64_t> Seeds = {3, 4, 5, 6};

  ThreadPool Pool1(1), Pool4(4);
  std::vector<std::string> Progress1, Progress4;
  GoldenFile G1, G4;
  G1.Kernels = measureCorpus(Pool1, Cells, Seeds, [&](const KernelClaims &K) {
    Progress1.push_back(K.cellName());
  });
  G4.Kernels = measureCorpus(Pool4, Cells, Seeds, [&](const KernelClaims &K) {
    Progress4.push_back(K.cellName());
  });

  // Identical JSON bytes, identical aggregate, identical (ordered)
  // progress stream.
  EXPECT_EQ(toJson(G4), toJson(G1));
  GoldenFile A1, A4;
  A1.Kernels = {aggregateClaims(G1.Kernels, "agg")};
  A4.Kernels = {aggregateClaims(G4.Kernels, "agg")};
  EXPECT_EQ(toJson(A4), toJson(A1));
  EXPECT_EQ(Progress4, Progress1);
  ASSERT_EQ(Progress1.size(), Cells.size() + Seeds.size());
  EXPECT_EQ(Progress1.front(), "SB2/bs32");
  EXPECT_EQ(Progress1.back(), "fuzz6");
}

// Pinned fuzz seeds get the same golden treatment: the generator, the
// transforms and the simulator are all deterministic, so these counters
// only move when a pass or the generator intentionally changes.
TEST(ClaimsGoldenFuzz, PinnedSeedsMatchRecordedGolden) {
  std::vector<KernelClaims> Measured;
  for (uint64_t Seed = 0; Seed < 8; ++Seed)
    Measured.push_back(measureFuzz(fuzz::FuzzCase(Seed)));
  Measured.push_back(aggregateClaims(Measured, "fuzz-pinned-aggregate"));

  // Per-seed plausibility at the generated-kernel profile; the pinned
  // aggregate must hold at the population profile.
  const ClaimsOptions FuzzOpts = ClaimsOptions::forGeneratedKernels();
  for (const KernelClaims &K : Measured) {
    const bool IsAgg = K.Kernel == "fuzz-pinned-aggregate";
    for (const Violation &V : checkClaims(
             K, IsAgg ? ClaimsOptions::forGeneratedAggregate() : FuzzOpts))
      ADD_FAILURE() << V.str();
  }

  const std::string Path = goldenPath("fuzz");
  if (regenMode()) {
    GoldenFile G;
    G.Kernels = Measured;
    std::string Err;
    ASSERT_TRUE(saveGoldenFile(Path, G, &Err)) << Err;
    return;
  }
  GoldenFile G;
  std::string Err;
  ASSERT_TRUE(loadGoldenFile(Path, G, &Err))
      << Err << "\n(record goldens with DARM_REGEN_GOLDENS=1)";
  for (const std::string &Line : diffClaims(G, Measured))
    ADD_FAILURE() << "golden diff: " << Line;
}

// The per-pass attribution configs (docs/passes.md) get their own pinned
// golden, as an ADDITIONAL file — the existing fuzz.json stays untouched
// so this PR's goldens remain unregenerated.
TEST(ClaimsGoldenFuzz, AttributionPinnedSeedsMatchRecordedGolden) {
  std::vector<KernelClaims> Measured;
  for (uint64_t Seed = 0; Seed < 8; ++Seed)
    Measured.push_back(measureFuzz(fuzz::FuzzCase(Seed), attributionConfigs()));
  Measured.push_back(aggregateClaims(Measured, "fuzz-canon-aggregate"));

  // Attribution configs are per-seed exempt from the direction
  // invariants (optionsForConfig), but memory identity and validation
  // still gate every one of them.
  const ClaimsOptions FuzzOpts = ClaimsOptions::forGeneratedKernels();
  for (const KernelClaims &K : Measured) {
    const bool IsAgg = K.Kernel == "fuzz-canon-aggregate";
    if (IsAgg)
      continue; // population direction is CanonPopulationAggregate's job
    for (const Violation &V : checkClaims(K, FuzzOpts))
      ADD_FAILURE() << V.str();
  }

  const std::string Path = goldenPath("fuzz-canon");
  if (regenMode()) {
    GoldenFile G;
    G.Kernels = Measured;
    std::string Err;
    ASSERT_TRUE(saveGoldenFile(Path, G, &Err)) << Err;
    return;
  }
  GoldenFile G;
  std::string Err;
  ASSERT_TRUE(loadGoldenFile(Path, G, &Err))
      << Err << "\n(record goldens with DARM_REGEN_GOLDENS=1)";
  for (const std::string &Line : diffClaims(G, Measured))
    ADD_FAILURE() << "golden diff: " << Line;
}

// The PR's headline claim, gated at population scale: over seeds
// [0, 2000) the canonicalized pipeline (darm-canon = constprop +
// algebraic + gvn + licm + loop-unroll + darm) melds strictly more than
// plain darm — fewer dynamic divergent branches, higher ALU lane
// utilization. Measured at this commit: darm removes ~12% of the
// population's divergent branches, darm-canon ~60% (db_ratio 0.88 vs
// 0.40, alu_delta +0.040 vs +0.129), so the margins below are wide.
//
// The seed range is split into fixed shards — separate ctest cases, so
// `ctest -j` overlaps them — and the invariants are asserted on each
// shard's own aggregate. The margins hold comfortably on every 500-seed
// subrange (verified at this commit), not just the full population; the
// in-process pool sizes itself to the hardware.
constexpr unsigned kPopulationShards = 4;
constexpr uint64_t kPopulationSeeds = 2000;

class ClaimsPopulationShard : public ::testing::TestWithParam<unsigned> {};

TEST_P(ClaimsPopulationShard, CanonicalizationStrictlyImprovesMeldingEfficacy) {
  const unsigned Shard = GetParam();
  const uint64_t Begin = kPopulationSeeds * Shard / kPopulationShards;
  const uint64_t End = kPopulationSeeds * (Shard + 1) / kPopulationShards;
  std::vector<uint64_t> Seeds;
  for (uint64_t S = Begin; S < End; ++S)
    Seeds.push_back(S);
  ThreadPool Pool;
  KernelClaims Agg = aggregateClaims(
      measureCorpus(Pool, {}, Seeds, attributionConfigs()), "fuzz-aggregate");

  const ConfigMetrics *Unmelded = nullptr, *Darm = nullptr, *Canon = nullptr;
  for (const ConfigMetrics &C : Agg.Configs) {
    if (C.Config == "unmelded")
      Unmelded = &C;
    else if (C.Config == "darm")
      Darm = &C;
    else if (C.Config == "darm-canon")
      Canon = &C;
  }
  ASSERT_NE(Unmelded, nullptr);
  ASSERT_NE(Darm, nullptr);
  ASSERT_NE(Canon, nullptr);
  EXPECT_TRUE(Canon->Valid);

  // Strictly better than the current pipeline, with margin: at least 10%
  // more of the baseline's divergent branches gone, and at least +0.03
  // more ALU utilization.
  EXPECT_LT(Canon->Stats.DivergentBranches, Darm->Stats.DivergentBranches);
  EXPECT_LE(Canon->Stats.DivergentBranches,
            Darm->Stats.DivergentBranches -
                Unmelded->Stats.DivergentBranches / 10);
  EXPECT_GT(Canon->Stats.aluUtilization(), Darm->Stats.aluUtilization() + 0.03);
  // And both still beat the unmelded baseline outright.
  EXPECT_LT(Darm->Stats.DivergentBranches, Unmelded->Stats.DivergentBranches);
  EXPECT_GT(Canon->Stats.aluUtilization(), Unmelded->Stats.aluUtilization());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClaimsPopulationShard,
                         ::testing::Range(0u, kPopulationShards));

//===----------------------------------------------------------------------===//
// Injected regression: the goldens must catch a melder that silently
// stops removing divergent branches, with a per-counter diff.
//===----------------------------------------------------------------------===//

TEST(ClaimsGolden, InjectedRegressionIsCaughtPerCounter) {
  if (regenMode())
    GTEST_SKIP() << "golden files being regenerated";

  // Sabotage: "darm" becomes the identity transform, so every divergent
  // branch the melder used to remove survives.
  std::vector<ClaimConfig> Sabotaged = claimConfigs();
  for (ClaimConfig &C : Sabotaged)
    if (C.Name == "darm")
      C.Transform = [](Function &) {};
  KernelClaims Tampered = measureBenchmark({"BIT", 32}, Sabotaged);

  GoldenFile G;
  std::string Err;
  ASSERT_TRUE(loadGoldenFile(goldenPath("BIT"), G, &Err)) << Err;
  GoldenFile Cell; // restrict to the tampered cell
  for (const KernelClaims &K : G.Kernels)
    if (K.BlockSize == 32)
      Cell.Kernels.push_back(K);
  ASSERT_EQ(Cell.Kernels.size(), 1u);

  std::vector<std::string> Diffs = diffClaims(Cell, {Tampered});
  ASSERT_FALSE(Diffs.empty());
  bool SawDivergentBranches = false;
  for (const std::string &Line : Diffs)
    if (Line.find("darm: divergent_branches") != std::string::npos &&
        Line.find("golden=") != std::string::npos)
      SawDivergentBranches = true;
  EXPECT_TRUE(SawDivergentBranches)
      << "expected a per-counter divergent_branches diff; got:\n"
      << ::testing::PrintToString(Diffs);

  // And the unmelded reference cells still agree — the diff isolates the
  // sabotaged config rather than flagging everything.
  for (const std::string &Line : Diffs)
    EXPECT_EQ(Line.find("unmelded:"), std::string::npos) << Line;
}

} // namespace
