//===- TestKernels.h - Shared IR-building helpers for tests ---------*- C++ -*-===//
///
/// \file
/// Small divergent kernels built directly with IRBuilder, shared by the
/// core/sim/integration test suites.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_TESTS_TESTKERNELS_H
#define DARM_TESTS_TESTKERNELS_H

#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/Module.h"

namespace darm {
namespace testkernels {

/// if (tid % 2 == 0) out[tid] = in[tid] * 3 + 1; else out[tid] = in[tid] * 5 + 2;
/// A diamond with *similar* (not identical) arms: meldable by DARM and
/// branch fusion, not by tail merging.
inline Function *buildDiamondKernel(Module &M, const std::string &Name) {
  Context &Ctx = M.getContext();
  Type *I32 = Ctx.getInt32Ty();
  Type *GlobalPtr = Ctx.getPointerTy(I32, AddressSpace::Global);
  Function *F = M.createFunction(
      Name, Ctx.getVoidTy(), {{GlobalPtr, "in"}, {GlobalPtr, "out"}});

  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  BasicBlock *Join = F->createBlock("join");

  IRBuilder B(Ctx, Entry);
  Value *Tid = B.createThreadIdX();
  Value *Par = B.createAnd(Tid, B.getInt32(1), "par");
  Value *IsEven = B.createICmp(ICmpPred::EQ, Par, B.getInt32(0), "iseven");
  Value *X = B.createLoadAt(F->getArg(0), Tid, "x");
  B.createCondBr(IsEven, Then, Else);

  B.setInsertPoint(Then);
  Value *T1 = B.createMul(X, B.getInt32(3), "t1");
  Value *T2 = B.createAdd(T1, B.getInt32(1), "t2");
  B.createBr(Join);

  B.setInsertPoint(Else);
  Value *E1 = B.createMul(X, B.getInt32(5), "e1");
  Value *E2 = B.createAdd(E1, B.getInt32(2), "e2");
  B.createBr(Join);

  B.setInsertPoint(Join);
  PhiInst *P = B.createPhi(I32, "res");
  P->addIncoming(T2, Then);
  P->addIncoming(E2, Else);
  B.createStoreAt(P, F->getArg(1), Tid);
  B.createRet();
  return F;
}

/// The paper's running example shape (Fig. 1 inner body, one k/j step):
/// divergent if-then-else whose arms are themselves if-then regions doing
/// a compare-and-swap on shared memory — region-region melding territory.
inline Function *buildBitonicStepKernel(Module &M, const std::string &Name,
                                        unsigned SharedElems) {
  Context &Ctx = M.getContext();
  Type *I32 = Ctx.getInt32Ty();
  Type *GlobalPtr = Ctx.getPointerTy(I32, AddressSpace::Global);
  Function *F = M.createFunction(
      Name, Ctx.getVoidTy(),
      {{GlobalPtr, "data"}, {I32, "k"}, {I32, "j"}});
  SharedArray *Shared = F->createSharedArray(I32, SharedElems, "sh");

  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Outer = F->createBlock("outer"); // ixj > tid
  BasicBlock *C = F->createBlock("asc");       // (tid & k) == 0
  BasicBlock *D = F->createBlock("desc");
  BasicBlock *E = F->createBlock("asc.swap");
  BasicBlock *Fb = F->createBlock("desc.swap");
  BasicBlock *X1 = F->createBlock("asc.end");
  BasicBlock *X2 = F->createBlock("desc.end");
  BasicBlock *G = F->createBlock("g");
  BasicBlock *Exit = F->createBlock("exit");

  IRBuilder B(Ctx, Entry);
  Value *Tid = B.createThreadIdX();
  // Stage data into shared memory, then barrier.
  Value *V0 = B.createLoadAt(F->getArg(0), Tid, "v0");
  B.createStoreAt(V0, Shared, Tid);
  B.createBarrier();
  Value *Ixj = B.createXor(Tid, F->getArg(2), "ixj");
  Value *Outer0 = B.createICmp(ICmpPred::SGT, Ixj, Tid, "outercmp");
  B.createCondBr(Outer0, Outer, Exit);

  B.setInsertPoint(Outer);
  Value *Dir = B.createAnd(Tid, F->getArg(1), "dir");
  Value *Asc = B.createICmp(ICmpPred::EQ, Dir, B.getInt32(0), "asc.c");
  B.createCondBr(Asc, C, D);

  // asc: if (sh[ixj] < sh[tid]) swap
  B.setInsertPoint(C);
  Value *A1 = B.createLoadAt(Shared, Ixj, "a1");
  Value *A2 = B.createLoadAt(Shared, Tid, "a2");
  Value *CmpA = B.createICmp(ICmpPred::SLT, A1, A2, "cmpa");
  B.createCondBr(CmpA, E, X1);

  B.setInsertPoint(E);
  B.createStoreAt(A1, Shared, Tid);
  B.createStoreAt(A2, Shared, Ixj);
  B.createBr(X1);

  B.setInsertPoint(X1);
  B.createBr(G);

  // desc: if (sh[ixj] > sh[tid]) swap
  B.setInsertPoint(D);
  Value *B1 = B.createLoadAt(Shared, Ixj, "b1");
  Value *B2 = B.createLoadAt(Shared, Tid, "b2");
  Value *CmpB = B.createICmp(ICmpPred::SGT, B1, B2, "cmpb");
  B.createCondBr(CmpB, Fb, X2);

  B.setInsertPoint(Fb);
  B.createStoreAt(B1, Shared, Tid);
  B.createStoreAt(B2, Shared, Ixj);
  B.createBr(X2);

  B.setInsertPoint(X2);
  B.createBr(G);

  B.setInsertPoint(G);
  B.createBr(Exit);

  B.setInsertPoint(Exit);
  B.createBarrier();
  Value *V1 = B.createLoadAt(Shared, Tid, "v1");
  B.createStoreAt(V1, F->getArg(0), Tid);
  B.createRet();
  return F;
}

} // namespace testkernels
} // namespace darm

#endif // DARM_TESTS_TESTKERNELS_H
