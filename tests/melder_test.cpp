//===- melder_test.cpp - Directed tests of melding code generation ------------------===//
//
// Structural checks on the melder's output (Algorithm 2): select
// insertion for mismatched operands, φ copying, exit-branch handling
// (unified vs. B'T/B'F split), loop melding convergence, region
// replication steering, and the pre-processing φ of Fig. 5.
//
//===----------------------------------------------------------------------===//

#include "darm/analysis/Verifier.h"
#include "darm/core/DARMPass.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/sim/Simulator.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

Function *parse(Context &Ctx, std::unique_ptr<Module> &Keep,
                const std::string &Text) {
  std::string Err;
  Keep = parseModule(Ctx, Text, &Err);
  EXPECT_NE(Keep, nullptr) << Err;
  return Keep ? Keep->functions().front().get() : nullptr;
}

unsigned countOpcode(Function &F, Opcode Op) {
  unsigned N = 0;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      if (I->getOpcode() == Op)
        ++N;
  return N;
}

unsigned countDynamicDivergence(Function &F, unsigned Lanes = 32) {
  GlobalMemory Mem;
  uint64_t Buf = Mem.allocate(Lanes * 8 * 4);
  std::vector<uint64_t> Args;
  // Bind every pointer arg to the buffer, every int arg to a constant.
  for (unsigned I = 0; I < F.getNumArgs(); ++I)
    Args.push_back(F.getArg(I)->getType()->isPointer() ? Buf : 5);
  SimStats S = runKernel(F, {1, Lanes}, Args, Mem);
  return static_cast<unsigned>(S.DivergentBranches);
}

TEST(Melder, SelectsOnlyForMismatchedOperands) {
  Context Ctx;
  std::unique_ptr<Module> M;
  // First operands match (%a), second differ (3 vs 5): exactly one
  // select expected for the mul; the store pointer also matches.
  Function *F = parse(Ctx, M, R"(
func @f(i32 %a, i32 addrspace(1)* %p) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %c = icmp slt i32 %tid, 7
  condbr i1 %c, label %x, label %y
x:
  %v1 = mul i32 %a, 3
  store i32 %v1, i32 addrspace(1)* %p
  br label %j
y:
  %v2 = mul i32 %a, 5
  store i32 %v2, i32 addrspace(1)* %p
  br label %j
j:
  ret
}
)");
  DARMStats DS;
  ASSERT_TRUE(runDARM(*F, DARMConfig(), &DS));
  EXPECT_EQ(DS.SelectsInserted, 1u);
  EXPECT_EQ(countOpcode(*F, Opcode::Mul), 1u);   // melded into one
  EXPECT_EQ(countOpcode(*F, Opcode::Store), 1u); // melded into one
  EXPECT_EQ(countDynamicDivergence(*F), 0u);
}

TEST(Melder, UnifiedExitKeepsMeldedLoopConverged) {
  Context Ctx;
  std::unique_ptr<Module> M;
  // Two isomorphic loops with data-dependent trip counts. After melding,
  // a warp executing mixed-parity lanes must run ONE loop body — the
  // loop back edge must not re-diverge every iteration.
  Function *F = parse(Ctx, M, R"(
func @loops(i32 addrspace(1)* %out) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %par = and i32 %tid, 1
  %c = icmp eq i32 %par, 0
  condbr i1 %c, label %l1, label %l2
l1:
  %i1 = phi i32 [ 0, %entry ], [ %i1n, %l1 ]
  %a1 = phi i32 [ 1, %entry ], [ %a1n, %l1 ]
  %t1 = mul i32 %a1, 2
  %a1n = add i32 %t1, 0
  %i1n = add i32 %i1, 1
  %c1 = icmp slt i32 %i1n, 6
  condbr i1 %c1, label %l1, label %j
l2:
  %i2 = phi i32 [ 0, %entry ], [ %i2n, %l2 ]
  %a2 = phi i32 [ 1, %entry ], [ %a2n, %l2 ]
  %t2 = mul i32 %a2, 1
  %a2n = add i32 %t2, 3
  %i2n = add i32 %i2, 1
  %c2 = icmp slt i32 %i2n, 9
  condbr i1 %c2, label %l2, label %j
j:
  %r = phi i32 [ %a1n, %l1 ], [ %a2n, %l2 ]
  %p = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %r, i32 addrspace(1)* %p
  ret
}
)");
  GlobalMemory MemBase;
  uint64_t B1 = MemBase.allocate(32 * 4);
  SimStats SBase = runKernel(*F, {1, 32}, {B1}, MemBase);

  DARMStats DS;
  ASSERT_TRUE(runDARM(*F, DARMConfig(), &DS));
  std::string Err;
  ASSERT_TRUE(verifyFunction(*F, &Err)) << Err << printFunction(*F);

  GlobalMemory MemMeld;
  uint64_t B2 = MemMeld.allocate(32 * 4);
  SimStats SMeld = runKernel(*F, {1, 32}, {B2}, MemMeld);
  EXPECT_EQ(MemBase.dumpI32(B1, 32), MemMeld.dumpI32(B2, 32));
  // Baseline: the entry branch diverges and the two loops serialize
  // (15 body executions per warp). Melded: one loop of 9 iterations with
  // a single mask-splitting exit — far fewer cycles, and no *additional*
  // dynamic divergence despite the shared back edge.
  EXPECT_LE(SMeld.DivergentBranches, SBase.DivergentBranches);
  EXPECT_LT(SMeld.Cycles, SBase.Cycles);
  // 2^6 for even lanes, 1+3*9 for odd lanes.
  EXPECT_EQ(MemMeld.readI32(B2 + 0), 64);
  EXPECT_EQ(MemMeld.readI32(B2 + 4), 28);
}

TEST(Melder, SplitExitWhenShapesDiffer) {
  Context Ctx;
  std::unique_ptr<Module> M;
  // True side: plain block. False side: self-loop block. The exit
  // branches cannot unify (br vs condbr), forcing the B'T/B'F path.
  Function *F = parse(Ctx, M, R"(
func @mixed(i32 addrspace(1)* %out) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %par = and i32 %tid, 1
  %c = icmp eq i32 %par, 0
  condbr i1 %c, label %simple, label %loop
simple:
  %v1 = add i32 %tid, 100
  br label %j
loop:
  %i = phi i32 [ 0, %entry ], [ %in, %loop ]
  %v2 = phi i32 [ 0, %entry ], [ %v2n, %loop ]
  %v2n = add i32 %v2, %tid
  %in = add i32 %i, 1
  %lc = icmp slt i32 %in, 4
  condbr i1 %lc, label %loop, label %j
j:
  %r = phi i32 [ %v1, %simple ], [ %v2n, %loop ]
  %p = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %r, i32 addrspace(1)* %p
  ret
}
)");
  GlobalMemory MemBase;
  uint64_t B1 = MemBase.allocate(32 * 4);
  runKernel(*F, {1, 32}, {B1}, MemBase);

  runDARM(*F); // may or may not meld depending on profitability
  std::string Err;
  ASSERT_TRUE(verifyFunction(*F, &Err)) << Err << printFunction(*F);

  GlobalMemory MemMeld;
  uint64_t B2 = MemMeld.allocate(32 * 4);
  runKernel(*F, {1, 32}, {B2}, MemMeld);
  EXPECT_EQ(MemBase.dumpI32(B1, 32), MemMeld.dumpI32(B2, 32));
}

TEST(Melder, RegionReplicationSteersThroughHost) {
  Context Ctx;
  std::unique_ptr<Module> M;
  // True path: single block A. False path: if-then-else region whose
  // arms both resemble A. Region replication must host A so true lanes
  // execute it exactly once, and false lanes keep their own routing.
  Function *F = parse(Ctx, M, R"(
func @repl(i32 addrspace(1)* %out) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %m = srem i32 %tid, 3
  %c1 = icmp eq i32 %m, 0
  condbr i1 %c1, label %a, label %head
a:
  %va = mul i32 %tid, 10
  %pa = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %va, i32 addrspace(1)* %pa
  br label %j
head:
  %c2 = icmp eq i32 %m, 1
  condbr i1 %c2, label %b, label %d
b:
  %vb = mul i32 %tid, 20
  %pb = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %vb, i32 addrspace(1)* %pb
  br label %j
d:
  %vd = mul i32 %tid, 30
  %pd = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %vd, i32 addrspace(1)* %pd
  br label %j
j:
  ret
}
)");
  GlobalMemory MemBase;
  uint64_t B1 = MemBase.allocate(32 * 4);
  SimStats SBase = runKernel(*F, {1, 32}, {B1}, MemBase);

  DARMStats DS;
  ASSERT_TRUE(runDARM(*F, DARMConfig(), &DS));
  EXPECT_GE(DS.BlockRegionMelds, 1u);
  std::string Err;
  ASSERT_TRUE(verifyFunction(*F, &Err)) << Err << printFunction(*F);

  GlobalMemory MemMeld;
  uint64_t B2 = MemMeld.allocate(32 * 4);
  SimStats SMeld = runKernel(*F, {1, 32}, {B2}, MemMeld);
  EXPECT_EQ(MemBase.dumpI32(B1, 32), MemMeld.dumpI32(B2, 32));
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(MemMeld.readI32(B2 + I * 4), I * (10 + (I % 3) * 10));
  EXPECT_LT(SMeld.DivergentBranches, SBase.DivergentBranches);
}

TEST(Melder, ValuesLiveAcrossChainElements) {
  Context Ctx;
  std::unique_ptr<Module> M;
  // A value defined in the first chain element of the true path is used
  // in the second; melding the first pair must keep the def-use chain
  // intact (the Fig. 5 pre-processing / SSA-repair territory).
  Function *F = parse(Ctx, M, R"(
func @live(i32 addrspace(1)* %out) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %par = and i32 %tid, 1
  %c = icmp eq i32 %par, 0
  condbr i1 %c, label %t1, label %f1
t1:
  %x = mul i32 %tid, 3
  br label %t2
t2:
  %y = add i32 %x, 7
  %pt = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %y, i32 addrspace(1)* %pt
  br label %j
f1:
  %u = mul i32 %tid, 5
  br label %f2
f2:
  %v = add i32 %u, 9
  %pf = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %v, i32 addrspace(1)* %pf
  br label %j
j:
  ret
}
)");
  ASSERT_TRUE(runDARM(*F));
  std::string Err;
  ASSERT_TRUE(verifyFunction(*F, &Err)) << Err << printFunction(*F);
  GlobalMemory Mem;
  uint64_t Out = Mem.allocate(32 * 4);
  SimStats S = runKernel(*F, {1, 32}, {Out}, Mem);
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(Mem.readI32(Out + I * 4),
              (I % 2 == 0) ? I * 3 + 7 : I * 5 + 9);
  EXPECT_EQ(S.DivergentBranches, 0u); // fully melded chain
}

TEST(Melder, GapStoresAreGuarded) {
  Context Ctx;
  std::unique_ptr<Module> M;
  // The true arm stores twice, the false arm once: the unaligned store
  // must execute only for true lanes (guarded or predicated), never
  // clobbering false lanes' slots.
  Function *F = parse(Ctx, M, R"(
func @gaps(i32 addrspace(1)* %a, i32 addrspace(1)* %b) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %par = and i32 %tid, 1
  %c = icmp eq i32 %par, 0
  condbr i1 %c, label %t, label %e
t:
  %v1 = mul i32 %tid, 3
  %p1 = gep i32 addrspace(1)* %a, i32 %tid
  store i32 %v1, i32 addrspace(1)* %p1
  %p2 = gep i32 addrspace(1)* %b, i32 %tid
  store i32 777, i32 addrspace(1)* %p2
  br label %j
e:
  %v2 = mul i32 %tid, 4
  %p3 = gep i32 addrspace(1)* %a, i32 %tid
  store i32 %v2, i32 addrspace(1)* %p3
  br label %j
j:
  ret
}
)");
  const std::string Snapshot = printFunction(*F);
  for (bool Unpred : {true, false}) {
    std::unique_ptr<Module> MCopy;
    Function *Copy = parse(Ctx, MCopy, Snapshot);
    DARMConfig Cfg;
    Cfg.EnableUnpredication = Unpred;
    runDARM(*Copy, Cfg);
    std::string Err;
    ASSERT_TRUE(verifyFunction(*Copy, &Err)) << Err;
    GlobalMemory Mem;
    uint64_t A = Mem.allocate(32 * 4);
    uint64_t Bb = Mem.allocate(32 * 4);
    runKernel(*Copy, {1, 32}, {A, Bb}, Mem);
    for (int I = 0; I < 32; ++I) {
      EXPECT_EQ(Mem.readI32(A + I * 4), (I % 2 == 0) ? I * 3 : I * 4);
      EXPECT_EQ(Mem.readI32(Bb + I * 4), (I % 2 == 0) ? 777 : 0)
          << "unaligned store leaked to false lanes (unpred=" << Unpred
          << ")";
    }
  }
}

TEST(Melder, IdempotentOnMeldedCode) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 %a, i32 addrspace(1)* %p) -> void {
entry:
  %tid = call i32 @darm.tid.x()
  %c = icmp slt i32 %tid, 7
  condbr i1 %c, label %x, label %y
x:
  %v1 = mul i32 %a, 3
  store i32 %v1, i32 addrspace(1)* %p
  br label %j
y:
  %v2 = mul i32 %a, 5
  store i32 %v2, i32 addrspace(1)* %p
  br label %j
j:
  ret
}
)");
  ASSERT_TRUE(runDARM(*F));
  std::string Once = printFunction(*F);
  EXPECT_FALSE(runDARM(*F)); // nothing left to meld
  EXPECT_EQ(printFunction(*F), Once);
}

} // namespace
