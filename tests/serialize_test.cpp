//===- serialize_test.cpp - Binary snapshot faithfulness ----------------------===//
//
// Pins the faithfulness contract of ir/Serialize.h and the DecodedProgram
// image (docs/caching.md): snapshots rebuild byte-identically in fresh
// Contexts, re-serialize byte-identically, survive melding, reject
// corrupt bytes without crashing, and a simulator fed through the
// serialized path behaves bit-identically to one fed the live IR.
//
//===----------------------------------------------------------------------===//

#include "darm/core/DARMPass.h"
#include "darm/fuzz/KernelGenerator.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/ir/Serialize.h"
#include "darm/sim/Simulator.h"
#include "darm/support/Hashing.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

// The print-identity + byte-identity round trip for one module.
void expectRoundTrip(const Module &M) {
  std::vector<uint8_t> Bytes = serializeModule(M);
  ASSERT_FALSE(Bytes.empty()) << "module must serialize: " << printModule(M);

  Context Fresh;
  std::string Err;
  std::unique_ptr<Module> D = deserializeModule(Fresh, Bytes, &Err);
  ASSERT_NE(D, nullptr) << Err;
  EXPECT_EQ(printModule(*D), printModule(M));
  EXPECT_EQ(D->getName(), M.getName());
  EXPECT_EQ(serializeModule(*D), Bytes);
}

TEST(SerializeTest, RoundTripFuzzKernels500Seeds) {
  for (uint64_t Seed = 0; Seed < 500; ++Seed) {
    Context Ctx;
    Module M(Ctx, "fuzzmod");
    fuzz::FuzzCase C(Seed);
    ASSERT_NE(fuzz::buildFuzzKernel(M, C), nullptr) << "seed " << Seed;
    expectRoundTrip(M);
  }
}

TEST(SerializeTest, RoundTripMeldedKernels) {
  for (uint64_t Seed = 0; Seed < 64; ++Seed) {
    Context Ctx;
    Module M(Ctx, "melded");
    fuzz::FuzzCase C(Seed);
    Function *F = fuzz::buildFuzzKernel(M, C);
    ASSERT_NE(F, nullptr);
    runDARM(*F);
    expectRoundTrip(M);
  }
}

TEST(SerializeTest, MultiFunctionModule) {
  Context Ctx;
  Module M(Ctx, "multi");
  for (uint64_t Seed = 10; Seed < 13; ++Seed) {
    fuzz::FuzzCase C(Seed);
    ASSERT_NE(fuzz::buildFuzzKernel(M, C), nullptr);
  }
  ASSERT_EQ(M.functions().size(), 3u);
  expectRoundTrip(M);
}

TEST(SerializeTest, FunctionSnapshotIsCanonicalAndPure) {
  // serializeFunction: a single-function module snapshot with the module
  // name normalized away, so the bytes depend only on the function's
  // content — the content-address property the compile cache keys on
  // (core/CompiledModule.h artifactIRHash).
  for (uint64_t Seed = 0; Seed < 64; ++Seed) {
    fuzz::FuzzCase C(Seed);
    Context C1;
    Module M1(C1, "one-name");
    Function *F1 = fuzz::buildFuzzKernel(M1, C);
    Context C2;
    Module M2(C2, "another-name");
    Function *F2 = fuzz::buildFuzzKernel(M2, C);
    fuzz::buildFuzzKernel(M2, fuzz::FuzzCase(Seed + 1000)); // sibling

    std::vector<uint8_t> Snap = serializeFunction(*F1);
    ASSERT_FALSE(Snap.empty()) << "seed " << Seed;
    EXPECT_EQ(Snap, serializeFunction(*F2)) << "seed " << Seed;

    // The snapshot is a readable module snapshot: same function text,
    // empty module name, byte-stable re-serialization.
    Context Fresh;
    std::string Err;
    std::unique_ptr<Module> D = deserializeModule(Fresh, Snap, &Err);
    ASSERT_NE(D, nullptr) << Err;
    ASSERT_EQ(D->functions().size(), 1u);
    EXPECT_EQ(D->getName(), "");
    EXPECT_EQ(printFunction(*D->functions().front()), printFunction(*F1));
    EXPECT_EQ(serializeModule(*D), Snap);
  }
}

TEST(SerializeTest, FloatBitPatternsSurvive) {
  // NaN payloads and signed zeros must round-trip bit-exactly: the
  // constant table stores raw IEEE-754 bits, never a decimal detour.
  Context Ctx;
  Module M(Ctx, "floats");
  Type *FPtr = Ctx.getPointerTy(Ctx.getFloatTy(), AddressSpace::Global);
  Function *F = M.createFunction("floats", Ctx.getVoidTy(), {{FPtr, "out"}});
  IRBuilder B(Ctx, F->createBlock("entry"));
  const uint32_t Patterns[] = {0x7fc12345u, 0xff812345u, 0x80000000u,
                               0x7f800000u, 0x00000001u};
  int Idx = 0;
  for (uint32_t Bits : Patterns) {
    float V;
    std::memcpy(&V, &Bits, sizeof(V));
    Value *P = B.createGep(F->getArg(0), Ctx.getInt32(Idx++));
    B.createStore(Ctx.getConstantFloat(V), P);
  }
  B.createRet();
  expectRoundTrip(M);

  // And check the reconstructed constants bit-for-bit, not just the text.
  std::vector<uint8_t> Bytes = serializeModule(M);
  Context Fresh;
  std::unique_ptr<Module> D = deserializeModule(Fresh, Bytes);
  ASSERT_NE(D, nullptr);
  size_t PatIdx = 0;
  for (const Instruction *I : D->functions().front()->getEntryBlock())
    if (const auto *St = dyn_cast<StoreInst>(I)) {
      uint32_t Got;
      float V = cast<ConstantFloat>(St->getValueOperand())->getValue();
      std::memcpy(&Got, &V, sizeof(Got));
      ASSERT_LT(PatIdx, std::size(Patterns));
      EXPECT_EQ(Got, Patterns[PatIdx++]);
    }
  EXPECT_EQ(PatIdx, std::size(Patterns));
}

TEST(SerializeTest, RejectsBadMagicAndVersion) {
  Context Ctx;
  Module M(Ctx, "small");
  fuzz::FuzzCase C(1);
  ASSERT_NE(fuzz::buildFuzzKernel(M, C), nullptr);
  std::vector<uint8_t> Bytes = serializeModule(M);
  ASSERT_GE(Bytes.size(), 8u);

  std::string Err;
  {
    std::vector<uint8_t> Bad = Bytes;
    Bad[0] = 'X';
    Context Fresh;
    EXPECT_EQ(deserializeModule(Fresh, Bad, &Err), nullptr);
    EXPECT_NE(Err.find("magic"), std::string::npos) << Err;
  }
  {
    std::vector<uint8_t> Bad = Bytes;
    Bad[4] ^= 0xff; // version low byte
    Context Fresh;
    EXPECT_EQ(deserializeModule(Fresh, Bad, &Err), nullptr);
    EXPECT_NE(Err.find("version"), std::string::npos) << Err;
  }
}

TEST(SerializeTest, RejectsEveryTruncation) {
  Context Ctx;
  Module M(Ctx, "trunc");
  fuzz::FuzzCase C(2);
  ASSERT_NE(fuzz::buildFuzzKernel(M, C), nullptr);
  std::vector<uint8_t> Bytes = serializeModule(M);
  ASSERT_FALSE(Bytes.empty());

  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    Context Fresh;
    EXPECT_EQ(deserializeModule(Fresh, Bytes.data(), Len, nullptr), nullptr)
        << "prefix of " << Len << " bytes must not decode";
  }
  // Trailing garbage is rejected too — an artifact is exactly one module.
  std::vector<uint8_t> Long = Bytes;
  Long.push_back(0);
  Context Fresh;
  std::string Err;
  EXPECT_EQ(deserializeModule(Fresh, Long, &Err), nullptr);
}

TEST(SerializeTest, ByteFlipsNeverCrash) {
  Context Ctx;
  Module M(Ctx, "flip");
  fuzz::FuzzCase C(3);
  ASSERT_NE(fuzz::buildFuzzKernel(M, C), nullptr);
  std::vector<uint8_t> Bytes = serializeModule(M);

  // Every single-byte corruption must either decode cleanly (some flips
  // only change a name or a constant) or fail with an error — never trip
  // an assert, read out of range, or leak placeholder values.
  for (size_t I = 0; I < Bytes.size(); ++I) {
    std::vector<uint8_t> Bad = Bytes;
    Bad[I] ^= 0x2a;
    Context Fresh;
    std::string Err;
    std::unique_ptr<Module> D = deserializeModule(Fresh, Bad, &Err);
    if (!D) {
      EXPECT_FALSE(Err.empty());
    }
  }
}

TEST(SerializeTest, HashStability) {
  // FNV-1a/64 pinned values: the empty hash is the offset basis, and one
  // byte applies exactly one xor+multiply round.
  EXPECT_EQ(hashBytes(std::string()), StableHasher::kOffsetBasis);
  EXPECT_EQ(hashBytes(std::string("a")),
            (StableHasher::kOffsetBasis ^ uint64_t{'a'}) *
                StableHasher::kPrime);

  // hashFunction is a pure function of the canonical text: equal across
  // Contexts, equal to hashing the print, different for different IR.
  Context C1, C2;
  Module M1(C1, "h"), M2(C2, "h");
  fuzz::FuzzCase A(7), B(8);
  Function *F1 = fuzz::buildFuzzKernel(M1, A);
  Function *F2 = fuzz::buildFuzzKernel(M2, A);
  ASSERT_TRUE(F1 && F2);
  EXPECT_EQ(hashFunction(*F1), hashFunction(*F2));
  EXPECT_EQ(hashFunction(*F1), hashBytes(printFunction(*F1)));
  EXPECT_EQ(hashModule(M1), hashBytes(printModule(M1)));

  Context C3;
  Module M3(C3, "h");
  Function *F3 = fuzz::buildFuzzKernel(M3, B);
  ASSERT_NE(F3, nullptr);
  EXPECT_NE(hashFunction(*F1), hashFunction(*F3));
}

//===----------------------------------------------------------------------===//
// DecodedProgram image
//===----------------------------------------------------------------------===//

void expectInstEq(const DecodedInst &X, const DecodedInst &Y) {
  EXPECT_EQ(X.Op, Y.Op);
  EXPECT_EQ(X.SubOp, Y.SubOp);
  EXPECT_EQ(X.Norm, Y.Norm);
  EXPECT_EQ(X.Flags, Y.Flags);
  EXPECT_EQ(X.Latency, Y.Latency);
  EXPECT_EQ(X.ElemSize, Y.ElemSize);
  EXPECT_EQ(X.Dest, Y.Dest);
  EXPECT_EQ(X.A, Y.A);
  EXPECT_EQ(X.B, Y.B);
  EXPECT_EQ(X.C, Y.C);
}

void expectProgramEq(const DecodedProgram &P, const DecodedProgram &Q) {
  EXPECT_EQ(P.NumRegisters, Q.NumRegisters);
  EXPECT_EQ(P.EntryBlock, Q.EntryBlock);
  EXPECT_EQ(P.MaxEdgePhis, Q.MaxEdgePhis);
  EXPECT_EQ(P.SharedMemoryBytes, Q.SharedMemoryBytes);

  ASSERT_EQ(P.Insts.size(), Q.Insts.size());
  for (size_t I = 0; I < P.Insts.size(); ++I)
    expectInstEq(P.Insts[I], Q.Insts[I]);
  EXPECT_EQ(P.InstTokens, Q.InstTokens);

  ASSERT_EQ(P.Blocks.size(), Q.Blocks.size());
  for (size_t I = 0; I < P.Blocks.size(); ++I) {
    const DecodedBlock &X = P.Blocks[I], &Y = Q.Blocks[I];
    EXPECT_EQ(X.FirstInst, Y.FirstInst);
    EXPECT_EQ(X.NumInsts, Y.NumInsts);
    EXPECT_EQ(X.Succ[0], Y.Succ[0]);
    EXPECT_EQ(X.Succ[1], Y.Succ[1]);
    for (int E = 0; E < 2; ++E) {
      EXPECT_EQ(X.Edge[E].Begin, Y.Edge[E].Begin);
      EXPECT_EQ(X.Edge[E].End, Y.Edge[E].End);
    }
    EXPECT_EQ(X.Reconverge, Y.Reconverge);
    EXPECT_EQ(X.UniformSafe, Y.UniformSafe);
    EXPECT_EQ(X.HasBarrier, Y.HasBarrier);
    EXPECT_EQ(X.NumAluInsts, Y.NumAluInsts);
    EXPECT_EQ(X.StaticLatency, Y.StaticLatency);
    EXPECT_EQ(X.TraceId, Y.TraceId);
  }

  ASSERT_EQ(P.Traces.size(), Q.Traces.size());
  for (size_t I = 0; I < P.Traces.size(); ++I) {
    const DecodedTrace &X = P.Traces[I], &Y = Q.Traces[I];
    EXPECT_EQ(X.FirstOp, Y.FirstOp);
    EXPECT_EQ(X.NumOps, Y.NumOps);
    EXPECT_EQ(X.PrefixOps, Y.PrefixOps);
    EXPECT_EQ(X.LastBlock, Y.LastBlock);
    EXPECT_EQ(X.NumBlocks, Y.NumBlocks);
    EXPECT_EQ(X.DynInsts, Y.DynInsts);
    EXPECT_EQ(X.NumAluInsts, Y.NumAluInsts);
    EXPECT_EQ(X.StaticLatency, Y.StaticLatency);
  }

  ASSERT_EQ(P.TraceOps.size(), Q.TraceOps.size());
  for (size_t I = 0; I < P.TraceOps.size(); ++I)
    expectInstEq(P.TraceOps[I], Q.TraceOps[I]);
  EXPECT_EQ(P.TraceTokens, Q.TraceTokens);

  ASSERT_EQ(P.PhiCopies.size(), Q.PhiCopies.size());
  for (size_t I = 0; I < P.PhiCopies.size(); ++I) {
    EXPECT_EQ(P.PhiCopies[I].Dest, Q.PhiCopies[I].Dest);
    EXPECT_EQ(P.PhiCopies[I].Src, Q.PhiCopies[I].Src);
    EXPECT_EQ(P.PhiCopies[I].Norm, Q.PhiCopies[I].Norm);
  }
  EXPECT_EQ(P.Immediates, Q.Immediates);
  EXPECT_EQ(P.ArgRegisters, Q.ArgRegisters);
  EXPECT_EQ(P.SharedArrayInit, Q.SharedArrayInit);
  EXPECT_EQ(P.CrossLaneRegisters, Q.CrossLaneRegisters);
}

TEST(ProgramSerializeTest, RoundTripFieldForField) {
  for (uint64_t Seed = 0; Seed < 64; ++Seed) {
    Context Ctx;
    Module M(Ctx, "prog");
    fuzz::FuzzCase C(Seed);
    Function *F = fuzz::buildFuzzKernel(M, C);
    ASSERT_NE(F, nullptr);
    if (Seed % 2)
      runDARM(*F);
    DecodedProgram P = decodeProgram(*F);
    std::vector<uint8_t> Bytes = serializeDecodedProgram(P);
    ASSERT_FALSE(Bytes.empty());

    DecodedProgram Q;
    ASSERT_TRUE(deserializeDecodedProgram(Bytes.data(), Bytes.size(), Q));
    expectProgramEq(P, Q);
    // Re-serialization is byte-identical (the format has one encoding).
    EXPECT_EQ(serializeDecodedProgram(Q), Bytes);
  }
}

TEST(ProgramSerializeTest, RejectsTruncationAndVersionSkew) {
  Context Ctx;
  Module M(Ctx, "prog");
  fuzz::FuzzCase C(5);
  Function *F = fuzz::buildFuzzKernel(M, C);
  ASSERT_NE(F, nullptr);
  std::vector<uint8_t> Bytes = serializeDecodedProgram(decodeProgram(*F));

  DecodedProgram Q;
  for (size_t Len = 0; Len < Bytes.size(); Len += 3)
    EXPECT_FALSE(deserializeDecodedProgram(Bytes.data(), Len, Q));
  std::vector<uint8_t> Bad = Bytes;
  Bad[4] ^= 0xff;
  EXPECT_FALSE(deserializeDecodedProgram(Bad.data(), Bad.size(), Q));
  std::vector<uint8_t> Long = Bytes;
  Long.push_back(0);
  EXPECT_FALSE(deserializeDecodedProgram(Long.data(), Long.size(), Q));
}

TEST(ProgramSerializeTest, EngineFromImageBitIdentical) {
  // The decode-skipping engine path (SimEngine(DecodedProgram)) must be
  // indistinguishable from a fresh decode: same SimStats counters, same
  // final memory image, launch for launch.
  for (uint64_t Seed = 0; Seed < 32; ++Seed) {
    Context Ctx;
    Module M(Ctx, "engine");
    fuzz::FuzzCase C(Seed);
    Function *F = fuzz::buildFuzzKernel(M, C);
    ASSERT_NE(F, nullptr);
    if (Seed % 2)
      runDARM(*F);

    GlobalMemory RefMem, ImgMem;
    std::vector<uint64_t> RefArgs = fuzz::setupFuzzMemory(C, RefMem);
    std::vector<uint64_t> ImgArgs = fuzz::setupFuzzMemory(C, ImgMem);
    ASSERT_EQ(RefArgs, ImgArgs);

    std::string Fatal;
    SimStats Ref = fuzz::simulateFuzzCase(*F, C, RefArgs, RefMem, &Fatal);
    if (!Fatal.empty())
      continue; // simulator aborts are the fuzz oracle's business

    std::vector<uint8_t> Bytes = serializeDecodedProgram(decodeProgram(*F));
    DecodedProgram Img;
    ASSERT_TRUE(deserializeDecodedProgram(Bytes.data(), Bytes.size(), Img));
    SimEngine Engine(std::move(Img));
    SimStats Got;
    for (unsigned L = 0, E = std::max(1u, C.NumLaunches); L != E; ++L)
      Got += Engine.run(C.Launch, ImgArgs, ImgMem);

    for (unsigned I = 0; I < SimStats::NumCounters; ++I)
      EXPECT_EQ(Got.counter(I), Ref.counter(I))
          << "seed " << Seed << " counter " << SimStats::counterName(I);
    ASSERT_EQ(RefMem.size(), ImgMem.size());
    for (uint64_t A = 0; A < RefMem.size(); A += 8)
      ASSERT_EQ(ImgMem.load(A, 8), RefMem.load(A, 8))
          << "seed " << Seed << " memory divergence at byte " << A;
  }
}

} // namespace
