//===- irparser_error_test.cpp - Parser diagnostics carry line info ---------------===//
//
// Error-path coverage for the textual IR parser: malformed tokens,
// out-of-range literals (PR 3's Tok::Error work) and truncated input must
// all fail with a diagnostic that names the offending line — repro files
// and darm_opt users navigate by it. Every case pins both the failure and
// the "line N" prefix pointing at the right line.
//
//===----------------------------------------------------------------------===//

#include "darm/ir/Context.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/Module.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

/// Parses \p Text, expecting failure; returns the diagnostic.
std::string parseError(const std::string &Text) {
  Context Ctx;
  std::string Err;
  auto M = parseModule(Ctx, Text, &Err);
  EXPECT_EQ(M, nullptr) << "expected a parse failure";
  EXPECT_FALSE(Err.empty());
  return Err;
}

/// True if \p Err starts with "line <N>:".
bool namesLine(const std::string &Err, unsigned N) {
  return Err.rfind("line " + std::to_string(N) + ":", 0) == 0;
}

TEST(ParserErrors, UnexpectedCharacterNamesLine) {
  // '$' starts no token; line 3 must be blamed, with the character named.
  std::string Err = parseError("func @k() -> void {\n"
                               "entry:\n"
                               "  $ = add i32 1, 2\n"
                               "  ret\n"
                               "}\n");
  EXPECT_TRUE(namesLine(Err, 3)) << Err;
  EXPECT_NE(Err.find("unexpected character '$'"), std::string::npos) << Err;
}

TEST(ParserErrors, UnknownOpcodeNamesLine) {
  std::string Err = parseError("func @k() -> void {\n"
                               "entry:\n"
                               "  %x = frobnicate i32 1, 2\n"
                               "  ret\n"
                               "}\n");
  EXPECT_TRUE(namesLine(Err, 3)) << Err;
}

TEST(ParserErrors, OutOfRangeIntLiteralNamesLine) {
  std::string Err = parseError("func @k() -> void {\n"
                               "entry:\n"
                               "  %x = add i32 99999999999999999999, 1\n"
                               "  ret\n"
                               "}\n");
  EXPECT_TRUE(namesLine(Err, 3)) << Err;
  EXPECT_NE(Err.find("out of range"), std::string::npos) << Err;
  EXPECT_NE(Err.find("99999999999999999999"), std::string::npos) << Err;
}

TEST(ParserErrors, OutOfRangeFloatLiteralNamesLine) {
  std::string Err = parseError("func @k() -> void {\n"
                               "entry:\n"
                               "  %x = fadd f32 1.0e99999, 1.0\n"
                               "  ret\n"
                               "}\n");
  EXPECT_TRUE(namesLine(Err, 3)) << Err;
  EXPECT_NE(Err.find("out of range"), std::string::npos) << Err;
}

TEST(ParserErrors, TruncatedFunctionNamesLastLine) {
  // Input ends mid-function: no terminator, no closing brace. The
  // diagnostic must point at the end of input, not line 1.
  std::string Err = parseError("func @k() -> void {\n"
                               "entry:\n"
                               "  %x = add i32 1, 2\n");
  EXPECT_FALSE(namesLine(Err, 1)) << Err;
  EXPECT_NE(Err.find("line "), std::string::npos) << Err;
}

TEST(ParserErrors, TruncatedMidInstructionNamesLine) {
  std::string Err = parseError("func @k() -> void {\n"
                               "entry:\n"
                               "  %x = add i32 1,");
  EXPECT_TRUE(namesLine(Err, 3)) << Err;
}

TEST(ParserErrors, FirstDiagnosticWins) {
  // Two bad lines: the reported line must be the first one (the lexical
  // error poisons the parse with its own message).
  std::string Err = parseError("func @k() -> void {\n"
                               "entry:\n"
                               "  %x = add i32 99999999999999999999, 1\n"
                               "  %y = frobnicate i32 1, 2\n"
                               "  ret\n"
                               "}\n");
  EXPECT_TRUE(namesLine(Err, 3)) << Err;
}

TEST(ParserErrors, ErrorTextIsNotAValidParse) {
  // An unexpected character inside an otherwise-valid module must not
  // yield a module at all (no partial results).
  Context Ctx;
  std::string Err;
  EXPECT_EQ(parseModule(Ctx, "func @a() -> void {\nentry:\n  ret\n}\n#\n",
                        &Err),
            nullptr);
  EXPECT_NE(Err.find("unexpected character"), std::string::npos) << Err;
}

} // namespace
